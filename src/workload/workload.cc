#include "workload/workload.h"

#include <algorithm>
#include <unordered_set>

namespace faastcc::workload {

StepArgs StepArgs::decode(BufReader& r) {
  StepArgs a;
  const uint32_t n = r.get_u32();
  a.keys.reserve(n);
  for (uint32_t i = 0; i < n; ++i) a.keys.push_back(r.get_u64());
  return a;
}

SinkArgs SinkArgs::decode(BufReader& r) {
  SinkArgs a;
  const uint32_t n = r.get_u32();
  a.keys.reserve(n);
  for (uint32_t i = 0; i < n; ++i) a.keys.push_back(r.get_u64());
  a.write_key = r.get_u64();
  a.value = r.get_bytes();
  return a;
}

WorkloadGen::WorkloadGen(WorkloadParams params, Rng rng)
    : params_(params), rng_(rng), zipf_(params.num_keys, params.zipf) {}

Key WorkloadGen::sample_key(SimTime now) {
  const Key base = zipf_.sample(rng_);
  if (params_.pattern != LoadPattern::kHotspotShift ||
      params_.pattern_period <= Duration{0} || params_.num_keys == 0) {
    return base;
  }
  // Rotate the Zipf head by a fixed stride once per period: the hot set
  // moves to keys whose chains (and cache entries, and partition load)
  // were previously cold.  The stride is co-prime-ish with small key
  // counts so consecutive rotations do not overlap.
  const uint64_t rotation =
      static_cast<uint64_t>(now) / static_cast<uint64_t>(params_.pattern_period);
  const uint64_t stride = params_.num_keys / 7 + 1;
  return (base + rotation * stride) % params_.num_keys;
}

Duration WorkloadGen::think_time_at(SimTime now) const {
  if (params_.think_time <= Duration{0} ||
      params_.pattern_period <= Duration{0}) {
    return Duration{0};
  }
  const auto period = static_cast<SimTime>(params_.pattern_period);
  const SimTime phase = now % period;
  switch (params_.pattern) {
    case LoadPattern::kNone:
    case LoadPattern::kHotspotShift:
      return Duration{0};
    case LoadPattern::kBursty:
      // Full speed for the first half of every period, throttled for the
      // second: the spike the autoscaler should chase, then the trough it
      // should give capacity back in.
      return phase < period / 2 ? Duration{0} : params_.think_time;
    case LoadPattern::kDiurnal: {
      // Triangle wave peaking mid-period: think time shrinks linearly to 0
      // at the peak and grows back to think_time at the edges.
      const SimTime half = period / 2;
      if (half <= 0) return Duration{0};
      const SimTime dist = phase < half ? half - phase : phase - half;
      return Duration{static_cast<Duration>(params_.think_time) * dist / half};
    }
  }
  return Duration{0};
}

faas::DagSpec WorkloadGen::next_dag(SimTime now) {
  ++seq_;
  std::vector<faas::FunctionSpec> fns;
  fns.reserve(static_cast<size_t>(params_.dag_size));
  std::unordered_set<Key> read_set;

  for (int i = 0; i < params_.dag_size; ++i) {
    std::vector<Key> keys;
    keys.reserve(static_cast<size_t>(params_.reads_per_function));
    for (int r = 0; r < params_.reads_per_function; ++r) {
      keys.push_back(sample_key(now));
    }
    read_set.insert(keys.begin(), keys.end());
    faas::FunctionSpec fn;
    if (i + 1 < params_.dag_size) {
      fn.name = "wl_step";
      StepArgs args{std::move(keys)};
      fn.args = encode_message(args);
    } else {
      fn.name = "wl_sink";
      SinkArgs args;
      args.keys = std::move(keys);
      args.write_key = sample_key(now);
      args.value = Value(params_.value_size, static_cast<char>('a' + seq_ % 26));
      fn.args = encode_message(args);
    }
    fns.push_back(std::move(fn));
  }

  faas::DagSpec dag = faas::DagSpec::chain(std::move(fns));
  dag.is_static = params_.static_txns;
  if (params_.static_txns) {
    dag.declared_read_set.assign(read_set.begin(), read_set.end());
    std::sort(dag.declared_read_set.begin(), dag.declared_read_set.end());
    SinkArgs sink = decode_message<SinkArgs>(dag.functions.back().args);
    dag.declared_write_set = {sink.write_key};
  }
  return dag;
}

void WorkloadGen::register_functions(faas::FunctionRegistry& registry) {
  registry.register_function(
      "wl_step", [](faas::ExecEnv& env) -> sim::Task<Buffer> {
        StepArgs args = decode_message<StepArgs>(env.args);
        auto values = co_await env.txn.read(std::move(args.keys));
        if (!values.has_value()) {
          env.abort_requested = true;
          co_return Buffer{};
        }
        // Pass a digest of the read values downstream, standing in for the
        // application-level result of the function.
        BufWriter w;
        uint64_t digest = 0;
        for (const Value& v : *values) {
          for (const char c : v) digest = digest * 131 + static_cast<uint8_t>(c);
        }
        w.put_u64(digest);
        co_return w.take();
      });

  registry.register_function(
      "wl_sink", [](faas::ExecEnv& env) -> sim::Task<Buffer> {
        SinkArgs args = decode_message<SinkArgs>(env.args);
        auto values = co_await env.txn.read(std::move(args.keys));
        if (!values.has_value()) {
          env.abort_requested = true;
          co_return Buffer{};
        }
        env.txn.write(args.write_key, args.value);
        BufWriter w;
        w.put_u64(args.write_key);
        co_return w.take();
      });
}

}  // namespace faastcc::workload
