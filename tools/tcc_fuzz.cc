// Deterministic consistency fuzzer for the FaaSTCC stack.
//
//   tcc_fuzz [--seeds=N] [--seed-base=N] [--configs=a,b,...] [--jobs=N]
//            [--dags=N] [--clients=N] [--list-configs] [--verbose]
//
// Sweeps seeds x fault matrices x workload shapes over small FaaSTCC
// clusters with the consistency oracle attached (zero perturbation: the
// oracle never changes the schedule, so every failure reproduces from its
// seed alone).  On the first violation the failing (seed, config, shape)
// is printed together with the oracle's report, the run is shrunk to a
// smaller counterexample (fewer clients/DAGs with the same violation),
// and the process exits 1.  A clean sweep exits 0.
//
// The sweep itself runs through harness::run_sweep: --jobs=N forks N
// worker processes.  Because each run is deterministic per spec and
// verdicts are scanned in plan order, the failing (config, seed) — and
// hence the shrunk counterexample — is identical to a serial sweep.
#include <cstdio>
#include <string>
#include <vector>

#include "harness/configs.h"
#include "harness/flags.h"
#include "harness/sweep.h"

using namespace faastcc;
using namespace faastcc::harness;

namespace {

// Dedup-window overrides (SIZE_MAX = keep the default).  Setting one to 0
// disables that at-most-once window — the knob regression tests use to
// prove the oracle still catches the ghost-execution bugs they guard.
size_t g_executed_dedup_cap = SIZE_MAX;
size_t g_start_dedup_cap = SIZE_MAX;

// The fuzzer's run shape: a small hot cluster with the oracle attached.
// The named config applies on top at resolve() time, exactly like the old
// in-process table did.
RunSpec make_spec(const std::string& config, uint64_t seed, int clients,
                  int dags) {
  RunSpec spec;
  ClusterParams& p = spec.params;
  p.system = SystemKind::kFaasTcc;
  p.seed = seed;
  p.partitions = 3;
  p.compute_nodes = 2;
  p.clients = static_cast<size_t>(clients);
  p.dags_per_client = dags;
  p.workload.num_keys = 64;  // hot key space: maximal contention
  p.workload.zipf = 1.0;
  p.check_consistency = true;
  apply_fuzz_shape(p, seed);
  if (g_executed_dedup_cap != SIZE_MAX) {
    p.node.executed_dedup_cap = g_executed_dedup_cap;
  }
  if (g_start_dedup_cap != SIZE_MAX) {
    p.scheduler.start_dedup_cap = g_start_dedup_cap;
  }
  spec.config = config;
  return spec;
}

// Greedy shrink: fewer clients, then fewer DAGs, keeping the failure (a
// violation of the same kind) alive.  Deterministic, bounded work; runs
// serially in the parent so it is identical under any --jobs.
void shrink(const std::string& config, uint64_t seed, int clients, int dags,
            const std::string& kind) {
  auto still_fails = [&](int c, int d) {
    const RunOutput o = run_one(make_spec(config, seed, c, d));
    return o.violations > 0 && o.violation_kind == kind;
  };
  int best_c = clients, best_d = dags;
  for (int c = best_c / 2; c >= 1; c /= 2) {
    if (still_fails(c, best_d)) best_c = c;
  }
  for (int d = best_d / 2; d >= 1; d /= 2) {
    if (still_fails(best_c, d)) best_d = d;
  }
  std::fprintf(stderr,
               "minimal counterexample: --configs=%s --seed-base=%llu "
               "--seeds=1 --clients=%d --dags=%d\n",
               config.c_str(), static_cast<unsigned long long>(seed), best_c,
               best_d);
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t seeds = 20, seed_base = 1;
  int clients = 4, dags = 12, jobs = 1;
  bool verbose = false, no_shrink = false, list = false;
  std::string configs_csv;

  Flags flags("tcc_fuzz", "deterministic consistency fuzzer");
  flags.u64("seeds", "seeds per config", &seeds);
  flags.u64("seed-base", "first seed", &seed_base);
  flags.custom("configs", "csv", "subset of fault configs (default all)",
               [&](const std::string& v) {
                 configs_csv = v;
                 return true;
               });
  flags.integer("clients", "closed-loop clients", &clients);
  flags.integer("dags", "DAGs per client", &dags);
  flags.integer("jobs", "max concurrent worker processes", &jobs);
  flags.size("executed-dedup-cap", "node (txn,fn) dedup window",
             &g_executed_dedup_cap);
  flags.size("start-dedup-cap", "scheduler txn dedup window",
             &g_start_dedup_cap);
  flags.boolean("no-shrink", "skip counterexample shrinking", &no_shrink);
  flags.boolean("list-configs", "print configs and exit", &list);
  flags.boolean("verbose", "per-run progress", &verbose);

  if (!flags.parse(argc, argv)) {
    std::fprintf(stderr, "tcc_fuzz: %s\n%s", flags.error().c_str(),
                 flags.usage().c_str());
    return 2;
  }
  if (flags.help_requested()) {
    std::fputs(flags.usage().c_str(), stdout);
    return 0;
  }
  if (list) {
    list_configs(stderr);
    return 0;
  }

  const std::vector<std::string> wanted = Flags::split_csv(configs_csv);
  auto selected = [&](const NamedConfig& cfg) {
    if (wanted.empty()) return !cfg.chaos;
    for (const std::string& w : wanted) {
      if (w == cfg.name) return true;
    }
    return false;
  };

  // Plan order is (config, seed) nesting, matching the old serial loops,
  // so "first violation in plan order" is the same run the serial fuzzer
  // would have stopped at.
  SweepPlan plan;
  struct ItemMeta {
    std::string config;
    uint64_t seed;
  };
  std::vector<ItemMeta> meta;
  for (const NamedConfig& cfg : all_configs()) {
    if (!selected(cfg)) continue;
    for (uint64_t s = 0; s < seeds; ++s) {
      const uint64_t seed = seed_base + s;
      SweepItem item;
      item.spec = make_spec(cfg.name, seed, clients, dags);
      item.id = std::string(cfg.name) + "/s" + std::to_string(seed);
      plan.items.push_back(std::move(item));
      meta.push_back(ItemMeta{cfg.name, seed});
    }
  }

  SweepOptions opts;
  opts.jobs = jobs;
  opts.verbose = verbose;
  opts.stop_on_violation = true;  // serial mode stops like the old loop
  SweepResult result;
  try {
    result = run_sweep(plan, opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tcc_fuzz: %s\n", e.what());
    return 2;
  }

  uint64_t total_committed = 0;
  size_t total_installs = 0;
  for (const RunRecord& rec : result.records) {
    if (!rec.ran) continue;
    total_committed += rec.committed;
    const json::Value doc = json::parse(rec.json);
    total_installs +=
        static_cast<size_t>(doc.find("oracle")->find("installs")->as_u64());
    if (rec.violations == 0 && rec.committed == 0) {
      // Liveness collapse is not a consistency violation but a sweep
      // that commits nothing verifies nothing; flag it loudly.
      std::fprintf(stderr, "warning: run=%s committed 0 DAGs\n",
                   rec.id.c_str());
    }
  }

  if (result.first_violation != SIZE_MAX) {
    const size_t i = result.first_violation;
    const RunRecord& rec = result.records[i];
    std::fprintf(stderr,
                 "\nconsistency violation: config=%s seed=%llu "
                 "clients=%d dags=%d\n%s",
                 meta[i].config.c_str(),
                 static_cast<unsigned long long>(meta[i].seed), clients, dags,
                 rec.oracle_report.c_str());
    if (!no_shrink) {
      shrink(meta[i].config, meta[i].seed, clients, dags,
             rec.violation_kind);
    }
    return 1;
  }

  std::fprintf(stderr,
               "fuzz sweep clean: %llu runs, %llu DAGs committed, "
               "%zu installs checked\n",
               static_cast<unsigned long long>(result.runs),
               static_cast<unsigned long long>(total_committed),
               total_installs);
  return 0;
}
