#include "faas/scheduler.h"

#include <cassert>

#include "common/log.h"
#include "sim/future.h"

namespace faastcc::faas {

Scheduler::Scheduler(net::Network& network, net::Address self,
                     std::vector<net::Address> nodes, SchedulerParams params,
                     Rng rng, obs::Tracer* tracer)
    : rpc_(network, self),
      nodes_(std::move(nodes)),
      params_(params),
      rng_(rng),
      tracer_(tracer) {
  assert(!nodes_.empty());
  rpc_.handle_oneway(kStartDag, [this](Buffer b, net::Address from) {
    on_start(std::move(b), from);
  });
}

void Scheduler::on_start(Buffer msg, net::Address) {
  StartDagMsg start = decode_message<StartDagMsg>(msg);
  rpc_.recycle(std::move(msg));
  // A repeated txn id is a fabric-duplicated kStartDag (clients never
  // reuse ids across attempts).  Dispatching it again would launch a ghost
  // copy of the whole DAG with freshly chosen placements, so the per-node
  // (txn, fn) dedup on the compute nodes could not catch it: the ghost
  // root would reopen at SI_root and re-read at a different snapshot under
  // the same transaction id.
  if (started_.count(start.txn_id) != 0) {
    dup_starts_dropped_.inc();
    return;
  }
  started_.insert(start.txn_id);
  started_order_.push_back(start.txn_id);
  while (started_order_.size() > params_.start_dedup_cap) {
    started_.erase(started_order_.front());
    started_order_.pop_front();
  }
  sim::spawn(dispatch(std::move(start), rpc_.inbound_trace()));
}

sim::Task<void> Scheduler::dispatch(StartDagMsg start,
                                    obs::TraceContext trace) {
  obs::SpanHandle span;
  if (tracer_ != nullptr) {
    span = tracer_->begin(trace, "schedule", "scheduler", rpc_.address(),
                          rpc_.now());
    // Time at the scheduler is queueing from the DAG's point of view.
    tracer_->add_time(trace.trace_id, obs::Bucket::kQueue,
                      params_.service_time);
  }
  co_await sim::sleep_for(rpc_.loop(), params_.service_time);
  start.spec.normalize_sinks();
  if (!start.spec.valid()) {
    LOG_ERROR("rejecting invalid DAG for txn " << start.txn_id);
    DagDoneMsg done;
    done.txn_id = start.txn_id;
    done.committed = false;
    rpc_.send(start.client, kDagDone, done);
    if (tracer_ != nullptr) tracer_->end(span, rpc_.now());
    co_return;
  }
  dags_started_.inc();

  TriggerMsg t;
  t.txn_id = start.txn_id;
  t.client = start.client;
  t.session = std::move(start.session);
  t.placement.reserve(start.spec.functions.size());
  for (size_t i = 0; i < start.spec.functions.size(); ++i) {
    if (params_.round_robin) {
      t.placement.push_back(nodes_[next_node_++ % nodes_.size()]);
    } else {
      t.placement.push_back(nodes_[rng_.next_below(nodes_.size())]);
    }
  }
  t.fn_index = start.spec.root();
  t.spec = std::move(start.spec);
  obs::TraceContext out;
  if (tracer_ != nullptr) {
    tracer_->annotate(span, "functions",
                      static_cast<uint64_t>(t.spec.functions.size()));
    out = tracer_->context_of(span);
  }
  rpc_.send(t.placement[t.fn_index], kTrigger, t, out);
  if (tracer_ != nullptr) tracer_->end(span, rpc_.now());
}

}  // namespace faastcc::faas
