// Workload generator reproducing the paper's benchmark (§6.1):
// sequential chains of functions, each reading two Zipf-distributed keys;
// the sink additionally writes one Zipf-distributed key.  Static
// transactions declare all keys up front; dynamic transactions reveal them
// only at execution time.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/rng.h"
#include "common/zipf.h"
#include "faas/dag.h"
#include "faas/function_registry.h"

namespace faastcc::workload {

// Time-varying load shapes for driving the autoscaler.  All are
// deterministic functions of sim time (no extra randomness), so a run
// with kNone is bit-identical to one predating the pattern machinery.
enum class LoadPattern : uint8_t {
  kNone = 0,     // constant closed-loop load (historical behavior)
  kBursty,       // on/off: full speed for half the period, idle the rest
  kDiurnal,      // triangle wave: load peaks mid-period, troughs at edges
  kHotspotShift, // constant rate, but the Zipf hotspot rotates per period
};

inline const char* load_pattern_name(LoadPattern p) {
  switch (p) {
    case LoadPattern::kNone: return "none";
    case LoadPattern::kBursty: return "bursty";
    case LoadPattern::kDiurnal: return "diurnal";
    case LoadPattern::kHotspotShift: return "hotspot-shift";
  }
  return "?";
}
inline bool parse_load_pattern(std::string_view name, LoadPattern* out) {
  if (name == "none") {
    *out = LoadPattern::kNone;
  } else if (name == "bursty") {
    *out = LoadPattern::kBursty;
  } else if (name == "diurnal") {
    *out = LoadPattern::kDiurnal;
  } else if (name == "hotspot-shift") {
    *out = LoadPattern::kHotspotShift;
  } else {
    return false;
  }
  return true;
}

struct WorkloadParams {
  uint64_t num_keys = 100000;
  double zipf = 1.0;
  int dag_size = 6;            // functions per chain
  int reads_per_function = 2;
  size_t value_size = 8;       // bytes
  bool static_txns = false;
  // Load shaping (autoscaler experiments).  kNone is inert: clients never
  // sleep between DAGs and key sampling ignores time.
  LoadPattern pattern = LoadPattern::kNone;
  Duration pattern_period = seconds(1);  // burst/diurnal cycle; rotation step
  Duration think_time = Duration{0};     // max inter-DAG pause when off-peak
};

// Argument layouts for the registered functions.
struct StepArgs {
  std::vector<Key> keys;

  template <typename W>
  void encode(W& w) const {
    w.put_u32(static_cast<uint32_t>(keys.size()));
    for (Key k : keys) w.put_u64(k);
  }
  static StepArgs decode(BufReader& r);
};

struct SinkArgs {
  std::vector<Key> keys;
  Key write_key = 0;
  Value value;

  template <typename W>
  void encode(W& w) const {
    w.put_u32(static_cast<uint32_t>(keys.size()));
    for (Key k : keys) w.put_u64(k);
    w.put_u64(write_key);
    w.put_bytes(value);
  }
  static SinkArgs decode(BufReader& r);
};

class WorkloadGen {
 public:
  WorkloadGen(WorkloadParams params, Rng rng);

  // Builds one chain DAG with freshly sampled keys.  `now` only matters to
  // the hotspot-shifting pattern (it decides the current rotation); every
  // other pattern ignores it, keeping historical runs bit-identical.
  faas::DagSpec next_dag(SimTime now = 0);

  // How long the closed-loop client should pause before its next DAG at
  // sim time `now`.  Zero for kNone and kHotspotShift (no pause — the
  // paper's closed loop), on/off for kBursty, a triangle wave for
  // kDiurnal.  Pure function of (params, now): no randomness.
  Duration think_time_at(SimTime now) const;

  const WorkloadParams& params() const { return params_; }

  // Registers "wl_step" and "wl_sink" bodies.
  static void register_functions(faas::FunctionRegistry& registry);

 private:
  Key sample_key(SimTime now);

  WorkloadParams params_;
  Rng rng_;
  ZipfSampler zipf_;
  uint64_t seq_ = 0;
};

}  // namespace faastcc::workload
