file(REMOVE_RECURSE
  "CMakeFiles/faastcc_net.dir/net/network.cc.o"
  "CMakeFiles/faastcc_net.dir/net/network.cc.o.d"
  "CMakeFiles/faastcc_net.dir/net/rpc.cc.o"
  "CMakeFiles/faastcc_net.dir/net/rpc.cc.o.d"
  "libfaastcc_net.a"
  "libfaastcc_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faastcc_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
