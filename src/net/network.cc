#include "net/network.h"

#include <cassert>
#include <utility>

#include "common/log.h"

namespace faastcc::net {
namespace {

uint64_t pair_key(Address a, Address b) {
  if (a > b) std::swap(a, b);
  return (static_cast<uint64_t>(a) << 32) | b;
}

uint64_t link_key(Address from, Address to) {
  return (static_cast<uint64_t>(from) << 32) | to;
}

}  // namespace

void Network::register_endpoint(Address addr, Handler handler) {
  assert(endpoints_.find(addr) == endpoints_.end() &&
         "endpoint registered twice");
  endpoints_.emplace(addr, std::move(handler));
}

void Network::colocate(Address a, Address b) {
  colocated_[pair_key(a, b)] = true;
}

bool Network::is_local(Address a, Address b) const {
  return a == b || colocated_.count(pair_key(a, b)) != 0;
}

void Network::set_faults(FaultParams faults, Rng fault_rng) {
  faults_enabled_ = true;
  faults_ = std::move(faults);
  fault_rng_ = fault_rng;
  default_rpc_timeout_ = faults_.rpc_timeout;
}

void Network::set_link_loss(Address from, Address to, double p) {
  if (p < 0) {
    link_loss_.erase(link_key(from, to));
  } else {
    link_loss_[link_key(from, to)] = p;
  }
}

double Network::link_loss(Address from, Address to) const {
  auto it = link_loss_.find(link_key(from, to));
  return it != link_loss_.end() ? it->second : faults_.loss_prob;
}

bool Network::crashed_at(Address a, SimTime t) const {
  for (const CrashWindow& w : faults_.crashes) {
    if (w.addr == a && t >= w.from && t < w.until) return true;
  }
  return false;
}

Duration Network::delivery_delay(Address from, Address to, size_t bytes) {
  if (is_local(from, to)) {
    return params_.local_delivery;
  }
  const auto serialization = static_cast<Duration>(
      static_cast<double>(bytes) / params_.bandwidth_bytes_per_us);
  const Duration jitter =
      params_.jitter > 0
          ? static_cast<Duration>(rng_.next_below(
                static_cast<uint64_t>(params_.jitter)))
          : 0;
  return params_.base_latency + jitter + serialization;
}

void Network::deliver(Message m, Duration delay) {
  loop_.schedule_after(delay, [this, m = std::move(m)]() mutable {
    if (faults_enabled_ && crashed_at(m.to, loop_.now())) {
      // Receiver is down at delivery time: the message is lost, even over
      // IPC (a crashed process receives nothing).
      faults_crash_dropped_.inc();
      loop_.buffer_pool().release(std::move(m.payload));
      return;
    }
    auto it = endpoints_.find(m.to);
    if (it == endpoints_.end()) {
      messages_dropped_.inc();
      LOG_DEBUG("dropping message to unregistered address " << m.to);
      loop_.buffer_pool().release(std::move(m.payload));
      return;
    }
    it->second(std::move(m));
  });
}

void Network::send(Message m) {
  messages_sent_.inc();
  bytes_sent_.inc(m.wire_size());
  if (faults_enabled_) {
    if (crashed_at(m.from, loop_.now())) {
      faults_crash_dropped_.inc();
      return;
    }
    // Loss, duplication and spikes model the shared fabric; same-node IPC
    // is a memory queue and stays reliable.
    if (!is_local(m.from, m.to)) {
      const double loss = link_loss(m.from, m.to);
      if (loss > 0 && fault_rng_.next_bool(loss)) {
        faults_lost_.inc();
        loop_.buffer_pool().release(std::move(m.payload));
        return;
      }
      Duration extra = 0;
      if (faults_.delay_spike_prob > 0 &&
          fault_rng_.next_bool(faults_.delay_spike_prob)) {
        faults_delay_spikes_.inc();
        extra = faults_.delay_spike;
      }
      const bool dup =
          faults_.dup_prob > 0 && fault_rng_.next_bool(faults_.dup_prob);
      if (dup) {
        faults_duplicated_.inc();
        Message copy = m;
        // The copy draws its own jitter, so the two deliveries interleave
        // arbitrarily with other traffic.
        const Duration copy_delay =
            delivery_delay(copy.from, copy.to, copy.wire_size()) + extra;
        deliver(std::move(copy), copy_delay);
      }
      const Duration delay =
          delivery_delay(m.from, m.to, m.wire_size()) + extra;
      deliver(std::move(m), delay);
      return;
    }
  }
  const Duration delay = delivery_delay(m.from, m.to, m.wire_size());
  deliver(std::move(m), delay);
}

}  // namespace faastcc::net
