file(REMOVE_RECURSE
  "CMakeFiles/faastcc_sim_cli.dir/faastcc_sim.cc.o"
  "CMakeFiles/faastcc_sim_cli.dir/faastcc_sim.cc.o.d"
  "faastcc_sim_cli"
  "faastcc_sim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faastcc_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
