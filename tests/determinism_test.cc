// Regression guard for the simulation-core hot-path overhaul: buffer
// pooling, shared values and the 4-ary heap event loop are all invisible
// to the schedule.  Running the integration workload twice at the same
// seed must produce byte-identical observable state — every metric and
// the full trace export — for each of the three systems.
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "harness/cluster.h"

namespace faastcc::harness {
namespace {

ClusterParams params_for(SystemKind system) {
  ClusterParams p;
  p.system = system;
  p.seed = 11;
  p.partitions = 4;
  p.compute_nodes = 2;
  p.clients = 2;
  p.dags_per_client = 25;
  p.workload.num_keys = 500;
  p.workload.dag_size = 3;
  p.trace.enabled = true;
  p.trace.ring_capacity = 1 << 20;
  return p;
}

// Everything observable about a run, flattened for exact comparison.
struct RunSnapshot {
  uint64_t committed = 0;
  uint64_t aborted_attempts = 0;
  uint64_t sim_events = 0;
  uint64_t cache_entries = 0;
  uint64_t cache_bytes = 0;
  std::map<std::string, uint64_t> counters;
  std::map<std::string, std::vector<double>> histograms;
  std::string trace;
};

RunSnapshot snapshot_run(SystemKind system) {
  Cluster cluster(params_for(system));
  const RunResult r = cluster.run();
  RunSnapshot s;
  s.committed = r.committed;
  s.aborted_attempts = r.aborted_attempts;
  s.sim_events = r.sim_events;
  s.cache_entries = r.cache_entries;
  s.cache_bytes = r.cache_bytes;
  r.metrics.each_counter(
      [&](const char* name, const Counter& c) { s.counters[name] = c.value(); });
  r.metrics.each_histogram(
      [&](const char* name, const Samples& h) { s.histograms[name] = h.raw(); });
  std::ostringstream os;
  cluster.tracer().export_chrome_trace(os);
  s.trace = os.str();
  return s;
}

TEST(Determinism, SameSeedRunsAreByteIdenticalForEverySystem) {
  for (SystemKind system : {SystemKind::kFaasTcc, SystemKind::kHydroCache,
                            SystemKind::kCloudburst}) {
    SCOPED_TRACE(system_name(system));
    const RunSnapshot a = snapshot_run(system);
    const RunSnapshot b = snapshot_run(system);
    ASSERT_GT(a.committed, 0u);
    EXPECT_EQ(a.committed, b.committed);
    EXPECT_EQ(a.aborted_attempts, b.aborted_attempts);
    EXPECT_EQ(a.sim_events, b.sim_events);
    EXPECT_EQ(a.cache_entries, b.cache_entries);
    EXPECT_EQ(a.cache_bytes, b.cache_bytes);
    EXPECT_EQ(a.counters, b.counters);
    EXPECT_EQ(a.histograms, b.histograms);
    ASSERT_FALSE(a.trace.empty());
    EXPECT_EQ(a.trace, b.trace);
  }
}

}  // namespace
}  // namespace faastcc::harness
