#include "harness/table.h"

#include <cstdio>

namespace faastcc::harness {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void Table::print() const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t i = 0; i < header_.size(); ++i) {
    widths[i] = header_[i].size();
  }
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    std::printf("|");
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      std::printf(" %-*s |", static_cast<int>(widths[i]), cell.c_str());
    }
    std::printf("\n");
  };
  auto print_sep = [&] {
    std::printf("+");
    for (size_t w : widths) {
      for (size_t i = 0; i < w + 2; ++i) std::printf("-");
      std::printf("+");
    }
    std::printf("\n");
  };
  print_sep();
  print_row(header_);
  print_sep();
  for (const auto& row : rows_) print_row(row);
  print_sep();
  std::fflush(stdout);
}

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string fmt_bytes(double v) {
  char buf[64];
  if (v >= 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.1f MiB", v / (1024.0 * 1024.0));
  } else if (v >= 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.1f KiB", v / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f B", v);
  }
  return buf;
}

void print_title(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace faastcc::harness
