#include "check/oracle.h"

#include <algorithm>
#include <sstream>
#include <tuple>

namespace faastcc::check {

uint64_t hash_value(const Value& v) {
  uint64_t h = 1469598103934665603ull;  // FNV offset basis
  for (const char c : v.view()) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

const char* violation_name(Violation::Kind kind) {
  switch (kind) {
    case Violation::Kind::kLostWrite: return "lost-write";
    case Violation::Kind::kDuplicateInstall: return "duplicate-install";
    case Violation::Kind::kPhantomInstall: return "phantom-install";
    case Violation::Kind::kCausalOrder: return "causal-order";
    case Violation::Kind::kUnsoundPromise: return "unsound-promise";
    case Violation::Kind::kEmptySnapshotWindow: return "empty-snapshot-window";
    case Violation::Kind::kUnexplainedRead: return "unexplained-read";
    case Violation::Kind::kValueMismatch: return "value-mismatch";
    case Violation::Kind::kNonRepeatableRead: return "non-repeatable-read";
    case Violation::Kind::kReadYourWrites: return "read-your-writes";
    case Violation::Kind::kSessionOrder: return "session-order";
    case Violation::Kind::kHandoffFloor: return "handoff-floor";
    case Violation::Kind::kDurabilityLoss: return "durability-loss";
  }
  return "?";
}

void ConsistencyOracle::on_install(PartitionId partition, Key key,
                                   Timestamp ts, TxnId txn,
                                   const Value& value) {
  installs_.push_back(InstallRec{key, ts, txn, hash_value(value), partition});
}

void ConsistencyOracle::on_preload(Key key, Timestamp ts, const Value& value) {
  installs_.push_back(InstallRec{
      key, ts, 0, hash_value(value),
      static_cast<PartitionId>(0)});
}

void ConsistencyOracle::on_commit_phase(TxnId txn, std::vector<Key> write_keys) {
  auto& t = txns_[txn];
  t.phase_entered = true;
  t.write_keys = std::move(write_keys);
}

void ConsistencyOracle::on_commit_ack(TxnId txn, Timestamp commit_ts,
                                      Timestamp dep_ts) {
  auto& t = txns_[txn];
  t.acked = true;
  t.commit_ts = commit_ts;
  t.dep_ts = dep_ts;
}

void ConsistencyOracle::on_txn_complete(TxnId txn) {
  txns_[txn].completed = true;
}

uint64_t ConsistencyOracle::register_function(TxnId) { return ++next_fn_; }

void ConsistencyOracle::on_read(TxnId txn, uint64_t fn, Key key, Timestamp ts,
                                Timestamp promise, const Value& value,
                                client::SnapshotInterval interval) {
  reads_.push_back(ReadRec{txn, fn, key, ts, promise, hash_value(value),
                           interval, ++next_seq_});
}

void ConsistencyOracle::on_write(TxnId txn, uint64_t fn, Key key,
                                 const Value& value) {
  writes_.push_back(WriteRec{txn, fn, key, hash_value(value), ++next_seq_});
}

void ConsistencyOracle::on_session_commit(uint64_t client_id,
                                          Timestamp session_ts) {
  sessions_[client_id].push_back(session_ts);
}

void ConsistencyOracle::on_handoff(PartitionId partition, Timestamp floor) {
  handoffs_.push_back(HandoffRec{partition, floor, installs_.size(), {}});
}

void ConsistencyOracle::on_handoff(PartitionId partition, Timestamp floor,
                                   std::vector<Key> keys) {
  std::sort(keys.begin(), keys.end());
  handoffs_.push_back(
      HandoffRec{partition, floor, installs_.size(), std::move(keys)});
}

void ConsistencyOracle::on_failover(
    PartitionId partition, std::vector<std::pair<Key, Timestamp>> surviving) {
  std::sort(surviving.begin(), surviving.end());
  failovers_.push_back(
      FailoverRec{partition, installs_.size(), std::move(surviving)});
}

size_t ConsistencyOracle::commits_recorded() const {
  size_t n = 0;
  for (const auto& [id, t] : txns_) n += t.acked ? 1 : 0;
  return n;
}

size_t ConsistencyOracle::torn_aborts() const {
  // Commit phase entered, never acked, but at least one install happened:
  // a participant applied its half before the coordinator gave up.
  size_t n = 0;
  for (const auto& [id, t] : txns_) {
    if (!t.phase_entered || t.acked) continue;
    for (const auto& rec : installs_) {
      if (rec.txn == id) {
        ++n;
        break;
      }
    }
  }
  return n;
}

std::vector<Violation> ConsistencyOracle::check() const {
  std::vector<Violation> out;

  // Per-key install history, sorted by timestamp (record order breaks
  // ties so duplicate detection below is deterministic).
  std::map<Key, std::vector<const InstallRec*>> by_key;
  for (const auto& rec : installs_) by_key[rec.key].push_back(&rec);
  for (auto& [key, chain] : by_key) {
    std::stable_sort(
        chain.begin(), chain.end(),
        [](const InstallRec* a, const InstallRec* b) { return a->ts < b->ts; });
  }

  const auto find_install = [&](Key key, Timestamp ts) -> const InstallRec* {
    auto it = by_key.find(key);
    if (it == by_key.end()) return nullptr;
    const auto& chain = it->second;
    auto pos = std::lower_bound(
        chain.begin(), chain.end(), ts,
        [](const InstallRec* a, Timestamp t) { return a->ts < t; });
    return (pos != chain.end() && (*pos)->ts == ts) ? *pos : nullptr;
  };
  // First install of `key` strictly after `ts`; nullptr if none.
  const auto successor = [&](Key key, Timestamp ts) -> const InstallRec* {
    auto it = by_key.find(key);
    if (it == by_key.end()) return nullptr;
    const auto& chain = it->second;
    auto pos = std::upper_bound(
        chain.begin(), chain.end(), ts,
        [](Timestamp t, const InstallRec* a) { return t < a->ts; });
    return pos != chain.end() ? *pos : nullptr;
  };

  // Record index of an install (installs_ is contiguous, so pointer
  // arithmetic recovers the append order the failover/handoff records
  // snapshot).
  const auto index_of = [&](const InstallRec* rec) {
    return static_cast<size_t>(rec - installs_.data());
  };
  // True when `later` is an exact re-materialization across a failover of
  // its partition: an identical install (partition, key, ts, txn, value)
  // recorded before the promotion, re-applied after it by a coordinator
  // retry the dead leader could no longer dedup.  The repeat is sound —
  // the store's (key, ts) idempotence means no twin version exists, and
  // promises are re-validated by the per-read successor scan.
  const auto rematerialized = [&](const InstallRec* earlier,
                                  const InstallRec* later) {
    if (earlier->partition != later->partition ||
        earlier->key != later->key || earlier->ts != later->ts ||
        earlier->txn != later->txn ||
        earlier->value_hash != later->value_hash) {
      return false;
    }
    for (const auto& f : failovers_) {
      if (f.partition == later->partition &&
          index_of(earlier) < f.installs_before &&
          index_of(later) >= f.installs_before) {
        return true;
      }
    }
    return false;
  };
  // Earliest failover point per partition (installs before it died with
  // the old leader's store).
  std::map<PartitionId, size_t> first_failover_at;
  for (const auto& f : failovers_) {
    auto [it, inserted] = first_failover_at.emplace(f.partition,
                                                    f.installs_before);
    if (!inserted && f.installs_before < it->second) {
      it->second = f.installs_before;
    }
  }

  // --- duplicate installs: two installs of the same (key, ts). ---
  for (const auto& [key, chain] : by_key) {
    for (size_t i = 1; i < chain.size(); ++i) {
      if (chain[i]->ts == chain[i - 1]->ts) {
        if (rematerialized(chain[i - 1], chain[i])) continue;
        std::ostringstream os;
        os << "key " << key << " installed twice at " << chain[i]->ts.to_string()
           << " (txn " << chain[i - 1]->txn << " then txn " << chain[i]->txn
           << ")";
        out.push_back(Violation{Violation::Kind::kDuplicateInstall,
                                chain[i]->txn, key, os.str()});
      }
    }
  }

  // --- phantom installs: a txn that never entered the commit phase. ---
  for (const auto& rec : installs_) {
    if (rec.txn == 0) continue;  // preload
    auto it = txns_.find(rec.txn);
    if (it == txns_.end() || !it->second.phase_entered) {
      std::ostringstream os;
      os << "key " << rec.key << " @ " << rec.ts.to_string()
         << " installed by txn " << rec.txn
         << " which never sent a commit phase";
      out.push_back(Violation{Violation::Kind::kPhantomInstall, rec.txn,
                              rec.key, os.str()});
    }
  }

  // --- acked transactions: atomic visibility + causal order. ---
  std::vector<TxnId> txn_ids;
  txn_ids.reserve(txns_.size());
  for (const auto& [id, t] : txns_) txn_ids.push_back(id);
  std::sort(txn_ids.begin(), txn_ids.end());
  for (TxnId id : txn_ids) {
    const TxnRec& t = txns_.at(id);
    if (!t.acked) continue;
    for (Key key : t.write_keys) {
      if (find_install(key, t.commit_ts) == nullptr) {
        std::ostringstream os;
        os << "txn " << id << " acked at " << t.commit_ts.to_string()
           << " but its write to key " << key << " was never installed";
        out.push_back(
            Violation{Violation::Kind::kLostWrite, id, key, os.str()});
      }
    }
    if (t.commit_ts <= t.dep_ts) {
      std::ostringstream os;
      os << "txn " << id << " commit ts " << t.commit_ts.to_string()
         << " <= dep ts " << t.dep_ts.to_string();
      out.push_back(Violation{Violation::Kind::kCausalOrder, id, 0, os.str()});
    }
  }
  // A replayed commit minting a second version: an acked txn must install
  // only at its acked commit timestamp.  Installs that predate a failover
  // of their partition are exempt: a fast-path commit installed by the old
  // leader but never acked dies with its store, and the coordinator's
  // retry legitimately re-executes at a fresh timestamp on the promoted
  // leader (the stale version is unreachable, and the fresh one is above
  // every promise the dead leader's seals could have fed).
  for (const auto& rec : installs_) {
    if (rec.txn == 0) continue;
    if (auto ff = first_failover_at.find(rec.partition);
        ff != first_failover_at.end() &&
        index_of(&rec) < ff->second) {
      continue;
    }
    auto it = txns_.find(rec.txn);
    if (it != txns_.end() && it->second.acked &&
        rec.ts != it->second.commit_ts) {
      std::ostringstream os;
      os << "txn " << rec.txn << " acked at "
         << it->second.commit_ts.to_string() << " but also installed key "
         << rec.key << " @ " << rec.ts.to_string()
         << " (replayed commit minted a second version)";
      out.push_back(Violation{Violation::Kind::kDuplicateInstall, rec.txn,
                              rec.key, os.str()});
    }
  }

  // --- per-read checks: provenance, value, promise soundness, causality. ---
  for (const auto& r : reads_) {
    if (r.ts != Timestamp::min()) {
      const InstallRec* ins = find_install(r.key, r.ts);
      if (ins == nullptr) {
        std::ostringstream os;
        os << "txn " << r.txn << " read key " << r.key << " @ "
           << r.ts.to_string() << " but no such version was installed";
        out.push_back(Violation{Violation::Kind::kUnexplainedRead, r.txn,
                                r.key, os.str()});
      } else if (ins->value_hash != r.value_hash) {
        std::ostringstream os;
        os << "txn " << r.txn << " read key " << r.key << " @ "
           << r.ts.to_string() << " with a value different from the install";
        out.push_back(Violation{Violation::Kind::kValueMismatch, r.txn, r.key,
                                os.str()});
      }
    }
    if (const InstallRec* succ = successor(r.key, r.ts);
        succ != nullptr && succ->ts <= r.promise) {
      std::ostringstream os;
      os << "txn " << r.txn << " was promised key " << r.key << " @ "
         << r.ts.to_string() << " holds until " << r.promise.to_string()
         << " but txn " << succ->txn << " installed a successor @ "
         << succ->ts.to_string();
      out.push_back(
          Violation{Violation::Kind::kUnsoundPromise, r.txn, r.key, os.str()});
    }
    auto it = txns_.find(r.txn);
    if (it != txns_.end() && it->second.acked &&
        it->second.commit_ts <= r.ts) {
      std::ostringstream os;
      os << "txn " << r.txn << " commit ts " << it->second.commit_ts.to_string()
         << " <= read ts " << r.ts.to_string() << " of key " << r.key;
      out.push_back(
          Violation{Violation::Kind::kCausalOrder, r.txn, r.key, os.str()});
    }
  }

  // --- completed transactions: repeatable reads + snapshot validity. ---
  std::unordered_map<TxnId, std::vector<const ReadRec*>> reads_by_txn;
  for (const auto& r : reads_) reads_by_txn[r.txn].push_back(&r);
  for (TxnId id : txn_ids) {
    const TxnRec& t = txns_.at(id);
    if (!t.completed) continue;
    auto rit = reads_by_txn.find(id);
    if (rit == reads_by_txn.end()) continue;
    const auto& txn_reads = rit->second;
    // Repeatable reads: every observation of a key at one timestamp.
    std::map<Key, Timestamp> first_ts;
    for (const ReadRec* r : txn_reads) {
      auto [it, inserted] = first_ts.emplace(r->key, r->ts);
      if (!inserted && it->second != r->ts) {
        std::ostringstream os;
        os << "txn " << id << " observed key " << r->key << " @ "
           << it->second.to_string() << " and again @ " << r->ts.to_string();
        out.push_back(Violation{Violation::Kind::kNonRepeatableRead, id,
                                r->key, os.str()});
        it->second = r->ts;  // report each distinct flip once
      }
    }
    // Snapshot validity / atomic visibility: some snapshot must see every
    // read version and none of their successors.  Version v of key k
    // explains snapshots in [v.ts, succ(k, v.ts) - 1]; the windows of a
    // transaction's reads must intersect.
    Timestamp lo = Timestamp::min();
    Timestamp hi = Timestamp::max();
    Key lo_key = 0, hi_key = 0;
    for (const ReadRec* r : txn_reads) {
      if (r->ts > lo) {
        lo = r->ts;
        lo_key = r->key;
      }
      const InstallRec* succ = successor(r->key, r->ts);
      const Timestamp w_hi = succ != nullptr ? succ->ts.prev() : Timestamp::max();
      if (w_hi < hi) {
        hi = w_hi;
        hi_key = r->key;
      }
    }
    if (lo > hi) {
      std::ostringstream os;
      os << "txn " << id << ": no snapshot explains all reads (key " << lo_key
         << " forces >= " << lo.to_string() << ", key " << hi_key
         << " is overwritten by " << hi.next().to_string() << ")";
      out.push_back(Violation{Violation::Kind::kEmptySnapshotWindow, id,
                              lo_key, os.str()});
    }
  }

  // --- read-your-writes: a function never cache-reads its own write. ---
  std::map<std::tuple<TxnId, uint64_t, Key>, uint64_t> first_write_seq;
  for (const auto& w : writes_) {
    first_write_seq.emplace(std::make_tuple(w.txn, w.fn, w.key), w.seq);
  }
  for (const auto& r : reads_) {
    auto it = first_write_seq.find(std::make_tuple(r.txn, r.fn, r.key));
    if (it != first_write_seq.end() && it->second < r.seq) {
      std::ostringstream os;
      os << "txn " << r.txn << " function " << r.fn << " cache-read key "
         << r.key << " after buffering a write to it";
      out.push_back(
          Violation{Violation::Kind::kReadYourWrites, r.txn, r.key, os.str()});
    }
  }

  // --- handoff floors: a joiner never installs at or below its floor. ---
  // The floor covers every promise the sources issued for the migrated
  // keys, so an install under it could invalidate a promise the oracle's
  // per-read successor scan cannot attribute (the read may predate the
  // run's recording of the handoff).
  for (const auto& h : handoffs_) {
    for (size_t i = h.installs_before; i < installs_.size(); ++i) {
      const InstallRec& rec = installs_[i];
      if (rec.partition != h.partition || rec.ts > h.floor) continue;
      // A keyed handoff (scale-in survivor) scopes the floor to the
      // migrated chains; pre-owned keys are allowed below it.
      if (!h.keys.empty() &&
          !std::binary_search(h.keys.begin(), h.keys.end(), rec.key)) {
        continue;
      }
      // Exact re-materialization of an install recorded before the
      // handoff: a coordinator retry re-applying, at a promoted follower,
      // a version the dead leader already installed.  The version existed
      // before the floor was sealed, so no promise is endangered.
      bool rematerialization = false;
      if (auto bk = by_key.find(rec.key); bk != by_key.end()) {
        for (const InstallRec* prior : bk->second) {
          if (index_of(prior) < h.installs_before &&
              prior->partition == rec.partition && prior->ts == rec.ts &&
              prior->txn == rec.txn &&
              prior->value_hash == rec.value_hash) {
            rematerialization = true;
            break;
          }
        }
      }
      if (rematerialization) continue;
      std::ostringstream os;
      os << "partition " << h.partition << " joined with handoff floor "
         << h.floor.to_string() << " but later installed key " << rec.key
         << " @ " << rec.ts.to_string() << " (txn " << rec.txn << ")";
      out.push_back(
          Violation{Violation::Kind::kHandoffFloor, rec.txn, rec.key, os.str()});
    }
  }

  // --- durability across failover: no commit-acked write lost. ---
  // The commit ack asserted the writes were durable at f+1 (leader + every
  // caught-up follower); the promoted follower's store must therefore hold
  // every acked version this partition installed before the promotion.
  // Only the acked commit timestamp's version is owed (a pre-failover
  // install at another timestamp is a never-acked attempt that died with
  // the old leader and was re-executed, see above).
  for (const auto& f : failovers_) {
    for (size_t i = 0; i < f.installs_before && i < installs_.size(); ++i) {
      const InstallRec& rec = installs_[i];
      if (rec.partition != f.partition || rec.txn == 0) continue;
      auto it = txns_.find(rec.txn);
      if (it == txns_.end() || !it->second.acked) continue;
      if (rec.ts != it->second.commit_ts) continue;
      if (std::binary_search(f.surviving.begin(), f.surviving.end(),
                             std::make_pair(rec.key, rec.ts))) {
        continue;
      }
      std::ostringstream os;
      os << "partition " << f.partition << " failed over but the promoted "
         << "leader lost key " << rec.key << " @ " << rec.ts.to_string()
         << " (txn " << rec.txn << ", commit was acked as durable)";
      out.push_back(Violation{Violation::Kind::kDurabilityLoss, rec.txn,
                              rec.key, os.str()});
    }
  }

  // --- session monotonicity per client. ---
  for (const auto& [client, steps] : sessions_) {
    for (size_t i = 1; i < steps.size(); ++i) {
      if (steps[i] < steps[i - 1]) {
        std::ostringstream os;
        os << "client " << client << " session ts regressed from "
           << steps[i - 1].to_string() << " to " << steps[i].to_string()
           << " at DAG " << i;
        out.push_back(
            Violation{Violation::Kind::kSessionOrder, 0, 0, os.str()});
      }
    }
  }

  return out;
}

std::string ConsistencyOracle::report(const std::vector<Violation>& violations,
                                      size_t max_violations) const {
  std::ostringstream os;
  os << violations.size() << " violation(s); " << installs_.size()
     << " installs, " << reads_.size() << " reads, " << commits_recorded()
     << " acked commits, " << torn_aborts() << " torn aborts\n";
  const size_t n = std::min(violations.size(), max_violations);
  for (size_t i = 0; i < n; ++i) {
    const Violation& v = violations[i];
    os << "  [" << violation_name(v.kind) << "] " << v.detail << "\n";
    // Minimal counterexample context: the install history around the key.
    if (v.key != 0 || v.kind == Violation::Kind::kUnsoundPromise ||
        v.kind == Violation::Kind::kLostWrite) {
      size_t shown = 0;
      for (const auto& rec : installs_) {
        if (rec.key != v.key) continue;
        if (++shown > 6) {
          os << "      ...\n";
          break;
        }
        os << "      install key " << rec.key << " @ " << rec.ts.to_string()
           << " by txn " << rec.txn << " (partition " << rec.partition
           << ")\n";
      }
    }
  }
  if (violations.size() > n) {
    os << "  ... " << (violations.size() - n) << " more\n";
  }
  return os.str();
}

}  // namespace faastcc::check
