// A fan-out/fan-in composition: a feature-enrichment pipeline where three
// branches read different feature groups *in parallel* on different
// workers, and the aggregation function merges their snapshot intervals
// (Eq. 3 of the paper) before scoring.
//
//     fetch_profile ──► enrich_a ──┐
//                   ──► enrich_b ──┼──► score (sink)
//                   ──► enrich_c ──┘
//
// All four reads come from one causal snapshot even though they ran on
// four workers; if the branches had observed incompatible snapshots the
// merge would abort the DAG instead of producing a frankenstate.
#include <cstdio>

#include "harness/cluster.h"

using namespace faastcc;
using harness::Cluster;
using harness::ClusterParams;
using harness::SystemKind;

namespace {

constexpr Key kProfile = 1;
constexpr Key kFeatureA = 2;
constexpr Key kFeatureB = 3;
constexpr Key kFeatureC = 4;

faas::FunctionSpec make_fn(std::string name,
                           std::vector<uint32_t> children = {}) {
  faas::FunctionSpec f;
  f.name = std::move(name);
  f.children = std::move(children);
  return f;
}

}  // namespace

int main() {
  ClusterParams params;
  params.system = SystemKind::kFaasTcc;
  params.partitions = 4;
  params.compute_nodes = 5;
  params.clients = 0;
  params.workload.num_keys = 32;
  Cluster cluster(params);

  auto reader_of = [](Key key, const char* label) {
    return [key, label](faas::ExecEnv& env) -> sim::Task<Buffer> {
      auto vals = co_await env.txn.read(std::vector<Key>(1, key));
      if (!vals.has_value()) {
        env.abort_requested = true;
        co_return Buffer{};
      }
      std::printf("  [%s] read \"%s\"\n", label, std::string((*vals)[0].view()).c_str());
      BufWriter w;
      w.put_bytes((*vals)[0]);
      co_return w.take();
    };
  };
  cluster.registry().register_function("fetch_profile",
                                       reader_of(kProfile, "profile"));
  cluster.registry().register_function("enrich_a",
                                       reader_of(kFeatureA, "enrich_a"));
  cluster.registry().register_function("enrich_b",
                                       reader_of(kFeatureB, "enrich_b"));
  cluster.registry().register_function("enrich_c",
                                       reader_of(kFeatureC, "enrich_c"));
  cluster.registry().register_function(
      "score", [](faas::ExecEnv& env) -> sim::Task<Buffer> {
        // By the time this runs, the runtime has merged the three parents'
        // snapshot intervals (Eq. 3); reading once more is still served
        // from the same consistent snapshot.
        auto vals = co_await env.txn.read(std::vector<Key>(1, kProfile));
        if (!vals.has_value()) {
          env.abort_requested = true;
          co_return Buffer{};
        }
        std::printf("  [score] aggregated three branches; profile=\"%s\"\n",
                    std::string((*vals)[0].view()).c_str());
        env.txn.write(10, "score:0.97");
        co_return Buffer{};
      });

  cluster.start();

  // Seed the features through one atomic transaction.
  cluster.registry().register_function(
      "seed", [](faas::ExecEnv& env) -> sim::Task<Buffer> {
        env.txn.write(kProfile, "user-42");
        env.txn.write(kFeatureA, "geo:lisbon");
        env.txn.write(kFeatureB, "plan:pro");
        env.txn.write(kFeatureC, "tenure:3y");
        co_return Buffer{};
      });

  net::RpcNode client(cluster.network(), 900);
  int completed = 0;
  int committed = 0;
  client.handle_oneway(faas::kDagDone, [&](Buffer b, net::Address) {
    ++completed;
    if (decode_message<faas::DagDoneMsg>(b).committed) ++committed;
  });
  auto pump = [&](int until) {
    while (completed < until && cluster.loop().now() < seconds(30)) {
      cluster.loop().run_until(cluster.loop().now() + milliseconds(5));
    }
    cluster.loop().run_until(cluster.loop().now() + milliseconds(120));
  };

  faas::StartDagMsg seed;
  seed.txn_id = 1;
  seed.client = 900;
  seed.spec = faas::DagSpec::chain({make_fn("seed")});
  client.send(cluster.scheduler_address(), faas::kStartDag, seed);
  pump(1);

  std::printf("running fan-out pipeline:\n");
  faas::StartDagMsg start;
  start.txn_id = 2;
  start.client = 900;
  faas::DagSpec spec;
  spec.functions = {make_fn("fetch_profile", {1, 2, 3}),
                    make_fn("enrich_a", {4}), make_fn("enrich_b", {4}),
                    make_fn("enrich_c", {4}), make_fn("score")};
  start.spec = std::move(spec);
  client.send(cluster.scheduler_address(), faas::kStartDag, start);
  pump(2);

  std::printf("pipeline %s\n", committed == 2 ? "committed" : "aborted");
  return committed == 2 ? 0 : 1;
}
