#include "storage/stabilizer.h"

#include <algorithm>

namespace faastcc::storage {

Stabilizer::Stabilizer(PartitionId self, size_t num_partitions,
                       StabTopology topology, uint32_t tree_fanout)
    : self_(self),
      topology_(topology),
      fanout_(tree_fanout == 0 ? 1 : tree_fanout),
      last_heard_(num_partitions, Timestamp::min()) {
  rebuild_min_tree();
  resize_children();
}

void Stabilizer::rebuild_min_tree() {
  cap_ = 1;
  while (cap_ < last_heard_.size()) cap_ <<= 1;
  min_tree_.assign(2 * cap_, Timestamp::max());
  for (size_t i = 0; i < last_heard_.size(); ++i) {
    min_tree_[cap_ + i] = last_heard_[i];
  }
  for (size_t i = cap_ - 1; i >= 1; --i) {
    min_tree_[i] = std::min(min_tree_[2 * i], min_tree_[2 * i + 1]);
  }
}

void Stabilizer::min_tree_set(size_t leaf, Timestamp v) {
  size_t i = cap_ + leaf;
  min_tree_[i] = v;
  while (i > 1) {
    i >>= 1;
    min_tree_[i] = std::min(min_tree_[2 * i], min_tree_[2 * i + 1]);
  }
}

void Stabilizer::resize_children() {
  const uint64_t first = uint64_t{fanout_} * self_ + 1;
  const uint64_t last = std::min<uint64_t>(first + fanout_,
                                           last_heard_.size());
  child_min_.assign(last > first ? static_cast<size_t>(last - first) : 0,
                    Timestamp::min());
}

bool Stabilizer::on_gossip(PartitionId from, Timestamp safe_time) {
  // A joiner's gossip can reach a partition that has not yet adopted the
  // new routing table (missed broadcast, pull pending).  Drop it — but
  // observably: the epoch gate will force a table refresh soon, and until
  // then excluding the joiner from the min is a freshness question, not a
  // soundness one — per-key promises anchor on the owner's own safe time.
  if (from >= last_heard_.size()) {
    return drop(DropReason::kUnknownMember);
  }
  auto& slot = last_heard_[from];
  if (safe_time > slot) {
    slot = safe_time;
    min_tree_set(from, safe_time);
  }
  return true;
}

bool Stabilizer::reconcile_tag(uint32_t tag) {
  const uint32_t gen = tag >> kGenShift;
  const size_t size = tag & ((uint32_t{1} << kGenShift) - 1);
  if (gen > shrink_gen_) {
    // The sender proved the membership shrank past our view.  Shrinks
    // retire trailing ids only, so the (generation, count) pair pins the
    // exact membership; adopt it (growing or truncating as needed) before
    // accepting.  Peer addresses catch up when the routing table arrives.
    shrink_gen_ = gen;
    const size_t old_n = last_heard_.size();
    if (size > old_n) {
      last_heard_.resize(size, Timestamp::min());
    } else if (size < old_n) {
      last_heard_.resize(size);
    }
    rebuild_min_tree();
    resize_children();
    return true;
  }
  if (gen < shrink_gen_) return false;  // pre-shrink fold: stale
  if (size > last_heard_.size()) {
    // Same generation, larger count: membership grew past our view; adopt
    // the count (with full barrier semantics) before accepting.
    extend_membership(size);
    return true;
  }
  // Same generation, smaller count: folded over the old membership — it
  // may omit joiners and accepting it would leak past the join barrier.
  return size == last_heard_.size();
}

bool Stabilizer::on_child_report(PartitionId child, uint32_t membership,
                                 Timestamp subtree_min) {
  if (!reconcile_tag(membership)) {
    return drop(DropReason::kStaleReportTag);
  }
  const uint64_t first = uint64_t{fanout_} * self_ + 1;
  if (child < first || child >= first + child_min_.size()) {
    return drop(DropReason::kForeignChild);
  }
  auto& slot = child_min_[child - first];
  // Subtree minima are monotone while membership is fixed (every input is
  // a monotone per-member safe time), and the membership tag matched.
  if (subtree_min > slot) slot = subtree_min;
  return true;
}

Timestamp Stabilizer::fold_subtree_min(Timestamp own_safe) const {
  Timestamp m = own_safe;
  for (const Timestamp t : child_min_) m = std::min(m, t);
  return m;
}

bool Stabilizer::on_stable_broadcast(uint32_t membership, Timestamp stable) {
  if (!reconcile_tag(membership)) {
    // A fold over the old membership can sit above the joiners' floor;
    // max-merging it would advance the stable past commits a joiner may
    // still install.  (Keeping our *current* value is fine: it predates
    // the bump and is bounded by the sources' sealed safe times.)
    return drop(DropReason::kStaleBroadcastTag);
  }
  if (stable > tree_stable_) {
    tree_stable_ = stable;
    return true;
  }
  return true;
}

void Stabilizer::extend_membership(size_t num_partitions) {
  const size_t old_n = last_heard_.size();
  if (num_partitions <= old_n) return;
  last_heard_.resize(num_partitions, Timestamp::min());
  if (num_partitions > cap_) {
    rebuild_min_tree();
  } else {
    // The new leaves were max() padding; pin them to the floor.
    for (size_t i = old_n; i < num_partitions; ++i) {
      min_tree_set(i, Timestamp::min());
    }
  }
  // Every child report may have been folded before these members existed
  // (the members can hang anywhere below the child); re-arm the barrier
  // until a report tagged with the new membership arrives.
  resize_children();
}

void Stabilizer::contract_membership(size_t num_partitions) {
  if (num_partitions >= last_heard_.size()) return;
  ++shrink_gen_;
  // Survivors keep their last-heard safe times; only the retired tail
  // leaves the fold.  min over a subset >= min over the superset, so the
  // announced stable can only advance across a contraction, never regress.
  last_heard_.resize(num_partitions);
  rebuild_min_tree();
  // Old child reports may still fold retired members' floors.  That is
  // merely conservative, but re-arming keeps one rule for every membership
  // change: barrier until a report tagged with the new membership arrives
  // (stale-generation tags are dropped by reconcile_tag).
  resize_children();
}

}  // namespace faastcc::storage
