# Empty dependencies file for comparative_test.
# This may be replaced when dependencies are built.
