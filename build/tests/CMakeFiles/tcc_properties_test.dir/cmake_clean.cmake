file(REMOVE_RECURSE
  "CMakeFiles/tcc_properties_test.dir/tcc_properties_test.cc.o"
  "CMakeFiles/tcc_properties_test.dir/tcc_properties_test.cc.o.d"
  "tcc_properties_test"
  "tcc_properties_test.pdb"
  "tcc_properties_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcc_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
