// Wire messages of the storage layer (TCC partitions and the eventually
// consistent store).  Encoded sizes are exact and feed the paper's byte
// metrics (Fig. 5, Fig. 7).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/hlc.h"
#include "common/serialize.h"
#include "common/types.h"
#include "routing/routing_table.h"

namespace faastcc::storage {

// ---------------------------------------------------------------------------
// Method ids.
// ---------------------------------------------------------------------------

enum TccMethod : uint16_t {
  kTccRead = 1,
  kTccPrepare = 2,
  kTccCommit = 3,
  kTccSubscribe = 4,
  kTccUnsubscribe = 5,
  kTccGossip = 6,   // one-way: stabilization
  kTccPush = 7,     // one-way: pub/sub update batch
  kTccAbort = 8,    // releases prepares after an SI conflict
  // Elastic scale-out handoff (coordinator-driven, idempotent).
  kTccMigrateOut = 9,  // source: seal moved slots, extract their chains
  kTccMigrateIn = 10,  // target: install chains + stabilization seed
  // Tree-topology stabilization (stabilization_topology=tree): safe-time
  // minima travel up a k-ary aggregation tree over partition ids and the
  // root's fold travels back down, O(P) messages per round instead of the
  // mesh's O(P²) broadcast.
  kTccSafeUp = 11,      // one-way: child -> parent subtree minimum
  kTccStableDown = 12,  // one-way: parent -> child root fold
  // Coalesced pub/sub push (push_coalescing=true): same semantics as
  // kTccPush with the per-update promise derived from the frame header.
  kTccPushBatch = 13,
  // Per-slot replication (leader -> follower, replication_factor > 0).
  kTccReplInstall = 14,  // stream one committed txn's installs
  kTccReplSeal = 15,     // seal a safe time at the follower (lease beat)
  kTccBackfill = 16,     // full chain-snapshot re-sync for a lagging follower
};

enum EvMethod : uint16_t {
  kEvGet = 20,
  kEvPut = 21,
  kEvGossipDigest = 22,  // one-way: anti-entropy between replicas
  kEvStableCut = 23,     // one-way: gossiped GC horizon for dependencies
  kEvSubscribe = 24,     // caches subscribe to update notifications
  kEvUnsubscribe = 25,
  kEvPush = 26,          // one-way: update batch to subscribed caches
};

// ---------------------------------------------------------------------------
// TCC storage messages.
// ---------------------------------------------------------------------------

template <typename W>
void put_ts(W& w, Timestamp t) {
  w.put_u64(t.raw());
}
inline Timestamp get_ts(BufReader& r) { return Timestamp(r.get_u64()); }

// One versioned value as served by the TCC store: the paper's tuple
// <k, v, t_v, promise_v>.
struct VersionedValue {
  Key key = 0;
  Value value;
  Timestamp ts;
  Timestamp promise;

  // Exact wire size; keep in sync with encode() (messages_test asserts
  // size_hint() == encoded_size() for every type that has one).
  size_t size_hint() const { return 8 + 4 + value.size() + 8 + 8; }

  template <typename W>
  void encode(W& w) const {
    w.put_u64(key);
    w.put_bytes(value);
    put_ts(w, ts);
    put_ts(w, promise);
  }
  static VersionedValue decode(BufReader& r) {
    VersionedValue v;
    v.key = r.get_u64();
    v.value = r.get_bytes();
    v.ts = get_ts(r);
    v.promise = get_ts(r);
    return v;
  }
};

// TCC_ReadTX request.  `snapshot` is the upper bound (the client's s_high;
// Timestamp::max() on the first read of a DAG).  For each key the client may
// supply the timestamp of the version it already caches; when the store
// would serve exactly that version it answers "unchanged" with a refreshed
// promise and no value bytes (the small responses of Fig. 7).
struct TccReadReq {
  Timestamp snapshot;
  std::vector<Key> keys;
  std::vector<Timestamp> cached_ts;  // parallel to keys; min() == none

  size_t size_hint() const { return 8 + 4 + keys.size() * 16; }

  template <typename W>
  void encode(W& w) const {
    put_ts(w, snapshot);
    w.put_u32(static_cast<uint32_t>(keys.size()));
    for (size_t i = 0; i < keys.size(); ++i) {
      w.put_u64(keys[i]);
      put_ts(w, cached_ts[i]);
    }
  }
  static TccReadReq decode(BufReader& r) {
    TccReadReq q;
    q.snapshot = get_ts(r);
    const uint32_t n = r.get_u32();
    q.keys.reserve(n);
    q.cached_ts.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      q.keys.push_back(r.get_u64());
      q.cached_ts.push_back(get_ts(r));
    }
    return q;
  }
};

struct TccReadResp {
  enum class Status : uint8_t {
    kValue = 0,      // full version attached
    kUnchanged = 1,  // client's cached version still current; promise updated
    kMiss = 2,       // no version <= snapshot survives (GC'd or never written)
    // The request matched this partition's epoch when admitted, but the
    // key's chain was handed to another partition while the handler slept
    // (elastic scale-out).  No version data: the client must re-route
    // through a fresh routing table.
    kWrongOwner = 3,
  };
  struct Entry {
    Key key = 0;
    Status status = Status::kMiss;
    Value value;        // only for kValue
    Timestamp ts;       // kValue / kUnchanged
    Timestamp promise;  // kValue / kUnchanged
    // True when the served version has no successor yet: its promise is
    // the stable time and may later be extended; a version with a known
    // successor has a final promise.
    bool open = false;
  };
  std::vector<Entry> entries;
  Timestamp stable_time;  // the partition's current view; diagnostic

  template <typename W>
  void encode(W& w) const {
    put_ts(w, stable_time);
    w.put_u32(static_cast<uint32_t>(entries.size()));
    for (const auto& e : entries) {
      w.put_u64(e.key);
      w.put_u8(static_cast<uint8_t>(e.status));
      if (e.status == Status::kValue || e.status == Status::kUnchanged) {
        put_ts(w, e.ts);
        put_ts(w, e.promise);
        w.put_bool(e.open);
      }
      if (e.status == Status::kValue) w.put_bytes(e.value);
    }
  }
  static TccReadResp decode(BufReader& r) {
    TccReadResp resp;
    resp.stable_time = get_ts(r);
    const uint32_t n = r.get_u32();
    resp.entries.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      Entry e;
      e.key = r.get_u64();
      e.status = static_cast<Status>(r.get_u8());
      if (e.status == Status::kValue || e.status == Status::kUnchanged) {
        e.ts = get_ts(r);
        e.promise = get_ts(r);
        e.open = r.get_bool();
      }
      if (e.status == Status::kValue) e.value = r.get_bytes();
      resp.entries.push_back(std::move(e));
    }
    return resp;
  }
};

struct KeyValue {
  Key key = 0;
  Value value;

  size_t size_hint() const { return 8 + 4 + value.size(); }

  template <typename W>
  void encode(W& w) const {
    w.put_u64(key);
    w.put_bytes(value);
  }
  static KeyValue decode(BufReader& r) {
    KeyValue kv;
    kv.key = r.get_u64();
    kv.value = r.get_bytes();
    return kv;
  }
};

template <typename W, typename T>
void put_vec(W& w, const std::vector<T>& v) {
  w.put_u32(static_cast<uint32_t>(v.size()));
  for (const auto& e : v) e.encode(w);
}

template <typename T>
std::vector<T> get_vec(BufReader& r) {
  const uint32_t n = r.get_u32();
  std::vector<T> v;
  v.reserve(n);
  for (uint32_t i = 0; i < n; ++i) v.push_back(T::decode(r));
  return v;
}

// Prepare phase of a multi-partition commit: reserves a slot so that the
// participant's safe time (and hence the global stable time) cannot advance
// past the eventual commit timestamp before the writes are installed.
//
// In Snapshot Isolation mode (the extension of §7 of the paper) the
// prepare additionally performs first-committer-wins write-write conflict
// detection: it fails if any written key has a version newer than the
// transaction's read snapshot, or is currently prepared by another
// transaction.
struct TccPrepareReq {
  TxnId txn = 0;
  Timestamp dep_ts;  // causal lower bound (client's reads + session order)
  bool si_mode = false;
  Timestamp snapshot_ts;     // SI: the transaction's read snapshot (s_high)
  std::vector<Key> write_keys;  // SI: written keys owned by this partition

  size_t size_hint() const { return 8 + 8 + 1 + 8 + 4 + write_keys.size() * 8; }

  template <typename W>
  void encode(W& w) const {
    w.put_u64(txn);
    put_ts(w, dep_ts);
    w.put_bool(si_mode);
    put_ts(w, snapshot_ts);
    w.put_u32(static_cast<uint32_t>(write_keys.size()));
    for (Key k : write_keys) w.put_u64(k);
  }
  static TccPrepareReq decode(BufReader& r) {
    TccPrepareReq q;
    q.txn = r.get_u64();
    q.dep_ts = get_ts(r);
    q.si_mode = r.get_bool();
    q.snapshot_ts = get_ts(r);
    const uint32_t n = r.get_u32();
    q.write_keys.reserve(n);
    for (uint32_t i = 0; i < n; ++i) q.write_keys.push_back(r.get_u64());
    return q;
  }
};

struct TccPrepareResp {
  Timestamp prepare_ts;
  bool ok = true;  // false: SI write-write conflict, transaction must abort

  template <typename W>
  void encode(W& w) const {
    put_ts(w, prepare_ts);
    w.put_bool(ok);
  }
  static TccPrepareResp decode(BufReader& r) {
    TccPrepareResp resp;
    resp.prepare_ts = get_ts(r);
    resp.ok = r.get_bool();
    return resp;
  }
};

// Releases a prepare without installing anything (SI conflict abort).
struct TccAbortReq {
  TxnId txn = 0;

  template <typename W>
  void encode(W& w) const { w.put_u64(txn); }
  static TccAbortReq decode(BufReader& r) { return {r.get_u64()}; }
};

// Commit phase.  In the general (multi-partition) case `commit_ts` was
// computed by the coordinator from the prepare responses; in the
// single-partition fast path it is Timestamp::min() and the partition
// assigns a timestamp itself, above `dep_ts`.
struct TccCommitReq {
  TxnId txn = 0;
  Timestamp commit_ts;
  Timestamp dep_ts;
  std::vector<KeyValue> writes;  // only the keys owned by this partition

  size_t size_hint() const {
    size_t n = 8 + 8 + 8 + 4;
    for (const auto& kv : writes) n += kv.size_hint();
    return n;
  }

  template <typename W>
  void encode(W& w) const {
    w.put_u64(txn);
    put_ts(w, commit_ts);
    put_ts(w, dep_ts);
    put_vec(w, writes);
  }
  static TccCommitReq decode(BufReader& r) {
    TccCommitReq q;
    q.txn = r.get_u64();
    q.commit_ts = get_ts(r);
    q.dep_ts = get_ts(r);
    q.writes = get_vec<KeyValue>(r);
    return q;
  }
};

struct TccCommitResp {
  bool ok = true;
  template <typename W>
  void encode(W& w) const { w.put_bool(ok); }
  static TccCommitResp decode(BufReader& r) { return {r.get_bool()}; }
};

struct SubscribeReq {
  std::vector<Key> keys;
  // Per-subscriber control-channel sequence number; a partition drops
  // (un)subscribe requests older than the newest it has processed, so a
  // duplicated/delayed retry cannot resurrect a cancelled subscription.
  // 0 = unsequenced (the eventual store's caches don't need the ordering).
  uint64_t seq = 0;

  size_t size_hint() const { return 4 + keys.size() * 8 + 8; }

  template <typename W>
  void encode(W& w) const {
    w.put_u32(static_cast<uint32_t>(keys.size()));
    for (Key k : keys) w.put_u64(k);
    w.put_u64(seq);
  }
  static SubscribeReq decode(BufReader& r) {
    SubscribeReq q;
    const uint32_t n = r.get_u32();
    q.keys.reserve(n);
    for (uint32_t i = 0; i < n; ++i) q.keys.push_back(r.get_u64());
    q.seq = r.get_u64();
    return q;
  }
};

// One-way stabilization gossip: partition `partition` will never again
// commit a transaction with timestamp <= `safe_time`.
struct GossipMsg {
  PartitionId partition = 0;
  Timestamp safe_time;

  template <typename W>
  void encode(W& w) const {
    w.put_u32(partition);
    put_ts(w, safe_time);
  }
  static GossipMsg decode(BufReader& r) {
    GossipMsg g;
    g.partition = r.get_u32();
    g.safe_time = get_ts(r);
    return g;
  }
};

// One-way pub/sub push: fresh versions of subscribed keys plus the stable
// time at push.  Pushed promises are max(version ts, stable at push).
//
// Pushes are sent every refresh period even when no subscribed key
// changed: the dirty set is complete for subscribed keys, so a subscriber
// may extend the promise of any *open* cached version of this partition
// not listed in `updates` to `stable_time`.
struct PushMsg {
  PartitionId partition = 0;
  // Per-subscriber channel sequence (first push is 1).  Pushes are one-way
  // and best-effort; a gap tells the subscriber it may have missed the
  // announcement of a successor version, so it must close open entries of
  // this partition until a re-announce arrives.  0 = unsequenced.
  uint64_t seq = 0;
  Timestamp stable_time;
  std::vector<VersionedValue> updates;

  size_t size_hint() const {
    size_t n = 4 + 8 + 8 + 4;
    for (const auto& vv : updates) n += vv.size_hint();
    return n;
  }

  template <typename W>
  void encode(W& w) const {
    w.put_u32(partition);
    w.put_u64(seq);
    put_ts(w, stable_time);
    put_vec(w, updates);
  }
  static PushMsg decode(BufReader& r) {
    PushMsg p;
    p.partition = r.get_u32();
    p.seq = r.get_u64();
    p.stable_time = get_ts(r);
    p.updates = get_vec<VersionedValue>(r);
    return p;
  }
};

// One update inside a coalesced push frame: the promise is not shipped —
// a pushed promise is always max(version ts, stable at push), and the
// frame header carries the stable time once, so the receiver re-derives
// it losslessly (8 bytes saved per update over VersionedValue).
struct PushUpdate {
  Key key = 0;
  Value value;
  Timestamp ts;

  size_t size_hint() const { return 8 + 4 + value.size() + 8; }

  template <typename W>
  void encode(W& w) const {
    w.put_u64(key);
    w.put_bytes(value);
    put_ts(w, ts);
  }
  static PushUpdate decode(BufReader& r) {
    PushUpdate u;
    u.key = r.get_u64();
    u.value = r.get_bytes();
    u.ts = get_ts(r);
    return u;
  }
};

// Coalesced pub/sub push (push_coalescing=true): identical semantics and
// sequencing to PushMsg, with all shared per-frame state (partition, seq,
// stable time) carried once in the header and per-update promises derived
// at the receiver.
struct PushBatchMsg {
  PartitionId partition = 0;
  uint64_t seq = 0;  // same channel sequence space as PushMsg
  Timestamp stable_time;
  std::vector<PushUpdate> updates;

  size_t size_hint() const {
    size_t n = 4 + 8 + 8 + 4;
    for (const auto& u : updates) n += u.size_hint();
    return n;
  }

  template <typename W>
  void encode(W& w) const {
    w.put_u32(partition);
    w.put_u64(seq);
    put_ts(w, stable_time);
    put_vec(w, updates);
  }
  static PushBatchMsg decode(BufReader& r) {
    PushBatchMsg p;
    p.partition = r.get_u32();
    p.seq = r.get_u64();
    p.stable_time = get_ts(r);
    p.updates = get_vec<PushUpdate>(r);
    return p;
  }
};

// ---------------------------------------------------------------------------
// Tree-topology stabilization.
// ---------------------------------------------------------------------------

// One-way child -> parent: min of the sender's safe time and every subtree
// minimum its own children reported.  `membership` is the partition count
// the fold covered; the receiver drops smaller-tagged reports (they omit
// joiners' floors) and adopts larger tags — see Stabilizer.
struct SafeUpMsg {
  PartitionId partition = 0;  // sender (a direct child of the receiver)
  uint32_t membership = 0;
  Timestamp subtree_min;

  size_t size_hint() const { return 4 + 4 + 8; }

  template <typename W>
  void encode(W& w) const {
    w.put_u32(partition);
    w.put_u32(membership);
    put_ts(w, subtree_min);
  }
  static SafeUpMsg decode(BufReader& r) {
    SafeUpMsg m;
    m.partition = r.get_u32();
    m.membership = r.get_u32();
    m.subtree_min = get_ts(r);
    return m;
  }
};

// One-way parent -> child: the root's global fold, relayed one level per
// gossip round.  Tagged like SafeUpMsg and for the same reason.
struct StableDownMsg {
  uint32_t membership = 0;
  Timestamp stable;

  size_t size_hint() const { return 4 + 8; }

  template <typename W>
  void encode(W& w) const {
    w.put_u32(membership);
    put_ts(w, stable);
  }
  static StableDownMsg decode(BufReader& r) {
    StableDownMsg m;
    m.membership = r.get_u32();
    m.stable = get_ts(r);
    return m;
  }
};

// ---------------------------------------------------------------------------
// Elastic scale-out handoff.
// ---------------------------------------------------------------------------

// One committed version inside a migrated chain (the promise is not
// shipped: promises are a serving-side construct re-derived at the target
// from its own stable view).
struct MigratedVersion {
  Value value;
  Timestamp ts;

  size_t size_hint() const { return 4 + value.size() + 8; }

  template <typename W>
  void encode(W& w) const {
    w.put_bytes(value);
    put_ts(w, ts);
  }
  static MigratedVersion decode(BufReader& r) {
    MigratedVersion v;
    v.value = r.get_bytes();
    v.ts = get_ts(r);
    return v;
  }
};

// A whole per-key version chain leaving its old owner.
struct MigratedChain {
  Key key = 0;
  std::vector<MigratedVersion> versions;  // ascending ts

  size_t size_hint() const {
    size_t n = 8 + 4;
    for (const auto& v : versions) n += v.size_hint();
    return n;
  }

  template <typename W>
  void encode(W& w) const {
    w.put_u64(key);
    put_vec(w, versions);
  }
  static MigratedChain decode(BufReader& r) {
    MigratedChain c;
    c.key = r.get_u64();
    c.versions = get_vec<MigratedVersion>(r);
    return c;
  }
};

// Coordinator -> source partition: adopt `table` (sealing the slots it no
// longer owns) and extract the chains of every slot that moved from this
// partition to `target`.  Carrying the full table makes the request
// self-contained: a source that missed the epoch broadcast still seals
// correctly.  Idempotent — the source caches its response per
// (epoch, target) and replays it for duplicates/retries.
struct TccMigrateOutReq {
  routing::RoutingTable table;
  PartitionId target = 0;

  size_t size_hint() const { return 4 + table.size_hint(); }

  // The table goes last: its replica section is a trailing optional block
  // detected by remaining(), so nothing may follow it on the wire.
  template <typename W>
  void encode(W& w) const {
    w.put_u32(target);
    table.encode(w);
  }
  static TccMigrateOutReq decode(BufReader& r) {
    TccMigrateOutReq q;
    q.target = r.get_u32();
    q.table = routing::RoutingTable::decode(r);
    return q;
  }
};

struct TccMigrateOutResp {
  bool ok = true;
  // The source's safe time taken AFTER sealing: every promise the source
  // ever issued for the migrated keys is <= this, so it seeds the target's
  // clock (the target never commits at or below it).
  Timestamp safe_time;
  // The source's stabilizer snapshot (last-heard safe time per old
  // partition) — genuinely observed values, safe for the target to merge.
  std::vector<Timestamp> last_heard;
  std::vector<MigratedChain> chains;

  size_t size_hint() const {
    size_t n = 1 + 8 + 4 + last_heard.size() * 8 + 4;
    for (const auto& c : chains) n += c.size_hint();
    return n;
  }

  template <typename W>
  void encode(W& w) const {
    w.put_bool(ok);
    put_ts(w, safe_time);
    w.put_u32(static_cast<uint32_t>(last_heard.size()));
    for (Timestamp t : last_heard) put_ts(w, t);
    put_vec(w, chains);
  }
  static TccMigrateOutResp decode(BufReader& r) {
    TccMigrateOutResp resp;
    resp.ok = r.get_bool();
    resp.safe_time = get_ts(r);
    const uint32_t n = r.get_u32();
    resp.last_heard.reserve(n);
    for (uint32_t i = 0; i < n; ++i) resp.last_heard.push_back(get_ts(r));
    resp.chains = get_vec<MigratedChain>(r);
    return resp;
  }
};

// Coordinator -> target partition: one source's handoff parcel.  The
// target activates (starts serving) once parcels from all
// `expected_sources` distinct sources have been applied.  Idempotent per
// (epoch, source).
struct TccMigrateInReq {
  uint32_t epoch = 0;
  PartitionId source = 0;
  uint32_t expected_sources = 0;
  Timestamp source_safe;
  std::vector<Timestamp> last_heard;
  std::vector<MigratedChain> chains;

  size_t size_hint() const {
    size_t n = 4 + 4 + 4 + 8 + 4 + last_heard.size() * 8 + 4;
    for (const auto& c : chains) n += c.size_hint();
    return n;
  }

  template <typename W>
  void encode(W& w) const {
    w.put_u32(epoch);
    w.put_u32(source);
    w.put_u32(expected_sources);
    put_ts(w, source_safe);
    w.put_u32(static_cast<uint32_t>(last_heard.size()));
    for (Timestamp t : last_heard) put_ts(w, t);
    put_vec(w, chains);
  }
  static TccMigrateInReq decode(BufReader& r) {
    TccMigrateInReq q;
    q.epoch = r.get_u32();
    q.source = r.get_u32();
    q.expected_sources = r.get_u32();
    q.source_safe = get_ts(r);
    const uint32_t n = r.get_u32();
    q.last_heard.reserve(n);
    for (uint32_t i = 0; i < n; ++i) q.last_heard.push_back(get_ts(r));
    q.chains = get_vec<MigratedChain>(r);
    return q;
  }
};

struct TccMigrateInResp {
  bool ok = true;
  template <typename W>
  void encode(W& w) const { w.put_bool(ok); }
  static TccMigrateInResp decode(BufReader& r) { return {r.get_bool()}; }
};

// ---------------------------------------------------------------------------
// Per-slot replication (leader + k followers).
// ---------------------------------------------------------------------------

// Leader -> follower, on the commit path: one committed transaction's
// installs.  `seq` is the leader's per-follower stream sequence number —
// contiguous at the follower means no frame was dropped; a hole that the
// leader's bounded retry could not close is repaired by kTccBackfill, not
// by re-streaming.  Applying is idempotent (installs dedup on (key, ts),
// the resolved record on txn), so duplicated or re-sent frames are
// at-most-once by construction.
struct TccReplInstallReq {
  TxnId txn = 0;
  Timestamp commit_ts;
  uint64_t seq = 0;
  std::vector<KeyValue> writes;

  size_t size_hint() const {
    size_t n = 8 + 8 + 8 + 4;
    for (const auto& kv : writes) n += kv.size_hint();
    return n;
  }

  template <typename W>
  void encode(W& w) const {
    w.put_u64(txn);
    put_ts(w, commit_ts);
    w.put_u64(seq);
    put_vec(w, writes);
  }
  static TccReplInstallReq decode(BufReader& r) {
    TccReplInstallReq q;
    q.txn = r.get_u64();
    q.commit_ts = get_ts(r);
    q.seq = r.get_u64();
    q.writes = get_vec<KeyValue>(r);
    return q;
  }
};

struct TccReplInstallResp {
  bool ok = true;
  template <typename W>
  void encode(W& w) const { w.put_bool(ok); }
  static TccReplInstallResp decode(BufReader& r) { return {r.get_bool()}; }
};

// Leader -> follower, every gossip beat: seal `safe` at the follower and
// renew the leader lease.  The leader only gossips a safe time into the
// stabilizer once every caught-up follower acked its seal, so any promise
// derived from it survives a promotion (the handoff floor is at least the
// sealed value).  `seq_high` is the leader's newest assigned stream seq;
// a follower whose contiguous high-water trails it knows it is lagging.
struct TccReplSealReq {
  Timestamp safe;
  uint64_t seq_high = 0;

  size_t size_hint() const { return 8 + 8; }

  template <typename W>
  void encode(W& w) const {
    put_ts(w, safe);
    w.put_u64(seq_high);
  }
  static TccReplSealReq decode(BufReader& r) {
    TccReplSealReq q;
    q.safe = get_ts(r);
    q.seq_high = r.get_u64();
    return q;
  }
};

struct TccReplSealResp {
  bool ok = true;
  uint64_t applied_seq = 0;  // follower's contiguous stream high-water

  size_t size_hint() const { return 1 + 8; }

  template <typename W>
  void encode(W& w) const {
    w.put_bool(ok);
    w.put_u64(applied_seq);
  }
  static TccReplSealResp decode(BufReader& r) {
    TccReplSealResp p;
    p.ok = r.get_bool();
    p.applied_seq = r.get_u64();
    return p;
  }
};

// A (txn, commit_ts) pair from the leader's resolved-transaction window,
// shipped with a backfill so a promoted follower can dedup coordinator
// commit retries exactly as the dead leader would have.
struct ResolvedTxn {
  TxnId txn = 0;
  Timestamp ts;

  size_t size_hint() const { return 8 + 8; }

  template <typename W>
  void encode(W& w) const {
    w.put_u64(txn);
    put_ts(w, ts);
  }
  static ResolvedTxn decode(BufReader& r) {
    ResolvedTxn t;
    t.txn = r.get_u64();
    t.ts = get_ts(r);
    return t;
  }
};

// Leader -> lagging/fresh follower: a full re-sync from the chain head
// (RethinkDB's broadcaster/listener backfill, collapsed to one frame at
// simulation scale).  Reuses the elastic handoff's chain shapes; applying
// is idempotent so a duplicated backfill is harmless.  `safe` doubles as
// a seal and `seq_high` fast-forwards the follower's stream high-water
// past any holes the backfill just filled.
struct TccBackfillReq {
  Timestamp safe;
  uint64_t seq_high = 0;
  std::vector<ResolvedTxn> resolved;
  std::vector<MigratedChain> chains;
  // Routing epoch the leader assembled this parcel under.  Trailing
  // optional (encoded only when nonzero) so pre-elastic parcels keep their
  // bytes; a follower refuses parcels older than its own table — a
  // pre-shrink leader's backfill must not resurrect drained chains at a
  // follower that already moved on.
  uint32_t epoch = 0;

  size_t size_hint() const {
    size_t n = 8 + 8 + 4 + resolved.size() * 16 + 4;
    for (const auto& c : chains) n += c.size_hint();
    if (epoch != 0) n += 4;
    return n;
  }

  template <typename W>
  void encode(W& w) const {
    put_ts(w, safe);
    w.put_u64(seq_high);
    put_vec(w, resolved);
    put_vec(w, chains);
    if (epoch != 0) w.put_u32(epoch);
  }
  static TccBackfillReq decode(BufReader& r) {
    TccBackfillReq q;
    q.safe = get_ts(r);
    q.seq_high = r.get_u64();
    q.resolved = get_vec<ResolvedTxn>(r);
    q.chains = get_vec<MigratedChain>(r);
    if (r.remaining() > 0) q.epoch = r.get_u32();
    return q;
  }
};

struct TccBackfillResp {
  bool ok = true;
  template <typename W>
  void encode(W& w) const { w.put_bool(ok); }
  static TccBackfillResp decode(BufReader& r) { return {r.get_bool()}; }
};

// ---------------------------------------------------------------------------
// Eventually consistent store (Anna stand-in) messages.
// ---------------------------------------------------------------------------

// Per-key version for the eventual store: a counter plus writer id,
// last-writer-wins.  HydroCache dependencies refer to these.
struct EvVersion {
  uint64_t counter = 0;
  uint64_t writer = 0;

  friend auto operator<=>(const EvVersion&, const EvVersion&) = default;

  template <typename W>
  void encode(W& w) const {
    w.put_u64(counter);
    w.put_u64(writer);
  }
  static EvVersion decode(BufReader& r) {
    EvVersion v;
    v.counter = r.get_u64();
    v.writer = r.get_u64();
    return v;
  }
};

struct EvItem {
  Key key = 0;
  EvVersion version;
  SimTime written_at = 0;  // assigned by the accepting replica; drives dep GC
  Value payload;  // opaque: HydroCache stores value + dependency metadata

  size_t size_hint() const { return 8 + 16 + 8 + 4 + payload.size(); }

  template <typename W>
  void encode(W& w) const {
    w.put_u64(key);
    version.encode(w);
    w.put_i64(written_at);
    w.put_bytes(payload);
  }
  static EvItem decode(BufReader& r) {
    EvItem it;
    it.key = r.get_u64();
    it.version = EvVersion::decode(r);
    it.written_at = r.get_i64();
    it.payload = r.get_bytes();
    return it;
  }
};

struct EvGetReq {
  std::vector<Key> keys;

  size_t size_hint() const { return 4 + keys.size() * 8; }

  template <typename W>
  void encode(W& w) const {
    w.put_u32(static_cast<uint32_t>(keys.size()));
    for (Key k : keys) w.put_u64(k);
  }
  static EvGetReq decode(BufReader& r) {
    EvGetReq q;
    const uint32_t n = r.get_u32();
    q.keys.reserve(n);
    for (uint32_t i = 0; i < n; ++i) q.keys.push_back(r.get_u64());
    return q;
  }
};

struct EvGetResp {
  std::vector<EvItem> found;  // keys absent from the replica are omitted
  SimTime global_cut = 0;     // piggybacked dependency-GC watermark

  template <typename W>
  void encode(W& w) const {
    w.put_i64(global_cut);
    put_vec(w, found);
  }
  static EvGetResp decode(BufReader& r) {
    EvGetResp resp;
    resp.global_cut = r.get_i64();
    resp.found = get_vec<EvItem>(r);
    return resp;
  }
};

struct EvPutReq {
  std::vector<EvItem> items;

  template <typename W>
  void encode(W& w) const { put_vec(w, items); }
  static EvPutReq decode(BufReader& r) {
    EvPutReq q;
    q.items = get_vec<EvItem>(r);
    return q;
  }
};

struct EvPutResp {
  std::vector<EvVersion> versions;  // assigned versions, parallel to items
  SimTime global_cut = 0;           // piggybacked dependency-GC watermark

  template <typename W>
  void encode(W& w) const {
    w.put_i64(global_cut);
    put_vec(w, versions);
  }
  static EvPutResp decode(BufReader& r) {
    EvPutResp resp;
    resp.global_cut = r.get_i64();
    resp.versions = get_vec<EvVersion>(r);
    return resp;
  }
};

// Anti-entropy batch between replicas of the same eventual partition.
// `sent_at` asserts: every write the sender accepted before this time has
// been included in this or an earlier batch to this peer.
struct EvGossipMsg {
  SimTime sent_at = 0;
  std::vector<EvItem> items;

  template <typename W>
  void encode(W& w) const {
    w.put_i64(sent_at);
    put_vec(w, items);
  }
  static EvGossipMsg decode(BufReader& r) {
    EvGossipMsg g;
    g.sent_at = r.get_i64();
    g.items = get_vec<EvItem>(r);
    return g;
  }
};

// Gossiped dependency-GC horizon: the sending replica has applied every
// write accepted anywhere before `cut` (a wall-clock watermark derived from
// completed anti-entropy rounds).  The minimum across replicas bounds which
// dependencies are globally visible and may be pruned from metadata.
struct EvStableCutMsg {
  uint64_t replica = 0;
  SimTime cut = 0;

  template <typename W>
  void encode(W& w) const {
    w.put_u64(replica);
    w.put_i64(cut);
  }
  static EvStableCutMsg decode(BufReader& r) {
    EvStableCutMsg m;
    m.replica = r.get_u64();
    m.cut = r.get_i64();
    return m;
  }
};

}  // namespace faastcc::storage
