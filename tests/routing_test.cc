// Unit tests for the epoch-versioned routing layer: the slot table's
// epoch-1 modulo equivalence, deterministic slot stealing on scale-out,
// and the wire codec.
#include <gtest/gtest.h>

#include <map>

#include "routing/routing_table.h"

namespace faastcc::routing {
namespace {

std::vector<PartitionAddress> addrs(size_t n, PartitionAddress base = 100) {
  std::vector<PartitionAddress> out;
  for (size_t i = 0; i < n; ++i) out.push_back(base + i);
  return out;
}

TEST(ModPartition, MatchesPlainModulo) {
  for (Key k = 0; k < 1000; ++k) {
    for (size_t n : {1u, 3u, 16u, 24u}) {
      EXPECT_EQ(mod_partition(k, n), k % n);
    }
  }
}

TEST(RoutingTable, EpochOneRoutesExactlyLikeModulo) {
  for (size_t n : {1u, 4u, 16u}) {
    const RoutingTable t = RoutingTable::initial(addrs(n));
    EXPECT_EQ(t.epoch, 1u);
    EXPECT_EQ(t.num_partitions(), n);
    EXPECT_EQ(t.num_slots() % n, 0u);
    for (Key k = 0; k < 5000; ++k) {
      EXPECT_EQ(t.partition_of(k), k % n);
      EXPECT_EQ(t.address_of(k), 100 + k % n);
    }
  }
}

TEST(RoutingTable, ScaleOutBumpsEpochAndRemapsOnlyStolenSlots) {
  const RoutingTable old_t = RoutingTable::initial(addrs(16));
  const RoutingTable new_t = old_t.with_partitions_added(addrs(8, 200));
  EXPECT_EQ(new_t.epoch, 2u);
  EXPECT_EQ(new_t.num_partitions(), 24u);
  EXPECT_EQ(new_t.num_slots(), old_t.num_slots());

  // Every slot either kept its owner or moved to a joiner — an incumbent
  // never takes a slot from another incumbent.
  size_t moved = 0;
  for (size_t s = 0; s < new_t.num_slots(); ++s) {
    if (new_t.slot_owner[s] == old_t.slot_owner[s]) continue;
    EXPECT_GE(new_t.slot_owner[s], 16u);
    ++moved;
  }
  // Joiners get floor(num_slots / new_count) slots each.
  const size_t per_joiner = new_t.num_slots() / 24;
  EXPECT_EQ(moved, 8 * per_joiner);
  std::map<uint32_t, size_t> owned;
  for (uint32_t o : new_t.slot_owner) ++owned[o];
  for (uint32_t j = 16; j < 24; ++j) EXPECT_EQ(owned[j], per_joiner);
  // Only ~ M/(N+M) of the key space remaps (the whole point of slots).
  size_t remapped_keys = 0;
  const Key probe = 10000;
  for (Key k = 0; k < probe; ++k) {
    if (new_t.partition_of(k) != old_t.partition_of(k)) ++remapped_keys;
  }
  EXPECT_NEAR(static_cast<double>(remapped_keys) / probe, 8.0 / 24.0, 0.05);
}

TEST(RoutingTable, ScaleOutIsDeterministic) {
  const RoutingTable old_t = RoutingTable::initial(addrs(5));
  const RoutingTable a = old_t.with_partitions_added(addrs(3, 300));
  const RoutingTable b = old_t.with_partitions_added(addrs(3, 300));
  EXPECT_EQ(a.slot_owner, b.slot_owner);
  EXPECT_EQ(a.partitions, b.partitions);
}

TEST(RoutingTable, SlotsOfPartitionInvertsSlotOwner) {
  const RoutingTable t =
      RoutingTable::initial(addrs(4)).with_partitions_added(addrs(2, 200));
  size_t total = 0;
  for (PartitionId p = 0; p < t.num_partitions(); ++p) {
    for (uint32_t s : t.slots_of_partition(p)) {
      EXPECT_EQ(t.slot_owner[s], p);
      ++total;
    }
  }
  EXPECT_EQ(total, t.num_slots());
}

TEST(RoutingTable, CodecRoundTripsAndSizeHintIsExact) {
  const RoutingTable t =
      RoutingTable::initial(addrs(6)).with_partitions_added(addrs(2, 200));
  BufWriter w;
  t.encode(w);
  const Buffer b = w.take();
  EXPECT_EQ(b.size(), t.size_hint());
  BufReader r(b);
  const RoutingTable d = RoutingTable::decode(r);
  EXPECT_EQ(d.epoch, t.epoch);
  EXPECT_EQ(d.partitions, t.partitions);
  EXPECT_EQ(d.slot_owner, t.slot_owner);
}

}  // namespace
}  // namespace faastcc::routing
