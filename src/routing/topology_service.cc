#include "routing/topology_service.h"

#include <cassert>

namespace faastcc::routing {

TopologyService::TopologyService(net::Network& network, net::Address address,
                                 TablePtr initial)
    : rpc_(network, address), table_(std::move(initial)) {
  assert(table_ != nullptr);
  rpc_.handle(kTopoGet,
              [this](Buffer req, net::Address) -> sim::Task<Buffer> {
                rpc_.recycle(std::move(req));
                co_return rpc_.encode(*table_);
              });
}

void TopologyService::publish(TablePtr next) {
  assert(next != nullptr && next->epoch > table_->epoch);
  table_ = std::move(next);
  for (net::Address a : listeners_) {
    rpc_.send(a, kTopoUpdate, *table_);
  }
}

}  // namespace faastcc::routing
