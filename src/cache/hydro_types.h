// Dependency metadata of the HydroCache baseline.
//
// HydroCache tracks causality explicitly: every stored value carries the
// versions in its causal past (its writer's reads, co-written siblings and
// one further level of their dependencies), and a transaction's context
// accumulates the union of everything it has read plus those values'
// dependencies.  This is the metadata whose size Fig. 5 measures and whose
// transfer and merging dominates HydroCache's dynamic-transaction latency.
#pragma once

#include <unordered_map>
#include <vector>

#include "common/serialize.h"
#include "common/types.h"
#include "storage/messages.h"

namespace faastcc::cache {

// One causal requirement: "any consistent snapshot containing the carrier
// must contain key at version >= counter".  `read` marks entries for keys
// the transaction has actually read (their versions are fixed; a conflict
// against them aborts the DAG).  `written_at` drives metadata GC against
// the store's gossiped stable cut.
//
// `level` is the transitive distance from a direct read: 0 for versions
// the transaction read (or a write's co-written siblings), 1 for their
// direct dependencies, 2 for dependencies-of-dependencies.  Stored
// dependency lists keep levels 0-1 only — the bounded "nearest
// dependencies plus one level" scheme that keeps stored metadata at a
// stable fixpoint while transaction contexts accumulate the merged
// closure (the size asymmetry between Fig. 7 and Fig. 5).
struct Dep {
  uint64_t counter = 0;
  SimTime written_at = 0;
  bool read = false;
  uint8_t level = 0;
};

// Wire size of one dependency entry: key + counter + written_at + flags.
constexpr size_t kDepWireBytes = 8 + 8 + 8 + 1 + 1;

class DepMap {
 public:
  // Raises the requirement for `k` (keeps the max counter; `read` is
  // sticky once set for the surviving entry; `level` keeps the minimum).
  void require(Key k, uint64_t counter, SimTime written_at, uint8_t level);
  // Records that the transaction read `k` at `counter` (level 0).
  void mark_read(Key k, uint64_t counter, SimTime written_at);

  const Dep* find(Key k) const;
  size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }
  void reserve(size_t n) { map_.reserve(n); }

  void merge(const DepMap& other);
  // Drops entries written before `horizon` (globally visible, so no longer
  // needed for consistency checks).  Read markers are never dropped while
  // the transaction runs; the context is rebuilt per DAG anyway.
  void gc_before(SimTime horizon);
  // Keeps only keys contained in `keys` (the static-transaction
  // optimization: with a declared read/write set, metadata irrelevant to
  // the remaining functions can be pruned before shipping downstream).
  template <typename KeySet>
  void restrict_to(const KeySet& keys) {
    for (auto it = map_.begin(); it != map_.end();) {
      if (keys.count(it->first) == 0) {
        it = map_.erase(it);
      } else {
        ++it;
      }
    }
  }

  size_t wire_bytes() const { return 4 + map_.size() * kDepWireBytes; }

  size_t size_hint() const { return wire_bytes(); }

  template <typename W>
  void encode(W& w) const {
    w.put_u32(static_cast<uint32_t>(map_.size()));
    for (const auto& [k, d] : map_) {
      w.put_u64(k);
      w.put_u64(d.counter);
      w.put_i64(d.written_at);
      w.put_bool(d.read);
      w.put_u8(d.level);
    }
  }
  static DepMap decode(BufReader& r);

  auto begin() const { return map_.begin(); }
  auto end() const { return map_.end(); }

 private:
  std::unordered_map<Key, Dep> map_;
};

// A dependency list entry as stored alongside a value.  Level 0 entries
// are the writer's reads and co-written siblings; level 1 entries are the
// direct dependencies of those reads.
struct StoredDep {
  Key key = 0;
  uint64_t counter = 0;
  SimTime written_at = 0;
  uint8_t level = 0;

  template <typename W>
  void encode(W& w) const {
    w.put_u64(key);
    w.put_u64(counter);
    w.put_i64(written_at);
    w.put_u8(level);
  }
  static StoredDep decode(BufReader& r) {
    StoredDep d;
    d.key = r.get_u64();
    d.counter = r.get_u64();
    d.written_at = r.get_i64();
    d.level = r.get_u8();
    return d;
  }
};

// Payload persisted in the eventual store for every HydroCache write:
// the application value plus the dependency list.
struct HydroStored {
  Value value;
  std::vector<StoredDep> deps;

  template <typename W>
  void encode(W& w) const {
    w.put_bytes(value);
    storage::put_vec(w, deps);
  }
  static HydroStored decode(BufReader& r) {
    HydroStored s;
    s.value = r.get_bytes();
    s.deps = storage::get_vec<StoredDep>(r);
    return s;
  }
};

}  // namespace faastcc::cache
