#include "cache/hydro_types.h"

#include <algorithm>

namespace faastcc::cache {

void DepMap::require(Key k, uint64_t counter, SimTime written_at,
                     uint8_t level) {
  auto [it, inserted] = map_.emplace(k, Dep{counter, written_at, false, level});
  if (inserted) return;
  Dep& d = it->second;
  if (counter > d.counter) {
    d.counter = counter;
    d.written_at = written_at;
    d.level = level;
  } else if (counter == d.counter) {
    d.level = std::min(d.level, level);
  }
  // The read flag reflects whether *some* version was read; it is sticky.
}

void DepMap::mark_read(Key k, uint64_t counter, SimTime written_at) {
  auto [it, inserted] = map_.emplace(k, Dep{counter, written_at, true, 0});
  if (!inserted) {
    Dep& d = it->second;
    if (counter > d.counter) {
      d.counter = counter;
      d.written_at = written_at;
    }
    d.read = true;
    d.level = 0;
  }
}

const Dep* DepMap::find(Key k) const {
  auto it = map_.find(k);
  return it == map_.end() ? nullptr : &it->second;
}

void DepMap::merge(const DepMap& other) {
  map_.reserve(map_.size() + other.map_.size());
  for (const auto& [k, d] : other.map_) {
    if (d.read) {
      mark_read(k, d.counter, d.written_at);
    } else {
      require(k, d.counter, d.written_at, d.level);
    }
  }
}

void DepMap::gc_before(SimTime horizon) {
  for (auto it = map_.begin(); it != map_.end();) {
    if (!it->second.read && it->second.written_at < horizon) {
      it = map_.erase(it);
    } else {
      ++it;
    }
  }
}

DepMap DepMap::decode(BufReader& r) {
  DepMap m;
  const uint32_t n = r.get_u32();
  // Sizing the table up-front matters: HydroCache decodes millions of
  // dependency maps per run, and incremental rehashing dominated the
  // profile before this reserve.
  m.map_.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    const Key k = r.get_u64();
    Dep d;
    d.counter = r.get_u64();
    d.written_at = r.get_i64();
    d.read = r.get_bool();
    d.level = r.get_u8();
    m.map_.emplace(k, d);
  }
  return m;
}

}  // namespace faastcc::cache
