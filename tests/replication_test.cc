// Integration tests for per-slot replica chains: the commit path streams
// installs to followers and withholds the client ack until the quorum has
// them, duplicated or re-sent frames apply at most once, a killed leader's
// follower wins promotion with the handoff floor sealed, and a promotion
// landing mid-scale-out still delivers the joiners' parcels.
#include <gtest/gtest.h>

#include "harness/cluster.h"

namespace faastcc::harness {
namespace {

ClusterParams repl_params(uint64_t seed, size_t factor) {
  ClusterParams p;
  p.system = SystemKind::kFaasTcc;
  p.seed = seed;
  p.partitions = 3;
  p.compute_nodes = 2;
  p.clients = 4;
  p.dags_per_client = 80;
  p.workload.num_keys = 500;
  p.workload.dag_size = 3;
  p.check_consistency = true;
  p.replication.factor = factor;
  return p;
}

void expect_oracle_clean(Cluster& cluster) {
  check::ConsistencyOracle* oracle = cluster.oracle();
  ASSERT_NE(oracle, nullptr);
  const auto vs = oracle->check();
  EXPECT_TRUE(vs.empty()) << oracle->report(vs);
}

// A follower blackout punches a hole in the replication stream the
// leader's bounded retry cannot close (demote -> backfill once it
// returns), while duplication replays frames — including stream frames
// that overlap the backfill that just repaired the hole.  The seq window
// must absorb both: dup frames are counted and dropped, never re-applied,
// and the oracle stays clean (a re-applied install would surface as a
// duplicate-install or atomic-visibility violation).
TEST(Replication, DuplicatedAndLossyStreamAppliesAtMostOnce) {
  ClusterParams p = repl_params(17, 2);
  p.dags_per_client = 200;
  p.faults.loss_prob = 0.02;
  p.faults.dup_prob = 0.03;
  // Partition 0's first follower (6000 + p*4 + r) goes dark for 1.6 s —
  // past the full commit retry chain (12 attempts, 25 ms timeouts, capped
  // backoff), so the leader demotes it out of the seal quorum and
  // re-syncs it by backfill after it returns.
  p.faults.crashes.push_back(
      net::CrashWindow{6000, milliseconds(400), milliseconds(2000)});
  p.faults.dag_timeout = milliseconds(500);
  // A generous lease keeps a loss-delayed seal beat from reading as a dead
  // leader: this test isolates the frame dedup/backfill machinery, so no
  // follower should promote.  (kill-leader-lossy in the fuzzer covers the
  // tight-lease interaction.)
  p.replication.lease_timeout = milliseconds(250);
  Cluster cluster(p);
  const RunResult r = cluster.run();
  EXPECT_GT(r.committed, 0u);
  expect_oracle_clean(cluster);

  uint64_t installs = 0;
  uint64_t dups = 0;
  uint64_t backfills = 0;
  for (auto& f : cluster.tcc_followers()) {
    EXPECT_TRUE(f->is_follower());
    installs += f->counters().repl_installs.value();
    dups += f->counters().repl_dup_frames.value();
    backfills += f->counters().repl_backfills.value();
  }
  EXPECT_GT(installs, 0u);
  // The dup knob is high enough that some frames demonstrably arrived
  // twice — the at-most-once claim is exercised, not vacuous.
  EXPECT_GT(dups, 0u);
  // Loss at 2% over thousands of frames demotes at least one follower,
  // so the backfill repair path ran too.
  EXPECT_GT(backfills, 0u);
  EXPECT_EQ(cluster.metrics().counter("repl.promotions").value(), 0u);
}

// Kill the leader of partition 1 for good mid-run.  A commit the dead
// leader acked must have reached its follower first (the ack is withheld
// until f+1 hold the installs), so after promotion the oracle's
// durability check — every acked write survives on the promoted chain —
// stays clean, and promises issued from the dead leader's published safe
// times stay sound (handoff floor >= sealed safe).
TEST(Replication, LeaderKillPromotesFollowerWithAckedWritesDurable) {
  for (uint64_t seed : {3u, 11u}) {
    SCOPED_TRACE(seed);
    ClusterParams p = repl_params(seed, 1);
    p.faults.crashes.push_back(
        net::CrashWindow{101, milliseconds(300), seconds(3600)});
    p.faults.dag_timeout = milliseconds(500);
    Cluster cluster(p);
    const RunResult r = cluster.run();
    EXPECT_GT(r.committed, 0u);
    expect_oracle_clean(cluster);

    EXPECT_GE(cluster.metrics().counter("repl.promotions").value(), 1u);
    // Exactly the killed slot's follower promoted; the survivors' did not.
    auto& followers = cluster.tcc_followers();
    ASSERT_EQ(followers.size(), 3u);
    EXPECT_FALSE(followers[1]->is_follower());
    EXPECT_TRUE(followers[1]->serving());
    EXPECT_EQ(followers[1]->counters().promotions.value(), 1u);
    EXPECT_TRUE(followers[0]->is_follower());
    EXPECT_TRUE(followers[2]->is_follower());
    // The promotion republished the table under a bumped epoch.
    ASSERT_NE(followers[1]->routing_table(), nullptr);
    EXPECT_EQ(followers[1]->routing_table()->partitions[1],
              followers[1]->address());
  }
}

// Promotion racing the elastic handoff: the leader of partition 1 dies
// just after the scale-out bump, while its migrate-out parcels are still
// being shepherded.  The shepherd must follow the promotion (re-resolving
// the table each round) so the joiners still receive every parcel and end
// the run serving — under the promoted leader's bumped epoch.
TEST(Replication, PromotionDuringMigrationOutStillDeliversParcels) {
  ClusterParams p = repl_params(29, 1);
  p.elastic.add_partitions = 2;
  p.elastic.at = milliseconds(300);
  p.faults.crashes.push_back(
      net::CrashWindow{101, milliseconds(310), seconds(3600)});
  p.faults.dag_timeout = milliseconds(500);
  Cluster cluster(p);
  const RunResult r = cluster.run();
  EXPECT_GT(r.committed, 0u);
  expect_oracle_clean(cluster);

  EXPECT_GE(cluster.metrics().counter("repl.promotions").value(), 1u);
  EXPECT_GE(cluster.metrics().counter("routing.epoch_bumps").value(), 1u);
  auto& parts = cluster.tcc_partitions();
  ASSERT_EQ(parts.size(), 5u);
  uint64_t migrated_in = 0;
  for (auto& part : parts) {
    if (part->id() == 1) continue;  // dead incumbent leader (crashed)
    EXPECT_TRUE(part->serving()) << "partition " << part->id();
    migrated_in += part->counters().keys_migrated_in.value();
  }
  // Both joiners completed their joins — including the parcel from the
  // slot whose leader died mid-handoff.
  EXPECT_GT(migrated_in, 0u);
  for (PartitionId j : {PartitionId{3}, PartitionId{4}}) {
    EXPECT_TRUE(parts[j]->serving()) << "joiner " << j;
    EXPECT_GT(parts[j]->counters().keys_migrated_in.value(), 0u)
        << "joiner " << j;
  }
}

}  // namespace
}  // namespace faastcc::harness
