// Unit tests for the consistency oracle: synthetic histories drive every
// violation kind, and a clean end-to-end history checks empty.  The
// cluster-level tests (tcc_properties_test, robustness_test) then confirm
// the real protocol stack feeds the oracle the right records.
#include <gtest/gtest.h>

#include "check/oracle.h"

namespace faastcc::check {
namespace {

using Kind = Violation::Kind;

bool has_kind(const std::vector<Violation>& vs, Kind k) {
  for (const auto& v : vs) {
    if (v.kind == k) return true;
  }
  return false;
}

Timestamp ts(uint64_t us) { return Timestamp(us, 0, 0); }

client::SnapshotInterval si(Timestamp low, Timestamp high) {
  client::SnapshotInterval s;
  s.low = low;
  s.high = high;
  return s;
}

// A correctly-acked writer txn: phase, install, ack.  Keeps auxiliary
// versions in test histories from tripping the phantom/lost-write checks.
void committed_write(ConsistencyOracle& o, TxnId txn, Key key, Timestamp ct,
                     const Value& v, Timestamp dep = Timestamp::min()) {
  o.on_commit_phase(txn, {key});
  o.on_install(0, key, ct, txn, v);
  o.on_commit_ack(txn, ct, dep);
  o.on_txn_complete(txn);
}

TEST(Oracle, CleanHistoryHasNoViolations) {
  ConsistencyOracle o;
  o.on_preload(1, ts(1), "init");
  o.on_preload(2, ts(1), "init");

  const TxnId txn = 100;
  const uint64_t fn = o.register_function(txn);
  o.on_read(txn, fn, 1, ts(1), ts(10), "init", si(ts(1), ts(10)));
  o.on_write(txn, fn, 2, "v2");
  o.on_commit_phase(txn, {2});
  o.on_install(0, 2, ts(20), txn, "v2");
  o.on_commit_ack(txn, ts(20), ts(1));
  o.on_txn_complete(txn);
  o.on_session_commit(0, ts(20));

  EXPECT_TRUE(o.check().empty());
  EXPECT_EQ(o.installs_recorded(), 3u);
  EXPECT_EQ(o.reads_recorded(), 1u);
  EXPECT_EQ(o.commits_recorded(), 1u);
  EXPECT_EQ(o.torn_aborts(), 0u);
}

TEST(Oracle, AckedCommitWithoutInstallIsLostWrite) {
  ConsistencyOracle o;
  o.on_commit_phase(5, {7});
  o.on_commit_ack(5, ts(20), ts(1));
  EXPECT_TRUE(has_kind(o.check(), Kind::kLostWrite));
}

TEST(Oracle, TwoInstallsAtOneTimestampIsDuplicate) {
  ConsistencyOracle o;
  o.on_commit_phase(5, {1});
  o.on_install(0, 1, ts(5), 5, "a");
  o.on_install(0, 1, ts(5), 5, "a");
  o.on_commit_ack(5, ts(5), ts(1));
  EXPECT_TRUE(has_kind(o.check(), Kind::kDuplicateInstall));
}

TEST(Oracle, ReplayedCommitMintingSecondVersionIsDuplicate) {
  // The MvStore is idempotent for an exact (key, ts) replay; the dangerous
  // replay is a fast-path commit re-run that mints a NEW timestamp.  The
  // oracle flags any install by an acked txn away from its commit ts.
  ConsistencyOracle o;
  o.on_commit_phase(6, {1});
  o.on_install(0, 1, ts(5), 6, "a");
  o.on_install(0, 1, ts(9), 6, "a");
  o.on_commit_ack(6, ts(5), ts(1));
  EXPECT_TRUE(has_kind(o.check(), Kind::kDuplicateInstall));
}

TEST(Oracle, InstallWithoutCommitPhaseIsPhantom) {
  ConsistencyOracle o;
  o.on_install(0, 1, ts(5), 999, "a");
  EXPECT_TRUE(has_kind(o.check(), Kind::kPhantomInstall));
}

TEST(Oracle, CommitNotAboveDepIsCausalViolation) {
  ConsistencyOracle o;
  o.on_commit_phase(7, {1});
  o.on_install(0, 1, ts(5), 7, "a");
  o.on_commit_ack(7, ts(5), ts(5));  // commit_ts == dep_ts
  EXPECT_TRUE(has_kind(o.check(), Kind::kCausalOrder));
}

TEST(Oracle, CommitNotAboveReadTsIsCausalViolation) {
  ConsistencyOracle o;
  committed_write(o, 300, 1, ts(30), "a");
  const TxnId txn = 8;
  const uint64_t fn = o.register_function(txn);
  o.on_read(txn, fn, 1, ts(30), ts(30), "a", si(ts(30), ts(30)));
  o.on_commit_phase(txn, {2});
  o.on_install(0, 2, ts(25), txn, "b");
  o.on_commit_ack(txn, ts(25), ts(1));  // commit below what it read
  o.on_txn_complete(txn);
  EXPECT_TRUE(has_kind(o.check(), Kind::kCausalOrder));
}

TEST(Oracle, InstallInsidePromiseWindowIsUnsound) {
  ConsistencyOracle o;
  o.on_preload(1, ts(1), "init");
  committed_write(o, 300, 1, ts(8), "new");
  const TxnId txn = 9;
  const uint64_t fn = o.register_function(txn);
  // Promise covers ts 9 but a version landed at ts 8: unsound.
  o.on_read(txn, fn, 1, ts(1), ts(9), "init", si(ts(1), ts(9)));
  EXPECT_TRUE(has_kind(o.check(), Kind::kUnsoundPromise));
}

TEST(Oracle, SoundPromiseBelowSuccessorIsFine) {
  ConsistencyOracle o;
  o.on_preload(1, ts(1), "init");
  committed_write(o, 300, 1, ts(8), "new");
  const TxnId txn = 9;
  const uint64_t fn = o.register_function(txn);
  o.on_read(txn, fn, 1, ts(1), ts(7), "init", si(ts(1), ts(7)));
  o.on_txn_complete(txn);
  EXPECT_TRUE(o.check().empty());
}

TEST(Oracle, NoSingleSnapshotExplainsReadsIsEmptyWindow) {
  ConsistencyOracle o;
  o.on_preload(1, ts(1), "init");
  o.on_preload(2, ts(1), "init");
  committed_write(o, 300, 2, ts(8), "new2");
  committed_write(o, 301, 1, ts(10), "new1");
  const TxnId txn = 200;
  const uint64_t fn = o.register_function(txn);
  // Read key 1 at ts 10 (snapshot >= 10) but key 2 at ts 1 with a version
  // at ts 8 it did not see (snapshot <= 7): no snapshot explains both.
  o.on_read(txn, fn, 1, ts(10), ts(10), "new1", si(ts(10), ts(10)));
  o.on_read(txn, fn, 2, ts(1), ts(5), "init", si(ts(10), ts(10)));
  o.on_txn_complete(txn);
  EXPECT_TRUE(has_kind(o.check(), Kind::kEmptySnapshotWindow));
}

TEST(Oracle, ReadOfUninstalledVersionIsUnexplained) {
  ConsistencyOracle o;
  const TxnId txn = 10;
  const uint64_t fn = o.register_function(txn);
  o.on_read(txn, fn, 9, ts(3), ts(3), "ghost", si(ts(3), ts(3)));
  EXPECT_TRUE(has_kind(o.check(), Kind::kUnexplainedRead));
}

TEST(Oracle, ReadValueDifferingFromInstallIsMismatch) {
  ConsistencyOracle o;
  o.on_preload(1, ts(1), "init");
  const TxnId txn = 11;
  const uint64_t fn = o.register_function(txn);
  o.on_read(txn, fn, 1, ts(1), ts(1), "other", si(ts(1), ts(1)));
  EXPECT_TRUE(has_kind(o.check(), Kind::kValueMismatch));
}

TEST(Oracle, TwoVersionsOfOneKeyIsNonRepeatable) {
  ConsistencyOracle o;
  o.on_preload(1, ts(1), "init");
  committed_write(o, 300, 1, ts(5), "new");
  const TxnId txn = 12;
  const uint64_t fn = o.register_function(txn);
  o.on_read(txn, fn, 1, ts(1), ts(2), "init", si(ts(1), ts(2)));
  o.on_read(txn, fn, 1, ts(5), ts(5), "new", si(ts(5), ts(5)));
  o.on_txn_complete(txn);
  EXPECT_TRUE(has_kind(o.check(), Kind::kNonRepeatableRead));
}

TEST(Oracle, CacheReadAfterOwnWriteIsReadYourWritesViolation) {
  ConsistencyOracle o;
  o.on_preload(1, ts(1), "init");
  const TxnId txn = 13;
  const uint64_t fn = o.register_function(txn);
  o.on_write(txn, fn, 1, "mine");
  o.on_read(txn, fn, 1, ts(1), ts(1), "init", si(ts(1), ts(1)));
  EXPECT_TRUE(has_kind(o.check(), Kind::kReadYourWrites));
}

TEST(Oracle, SessionTimestampRegressionIsViolation) {
  ConsistencyOracle o;
  o.on_session_commit(3, ts(10));
  o.on_session_commit(3, ts(5));
  EXPECT_TRUE(has_kind(o.check(), Kind::kSessionOrder));
}

TEST(Oracle, IncompleteTxnSkipsSnapshotChecks) {
  // A txn that aborted mid-DAG may legitimately hold reads no snapshot
  // explains; only completed txns are held to the snapshot contract.
  ConsistencyOracle o;
  o.on_preload(1, ts(1), "init");
  o.on_preload(2, ts(1), "init");
  committed_write(o, 300, 2, ts(8), "new2");
  committed_write(o, 301, 1, ts(10), "new1");
  const TxnId txn = 201;
  const uint64_t fn = o.register_function(txn);
  o.on_read(txn, fn, 1, ts(10), ts(10), "new1", si(ts(10), ts(10)));
  o.on_read(txn, fn, 2, ts(1), ts(5), "init", si(ts(10), ts(10)));
  // No on_txn_complete: the DAG aborted.
  EXPECT_FALSE(has_kind(o.check(), Kind::kEmptySnapshotWindow));
}

TEST(Oracle, TornAbortIsSurfacedButNotAViolation) {
  ConsistencyOracle o;
  o.on_commit_phase(14, {1, 2});
  o.on_install(0, 1, ts(5), 14, "a");
  // Partition holding key 2 never got the commit; coordinator gave up.
  EXPECT_EQ(o.torn_aborts(), 1u);
  EXPECT_TRUE(o.check().empty());
}

TEST(Oracle, ReportNamesTheViolation) {
  ConsistencyOracle o;
  o.on_commit_phase(5, {7});
  o.on_commit_ack(5, ts(20), ts(1));
  const auto vs = o.check();
  ASSERT_FALSE(vs.empty());
  const std::string r = o.report(vs);
  EXPECT_NE(r.find("lost-write"), std::string::npos);
}

}  // namespace
}  // namespace faastcc::check
