# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/cache_test[1]_include.cmake")
include("/root/repo/build/tests/client_test[1]_include.cmake")
include("/root/repo/build/tests/faas_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/tcc_properties_test[1]_include.cmake")
include("/root/repo/build/tests/si_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/comparative_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/messages_test[1]_include.cmake")
