// Stabilization state, one instance per TCC partition.
//
// Partitions periodically publish a *safe time*: a timestamp below which
// they will never again commit.  The minimum over the most recent published
// value of every partition is the global stable time.  Reads are clamped to
// it, which is what lets the storage layer serve a consistent snapshot in
// one round and is the "stable time ... used as the promise" of §5.
//
// Two exchange topologies share this state machine (see
// docs/performance.md, "Stabilization topologies"):
//
//   * kMesh — every partition broadcasts its safe time to every other
//     partition each gossip period (the paper-faithful §5 scheme,
//     O(P²) messages per round, one hop of staleness);
//   * kTree — partitions form a deterministic k-ary aggregation tree over
//     partition ids (parent(i) = (i-1)/k).  Each round a node folds its own
//     safe time with the freshest subtree minima reported by its children
//     and sends the fold up; the root folds the global minimum and the
//     fold travels back down one level per round.  2(P-1) messages per
//     round, up to 2·depth rounds of staleness.
//
// In both topologies every merge is monotone (per-member safe times only
// advance; subtree minima only advance while membership is fixed), so
// lost, duplicated and reordered messages cost freshness, never
// correctness.  Membership growth is the one non-monotone step: tree
// reports are tagged with the sender's membership size and reports tagged
// with a smaller membership are dropped (counted per DropReason) — an
// in-flight fold over the old membership omits the joiners' floor and
// accepting it would leak past the join barrier below.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/hlc.h"
#include "common/types.h"

namespace faastcc::storage {

enum class StabTopology : uint8_t {
  kMesh = 0,  // all-to-all broadcast (paper default)
  kTree = 1,  // k-ary aggregation tree over partition ids
};

inline const char* stab_topology_name(StabTopology t) {
  return t == StabTopology::kTree ? "tree" : "mesh";
}
inline bool parse_stab_topology(std::string_view name, StabTopology* out) {
  if (name == "mesh") {
    *out = StabTopology::kMesh;
  } else if (name == "tree") {
    *out = StabTopology::kTree;
  } else {
    return false;
  }
  return true;
}

class Stabilizer {
 public:
  Stabilizer(PartitionId self, size_t num_partitions,
             StabTopology topology = StabTopology::kMesh,
             uint32_t tree_fanout = 4);

  // Records a safe-time observation for `from` (possibly self).  Stale
  // gossip (older than already recorded) is ignored; safe times are
  // monotone per sender.  Returns false — and counts a stale drop — for
  // senders beyond the current membership (a joiner whose epoch bump this
  // partition has not yet adopted); excluding such a joiner from the min
  // is a freshness question, not a soundness one, because per-key promises
  // anchor on the owner's own safe time.
  bool on_gossip(PartitionId from, Timestamp safe_time);

  // Global stable time.  Mesh: min over all partitions' last-heard safe
  // times, answered in O(1) from an incrementally maintained tournament
  // tree (on_gossip pays O(log P) to keep it fresh — the read path clamps
  // every request against this value, so the scan must not be there).
  // Tree: the last accepted root fold (max-merged, monotone).
  Timestamp stable_time() const {
    return topology_ == StabTopology::kTree ? tree_stable_ : min_tree_[1];
  }

  // ---- Aggregation-tree role ---------------------------------------------
  // The tree shape depends only on (partition id, fanout): parent(i) =
  // (i-1)/k, children of i = {k·i+1, ..., k·i+k} ∩ [0, P).  Membership
  // growth appends leaves; existing parent/child edges never change, so
  // the tree "rebuilds" on an epoch bump by construction.

  StabTopology topology() const { return topology_; }
  uint32_t fanout() const { return fanout_; }
  bool is_root() const { return self_ == 0; }
  PartitionId parent() const { return (self_ - 1) / fanout_; }
  size_t num_children() const { return child_min_.size(); }
  PartitionId child(size_t ordinal) const {
    return static_cast<PartitionId>(fanout_ * self_ + 1 + ordinal);
  }

  // A child's subtree-minimum report, tagged with membership_tag() of the
  // child's fold.  Reports tagged with a smaller membership than ours are
  // dropped (returns false, counted): they omit the joiners' floor.  A
  // larger tag proves the membership grew — the count is adopted (barrier
  // semantics of extend_membership) before the report is accepted.  A tag
  // from a newer shrink generation is adopted likewise (shrink always
  // retires the trailing ids, so the count alone determines membership);
  // an older generation's tag is dropped as stale.
  bool on_child_report(PartitionId child, uint32_t membership,
                       Timestamp subtree_min);

  // min(own safe time, freshest accepted report of every child).  Children
  // not heard from since the last membership change hold the fold at
  // Timestamp::min() — the same strict barrier the mesh applies to unheard
  // members.
  Timestamp fold_subtree_min(Timestamp own_safe) const;

  // Merges a root fold travelling down the tree (or, at the root, its own
  // fold), tagged like child reports.  Monotone max-merge; returns false
  // and counts a drop for smaller-membership tags.
  bool on_stable_broadcast(uint32_t membership, Timestamp stable);

  // ---- Elastic membership -------------------------------------------------
  // New members enter the min as a strict barrier, exactly like the
  // startup cohort: seeded Timestamp::min(), pinning the stable view to
  // the floor until the joiner has genuinely gossiped a safe time.  A
  // lenient "excluded until heard" (Timestamp::max()) sentinel is NOT
  // sound here: the caching layer extends promises of a partition's keys
  // by that partition's pushed stable time, and a cache that missed the
  // epoch bump still attributes a migrated key to its old owner — whose
  // stable, were the joiner excluded, could overrun the joiner's safe
  // time and promise straight past a commit the joiner installs below it.
  // The barrier window is one activation plus a gossip period (mesh) or
  // one up-propagation (tree); during it the adopter's stable (and
  // therefore promise extension and GC) simply pauses, which costs
  // freshness, never correctness.
  //
  // The already-accepted stable value is NOT regressed by the barrier: it
  // was folded entirely from pre-bump safe times, each of which is <= the
  // sources' sealed safe times <= the joiners' handoff floor, below which
  // a joiner never commits.  The barrier prevents the stable from
  // *advancing* without the joiners' input, which is the unsound
  // direction.

  // Grows membership to `num_partitions`, seeding new members min() (not
  // yet gossiped) and — in tree mode — resetting every child's report to
  // min(): a report folded under the old membership may omit joiners that
  // now hang below that child.  No-op when membership is already at least
  // that large.
  void extend_membership(size_t num_partitions);

  // Shrinks membership to `num_partitions`, dropping the trailing (retired)
  // members from the min: their last-heard floors leave the fold, tree
  // edges below the cut disappear, and child barriers re-arm.  Removing a
  // member can only *raise* the min, so the announced stable never
  // regresses.  Bumps the shrink generation carried in membership_tag():
  // size comparison alone cannot order memberships once they both grow and
  // shrink (a later re-grow could collide with a pre-shrink size, and a
  // shrunk — smaller — membership would look stale to the old size rule).
  // No-op when membership is already at most that small.
  void contract_membership(size_t num_partitions);

  // Tag carried by tree reports/broadcasts: (shrink generation << 20) |
  // membership size.  Generation 0 encodes as the bare size, so clusters
  // that never shrink put exactly the pre-shrink bytes on the wire.
  static constexpr uint32_t kGenShift = 20;
  uint32_t membership_tag() const {
    return (shrink_gen_ << kGenShift) |
           static_cast<uint32_t>(last_heard_.size());
  }
  uint32_t shrink_generation() const { return shrink_gen_; }

  // Why an observation was dropped.  Counted per reason: a flood of
  // unknown-member drops after a failover looks identical to tree
  // staleness if the causes share one counter.
  enum class DropReason : uint8_t {
    kUnknownMember = 0,  // gossip from a sender beyond the membership
    kStaleReportTag,     // child report tagged with a smaller membership
    kForeignChild,       // child report from outside this node's fanout
    kStaleBroadcastTag,  // stable broadcast tagged with a smaller membership
  };
  static constexpr size_t kNumDropReasons = 4;

  // Observations dropped for membership reasons.  Makes the epoch-bump
  // barrier window observable.  Sum over all reasons.
  uint64_t stale_drops() const {
    uint64_t n = 0;
    for (uint64_t d : drops_) n += d;
    return n;
  }
  uint64_t drops(DropReason r) const {
    return drops_[static_cast<size_t>(r)];
  }
  // Reason of the most recent drop; meaningful only immediately after an
  // on_* entry point returned false.
  DropReason last_drop_reason() const { return last_drop_reason_; }

  Timestamp last_heard(PartitionId p) const { return last_heard_.at(p); }
  const std::vector<Timestamp>& last_heard_all() const { return last_heard_; }
  size_t num_partitions() const { return last_heard_.size(); }
  PartitionId self() const { return self_; }

 private:
  void rebuild_min_tree();
  void min_tree_set(size_t leaf, Timestamp v);
  void resize_children();
  // Orders an incoming tag against our membership; adopts newer
  // generations / larger same-generation sizes.  Returns false for tags
  // that must be dropped (the caller charges the right DropReason).
  bool reconcile_tag(uint32_t tag);
  bool drop(DropReason r) {
    ++drops_[static_cast<size_t>(r)];
    last_drop_reason_ = r;
    return false;
  }

  PartitionId self_;
  StabTopology topology_;
  uint32_t fanout_;
  // Last safe time heard per member.  Mesh: updated by every broadcast.
  // Tree: only self (and migrate-in merges) land here; the per-member view
  // is intentionally sparse — that is the point of aggregating.
  std::vector<Timestamp> last_heard_;
  // Tournament min over last_heard_: min_tree_[1] is the min, leaves live
  // at [cap_, cap_ + num_partitions), padding holds Timestamp::max().
  size_t cap_ = 1;
  std::vector<Timestamp> min_tree_;
  // Tree mode: freshest accepted subtree min per direct child (ordinal
  // order), and the last accepted root fold.
  std::vector<Timestamp> child_min_;
  Timestamp tree_stable_ = Timestamp::min();
  // Bumped once per adopted contraction; 0 forever in non-shrinking runs.
  uint32_t shrink_gen_ = 0;
  uint64_t drops_[kNumDropReasons] = {};
  DropReason last_drop_reason_ = DropReason::kUnknownMember;
};

}  // namespace faastcc::storage
