// Unit tests for the FaaS runtime: DAG model, registry, scheduler and
// compute nodes (joins, abort propagation, executor pool).
#include <gtest/gtest.h>

#include "faas/compute_node.h"
#include "faas/dag.h"
#include "faas/function_registry.h"
#include "faas/messages.h"
#include "faas/scheduler.h"
#include "harness/cluster.h"
#include "workload/workload.h"

namespace faastcc::faas {
namespace {

FunctionSpec fn(std::string name, std::vector<uint32_t> children = {}) {
  FunctionSpec f;
  f.name = std::move(name);
  f.children = std::move(children);
  return f;
}

// ---------------------------------------------------------------------------
// DagSpec
// ---------------------------------------------------------------------------

TEST(DagSpec, ChainBuilderLinksSequentially) {
  auto d = DagSpec::chain({fn("a"), fn("b"), fn("c")});
  EXPECT_EQ(d.functions[0].children, (std::vector<uint32_t>{1}));
  EXPECT_EQ(d.functions[1].children, (std::vector<uint32_t>{2}));
  EXPECT_TRUE(d.functions[2].children.empty());
  EXPECT_TRUE(d.valid());
  EXPECT_EQ(d.root(), 0u);
}

TEST(DagSpec, InDegreesCountParents) {
  DagSpec d;
  d.functions = {fn("root", {1, 2}), fn("left", {3}), fn("right", {3}),
                 fn("sink")};
  const auto deg = d.in_degrees();
  EXPECT_EQ(deg, (std::vector<uint32_t>{0, 1, 1, 2}));
  EXPECT_TRUE(d.valid());
}

TEST(DagSpec, RejectsMultipleRoots) {
  DagSpec d;
  d.functions = {fn("a", {2}), fn("b", {2}), fn("sink")};
  EXPECT_FALSE(d.valid());
}

TEST(DagSpec, RejectsMultipleSinks) {
  DagSpec d;
  d.functions = {fn("root", {1, 2}), fn("s1"), fn("s2")};
  EXPECT_FALSE(d.valid());
}

TEST(DagSpec, NormalizeSinksAppendsSync) {
  DagSpec d;
  d.functions = {fn("root", {1, 2}), fn("s1"), fn("s2")};
  EXPECT_TRUE(d.normalize_sinks());
  EXPECT_TRUE(d.valid());
  EXPECT_EQ(d.functions.size(), 4u);
  EXPECT_EQ(d.functions.back().name, "__sync");
  EXPECT_EQ(d.functions[1].children, (std::vector<uint32_t>{3}));
  EXPECT_EQ(d.functions[2].children, (std::vector<uint32_t>{3}));
}

TEST(DagSpec, NormalizeSinksNoOpForSingleSink) {
  auto d = DagSpec::chain({fn("a"), fn("b")});
  EXPECT_FALSE(d.normalize_sinks());
  EXPECT_EQ(d.functions.size(), 2u);
}


TEST(DagSpec, RejectsCycles) {
  DagSpec d;
  d.functions = {fn("a", {1}), fn("b", {2}), fn("c", {1, 3}), fn("sink")};
  EXPECT_FALSE(d.valid());
}

TEST(DagSpec, RejectsOutOfRangeChild) {
  DagSpec d;
  d.functions = {fn("a", {7})};
  EXPECT_FALSE(d.valid());
}

TEST(DagSpec, RejectsEmpty) {
  DagSpec d;
  EXPECT_FALSE(d.valid());
}

TEST(DagSpec, SingleFunctionIsValid) {
  DagSpec d;
  d.functions = {fn("only")};
  EXPECT_TRUE(d.valid());
}

TEST(DagSpec, EncodeDecodeRoundTrip) {
  DagSpec d;
  d.functions = {fn("root", {1}), fn("sink")};
  d.functions[0].args = {1, 2, 3};
  d.is_static = true;
  d.declared_read_set = {10, 20};
  d.declared_write_set = {30};
  const auto e = decode_message<DagSpec>(encode_message(d));
  EXPECT_EQ(e.functions.size(), 2u);
  EXPECT_EQ(e.functions[0].name, "root");
  EXPECT_EQ(e.functions[0].args, (Buffer{1, 2, 3}));
  EXPECT_TRUE(e.is_static);
  EXPECT_EQ(e.declared_read_set, (std::vector<Key>{10, 20}));
  EXPECT_EQ(e.declared_write_set, (std::vector<Key>{30}));
}

// ---------------------------------------------------------------------------
// FunctionRegistry
// ---------------------------------------------------------------------------

TEST(FunctionRegistry, RegistersAndFinds) {
  FunctionRegistry r;
  r.register_function("f", [](ExecEnv&) -> sim::Task<Buffer> {
    co_return Buffer{};
  });
  EXPECT_NE(r.find("f"), nullptr);
  EXPECT_EQ(r.find("g"), nullptr);
  // "f" plus the built-in "__sync" aggregator.
  EXPECT_EQ(r.names().size(), 2u);
  EXPECT_NE(r.find("__sync"), nullptr);
}

// ---------------------------------------------------------------------------
// End-to-end runtime behaviour via the harness cluster (FaaSTCC system).
// ---------------------------------------------------------------------------

harness::ClusterParams tiny_params() {
  harness::ClusterParams p;
  p.system = harness::SystemKind::kFaasTcc;
  p.partitions = 2;
  p.compute_nodes = 3;
  p.clients = 1;
  p.dags_per_client = 0;  // driven manually below
  p.workload.num_keys = 100;
  p.prewarm_caches = false;
  return p;
}

// Runs one hand-built DAG on a cluster and returns the completion message.
DagDoneMsg run_dag(harness::Cluster& cluster, DagSpec spec) {
  cluster.start();
  net::RpcNode client(cluster.network(), 900);
  std::optional<DagDoneMsg> done;
  client.handle_oneway(kDagDone, [&](Buffer b, net::Address) {
    done = decode_message<DagDoneMsg>(b);
  });
  StartDagMsg start;
  start.txn_id = 42;
  start.client = 900;
  start.spec = std::move(spec);
  client.send(cluster.scheduler_address(), kStartDag, start);
  const SimTime deadline = cluster.loop().now() + seconds(30);
  while (!done.has_value() && cluster.loop().now() < deadline) {
    cluster.loop().run_until(cluster.loop().now() + milliseconds(5));
  }
  EXPECT_TRUE(done.has_value()) << "DAG did not complete";
  return done.value_or(DagDoneMsg{});
}

TEST(Runtime, ExecutesChainAndCommits) {
  harness::Cluster cluster(tiny_params());
  int executed = 0;
  cluster.registry().register_function(
      "count", [&executed](ExecEnv&) -> sim::Task<Buffer> {
        ++executed;
        co_return Buffer{};
      });
  cluster.registry().register_function(
      "write_sink", [](ExecEnv& env) -> sim::Task<Buffer> {
        env.txn.write(3, "done");
        co_return Buffer{};
      });
  auto spec = DagSpec::chain({fn("count"), fn("count"), fn("write_sink")});
  const auto done = run_dag(cluster, spec);
  EXPECT_TRUE(done.committed);
  EXPECT_EQ(executed, 2);
}

TEST(Runtime, ParallelBranchesJoinBeforeSink) {
  harness::Cluster cluster(tiny_params());
  std::vector<std::string> trace;
  cluster.registry().register_function(
      "t_root", [&trace](ExecEnv&) -> sim::Task<Buffer> {
        trace.push_back("root");
        co_return Buffer{};
      });
  cluster.registry().register_function(
      "t_branch", [&trace](ExecEnv&) -> sim::Task<Buffer> {
        trace.push_back("branch");
        co_return Buffer{};
      });
  cluster.registry().register_function(
      "t_sink", [&trace](ExecEnv&) -> sim::Task<Buffer> {
        trace.push_back("sink");
        co_return Buffer{};
      });
  DagSpec spec;
  spec.functions = {fn("t_root", {1, 2}), fn("t_branch", {3}),
                    fn("t_branch", {3}), fn("t_sink")};
  const auto done = run_dag(cluster, spec);
  EXPECT_TRUE(done.committed);
  ASSERT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace.front(), "root");
  EXPECT_EQ(trace.back(), "sink");  // sink strictly after both branches
}

TEST(Runtime, BodyRequestedAbortReachesClient) {
  harness::Cluster cluster(tiny_params());
  cluster.registry().register_function(
      "aborter", [](ExecEnv& env) -> sim::Task<Buffer> {
        env.abort_requested = true;
        co_return Buffer{};
      });
  auto spec = DagSpec::chain({fn("aborter"), fn("aborter")});
  const auto done = run_dag(cluster, spec);
  EXPECT_FALSE(done.committed);
}

TEST(Runtime, TxnAbortExceptionAborts) {
  harness::Cluster cluster(tiny_params());
  cluster.registry().register_function(
      "thrower", [](ExecEnv&) -> sim::Task<Buffer> {
        throw client::TxnAbort{};
        co_return Buffer{};
      });
  auto spec = DagSpec::chain({fn("thrower")});
  const auto done = run_dag(cluster, spec);
  EXPECT_FALSE(done.committed);
}

TEST(Runtime, InvalidDagRejectedByScheduler) {
  harness::Cluster cluster(tiny_params());
  DagSpec bad;  // empty
  const auto done = run_dag(cluster, bad);
  EXPECT_FALSE(done.committed);
}

TEST(Runtime, UnknownFunctionAborts) {
  harness::Cluster cluster(tiny_params());
  auto spec = DagSpec::chain({fn("no_such_function")});
  const auto done = run_dag(cluster, spec);
  EXPECT_FALSE(done.committed);
}

TEST(Runtime, ResultsFlowDownstream) {
  harness::Cluster cluster(tiny_params());
  cluster.registry().register_function(
      "producer", [](ExecEnv&) -> sim::Task<Buffer> {
        co_return Buffer{9, 9, 9};
      });
  Buffer seen;
  cluster.registry().register_function(
      "consumer", [&seen](ExecEnv& env) -> sim::Task<Buffer> {
        seen = env.parent_result;
        co_return Buffer{};
      });
  auto spec = DagSpec::chain({fn("producer"), fn("consumer")});
  const auto done = run_dag(cluster, spec);
  EXPECT_TRUE(done.committed);
  EXPECT_EQ(seen, (Buffer{9, 9, 9}));
}

TEST(Runtime, ReadYourWritesAcrossFunctions) {
  harness::Cluster cluster(tiny_params());
  cluster.registry().register_function(
      "writer_fn", [](ExecEnv& env) -> sim::Task<Buffer> {
        env.txn.write(7, "from-upstream");
        co_return Buffer{};
      });
  Value observed;
  cluster.registry().register_function(
      "reader_fn", [&observed](ExecEnv& env) -> sim::Task<Buffer> {
        auto vals = co_await env.txn.read(std::vector<Key>(1, Key{7}));
        if (vals.has_value()) observed = (*vals)[0];
        co_return Buffer{};
      });
  auto spec = DagSpec::chain({fn("writer_fn"), fn("reader_fn")});
  const auto done = run_dag(cluster, spec);
  EXPECT_TRUE(done.committed);
  EXPECT_EQ(observed, "from-upstream");
}

TEST(Runtime, MultiSinkDagNormalizedAndCommits) {
  harness::Cluster cluster(tiny_params());
  int ran = 0;
  cluster.registry().register_function(
      "leaf", [&ran](ExecEnv& env) -> sim::Task<Buffer> {
        ++ran;
        env.txn.write(static_cast<Key>(ran), "leaf");
        co_return Buffer{};
      });
  cluster.registry().register_function(
      "fan_root", [](ExecEnv&) -> sim::Task<Buffer> { co_return Buffer{}; });
  DagSpec spec;
  spec.functions = {fn("fan_root", {1, 2}), fn("leaf"), fn("leaf")};
  // Two sinks: the scheduler must extend the graph with "__sync" and the
  // whole composition (both leaves' writes) commits atomically.
  const auto done = run_dag(cluster, spec);
  EXPECT_TRUE(done.committed);
  EXPECT_EQ(ran, 2);
  cluster.loop().run_until(cluster.loop().now() + milliseconds(50));
  size_t versions = 0;
  for (auto& p : cluster.tcc_partitions()) {
    versions += p->store().num_versions();
  }
  // 100 preloaded dataset versions plus the two leaf writes.
  EXPECT_EQ(versions, 102u);
}

TEST(Runtime, WritesInvisibleUntilCommit) {
  harness::Cluster cluster(tiny_params());
  bool sink_started = false;
  cluster.registry().register_function(
      "slow_writer", [&cluster](ExecEnv& env) -> sim::Task<Buffer> {
        env.txn.write(7, "pending");
        co_await sim::sleep_for(cluster.loop(), milliseconds(50));
        co_return Buffer{};
      });
  cluster.registry().register_function(
      "slow_sink",
      [&cluster, &sink_started](ExecEnv& env) -> sim::Task<Buffer> {
        sink_started = true;
        env.txn.write(7, "final");
        co_await sim::sleep_for(cluster.loop(), milliseconds(10));
        co_return Buffer{};
      });
  auto spec = DagSpec::chain({fn("slow_writer"), fn("slow_sink")});
  cluster.start();
  // Probe the storage directly: key 7 must have no version at least until
  // the sink function starts executing (commit happens strictly after the
  // sink body returns).
  net::RpcNode client(cluster.network(), 900);
  bool committed = false;
  client.handle_oneway(kDagDone, [&](Buffer b, net::Address) {
    committed = decode_message<DagDoneMsg>(b).committed;
  });
  StartDagMsg start;
  start.txn_id = 42;
  start.client = 900;
  start.spec = spec;
  client.send(cluster.scheduler_address(), kStartDag, start);
  // The dataset preload installs one version per key at ts (1,0,0); the
  // transaction's write must not add a second one before the sink commits.
  const auto& partition =
      cluster.tcc_partitions()[7 % cluster.params().partitions];
  const Timestamp preload_ts(1, 0, 0);
  while (!sink_started && cluster.loop().now() < seconds(30)) {
    cluster.loop().run_until(cluster.loop().now() + milliseconds(1));
    if (!sink_started) {
      EXPECT_EQ(partition->store().newest_ts(7), preload_ts)
          << "uncommitted write became visible";
    }
  }
  EXPECT_TRUE(sink_started);
  while (!committed && cluster.loop().now() < seconds(30)) {
    cluster.loop().run_until(cluster.loop().now() + milliseconds(1));
  }
  EXPECT_TRUE(committed);
  cluster.loop().run_until(cluster.loop().now() + milliseconds(20));
  const auto r = partition->store().read_at(7, Timestamp::max());
  ASSERT_NE(r.version, nullptr);
  EXPECT_GT(r.version->ts, preload_ts);
  EXPECT_EQ(r.version->value, "final");
}

// ---------------------------------------------------------------------------
// Workload generator.
// ---------------------------------------------------------------------------

TEST(Workload, BuildsChainsOfRequestedSize) {
  workload::WorkloadParams p;
  p.dag_size = 6;
  p.num_keys = 1000;
  workload::WorkloadGen gen(p, Rng(3));
  const auto dag = gen.next_dag();
  EXPECT_EQ(dag.functions.size(), 6u);
  EXPECT_TRUE(dag.valid());
  EXPECT_EQ(dag.functions.back().name, "wl_sink");
  for (size_t i = 0; i + 1 < dag.functions.size(); ++i) {
    EXPECT_EQ(dag.functions[i].name, "wl_step");
  }
}

TEST(Workload, StaticDagsDeclareKeySets) {
  workload::WorkloadParams p;
  p.static_txns = true;
  p.num_keys = 1000;
  workload::WorkloadGen gen(p, Rng(3));
  const auto dag = gen.next_dag();
  EXPECT_FALSE(dag.declared_read_set.empty());
  EXPECT_EQ(dag.declared_write_set.size(), 1u);
  // Declared read set covers every key in every function's args.
  for (size_t i = 0; i + 1 < dag.functions.size(); ++i) {
    const auto args = decode_message<workload::StepArgs>(dag.functions[i].args);
    for (Key k : args.keys) {
      EXPECT_TRUE(std::count(dag.declared_read_set.begin(),
                             dag.declared_read_set.end(), k) > 0);
    }
  }
}

TEST(Workload, DynamicDagsDeclareNothing) {
  workload::WorkloadParams p;
  p.static_txns = false;
  workload::WorkloadGen gen(p, Rng(3));
  const auto dag = gen.next_dag();
  EXPECT_FALSE(dag.is_static);
  EXPECT_TRUE(dag.declared_read_set.empty());
}

TEST(Workload, ArgsRoundTrip) {
  workload::StepArgs sa;
  sa.keys = {1, 2, 3};
  const auto sa2 = decode_message<workload::StepArgs>(encode_message(sa));
  EXPECT_EQ(sa2.keys, sa.keys);

  workload::SinkArgs ka;
  ka.keys = {4, 5};
  ka.write_key = 9;
  ka.value = "abc";
  const auto ka2 = decode_message<workload::SinkArgs>(encode_message(ka));
  EXPECT_EQ(ka2.keys, ka.keys);
  EXPECT_EQ(ka2.write_key, 9u);
  EXPECT_EQ(ka2.value, "abc");
}

}  // namespace
}  // namespace faastcc::faas
