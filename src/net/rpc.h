// Request/response RPC over the simulated network.
//
// Each simulated process owns an RpcNode.  Handlers are coroutines, so a
// storage partition can await internal work while serving a request.  Typed
// wrappers (`call<Req, Resp>`) encode/decode with the common binary codec so
// every RPC's wire size is exact.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <utility>

#include "common/serialize.h"
#include "net/network.h"
#include "sim/future.h"
#include "sim/task.h"

namespace faastcc::net {

class RpcNode {
 public:
  // Coroutine handler: receives the request payload and the caller address,
  // returns the response payload.
  using RequestHandler =
      std::function<sim::Task<Buffer>(Buffer, Address)>;
  // Fire-and-forget handler for one-way messages (pub/sub pushes, gossip).
  using OneWayHandler = std::function<void(Buffer, Address)>;

  RpcNode(Network& network, Address address);
  ~RpcNode() = default;
  RpcNode(const RpcNode&) = delete;
  RpcNode& operator=(const RpcNode&) = delete;

  Address address() const { return address_; }
  Network& network() { return network_; }
  sim::EventLoop& loop() { return network_.loop(); }
  SimTime now() const { return network_.now(); }

  void handle(MethodId method, RequestHandler handler);
  void handle_oneway(MethodId method, OneWayHandler handler);

  // Raw call; completes when the response arrives.
  sim::Task<Buffer> call_raw(Address to, MethodId method, Buffer request);

  // Typed call.  `req` is taken by value: tasks are lazy, so the request
  // must live in the coroutine frame — callers routinely build several
  // calls and only await them later via when_all.
  template <typename Resp, typename Req>
  sim::Task<Resp> call(Address to, MethodId method, Req req) {
    Buffer resp = co_await call_raw(to, method, encode_message(req));
    co_return decode_message<Resp>(resp);
  }

  // One-way typed send.
  template <typename M>
  void send(Address to, MethodId method, const M& msg) {
    send_raw(to, method, encode_message(msg));
  }
  void send_raw(Address to, MethodId method, Buffer payload);

  // Bytes of the last response received by call_raw on this node; callers
  // that need per-request accounting should use call_raw_sized instead.
  struct SizedResponse {
    Buffer payload;
    size_t request_wire_bytes;
    size_t response_wire_bytes;
  };
  sim::Task<SizedResponse> call_raw_sized(Address to, MethodId method,
                                          Buffer request);

 private:
  void on_message(Message m);
  sim::Task<void> run_handler(RequestHandler& handler, Message m);

  Network& network_;
  Address address_;
  uint64_t next_request_id_ = 1;
  std::unordered_map<MethodId, RequestHandler> handlers_;
  std::unordered_map<MethodId, OneWayHandler> oneway_handlers_;
  struct Pending {
    sim::Promise<SizedResponse> promise;
    size_t request_wire_bytes;
  };
  std::unordered_map<uint64_t, Pending> pending_;
};

}  // namespace faastcc::net
