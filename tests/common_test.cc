// Unit tests for the common module: timestamps, HLC, codec, RNG, Zipf,
// statistics.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "common/hlc.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "common/stats.h"
#include "common/zipf.h"

namespace faastcc {
namespace {

// ---------------------------------------------------------------------------
// Timestamp
// ---------------------------------------------------------------------------

TEST(Timestamp, PacksAndUnpacksFields) {
  const Timestamp t(123456, 7, 42);
  EXPECT_EQ(t.physical_us(), 123456u);
  EXPECT_EQ(t.logical(), 7u);
  EXPECT_EQ(t.node(), 42u);
}

TEST(Timestamp, OrderedByPhysicalFirst) {
  EXPECT_LT(Timestamp(100, 500, 900), Timestamp(101, 0, 0));
}

TEST(Timestamp, OrderedByLogicalWithinSamePhysical) {
  EXPECT_LT(Timestamp(100, 3, 900), Timestamp(100, 4, 0));
}

TEST(Timestamp, OrderedByNodeAsTieBreak) {
  EXPECT_LT(Timestamp(100, 3, 1), Timestamp(100, 3, 2));
}

TEST(Timestamp, MinMaxAreExtremes) {
  EXPECT_LT(Timestamp::min(), Timestamp(0, 0, 1));
  EXPECT_GT(Timestamp::max(), Timestamp((1ull << 40), 4095, 1023));
}

TEST(Timestamp, PrevNextAreAdjacent) {
  const Timestamp t(5, 5, 5);
  EXPECT_LT(t.prev(), t);
  EXPECT_GT(t.next(), t);
  EXPECT_EQ(t.prev().next(), t);
  EXPECT_EQ(t.next().raw(), t.raw() + 1);
}

TEST(Timestamp, MaxFieldValuesDoNotOverflowNeighbors) {
  const Timestamp t(77, Timestamp::kMaxLogical, Timestamp::kMaxNode);
  EXPECT_EQ(t.physical_us(), 77u);
  EXPECT_EQ(t.logical(), Timestamp::kMaxLogical);
  EXPECT_EQ(t.node(), Timestamp::kMaxNode);
}

// ---------------------------------------------------------------------------
// HlcClock
// ---------------------------------------------------------------------------

TEST(HlcClock, TickIsStrictlyMonotone) {
  HlcClock c(3);
  Timestamp prev = c.tick(100);
  for (int i = 0; i < 100; ++i) {
    const Timestamp t = c.tick(100);  // physical time frozen
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(HlcClock, TickTracksAdvancingPhysicalTime) {
  HlcClock c(3);
  const Timestamp a = c.tick(100);
  const Timestamp b = c.tick(200);
  EXPECT_EQ(a.physical_us(), 100u);
  EXPECT_EQ(b.physical_us(), 200u);
  EXPECT_EQ(b.logical(), 0u);
}

TEST(HlcClock, UpdateMovesAheadOfRemote) {
  HlcClock c(3);
  c.tick(100);
  const Timestamp remote(500, 9, 7);
  const Timestamp t = c.update(remote, 100);
  EXPECT_GT(t, remote);
  EXPECT_EQ(t.node(), 3u);
}

TEST(HlcClock, UpdateRespectsHappenedBefore) {
  // Classic HLC exchange: every message receipt produces a timestamp above
  // both the sender's and the receiver's previous ones.
  HlcClock a(1);
  HlcClock b(2);
  Timestamp last_a = a.tick(10);
  Timestamp last_b = b.update(last_a, 5);  // b's physical clock lags
  EXPECT_GT(last_b, last_a);
  Timestamp next_a = a.update(last_b, 12);
  EXPECT_GT(next_a, last_b);
}

TEST(HlcClock, LogicalOverflowBorrowsPhysicalTime) {
  HlcClock c(1);
  Timestamp t = c.tick(50);
  for (uint64_t i = 0; i <= Timestamp::kMaxLogical + 2; ++i) {
    const Timestamp n = c.tick(50);
    EXPECT_GT(n, t);
    t = n;
  }
  EXPECT_GT(t.physical_us(), 50u);
}

TEST(HlcClock, BoundedDriftWithoutRemoteInfluence) {
  HlcClock c(1);
  for (int i = 0; i < 1000; ++i) c.tick(1000);
  // Frozen physical time: drift is bounded by the logical bits borrowing.
  EXPECT_LE(c.current().physical_us(), 1001u);
}

// ---------------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------------

TEST(Codec, RoundTripsScalars) {
  BufWriter w;
  w.put_u8(0xAB);
  w.put_u16(0xCDEF);
  w.put_u32(0xDEADBEEF);
  w.put_u64(0x0123456789ABCDEFull);
  w.put_i64(-42);
  w.put_f64(3.25);
  w.put_bool(true);
  const Buffer b = w.take();

  BufReader r(b);
  EXPECT_EQ(r.get_u8(), 0xAB);
  EXPECT_EQ(r.get_u16(), 0xCDEF);
  EXPECT_EQ(r.get_u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.get_u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.get_i64(), -42);
  EXPECT_DOUBLE_EQ(r.get_f64(), 3.25);
  EXPECT_TRUE(r.get_bool());
  EXPECT_TRUE(r.done());
}

TEST(Codec, RoundTripsStrings) {
  BufWriter w;
  w.put_bytes("");
  w.put_bytes("hello");
  w.put_bytes(std::string(10000, 'x'));
  const Buffer b = w.take();
  BufReader r(b);
  EXPECT_EQ(r.get_bytes(), "");
  EXPECT_EQ(r.get_bytes(), "hello");
  EXPECT_EQ(r.get_bytes().size(), 10000u);
}

TEST(Codec, UnderflowThrows) {
  BufWriter w;
  w.put_u32(7);
  const Buffer b = w.take();
  BufReader r(b);
  r.get_u32();
  EXPECT_THROW(r.get_u64(), CodecError);
}

TEST(Codec, TruncatedStringThrows) {
  BufWriter w;
  w.put_u32(1000);  // length prefix with no payload behind it
  const Buffer b = w.take();
  BufReader r(b);
  EXPECT_THROW(r.get_bytes(), CodecError);
}

TEST(Codec, SizesAreExact) {
  BufWriter w;
  w.put_u64(1);
  w.put_u64(2);
  EXPECT_EQ(w.size(), 16u);  // the snapshot-interval wire size (Fig. 5)
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng r(11);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[r.next_below(10)];
  for (int c : counts) {
    EXPECT_NEAR(c, n / 10, n / 100);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(5);
  for (int i = 0; i < 10000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng r(9);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.next_exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(42);
  Rng child = a.fork();
  EXPECT_NE(a.next_u64(), child.next_u64());
}

TEST(Rng, NextRangeInclusive) {
  Rng r(3);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.next_range(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 2);
}

// ---------------------------------------------------------------------------
// Zipf
// ---------------------------------------------------------------------------

TEST(Zipf, PmfSumsToOne) {
  ZipfSampler z(1000, 1.0);
  double sum = 0;
  for (uint64_t i = 0; i < 1000; ++i) sum += z.pmf(i);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Zipf, RankZeroIsMostLikely) {
  ZipfSampler z(1000, 1.2);
  EXPECT_GT(z.pmf(0), z.pmf(1));
  EXPECT_GT(z.pmf(1), z.pmf(10));
  EXPECT_GT(z.pmf(10), z.pmf(999));
}

TEST(Zipf, ThetaZeroIsUniform) {
  ZipfSampler z(100, 0.0);
  for (uint64_t i = 0; i < 100; ++i) {
    EXPECT_NEAR(z.pmf(i), 0.01, 1e-9);
  }
}

TEST(Zipf, SamplesMatchPmf) {
  ZipfSampler z(100, 1.0);
  Rng r(17);
  std::vector<int> counts(100, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[z.sample(r)];
  for (uint64_t k : {0u, 1u, 5u, 50u}) {
    EXPECT_NEAR(static_cast<double>(counts[k]) / n, z.pmf(k),
                5 * std::sqrt(z.pmf(k) / n) + 1e-3);
  }
}

TEST(Zipf, HigherThetaIsMoreSkewed) {
  ZipfSampler low(1000, 1.0), high(1000, 1.5);
  EXPECT_GT(high.pmf(0), low.pmf(0));
}

TEST(Zipf, SamplesStayInRange) {
  ZipfSampler z(10, 1.5);
  Rng r(23);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(z.sample(r), 10u);
  }
}

// ---------------------------------------------------------------------------
// Samples
// ---------------------------------------------------------------------------

TEST(Samples, EmptyIsZero) {
  Samples s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(Samples, ExactPercentilesOnKnownData) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.p99(), 99.01, 1e-9);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
}

TEST(Samples, SingleElement) {
  Samples s;
  s.add(7.5);
  EXPECT_DOUBLE_EQ(s.median(), 7.5);
  EXPECT_DOUBLE_EQ(s.p99(), 7.5);
  EXPECT_DOUBLE_EQ(s.mean(), 7.5);
}

TEST(Samples, MeanMinMaxSum) {
  Samples s;
  s.add(1);
  s.add(2);
  s.add(6);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 6.0);
  EXPECT_DOUBLE_EQ(s.sum(), 9.0);
}

TEST(Samples, MergeCombines) {
  Samples a, b;
  a.add(1);
  b.add(3);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

TEST(Samples, PercentileIsOrderInsensitive) {
  Samples a, b;
  std::vector<double> values{9, 1, 5, 3, 7};
  for (double v : values) a.add(v);
  std::sort(values.begin(), values.end());
  for (double v : values) b.add(v);
  EXPECT_DOUBLE_EQ(a.median(), b.median());
}

// Parameterized sweep: percentile() agrees with a naive sorted
// implementation for many (size, percentile) combinations.
class PercentileSweep : public ::testing::TestWithParam<int> {};

TEST_P(PercentileSweep, MatchesNaiveImplementation) {
  const int n = GetParam();
  Rng r(static_cast<uint64_t>(n) * 31 + 7);
  Samples s;
  std::vector<double> values;
  for (int i = 0; i < n; ++i) {
    const double v = r.next_double() * 1000;
    s.add(v);
    values.push_back(v);
  }
  std::sort(values.begin(), values.end());
  for (double p : {0.0, 10.0, 50.0, 90.0, 99.0, 100.0}) {
    const double rank = (p / 100.0) * (n - 1);
    const size_t lo = static_cast<size_t>(std::floor(rank));
    const size_t hi = static_cast<size_t>(std::ceil(rank));
    const double expected =
        values[lo] + (values[hi] - values[lo]) * (rank - lo);
    EXPECT_NEAR(s.percentile(p), expected, 1e-9) << "n=" << n << " p=" << p;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PercentileSweep,
                         ::testing::Values(1, 2, 3, 10, 101, 1000));

}  // namespace
}  // namespace faastcc
