// Named function bodies, the FaaS "deployed code".
//
// Bodies are coroutines: they read and write through the transaction
// handle (which talks to the node's cache) and return opaque result bytes
// passed to child functions.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "client/txn.h"
#include "sim/event_loop.h"
#include "sim/task.h"

namespace faastcc::faas {

struct ExecEnv {
  client::FunctionTxn& txn;
  const Buffer& args;
  const Buffer& parent_result;
  sim::EventLoop& loop;
  // Set by the body to request an abort independent of storage (e.g., an
  // application-level constraint violation).
  bool abort_requested = false;
};

using FunctionBody = std::function<sim::Task<Buffer>(ExecEnv&)>;

class FunctionRegistry {
 public:
  // Every registry provides the no-op "__sync" aggregator used by
  // DagSpec::normalize_sinks().
  FunctionRegistry();

  void register_function(std::string name, FunctionBody body);
  const FunctionBody* find(const std::string& name) const;
  std::vector<std::string> names() const;

 private:
  std::unordered_map<std::string, FunctionBody> bodies_;
};

}  // namespace faastcc::faas
