file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_metadata.dir/bench_fig5_metadata.cc.o"
  "CMakeFiles/bench_fig5_metadata.dir/bench_fig5_metadata.cc.o.d"
  "bench_fig5_metadata"
  "bench_fig5_metadata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_metadata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
