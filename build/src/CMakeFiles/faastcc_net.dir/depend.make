# Empty dependencies file for faastcc_net.
# This may be replaced when dependencies are built.
