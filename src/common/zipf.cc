#include "common/zipf.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace faastcc {

ZipfSampler::ZipfSampler(uint64_t num_keys, double theta)
    : num_keys_(num_keys), theta_(theta) {
  assert(num_keys > 0);
  cdf_.resize(num_keys);
  double acc = 0.0;
  for (uint64_t i = 0; i < num_keys; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = acc;
  }
  const double total = acc;
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against floating-point shortfall
}

Key ZipfSampler::sample(Rng& rng) const {
  const double u = rng.next_double();
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  const auto idx = static_cast<uint64_t>(it - cdf_.begin());
  return idx < num_keys_ ? idx : num_keys_ - 1;
}

double ZipfSampler::pmf(uint64_t r) const {
  assert(r < num_keys_);
  return r == 0 ? cdf_[0] : cdf_[r] - cdf_[r - 1];
}

}  // namespace faastcc
