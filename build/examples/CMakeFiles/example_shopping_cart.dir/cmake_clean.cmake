file(REMOVE_RECURSE
  "CMakeFiles/example_shopping_cart.dir/shopping_cart.cpp.o"
  "CMakeFiles/example_shopping_cart.dir/shopping_cart.cpp.o.d"
  "example_shopping_cart"
  "example_shopping_cart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_shopping_cart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
