#include "harness/run_spec.h"

#include <functional>
#include <sstream>
#include <utility>
#include <vector>

#include "harness/configs.h"

namespace faastcc::harness {

namespace {

// One serializable field: a writer (into canonical JSON) and a reader
// (strict overlay-apply).  Both close over pointers into one RunSpec, so a
// single table drives encode and decode and the two can never diverge.
struct Field {
  const char* name;
  std::function<void(json::Writer&)> write;
  std::function<void(const json::Value&)> read;
};

struct Group {
  const char* name;
  std::vector<Field> fields;
};

[[noreturn]] void bad_field(const std::string& path, const char* why) {
  throw SpecError(path + ": " + why);
}

class SpecFields {
 public:
  explicit SpecFields(RunSpec& s) { build(s); }

  void encode(json::Writer& w) const {
    w.begin_object();
    for (const Field& f : top_) {
      w.key(f.name);
      f.write(w);
    }
    for (const Group& g : groups_) {
      w.key(g.name);
      w.begin_object();
      for (const Field& f : g.fields) {
        w.key(f.name);
        f.write(w);
      }
      w.end_object();
    }
    w.end_object();
  }

  void apply(const json::Value& doc) const {
    if (!doc.is_object()) throw SpecError("spec: expected a JSON object");
    for (const auto& [key, value] : doc.fields) {
      if (const Field* f = find_top(key)) {
        read_field("", *f, value);
        continue;
      }
      const Group* g = find_group(key);
      if (g == nullptr) {
        throw SpecError("spec: unknown key '" + key + "'");
      }
      if (!value.is_object()) {
        throw SpecError("spec." + key + ": expected an object");
      }
      for (const auto& [fkey, fvalue] : value.fields) {
        const Field* f = nullptr;
        for (const Field& cand : g->fields) {
          if (fkey == cand.name) {
            f = &cand;
            break;
          }
        }
        if (f == nullptr) {
          throw SpecError("spec." + std::string(g->name) + ": unknown key '" +
                          fkey + "'");
        }
        read_field(std::string(g->name) + ".", *f, fvalue);
      }
    }
  }

 private:
  static void read_field(const std::string& prefix, const Field& f,
                         const json::Value& v) {
    try {
      f.read(v);
    } catch (const json::ParseError& e) {
      throw SpecError("spec." + prefix + f.name + ": " + e.what());
    }
  }

  const Field* find_top(std::string_view key) const {
    for (const Field& f : top_) {
      if (key == f.name) return &f;
    }
    return nullptr;
  }

  const Group* find_group(std::string_view key) const {
    for (const Group& g : groups_) {
      if (key == g.name) return &g;
    }
    return nullptr;
  }

  // ---- typed field constructors -----------------------------------------

  static Field f_bool(const char* name, bool* p) {
    return {name, [p](json::Writer& w) { w.boolean(*p); },
            [p](const json::Value& v) { *p = v.as_bool(); }};
  }
  static Field f_int(const char* name, int* p) {
    return {name, [p](json::Writer& w) { w.i64(*p); },
            [p, name](const json::Value& v) {
              const int64_t r = v.as_i64();
              if (r < INT32_MIN || r > INT32_MAX) {
                bad_field(name, "out of int range");
              }
              *p = static_cast<int>(r);
            }};
  }
  static Field f_i64(const char* name, int64_t* p) {
    return {name, [p](json::Writer& w) { w.i64(*p); },
            [p](const json::Value& v) { *p = v.as_i64(); }};
  }
  static Field f_u64(const char* name, uint64_t* p) {
    return {name, [p](json::Writer& w) { w.u64(*p); },
            [p](const json::Value& v) { *p = v.as_u64(); }};
  }
  static Field f_size(const char* name, size_t* p) {
    return {name,
            [p](json::Writer& w) {
              if (*p == SIZE_MAX) {
                w.string("inf");
              } else {
                w.u64(*p);
              }
            },
            [p](const json::Value& v) {
              if (v.is_string() && v.as_string() == "inf") {
                *p = SIZE_MAX;
              } else {
                *p = static_cast<size_t>(v.as_u64());
              }
            }};
  }
  static Field f_double(const char* name, double* p) {
    return {name, [p](json::Writer& w) { w.number(*p); },
            [p](const json::Value& v) { *p = v.as_double(); }};
  }
  // Durations serialize in their native unit (microseconds).
  static Field f_duration(const char* name, Duration* p) {
    return {name, [p](json::Writer& w) { w.i64(*p); },
            [p](const json::Value& v) { *p = v.as_i64(); }};
  }

  void build(RunSpec& s) {
    ClusterParams& p = s.params;
    top_ = {
        {"system",
         [&p](json::Writer& w) { w.string(system_spec_name(p.system)); },
         [&p](const json::Value& v) {
           if (!parse_system(v.as_string(), &p.system)) {
             bad_field("system", "unknown system name");
           }
         }},
        {"config", [&s](json::Writer& w) { w.string(s.config); },
         [&s](const json::Value& v) {
           const std::string& name = v.as_string();
           if (!name.empty() && find_config(name) == nullptr) {
             bad_field("config", "unknown config name");
           }
           s.config = name;
         }},
        f_u64("seed", &p.seed),
    };
    groups_ = {
        {"cluster",
         {
             f_size("partitions", &p.partitions),
             f_size("ev_replicas", &p.ev_replicas),
             f_size("compute_nodes", &p.compute_nodes),
             f_size("clients", &p.clients),
             f_int("dags_per_client", &p.dags_per_client),
             f_size("cache_capacity", &p.cache_capacity),
         }},
        {"workload",
         {
             f_u64("num_keys", &p.workload.num_keys),
             f_double("zipf", &p.workload.zipf),
             f_int("dag_size", &p.workload.dag_size),
             f_int("reads_per_function", &p.workload.reads_per_function),
             f_size("value_size", &p.workload.value_size),
             f_bool("static_txns", &p.workload.static_txns),
             {"pattern",
              [&p](json::Writer& w) {
                w.string(workload::load_pattern_name(p.workload.pattern));
              },
              [&p](const json::Value& v) {
                if (!workload::parse_load_pattern(v.as_string(),
                                                  &p.workload.pattern)) {
                  bad_field("pattern",
                            "expected \"none\", \"bursty\", \"diurnal\" or "
                            "\"hotspot-shift\"");
                }
              }},
             f_duration("pattern_period_us", &p.workload.pattern_period),
             f_duration("think_time_us", &p.workload.think_time),
         }},
        {"faastcc",
         {
             f_bool("use_promises", &p.faastcc.use_promises),
             f_bool("use_interval", &p.faastcc.use_interval),
             f_bool("snapshot_isolation", &p.faastcc.snapshot_isolation),
             f_bool("chaos_skip_local_reads",
                    &p.faastcc.chaos_skip_local_reads),
         }},
        {"hydro",
         {
             f_bool("static_metadata_optimization",
                    &p.hydro.static_metadata_optimization),
             f_duration("dep_gc_window_us", &p.hydro.dep_gc_window),
             f_size("stored_dep_cap", &p.hydro.stored_dep_cap),
         }},
        {"tcc",
         {
             f_duration("gossip_period_us", &p.tcc.gossip_period),
             {"stabilization_topology",
              [&p](json::Writer& w) {
                w.string(storage::stab_topology_name(p.tcc.stab_topology));
              },
              [&p](const json::Value& v) {
                if (!storage::parse_stab_topology(v.as_string(),
                                                  &p.tcc.stab_topology)) {
                  bad_field("stabilization_topology",
                            "expected \"mesh\" or \"tree\"");
                }
              }},
             f_int("tree_fanout", &p.tcc.tree_fanout),
             f_bool("push_coalescing", &p.tcc.push_coalescing),
             f_duration("push_period_us", &p.tcc.push_period),
             f_duration("gc_window_us", &p.tcc.gc_window),
             f_duration("gc_period_us", &p.tcc.gc_period),
             f_duration("request_cpu_us", &p.tcc.request_cpu),
             f_duration("per_key_cpu_us", &p.tcc.per_key_cpu),
             f_duration("prepare_ttl_us", &p.tcc.prepare_ttl),
             f_size("resolved_cap", &p.tcc.resolved_cap),
             f_bool("chaos_ack_expired_commit",
                    &p.tcc.chaos_ack_expired_commit),
             f_bool("chaos_drop_install", &p.tcc.chaos_drop_install),
             f_bool("chaos_double_install", &p.tcc.chaos_double_install),
             f_bool("chaos_ignore_dep", &p.tcc.chaos_ignore_dep),
         }},
        {"ev",
         {
             f_duration("gossip_period_us", &p.ev.gossip_period),
             f_duration("cut_period_us", &p.ev.cut_period),
             f_duration("push_period_us", &p.ev.push_period),
             f_duration("request_cpu_us", &p.ev.request_cpu),
             f_duration("per_key_cpu_us", &p.ev.per_key_cpu),
         }},
        {"node",
         {
             f_int("executors", &p.node.executors),
             f_duration("function_service_time_us",
                        &p.node.function_service_time),
             f_double("context_cpu_us_per_kb", &p.node.context_cpu_us_per_kb),
             f_duration("dispatch_overhead_us", &p.node.dispatch_overhead),
             f_duration("join_gc_age_us", &p.node.join_gc_age),
             f_size("executed_dedup_cap", &p.node.executed_dedup_cap),
         }},
        {"scheduler",
         {
             f_duration("service_time_us", &p.scheduler.service_time),
             f_bool("round_robin", &p.scheduler.round_robin),
             f_size("start_dedup_cap", &p.scheduler.start_dedup_cap),
         }},
        {"net",
         {
             f_duration("base_latency_us", &p.net.base_latency),
             f_duration("jitter_us", &p.net.jitter),
             f_double("bandwidth_bytes_per_us", &p.net.bandwidth_bytes_per_us),
             f_duration("local_delivery_us", &p.net.local_delivery),
         }},
        {"faults",
         {
             f_double("loss_prob", &p.faults.loss_prob),
             f_double("dup_prob", &p.faults.dup_prob),
             f_double("delay_spike_prob", &p.faults.delay_spike_prob),
             f_duration("delay_spike_us", &p.faults.delay_spike),
             f_duration("rpc_timeout_us", &p.faults.rpc_timeout),
             f_duration("dag_timeout_us", &p.faults.dag_timeout),
             {"crashes",
              [&p](json::Writer& w) {
                w.begin_array();
                for (const net::CrashWindow& c : p.faults.crashes) {
                  w.begin_object();
                  w.key("addr");
                  w.u64(c.addr);
                  w.key("from_us");
                  w.i64(c.from);
                  w.key("until_us");
                  w.i64(c.until);
                  w.end_object();
                }
                w.end_array();
              },
              [&p](const json::Value& v) {
                if (!v.is_array()) bad_field("faults.crashes", "expected array");
                p.faults.crashes.clear();
                for (const json::Value& item : v.items) {
                  if (!item.is_object()) {
                    bad_field("faults.crashes", "expected array of objects");
                  }
                  net::CrashWindow c;
                  for (const auto& [k, field] : item.fields) {
                    if (k == "addr") {
                      c.addr = static_cast<net::Address>(field.as_u64());
                    } else if (k == "from_us") {
                      c.from = field.as_i64();
                    } else if (k == "until_us") {
                      c.until = field.as_i64();
                    } else {
                      bad_field("faults.crashes", "unknown crash-window key");
                    }
                  }
                  p.faults.crashes.push_back(c);
                }
              }},
         }},
        {"elastic",
         {
             f_size("add_partitions", &p.elastic.add_partitions),
             f_duration("at_us", &p.elastic.at),
             f_size("remove_partitions", &p.elastic.remove_partitions),
             f_duration("remove_at_us", &p.elastic.remove_at),
             f_size("slots_per_partition", &p.elastic.slots_per_partition),
         }},
        {"autoscale",
         {
             f_size("max_partitions", &p.autoscale.max_partitions),
             f_size("min_partitions", &p.autoscale.min_partitions),
             f_duration("check_period_us", &p.autoscale.check_period),
             f_double("high_p99_ms", &p.autoscale.high_p99_ms),
             f_double("low_p99_ms", &p.autoscale.low_p99_ms),
             f_size("breach_checks", &p.autoscale.breach_checks),
             f_duration("cooldown_us", &p.autoscale.cooldown),
             f_size("step", &p.autoscale.step),
         }},
        {"replication",
         {
             f_size("factor", &p.replication.factor),
             f_duration("lease_timeout_us", &p.replication.lease_timeout),
         }},
        {"faastcc_cache",
         {
             f_duration("lookup_cpu_us", &p.faastcc_cache.lookup_cpu),
             f_duration("retry_backoff_us", &p.faastcc_cache.retry_backoff),
             f_bool("chaos_prewarm_open", &p.faastcc_cache.chaos_prewarm_open),
             f_bool("chaos_ignore_interval",
                    &p.faastcc_cache.chaos_ignore_interval),
         }},
        {"hydro_cache",
         {
             f_duration("lookup_cpu_us", &p.hydro_cache.lookup_cpu),
             f_duration("retry_backoff_us", &p.hydro_cache.retry_backoff),
             f_int("max_rounds", &p.hydro_cache.max_rounds),
         }},
        {"plain_cache",
         {
             f_duration("lookup_cpu_us", &p.plain_cache.lookup_cpu),
         }},
        {"trace",
         {
             f_bool("enabled", &p.trace.enabled),
             f_size("ring_capacity", &p.trace.ring_capacity),
             f_u64("sample_every", &p.trace.sample_every),
         }},
        {"run",
         {
             f_bool("check_consistency", &p.check_consistency),
             f_bool("prewarm_caches", &p.prewarm_caches),
             f_duration("warmup_us", &p.warmup),
             f_duration("max_sim_time_us", &p.max_sim_time),
             f_int("client_max_retries", &p.client_max_retries),
             f_i64("clock_skew_us", &p.clock_skew_us),
             f_int("straggler_gossip_factor", &p.straggler_gossip_factor),
         }},
    };
  }

  std::vector<Field> top_;
  std::vector<Group> groups_;
};

}  // namespace

bool parse_system(std::string_view name, SystemKind* out) {
  if (name == "faastcc") {
    *out = SystemKind::kFaasTcc;
  } else if (name == "hydrocache") {
    *out = SystemKind::kHydroCache;
  } else if (name == "cloudburst") {
    *out = SystemKind::kCloudburst;
  } else {
    return false;
  }
  return true;
}

const char* system_spec_name(SystemKind s) {
  switch (s) {
    case SystemKind::kFaasTcc: return "faastcc";
    case SystemKind::kHydroCache: return "hydrocache";
    case SystemKind::kCloudburst: return "cloudburst";
  }
  return "?";
}

ClusterParams RunSpec::resolve() const {
  ClusterParams p = params;
  if (!config.empty()) {
    const NamedConfig* c = find_config(config);
    if (c == nullptr) throw SpecError("unknown config '" + config + "'");
    c->apply(p);
  }
  return p;
}

std::string to_json(const RunSpec& spec) {
  // SpecFields binds mutable pointers; encoding only reads through them.
  RunSpec& mutable_spec = const_cast<RunSpec&>(spec);
  json::Writer w;
  SpecFields(mutable_spec).encode(w);
  std::string out = w.take();
  out.push_back('\n');
  return out;
}

void apply_spec_patch(RunSpec& spec, const json::Value& doc) {
  SpecFields(spec).apply(doc);
}

RunSpec spec_from_json(const json::Value& doc) {
  RunSpec spec;
  apply_spec_patch(spec, doc);
  return spec;
}

RunSpec spec_from_text(std::string_view text) {
  json::Value doc;
  try {
    doc = json::parse(text);
  } catch (const json::ParseError& e) {
    throw SpecError(std::string("spec: ") + e.what());
  }
  return spec_from_json(doc);
}

RunOutput run_one(const RunSpec& spec) {
  const ClusterParams params = spec.resolve();
  if (params.check_consistency && params.system != SystemKind::kFaasTcc) {
    throw SpecError(
        "check_consistency is only supported for system=faastcc");
  }
  Cluster cluster(params);
  RunOutput out;
  out.result = cluster.run();
  out.summary = summarize(out.result);
  out.messages_sent = cluster.network().messages_sent();
  if (check::ConsistencyOracle* oracle = cluster.oracle()) {
    out.checked = true;
    const auto violations = oracle->check();
    out.violations = violations.size();
    if (!violations.empty()) {
      out.violation_kind = check::violation_name(violations.front().kind);
      out.oracle_report = oracle->report(violations);
    }
    out.oracle_installs = oracle->installs_recorded();
    out.oracle_reads = oracle->reads_recorded();
    out.oracle_commits = oracle->commits_recorded();
  }
  if (params.trace.enabled) {
    std::ostringstream trace;
    cluster.tracer().export_chrome_trace(trace);
    out.trace_json = trace.str();
    out.trace_spans_recorded = cluster.tracer().spans_recorded();
    out.trace_spans_dropped = cluster.tracer().spans_dropped();
  }
  return out;
}

std::string run_output_to_json(const RunOutput& o) {
  json::Writer w(/*compact=*/true);
  w.begin_object();
  w.key("committed");
  w.u64(o.result.committed);
  w.key("aborted_attempts");
  w.u64(o.result.aborted_attempts);
  w.key("sim_events");
  w.u64(o.result.sim_events);
  w.key("messages");
  w.u64(o.messages_sent);
  w.key("duration_s");
  w.number(o.result.duration_s);
  w.key("throughput");
  w.number(o.result.throughput);

  w.key("summary");
  w.begin_object();
  const SummaryStats& s = o.summary;
  w.key("latency_med_ms");
  w.number(s.latency_med_ms);
  w.key("latency_p99_ms");
  w.number(s.latency_p99_ms);
  w.key("metadata_med");
  w.number(s.metadata_med);
  w.key("metadata_p99");
  w.number(s.metadata_p99);
  w.key("rounds_med");
  w.number(s.rounds_med);
  w.key("rounds_p99");
  w.number(s.rounds_p99);
  w.key("read_bytes_med");
  w.number(s.read_bytes_med);
  w.key("read_bytes_p99");
  w.number(s.read_bytes_p99);
  w.key("cache_bytes");
  w.number(s.cache_bytes);
  w.key("cache_entries");
  w.number(s.cache_entries);
  w.key("abort_rate");
  w.number(s.abort_rate);
  w.key("hit_rate");
  w.number(s.hit_rate);
  w.key("stab_lag_med_us");
  w.number(s.stab_lag_med_us);
  w.key("stab_lag_p99_us");
  w.number(s.stab_lag_p99_us);
  w.key("stab_stale_drops");
  w.number(s.stab_stale_drops);
  w.key("stab_drops_unknown_member");
  w.number(s.stab_drops_unknown_member);
  w.key("stab_drops_stale_report");
  w.number(s.stab_drops_stale_report);
  w.key("stab_drops_foreign_child");
  w.number(s.stab_drops_foreign_child);
  w.key("stab_drops_stale_broadcast");
  w.number(s.stab_drops_stale_broadcast);
  w.key("routing_active_partitions");
  w.number(s.routing_active_partitions);
  w.key("routing_epoch");
  w.number(s.routing_epoch);
  w.end_object();

  w.key("net");
  w.begin_object();
  const Metrics& m = o.result.metrics;
  w.key("lost");
  w.u64(m.net_messages_lost);
  w.key("duplicated");
  w.u64(m.net_messages_duplicated);
  w.key("delay_spikes");
  w.u64(m.net_delay_spikes);
  w.key("crash_dropped");
  w.u64(m.net_crash_dropped);
  w.key("rpc_timeouts");
  w.u64(m.net_rpc_timeouts);
  w.key("rpc_retries");
  w.u64(m.net_rpc_retries);
  w.key("dag_timeouts");
  w.u64(m.dag_timeouts.value());
  w.end_object();

  w.key("oracle");
  w.begin_object();
  w.key("checked");
  w.boolean(o.checked);
  w.key("violations");
  w.u64(o.violations);
  w.key("violation_kind");
  w.string(o.violation_kind);
  w.key("installs");
  w.u64(o.oracle_installs);
  w.key("reads");
  w.u64(o.oracle_reads);
  w.key("commits");
  w.u64(o.oracle_commits);
  w.key("report");
  w.string(o.oracle_report);
  w.end_object();

  w.end_object();
  return w.take();
}

}  // namespace faastcc::harness
