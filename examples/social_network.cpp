// The paper's motivating example (§3.4): a social network with symmetric
// friendship lists.  Invariant: if u1 appears in u2's friend list, u2
// appears in u1's.  Befriend/unfriend transactions update both lists
// atomically; checker DAGs read the two lists in *different functions on
// different workers*.
//
// Under FaaSTCC the checker can never observe a half-applied friendship.
// Under plain Cloudburst (eventual consistency) it regularly does — run
// both and compare.
#include <cstdio>
#include <string>

#include "harness/cluster.h"

using namespace faastcc;
using harness::Cluster;
using harness::ClusterParams;
using harness::SystemKind;

namespace {

constexpr Key kAlice = 1;  // key holding alice's friend list
constexpr Key kBob = 2;    // key holding bob's friend list

struct Outcome {
  int checks = 0;
  int violations = 0;
  int aborted = 0;
};

Buffer flag_args(bool befriend) {
  BufWriter w;
  w.put_bool(befriend);
  return w.take();
}

void register_functions(Cluster& cluster, Outcome& outcome) {
  // Writer: sets or clears both friendship edges in one transaction.
  cluster.registry().register_function(
      "update_friendship", [](faas::ExecEnv& env) -> sim::Task<Buffer> {
        BufReader r(env.args);
        const bool befriend = r.get_bool();
        env.txn.write(kAlice, befriend ? "friends:bob" : "");
        env.txn.write(kBob, befriend ? "friends:alice" : "");
        co_return Buffer{};
      });
  // Checker, first hop: read alice's list on one worker.
  cluster.registry().register_function(
      "check_alice", [](faas::ExecEnv& env) -> sim::Task<Buffer> {
        auto values = co_await env.txn.read(std::vector<Key>(1, kAlice));
        if (!values.has_value()) {
          env.abort_requested = true;
          co_return Buffer{};
        }
        BufWriter w;
        w.put_bytes((*values)[0]);
        co_return w.take();
      });
  // Checker, second hop: read bob's list on (usually) another worker and
  // verify symmetry against what the first hop saw.
  cluster.registry().register_function(
      "check_bob", [&outcome](faas::ExecEnv& env) -> sim::Task<Buffer> {
        auto values = co_await env.txn.read(std::vector<Key>(1, kBob));
        if (!values.has_value()) {
          env.abort_requested = true;
          co_return Buffer{};
        }
        BufReader r(env.parent_result);
        const std::string alice_list = r.get_bytes();
        const std::string bob_list((*values)[0].view());
        const bool alice_has_bob = alice_list.find("bob") != std::string::npos;
        const bool bob_has_alice =
            bob_list.find("alice") != std::string::npos;
        ++outcome.checks;
        if (alice_has_bob != bob_has_alice) ++outcome.violations;
        co_return Buffer{};
      });
}

Outcome run_system(SystemKind system, const char* label) {
  ClusterParams params;
  params.system = system;
  params.partitions = 2;  // the two lists live on different partitions
  params.compute_nodes = 4;
  params.clients = 0;
  params.workload.num_keys = 16;
  params.prewarm_caches = true;
  Cluster cluster(params);

  Outcome outcome;
  register_functions(cluster, outcome);
  cluster.start();

  net::RpcNode driver(cluster.network(), 900);
  int completed = 0;
  int launched = 0;
  driver.handle_oneway(faas::kDagDone, [&](Buffer b, net::Address) {
    auto done = decode_message<faas::DagDoneMsg>(b);
    if (!done.committed) ++outcome.aborted;
    ++completed;
  });

  // Interleave friendship flips with symmetry checks.
  Rng rng(17);
  for (int i = 0; i < 400; ++i) {
    cluster.loop().schedule_after(i * microseconds(800), [&, i] {
      faas::StartDagMsg start;
      start.txn_id = static_cast<TxnId>(i + 1);
      start.client = 900;
      if (i % 4 == 0) {
        faas::FunctionSpec w;
        w.name = "update_friendship";
        w.args = flag_args(rng.next_bool(0.5));
        start.spec = faas::DagSpec::chain({w});
      } else {
        faas::FunctionSpec a;
        a.name = "check_alice";
        faas::FunctionSpec b;
        b.name = "check_bob";
        start.spec = faas::DagSpec::chain({a, b});
      }
      driver.send(cluster.scheduler_address(), faas::kStartDag, start);
      ++launched;
    });
  }
  while (completed < 400 && cluster.loop().now() < seconds(120)) {
    cluster.loop().run_until(cluster.loop().now() + milliseconds(10));
  }

  std::printf("%-22s checks=%-4d symmetry violations=%-3d aborted=%d\n",
              label, outcome.checks, outcome.violations, outcome.aborted);
  return outcome;
}

}  // namespace

int main() {
  std::printf(
      "Symmetric-friendship invariant (paper §3.4): checker reads the two\n"
      "friend lists in two functions on different workers.\n\n");
  const Outcome tcc = run_system(SystemKind::kFaasTcc, "FaaSTCC (TCC):");
  const Outcome ev =
      run_system(SystemKind::kCloudburst, "Cloudburst (eventual):");
  std::printf(
      "\nTCC reads from one causal snapshot with atomic visibility, so the\n"
      "invariant can never be observed broken; eventual consistency "
      "tears it.\n");
  if (tcc.violations != 0) {
    std::printf("ERROR: FaaSTCC violated the invariant!\n");
    return 1;
  }
  if (ev.violations == 0) {
    std::printf(
        "note: the eventual run happened to observe no violation this "
        "time;\nincrease contention to make them more frequent.\n");
  }
  return 0;
}
