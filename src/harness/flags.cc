#include "harness/flags.h"

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace faastcc::harness {

namespace {

bool parse_i64(const std::string& v, int64_t* out) {
  errno = 0;
  char* end = nullptr;
  const long long r = std::strtoll(v.c_str(), &end, 10);
  if (v.empty() || errno == ERANGE || end != v.c_str() + v.size()) {
    return false;
  }
  *out = static_cast<int64_t>(r);
  return true;
}

bool parse_u64(const std::string& v, uint64_t* out) {
  if (!v.empty() && v[0] == '-') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long r = std::strtoull(v.c_str(), &end, 10);
  if (v.empty() || errno == ERANGE || end != v.c_str() + v.size()) {
    return false;
  }
  *out = static_cast<uint64_t>(r);
  return true;
}

bool parse_double(const std::string& v, double* out) {
  errno = 0;
  char* end = nullptr;
  const double r = std::strtod(v.c_str(), &end);
  if (v.empty() || end != v.c_str() + v.size()) return false;
  *out = r;
  return true;
}

}  // namespace

Flags::Flags(std::string prog, std::string description)
    : prog_(std::move(prog)), description_(std::move(description)) {}

void Flags::add(Flag flag) { flags_.push_back(std::move(flag)); }

const Flags::Flag* Flags::find(std::string_view name) const {
  for (const Flag& f : flags_) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

void Flags::boolean(std::string_view name, std::string_view help, bool* out) {
  Flag f;
  f.name = name;
  f.help = help;
  f.is_bool = true;
  f.default_text = *out ? "true" : "false";
  f.apply = [out](const std::string& v) {
    if (v.empty() || v == "true" || v == "1") {
      *out = true;
    } else if (v == "false" || v == "0") {
      *out = false;
    } else {
      return false;
    }
    return true;
  };
  add(std::move(f));
}

void Flags::integer(std::string_view name, std::string_view help, int* out) {
  Flag f;
  f.name = name;
  f.value_name = "n";
  f.help = help;
  f.default_text = std::to_string(*out);
  f.apply = [out](const std::string& v) {
    int64_t r = 0;
    if (!parse_i64(v, &r) || r < INT32_MIN || r > INT32_MAX) return false;
    *out = static_cast<int>(r);
    return true;
  };
  add(std::move(f));
}

void Flags::u64(std::string_view name, std::string_view help, uint64_t* out) {
  Flag f;
  f.name = name;
  f.value_name = "n";
  f.help = help;
  f.default_text = std::to_string(*out);
  f.apply = [out](const std::string& v) { return parse_u64(v, out); };
  add(std::move(f));
}

void Flags::size(std::string_view name, std::string_view help, size_t* out) {
  Flag f;
  f.name = name;
  f.value_name = "n|inf";
  f.help = help;
  f.default_text = *out == SIZE_MAX ? "inf" : std::to_string(*out);
  f.apply = [out](const std::string& v) {
    if (v == "inf") {
      *out = SIZE_MAX;
      return true;
    }
    uint64_t r = 0;
    if (!parse_u64(v, &r)) return false;
    *out = static_cast<size_t>(r);
    return true;
  };
  add(std::move(f));
}

void Flags::real(std::string_view name, std::string_view help, double* out) {
  Flag f;
  f.name = name;
  f.value_name = "x";
  f.help = help;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", *out);
  f.default_text = buf;
  f.apply = [out](const std::string& v) { return parse_double(v, out); };
  add(std::move(f));
}

void Flags::str(std::string_view name, std::string_view help,
                std::string* out) {
  Flag f;
  f.name = name;
  f.value_name = "s";
  f.help = help;
  f.default_text = *out;
  f.apply = [out](const std::string& v) {
    *out = v;
    return true;
  };
  add(std::move(f));
}

void Flags::duration_ms(std::string_view name, std::string_view help,
                        Duration* out) {
  Flag f;
  f.name = name;
  f.value_name = "ms";
  f.help = help;
  f.default_text = std::to_string(*out / 1000);
  f.apply = [out](const std::string& v) {
    int64_t r = 0;
    if (!parse_i64(v, &r)) return false;
    *out = milliseconds(r);
    return true;
  };
  add(std::move(f));
}

void Flags::custom(std::string_view name, std::string_view value_name,
                   std::string_view help,
                   std::function<bool(const std::string&)> parse) {
  Flag f;
  f.name = name;
  f.value_name = value_name;
  f.help = help;
  f.apply = std::move(parse);
  add(std::move(f));
}

bool Flags::parse(int argc, char** argv) {
  error_.clear();
  help_requested_ = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      return true;
    }
    if (arg.size() < 3 || arg.substr(0, 2) != "--") {
      error_ = "unexpected argument '" + std::string(arg) + "'";
      return false;
    }
    const size_t eq = arg.find('=');
    const std::string_view name =
        arg.substr(2, eq == std::string_view::npos ? std::string_view::npos
                                                   : eq - 2);
    const Flag* f = find(name);
    if (f == nullptr) {
      error_ = "unknown flag '--" + std::string(name) + "'";
      return false;
    }
    std::string value;
    if (eq != std::string_view::npos) {
      value = std::string(arg.substr(eq + 1));
    } else if (!f->is_bool) {
      error_ = "flag '--" + f->name + "' needs a value (--" + f->name + "=<" +
               f->value_name + ">)";
      return false;
    }
    if (!f->apply(value)) {
      error_ = "bad value for '--" + f->name + "': '" + value + "'";
      return false;
    }
  }
  return true;
}

std::string Flags::usage() const {
  std::string out = "usage: " + prog_ + " [options]";
  if (!description_.empty()) out += "\n" + description_;
  out += "\n";
  size_t width = 0;
  std::vector<std::string> lhs;
  lhs.reserve(flags_.size());
  for (const Flag& f : flags_) {
    std::string spec = "--" + f.name;
    if (!f.value_name.empty()) spec += "=<" + f.value_name + ">";
    width = std::max(width, spec.size());
    lhs.push_back(std::move(spec));
  }
  for (size_t i = 0; i < flags_.size(); ++i) {
    const Flag& f = flags_[i];
    out += "  " + lhs[i];
    out.append(width + 2 - lhs[i].size(), ' ');
    out += f.help;
    if (!f.default_text.empty()) out += " (default " + f.default_text + ")";
    out += "\n";
  }
  out += "  --help";
  out.append(width + 2 - 6, ' ');
  out += "print this message\n";
  return out;
}

std::vector<std::string> Flags::split_csv(std::string_view csv) {
  std::vector<std::string> out;
  if (csv.empty()) return out;
  size_t pos = 0;
  for (;;) {
    const size_t comma = csv.find(',', pos);
    out.emplace_back(csv.substr(
        pos, comma == std::string_view::npos ? std::string_view::npos
                                             : comma - pos));
    if (comma == std::string_view::npos) break;
    pos = comma + 1;
  }
  return out;
}

}  // namespace faastcc::harness
