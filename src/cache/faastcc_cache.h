// The FaaSTCC caching layer (paper §4.3, Alg. 2), one instance per compute
// node.
//
// Entries are <key, value, t, promise> tuples.  A read request carries the
// client's snapshot interval; keys are processed in order against the
// running interval (Eq. 1/2), misses are fetched from the TCC storage in a
// single batched round at the interval's upper bound, and the narrowed
// interval is returned.
//
// The cache subscribes to updates for every key it holds.  Partitions push
// fresh versions of dirty subscribed keys every refresh period (50 ms in
// the paper) together with their current stable time; because the dirty
// set is complete for subscribed keys, the push's stable time also extends
// the promise of every *open* cached version of that partition (a version
// with no successor as of the push).  This keeps promises of rarely
// written keys fresh without per-key traffic.  Committed writes are not
// inserted eagerly (§4.7).
#pragma once

#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "cache/cache_messages.h"
#include "cache/lru_index.h"
#include "common/metrics.h"
#include "net/rpc.h"
#include "storage/storage_client.h"

namespace faastcc::cache {

struct CacheParams {
  // Maximum number of entries; SIZE_MAX = unbounded (paper default), 0 =
  // cache disabled (§6.7's 0 % configuration).
  size_t capacity = SIZE_MAX;
  Duration lookup_cpu = microseconds(8);  // service time per request
  Duration retry_backoff = milliseconds(1);
  // Topology-service endpoint (0 = static routing).  When set, the cache
  // listens for epoch bumps (kTopoUpdate broadcasts + wrong-epoch NACK
  // driven pulls) and re-homes subscriptions and stable-tracking onto the
  // new owners.
  net::Address topo_service = 0;
  // Chaos knobs (tests/fuzzer only): re-enable historical bugs so the
  // consistency oracle can demonstrate it catches them.
  // Prewarm entries as open without a storage subscription: their promises
  // get extended by pushed stable times although no push will ever announce
  // a successor (the unsound-prewarm-promise bug).
  bool chaos_prewarm_open = false;
  // Serve cached entries regardless of the request's snapshot interval
  // (and skip narrowing), breaking snapshot validity outright.
  bool chaos_ignore_interval = false;
};

class FaasTccCache {
 public:
  FaasTccCache(net::Network& network, net::Address self,
               storage::TccTopology topology, CacheParams params,
               Metrics* metrics, obs::Tracer* tracer = nullptr);

  net::Address address() const { return rpc_.address(); }

  size_t entry_count() const { return entries_.size(); }
  // Memory footprint: value bytes plus per-entry key/timestamp/promise
  // metadata (Fig. 8).
  size_t bytes() const { return bytes_; }

  struct Counters {
    Counter requests;
    Counter served_from_cache;  // requests fully satisfied locally
    Counter storage_fetches;
    Counter pushes_applied;
    Counter pushes_stale;
    Counter evictions;
    // Push-channel sequence gaps observed (lost pushes): each one closes
    // the partition's open entries until a re-announce arrives.
    Counter push_gaps;
    // Cached keys whose owner changed on an epoch bump (closed and
    // re-subscribed at the new owner).
    Counter rehomed_keys;
  };
  const Counters& counters() const { return counters_; }

  struct Entry {
    Value value;
    Timestamp ts;
    Timestamp promise;
    // No successor known as of `promise`: the promise may be extended by a
    // later stable time of the owning partition.
    bool open = false;
  };

  // Test access.
  bool has(Key k) const { return entries_.count(k) != 0; }
  const Entry* peek(Key k) const;
  Timestamp partition_stable(PartitionId p) const {
    return partition_stable_.at(p);
  }

  // Installs an entry directly, bypassing the protocol (experiment
  // pre-warming, §6.1: "cache sizes are unbounded and were pre-warmed").
  // `subscribed` asserts the caller has already registered the matching
  // storage subscription; only then is the entry open (eligible for
  // promise extension by pushed stable times).  An open entry without a
  // live subscription would keep promising a version the partition may
  // already have overwritten — the cache never hears about the successor.
  void prewarm(const storage::VersionedValue& vv, bool subscribed = false);

 private:
  static constexpr size_t kEntryOverhead = 8 + 8 + 8;  // key + ts + promise
  // Must cover at least one full gossip period of the stabilizer at the
  // configured backoff, or hot-key reads can exhaust retries under
  // extreme contention.
  static constexpr int kMaxFetchAttempts = 8;

  sim::Task<Buffer> on_read(Buffer req, net::Address from);
  void on_push(Buffer msg, net::Address from);
  void on_push_batch(Buffer msg, net::Address from);
  // Shared body of both push frames: seq-channel ordering, per-partition
  // stable merge, and per-update apply.  PushBatchMsg updates arrive here
  // with their promise re-derived as max(ts, header stable) — exactly the
  // value the PushMsg path would have carried.
  void apply_push(PartitionId partition, uint64_t seq, Timestamp stable,
                  const std::vector<storage::VersionedValue>& updates);

  // The promise currently claimable for an entry (extended by the owning
  // partition's pushed stable time when the version is open).
  Timestamp effective_promise(Key k, const Entry& e) const;

  void insert_or_update(const storage::TccReadResp::Entry& entry);
  void evict_to_capacity();

  // Ordered control channel to the storage layer: (un)subscribe requests
  // are queued and sent one at a time with increasing sequence numbers, so
  // a duplicated/delayed retry can never resurrect a cancelled
  // subscription at a partition.
  void request_subscribe(std::vector<Key> keys);
  void request_unsubscribe(std::vector<Key> keys);
  sim::Task<void> ctl_drain();
  // A push-channel sequence gap: the lost push may have announced a
  // successor version, so every open entry of the partition must close
  // until the re-announce (triggered by resubscribing) arrives.
  void handle_push_gap(PartitionId p);
  // An epoch bump re-homed part of the key space: close entries whose
  // owner changed (the old owner dropped our subscription with the chain)
  // and re-subscribe them at the new owner.
  void rehome(const routing::RoutingTable& old_table,
              const routing::RoutingTable& new_table);

  net::RpcNode rpc_;
  storage::TccStorageClient storage_;
  CacheParams params_;
  Metrics* metrics_;
  obs::Tracer* tracer_ = nullptr;
  std::unordered_map<Key, Entry> entries_;
  LruIndex lru_;
  size_t bytes_ = 0;
  // Highest global stable time observed anywhere; monotone per partition,
  // so always a safe read snapshot.
  Timestamp stable_est_;
  // Last pushed stable time per partition (promise extension).
  std::vector<Timestamp> partition_stable_;
  // Last in-order push-channel sequence per partition (0 = none yet; the
  // first push carries seq 1, so losses before first contact also count
  // as gaps).
  std::vector<uint64_t> push_seq_;
  // Bumped on every push gap; an in-flight storage read that started
  // before a gap must not reopen entries from its stale "open" flags.
  uint64_t gap_epoch_ = 0;
  // Subscription state: keys we want subscribed, and keys whose
  // subscription every partition has acknowledged.  Only acknowledged
  // subscriptions make entries open — an unconfirmed one delivers no
  // pushes, so extending promises on it would be unsound.
  std::unordered_map<Key, bool> sub_desired_;
  std::unordered_set<Key> sub_active_;
  struct CtlOp {
    bool subscribe;
    std::vector<Key> keys;
  };
  std::deque<CtlOp> ctl_queue_;
  bool ctl_busy_ = false;
  uint64_t ctl_seq_ = 0;
  Counters counters_;
};

}  // namespace faastcc::cache
