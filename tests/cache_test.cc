// Unit tests for the caching layer: LRU index, dependency maps, the
// FaaSTCC promise-aware cache, the HydroCache causal cache, and the plain
// Cloudburst cache.
#include <gtest/gtest.h>

#include "cache/cache_messages.h"
#include "cache/faastcc_cache.h"
#include "cache/hydro_cache.h"
#include "cache/hydro_types.h"
#include "cache/lru_index.h"
#include "cache/plain_cache.h"
#include "net/network.h"
#include "sim/future.h"
#include "storage/eventual_store.h"
#include "storage/tcc_partition.h"

namespace faastcc::cache {
namespace {

using client::SnapshotInterval;
using storage::KeyValue;
using storage::TccReadResp;

Timestamp ts(uint64_t us) { return Timestamp(us, 0, 0); }

// ---------------------------------------------------------------------------
// LruIndex
// ---------------------------------------------------------------------------

TEST(LruIndex, EvictionOrderIsLeastRecent) {
  LruIndex lru;
  lru.touch(1);
  lru.touch(2);
  lru.touch(3);
  EXPECT_EQ(*lru.least_recent(), 1u);
  lru.touch(1);  // 2 becomes least recent
  EXPECT_EQ(*lru.least_recent(), 2u);
}

TEST(LruIndex, EraseRemoves) {
  LruIndex lru;
  lru.touch(1);
  lru.touch(2);
  lru.erase(1);
  EXPECT_FALSE(lru.contains(1));
  EXPECT_EQ(lru.size(), 1u);
  EXPECT_EQ(*lru.least_recent(), 2u);
}

TEST(LruIndex, EmptyHasNoVictim) {
  LruIndex lru;
  EXPECT_FALSE(lru.least_recent().has_value());
  lru.erase(5);  // no-op
  EXPECT_EQ(lru.size(), 0u);
}

TEST(LruIndex, TouchIsIdempotentOnSize) {
  LruIndex lru;
  lru.touch(1);
  lru.touch(1);
  lru.touch(1);
  EXPECT_EQ(lru.size(), 1u);
}

// ---------------------------------------------------------------------------
// DepMap
// ---------------------------------------------------------------------------

TEST(DepMap, RequireKeepsMaxCounter) {
  DepMap m;
  m.require(1, 5, 100, 1);
  m.require(1, 3, 50, 0);
  EXPECT_EQ(m.find(1)->counter, 5u);
  m.require(1, 9, 200, 2);
  EXPECT_EQ(m.find(1)->counter, 9u);
  EXPECT_EQ(m.find(1)->level, 2);
}

TEST(DepMap, EqualCounterKeepsMinLevel) {
  DepMap m;
  m.require(1, 5, 100, 2);
  m.require(1, 5, 100, 1);
  EXPECT_EQ(m.find(1)->level, 1);
}

TEST(DepMap, ReadFlagIsSticky) {
  DepMap m;
  m.mark_read(1, 5, 100);
  m.require(1, 7, 200, 1);
  EXPECT_TRUE(m.find(1)->read);
  EXPECT_EQ(m.find(1)->counter, 7u);
}

TEST(DepMap, MergePreservesReadsAndMaxima) {
  DepMap a, b;
  a.mark_read(1, 5, 100);
  a.require(2, 3, 50, 1);
  b.require(1, 9, 200, 2);
  b.mark_read(3, 1, 10);
  a.merge(b);
  EXPECT_TRUE(a.find(1)->read);
  EXPECT_EQ(a.find(1)->counter, 9u);
  EXPECT_EQ(a.find(2)->counter, 3u);
  EXPECT_TRUE(a.find(3)->read);
}

TEST(DepMap, GcDropsOldNonReadEntries) {
  DepMap m;
  m.require(1, 5, 100, 1);
  m.mark_read(2, 5, 100);
  m.require(3, 5, 5000, 1);
  m.gc_before(1000);
  EXPECT_EQ(m.find(1), nullptr);     // old, not read
  EXPECT_NE(m.find(2), nullptr);     // read markers survive
  EXPECT_NE(m.find(3), nullptr);     // young
}

TEST(DepMap, RestrictToDropsIrrelevantKeys) {
  DepMap m;
  m.require(1, 5, 100, 1);
  m.require(2, 5, 100, 1);
  m.require(3, 5, 100, 1);
  std::unordered_set<Key> keep{1, 3};
  m.restrict_to(keep);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(m.find(2), nullptr);
}

// Regression: the hash-map DepMap encoded in bucket-iteration order, so
// the same logical map produced different bytes depending on insertion
// order (and stdlib).  The wire encoding must be canonical: sorted by key,
// identical across insertion orders.
TEST(DepMap, EncodeIsCanonicalAcrossInsertionOrders) {
  const Key keys[] = {17, 3, 42, 8, 25, 1, 99, 60};
  DepMap forward;
  for (Key k : keys) forward.require(k, k + 1, 100, 1);
  DepMap reverse;
  for (auto it = std::rbegin(keys); it != std::rend(keys); ++it) {
    reverse.require(*it, *it + 1, 100, 1);
  }
  BufWriter wf, wr;
  forward.encode(wf);
  reverse.encode(wr);
  EXPECT_EQ(wf.take(), wr.take()) << "encoding depends on insertion order";

  BufWriter w;
  forward.encode(w);
  const Buffer b = w.take();
  BufReader r(b);
  const uint32_t n = r.get_u32();
  ASSERT_EQ(n, std::size(keys));
  Key prev = 0;
  for (uint32_t i = 0; i < n; ++i) {
    const Key k = r.get_u64();
    r.get_u64();
    r.get_i64();
    r.get_bool();
    r.get_u8();
    if (i > 0) {
      EXPECT_LT(prev, k) << "wire entries not sorted by key";
    }
    prev = k;
  }
}

// Regression: restrict_to used to erase read-marked entries whose keys
// fell outside the declared key set, silently disabling conflict detection
// for reads the static analysis did not anticipate.  Read markers must be
// exempt from pruning.
TEST(DepMap, RestrictToKeepsReadMarkersOutsideDeclaredSet) {
  DepMap m;
  m.mark_read(2, 3, 50);       // actually read, NOT in the declared set
  m.require(5, 7, 100, 1);     // plain dep outside the set: prunable
  m.require(1, 4, 100, 1);     // in the set
  std::unordered_set<Key> declared{1};
  m.restrict_to(declared);
  ASSERT_NE(m.find(2), nullptr) << "read marker dropped by restrict_to";
  EXPECT_TRUE(m.find(2)->read);
  EXPECT_EQ(m.find(2)->counter, 3u);
  EXPECT_NE(m.find(1), nullptr);
  EXPECT_EQ(m.find(5), nullptr);  // non-read entries still pruned
}

TEST(DepMap, WireBytesMatchEncodedSize) {
  DepMap m;
  for (Key k = 0; k < 10; ++k) m.require(k, k + 1, 100, 1);
  BufWriter w;
  m.encode(w);
  EXPECT_EQ(w.size(), m.wire_bytes());
}

TEST(DepMap, EncodeDecodeRoundTrip) {
  DepMap m;
  m.mark_read(1, 5, 100);
  m.require(2, 9, 200, 2);
  BufWriter w;
  m.encode(w);
  const Buffer b = w.take();
  BufReader r(b);
  DepMap d = DepMap::decode(r);
  EXPECT_EQ(d.size(), 2u);
  EXPECT_TRUE(d.find(1)->read);
  EXPECT_EQ(d.find(2)->counter, 9u);
  EXPECT_EQ(d.find(2)->level, 2);
}

// ---------------------------------------------------------------------------
// FaaSTCC cache against a live TCC partition cluster.
// ---------------------------------------------------------------------------

class FaasTccCacheTest : public ::testing::Test {
 protected:
  FaasTccCacheTest()
      : net_(loop_, net::NetworkParams{}, Rng(7)), client_rpc_(net_, 50) {
    storage::TccTopology topo;
    topo.partitions = {100, 101};
    for (size_t p = 0; p < 2; ++p) {
      storage::TccPartitionParams params;
      params.gossip_period = milliseconds(2);
      params.push_period = milliseconds(20);
      partitions_.push_back(std::make_unique<storage::TccPartition>(
          net_, topo.partitions[p], static_cast<PartitionId>(p),
          topo.partitions, params));
    }
    cache_ = std::make_unique<FaasTccCache>(net_, 200, topo, CacheParams{},
                                            &metrics_);
    storage_client_ =
        std::make_unique<storage::TccStorageClient>(client_rpc_, topo);
    for (auto& p : partitions_) p->start();
    loop_.run_until(milliseconds(20));
  }

  template <typename F>
  void run(F&& body) {
    bool done = false;
    sim::spawn([](F f, bool& flag) -> sim::Task<void> {
      co_await f();
      flag = true;
    }(std::forward<F>(body), done));
    // Background gossip/push loops never drain the queue; step until the
    // body completes (or a generous simulated deadline trips).
    const SimTime deadline = loop_.now() + seconds(60);
    while (!done && loop_.now() < deadline) {
      loop_.run_until(loop_.now() + milliseconds(5));
    }
    ASSERT_TRUE(done);
  }

  sim::Task<CacheReadResp> cache_read(std::vector<Key> keys,
                                      SnapshotInterval si,
                                      bool use_promises = true) {
    CacheReadReq req;
    req.interval = si;
    req.use_promises = use_promises;
    req.keys = std::move(keys);
    co_return co_await client_rpc_.call<CacheReadResp>(200, kCacheRead, req);
  }

  sim::Task<Timestamp> commit(Key k, Value v, Timestamp dep) {
    std::vector<KeyValue> writes;
    writes.push_back(KeyValue{k, std::move(v)});
    co_return *co_await storage_client_->commit(next_txn_++, std::move(writes),
                                               dep);
  }

  sim::EventLoop loop_;
  net::Network net_;
  net::RpcNode client_rpc_;
  Metrics metrics_;
  std::vector<std::unique_ptr<storage::TccPartition>> partitions_;
  std::unique_ptr<FaasTccCache> cache_;
  std::unique_ptr<storage::TccStorageClient> storage_client_;
  TxnId next_txn_ = 1;
};

TEST_F(FaasTccCacheTest, MissFetchesFromStorageAndCaches) {
  run([&]() -> sim::Task<void> {
    co_await commit(1, "v1", Timestamp::min());
    co_await sim::sleep_for(loop_, milliseconds(10));
    std::vector<Key> keys(1, Key{1});
    auto resp = co_await cache_read(keys, SnapshotInterval::full());
    EXPECT_FALSE(resp.abort);
    EXPECT_EQ(resp.entries[0].value, "v1");
    EXPECT_FALSE(resp.from_cache[0]);
    EXPECT_TRUE(cache_->has(1));
  });
}

TEST_F(FaasTccCacheTest, SecondReadHitsCache) {
  run([&]() -> sim::Task<void> {
    co_await commit(1, "v1", Timestamp::min());
    co_await sim::sleep_for(loop_, milliseconds(10));
    std::vector<Key> keys(1, Key{1});
    co_await cache_read(keys, SnapshotInterval::full());
    const auto fetches = cache_->counters().storage_fetches.value();
    auto resp = co_await cache_read(keys, SnapshotInterval::full());
    EXPECT_TRUE(resp.from_cache[0]);
    EXPECT_EQ(cache_->counters().storage_fetches.value(), fetches);
  });
}

TEST_F(FaasTccCacheTest, IntervalNarrowsToVersionAndPromise) {
  run([&]() -> sim::Task<void> {
    const Timestamp t1 = co_await commit(1, "v1", Timestamp::min());
    co_await sim::sleep_for(loop_, milliseconds(10));
    std::vector<Key> keys(1, Key{1});
    auto resp = co_await cache_read(keys, SnapshotInterval::full());
    EXPECT_EQ(resp.interval.low, t1);
    EXPECT_GE(resp.interval.high, t1);
    EXPECT_LT(resp.interval.high, Timestamp::max());
  });
}

TEST_F(FaasTccCacheTest, StaleEntryPromiseRefreshedNotRefetched) {
  // Paper §4.6 "current version is stale": the entry's promise is behind
  // the request's lower bound; the storage answers "unchanged" and only
  // the promise is updated.
  run([&]() -> sim::Task<void> {
    const Timestamp t1 = co_await commit(1, "v1", Timestamp::min());
    co_await sim::sleep_for(loop_, milliseconds(10));
    std::vector<Key> k1(1, Key{1});
    co_await cache_read(k1, SnapshotInterval::full());
    // Build an interval whose low bound is beyond the cached promise.
    const Timestamp future_low = cache_->peek(1)->promise.next();
    co_await commit(2, "x", future_low);  // push real time forward
    co_await sim::sleep_for(loop_, milliseconds(30));
    SnapshotInterval si;
    si.low = future_low;
    auto resp = co_await cache_read(k1, si);
    EXPECT_FALSE(resp.abort);
    EXPECT_EQ(resp.entries[0].value, "v1");
    EXPECT_EQ(resp.entries[0].ts, t1);
    EXPECT_GE(resp.entries[0].promise, future_low);
  });
}

TEST_F(FaasTccCacheTest, ReplacedVersionServedWithoutCacheUpdate) {
  // Paper §4.6 "desired version has been replaced": an older snapshot
  // needs an older version; it is served but the newer cache entry stays.
  run([&]() -> sim::Task<void> {
    const Timestamp t1 = co_await commit(1, "v1", Timestamp::min());
    const Timestamp t2 = co_await commit(1, "v2", t1);
    co_await sim::sleep_for(loop_, milliseconds(10));
    std::vector<Key> k1(1, Key{1});
    co_await cache_read(k1, SnapshotInterval::full());  // caches v2
    EXPECT_EQ(cache_->peek(1)->ts, t2);
    SnapshotInterval old_si;
    old_si.high = t2.prev();
    auto resp = co_await cache_read(k1, old_si);
    EXPECT_EQ(resp.entries[0].value, "v1");
    EXPECT_EQ(cache_->peek(1)->ts, t2);  // cache not downgraded
  });
}

TEST_F(FaasTccCacheTest, PushUpdatesSubscribedEntry) {
  run([&]() -> sim::Task<void> {
    co_await commit(1, "v1", Timestamp::min());
    co_await sim::sleep_for(loop_, milliseconds(10));
    std::vector<Key> k1(1, Key{1});
    co_await cache_read(k1, SnapshotInterval::full());
    const Timestamp t2 = co_await commit(1, "v2", Timestamp::min());
    co_await sim::sleep_for(loop_, milliseconds(60));  // > push period
    EXPECT_EQ(cache_->peek(1)->ts, t2);
    EXPECT_EQ(cache_->peek(1)->value, "v2");
    EXPECT_GT(cache_->counters().pushes_applied.value(), 0u);
  });
}

TEST_F(FaasTccCacheTest, PromiseExtensionKeepsIdleEntriesServable) {
  run([&]() -> sim::Task<void> {
    co_await commit(1, "v1", Timestamp::min());
    co_await sim::sleep_for(loop_, milliseconds(10));
    std::vector<Key> k1(1, Key{1});
    co_await cache_read(k1, SnapshotInterval::full());
    const Timestamp promise_then = cache_->peek(1)->promise;
    // No further writes to key 1; idle pushes extend the usable promise.
    co_await sim::sleep_for(loop_, milliseconds(200));
    const auto fetches = cache_->counters().storage_fetches.value();
    SnapshotInterval si;
    si.low = promise_then.next();  // beyond the stored promise
    auto resp = co_await cache_read(k1, si);
    EXPECT_TRUE(resp.from_cache[0]);
    EXPECT_EQ(cache_->counters().storage_fetches.value(), fetches);
  });
}

TEST_F(FaasTccCacheTest, NoPromiseModeRequiresExactVersionInInterval) {
  run([&]() -> sim::Task<void> {
    const Timestamp t1 = co_await commit(1, "v1", Timestamp::min());
    co_await sim::sleep_for(loop_, milliseconds(10));
    std::vector<Key> k1(1, Key{1});
    co_await cache_read(k1, SnapshotInterval::full());
    const auto fetches = cache_->counters().storage_fetches.value();
    // With promises disabled, an interval above the version ts misses.
    SnapshotInterval si;
    si.low = t1.next();
    auto resp = co_await cache_read(k1, si, /*use_promises=*/false);
    EXPECT_FALSE(resp.abort);
    EXPECT_GT(cache_->counters().storage_fetches.value(), fetches);
  });
}

TEST_F(FaasTccCacheTest, CapacityBoundEvictsLeastRecent) {
  cache_ = std::make_unique<FaasTccCache>(
      net_, 201, storage::TccTopology{{100, 101}}, CacheParams{2}, &metrics_);
  run([&]() -> sim::Task<void> {
    co_await commit(1, "a", Timestamp::min());
    co_await commit(2, "b", Timestamp::min());
    co_await commit(3, "c", Timestamp::min());
    co_await sim::sleep_for(loop_, milliseconds(10));
    for (Key k : {Key{1}, Key{2}, Key{3}}) {
      std::vector<Key> keys(1, k);
      CacheReadReq req;
      req.interval = SnapshotInterval::full();
      req.keys = keys;
      co_await client_rpc_.call<CacheReadResp>(201, kCacheRead, req);
    }
    EXPECT_EQ(cache_->entry_count(), 2u);
    EXPECT_FALSE(cache_->has(1));  // least recently used
    EXPECT_TRUE(cache_->has(3));
  });
}

TEST_F(FaasTccCacheTest, DisabledCacheNeverStores) {
  cache_ = std::make_unique<FaasTccCache>(
      net_, 201, storage::TccTopology{{100, 101}}, CacheParams{0}, &metrics_);
  run([&]() -> sim::Task<void> {
    co_await commit(1, "a", Timestamp::min());
    co_await sim::sleep_for(loop_, milliseconds(10));
    std::vector<Key> keys(1, Key{1});
    CacheReadReq req;
    req.interval = SnapshotInterval::full();
    req.keys = keys;
    auto resp = co_await client_rpc_.call<CacheReadResp>(201, kCacheRead, req);
    EXPECT_EQ(resp.entries[0].value, "a");
    EXPECT_EQ(cache_->entry_count(), 0u);
  });
}

TEST_F(FaasTccCacheTest, PrewarmWithoutSubscriptionStaysClosed) {
  // A pre-warmed entry with no backing subscription must keep its promise
  // frozen at the install-time stable time: the cache will never hear of
  // later versions, so extending the promise with pushed stable times
  // (which only other keys' subscriptions keep flowing) would be unsound.
  run([&]() -> sim::Task<void> {
    const Timestamp t1 = co_await commit(2, "warm", Timestamp::min());
    // Organic subscription to another key of the same partition keeps
    // stable-time pushes flowing to this cache.
    co_await commit(4, "x", Timestamp::min());
    co_await sim::sleep_for(loop_, milliseconds(10));
    std::vector<Key> k4(1, Key{4});
    auto sub_resp = co_await cache_read(k4, SnapshotInterval::full());
    EXPECT_FALSE(sub_resp.abort);
    cache_->prewarm(storage::VersionedValue{2, "warm", t1,
                                            partitions_[0]->stable_time()});
    EXPECT_NE(cache_->peek(2), nullptr);
    EXPECT_FALSE(cache_->peek(2)->open);
    const Timestamp frozen = cache_->peek(2)->promise;
    // A new version of key 2 the cache never hears about.
    const Timestamp t2 = co_await commit(2, "new", t1);
    co_await sim::sleep_for(loop_, milliseconds(100));
    EXPECT_GT(cache_->counters().pushes_applied.value(), 0u);
    std::vector<Key> k2(1, Key{2});
    auto resp = co_await cache_read(k2, SnapshotInterval::full());
    EXPECT_EQ(resp.entries[0].ts, t1);
    EXPECT_EQ(resp.entries[0].promise, frozen);
    EXPECT_LT(resp.entries[0].promise, t2) << "promise covers unseen version";
  });
}

TEST_F(FaasTccCacheTest, SubscribedPrewarmOpensEntry) {
  run([&]() -> sim::Task<void> {
    const Timestamp t1 = co_await commit(2, "warm", Timestamp::min());
    co_await sim::sleep_for(loop_, milliseconds(10));
    partitions_[0]->add_subscriber(2, cache_->address());
    cache_->prewarm(storage::VersionedValue{2, "warm", t1,
                                            partitions_[0]->stable_time()},
                    /*subscribed=*/true);
    EXPECT_NE(cache_->peek(2), nullptr);
    EXPECT_TRUE(cache_->peek(2)->open);
  });
}

TEST_F(FaasTccCacheTest, ChaosOpenPrewarmExtendsPromiseOverUnseenVersion) {
  // The historical bug, reintroduced via the chaos knob: pre-warm entries
  // open with no subscription.  Pushes earned by other keys extend the
  // stale entry's promise past a version the cache never heard about.
  CacheParams cp;
  cp.chaos_prewarm_open = true;
  cache_ = std::make_unique<FaasTccCache>(
      net_, 201, storage::TccTopology{{100, 101}}, cp, &metrics_);
  run([&]() -> sim::Task<void> {
    const Timestamp t1 = co_await commit(2, "warm", Timestamp::min());
    co_await commit(4, "x", Timestamp::min());
    co_await sim::sleep_for(loop_, milliseconds(10));
    // Organic subscription to key 4 keeps stable-time pushes flowing.
    CacheReadReq sub_req;
    sub_req.interval = SnapshotInterval::full();
    sub_req.keys.push_back(4);
    auto sub_resp =
        co_await client_rpc_.call<CacheReadResp>(201, kCacheRead, sub_req);
    EXPECT_FALSE(sub_resp.abort);
    cache_->prewarm(storage::VersionedValue{2, "warm", t1,
                                            partitions_[0]->stable_time()});
    EXPECT_TRUE(cache_->peek(2)->open);  // open, yet nobody subscribed it
    const Timestamp t2 = co_await commit(2, "new", t1);
    // Wait until gossip stabilizes past t2 and pushed stable times (earned
    // by key 4's subscription alone) overtake it.
    co_await sim::sleep_for(loop_, milliseconds(200));
    CacheReadReq req;
    req.interval = SnapshotInterval::full();
    req.keys.push_back(2);
    auto resp = co_await client_rpc_.call<CacheReadResp>(201, kCacheRead, req);
    EXPECT_EQ(resp.entries[0].ts, t1);
    EXPECT_GE(resp.entries[0].promise, t2)
        << "expected the unsound promise the chaos knob reintroduces";
  });
}

TEST_F(FaasTccCacheTest, NoPromiseModeNarrowsHighToVersionTs) {
  // Fig. 3 ablation fidelity: with promises disabled the interval must
  // narrow with the bare version timestamp on cache hits too — narrowing
  // with the full promise would leak promise benefit into the baseline.
  run([&]() -> sim::Task<void> {
    const Timestamp t1 = co_await commit(1, "v1", Timestamp::min());
    co_await sim::sleep_for(loop_, milliseconds(10));
    std::vector<Key> k1(1, Key{1});
    co_await cache_read(k1, SnapshotInterval::full());  // populate
    auto resp =
        co_await cache_read(k1, SnapshotInterval::full(), /*use_promises=*/false);
    EXPECT_TRUE(resp.from_cache[0]);
    EXPECT_EQ(resp.interval.low, t1);
    EXPECT_EQ(resp.interval.high, t1);
  });
}

TEST_F(FaasTccCacheTest, BatchKeepsEntriesMutuallyConsistent) {
  run([&]() -> sim::Task<void> {
    co_await commit(1, "a", Timestamp::min());
    co_await commit(2, "b", Timestamp::min());
    co_await sim::sleep_for(loop_, milliseconds(10));
    std::vector<Key> keys;
    keys.push_back(1);
    keys.push_back(2);
    auto resp = co_await cache_read(keys, SnapshotInterval::full());
    EXPECT_FALSE(resp.abort);
    EXPECT_FALSE(resp.interval.empty());
    // Both versions admissible at every snapshot in the final interval.
    for (const auto& e : resp.entries) {
      EXPECT_LE(e.ts, resp.interval.high);
      EXPECT_GE(e.promise, resp.interval.low);
    }
  });
}

// ---------------------------------------------------------------------------
// HydroCache against a live eventual store.
// ---------------------------------------------------------------------------

class HydroCacheTest : public ::testing::Test {
 protected:
  HydroCacheTest()
      : net_(loop_, net::NetworkParams{}, Rng(7)), client_rpc_(net_, 50) {
    storage::EvTopology topo;
    topo.replicas = {{100, 101}};
    std::vector<net::Address> all{100, 101};
    storage::EventualStoreParams params;
    params.gossip_period = milliseconds(5);
    params.push_period = milliseconds(20);
    replicas_.push_back(std::make_unique<storage::EvReplica>(
        net_, 100, 0, std::vector<net::Address>{101}, all, params));
    replicas_.push_back(std::make_unique<storage::EvReplica>(
        net_, 101, 1, std::vector<net::Address>{100}, all, params));
    HydroCacheParams cp;
    cp.retry_backoff = microseconds(500);
    cache_ = std::make_unique<HydroCache>(net_, 200, topo, Rng(3), cp,
                                          &metrics_);
    storage_client_ =
        std::make_unique<storage::EvStorageClient>(client_rpc_, topo, Rng(5));
    for (auto& r : replicas_) r->start();
  }

  template <typename F>
  void run(F&& body) {
    bool done = false;
    sim::spawn([](F f, bool& flag) -> sim::Task<void> {
      co_await f();
      flag = true;
    }(std::forward<F>(body), done));
    // Background gossip/push loops never drain the queue; step until the
    // body completes (or a generous simulated deadline trips).
    const SimTime deadline = loop_.now() + seconds(60);
    while (!done && loop_.now() < deadline) {
      loop_.run_until(loop_.now() + milliseconds(5));
    }
    ASSERT_TRUE(done);
  }

  sim::Task<HydroReadResp> cache_read(Key k, DepMap ctx) {
    HydroReadReq req;
    req.keys.push_back(k);
    req.context = std::move(ctx);
    co_return co_await client_rpc_.call<HydroReadResp>(200, kHydroRead, req);
  }

  sim::Task<storage::EvVersion> put(Key k, Value v,
                                    std::vector<StoredDep> deps,
                                    uint64_t counter) {
    HydroStored stored;
    stored.value = std::move(v);
    stored.deps = std::move(deps);
    BufWriter w;
    stored.encode(w);
    const Buffer payload = w.take();
    storage::EvItem item;
    item.key = k;
    item.version = storage::EvVersion{counter, 99};
    item.payload = Value(std::string_view(
        reinterpret_cast<const char*>(payload.data()), payload.size()));
    auto versions =
        *co_await storage_client_->put(std::vector<storage::EvItem>(1, item));
    co_return versions[0];
  }

  sim::EventLoop loop_;
  net::Network net_;
  net::RpcNode client_rpc_;
  Metrics metrics_;
  std::vector<std::unique_ptr<storage::EvReplica>> replicas_;
  std::unique_ptr<HydroCache> cache_;
  std::unique_ptr<storage::EvStorageClient> storage_client_;
};

TEST_F(HydroCacheTest, FetchesAndCachesValueWithDeps) {
  run([&]() -> sim::Task<void> {
    std::vector<StoredDep> deps;
    deps.push_back(StoredDep{7, 3, 100, 0});
    co_await put(1, "v", deps, 5);
    co_await sim::sleep_for(loop_, milliseconds(20));
    auto resp = co_await cache_read(1, DepMap{});
    EXPECT_FALSE(resp.abort);
    EXPECT_EQ(resp.entries[0].value, "v");
    EXPECT_EQ(resp.entries[0].deps.size(), 1u);
    EXPECT_TRUE(cache_->has(1));
    EXPECT_EQ(cache_->stub_count(), 1u);  // dep stub for key 7
  });
}

TEST_F(HydroCacheTest, TooOldCachedEntryTriggersStorageRounds) {
  run([&]() -> sim::Task<void> {
    co_await put(1, "old", {}, 5);
    co_await sim::sleep_for(loop_, milliseconds(20));
    co_await cache_read(1, DepMap{});  // caches counter 5
    co_await put(1, "new", {}, 9);
    DepMap ctx;
    ctx.require(1, 9, 0, 0);
    auto resp = co_await cache_read(1, ctx);
    EXPECT_FALSE(resp.abort);
    EXPECT_EQ(resp.entries[0].value, "new");
    EXPECT_GE(resp.entries[0].counter, 9u);
  });
}

TEST_F(HydroCacheTest, ConflictingDependencyAborts) {
  run([&]() -> sim::Task<void> {
    // Value of key 1 depends on key 2 @ counter 9, but the transaction
    // already read key 2 @ counter 3 -> irreconcilable.
    std::vector<StoredDep> deps;
    deps.push_back(StoredDep{2, 9, 100, 0});
    co_await put(1, "v", deps, 5);
    co_await sim::sleep_for(loop_, milliseconds(20));
    DepMap ctx;
    ctx.mark_read(2, 3, 50);
    auto resp = co_await cache_read(1, ctx);
    EXPECT_TRUE(resp.abort);
    EXPECT_GT(cache_->counters().conflict_aborts.value(), 0u);
  });
}

TEST_F(HydroCacheTest, ReadOutsideDeclaredSetStillAborts) {
  run([&]() -> sim::Task<void> {
    // Regression for the restrict_to pruning bug: the transaction read
    // key 2 (counter 3), but key 2 is not in the statically declared set,
    // so the old restrict_to dropped the read marker.  The subsequent read
    // of key 1 — whose stored value depends on key 2 @ counter 9 — then
    // sailed through instead of aborting on the irreconcilable conflict.
    std::vector<StoredDep> deps;
    deps.push_back(StoredDep{2, 9, 100, 0});
    co_await put(1, "v", deps, 5);
    co_await sim::sleep_for(loop_, milliseconds(20));
    DepMap ctx;
    ctx.mark_read(2, 3, 50);
    ctx.restrict_to(std::unordered_set<Key>{1});  // declared set: {1} only
    EXPECT_NE(ctx.find(2), nullptr);
    auto resp = co_await cache_read(1, std::move(ctx));
    EXPECT_TRUE(resp.abort)
        << "conflict on a read outside the declared set must still abort";
    EXPECT_GT(cache_->counters().conflict_aborts.value(), 0u);
  });
}

TEST_F(HydroCacheTest, RequirementWaitsForReplication) {
  run([&]() -> sim::Task<void> {
    co_await put(1, "v9", {}, 9);
    // Immediately require counter 9: the sticky read replica may not have
    // it yet; the cache must retry until anti-entropy delivers it.
    DepMap ctx;
    ctx.require(1, 9, 0, 0);
    auto resp = co_await cache_read(1, ctx);
    EXPECT_FALSE(resp.abort);
    EXPECT_GE(resp.entries[0].counter, 9u);
  });
}

TEST_F(HydroCacheTest, PushRefreshesSubscribedEntry) {
  run([&]() -> sim::Task<void> {
    co_await put(1, "v1", {}, 2);
    co_await sim::sleep_for(loop_, milliseconds(20));
    co_await cache_read(1, DepMap{});  // insert + subscribe
    co_await sim::sleep_for(loop_, milliseconds(30));
    co_await put(1, "v2", {}, 7);
    co_await sim::sleep_for(loop_, milliseconds(120));
    EXPECT_GT(cache_->counters().pushes_applied.value(), 0u);
    // A read requiring the new version is now served from the cache.
    const auto rounds = cache_->counters().storage_fetch_rounds.value();
    DepMap ctx;
    ctx.require(1, 7, 0, 0);
    auto resp = co_await cache_read(1, ctx);
    EXPECT_FALSE(resp.abort);
    EXPECT_EQ(resp.entries[0].value, "v2");
    EXPECT_EQ(cache_->counters().storage_fetch_rounds.value(), rounds);
  });
}

TEST_F(HydroCacheTest, FootprintCountsDepsAndStubs) {
  run([&]() -> sim::Task<void> {
    std::vector<StoredDep> deps;
    deps.push_back(StoredDep{7, 3, 100, 0});
    deps.push_back(StoredDep{8, 4, 100, 1});
    co_await put(1, "valu", deps, 5);
    co_await sim::sleep_for(loop_, milliseconds(20));
    const size_t before = cache_->bytes();
    co_await cache_read(1, DepMap{});
    // Entry: 4 value bytes + 24 + 2 deps x 24; stubs: 2 x 24.
    EXPECT_EQ(cache_->bytes() - before, 4u + 24u + 48u + 48u);
  });
}

// ---------------------------------------------------------------------------
// Plain cache.
// ---------------------------------------------------------------------------

TEST(PlainCache, CachesAfterFirstFetch) {
  sim::EventLoop loop;
  net::Network net(loop, net::NetworkParams{}, Rng(7));
  net::RpcNode client_rpc(net, 50);
  storage::EvTopology topo;
  topo.replicas = {{100}};
  storage::EventualStoreParams params;
  storage::EvReplica replica(net, 100, 0, {}, {100}, params);
  Metrics metrics;
  PlainCache cache(net, 200, topo, Rng(3), PlainCacheParams{}, &metrics);
  storage::EvItem item;
  item.key = 1;
  item.version = storage::EvVersion{1, 0};
  item.payload = "pv";
  replica.preload(item);
  replica.start();

  bool done = false;
  sim::spawn([](net::RpcNode& rpc, PlainCache& c, bool& flag) -> sim::Task<void> {
    PlainReadReq req;
    req.keys.push_back(1);
    auto r1 = co_await rpc.call<PlainReadResp>(200, kPlainRead, req);
    EXPECT_EQ(r1.entries[0].value, "pv");
    EXPECT_EQ(c.entry_count(), 1u);
    auto r2 = co_await rpc.call<PlainReadResp>(200, kPlainRead, req);
    EXPECT_EQ(r2.entries[0].value, "pv");
    flag = true;
  }(client_rpc, cache, done));
  while (!done && loop.now() < seconds(30)) {
    loop.run_until(loop.now() + milliseconds(5));
  }
  EXPECT_TRUE(done);
  EXPECT_EQ(metrics.storage_episodes.value(), 1u);  // only the first read
}

}  // namespace
}  // namespace faastcc::cache
