// Multi-process sweep runner: shard a declarative sweep plan across
// cores, merge the results deterministically.
//
// The simulator is single-threaded and deterministic per seed, so
// parallelism belongs *across* runs: each item of an expanded plan is an
// independent RunSpec whose outcome depends only on the spec.  The
// executor forks one worker per run (at most `jobs` in flight), streams
// each worker's canonical per-run JSON record back over a pipe, and merges
// the records in plan order — so the merged artifact is byte-identical
// regardless of completion order, of `--jobs`, and of whether runs were
// forked at all (jobs<=1 runs in-process through the exact same
// serialization path).
//
// Wall-clock timing is intentionally NOT part of the merged artifact
// (it would break the byte-identical guarantee); it is returned separately
// and reported on stderr.
//
// Plan format (JSON, see docs/sweeps.md):
//   {
//     "schema": "faastcc.sweep_plan.v1",
//     "base":  { ...RunSpec patch... },
//     "axes": [
//       {"name": "cluster", "values": [
//           {"label": "p64", "set": {"cluster": {"partitions": 64}}},
//           ...]},
//       {"name": "config", "configs": ["clean", "lossy"]},
//       {"name": "seed", "seeds": {"base": 1, "count": 8}}
//     ]
//   }
// Expansion is the cartesian product of the axes (first axis outermost);
// each item's id joins the axis labels with '/'.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "harness/run_spec.h"

namespace faastcc::harness {

struct SweepItem {
  RunSpec spec;
  std::string id;  // stable label, e.g. "p64/z0.60/s1"
};

struct SweepPlan {
  std::vector<SweepItem> items;

  // Expands a plan document (throws SpecError on malformed plans).
  static SweepPlan from_json(const json::Value& doc);
  static SweepPlan from_text(std::string_view text);
};

struct SweepOptions {
  int jobs = 1;          // <=1: in-process serial; >1: fork-per-run pool
  bool verbose = false;  // per-run progress lines on stderr
  // Serial mode only: stop after the first run with oracle violations
  // (the remaining records stay empty).  Parallel mode always runs the
  // whole plan; callers scan records in plan order, so the *first*
  // violating run is identical either way.
  bool stop_on_violation = false;
};

// One run's outcome: the canonical record plus fields parsed back out of
// it for callers that branch on verdicts.
struct RunRecord {
  std::string id;
  std::string json;  // run_output_to_json bytes (exactly what merges)
  bool ran = false;  // false only after a serial stop_on_violation stop
  uint64_t committed = 0;
  uint64_t sim_events = 0;
  uint64_t messages = 0;
  bool checked = false;
  size_t violations = 0;
  std::string violation_kind;
  std::string oracle_report;
};

struct SweepResult {
  std::vector<RunRecord> records;  // plan order, one per item
  uint64_t total_committed = 0;
  uint64_t total_sim_events = 0;
  uint64_t total_messages = 0;
  size_t runs = 0;                  // records actually executed
  size_t runs_with_violations = 0;
  double wall_seconds = 0;  // NOT in the merged artifact

  // Plan-order index of the first violating run, or SIZE_MAX.
  size_t first_violation = SIZE_MAX;
};

// Executes the plan.  Throws SpecError on unsatisfiable specs and
// std::runtime_error if a worker process dies without delivering a record
// (a crash is a harness bug, not a data point — no artifact is produced).
SweepResult run_sweep(const SweepPlan& plan, const SweepOptions& opts);

// The merged artifact (schema "faastcc.sweep.v1"): per-run records in
// plan order plus per-cell aggregates grouped by
// (system, config, partitions, compute_nodes, zipf) and global totals.
// Byte-identical for a given plan regardless of jobs/completion order.
std::string merge_to_json(const SweepPlan& plan, const SweepResult& result);

}  // namespace faastcc::harness
