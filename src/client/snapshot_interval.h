// Snapshot intervals (§4.5) — the paper's key coordination primitive.
//
// An interval [low, high] describes the set of snapshot timestamps a
// transaction may still commit to reading at.  It is narrowed by every
// read (Eq. 2), intersected when a function has several parents (Eq. 3),
// and admits a cached version exactly when Eq. 1 holds.  Its constant
// 16-byte encoding is the entirety of FaaSTCC's read-coordination
// metadata.
#pragma once

#include <span>
#include <string>

#include "common/hlc.h"
#include "common/serialize.h"

namespace faastcc::client {

struct SnapshotInterval {
  Timestamp low = Timestamp::min();
  Timestamp high = Timestamp::max();

  static SnapshotInterval full() { return {}; }
  static SnapshotInterval fixed(Timestamp t) { return {t, t}; }

  bool empty() const { return low > high; }

  // Eq. 1: a version <ts, promise> is consistent with this interval.
  bool admits(Timestamp ts, Timestamp promise) const {
    return promise >= low && ts <= high;
  }

  // Eq. 2: narrows after accepting a version <ts, promise>.
  void narrow(Timestamp ts, Timestamp promise) {
    if (ts > low) low = ts;
    if (promise < high) high = promise;
  }

  // Eq. 3: intersection of parents' intervals.  An empty result means the
  // parents read from incompatible snapshots and the transaction aborts.
  static SnapshotInterval merge(std::span<const SnapshotInterval> parents);

  friend bool operator==(const SnapshotInterval&,
                         const SnapshotInterval&) = default;

  template <typename W>
  void encode(W& w) const {
    w.put_u64(low.raw());
    w.put_u64(high.raw());
  }
  static SnapshotInterval decode(BufReader& r) {
    SnapshotInterval si;
    si.low = Timestamp(r.get_u64());
    si.high = Timestamp(r.get_u64());
    return si;
  }

  std::string to_string() const;
};

}  // namespace faastcc::client
