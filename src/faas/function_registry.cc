#include "faas/function_registry.h"

#include <cassert>

namespace faastcc::faas {

FunctionRegistry::FunctionRegistry() {
  register_function("__sync", [](ExecEnv&) -> sim::Task<Buffer> {
    // Aggregates the outputs of multiple sinks; its only job is giving
    // the composition a single commit point (paper §3.1).
    co_return Buffer{};
  });
}

void FunctionRegistry::register_function(std::string name, FunctionBody body) {
  auto [it, inserted] = bodies_.emplace(std::move(name), std::move(body));
  assert(inserted && "function registered twice");
  (void)it;
  (void)inserted;
}

const FunctionBody* FunctionRegistry::find(const std::string& name) const {
  auto it = bodies_.find(name);
  return it == bodies_.end() ? nullptr : &it->second;
}

std::vector<std::string> FunctionRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(bodies_.size());
  for (const auto& [name, body] : bodies_) out.push_back(name);
  return out;
}

}  // namespace faastcc::faas
