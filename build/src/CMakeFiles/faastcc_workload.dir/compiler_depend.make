# Empty compiler generated dependencies file for faastcc_workload.
# This may be replaced when dependencies are built.
