// HydroCache client library (baseline).
//
// The DAG context carries the dependency map — every version read plus the
// (level-bounded) dependencies of those versions — and the write set.  For
// static transactions the map is pruned to the declared read/write set
// before shipping downstream, which is the metadata optimization that
// makes HydroCache-Static competitive (§6.3); dynamic transactions must
// ship everything, since "it is impossible to guess which dependencies are
// going to be needed downstream".
#pragma once

#include <map>
#include <unordered_map>
#include <unordered_set>

#include "cache/cache_messages.h"
#include "client/txn.h"
#include "common/metrics.h"
#include "net/rpc.h"
#include "storage/storage_client.h"

namespace faastcc::client {

struct HydroConfig {
  // Apply the declared-read-set metadata pruning for static transactions.
  bool static_metadata_optimization = true;
  // Dependencies older than max(global stable cut, now - window) are
  // globally visible and pruned from shipped metadata.
  Duration dep_gc_window = seconds(15);
  // Upper bound on the dependency list stored with a value.
  size_t stored_dep_cap = 512;
};

// Versioned like FaasTccContext: a leading version byte; decode throws
// CodecError on mismatch.
struct HydroContext {
  static constexpr uint8_t kWireVersion = 1;

  cache::DepMap deps;
  uint64_t lamport = 0;  // max version counter observed
  SimTime global_cut = 0;
  std::map<Key, Value> write_set;

  template <typename W>
  void encode(W& w) const {
    w.put_u8(kWireVersion);
    deps.encode(w);
    w.put_u64(lamport);
    w.put_i64(global_cut);
    w.put_u32(static_cast<uint32_t>(write_set.size()));
    for (const auto& [k, v] : write_set) {
      w.put_u64(k);
      w.put_bytes(v);
    }
  }
  static HydroContext decode(BufReader& r);
};

class HydroAdapter final : public SystemAdapter {
 public:
  HydroAdapter(net::RpcNode& rpc, net::Address cache_address,
               storage::EvTopology topology, Rng rng, HydroConfig config,
               Metrics* metrics, obs::Tracer* tracer = nullptr);

  std::unique_ptr<FunctionTxn> open(const TxnInfo& info,
                                    std::vector<Payload> parent_contexts,
                                    Payload session) override;

 private:
  friend class HydroTxn;
  net::RpcNode& rpc_;
  net::Address cache_address_;
  storage::EvStorageClient storage_;
  HydroConfig config_;
  Metrics* metrics_;
  obs::Tracer* tracer_ = nullptr;
};

class HydroTxn final : public FunctionTxn {
 public:
  HydroTxn(HydroAdapter& adapter, TxnInfo info, HydroContext context)
      : adapter_(adapter), info_(std::move(info)), ctx_(std::move(context)) {}

  sim::Task<std::optional<std::vector<Value>>> read(
      std::vector<Key> keys) override;
  void write(Key k, Value v) override;
  Buffer export_context() const override;
  size_t metadata_bytes() const override;
  sim::Task<std::optional<Buffer>> commit() override;

 private:
  // The dependency map as it would be shipped downstream: GC'd against the
  // stable cut and, for static transactions, restricted to the declared
  // read/write set.
  cache::DepMap shipped_deps() const;
  cache::DepMap session_past(SimTime horizon) const;

  HydroAdapter& adapter_;
  TxnInfo info_;
  HydroContext ctx_;
  std::unordered_map<Key, Value> read_set_;
};

// Session blob: the client's full accumulated causal past (COPS-style —
// "clients keep track of all versions in their causal past"), bounded only
// by the stable-cut GC.  Read markers are downgraded to validation-only
// requirements (level 2) so one client's history never re-enters stored
// dependency lists wholesale; the client's own writes stay at level 1.
// This asymmetry is what makes function-to-function metadata large
// (Fig. 5) while stored dependency lists stay bounded (Fig. 7).
struct HydroSession {
  uint64_t lamport = 0;
  SimTime global_cut = 0;
  cache::DepMap deps;

  template <typename W>
  void encode(W& w) const {
    w.put_u64(lamport);
    w.put_i64(global_cut);
    deps.encode(w);
  }
  static HydroSession decode(BufReader& r);
};

}  // namespace faastcc::client
