file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_cache_bytes.dir/bench_fig8_cache_bytes.cc.o"
  "CMakeFiles/bench_fig8_cache_bytes.dir/bench_fig8_cache_bytes.cc.o.d"
  "bench_fig8_cache_bytes"
  "bench_fig8_cache_bytes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_cache_bytes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
