file(REMOVE_RECURSE
  "CMakeFiles/faastcc_common.dir/common/hlc.cc.o"
  "CMakeFiles/faastcc_common.dir/common/hlc.cc.o.d"
  "CMakeFiles/faastcc_common.dir/common/log.cc.o"
  "CMakeFiles/faastcc_common.dir/common/log.cc.o.d"
  "CMakeFiles/faastcc_common.dir/common/rng.cc.o"
  "CMakeFiles/faastcc_common.dir/common/rng.cc.o.d"
  "CMakeFiles/faastcc_common.dir/common/serialize.cc.o"
  "CMakeFiles/faastcc_common.dir/common/serialize.cc.o.d"
  "CMakeFiles/faastcc_common.dir/common/stats.cc.o"
  "CMakeFiles/faastcc_common.dir/common/stats.cc.o.d"
  "CMakeFiles/faastcc_common.dir/common/zipf.cc.o"
  "CMakeFiles/faastcc_common.dir/common/zipf.cc.o.d"
  "libfaastcc_common.a"
  "libfaastcc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faastcc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
