// Reconfiguration engine: one promise-sound slot-handoff pipeline for
// every routing-table transition.
//
// The engine is parameterized by a target RoutingTable and drives the
// cluster from the currently published table to it:
//
//   1. diff the slot assignments (old vs. next) into per-target source
//      sets and per-(source, target) slot counts;
//   2. arm every target before the broadcast — new partition ids join
//      (begin_join: empty store, all-keys handoff floor), surviving ids
//      that inherit drained slots acquire (begin_acquire: floor scoped to
//      the migrated keys);
//   3. publish the table through the TopologyService;
//   4. shepherd each (source, target) handoff: seal + extract the chains
//      at the source (kTccMigrateOut, idempotent via the source's replay
//      cache), deliver the parcel to the target (kTccMigrateIn,
//      idempotent via per-source dedup);
//   5. retire sources the next table no longer lists (and their
//      followers) once their slots have drained.
//
// Three callers share the pipeline: scale_out (the historical elastic
// path — byte-identical message flow to the pre-engine driver),
// scale_in (drain the trailing partitions to the survivors), and
// replace_leader (a pure address substitution: the slot diff is empty,
// so the pipeline degenerates to the publish step — the same shape the
// lease-driven promotion path produces through TopologyService).
//
// Promise soundness of a drain is the scale-out argument re-run with the
// survivor standing in for the joiner: the source seals its safe time
// LAST (after extraction), the survivor seeds its clock at
// max(source sealed safes, migrated version timestamps) and never
// commits a migrated key at or below that floor.  Unlike a joiner, a
// survivor was already a member of the contracting cohort, so every
// stable time any cache ever saw is bounded by the survivor's own safe
// time — no new stabilizer barrier is needed (contract_membership drops
// the retired floors, which can only raise the fold).
#pragma once

#include <vector>

#include "common/metrics.h"
#include "common/types.h"
#include "net/rpc.h"
#include "routing/routing_table.h"
#include "routing/topology_service.h"
#include "sim/future.h"
#include "storage/tcc_partition.h"

namespace faastcc::storage {

class ReconfigEngine {
 public:
  // Owns the control endpoint the migration RPCs originate from (no
  // data-plane traffic ever flows through it).
  ReconfigEngine(net::Network& network, net::Address ctl_address,
                 routing::TopologyService& topo, Metrics* metrics)
      : ctl_(network, ctl_address), topo_(topo), metrics_(metrics) {}

  // Instances the engine may arm or retire, looked up by partition id.
  // Registration order is irrelevant; ids are unique among leaders.
  // Followers carry their leader's partition id and retire with it.
  void register_instance(TccPartition* p) { instances_.push_back(p); }
  void register_follower(TccPartition* f) { followers_.push_back(f); }

  // The three callers.  Each computes the target table from the currently
  // published one and runs the shared pipeline.
  sim::Task<void> scale_out(std::vector<routing::PartitionAddress> added);
  sim::Task<void> scale_in(size_t count);
  sim::Task<void> replace_leader(PartitionId p,
                                 routing::PartitionAddress candidate);

  // The pipeline itself.  No-op unless `next` is strictly newer than the
  // published table.  Returns when every moved slot has drained (or its
  // handoff exhausted the retry budget).
  sim::Task<void> transition_to(routing::TablePtr next);

  size_t active_partitions() const {
    return topo_.table()->num_partitions();
  }
  uint32_t epoch() const { return topo_.table()->epoch; }
  bool transition_in_flight() const { return in_flight_; }

 private:
  TccPartition* instance(PartitionId p) const;

  net::RpcNode ctl_;
  routing::TopologyService& topo_;
  Metrics* metrics_;
  std::vector<TccPartition*> instances_;
  std::vector<TccPartition*> followers_;
  bool in_flight_ = false;
};

}  // namespace faastcc::storage
