#include "common/serialize.h"

// All codec functionality is header-only; this translation unit exists so
// the library has a home for future out-of-line helpers and so the build
// graph stays uniform.
namespace faastcc {}
