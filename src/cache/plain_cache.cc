#include "cache/plain_cache.h"

#include <cassert>

#include "sim/future.h"

namespace faastcc::cache {

PlainCache::PlainCache(net::Network& network, net::Address self,
                       storage::EvTopology topology, Rng rng,
                       PlainCacheParams params, Metrics* metrics,
                       obs::Tracer* tracer)
    : rpc_(network, self),
      storage_(rpc_, std::move(topology), rng, tracer),
      params_(params),
      metrics_(metrics),
      tracer_(tracer) {
  rpc_.handle(kPlainRead, [this](Buffer b, net::Address from) {
    return on_read(std::move(b), from);
  });
  rpc_.handle_oneway(storage::kEvPush, [this](Buffer b, net::Address from) {
    on_push(std::move(b), from);
  });
}

void PlainCache::on_push(Buffer msg, net::Address) {
  // Cloudburst caches receive periodic update streams from the KVS; the
  // newest pushed payload simply replaces the cached value (no versions,
  // no guarantees — eventual consistency).
  auto push = decode_message<storage::EvGossipMsg>(msg);
  rpc_.recycle(std::move(msg));
  for (storage::EvItem& item : push.items) {
    auto it = entries_.find(item.key);
    if (it == entries_.end()) continue;
    bytes_ += item.payload.size();
    bytes_ -= it->second.size();
    it->second = std::move(item.payload);
  }
}

void PlainCache::evict_to_capacity() {
  while (entries_.size() > params_.capacity) {
    auto victim = lru_.least_recent();
    assert(victim.has_value());
    auto it = entries_.find(*victim);
    bytes_ -= it->second.size() + 8;
    entries_.erase(it);
    lru_.erase(*victim);
  }
}

sim::Task<Buffer> PlainCache::on_read(Buffer req, net::Address) {
  // Valid only before the first co_await below.
  const obs::TraceContext inbound = rpc_.inbound_trace();
  obs::SpanHandle span;
  obs::TraceContext span_ctx;
  if (tracer_ != nullptr) {
    span = tracer_->begin(inbound, "cache.read", "cache", rpc_.address(),
                          rpc_.now());
    span_ctx = tracer_->context_of(span);
  }
  auto q = decode_message<PlainReadReq>(req);
  rpc_.recycle(std::move(req));
  if (metrics_ != nullptr) metrics_->cache_lookups.inc();
  co_await sim::sleep_for(rpc_.loop(), params_.lookup_cpu);

  PlainReadResp resp;
  resp.entries.resize(q.keys.size());
  std::vector<size_t> to_fetch;
  for (size_t i = 0; i < q.keys.size(); ++i) {
    const Key k = q.keys[i];
    auto it = entries_.find(k);
    if (it != entries_.end() && params_.capacity != 0) {
      resp.entries[i] = storage::KeyValue{k, it->second};
      lru_.touch(k);
    } else {
      to_fetch.push_back(i);
    }
  }
  const auto end_span = [&](bool hit, bool abort) {
    if (tracer_ == nullptr) return;
    tracer_->annotate(span, "keys", static_cast<uint64_t>(q.keys.size()));
    tracer_->annotate(span, "hit", hit ? 1 : 0);
    if (abort) tracer_->annotate(span, "abort", 1);
    tracer_->end(span, rpc_.now());
  };

  if (to_fetch.empty()) {
    if (metrics_ != nullptr) metrics_->cache_hits.inc();
    end_span(true, false);
    co_return rpc_.encode(resp);
  }

  std::vector<Key> keys;
  keys.reserve(to_fetch.size());
  for (size_t idx : to_fetch) keys.push_back(q.keys[idx]);
  auto result = co_await storage_.get(keys, span_ctx);
  if (metrics_ != nullptr) {
    metrics_->storage_episodes.inc();
    metrics_->storage_rounds.add(1.0);
    metrics_->storage_read_bytes.add(
        static_cast<double>(result.response_bytes));
  }
  if (result.failed) {
    // Unreachable replica: don't cache the (possibly empty) results, let
    // the client abort and retry the transaction.
    resp.abort = true;
    end_span(false, true);
    co_return rpc_.encode(resp);
  }
  for (size_t j = 0; j < to_fetch.size(); ++j) {
    const size_t idx = to_fetch[j];
    const Key k = q.keys[idx];
    Value v;
    if (result.items[j].has_value()) v = result.items[j]->payload;
    resp.entries[idx] = storage::KeyValue{k, v};
    if (params_.capacity != 0) {
      auto [it, inserted] = entries_.emplace(k, v);
      if (inserted) {
        bytes_ += v.size() + 8;
        sim::spawn(storage_.subscribe({k}));
      } else {
        bytes_ += v.size();
        bytes_ -= it->second.size();
        it->second = v;
      }
      lru_.touch(k);
      evict_to_capacity();
    }
  }
  end_span(false, false);
  co_return rpc_.encode(resp);
}

}  // namespace faastcc::cache
