
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/harness/cluster.cc" "src/CMakeFiles/faastcc_harness.dir/harness/cluster.cc.o" "gcc" "src/CMakeFiles/faastcc_harness.dir/harness/cluster.cc.o.d"
  "/root/repo/src/harness/experiment.cc" "src/CMakeFiles/faastcc_harness.dir/harness/experiment.cc.o" "gcc" "src/CMakeFiles/faastcc_harness.dir/harness/experiment.cc.o.d"
  "/root/repo/src/harness/summary.cc" "src/CMakeFiles/faastcc_harness.dir/harness/summary.cc.o" "gcc" "src/CMakeFiles/faastcc_harness.dir/harness/summary.cc.o.d"
  "/root/repo/src/harness/table.cc" "src/CMakeFiles/faastcc_harness.dir/harness/table.cc.o" "gcc" "src/CMakeFiles/faastcc_harness.dir/harness/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/faastcc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/faastcc_faas.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/faastcc_client.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/faastcc_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/faastcc_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/faastcc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/faastcc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/faastcc_client_base.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/faastcc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
