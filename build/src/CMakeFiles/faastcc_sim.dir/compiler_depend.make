# Empty compiler generated dependencies file for faastcc_sim.
# This may be replaced when dependencies are built.
