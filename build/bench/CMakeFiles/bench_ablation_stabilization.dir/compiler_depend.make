# Empty compiler generated dependencies file for bench_ablation_stabilization.
# This may be replaced when dependencies are built.
