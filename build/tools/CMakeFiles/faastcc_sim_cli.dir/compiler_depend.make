# Empty compiler generated dependencies file for faastcc_sim_cli.
# This may be replaced when dependencies are built.
