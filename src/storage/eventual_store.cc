#include "storage/eventual_store.h"

#include <algorithm>

#include "common/log.h"
#include "sim/future.h"

namespace faastcc::storage {

EvReplica::EvReplica(net::Network& network, net::Address self,
                     uint64_t replica_id, std::vector<net::Address> peers,
                     std::vector<net::Address> all_replicas,
                     EventualStoreParams params)
    : rpc_(network, self),
      replica_id_(replica_id),
      peers_(std::move(peers)),
      all_replicas_(std::move(all_replicas)),
      params_(params) {
  rpc_.handle(kEvGet, [this](Buffer b, net::Address from) {
    return on_get(std::move(b), from);
  });
  rpc_.handle(kEvPut, [this](Buffer b, net::Address from) {
    return on_put(std::move(b), from);
  });
  rpc_.handle_oneway(kEvGossipDigest, [this](Buffer b, net::Address from) {
    on_gossip(std::move(b), from);
  });
  rpc_.handle_oneway(kEvStableCut, [this](Buffer b, net::Address from) {
    on_stable_cut(std::move(b), from);
  });
  rpc_.handle(kEvSubscribe, [this](Buffer b, net::Address from) {
    return on_subscribe(std::move(b), from);
  });
  rpc_.handle(kEvUnsubscribe, [this](Buffer b, net::Address from) {
    return on_unsubscribe(std::move(b), from);
  });
  for (net::Address p : peers_) peer_covered_[p] = 0;
  advertised_cuts_[replica_id_] = 0;
}

void EvReplica::start() {
  sim::spawn(gossip_loop());
  sim::spawn(cut_loop());
  sim::spawn(push_loop());
}

sim::Task<Buffer> EvReplica::on_subscribe(Buffer req, net::Address from) {
  auto q = decode_message<SubscribeReq>(req);
  rpc_.recycle(std::move(req));
  co_await sim::sleep_for(rpc_.loop(), params_.request_cpu);
  for (Key k : q.keys) {
    add_subscriber(k, from);
    dirty_.insert(k);  // re-announce the current version on the next push
  }
  co_return Buffer{};
}

sim::Task<Buffer> EvReplica::on_unsubscribe(Buffer req, net::Address from) {
  auto q = decode_message<SubscribeReq>(req);
  rpc_.recycle(std::move(req));
  co_await sim::sleep_for(rpc_.loop(), params_.request_cpu);
  for (Key k : q.keys) {
    auto it = subscribers_.find(k);
    if (it == subscribers_.end()) continue;
    it->second.erase(from);
    if (it->second.empty()) subscribers_.erase(it);
  }
  co_return Buffer{};
}

sim::Task<void> EvReplica::push_loop() {
  for (;;) {
    co_await sim::sleep_for(rpc_.loop(), params_.push_period);
    if (dirty_.empty()) continue;
    std::unordered_map<net::Address, EvGossipMsg> batches;
    for (Key k : dirty_) {
      auto sub_it = subscribers_.find(k);
      if (sub_it == subscribers_.end()) continue;
      auto data_it = data_.find(k);
      if (data_it == data_.end()) continue;
      for (net::Address sub : sub_it->second) {
        batches[sub].items.push_back(data_it->second);
      }
    }
    dirty_.clear();
    for (auto& [addr, batch] : batches) {
      batch.sent_at = rpc_.now();
      rpc_.send(addr, kEvPush, batch);
    }
  }
}

bool EvReplica::merge(EvItem item) {
  auto it = data_.find(item.key);
  if (it == data_.end()) {
    payload_bytes_ += item.payload.size();
    if (subscribers_.count(item.key) != 0) dirty_.insert(item.key);
    data_.emplace(item.key, std::move(item));
    return true;
  }
  if (item.version <= it->second.version) return false;
  payload_bytes_ -= it->second.payload.size();
  payload_bytes_ += item.payload.size();
  if (subscribers_.count(item.key) != 0) dirty_.insert(item.key);
  it->second = std::move(item);
  return true;
}

sim::Task<Buffer> EvReplica::on_get(Buffer req, net::Address) {
  auto q = decode_message<EvGetReq>(req);
  rpc_.recycle(std::move(req));
  counters_.gets.inc();
  counters_.get_keys.inc(q.keys.size());
  co_await sim::sleep_for(
      rpc_.loop(),
      params_.request_cpu +
          params_.per_key_cpu * static_cast<Duration>(q.keys.size()));
  EvGetResp resp;
  resp.global_cut = global_cut_;
  for (Key k : q.keys) {
    auto it = data_.find(k);
    if (it != data_.end()) resp.found.push_back(it->second);
  }
  co_return rpc_.encode(resp);
}

sim::Task<Buffer> EvReplica::on_put(Buffer req, net::Address) {
  auto q = decode_message<EvPutReq>(req);
  rpc_.recycle(std::move(req));
  counters_.puts.inc();
  co_await sim::sleep_for(
      rpc_.loop(),
      params_.request_cpu +
          params_.per_key_cpu * static_cast<Duration>(q.items.size()));
  EvPutResp resp;
  resp.global_cut = global_cut_;
  for (EvItem& item : q.items) {
    // The replica ensures the assigned counter exceeds the newest version
    // it has seen for the key; clients that track versions (HydroCache)
    // propose a counter reflecting their causal past, others propose 0.
    auto it = data_.find(item.key);
    const uint64_t base = it == data_.end() ? 0 : it->second.version.counter;
    item.version.counter = std::max(base + 1, item.version.counter);
    item.written_at = rpc_.now();
    resp.versions.push_back(item.version);
    outbox_.push_back(item);
    merge(std::move(item));
  }
  co_return rpc_.encode(resp);
}

void EvReplica::on_gossip(Buffer msg, net::Address from) {
  auto g = decode_message<EvGossipMsg>(msg);
  rpc_.recycle(std::move(msg));
  counters_.gossip_batches.inc();
  for (EvItem& item : g.items) {
    if (merge(std::move(item))) counters_.items_merged.inc();
  }
  auto it = peer_covered_.find(from);
  if (it != peer_covered_.end() && g.sent_at > it->second) {
    it->second = g.sent_at;
  }
}

void EvReplica::on_stable_cut(Buffer msg, net::Address) {
  auto m = decode_message<EvStableCutMsg>(msg);
  rpc_.recycle(std::move(msg));
  auto& slot = advertised_cuts_[m.replica];
  if (m.cut > slot) slot = m.cut;
  SimTime min_cut = rpc_.now();
  for (const auto& [replica, cut] : advertised_cuts_) {
    min_cut = std::min(min_cut, cut);
  }
  global_cut_ = std::max(global_cut_, min_cut);
}

sim::Task<void> EvReplica::gossip_loop() {
  for (;;) {
    co_await sim::sleep_for(rpc_.loop(), params_.gossip_period);
    EvGossipMsg g;
    g.sent_at = rpc_.now();
    g.items = outbox_;  // every peer receives the same batch
    outbox_.clear();
    last_gossip_sent_ = g.sent_at;
    for (net::Address p : peers_) rpc_.send(p, kEvGossipDigest, g);
  }
}

sim::Task<void> EvReplica::cut_loop() {
  for (;;) {
    co_await sim::sleep_for(rpc_.loop(), params_.cut_period);
    // Everything accepted anywhere before min(peer coverage) is merged
    // here; our own accepts are covered up to the last gossip broadcast.
    SimTime cut = last_gossip_sent_;
    for (const auto& [peer, covered] : peer_covered_) {
      cut = std::min(cut, covered);
    }
    advertised_cuts_[replica_id_] = std::max(advertised_cuts_[replica_id_], cut);
    EvStableCutMsg m{replica_id_, advertised_cuts_[replica_id_]};
    for (net::Address r : all_replicas_) {
      if (r == rpc_.address()) continue;
      rpc_.send(r, kEvStableCut, m);
    }
    // Refresh our own view of the global minimum.
    SimTime min_cut = rpc_.now();
    for (const auto& [replica, c] : advertised_cuts_) {
      min_cut = std::min(min_cut, c);
    }
    global_cut_ = std::max(global_cut_, min_cut);
  }
}

const EvItem* EvReplica::peek(Key k) const {
  auto it = data_.find(k);
  return it == data_.end() ? nullptr : &it->second;
}

}  // namespace faastcc::storage
