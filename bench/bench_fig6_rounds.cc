// Figure 6: communication rounds needed to read a consistent snapshot
// from storage (median and P99 per read episode).  The TCC storage layer
// lets FaaSTCC resolve every episode in one round; HydroCache retries
// against the eventually consistent store.
#include "bench_util.h"

using namespace faastcc;
using namespace faastcc::bench;

int main() {
  print_preamble("Figure 6", "storage rounds per consistent read");

  struct Row {
    const char* name;
    SystemKind system;
    double paper[3][2];
  };
  const Row rows[] = {
      {"HydroCache-Dynamic", SystemKind::kHydroCache,
       {{1.7, 6.0}, {2.1, 12.0}, {2.7, 23.0}}},
      {"FaaSTCC", SystemKind::kFaasTcc,
       {{1.0, 1.0}, {1.0, 1.0}, {1.0, 1.0}}},
  };
  const double zipfs[] = {1.0, 1.25, 1.5};

  Table table({"system", "zipf", "median", "p99", "paper median",
               "paper p99"});
  for (const Row& row : rows) {
    for (int z = 0; z < 3; ++z) {
      const SummaryStats s =
          run_or_load(base_config(row.system, zipfs[z], false));
      table.add_row({row.name, fmt(zipfs[z], 2), fmt(s.rounds_med, 1),
                     fmt(s.rounds_p99, 1), fmt(row.paper[z][0], 1),
                     fmt(row.paper[z][1], 1)});
    }
  }
  table.print();
  return 0;
}
