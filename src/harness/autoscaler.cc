#include "harness/autoscaler.h"

#include <algorithm>

#include "common/log.h"

namespace faastcc::harness {

double Autoscaler::window_p99() {
  const auto& raw = metrics_.dag_latency_ms.raw();
  if (raw.size() <= window_start_) {
    window_start_ = raw.size();
    return -1.0;
  }
  Samples window;
  for (size_t i = window_start_; i < raw.size(); ++i) window.add(raw[i]);
  window_start_ = raw.size();
  return window.p99();
}

sim::Task<void> Autoscaler::run() {
  if (!params_.enabled()) co_return;
  const size_t floor = params_.min_partitions > 0
                           ? params_.min_partitions
                           : engine_.active_partitions();
  for (;;) {
    co_await sim::sleep_for(loop_, params_.check_period);
    // A transition in flight is itself a latency perturbation; sampling
    // through it would double-trigger.
    if (engine_.transition_in_flight()) continue;
    const double p99 = window_p99();
    if (p99 < 0) continue;  // no committed DAGs this window: no signal
    if (params_.high_p99_ms > 0 && p99 > params_.high_p99_ms) {
      ++high_streak_;
      low_streak_ = 0;
    } else if (params_.low_p99_ms > 0 && p99 < params_.low_p99_ms) {
      ++low_streak_;
      high_streak_ = 0;
    } else {
      high_streak_ = 0;
      low_streak_ = 0;
    }
    if (loop_.now() < next_allowed_) continue;
    const size_t active = engine_.active_partitions();
    if (high_streak_ >= params_.breach_checks &&
        active < params_.max_partitions) {
      const size_t n = std::min(params_.step, params_.max_partitions - active);
      LOG_INFO("autoscaler: p99 " << p99 << " ms breached "
                                  << params_.high_p99_ms << " x"
                                  << high_streak_ << "; scaling out +" << n);
      co_await engine_.scale_out(addresses_(active, n));
      ++scale_outs_;
      metrics_.counter("autoscale.scale_outs").inc();
      high_streak_ = 0;
      low_streak_ = 0;
      next_allowed_ = loop_.now() + params_.cooldown;
    } else if (low_streak_ >= params_.breach_checks && active > floor) {
      const size_t n = std::min(params_.step, active - floor);
      LOG_INFO("autoscaler: p99 " << p99 << " ms under " << params_.low_p99_ms
                                  << " x" << low_streak_ << "; scaling in -"
                                  << n);
      co_await engine_.scale_in(n);
      ++scale_ins_;
      metrics_.counter("autoscale.scale_ins").inc();
      high_streak_ = 0;
      low_streak_ = 0;
      next_allowed_ = loop_.now() + params_.cooldown;
    }
  }
}

}  // namespace faastcc::harness
