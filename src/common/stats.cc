#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace faastcc {

double Samples::mean() const {
  if (values_.empty()) return 0.0;
  return sum() / static_cast<double>(values_.size());
}

double Samples::sum() const {
  return std::accumulate(values_.begin(), values_.end(), 0.0);
}

double Samples::min() const {
  if (values_.empty()) return 0.0;
  return *std::min_element(values_.begin(), values_.end());
}

double Samples::max() const {
  if (values_.empty()) return 0.0;
  return *std::max_element(values_.begin(), values_.end());
}

double Samples::percentile(double p) const {
  if (values_.empty()) return 0.0;
  std::vector<double> copy = values_;
  const double rank = (p / 100.0) * static_cast<double>(copy.size() - 1);
  const auto lo = static_cast<size_t>(std::floor(rank));
  const auto hi = static_cast<size_t>(std::ceil(rank));
  std::nth_element(copy.begin(), copy.begin() + static_cast<long>(lo),
                   copy.end());
  const double v_lo = copy[lo];
  if (hi == lo) return v_lo;
  std::nth_element(copy.begin(), copy.begin() + static_cast<long>(hi),
                   copy.end());
  const double v_hi = copy[hi];
  return v_lo + (v_hi - v_lo) * (rank - static_cast<double>(lo));
}

void Samples::merge(const Samples& other) {
  values_.insert(values_.end(), other.values_.begin(), other.values_.end());
}

}  // namespace faastcc
