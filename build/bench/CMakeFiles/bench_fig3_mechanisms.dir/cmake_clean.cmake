file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_mechanisms.dir/bench_fig3_mechanisms.cc.o"
  "CMakeFiles/bench_fig3_mechanisms.dir/bench_fig3_mechanisms.cc.o.d"
  "bench_fig3_mechanisms"
  "bench_fig3_mechanisms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_mechanisms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
