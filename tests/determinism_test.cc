// Regression guard for the simulation-core hot-path overhaul: buffer
// pooling, shared values and the 4-ary heap event loop are all invisible
// to the schedule.  Running the integration workload twice at the same
// seed must produce byte-identical observable state — every metric and
// the full trace export — for each of the three systems.
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "harness/cluster.h"

namespace faastcc::harness {
namespace {

ClusterParams params_for(SystemKind system) {
  ClusterParams p;
  p.system = system;
  p.seed = 11;
  p.partitions = 4;
  p.compute_nodes = 2;
  p.clients = 2;
  p.dags_per_client = 25;
  p.workload.num_keys = 500;
  p.workload.dag_size = 3;
  p.trace.enabled = true;
  p.trace.ring_capacity = 1 << 20;
  return p;
}

// Everything observable about a run, flattened for exact comparison.
struct RunSnapshot {
  uint64_t committed = 0;
  uint64_t aborted_attempts = 0;
  uint64_t sim_events = 0;
  uint64_t cache_entries = 0;
  uint64_t cache_bytes = 0;
  std::map<std::string, uint64_t> counters;
  std::map<std::string, std::vector<double>> histograms;
  std::string trace;
};

RunSnapshot snapshot_of(Cluster& cluster, const RunResult& r) {
  RunSnapshot s;
  s.committed = r.committed;
  s.aborted_attempts = r.aborted_attempts;
  s.sim_events = r.sim_events;
  s.cache_entries = r.cache_entries;
  s.cache_bytes = r.cache_bytes;
  r.metrics.each_counter(
      [&](const char* name, const Counter& c) { s.counters[name] = c.value(); });
  r.metrics.each_histogram(
      [&](const char* name, const Samples& h) { s.histograms[name] = h.raw(); });
  std::ostringstream os;
  cluster.tracer().export_chrome_trace(os);
  s.trace = os.str();
  return s;
}

RunSnapshot snapshot_run(const ClusterParams& params) {
  Cluster cluster(params);
  const RunResult r = cluster.run();
  return snapshot_of(cluster, r);
}

RunSnapshot snapshot_run(SystemKind system) {
  return snapshot_run(params_for(system));
}

TEST(Determinism, SameSeedRunsAreByteIdenticalForEverySystem) {
  for (SystemKind system : {SystemKind::kFaasTcc, SystemKind::kHydroCache,
                            SystemKind::kCloudburst}) {
    SCOPED_TRACE(system_name(system));
    const RunSnapshot a = snapshot_run(system);
    const RunSnapshot b = snapshot_run(system);
    ASSERT_GT(a.committed, 0u);
    EXPECT_EQ(a.committed, b.committed);
    EXPECT_EQ(a.aborted_attempts, b.aborted_attempts);
    EXPECT_EQ(a.sim_events, b.sim_events);
    EXPECT_EQ(a.cache_entries, b.cache_entries);
    EXPECT_EQ(a.cache_bytes, b.cache_bytes);
    EXPECT_EQ(a.counters, b.counters);
    EXPECT_EQ(a.histograms, b.histograms);
    ASSERT_FALSE(a.trace.empty());
    EXPECT_EQ(a.trace, b.trace);
  }
}

// The consistency oracle is pure out-of-band recording, like the tracer:
// attaching it must not move a single event.  A run with the oracle on is
// byte-identical to the same seed with it off — and checks clean.
TEST(Determinism, OracleOnOffRunsAreByteIdentical) {
  ClusterParams p = params_for(SystemKind::kFaasTcc);
  const RunSnapshot off = snapshot_run(p);
  p.check_consistency = true;
  Cluster cluster(p);
  const RunSnapshot on = snapshot_of(cluster, cluster.run());
  ASSERT_GT(off.committed, 0u);
  EXPECT_EQ(off.committed, on.committed);
  EXPECT_EQ(off.aborted_attempts, on.aborted_attempts);
  EXPECT_EQ(off.sim_events, on.sim_events);
  EXPECT_EQ(off.cache_entries, on.cache_entries);
  EXPECT_EQ(off.cache_bytes, on.cache_bytes);
  EXPECT_EQ(off.counters, on.counters);
  EXPECT_EQ(off.histograms, on.histograms);
  ASSERT_FALSE(off.trace.empty());
  EXPECT_EQ(off.trace, on.trace);

  check::ConsistencyOracle* oracle = cluster.oracle();
  ASSERT_NE(oracle, nullptr);
  const auto vs = oracle->check();
  EXPECT_TRUE(vs.empty()) << oracle->report(vs);
  EXPECT_GT(oracle->installs_recorded(), 0u);
  EXPECT_GT(oracle->reads_recorded(), 0u);
}

// Elastic machinery armed but with no bump scheduled (at = 0 means
// enabled() is false) is fully inert: no joiner is constructed, no rng
// stream is forked, no event fires.  The run must be byte-identical to
// one that never mentions elasticity.
TEST(Determinism, IdleElasticMachineryIsByteIdentical) {
  const RunSnapshot plain = snapshot_run(params_for(SystemKind::kFaasTcc));
  ClusterParams p = params_for(SystemKind::kFaasTcc);
  p.elastic.add_partitions = 8;
  p.elastic.at = Duration{0};
  ASSERT_FALSE(p.elastic.enabled());
  const RunSnapshot idle = snapshot_run(p);
  ASSERT_GT(plain.committed, 0u);
  EXPECT_EQ(plain.committed, idle.committed);
  EXPECT_EQ(plain.aborted_attempts, idle.aborted_attempts);
  EXPECT_EQ(plain.sim_events, idle.sim_events);
  EXPECT_EQ(plain.cache_entries, idle.cache_entries);
  EXPECT_EQ(plain.cache_bytes, idle.cache_bytes);
  EXPECT_EQ(plain.counters, idle.counters);
  EXPECT_EQ(plain.histograms, idle.histograms);
  ASSERT_FALSE(plain.trace.empty());
  EXPECT_EQ(plain.trace, idle.trace);
}

// Same inertness bar for the scale-in half of the engine and for the
// autoscaler: scheduled with remove_at = 0 (never) / ceiling 0 (disabled),
// neither may perturb a single event, counter, sample or trace byte.
TEST(Determinism, IdleScaleInAndAutoscalerAreByteIdentical) {
  const RunSnapshot plain = snapshot_run(params_for(SystemKind::kFaasTcc));

  ClusterParams p = params_for(SystemKind::kFaasTcc);
  p.elastic.remove_partitions = 2;
  p.elastic.remove_at = Duration{0};
  ASSERT_FALSE(p.elastic.enabled());
  const RunSnapshot idle_in = snapshot_run(p);

  ClusterParams q = params_for(SystemKind::kFaasTcc);
  q.autoscale.max_partitions = 0;  // disabled
  q.autoscale.high_p99_ms = 5.0;
  ASSERT_FALSE(q.autoscale.enabled());
  const RunSnapshot idle_auto = snapshot_run(q);

  ASSERT_GT(plain.committed, 0u);
  for (const RunSnapshot* s : {&idle_in, &idle_auto}) {
    EXPECT_EQ(plain.committed, s->committed);
    EXPECT_EQ(plain.aborted_attempts, s->aborted_attempts);
    EXPECT_EQ(plain.sim_events, s->sim_events);
    EXPECT_EQ(plain.cache_entries, s->cache_entries);
    EXPECT_EQ(plain.cache_bytes, s->cache_bytes);
    EXPECT_EQ(plain.counters, s->counters);
    EXPECT_EQ(plain.histograms, s->histograms);
    EXPECT_EQ(plain.trace, s->trace);
  }
}

}  // namespace
}  // namespace faastcc::harness
