// Integration tests for elastic partition scale-out: a mid-run epoch bump
// migrates the stolen slots' chains to freshly joined partitions while
// clients keep committing, and the consistency oracle — including its
// handoff-floor check — stays clean.
#include <gtest/gtest.h>

#include "harness/cluster.h"

namespace faastcc::harness {
namespace {

ClusterParams elastic_params(uint64_t seed) {
  ClusterParams p;
  p.system = SystemKind::kFaasTcc;
  p.seed = seed;
  p.partitions = 4;
  p.compute_nodes = 2;
  p.clients = 4;
  p.dags_per_client = 150;
  p.workload.num_keys = 500;
  p.workload.dag_size = 3;
  p.check_consistency = true;
  p.elastic.add_partitions = 2;
  p.elastic.at = milliseconds(300);
  return p;
}

void expect_scaled_out_clean(Cluster& cluster, const RunResult& r) {
  EXPECT_GT(r.committed, 0u);

  // The bump happened and every partition — incumbents and joiners — ended
  // on the new epoch, serving.
  EXPECT_EQ(cluster.metrics().counter("routing.epoch_bumps").value(), 1u);
  auto& parts = cluster.tcc_partitions();
  ASSERT_EQ(parts.size(), 6u);
  uint64_t migrated_in = 0;
  uint64_t migrated_out = 0;
  for (auto& p : parts) {
    EXPECT_TRUE(p->serving()) << "partition " << p->id();
    ASSERT_NE(p->routing_table(), nullptr) << "partition " << p->id();
    EXPECT_EQ(p->routing_table()->epoch, 2u) << "partition " << p->id();
    migrated_in += p->counters().keys_migrated_in.value();
    migrated_out += p->counters().keys_migrated_out.value();
  }
  EXPECT_GT(migrated_in, 0u);
  EXPECT_EQ(migrated_in, migrated_out);

  // Promise soundness, causal cuts, atomic visibility — and zero reads
  // served at a joiner from below its promised handoff floor.
  check::ConsistencyOracle* oracle = cluster.oracle();
  ASSERT_NE(oracle, nullptr);
  const auto vs = oracle->check();
  EXPECT_TRUE(vs.empty()) << oracle->report(vs);
}

TEST(Elastic, MidRunScaleOutKeepsOracleClean) {
  for (uint64_t seed : {7u, 21u, 42u}) {
    SCOPED_TRACE(seed);
    Cluster cluster(elastic_params(seed));
    const RunResult r = cluster.run();
    expect_scaled_out_clean(cluster, r);
  }
}

TEST(Elastic, ScaleOutUnderMessageLossAndDuplication) {
  ClusterParams p = elastic_params(13);
  p.faults.loss_prob = 0.01;
  p.faults.dup_prob = 0.005;
  Cluster cluster(p);
  const RunResult r = cluster.run();
  expect_scaled_out_clean(cluster, r);
}

TEST(Elastic, ScaleOutRunsAreDeterministicPerSeed) {
  auto run_digest = [](uint64_t seed) {
    Cluster cluster(elastic_params(seed));
    const RunResult r = cluster.run();
    uint64_t migrated = 0;
    for (auto& part : cluster.tcc_partitions()) {
      migrated += part->counters().keys_migrated_in.value();
    }
    return std::tuple<uint64_t, uint64_t, uint64_t>(r.committed, r.sim_events,
                                                    migrated);
  };
  EXPECT_EQ(run_digest(5), run_digest(5));
}

// A stale client that never heard about the bump is driven to the right
// owner by the wrong-epoch NACK -> refresh -> retry machinery rather than
// reading pre-handoff state: visible as retries in the metrics and a clean
// oracle above.  Here we only pin the counter wiring.
TEST(Elastic, WrongEpochRetriesAreCounted) {
  Cluster cluster(elastic_params(99));
  const RunResult r = cluster.run();
  expect_scaled_out_clean(cluster, r);
  // The counter exists (lazily created on first retry); zero is legal when
  // every component heard the broadcast before touching a moved key.
  SUCCEED();
}

// ---- scale-IN ------------------------------------------------------------

ClusterParams scale_in_params(uint64_t seed) {
  ClusterParams p;
  p.system = SystemKind::kFaasTcc;
  p.seed = seed;
  p.partitions = 6;
  p.compute_nodes = 2;
  p.clients = 4;
  p.dags_per_client = 150;
  p.workload.num_keys = 500;
  p.workload.dag_size = 3;
  p.check_consistency = true;
  p.elastic.remove_partitions = 2;
  p.elastic.remove_at = milliseconds(300);
  return p;
}

void expect_scaled_in_clean(Cluster& cluster, const RunResult& r,
                            size_t survivors) {
  EXPECT_GT(r.committed, 0u);
  EXPECT_EQ(cluster.metrics().counter("routing.epoch_bumps").value(), 1u);
  EXPECT_EQ(cluster.metrics().counter("routing.active_partitions").value(),
            survivors);
  auto& parts = cluster.tcc_partitions();
  uint64_t migrated_in = 0;
  uint64_t migrated_out = 0;
  for (auto& p : parts) {
    migrated_in += p->counters().keys_migrated_in.value();
    migrated_out += p->counters().keys_migrated_out.value();
    if (p->id() < survivors) {
      EXPECT_TRUE(p->serving()) << "survivor " << p->id();
      EXPECT_FALSE(p->retired()) << "survivor " << p->id();
    } else {
      EXPECT_TRUE(p->retired()) << "retiree " << p->id();
      // A retiree under the adopted table owns no keys at all.
      EXPECT_FALSE(p->owns(0));
    }
    ASSERT_NE(p->routing_table(), nullptr);
    EXPECT_EQ(p->routing_table()->epoch, 2u) << "partition " << p->id();
  }
  EXPECT_GT(migrated_in, 0u);
  EXPECT_EQ(migrated_in, migrated_out);

  // Promise soundness with the keyed handoff floor: survivors may commit
  // their own pre-drain keys below the floor, but never a migrated key.
  check::ConsistencyOracle* oracle = cluster.oracle();
  ASSERT_NE(oracle, nullptr);
  const auto vs = oracle->check();
  EXPECT_TRUE(vs.empty()) << oracle->report(vs);
}

TEST(ElasticIn, MidRunScaleInKeepsOracleClean) {
  for (uint64_t seed : {7u, 21u, 42u}) {
    SCOPED_TRACE(seed);
    Cluster cluster(scale_in_params(seed));
    const RunResult r = cluster.run();
    expect_scaled_in_clean(cluster, r, 4);
  }
}

TEST(ElasticIn, ScaleInUnderMessageLossAndDuplication) {
  ClusterParams p = scale_in_params(13);
  p.faults.loss_prob = 0.01;
  p.faults.dup_prob = 0.005;
  Cluster cluster(p);
  const RunResult r = cluster.run();
  expect_scaled_in_clean(cluster, r, 4);
}

// The acceptance scenario: 24 -> 16 with one synchronous follower per
// slot, fault-free and lossy.  Followers of the drained partitions retire
// with their leaders; survivor leaders re-sync their followers after
// absorbing foreign chains.
TEST(ElasticIn, TwentyFourToSixteenReplicated) {
  for (const bool lossy : {false, true}) {
    SCOPED_TRACE(lossy ? "lossy" : "clean");
    ClusterParams p = scale_in_params(5);
    p.partitions = 24;
    p.elastic.remove_partitions = 8;
    p.replication.factor = 1;
    p.clients = 6;
    p.dags_per_client = 80;
    if (lossy) {
      p.faults.loss_prob = 0.01;
      p.faults.dup_prob = 0.005;
    }
    Cluster cluster(p);
    const RunResult r = cluster.run();
    expect_scaled_in_clean(cluster, r, 16);
    // Every follower of a drained partition is retired too.
    for (auto& f : cluster.tcc_followers()) {
      if (f->id() >= 16) EXPECT_TRUE(f->retired()) << "follower of " << f->id();
    }
  }
}

TEST(ElasticIn, ScaleOutThenInReturnsToOriginalShape) {
  // +2 at 300 ms, -2 at 700 ms: the joiners drain straight back out, and
  // the ring returns to its original ownership two epochs later.
  ClusterParams p = scale_in_params(11);
  p.partitions = 4;
  p.elastic.add_partitions = 2;
  p.elastic.at = milliseconds(300);
  p.elastic.remove_partitions = 2;
  p.elastic.remove_at = milliseconds(700);
  Cluster cluster(p);
  const RunResult r = cluster.run();
  EXPECT_GT(r.committed, 0u);
  EXPECT_EQ(cluster.metrics().counter("routing.epoch_bumps").value(), 2u);
  const routing::TablePtr final_table = cluster.topology_service()->table();
  EXPECT_EQ(final_table->epoch, 3u);
  EXPECT_EQ(final_table->num_partitions(), 4u);
  check::ConsistencyOracle* oracle = cluster.oracle();
  ASSERT_NE(oracle, nullptr);
  const auto vs = oracle->check();
  EXPECT_TRUE(vs.empty()) << oracle->report(vs);
}

TEST(ElasticIn, ScaleInRunsAreDeterministicPerSeed) {
  auto run_digest = [](uint64_t seed) {
    Cluster cluster(scale_in_params(seed));
    const RunResult r = cluster.run();
    uint64_t migrated = 0;
    for (auto& part : cluster.tcc_partitions()) {
      migrated += part->counters().keys_migrated_in.value();
    }
    return std::tuple<uint64_t, uint64_t, uint64_t>(r.committed, r.sim_events,
                                                    migrated);
  };
  EXPECT_EQ(run_digest(5), run_digest(5));
}

// ---- autoscaler ----------------------------------------------------------

TEST(Autoscale, SpikeDrivesScaleOutThenInAndStaysClean) {
  ClusterParams p;
  p.system = SystemKind::kFaasTcc;
  p.seed = 17;
  p.partitions = 4;
  p.compute_nodes = 2;
  p.clients = 6;
  p.dags_per_client = 250;
  p.workload.num_keys = 500;
  p.workload.dag_size = 3;
  p.workload.pattern = workload::LoadPattern::kBursty;
  p.workload.pattern_period = milliseconds(600);
  p.workload.think_time = milliseconds(2);
  p.check_consistency = true;
  p.autoscale.max_partitions = 6;
  p.autoscale.min_partitions = 4;
  p.autoscale.check_period = milliseconds(50);
  p.autoscale.high_p99_ms = 0.0;  // set below from a dry run's scale
  p.autoscale.low_p99_ms = 0.0;
  p.autoscale.breach_checks = 2;
  p.autoscale.cooldown = milliseconds(250);

  // Calibrate the thresholds from an unscaled dry run so the test tracks
  // simulator latency changes instead of hardcoding milliseconds.
  double base_p99;
  {
    ClusterParams dry = p;
    dry.autoscale = AutoscaleParams{};
    dry.check_consistency = false;
    Cluster c(dry);
    const RunResult r = c.run();
    base_p99 = r.metrics.dag_latency_ms.p99();
    ASSERT_GT(base_p99, 0.0);
  }
  p.autoscale.high_p99_ms = base_p99 * 0.9;  // on-peak windows breach
  p.autoscale.low_p99_ms = base_p99 * 0.5;   // off-peak windows relieve

  Cluster cluster(p);
  const RunResult r = cluster.run();
  EXPECT_GT(r.committed, 0u);
  ASSERT_NE(cluster.autoscaler(), nullptr);
  EXPECT_GE(cluster.autoscaler()->scale_outs(), 1u);
  const size_t active = cluster.reconfig()->active_partitions();
  EXPECT_GE(active, p.autoscale.min_partitions);
  EXPECT_LE(active, p.autoscale.max_partitions);
  check::ConsistencyOracle* oracle = cluster.oracle();
  ASSERT_NE(oracle, nullptr);
  const auto vs = oracle->check();
  EXPECT_TRUE(vs.empty()) << oracle->report(vs);
}

TEST(Autoscale, DisabledAutoscalerIsInert) {
  // autoscale.max_partitions == 0: no engine, no scaler, no gauges.
  ClusterParams p;
  p.system = SystemKind::kFaasTcc;
  p.partitions = 4;
  p.compute_nodes = 2;
  p.clients = 2;
  p.dags_per_client = 50;
  p.workload.num_keys = 200;
  Cluster cluster(p);
  EXPECT_EQ(cluster.autoscaler(), nullptr);
  EXPECT_EQ(cluster.reconfig(), nullptr);
  const RunResult r = cluster.run();
  EXPECT_GT(r.committed, 0u);
  EXPECT_EQ(r.metrics.find_counter("routing.active_partitions"), nullptr);
}

}  // namespace
}  // namespace faastcc::harness
