// Baseline Cloudburst client library: eventual consistency, no
// transactional guarantees.  Context carries the write set only; reads are
// served by the plain cache or a single storage round.  Used for the
// Fig. 11 overhead comparison.
#pragma once

#include <map>
#include <unordered_map>

#include "cache/cache_messages.h"
#include "client/txn.h"
#include "common/metrics.h"
#include "net/rpc.h"
#include "storage/storage_client.h"

namespace faastcc::client {

struct EventualContext {
  std::map<Key, Value> write_set;

  template <typename W>
  void encode(W& w) const {
    w.put_u32(static_cast<uint32_t>(write_set.size()));
    for (const auto& [k, v] : write_set) {
      w.put_u64(k);
      w.put_bytes(v);
    }
  }
  static EventualContext decode(BufReader& r);
};

class EventualAdapter final : public SystemAdapter {
 public:
  EventualAdapter(net::RpcNode& rpc, net::Address cache_address,
                  storage::EvTopology topology, Rng rng, Metrics* metrics,
                  obs::Tracer* tracer = nullptr);

  std::unique_ptr<FunctionTxn> open(const TxnInfo& info,
                                    std::vector<Payload> parent_contexts,
                                    Payload session) override;

 private:
  friend class EventualTxn;
  net::RpcNode& rpc_;
  net::Address cache_address_;
  storage::EvStorageClient storage_;
  Metrics* metrics_;
  obs::Tracer* tracer_ = nullptr;
};

class EventualTxn final : public FunctionTxn {
 public:
  EventualTxn(EventualAdapter& adapter, TxnInfo info, EventualContext context)
      : adapter_(adapter), info_(std::move(info)), ctx_(std::move(context)) {}

  sim::Task<std::optional<std::vector<Value>>> read(
      std::vector<Key> keys) override;
  void write(Key k, Value v) override;
  Buffer export_context() const override;
  size_t metadata_bytes() const override { return 0; }
  sim::Task<std::optional<Buffer>> commit() override;

 private:
  EventualAdapter& adapter_;
  TxnInfo info_;
  EventualContext ctx_;
  std::unordered_map<Key, Value> read_set_;
};

}  // namespace faastcc::client
