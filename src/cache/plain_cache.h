// The baseline Cloudburst cache: an eventually consistent look-aside cache
// with no cross-function guarantees.  Used for the Fig. 11 overhead
// comparison.
#pragma once

#include <unordered_map>

#include "cache/cache_messages.h"
#include "cache/lru_index.h"
#include "common/metrics.h"
#include "net/rpc.h"
#include "storage/storage_client.h"

namespace faastcc::cache {

struct PlainCacheParams {
  size_t capacity = SIZE_MAX;
  Duration lookup_cpu = microseconds(8);
};

class PlainCache {
 public:
  PlainCache(net::Network& network, net::Address self,
             storage::EvTopology topology, Rng rng, PlainCacheParams params,
             Metrics* metrics, obs::Tracer* tracer = nullptr);

  net::Address address() const { return rpc_.address(); }
  size_t entry_count() const { return entries_.size(); }
  size_t bytes() const { return bytes_; }

  // Direct insert for experiment pre-warming.
  void prewarm(Key k, Value v) {
    if (params_.capacity == 0 || entries_.size() >= params_.capacity) return;
    if (entries_.count(k) != 0) return;
    bytes_ += v.size() + 8;
    entries_.emplace(k, std::move(v));
    lru_.touch(k);
  }

 private:
  sim::Task<Buffer> on_read(Buffer req, net::Address from);
  void on_push(Buffer msg, net::Address from);
  void evict_to_capacity();

  net::RpcNode rpc_;
  storage::EvStorageClient storage_;
  PlainCacheParams params_;
  Metrics* metrics_;
  obs::Tracer* tracer_ = nullptr;
  std::unordered_map<Key, Value> entries_;
  LruIndex lru_;
  size_t bytes_ = 0;
};

}  // namespace faastcc::cache
