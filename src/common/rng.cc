#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace faastcc {
namespace {

uint64_t splitmix64(uint64_t& x) {
  x += 0x9E3779B97f4A7C15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

uint64_t Rng::next_u64() {
  const uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

uint64_t Rng::next_below(uint64_t n) {
  assert(n > 0);
  // Lemire-style rejection keeps the distribution exactly uniform.
  uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<uint64_t>(m);
  if (lo < n) {
    const uint64_t threshold = -n % n;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::next_exponential(double mean) {
  double u;
  do {
    u = next_double();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

int64_t Rng::next_range(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  next_below(static_cast<uint64_t>(hi - lo) + 1));
}

bool Rng::next_bool(double p_true) { return next_double() < p_true; }

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace faastcc
