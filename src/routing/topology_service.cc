#include "routing/topology_service.h"

#include <algorithm>
#include <cassert>

namespace faastcc::routing {

TopologyService::TopologyService(net::Network& network, net::Address address,
                                 TablePtr initial)
    : rpc_(network, address), table_(std::move(initial)) {
  assert(table_ != nullptr);
  rpc_.handle(kTopoGet,
              [this](Buffer req, net::Address) -> sim::Task<Buffer> {
                rpc_.recycle(std::move(req));
                co_return rpc_.encode(*table_);
              });
  rpc_.handle(kTopoPromote,
              [this](Buffer req, net::Address) -> sim::Task<Buffer> {
                const auto q = decode_message<TopoPromoteReq>(req);
                rpc_.recycle(std::move(req));
                // First valid bid per epoch wins; a bid against any other
                // epoch lost a race it can learn about from the reply.
                if (q.epoch == table_->epoch &&
                    q.partition < table_->num_partitions()) {
                  const auto& reps = table_->replicas_of(q.partition);
                  if (std::find(reps.begin(), reps.end(), q.candidate) !=
                      reps.end()) {
                    publish(make_table(
                        table_->with_leader_replaced(q.partition,
                                                     q.candidate)));
                  }
                }
                co_return rpc_.encode(*table_);
              });
}

void TopologyService::publish(TablePtr next) {
  assert(next != nullptr && next->epoch > table_->epoch);
  table_ = std::move(next);
  for (net::Address a : listeners_) {
    rpc_.send(a, kTopoUpdate, *table_);
  }
}

}  // namespace faastcc::routing
