// Experiment harness: assembles a full simulated cluster for any of the
// three systems and runs the closed-loop workload to completion.
//
// Default sizes mirror the paper's testbed (§6.1): 16 storage partitions,
// 10 compute nodes with 3 executors each, 16 closed-loop clients issuing
// 1000 DAGs, 100 000 keys of 8 bytes, 50 ms cache refresh period.
#pragma once

#include <memory>
#include <vector>

#include "cache/faastcc_cache.h"
#include "cache/hydro_cache.h"
#include "cache/plain_cache.h"
#include "check/oracle.h"
#include "client/eventual_client.h"
#include "harness/autoscaler.h"
#include "client/faastcc_client.h"
#include "client/hydro_client.h"
#include "common/metrics.h"
#include "faas/compute_node.h"
#include "faas/scheduler.h"
#include "net/network.h"
#include "obs/trace.h"
#include "routing/topology_service.h"
#include "storage/eventual_store.h"
#include "storage/reconfig.h"
#include "storage/tcc_partition.h"
#include "workload/client_driver.h"

namespace faastcc::harness {

enum class SystemKind { kFaasTcc, kHydroCache, kCloudburst };

const char* system_name(SystemKind s);

// Everything any of the three client libraries needs to be constructed;
// MakeAdapter reads only the fields relevant to the requested system.
struct AdapterConfig {
  net::RpcNode* rpc = nullptr;   // the owning compute node's endpoint
  net::Address cache_address = 0;
  storage::TccTopology tcc_topology;  // FaaSTCC
  storage::EvTopology ev_topology;    // HydroCache / Cloudburst
  client::FaasTccConfig faastcc;
  client::HydroConfig hydro;
  Metrics* metrics = nullptr;
  obs::Tracer* tracer = nullptr;
  check::ConsistencyOracle* oracle = nullptr;  // FaaSTCC only
  // Replica-selection stream for the eventually consistent systems.  Fork
  // it from the cluster rng in the same order the adapters were previously
  // constructed, or seeds stop reproducing pre-factory runs.
  Rng rng = Rng(0);
};

// Unified adapter construction for all three systems.
std::unique_ptr<client::SystemAdapter> MakeAdapter(SystemKind kind,
                                                   const AdapterConfig& config);

// Elastic reconfiguration schedule (FaaSTCC only).  Scale-out: at `at`
// sim-time after start, `add_partitions` joiners are brought up, the
// routing table is bumped one epoch, and the stolen slots' version chains
// are migrated with a promise-sound handoff.  Scale-in: at `remove_at`,
// the trailing `remove_partitions` partitions drain their slots to the
// survivors and retire (followers with them).  Inert unless enabled(): a
// cluster with the elastic machinery compiled in but nothing scheduled
// runs bit-identically to one without it.
struct ElasticParams {
  size_t add_partitions = 0;
  Duration at = Duration{0};
  size_t remove_partitions = 0;
  Duration remove_at = Duration{0};
  size_t slots_per_partition = routing::RoutingTable::kDefaultSlotsPerPartition;
  bool scale_out_scheduled() const {
    return add_partitions > 0 && at > Duration{0};
  }
  bool scale_in_scheduled() const {
    return remove_partitions > 0 && remove_at > Duration{0};
  }
  bool enabled() const {
    return scale_out_scheduled() || scale_in_scheduled();
  }
};

// Per-slot replica chains (FaaSTCC only): each partition leader gets
// `factor` synchronous followers; a commit is acked only after every
// caught-up follower has the installs, and a follower that stops hearing
// seal beats for `lease_timeout` bids for promotion at the topology
// service.  Inert unless enabled(): factor 0 runs bit-identically to a
// build without the replication machinery.
struct ReplicationParams {
  size_t factor = 0;  // followers per partition (max 4)
  Duration lease_timeout = milliseconds(60);
  bool enabled() const { return factor > 0; }
};

struct ClusterParams {
  SystemKind system = SystemKind::kFaasTcc;
  uint64_t seed = 42;

  size_t partitions = 16;   // TCC partitions / eventual-store partitions
  size_t ev_replicas = 2;   // replication factor of the eventual store
  size_t compute_nodes = 10;
  size_t clients = 16;
  int dags_per_client = 1000;

  // Cache capacity in entries per node; SIZE_MAX unbounded, 0 disabled.
  size_t cache_capacity = SIZE_MAX;

  workload::WorkloadParams workload;
  client::FaasTccConfig faastcc;
  client::HydroConfig hydro;
  storage::TccPartitionParams tcc;
  storage::EventualStoreParams ev;
  faas::ComputeNodeParams node;
  faas::SchedulerParams scheduler;
  net::NetworkParams net;
  cache::CacheParams faastcc_cache;
  cache::HydroCacheParams hydro_cache;
  cache::PlainCacheParams plain_cache;

  // Fault-injection knobs.
  // Network faults (message loss, duplication, delay spikes, crash
  // windows) plus the RPC/DAG timeouts that make the systems survive
  // them.  Entirely inert unless faults.enabled() — fault-free runs draw
  // the exact same random streams as before this layer existed.
  net::FaultParams faults;
  // Mid-run scheduled partition scale-out / scale-in (FaaSTCC only).
  ElasticParams elastic;
  // Metric-driven autoscaler (FaaSTCC only): grows/shrinks the partition
  // count from the committed-DAG p99.
  AutoscaleParams autoscale;
  // Per-slot replica chains (FaaSTCC only).
  ReplicationParams replication;
  // Residual NTP skew: each partition's physical clock is offset by a
  // uniform random amount in [-clock_skew_us, clock_skew_us].
  int64_t clock_skew_us = 100;
  // Multiplies partition 0's stabilization gossip period (a straggler).
  int straggler_gossip_factor = 1;

  // Deterministic distributed tracing (off by default: with tracing off the
  // run is bit-identical to a build without the observability layer).
  obs::TraceParams trace;

  // Attach the consistency oracle (FaaSTCC only).  Like tracing it is
  // zero-perturbation: the run is bit-identical with it on or off.
  bool check_consistency = false;

  // Pre-warm node caches with the hottest keys before the measured phase
  // (§6.1: "cache sizes are unbounded and were pre-warmed").  Bounded
  // caches are warmed up to their capacity.
  bool prewarm_caches = true;
  Duration warmup = milliseconds(250);
  Duration max_sim_time = seconds(3600);
  int client_max_retries = 50;
};

struct RunResult {
  Metrics metrics;
  double duration_s = 0;       // wall time of the measured phase (sim)
  double throughput = 0;       // committed DAGs per second
  uint64_t committed = 0;
  uint64_t aborted_attempts = 0;
  size_t cache_entries = 0;    // across all nodes, end of run
  size_t cache_bytes = 0;
  uint64_t sim_events = 0;
};

class Cluster {
 public:
  explicit Cluster(ClusterParams params);
  ~Cluster();
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // Preloads the dataset, starts background services, runs the warmup.
  void start();
  // Runs every client to completion (call after start()).
  RunResult run_clients();
  // start() + run_clients().
  RunResult run();

  // Component access for tests and examples.
  sim::EventLoop& loop() { return loop_; }
  net::Network& network() { return network_; }
  faas::FunctionRegistry& registry() { return *registry_; }
  Metrics& metrics() { return metrics_; }
  obs::Tracer& tracer() { return tracer_; }
  const obs::Tracer& tracer() const { return tracer_; }
  // nullptr unless check_consistency was set (and the system is FaaSTCC).
  check::ConsistencyOracle* oracle() { return oracle_.get(); }
  const ClusterParams& params() const { return params_; }
  net::Address scheduler_address() const;
  const faas::Scheduler& scheduler() const { return *scheduler_; }

  std::vector<std::unique_ptr<storage::TccPartition>>& tcc_partitions() {
    return tcc_partitions_;
  }
  // Follower endpoints, p-major (follower r of partition p at index
  // p * replication.factor + r).  Empty unless replication is enabled.
  std::vector<std::unique_ptr<storage::TccPartition>>& tcc_followers() {
    return tcc_followers_;
  }
  std::vector<std::unique_ptr<storage::EvReplica>>& ev_replicas() {
    return ev_replicas_;
  }
  std::vector<std::unique_ptr<cache::FaasTccCache>>& faastcc_caches() {
    return faastcc_caches_;
  }
  std::vector<std::unique_ptr<cache::HydroCache>>& hydro_caches() {
    return hydro_caches_;
  }
  std::vector<std::unique_ptr<workload::ClientDriver>>& clients() {
    return clients_;
  }

  storage::TccTopology tcc_topology() const;
  storage::EvTopology ev_topology() const;
  // nullptr for the eventually consistent systems.
  routing::TopologyService* topology_service() { return topo_.get(); }
  // nullptr unless elastic or autoscale is configured (FaaSTCC only).
  storage::ReconfigEngine* reconfig() { return reconfig_.get(); }
  Autoscaler* autoscaler() { return autoscaler_.get(); }

 private:
  void build_storage();
  void build_compute();
  void build_clients();
  void preload();
  void prewarm();
  void collect_cache_gauges(RunResult& out) const;
  // Scheduled-transition drivers: sleep until the configured instant, then
  // hand the target table to the reconfiguration engine.
  sim::Task<void> run_scheduled_scale_out();
  sim::Task<void> run_scheduled_scale_in();

  ClusterParams params_;
  Rng rng_;
  sim::EventLoop loop_;
  net::Network network_;
  Metrics metrics_;
  obs::Tracer tracer_;
  std::unique_ptr<check::ConsistencyOracle> oracle_;
  std::shared_ptr<faas::FunctionRegistry> registry_;
  std::unique_ptr<routing::TopologyService> topo_;
  // All reconfiguration state (control endpoint, slot-handoff pipeline,
  // transition bookkeeping) lives behind the engine; the harness keeps
  // only this handle.  Null unless elastic or autoscale is configured.
  std::unique_ptr<storage::ReconfigEngine> reconfig_;
  std::unique_ptr<Autoscaler> autoscaler_;

  std::vector<std::unique_ptr<storage::TccPartition>> tcc_partitions_;
  std::vector<std::unique_ptr<storage::TccPartition>> tcc_followers_;
  std::vector<std::unique_ptr<storage::EvReplica>> ev_replicas_;
  std::vector<std::unique_ptr<cache::FaasTccCache>> faastcc_caches_;
  std::vector<std::unique_ptr<cache::HydroCache>> hydro_caches_;
  std::vector<std::unique_ptr<cache::PlainCache>> plain_caches_;
  std::vector<std::unique_ptr<faas::ComputeNode>> nodes_;
  std::unique_ptr<faas::Scheduler> scheduler_;
  std::vector<std::unique_ptr<workload::ClientDriver>> clients_;
  bool started_ = false;
};

}  // namespace faastcc::harness
