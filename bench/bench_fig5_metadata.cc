// Figure 5: coordination metadata passed function-to-function (bytes,
// median and P99).  FaaSTCC is a constant 16 bytes (the snapshot
// interval); HydroCache-Dynamic ships its accumulated dependency map.
#include "bench_util.h"

using namespace faastcc;
using namespace faastcc::bench;

int main() {
  print_preamble("Figure 5", "metadata size between functions (bytes)");

  struct Row {
    const char* name;
    SystemKind system;
    bool static_txns;
    double paper[3][2];
  };
  const Row rows[] = {
      {"HydroCache-Dynamic", SystemKind::kHydroCache, false,
       {{72288.9, 131984.0}, {33867.2, 57696.0}, {13625.6, 22128.0}}},
      {"FaaSTCC", SystemKind::kFaasTcc, false,
       {{16.0, 16.0}, {16.0, 16.0}, {16.0, 16.0}}},
  };
  const double zipfs[] = {1.0, 1.25, 1.5};

  Table table({"system", "zipf", "median B", "p99 B", "paper median B",
               "paper p99 B", "ratio vs FaaSTCC"});
  double faastcc_med[3] = {16, 16, 16};
  for (const Row& row : rows) {
    for (int z = 0; z < 3; ++z) {
      const SummaryStats s =
          run_or_load(base_config(row.system, zipfs[z], row.static_txns));
      const double ratio = s.metadata_med / faastcc_med[z];
      table.add_row({row.name, fmt(zipfs[z], 2), fmt(s.metadata_med, 0),
                     fmt(s.metadata_p99, 0), fmt(row.paper[z][0], 0),
                     fmt(row.paper[z][1], 0), fmt(ratio, 0) + "x"});
    }
  }
  table.print();
  std::printf(
      "paper: HydroCache median is 4500x (zipf 1.0) to 850x (zipf 1.5) "
      "larger than FaaSTCC's 16 bytes.\n");
  return 0;
}
