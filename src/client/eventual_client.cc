#include "client/eventual_client.h"

namespace faastcc::client {

EventualContext EventualContext::decode(BufReader& r) {
  EventualContext c;
  const uint32_t n = r.get_u32();
  for (uint32_t i = 0; i < n; ++i) {
    const Key k = r.get_u64();
    c.write_set[k] = r.get_bytes();
  }
  return c;
}

EventualAdapter::EventualAdapter(net::RpcNode& rpc, net::Address cache_address,
                                 storage::EvTopology topology, Rng rng,
                                 Metrics* metrics, obs::Tracer* tracer)
    : rpc_(rpc),
      cache_address_(cache_address),
      storage_(rpc, std::move(topology), rng, tracer),
      metrics_(metrics),
      tracer_(tracer) {}

std::unique_ptr<FunctionTxn> EventualAdapter::open(
    const TxnInfo& info, std::vector<Payload> parent_contexts,
    Payload /*session*/) {
  EventualContext ctx;
  for (const Payload& b : parent_contexts) {
    EventualContext p = decode_message<EventualContext>(b);
    for (auto& [k, v] : p.write_set) ctx.write_set[k] = std::move(v);
  }
  return std::make_unique<EventualTxn>(*this, info, std::move(ctx));
}

sim::Task<std::optional<std::vector<Value>>> EventualTxn::read(
    std::vector<Key> keys) {
  std::vector<Value> out(keys.size());
  std::vector<size_t> missing;
  for (size_t i = 0; i < keys.size(); ++i) {
    const Key k = keys[i];
    if (auto it = ctx_.write_set.find(k); it != ctx_.write_set.end()) {
      out[i] = it->second;
    } else if (auto it2 = read_set_.find(k); it2 != read_set_.end()) {
      out[i] = it2->second;
    } else {
      missing.push_back(i);
    }
  }
  if (missing.empty()) co_return out;

  cache::PlainReadReq req;
  req.keys.reserve(missing.size());
  for (size_t idx : missing) req.keys.push_back(keys[idx]);
  obs::Tracer* tracer = adapter_.tracer_;
  obs::SpanHandle span;
  obs::TraceContext span_ctx;
  const SimTime t0 = adapter_.rpc_.now();
  if (tracer != nullptr) {
    span = tracer->begin(info_.trace, "read", "client_lib",
                         adapter_.rpc_.address(), t0);
    tracer->annotate(span, "keys", static_cast<uint64_t>(missing.size()));
    span_ctx = tracer->context_of(span);
  }
  auto resp = co_await adapter_.rpc_.call<cache::PlainReadResp>(
      adapter_.cache_address_, cache::kPlainRead, req, span_ctx);
  if (tracer != nullptr) {
    tracer->annotate(span, "abort", resp.abort ? 1 : 0);
    tracer->add_time(span_ctx.trace_id, obs::Bucket::kStorage,
                     adapter_.rpc_.now() - t0);
    tracer->end(span, adapter_.rpc_.now());
  }
  if (resp.abort) co_return std::nullopt;
  for (size_t j = 0; j < missing.size(); ++j) {
    const size_t idx = missing[j];
    out[idx] = resp.entries[j].value;
    read_set_.emplace(keys[idx], resp.entries[j].value);
  }
  co_return out;
}

void EventualTxn::write(Key k, Value v) { ctx_.write_set[k] = std::move(v); }

Buffer EventualTxn::export_context() const { return encode_message(ctx_); }

sim::Task<std::optional<Buffer>> EventualTxn::commit() {
  if (!ctx_.write_set.empty()) {
    std::vector<storage::EvItem> items;
    items.reserve(ctx_.write_set.size());
    for (const auto& [k, v] : ctx_.write_set) {
      storage::EvItem item;
      item.key = k;
      item.version = storage::EvVersion{0, info_.txn_id};  // store assigns
      item.payload = v;
      items.push_back(std::move(item));
    }
    obs::Tracer* tracer = adapter_.tracer_;
    obs::SpanHandle span;
    obs::TraceContext span_ctx;
    const SimTime t0 = adapter_.rpc_.now();
    if (tracer != nullptr) {
      span = tracer->begin(info_.trace, "commit", "client_lib",
                           adapter_.rpc_.address(), t0);
      tracer->annotate(span, "writes", static_cast<uint64_t>(items.size()));
      span_ctx = tracer->context_of(span);
    }
    auto versions = co_await adapter_.storage_.put(std::move(items), span_ctx);
    if (tracer != nullptr) {
      tracer->annotate(span, "committed", versions.has_value() ? 1 : 0);
      tracer->add_time(span_ctx.trace_id, obs::Bucket::kStorage,
                       adapter_.rpc_.now() - t0);
      tracer->end(span, adapter_.rpc_.now());
    }
    if (!versions.has_value()) co_return std::nullopt;
  }
  co_return Buffer{};
}

}  // namespace faastcc::client
