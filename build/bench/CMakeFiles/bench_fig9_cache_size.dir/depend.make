# Empty dependencies file for bench_fig9_cache_size.
# This may be replaced when dependencies are built.
