// Request/response RPC over the simulated network.
//
// Each simulated process owns an RpcNode.  Handlers are coroutines, so a
// storage partition can await internal work while serving a request.  Typed
// wrappers (`call<Req, Resp>`) encode/decode with the common binary codec so
// every RPC's wire size is exact.
//
// Calls over the fabric can time out (see FaultParams::rpc_timeout): the
// pending promise is resolved with RpcStatus::kTimeout so the caller's
// coroutine never hangs on a lost message.  `call_with_retry` layers
// deterministic capped exponential backoff on top.  Colocated (IPC) calls
// resolve the default timeout to "never" — same-node queues don't lose
// messages, and cache handlers can legitimately take long under faults.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>

#include "common/serialize.h"
#include "net/network.h"
#include "sim/future.h"
#include "sim/task.h"

namespace faastcc::net {

enum class RpcStatus : uint8_t {
  kOk = 0,
  kTimeout = 1,
  // The callee NACKed the request because it carried a different routing
  // epoch than the callee's table (see RpcNode::gate_on_epoch).  Not
  // retried by the backoff wrappers: the caller must refresh its table
  // first, re-batching may route the request somewhere else entirely.
  kWrongEpoch = 2,
};

// Sentinel: resolve the timeout from the network default (0 for colocated
// peers, Network::default_rpc_timeout() otherwise).
inline constexpr Duration kUseDefaultTimeout = -1;

// Deterministic capped exponential backoff: attempt n waits
// min(initial_backoff * 2^(n-1), max_backoff).  No randomness — retry
// schedules must be reproducible per seed.
struct RetryPolicy {
  int max_attempts = 5;
  Duration initial_backoff = milliseconds(1);
  Duration max_backoff = milliseconds(16);
  Duration timeout = kUseDefaultTimeout;
};

// Shared retry profiles.  Call sites used to restate these constants
// per-call; keeping them here makes "how hard do we try" a single
// decision per traffic class.
//
// Commit-grade traffic (prepare/commit/abort, elastic handoff RPCs): a
// commit abandoned halfway is expensive for everyone upstream, so retry
// well past any plausible loss burst.  12 attempts with 1..64 ms capped
// backoff rides out ~350 ms of unreachability, comfortably under the
// prepare TTL (5 s default).
inline constexpr RetryPolicy commit_retry_policy() {
  return RetryPolicy{12, milliseconds(1), milliseconds(64),
                     kUseDefaultTimeout};
}
// Routing refreshes after a wrong-epoch NACK: the table fetch is cheap and
// the new table usually lands on the first try; a short profile keeps a
// stale client from hammering the topology service.
inline constexpr RetryPolicy routing_refresh_policy() {
  return RetryPolicy{4, milliseconds(1), milliseconds(8), kUseDefaultTimeout};
}

class RpcNode {
 public:
  // Coroutine handler: receives the request payload and the caller address,
  // returns the response payload.
  using RequestHandler =
      std::function<sim::Task<Buffer>(Buffer, Address)>;
  // Fire-and-forget handler for one-way messages (pub/sub pushes, gossip).
  using OneWayHandler = std::function<void(Buffer, Address)>;

  RpcNode(Network& network, Address address);
  ~RpcNode() = default;
  RpcNode(const RpcNode&) = delete;
  RpcNode& operator=(const RpcNode&) = delete;

  Address address() const { return address_; }
  Network& network() { return network_; }
  sim::EventLoop& loop() { return network_.loop(); }
  SimTime now() const { return network_.now(); }

  void handle(MethodId method, RequestHandler handler);
  void handle_oneway(MethodId method, OneWayHandler handler);

  static constexpr Duration kUseDefaultTimeout = net::kUseDefaultTimeout;
  using RetryPolicy = net::RetryPolicy;

  // Raw call; completes when the response arrives or the timeout fires
  // (check SizedResponse::status — the payload is empty on timeout).
  sim::Task<Buffer> call_raw(Address to, MethodId method, Buffer request,
                             obs::TraceContext trace = {});

  // Pooled encode: the buffer comes from the loop's shared free list and
  // should eventually be handed back via recycle() by whoever drains it.
  template <typename M>
  Buffer encode(const M& m) {
    return encode_message(m, loop().buffer_pool());
  }
  // Returns an exhausted payload buffer to the free list (keeps capacity).
  void recycle(Buffer&& b) { loop().buffer_pool().release(std::move(b)); }

  // Typed call.  `req` is taken by value: tasks are lazy, so the request
  // must live in the coroutine frame — callers routinely build several
  // calls and only await them later via when_all.
  template <typename Resp, typename Req>
  sim::Task<Resp> call(Address to, MethodId method, Req req,
                       obs::TraceContext trace = {}) {
    Buffer resp = co_await call_raw(to, method, encode(req), trace);
    Resp out = decode_message<Resp>(resp);
    recycle(std::move(resp));
    co_return out;
  }

  // One-way typed send.
  template <typename M>
  void send(Address to, MethodId method, const M& msg,
            obs::TraceContext trace = {}) {
    send_raw(to, method, encode(msg), trace);
  }
  void send_raw(Address to, MethodId method, Buffer payload,
                obs::TraceContext trace = {});

  // Bytes of the last response received by call_raw on this node; callers
  // that need per-request accounting should use call_raw_sized instead.
  struct SizedResponse {
    Buffer payload;
    size_t request_wire_bytes = 0;
    size_t response_wire_bytes = 0;
    RpcStatus status = RpcStatus::kOk;
    // Attempts consumed when the call went through a retry wrapper (1 for a
    // first-try success); plain call_raw_sized leaves it at 1.
    uint32_t attempts = 1;
    // Routing epoch the responder stamped on the frame (0: responder does
    // not participate).  On kWrongEpoch this is the epoch the caller must
    // catch up to (or that the callee itself is behind at).
    uint32_t peer_epoch = 0;

    bool ok() const { return status == RpcStatus::kOk; }
  };
  sim::Task<SizedResponse> call_raw_sized(Address to, MethodId method,
                                          Buffer request,
                                          Duration timeout = kUseDefaultTimeout,
                                          obs::TraceContext trace = {});

  // Retries on timeout; the final attempt's response (possibly still a
  // timeout) is returned.  With timeouts resolved to 0 (faults off) the
  // first attempt blocks until the response arrives, so call sites can use
  // the retry wrappers unconditionally without changing fault-free runs.
  sim::Task<SizedResponse> call_raw_sized_retry(Address to, MethodId method,
                                                Buffer request,
                                                RetryPolicy policy = {},
                                                obs::TraceContext trace = {});
  sim::Task<std::optional<Buffer>> call_raw_retry(Address to, MethodId method,
                                                  Buffer request,
                                                  RetryPolicy policy = {},
                                                  obs::TraceContext trace = {});

  // Typed retrying call; nullopt when every attempt timed out.
  template <typename Resp, typename Req>
  sim::Task<std::optional<Resp>> call_with_retry(Address to, MethodId method,
                                                 Req req,
                                                 RetryPolicy policy = {},
                                                 obs::TraceContext trace = {}) {
    SizedResponse r = co_await call_raw_sized_retry(
        to, method, encode(req), policy, trace);
    if (!r.ok()) co_return std::nullopt;
    Resp out = decode_message<Resp>(r.payload);
    recycle(std::move(r.payload));
    co_return out;
  }

  // ---- Epoch-versioned routing --------------------------------------------
  // The node's current routing epoch is stamped on every outbound frame
  // (0 until set: non-participants are never NACKed).
  void set_routing_epoch(uint32_t epoch) { routing_epoch_ = epoch; }
  uint32_t routing_epoch() const { return routing_epoch_; }
  // Registers `method` as epoch-gated: requests whose stamped epoch
  // disagrees with ours (both nonzero) are NACKed with kWrongEpoch before
  // the handler runs, so a handler for a gated method can assume the
  // caller routed with our table.
  void gate_on_epoch(MethodId method);
  // Invoked when a gated request arrives stamped with a NEWER epoch than
  // ours: we are the stale side and should pull a fresh table.  The NACK is
  // still sent (the gate never serves across epochs); the callback is how a
  // node that missed the broadcast learns to catch up.
  void on_stale_epoch(std::function<void()> cb) { stale_epoch_cb_ = std::move(cb); }

  // Trace context of the message currently being dispatched.  Valid only
  // until the handler's first suspension: handlers are started
  // synchronously at delivery (oneway handlers directly, coroutine
  // handlers via spawn, which runs the body up to its first co_await), so
  // capture this at the top of the handler.
  const obs::TraceContext& inbound_trace() const { return inbound_trace_; }

  // Outstanding calls (tests: verifies timeouts don't leak pending state).
  size_t pending_calls() const { return pending_.size(); }

 private:
  void on_message(Message m);
  void on_call_timeout(uint64_t id);
  sim::Task<void> run_handler(RequestHandler& handler, Message m);

  Network& network_;
  Address address_;
  obs::TraceContext inbound_trace_;
  uint64_t next_request_id_ = 1;
  uint32_t routing_epoch_ = 0;
  std::vector<MethodId> epoch_gated_;
  std::function<void()> stale_epoch_cb_;
  std::unordered_map<MethodId, RequestHandler> handlers_;
  std::unordered_map<MethodId, OneWayHandler> oneway_handlers_;
  struct Pending {
    sim::Promise<SizedResponse> promise;
    size_t request_wire_bytes;
  };
  std::unordered_map<uint64_t, Pending> pending_;
};

}  // namespace faastcc::net
