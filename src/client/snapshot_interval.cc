#include "client/snapshot_interval.h"

#include <algorithm>

namespace faastcc::client {

SnapshotInterval SnapshotInterval::merge(
    std::span<const SnapshotInterval> parents) {
  SnapshotInterval out;
  if (parents.empty()) return out;
  out = parents[0];
  for (size_t i = 1; i < parents.size(); ++i) {
    out.low = std::max(out.low, parents[i].low);
    out.high = std::min(out.high, parents[i].high);
  }
  return out;
}

std::string SnapshotInterval::to_string() const {
  return "[" + low.to_string() + ", " + high.to_string() + "]";
}

}  // namespace faastcc::client
