// Tree-aggregated stabilization: property tests for the k-ary safe-time
// aggregation tree (stabilization_topology=tree) and the O(1) stable-time
// tournament tree, plus small-cluster checks of the tree gossip round's
// message budget and the coalesced push frame.
//
// The lossy-channel harness here models exactly what the simulator's
// network can do to tree traffic — loss, duplication, bounded reordering
// delay — and, for the elastic test, the real system's epoch-bump order:
// the handoff source adopts the new membership when it seals (migrate-out
// adopts the carried table), everyone else learns from membership tags.
#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <vector>

#include "common/rng.h"
#include "harness/run_spec.h"
#include "storage/stabilizer.h"

namespace faastcc::storage {
namespace {

Timestamp ts(uint64_t us) { return Timestamp(us, 0, 0); }

// ---------------------------------------------------------------------------
// Tree shape
// ---------------------------------------------------------------------------

TEST(StabilizerTree, ShapeIsConsistentAcrossSizesAndFanouts) {
  for (uint32_t fanout : {1u, 2u, 3u, 4u, 7u}) {
    for (size_t n : {1u, 2u, 5u, 16u, 33u}) {
      for (PartitionId i = 0; i < n; ++i) {
        Stabilizer s(i, n, StabTopology::kTree, fanout);
        if (i == 0) {
          EXPECT_TRUE(s.is_root());
        } else {
          EXPECT_FALSE(s.is_root());
          // My parent's child list contains me.
          Stabilizer parent(s.parent(), n, StabTopology::kTree, fanout);
          bool found = false;
          for (size_t c = 0; c < parent.num_children(); ++c) {
            if (parent.child(c) == i) found = true;
          }
          EXPECT_TRUE(found) << "n=" << n << " fanout=" << fanout
                             << " node=" << i;
        }
        // Every child is a valid member and points back at me.
        for (size_t c = 0; c < s.num_children(); ++c) {
          ASSERT_LT(s.child(c), n);
          Stabilizer child(s.child(c), n, StabTopology::kTree, fanout);
          EXPECT_EQ(child.parent(), i);
        }
      }
    }
  }
}

TEST(StabilizerTree, GrowthOnlyAppendsEdges) {
  // parent(i) = (i-1)/k depends only on i: growing membership must not
  // re-parent anyone, only add children.
  for (size_t before : {3u, 7u}) {
    for (size_t after : {8u, 13u}) {
      for (PartitionId i = 1; i < before; ++i) {
        Stabilizer small(i, before, StabTopology::kTree, 2);
        Stabilizer big(i, after, StabTopology::kTree, 2);
        EXPECT_EQ(small.parent(), big.parent());
        EXPECT_LE(small.num_children(), big.num_children());
        for (size_t c = 0; c < small.num_children(); ++c) {
          EXPECT_EQ(small.child(c), big.child(c));
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// O(1) stable time == exact min (tournament tree vs reference scan)
// ---------------------------------------------------------------------------

TEST(StabilizerTree, MinTreeMatchesReferenceScanUnderFuzz) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    Rng rng(0x51ab1e00 + seed);
    size_t n = 1 + rng.next_below(9);
    Stabilizer s(0, n);
    for (int step = 0; step < 400; ++step) {
      if (rng.next_below(20) == 0) {
        n += 1 + rng.next_below(3);
        s.extend_membership(n);
      } else {
        const PartitionId from = static_cast<PartitionId>(rng.next_below(n));
        s.on_gossip(from, ts(1 + rng.next_below(1000)));
      }
      const auto& heard = s.last_heard_all();
      ASSERT_EQ(heard.size(), n);
      const Timestamp expect = *std::min_element(heard.begin(), heard.end());
      ASSERT_EQ(s.stable_time(), expect) << "seed=" << seed
                                         << " step=" << step;
    }
  }
}

// ---------------------------------------------------------------------------
// Lossy-channel aggregation harness
// ---------------------------------------------------------------------------

struct TreeMsg {
  enum Kind { kUp, kDown } kind;
  PartitionId dest;
  PartitionId child;      // kUp only
  uint32_t membership;
  Timestamp value;
  int due_round;
};

struct TreeCell {
  std::vector<Stabilizer> nodes;
  std::vector<uint64_t> safe;  // each member's current published safe (µs)
  std::deque<TreeMsg> wire;
  Rng rng;
  double loss = 0, dup = 0;
  int max_delay = 0;
  int round = 0;

  TreeCell(size_t n, uint32_t fanout, uint64_t seed) : rng(seed) {
    for (PartitionId i = 0; i < n; ++i) {
      nodes.emplace_back(i, n, StabTopology::kTree, fanout);
      safe.push_back(1 + i);
    }
  }

  void post(TreeMsg m) {
    if (rng.next_double() < loss) return;
    m.due_round =
        round + static_cast<int>(rng.next_below(max_delay + 1));
    wire.push_back(m);
    if (rng.next_double() < dup) {
      TreeMsg copy = m;
      copy.due_round =
          round + static_cast<int>(rng.next_below(max_delay + 1));
      wire.push_back(copy);
    }
  }

  void deliver_due() {
    const size_t pending = wire.size();
    for (size_t k = 0; k < pending; ++k) {
      TreeMsg m = wire.front();
      wire.pop_front();
      if (m.due_round > round) {
        wire.push_back(m);  // not yet: requeue (models reordering too)
        continue;
      }
      if (m.dest >= nodes.size()) continue;
      if (m.kind == TreeMsg::kUp) {
        nodes[m.dest].on_child_report(m.child, m.membership, m.value);
      } else {
        nodes[m.dest].on_stable_broadcast(m.membership, m.value);
      }
    }
  }

  // One gossip beat, mirroring TccPartition::tree_gossip_round.
  void run_round(bool advance_safes) {
    ++round;
    deliver_due();
    for (PartitionId i = 0; i < nodes.size(); ++i) {
      if (advance_safes) safe[i] += rng.next_below(40);
      Stabilizer& s = nodes[i];
      s.on_gossip(i, ts(safe[i]));
      const auto tag = static_cast<uint32_t>(s.num_partitions());
      const Timestamp fold = s.fold_subtree_min(ts(safe[i]));
      if (s.is_root()) {
        s.on_stable_broadcast(tag, fold);
      } else {
        post({TreeMsg::kUp, s.parent(), i, tag, fold, 0});
      }
      for (size_t c = 0; c < s.num_children(); ++c) {
        post({TreeMsg::kDown, s.child(c), 0, tag, s.stable_time(), 0});
      }
    }
  }

  Timestamp exact_min() const {
    uint64_t m = safe[0];
    for (uint64_t v : safe) m = std::min(m, v);
    return ts(m);
  }
};

TEST(StabilizerTree, NeverExceedsExactMinUnderLossDupDelay) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    for (uint32_t fanout : {2u, 4u}) {
      TreeCell cell(13, fanout, 0xdead0000 + seed);
      cell.loss = 0.15;
      cell.dup = 0.10;
      cell.max_delay = 3;
      std::vector<Timestamp> prev(cell.nodes.size(), Timestamp::min());
      for (int r = 0; r < 120; ++r) {
        cell.run_round(/*advance_safes=*/true);
        const Timestamp bound = cell.exact_min();
        for (size_t i = 0; i < cell.nodes.size(); ++i) {
          const Timestamp st = cell.nodes[i].stable_time();
          // Safety: a fold is a min over past published values of every
          // member, each <= that member's current value.
          ASSERT_LE(st, bound) << "seed=" << seed << " node=" << i;
          // Monotone per node.
          ASSERT_GE(st, prev[i]);
          prev[i] = st;
        }
      }
      // Liveness: freeze safes, stop losing messages, drain.
      cell.loss = 0;
      cell.dup = 0;
      cell.max_delay = 0;
      for (int r = 0; r < 40; ++r) cell.run_round(/*advance_safes=*/false);
      for (const Stabilizer& s : cell.nodes) {
        EXPECT_EQ(s.stable_time(), cell.exact_min());
      }
    }
  }
}

TEST(StabilizerTree, MidRoundEpochBumpKeepsStableSound) {
  // Membership grows mid-run with messages in flight.  The real system's
  // order: the handoff source seals its safe time (the joiners' floor),
  // adopts the new membership immediately (migrate-out carries the table),
  // joiners start at the floor; every other member keeps running with the
  // old view until a membership tag reaches it.
  for (uint64_t seed = 0; seed < 6; ++seed) {
    TreeCell cell(7, 2, 0xe1a57100 + seed);
    cell.loss = 0.10;
    cell.dup = 0.05;
    cell.max_delay = 2;
    constexpr size_t kFinal = 11;
    std::vector<Timestamp> prev(kFinal, Timestamp::min());
    for (int r = 0; r < 140; ++r) {
      if (r == 50) {
        // Seal: the floor dominates every published safe, like a handoff
        // floor seeded from the source's sealed safe time.
        uint64_t floor = 0;
        for (uint64_t v : cell.safe) floor = std::max(floor, v);
        for (PartitionId i = cell.nodes.size(); i < kFinal; ++i) {
          cell.nodes.emplace_back(i, kFinal, StabTopology::kTree, 2u);
          cell.safe.push_back(floor);
        }
        // The source (pick node 1, an interior node) adopts at seal time.
        cell.nodes[1].extend_membership(kFinal);
      }
      cell.run_round(/*advance_safes=*/true);
      const Timestamp bound = cell.exact_min();
      for (size_t i = 0; i < cell.nodes.size(); ++i) {
        const Timestamp st = cell.nodes[i].stable_time();
        ASSERT_LE(st, bound) << "seed=" << seed << " node=" << i
                             << " round=" << r;
        ASSERT_GE(st, prev[i]);
        prev[i] = st;
      }
    }
    // Post-bump convergence: everyone adopted the new membership purely
    // from tags, and the stable converged to the 11-member min.
    cell.loss = 0;
    cell.dup = 0;
    cell.max_delay = 0;
    for (int r = 0; r < 40; ++r) cell.run_round(/*advance_safes=*/false);
    for (const Stabilizer& s : cell.nodes) {
      EXPECT_EQ(s.num_partitions(), kFinal);
      EXPECT_EQ(s.stable_time(), cell.exact_min());
    }
  }
}

TEST(StabilizerTree, StaleMembershipReportsAreDroppedAndCounted) {
  Stabilizer s(0, 5, StabTopology::kTree, 2);  // root, children 1 and 2
  EXPECT_TRUE(s.on_child_report(1, 5, ts(40)));
  s.extend_membership(7);
  // In-flight fold over the old membership: omits members 5 and 6.
  EXPECT_FALSE(s.on_child_report(1, 5, ts(90)));
  EXPECT_EQ(s.stale_drops(), 1u);
  EXPECT_EQ(s.drops(Stabilizer::DropReason::kStaleReportTag), 1u);
  EXPECT_EQ(s.last_drop_reason(), Stabilizer::DropReason::kStaleReportTag);
  // The barrier re-armed: the pre-bump report no longer counts.
  s.on_gossip(0, ts(100));
  EXPECT_EQ(s.fold_subtree_min(ts(100)), Timestamp::min());
  // A new-membership report is accepted again.
  EXPECT_TRUE(s.on_child_report(1, 7, ts(95)));
  // Broadcasts are tag-checked the same way.
  EXPECT_FALSE(s.on_stable_broadcast(5, ts(90)));
  EXPECT_EQ(s.stale_drops(), 2u);
  EXPECT_EQ(s.drops(Stabilizer::DropReason::kStaleBroadcastTag), 1u);
  // A report from outside this node's fanout is its own reason.
  EXPECT_FALSE(s.on_child_report(4, 7, ts(95)));
  EXPECT_EQ(s.drops(Stabilizer::DropReason::kForeignChild), 1u);
  EXPECT_EQ(s.last_drop_reason(), Stabilizer::DropReason::kForeignChild);
  EXPECT_EQ(s.stale_drops(), 3u);
}

TEST(StabilizerTree, LargerTagAdoptsMembershipBeforeAccepting) {
  Stabilizer s(1, 3, StabTopology::kTree, 2);  // children 3, 4 once they exist
  EXPECT_EQ(s.num_children(), 0u);
  // A child report proves membership grew to 6: adopt, then accept.
  EXPECT_TRUE(s.on_child_report(3, 6, ts(25)));
  EXPECT_EQ(s.num_partitions(), 6u);
  EXPECT_EQ(s.num_children(), 2u);
  EXPECT_EQ(s.fold_subtree_min(ts(100)), Timestamp::min());  // child 4 unheard
  EXPECT_TRUE(s.on_child_report(4, 6, ts(30)));
  EXPECT_EQ(s.fold_subtree_min(ts(100)), ts(25));
}

// ---------------------------------------------------------------------------
// Small live clusters: message budget and coalesced pushes
// ---------------------------------------------------------------------------

harness::RunOutput run_spec_text(const std::string& text) {
  return harness::run_one(harness::spec_from_text(text));
}

TEST(StabilizerTree, TreeClusterGossipBudgetIsLinear) {
  // p64 tree cell: per partition-round the tree sends at most one SafeUp
  // and fanout StableDowns, and cell-wide exactly 2(P-1) per beat — the
  // aggregate must stay under 2 messages per partition-round.  (The mesh
  // sends P-1 = 63.)
  const auto out = run_spec_text(R"({
    "system": "faastcc", "seed": 7,
    "cluster": {"partitions": 64, "compute_nodes": 2, "clients": 4,
                "dags_per_client": 30},
    "run": {"check_consistency": true},
    "tcc": {"stabilization_topology": "tree", "tree_fanout": 4}})");
  EXPECT_EQ(out.violations, 0u);
  const Counter* rounds = out.result.metrics.find_counter("stab.gossip_rounds");
  const Counter* msgs = out.result.metrics.find_counter("stab.gossip_msgs");
  ASSERT_NE(rounds, nullptr);
  ASSERT_NE(msgs, nullptr);
  ASSERT_GT(rounds->value(), 0u);
  EXPECT_LE(msgs->value(), 2 * rounds->value());
}

TEST(StabilizerTree, MeshAndTreeAgreeOnCommittedWork) {
  const char* base = R"({
    "system": "faastcc", "seed": 11,
    "cluster": {"partitions": 8, "compute_nodes": 2, "clients": 4,
                "dags_per_client": 40},
    "run": {"check_consistency": true}%s})";
  char mesh_spec[512], tree_spec[512];
  std::snprintf(mesh_spec, sizeof(mesh_spec), base, "");
  std::snprintf(tree_spec, sizeof(tree_spec), base,
                R"(, "tcc": {"stabilization_topology": "tree",
                             "tree_fanout": 2, "push_coalescing": true})");
  const auto mesh = run_spec_text(mesh_spec);
  const auto tree = run_spec_text(tree_spec);
  // Same workload commits either way; the topology only changes freshness.
  EXPECT_EQ(mesh.violations, 0u);
  EXPECT_EQ(tree.violations, 0u);
  EXPECT_EQ(mesh.result.committed, tree.result.committed);
  // Tree maintenance traffic is strictly below mesh at this size.
  const Counter* mm = mesh.result.metrics.find_counter("stab.gossip_msgs");
  const Counter* tm = tree.result.metrics.find_counter("stab.gossip_msgs");
  ASSERT_NE(mm, nullptr);
  ASSERT_NE(tm, nullptr);
  EXPECT_LT(tm->value(), mm->value());
}

TEST(StabilizerTree, CoalescedPushesStayOracleCleanUnderFaults) {
  const auto out = run_spec_text(R"({
    "system": "faastcc", "seed": 3, "config": "tree-lossy",
    "cluster": {"partitions": 6, "compute_nodes": 2, "clients": 4,
                "dags_per_client": 40},
    "run": {"check_consistency": true}})");
  EXPECT_EQ(out.violations, 0u) << out.violation_kind;
  EXPECT_GT(out.result.committed, 0u);
}

}  // namespace
}  // namespace faastcc::storage
