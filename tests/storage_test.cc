// Unit and protocol tests for the storage layer: MV store, stabilizer,
// TCC partitions (promises, commits, atomic visibility, pub/sub, GC) and
// the eventually consistent store.
#include <gtest/gtest.h>

#include <map>
#include <optional>

#include "net/network.h"
#include "sim/future.h"
#include "storage/eventual_store.h"
#include "storage/mv_store.h"
#include "storage/stabilizer.h"
#include "storage/storage_client.h"
#include "storage/tcc_partition.h"

namespace faastcc::storage {
namespace {

Timestamp ts(uint64_t us) { return Timestamp(us, 0, 0); }

// GCC 12 rejects braced-init-list arguments inside coroutines, so small
// helpers build the vectors the storage client takes.
std::vector<KeyValue> one_write(Key k, Value v) {
  std::vector<KeyValue> w;
  w.push_back(KeyValue{k, std::move(v)});
  return w;
}

std::vector<Key> keys_of(Key a) { return std::vector<Key>(1, a); }
std::vector<Key> keys_of(Key a, Key b, Key c) {
  std::vector<Key> v;
  v.push_back(a);
  v.push_back(b);
  v.push_back(c);
  return v;
}

std::vector<Timestamp> no_cache(size_t n) {
  return std::vector<Timestamp>(n, Timestamp::min());
}

// ---------------------------------------------------------------------------
// MvStore
// ---------------------------------------------------------------------------

TEST(MvStore, ReadAtReturnsNewestAtOrBelowSnapshot) {
  MvStore s;
  s.install(1, "a", ts(10));
  s.install(1, "b", ts(20));
  s.install(1, "c", ts(30));
  EXPECT_EQ(s.read_at(1, ts(25)).version->value, "b");
  EXPECT_EQ(s.read_at(1, ts(20)).version->value, "b");
  EXPECT_EQ(s.read_at(1, ts(19)).version->value, "a");
  EXPECT_EQ(s.read_at(1, ts(100)).version->value, "c");
}

TEST(MvStore, ReportsSuccessorTimestamp) {
  MvStore s;
  s.install(1, "a", ts(10));
  s.install(1, "b", ts(20));
  const auto r = s.read_at(1, ts(15));
  ASSERT_TRUE(r.next_ts.has_value());
  EXPECT_EQ(*r.next_ts, ts(20));
  EXPECT_FALSE(s.read_at(1, ts(25)).next_ts.has_value());
}

TEST(MvStore, MissingKeyReadsNull) {
  MvStore s;
  const auto r = s.read_at(99, ts(10));
  EXPECT_EQ(r.version, nullptr);
  EXPECT_FALSE(r.below_gc_horizon);
}

TEST(MvStore, OutOfOrderInstallKeepsChainSorted) {
  MvStore s;
  s.install(1, "c", ts(30));
  s.install(1, "a", ts(10));
  s.install(1, "b", ts(20));
  EXPECT_EQ(s.read_at(1, ts(15)).version->value, "a");
  EXPECT_EQ(s.read_at(1, ts(30)).version->value, "c");
}

TEST(MvStore, GcKeepsTheHorizonVersion) {
  MvStore s;
  s.install(1, "a", ts(10));
  s.install(1, "b", ts(20));
  s.install(1, "c", ts(30));
  EXPECT_EQ(s.gc_before(ts(25)), 1u);  // only "a" drops; "b" still serves 25
  EXPECT_EQ(s.read_at(1, ts(25)).version->value, "b");
  EXPECT_EQ(s.read_at(1, ts(100)).version->value, "c");
}

TEST(MvStore, ReadBelowGcHorizonIsFlagged) {
  MvStore s;
  s.install(1, "a", ts(10));
  s.install(1, "b", ts(20));
  s.gc_before(ts(50));
  const auto r = s.read_at(1, ts(15));
  EXPECT_EQ(r.version, nullptr);
  EXPECT_TRUE(r.below_gc_horizon);
}

TEST(MvStore, TracksBytesAndCounts) {
  MvStore s;
  s.install(1, "aaaa", ts(10));
  s.install(2, "bb", ts(20));
  EXPECT_EQ(s.num_keys(), 2u);
  EXPECT_EQ(s.num_versions(), 2u);
  EXPECT_EQ(s.value_bytes(), 6u);
  s.gc_before(ts(100));
  EXPECT_EQ(s.num_versions(), 2u);  // newest of each key survives
}

// ---- Migrated chains (elastic handoff) x GC -------------------------------

std::vector<MvStore::Version> chain_of(
    std::initializer_list<std::pair<const char*, uint64_t>> versions) {
  std::vector<MvStore::Version> out;
  for (const auto& [v, t] : versions) {
    out.push_back(MvStore::Version{Value(v), ts(t)});
  }
  return out;
}

TEST(MvStore, MigratedChainBehavesLikeLocallyInstalledOne) {
  MvStore s;
  // Out-of-order parcel: migrate_in must sort and account it.
  s.migrate_in(7, chain_of({{"c", 30}, {"a", 10}, {"b", 20}}));
  EXPECT_EQ(s.num_keys(), 1u);
  EXPECT_EQ(s.num_versions(), 3u);
  EXPECT_EQ(s.value_bytes(), 3u);
  EXPECT_EQ(s.read_at(7, ts(25)).version->value, "b");
  ASSERT_TRUE(s.oldest_ts(7).has_value());
  EXPECT_EQ(*s.oldest_ts(7), ts(10));
  EXPECT_EQ(*s.newest_ts(7), ts(30));
}

TEST(MvStore, MigrateInIsIdempotentUnderRedelivery) {
  MvStore s;
  s.install(7, "b", ts(20));  // already applied from a previous parcel
  s.migrate_in(7, chain_of({{"a", 10}, {"b", 20}}));
  s.migrate_in(7, chain_of({{"a", 10}, {"b", 20}}));  // full retry
  EXPECT_EQ(s.num_versions(), 2u);
  EXPECT_EQ(s.value_bytes(), 2u);
  EXPECT_EQ(s.read_at(7, ts(100)).version->value, "b");
}

TEST(MvStore, GcOnMigratedChainKeepsHorizonVersionAndMovesOldestTs) {
  MvStore s;
  s.migrate_in(7, chain_of({{"a", 10}, {"b", 20}, {"c", 30}}));
  EXPECT_EQ(s.gc_before(ts(25)), 1u);  // "a" drops; "b" still serves 25
  EXPECT_EQ(s.read_at(7, ts(25)).version->value, "b");
  EXPECT_EQ(s.read_at(7, ts(100)).version->value, "c");
  ASSERT_TRUE(s.oldest_ts(7).has_value());
  EXPECT_EQ(*s.oldest_ts(7), ts(20));
}

TEST(MvStore, ReadBelowGcHorizonIsFlaggedOnMigratedChain) {
  MvStore s;
  s.migrate_in(7, chain_of({{"a", 10}, {"b", 20}}));
  s.gc_before(ts(50));
  const auto r = s.read_at(7, ts(15));
  EXPECT_EQ(r.version, nullptr);
  EXPECT_TRUE(r.below_gc_horizon);
  // At or above the horizon version's timestamp the read is reliable.
  ASSERT_NE(s.read_at(7, ts(20)).version, nullptr);
  EXPECT_EQ(s.read_at(7, ts(20)).version->value, "b");
}

TEST(MvStore, ExtractChainsRemovesAccountingAndSortsByKey) {
  MvStore s;
  s.install(1, "a", ts(10));
  s.install(9, "bb", ts(20));
  s.install(9, "cc", ts(30));
  s.install(4, "d", ts(40));
  auto out = s.extract_chains([](Key k) { return k != 4; });
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].first, 1u);  // sorted by key regardless of hash order
  EXPECT_EQ(out[1].first, 9u);
  EXPECT_EQ(out[1].second.size(), 2u);
  EXPECT_EQ(s.num_keys(), 1u);
  EXPECT_EQ(s.num_versions(), 1u);
  EXPECT_EQ(s.value_bytes(), 1u);
  EXPECT_EQ(s.read_at(9, ts(100)).version, nullptr);
  // Round-trip: migrating the extracted chains into a fresh store restores
  // reads and accounting exactly.
  MvStore t;
  for (auto& [k, versions] : out) t.migrate_in(k, versions);
  EXPECT_EQ(t.num_versions(), 3u);
  EXPECT_EQ(t.value_bytes(), 5u);
  EXPECT_EQ(t.read_at(9, ts(25)).version->value, "bb");
}

// Property sweep: MvStore agrees with a trivial full-history reference
// under random installs, GCs and reads.  After gc_before(h), reads at
// snapshots >= h must still return exactly what the reference returns.
class MvStoreRandomOps : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MvStoreRandomOps, MatchesReferenceModel) {
  Rng rng(GetParam());
  MvStore store;
  // Reference: per key, sorted (ts -> value), never GC'd.
  std::map<Key, std::map<uint64_t, Value>> reference;
  uint64_t gc_horizon = 0;
  uint64_t next_ts = 1;

  for (int op = 0; op < 2000; ++op) {
    const int what = static_cast<int>(rng.next_below(10));
    if (what < 6) {  // install
      const Key k = rng.next_below(20);
      next_ts += 1 + rng.next_below(5);
      const Value v = std::to_string(next_ts);
      store.install(k, v, ts(next_ts));
      reference[k][next_ts] = v;
    } else if (what < 9) {  // read at a random snapshot >= GC horizon
      const Key k = rng.next_below(20);
      const uint64_t snap =
          gc_horizon + rng.next_below(next_ts - gc_horizon + 10);
      const auto got = store.read_at(k, ts(snap));
      const auto& chain = reference[k];
      auto it = chain.upper_bound(snap);
      if (it == chain.begin()) {
        EXPECT_EQ(got.version, nullptr);
      } else {
        auto cur = std::prev(it);
        ASSERT_NE(got.version, nullptr)
            << "key " << k << " snap " << snap << " seed " << GetParam();
        EXPECT_EQ(got.version->value, cur->second);
        EXPECT_EQ(got.version->ts, ts(cur->first));
      }
      if (it == chain.end()) {
        EXPECT_FALSE(got.next_ts.has_value());
      } else {
        ASSERT_TRUE(got.next_ts.has_value());
        EXPECT_EQ(*got.next_ts, ts(it->first));
      }
    } else {  // GC at a random horizon <= current time
      gc_horizon = std::max<uint64_t>(gc_horizon, rng.next_below(next_ts + 1));
      store.gc_before(ts(gc_horizon));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MvStoreRandomOps,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

// ---------------------------------------------------------------------------
// Stabilizer
// ---------------------------------------------------------------------------

TEST(Stabilizer, StableTimeIsMinimumOverPartitions) {
  Stabilizer s(0, 3);
  s.on_gossip(0, ts(30));
  s.on_gossip(1, ts(10));
  s.on_gossip(2, ts(20));
  EXPECT_EQ(s.stable_time(), ts(10));
}

TEST(Stabilizer, UnheardPartitionHoldsStableAtMin) {
  Stabilizer s(0, 3);
  s.on_gossip(0, ts(30));
  s.on_gossip(1, ts(10));
  EXPECT_EQ(s.stable_time(), Timestamp::min());
}

TEST(Stabilizer, StaleGossipIsIgnored) {
  Stabilizer s(0, 2);
  s.on_gossip(1, ts(50));
  s.on_gossip(1, ts(20));  // late, out-of-order gossip
  s.on_gossip(0, ts(100));
  EXPECT_EQ(s.stable_time(), ts(50));
}

TEST(Stabilizer, GossipBeyondMembershipIsCountedNotIgnored) {
  Stabilizer s(0, 2);
  s.on_gossip(0, ts(30));
  s.on_gossip(1, ts(20));
  // A joiner's gossip arriving before this partition adopts the epoch
  // bump: dropped, but observably (fix for the silent-ignore behaviour).
  EXPECT_FALSE(s.on_gossip(5, ts(40)));
  EXPECT_EQ(s.stale_drops(), 1u);
  EXPECT_EQ(s.drops(Stabilizer::DropReason::kUnknownMember), 1u);
  EXPECT_EQ(s.last_drop_reason(), Stabilizer::DropReason::kUnknownMember);
  EXPECT_EQ(s.stable_time(), ts(20));
  // After the membership catches up the same sender is accepted.
  s.extend_membership(6);
  EXPECT_TRUE(s.on_gossip(5, ts(40)));
  EXPECT_EQ(s.stale_drops(), 1u);
}

TEST(Stabilizer, StableTimeIsMonotone) {
  Stabilizer s(0, 2);
  s.on_gossip(0, ts(10));
  s.on_gossip(1, ts(10));
  Timestamp prev = s.stable_time();
  for (uint64_t t = 11; t < 100; ++t) {
    s.on_gossip(t % 2, ts(t));
    EXPECT_GE(s.stable_time(), prev);
    prev = s.stable_time();
  }
}

// ---------------------------------------------------------------------------
// TccPartition protocol (small live cluster)
// ---------------------------------------------------------------------------

class TccClusterTest : public ::testing::Test {
 protected:
  static constexpr size_t kPartitions = 3;

  TccClusterTest()
      : net_(loop_, net::NetworkParams{}, Rng(7)), client_rpc_(net_, 50) {
    TccTopology topo;
    for (size_t p = 0; p < kPartitions; ++p) {
      topo.partitions.push_back(100 + static_cast<net::Address>(p));
    }
    for (size_t p = 0; p < kPartitions; ++p) {
      TccPartitionParams params;
      params.gossip_period = milliseconds(2);
      partitions_.push_back(std::make_unique<TccPartition>(
          net_, topo.partitions[p], static_cast<PartitionId>(p),
          topo.partitions, params));
    }
    client_ = std::make_unique<TccStorageClient>(client_rpc_, topo);
    for (auto& p : partitions_) p->start();
    loop_.run_until(milliseconds(20));  // let stabilization converge
  }

  // Runs a coroutine to completion on the loop.
  template <typename F>
  void run(F&& body) {
    bool done = false;
    sim::spawn([](F f, bool& flag) -> sim::Task<void> {
      co_await f();
      flag = true;
    }(std::forward<F>(body), done));
    // Background gossip/push loops never drain the queue; step until the
    // body completes (or a generous simulated deadline trips).
    const SimTime deadline = loop_.now() + seconds(60);
    while (!done && loop_.now() < deadline) {
      loop_.run_until(loop_.now() + milliseconds(5));
    }
    ASSERT_TRUE(done);
  }

  sim::EventLoop loop_;
  net::Network net_;
  net::RpcNode client_rpc_;
  std::vector<std::unique_ptr<TccPartition>> partitions_;
  std::unique_ptr<TccStorageClient> client_;
};

TEST_F(TccClusterTest, CommitThenReadReturnsValue) {
  run([&]() -> sim::Task<void> {
    const Timestamp cts = *co_await client_->commit(
        1, one_write(5, "hello"), Timestamp::min());
    EXPECT_GT(cts, Timestamp::min());
    co_await sim::sleep_for(loop_, milliseconds(10));  // stabilization
    auto resp = *co_await client_->read(keys_of(5), no_cache(1),
                                       Timestamp::max(), nullptr);
    EXPECT_EQ(resp.entries.size(), 1u);
    EXPECT_EQ(resp.entries[0].status, TccReadResp::Status::kValue);
    EXPECT_EQ(resp.entries[0].value, "hello");
    EXPECT_EQ(resp.entries[0].ts, cts);
  });
}

TEST_F(TccClusterTest, NeverWrittenKeyReadsEmptyInitialVersion) {
  run([&]() -> sim::Task<void> {
    auto resp = *co_await client_->read(keys_of(42), no_cache(1),
                                       Timestamp::max(), nullptr);
    EXPECT_EQ(resp.entries[0].status, TccReadResp::Status::kValue);
    EXPECT_EQ(resp.entries[0].value, "");
    EXPECT_EQ(resp.entries[0].ts, Timestamp::min());
    EXPECT_TRUE(resp.entries[0].open);
  });
}

TEST_F(TccClusterTest, PromiseIsPredecessorOfNextVersion) {
  run([&]() -> sim::Task<void> {
    const Timestamp t1 =
        *co_await client_->commit(1, one_write(5, "v1"), Timestamp::min());
    const Timestamp t2 = *co_await client_->commit(2, one_write(5, "v2"), t1);
    co_await sim::sleep_for(loop_, milliseconds(10));
    // Read below t2: served version v1, promised valid until just before t2.
    auto resp =
        *co_await client_->read(keys_of(5), no_cache(1), t2.prev(), nullptr);
    EXPECT_EQ(resp.entries[0].value, "v1");
    EXPECT_EQ(resp.entries[0].promise, t2.prev());
    EXPECT_FALSE(resp.entries[0].open);
  });
}

TEST_F(TccClusterTest, LatestVersionPromiseIsStableTime) {
  run([&]() -> sim::Task<void> {
    *co_await client_->commit(1, one_write(5, "v1"), Timestamp::min());
    co_await sim::sleep_for(loop_, milliseconds(20));
    auto resp = *co_await client_->read(keys_of(5), no_cache(1),
                                       Timestamp::max(), nullptr);
    EXPECT_TRUE(resp.entries[0].open);
    EXPECT_GE(resp.entries[0].promise, resp.entries[0].ts);
    // Promise never exceeds the reported stable time for open versions.
    EXPECT_LE(resp.entries[0].promise, resp.stable_time);
  });
}

TEST_F(TccClusterTest, UnchangedResponseWhenCachedVersionCurrent) {
  run([&]() -> sim::Task<void> {
    const Timestamp t1 =
        *co_await client_->commit(1, one_write(5, "v1"), Timestamp::min());
    co_await sim::sleep_for(loop_, milliseconds(10));
    auto resp =
        *co_await client_->read(keys_of(5), std::vector<Timestamp>(1, t1), Timestamp::max(), nullptr);
    EXPECT_EQ(resp.entries[0].status, TccReadResp::Status::kUnchanged);
    EXPECT_TRUE(resp.entries[0].value.empty());  // no payload shipped
  });
}

TEST_F(TccClusterTest, CommitTimestampExceedsDependency) {
  run([&]() -> sim::Task<void> {
    const Timestamp dep(500000, 3, 1);  // far ahead of the physical clock
    const Timestamp cts =
        *co_await client_->commit(1, one_write(5, "v"), dep);
    EXPECT_GT(cts, dep);
  });
}

TEST_F(TccClusterTest, MultiPartitionCommitIsAtomicallyVisible) {
  // Keys 0, 1, 2 live on different partitions.  After a multi-partition
  // commit, a snapshot read at the stable time must see all or none.
  run([&]() -> sim::Task<void> {
    std::vector<KeyValue> writes;
    writes.push_back(KeyValue{0, "a0"});
    writes.push_back(KeyValue{1, "a1"});
    writes.push_back(KeyValue{2, "a2"});
    *co_await client_->commit(1, std::move(writes), Timestamp::min());
    // Sample immediately and repeatedly while stabilization catches up.
    for (int i = 0; i < 20; ++i) {
      auto resp = *co_await client_->read(keys_of(0, 1, 2), no_cache(3),
                                         Timestamp::max(), nullptr);
      int seen = 0;
      for (const auto& e : resp.entries) {
        if (!e.value.empty()) ++seen;
      }
      EXPECT_TRUE(seen == 0 || seen == 3) << "torn visibility: " << seen;
      co_await sim::sleep_for(loop_, milliseconds(1));
    }
    auto resp = *co_await client_->read(keys_of(0, 1, 2), no_cache(3),
                                       Timestamp::max(), nullptr);
    for (const auto& e : resp.entries) EXPECT_FALSE(e.value.empty());
  });
}

TEST_F(TccClusterTest, SnapshotReadsAreRepeatable) {
  run([&]() -> sim::Task<void> {
    const Timestamp t1 =
        *co_await client_->commit(1, one_write(5, "v1"), Timestamp::min());
    *co_await client_->commit(2, one_write(5, "v2"), t1);
    co_await sim::sleep_for(loop_, milliseconds(10));
    for (int i = 0; i < 5; ++i) {
      auto resp = *co_await client_->read(keys_of(5), no_cache(1), t1, nullptr);
      EXPECT_EQ(resp.entries[0].value, "v1");  // MVCC: old snapshot stable
    }
  });
}

TEST_F(TccClusterTest, StableTimeAdvancesWithGossip) {
  const Timestamp before = partitions_[0]->stable_time();
  loop_.run_until(loop_.now() + milliseconds(50));
  EXPECT_GT(partitions_[0]->stable_time(), before);
  // Stable time never exceeds any partition's safe time.
  for (auto& p : partitions_) {
    EXPECT_LE(partitions_[0]->stable_time(), p->safe_time());
  }
}

TEST_F(TccClusterTest, PendingPrepareHoldsBackSafeTime) {
  run([&]() -> sim::Task<void> {
    auto resp = co_await client_rpc_.call<TccPrepareResp>(
        partitions_[0]->address(), kTccPrepare,
        TccPrepareReq{77, Timestamp::min()});
    co_await sim::sleep_for(loop_, milliseconds(30));
    // With txn 77 prepared but never committed, partition 0's safe time is
    // pinned just below the prepare timestamp.
    EXPECT_EQ(partitions_[0]->safe_time(), resp.prepare_ts.prev());
    EXPECT_LE(partitions_[0]->stable_time(), resp.prepare_ts.prev());
  });
}

TEST_F(TccClusterTest, GcMakesOldSnapshotsUnreadable) {
  run([&]() -> sim::Task<void> {
    TccPartitionParams params;  // defaults: 30 s window
    const Timestamp t1 =
        *co_await client_->commit(1, one_write(5, "v1"), Timestamp::min());
    const Timestamp t2 = *co_await client_->commit(2, one_write(5, "v2"), t1);
    (void)t2;
    // Force a GC far in the future of both versions.
    partitions_[5 % kPartitions]->store().gc_before(ts(10'000'000));
    auto resp = *co_await client_->read(keys_of(5), no_cache(1), t1, nullptr);
    EXPECT_EQ(resp.entries[0].status, TccReadResp::Status::kMiss);
  });
}

TEST_F(TccClusterTest, PushNotifiesSubscribedCache) {
  // Register a bare endpoint standing in for a cache.
  std::vector<PushMsg> pushes;
  net::RpcNode cache(net_, 60);
  cache.handle_oneway(kTccPush, [&](Buffer b, net::Address) {
    pushes.push_back(decode_message<PushMsg>(b));
  });
  partitions_[5 % kPartitions]->add_subscriber(5, 60);
  run([&]() -> sim::Task<void> {
    *co_await client_->commit(1, one_write(5, "fresh"), Timestamp::min());
    co_await sim::sleep_for(loop_, milliseconds(120));  // > push period
  });
  ASSERT_FALSE(pushes.empty());
  bool saw_value = false;
  for (const auto& p : pushes) {
    for (const auto& u : p.updates) {
      if (u.key == 5 && u.value == "fresh") saw_value = true;
    }
  }
  EXPECT_TRUE(saw_value);
}

TEST_F(TccClusterTest, EmptyPushesCarryStableTimeHeartbeat) {
  std::vector<PushMsg> pushes;
  net::RpcNode cache(net_, 60);
  cache.handle_oneway(kTccPush, [&](Buffer b, net::Address) {
    pushes.push_back(decode_message<PushMsg>(b));
  });
  partitions_[0]->add_subscriber(0, 60);
  loop_.run_until(loop_.now() + milliseconds(200));
  ASSERT_GE(pushes.size(), 2u);
  EXPECT_GT(pushes.back().stable_time, pushes.front().stable_time);
  for (const auto& p : pushes) EXPECT_EQ(p.partition, 0u);
}

// ---------------------------------------------------------------------------
// Eventual store
// ---------------------------------------------------------------------------

class EvClusterTest : public ::testing::Test {
 protected:
  EvClusterTest()
      : net_(loop_, net::NetworkParams{}, Rng(7)), client_rpc_(net_, 50) {
    EvTopology topo;
    topo.replicas = {{100, 101}, {110, 111}};
    std::vector<net::Address> all{100, 101, 110, 111};
    EventualStoreParams params;
    params.gossip_period = milliseconds(5);
    params.cut_period = milliseconds(20);
    uint64_t id = 0;
    for (size_t p = 0; p < 2; ++p) {
      for (size_t r = 0; r < 2; ++r) {
        std::vector<net::Address> peers{topo.replicas[p][1 - r]};
        replicas_.push_back(std::make_unique<EvReplica>(
            net_, topo.replicas[p][r], id++, peers, all, params));
      }
    }
    client_ = std::make_unique<EvStorageClient>(client_rpc_, topo, Rng(3));
    for (auto& r : replicas_) r->start();
  }

  template <typename F>
  void run(F&& body) {
    bool done = false;
    sim::spawn([](F f, bool& flag) -> sim::Task<void> {
      co_await f();
      flag = true;
    }(std::forward<F>(body), done));
    // Background gossip/push loops never drain the queue; step until the
    // body completes (or a generous simulated deadline trips).
    const SimTime deadline = loop_.now() + seconds(60);
    while (!done && loop_.now() < deadline) {
      loop_.run_until(loop_.now() + milliseconds(5));
    }
    ASSERT_TRUE(done);
  }

  sim::EventLoop loop_;
  net::Network net_;
  net::RpcNode client_rpc_;
  std::vector<std::unique_ptr<EvReplica>> replicas_;
  std::unique_ptr<EvStorageClient> client_;
};

TEST_F(EvClusterTest, PutAssignsIncreasingCounters) {
  run([&]() -> sim::Task<void> {
    EvItem item;
    item.key = 4;
    item.payload = "x";
    auto v1 = *co_await client_->put(std::vector<EvItem>(1, item));
    auto v2 = *co_await client_->put(std::vector<EvItem>(1, item));
    EXPECT_GE(v2[0].counter, v1[0].counter);
  });
}

TEST_F(EvClusterTest, GossipPropagatesToPeerReplica) {
  run([&]() -> sim::Task<void> {
    EvItem item;
    item.key = 0;  // partition 0: replicas 100, 101
    item.payload = "gossiped";
    *co_await client_->put(std::vector<EvItem>(1, item));
    co_await sim::sleep_for(loop_, milliseconds(30));
    EXPECT_NE(replicas_[0]->peek(0), nullptr);
    EXPECT_NE(replicas_[1]->peek(0), nullptr);
    EXPECT_EQ(replicas_[1]->peek(0)->payload, "gossiped");
  });
}

TEST_F(EvClusterTest, LwwMergeKeepsHighestVersion) {
  EvItem low;
  low.key = 0;
  low.version = EvVersion{5, 1};
  low.payload = "low";
  EvItem high;
  high.key = 0;
  high.version = EvVersion{9, 1};
  high.payload = "high";
  replicas_[0]->preload(high);
  replicas_[0]->preload(low);  // stale arrival
  EXPECT_EQ(replicas_[0]->peek(0)->payload, "high");
}

TEST_F(EvClusterTest, LwwTieBrokenByWriter) {
  EvItem a;
  a.key = 0;
  a.version = EvVersion{5, 1};
  a.payload = "writer1";
  EvItem b;
  b.key = 0;
  b.version = EvVersion{5, 2};
  b.payload = "writer2";
  replicas_[0]->preload(a);
  replicas_[0]->preload(b);
  EXPECT_EQ(replicas_[0]->peek(0)->payload, "writer2");
}

TEST_F(EvClusterTest, StaleReadsArePossibleBeforeGossip) {
  run([&]() -> sim::Task<void> {
    EvItem item;
    item.key = 0;
    item.payload = "fresh";
    *co_await client_->put(std::vector<EvItem>(1, item));
    // Immediately after the put, at most one replica has the write.
    const bool at0 = replicas_[0]->peek(0) != nullptr;
    const bool at1 = replicas_[1]->peek(0) != nullptr;
    EXPECT_NE(at0, at1);
  });
}

TEST_F(EvClusterTest, GlobalCutAdvances) {
  run([&]() -> sim::Task<void> {
    co_await sim::sleep_for(loop_, milliseconds(200));
    EvItem item;
    item.key = 0;
    item.payload = "x";
    *co_await client_->put(std::vector<EvItem>(1, item));
    const SimTime cut = client_->global_cut();
    EXPECT_GT(cut, 0);
    EXPECT_LE(cut, loop_.now());
  });
}

TEST_F(EvClusterTest, SubscribedCacheReceivesPush) {
  std::vector<EvGossipMsg> pushes;
  net::RpcNode cache(net_, 60);
  cache.handle_oneway(kEvPush, [&](Buffer b, net::Address) {
    pushes.push_back(decode_message<EvGossipMsg>(b));
  });
  replicas_[0]->add_subscriber(0, 60);
  run([&]() -> sim::Task<void> {
    EvItem item;
    item.key = 0;
    item.payload = "pushed";
    // Put repeatedly so the accepting replica is eventually replica 100.
    for (int i = 0; i < 4; ++i) *co_await client_->put(std::vector<EvItem>(1, item));
    co_await sim::sleep_for(loop_, milliseconds(150));
  });
  ASSERT_FALSE(pushes.empty());
  EXPECT_EQ(pushes[0].items[0].key, 0u);
}

}  // namespace
}  // namespace faastcc::storage
