// Quickstart: stand up a FaaSTCC cluster, register functions, run a
// composition (DAG) as one causally consistent transaction.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/example_quickstart
#include <cstdio>

#include "harness/cluster.h"

using namespace faastcc;
using harness::Cluster;
using harness::ClusterParams;
using harness::SystemKind;

namespace {

faas::FunctionSpec make_fn(std::string name,
                           std::vector<uint32_t> children = {}) {
  faas::FunctionSpec f;
  f.name = std::move(name);
  f.children = std::move(children);
  return f;
}

}  // namespace

int main() {
  // 1. Describe the cluster: a TCC storage layer (4 partitions), compute
  //    nodes with promise-aware caches, a scheduler.  Everything runs on a
  //    deterministic simulated network.
  ClusterParams params;
  params.system = SystemKind::kFaasTcc;
  params.partitions = 4;
  params.compute_nodes = 3;
  params.clients = 0;  // we drive DAGs by hand below
  params.workload.num_keys = 100;
  Cluster cluster(params);

  // 2. Register the functions that make up the application.  A function
  //    reads and writes through its transaction handle; the platform
  //    passes its result (and the DAG context) to its children.
  cluster.registry().register_function(
      "greet", [](faas::ExecEnv& env) -> sim::Task<Buffer> {
        env.txn.write(1, "hello");
        std::printf("  [greet]  wrote key 1 (buffered, not yet visible)\n");
        co_return Buffer{};
      });
  cluster.registry().register_function(
      "amplify", [](faas::ExecEnv& env) -> sim::Task<Buffer> {
        // Reads its upstream's write from the DAG context — read-your-writes
        // across workers — plus a key from storage, from one snapshot.
        std::vector<Key> keys{1, 2};
        auto values = co_await env.txn.read(std::move(keys));
        if (!values.has_value()) {
          env.abort_requested = true;
          co_return Buffer{};
        }
        std::printf("  [amplify] read key 1 = \"%s\", key 2 = \"%s\"\n",
                    std::string((*values)[0].view()).c_str(),
                    std::string((*values)[1].view()).c_str());
        env.txn.write(3, std::string((*values)[0].view()) + ", world");
        co_return Buffer{};
      });

  // 3. Start the cluster (pre-loads the dataset, runs the stabilization
  //    warm-up) and submit the composition.  The whole DAG commits
  //    atomically at its sink.
  cluster.start();

  net::RpcNode client(cluster.network(), 900);
  bool finished = false;
  client.handle_oneway(faas::kDagDone, [&](Buffer b, net::Address) {
    auto done = decode_message<faas::DagDoneMsg>(b);
    std::printf("DAG %s\n", done.committed ? "committed" : "aborted");
    finished = true;
  });

  faas::StartDagMsg start;
  start.txn_id = 1;
  start.client = 900;
  start.spec = faas::DagSpec::chain({make_fn("greet"), make_fn("amplify")});
  std::printf("submitting greet -> amplify ...\n");
  client.send(cluster.scheduler_address(), faas::kStartDag, start);

  while (!finished && cluster.loop().now() < seconds(10)) {
    cluster.loop().run_until(cluster.loop().now() + milliseconds(5));
  }

  // 4. The committed writes are now atomically visible in the TCC store.
  cluster.loop().run_until(cluster.loop().now() + milliseconds(50));
  for (Key k : {Key{1}, Key{3}}) {
    const auto& partition = cluster.tcc_partitions()[k % params.partitions];
    const auto r = partition->store().read_at(k, Timestamp::max());
    std::printf("storage key %llu = \"%s\" @ %s\n",
                static_cast<unsigned long long>(k),
                r.version != nullptr
                    ? std::string(r.version->value.view()).c_str()
                    : "(none)",
                r.version != nullptr ? r.version->ts.to_string().c_str() : "-");
  }
  return finished ? 0 : 1;
}
