// Standard experiment configurations matching the paper's setup (§6.1),
// plus environment-variable scaling so benchmarks can run quickly during
// development (FAASTCC_DAGS=<n> overrides DAGs per client).
#pragma once

#include "harness/cluster.h"

namespace faastcc::harness {

struct ExperimentConfig {
  SystemKind system = SystemKind::kFaasTcc;
  double zipf = 1.0;
  bool static_txns = false;
  int dag_size = 6;
  size_t cache_capacity = SIZE_MAX;
  client::FaasTccConfig faastcc;
  uint64_t seed = 42;
  int dags_per_client = 0;  // 0 => default (paper: 1000, or FAASTCC_DAGS)
};

// DAGs per client used by the benches: FAASTCC_DAGS env var, else `fallback`.
int bench_dags_per_client(int fallback = 1000);

// Builds the full ClusterParams for a standard paper-style run.
ClusterParams make_params(const ExperimentConfig& cfg);

// Convenience: build + run.
RunResult run_experiment(const ExperimentConfig& cfg);

}  // namespace faastcc::harness
