// Fixed-width table printing for the benchmark binaries.  Every bench
// prints the paper's reference numbers next to the measured ones.
#pragma once

#include <string>
#include <vector>

namespace faastcc::harness {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  void print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

std::string fmt(double v, int precision = 1);
std::string fmt_bytes(double v);

void print_title(const std::string& title);

}  // namespace faastcc::harness
