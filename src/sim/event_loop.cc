#include "sim/event_loop.h"

#include <utility>

namespace faastcc::sim {

void EventLoop::schedule_at(SimTime t, std::function<void()> fn) {
  if (t < now_) t = now_;
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

bool EventLoop::run_one() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; the handler is moved out via const_cast,
  // which is safe because the element is popped immediately afterwards.
  auto& top = const_cast<Event&>(queue_.top());
  now_ = top.time;
  auto fn = std::move(top.fn);
  queue_.pop();
  ++processed_;
  fn();
  return true;
}

void EventLoop::run() {
  stopped_ = false;
  while (!stopped_ && run_one()) {
  }
}

void EventLoop::run_until(SimTime t) {
  stopped_ = false;
  while (!stopped_ && !queue_.empty() && queue_.top().time <= t) {
    run_one();
  }
  if (now_ < t) now_ = t;
}

}  // namespace faastcc::sim
