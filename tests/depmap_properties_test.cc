// Property tests for the dependency-metadata engine (cache/hydro_types).
//
// Strategy, following the tcc_properties_test harness style: drive
// randomized operation sequences against both the flat COW `DepMap` and a
// deliberately naive reference model (a `std::map` replaying the
// documented require/mark_read/merge/gc/restrict semantics — effectively
// the pre-rewrite hash-map implementation), then compare observable
// content after every step.  On top of the differential, the algebraic
// laws the merge relies on are checked directly: commutativity,
// associativity, idempotence, and the canonical (sorted, insertion-order
// independent) wire encoding.
//
// One deliberate divergence from the pre-rewrite code is baked into the
// model: a `read` entry's `level` is pinned at 0 (canonical form).  No
// consumer reads a read-entry's level, and the pin is what makes merge
// commutative, so the differential compares `level` only for non-read
// entries.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <unordered_set>
#include <vector>

#include "cache/hydro_types.h"
#include "common/rng.h"

namespace faastcc::cache {
namespace {

// ---------------------------------------------------------------------------
// Reference model.
// ---------------------------------------------------------------------------

struct ModelDep {
  uint64_t counter = 0;
  SimTime written_at = 0;
  bool read = false;
  uint8_t level = 0;
};
using Model = std::map<Key, ModelDep>;

void model_require(Model& m, Key k, uint64_t counter, SimTime written_at,
                   uint8_t level) {
  auto [it, inserted] = m.emplace(k, ModelDep{counter, written_at, false, level});
  if (inserted) return;
  ModelDep& d = it->second;
  if (counter > d.counter) {
    d.counter = counter;
    d.written_at = written_at;
    d.level = d.read ? 0 : level;
  } else if (counter == d.counter && !d.read) {
    d.level = std::min(d.level, level);
  }
}

void model_mark_read(Model& m, Key k, uint64_t counter, SimTime written_at) {
  auto [it, inserted] = m.emplace(k, ModelDep{counter, written_at, true, 0});
  if (inserted) return;
  ModelDep& d = it->second;
  if (counter > d.counter) {
    d.counter = counter;
    d.written_at = written_at;
  }
  d.read = true;
  d.level = 0;
}

void model_merge(Model& a, const Model& b) {
  for (const auto& [k, d] : b) {
    if (d.read) {
      model_mark_read(a, k, d.counter, d.written_at);
    } else {
      model_require(a, k, d.counter, d.written_at, d.level);
    }
  }
}

void model_gc(Model& m, SimTime horizon) {
  for (auto it = m.begin(); it != m.end();) {
    if (!it->second.read && it->second.written_at < horizon) {
      it = m.erase(it);
    } else {
      ++it;
    }
  }
}

void model_restrict(Model& m, const std::unordered_set<Key>& keys) {
  // Post-fix semantics: read markers are never dropped.
  for (auto it = m.begin(); it != m.end();) {
    if (!it->second.read && keys.count(it->first) == 0) {
      it = m.erase(it);
    } else {
      ++it;
    }
  }
}

// Observable equality: counter / written_at / read everywhere, level only
// where the entry is not a read marker (see file comment).
void expect_equivalent(const DepMap& map, const Model& model,
                       const char* what) {
  ASSERT_EQ(map.size(), model.size()) << what;
  for (const auto& [k, d] : model) {
    const Dep* got = map.find(k);
    ASSERT_NE(got, nullptr) << what << " key " << k;
    EXPECT_EQ(got->counter, d.counter) << what << " key " << k;
    EXPECT_EQ(got->written_at, d.written_at) << what << " key " << k;
    EXPECT_EQ(got->read, d.read) << what << " key " << k;
    if (!d.read) EXPECT_EQ(got->level, d.level) << what << " key " << k;
  }
  // And the iteration agrees (also exercises the sorted-order contract).
  Key prev = 0;
  size_t n = 0;
  for (const auto& [k, d] : map) {
    if (n > 0) {
      EXPECT_LT(prev, k) << what << ": iteration not sorted";
    }
    prev = k;
    ++n;
    EXPECT_EQ(model.count(k), 1u) << what << " extra key " << k;
  }
  EXPECT_EQ(n, model.size()) << what;
}

// ---------------------------------------------------------------------------
// Randomized operation sequences.
// ---------------------------------------------------------------------------

constexpr Key kKeySpace = 32;      // tiny: lots of per-key collisions
constexpr uint64_t kMaxCounter = 40;

// written_at is a function of (key, counter): one version, one install
// time — the invariant real data obeys and merge's written_at-rides-with-
// counter rule depends on.
SimTime wa(Key k, uint64_t counter) {
  return static_cast<SimTime>(counter * 100 + k);
}

struct Op {
  enum Kind { kRequire, kMarkRead } kind = kRequire;
  Key key = 0;
  uint64_t counter = 0;
  uint8_t level = 0;
};

Op random_op(Rng& rng) {
  Op op;
  op.kind = rng.next_bool(0.3) ? Op::kMarkRead : Op::kRequire;
  op.key = rng.next_below(kKeySpace);
  op.counter = 1 + rng.next_below(kMaxCounter);
  op.level = static_cast<uint8_t>(rng.next_below(3));
  return op;
}

void apply(DepMap& m, const Op& op) {
  if (op.kind == Op::kMarkRead) {
    m.mark_read(op.key, op.counter, wa(op.key, op.counter));
  } else {
    m.require(op.key, op.counter, wa(op.key, op.counter), op.level);
  }
}

void apply(Model& m, const Op& op) {
  if (op.kind == Op::kMarkRead) {
    model_mark_read(m, op.key, op.counter, wa(op.key, op.counter));
  } else {
    model_require(m, op.key, op.counter, wa(op.key, op.counter), op.level);
  }
}

DepMap build_map(const std::vector<Op>& ops) {
  DepMap m;
  for (const Op& op : ops) apply(m, op);
  return m;
}

Model build_model(const std::vector<Op>& ops) {
  Model m;
  for (const Op& op : ops) apply(m, op);
  return m;
}

std::vector<Op> random_ops(Rng& rng, size_t n) {
  std::vector<Op> ops;
  ops.reserve(n);
  for (size_t i = 0; i < n; ++i) ops.push_back(random_op(rng));
  return ops;
}

Buffer encoded(const DepMap& m) {
  BufWriter w;
  m.encode(w);
  return w.take();
}

void expect_same_content(const DepMap& a, const DepMap& b, const char* what) {
  EXPECT_EQ(encoded(a), encoded(b)) << what;
}

// ---------------------------------------------------------------------------
// Old-vs-new differential over full op sequences (including merge, gc,
// restrict and an encode/decode round trip after every phase).
// ---------------------------------------------------------------------------

class Differential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Differential, RandomOpSequencesMatchModel) {
  Rng rng(GetParam());
  DepMap map;
  Model model;
  for (int step = 0; step < 400; ++step) {
    const int action = static_cast<int>(rng.next_below(100));
    if (action < 70) {
      const Op op = random_op(rng);
      apply(map, op);
      apply(model, op);
    } else if (action < 80) {
      // Merge a small random second map into both.
      const std::vector<Op> ops = random_ops(rng, rng.next_below(30));
      const DepMap other = build_map(ops);
      const Model other_model = build_model(ops);
      map.merge(other);
      model_merge(model, other_model);
    } else if (action < 88) {
      const SimTime horizon =
          static_cast<SimTime>(rng.next_below(kMaxCounter * 100));
      map.gc_before(horizon);
      model_gc(model, horizon);
    } else if (action < 94) {
      std::unordered_set<Key> keep;
      for (Key k = 0; k < kKeySpace; ++k) {
        if (rng.next_bool(0.5)) keep.insert(k);
      }
      map.restrict_to(keep);
      model_restrict(model, keep);
    } else {
      // Encode/decode round trip must be the identity on content.
      const Buffer b = encoded(map);
      BufReader r(b);
      map = DepMap::decode(r);
    }
    if (step % 20 == 0 || step == 399) {
      expect_equivalent(map, model, "differential");
      if (HasFatalFailure()) return;
    }
  }
  expect_equivalent(map, model, "differential (final)");
}

INSTANTIATE_TEST_SUITE_P(Seeds, Differential,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

// ---------------------------------------------------------------------------
// Algebraic laws of merge.
// ---------------------------------------------------------------------------

class MergeLaws : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MergeLaws, Commutative) {
  Rng rng(GetParam());
  const std::vector<Op> oa = random_ops(rng, 60);
  const std::vector<Op> ob = random_ops(rng, 60);
  DepMap ab = build_map(oa);
  ab.merge(build_map(ob));
  DepMap ba = build_map(ob);
  ba.merge(build_map(oa));
  expect_same_content(ab, ba, "merge commutativity");
}

TEST_P(MergeLaws, Associative) {
  Rng rng(GetParam() + 1000);
  const std::vector<Op> oa = random_ops(rng, 40);
  const std::vector<Op> ob = random_ops(rng, 40);
  const std::vector<Op> oc = random_ops(rng, 40);
  DepMap left = build_map(oa);   // (a ∪ b) ∪ c
  left.merge(build_map(ob));
  left.merge(build_map(oc));
  DepMap bc = build_map(ob);     // a ∪ (b ∪ c)
  bc.merge(build_map(oc));
  DepMap right = build_map(oa);
  right.merge(bc);
  expect_same_content(left, right, "merge associativity");
}

TEST_P(MergeLaws, Idempotent) {
  Rng rng(GetParam() + 2000);
  const std::vector<Op> ops = random_ops(rng, 80);
  DepMap m = build_map(ops);
  const Buffer before = encoded(m);
  m.merge(build_map(ops));  // distinct map, same content
  EXPECT_EQ(encoded(m), before) << "merge idempotence";
  DepMap self = build_map(ops);
  self.merge(self);  // aliasing self-merge
  EXPECT_EQ(encoded(self), before) << "self-merge idempotence";
}

INSTANTIATE_TEST_SUITE_P(Seeds, MergeLaws,
                         ::testing::Values(11u, 12u, 13u, 14u, 15u));

// ---------------------------------------------------------------------------
// require / mark_read pointwise semantics.
// ---------------------------------------------------------------------------

TEST(DepMapProperties, RequireKeepsMaxCounterStickyReadMinLevel) {
  Rng rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    DepMap m;
    uint64_t max_counter = 0;
    bool read = false;
    uint8_t min_level_at_max = 255;
    const int n = 1 + static_cast<int>(rng.next_below(12));
    for (int i = 0; i < n; ++i) {
      const Op op = random_op(rng);
      Op pinned = op;
      pinned.key = 7;  // single key: pure pointwise semantics
      apply(m, pinned);
      if (pinned.counter > max_counter) {
        max_counter = pinned.counter;
        min_level_at_max = pinned.kind == Op::kMarkRead ? 0 : pinned.level;
      } else if (pinned.counter == max_counter) {
        min_level_at_max = std::min(
            min_level_at_max,
            pinned.kind == Op::kMarkRead ? uint8_t{0} : pinned.level);
      }
      read = read || pinned.kind == Op::kMarkRead;
    }
    const Dep* d = m.find(7);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->counter, max_counter);
    EXPECT_EQ(d->written_at, wa(7, max_counter));
    EXPECT_EQ(d->read, read);
    if (read) {
      EXPECT_EQ(d->level, 0) << "read entries are canonical at level 0";
    } else {
      EXPECT_EQ(d->level, min_level_at_max);
    }
  }
}

TEST(DepMapProperties, GcInvariants) {
  Rng rng(88);
  for (int trial = 0; trial < 50; ++trial) {
    DepMap m = build_map(random_ops(rng, 120));
    const DepMap before = m;  // COW snapshot
    const SimTime horizon =
        static_cast<SimTime>(rng.next_below(kMaxCounter * 100));
    m.gc_before(horizon);
    size_t expected = 0;
    for (const auto& [k, d] : before) {
      const bool survives = d.read || d.written_at >= horizon;
      if (survives) ++expected;
      const Dep* got = m.find(k);
      if (survives) {
        ASSERT_NE(got, nullptr) << "gc dropped a live entry, key " << k;
        EXPECT_EQ(got->counter, d.counter);
      } else {
        EXPECT_EQ(got, nullptr) << "gc kept a dead entry, key " << k;
      }
    }
    EXPECT_EQ(m.size(), expected);
  }
}

TEST(DepMapProperties, RestrictInvariants) {
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    DepMap m = build_map(random_ops(rng, 120));
    const DepMap before = m;  // COW snapshot
    std::unordered_set<Key> keep;
    for (Key k = 0; k < kKeySpace; ++k) {
      if (rng.next_bool(0.4)) keep.insert(k);
    }
    m.restrict_to(keep);
    for (const auto& [k, d] : before) {
      const Dep* got = m.find(k);
      if (d.read) {
        ASSERT_NE(got, nullptr)
            << "restrict_to dropped a read marker, key " << k;
        EXPECT_TRUE(got->read);
      } else if (keep.count(k) != 0) {
        ASSERT_NE(got, nullptr) << "restrict_to dropped a kept key " << k;
      } else {
        EXPECT_EQ(got, nullptr) << "restrict_to kept a pruned key " << k;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Canonical encoding.
// ---------------------------------------------------------------------------

TEST(DepMapProperties, EncodeIsInsertionOrderIndependent) {
  Rng rng(123);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<Op> ops = random_ops(rng, 80);
    const DepMap a = build_map(ops);
    // The final content is a pointwise function of the op multiset
    // (max counter, or'd read, min level at max), so any permutation
    // must encode to the same canonical bytes.
    for (size_t i = ops.size(); i > 1; --i) {
      std::swap(ops[i - 1], ops[rng.next_below(i)]);
    }
    const DepMap b = build_map(ops);
    EXPECT_EQ(encoded(a), encoded(b)) << "trial " << trial;
  }
}

TEST(DepMapProperties, EncodeDecodeIsIdentityAndSorted) {
  Rng rng(321);
  for (int trial = 0; trial < 50; ++trial) {
    const DepMap m = build_map(random_ops(rng, 100));
    const Buffer b = encoded(m);
    EXPECT_EQ(b.size(), m.wire_bytes());
    // Wire order is strictly ascending by raw key.
    BufReader scan(b);
    const uint32_t n = scan.get_u32();
    Key prev = 0;
    for (uint32_t i = 0; i < n; ++i) {
      const Key k = scan.get_u64();
      scan.get_u64();
      scan.get_i64();
      scan.get_bool();
      scan.get_u8();
      if (i > 0) {
        EXPECT_LT(prev, k) << "wire not sorted at " << i;
      }
      prev = k;
    }
    EXPECT_TRUE(scan.done());
    BufReader r(b);
    const DepMap back = DepMap::decode(r);
    EXPECT_EQ(encoded(back), b) << "decode∘encode not the identity";
  }
}

// Decode accepts a non-canonical (unsorted) stream and canonicalizes it.
TEST(DepMapProperties, DecodeCanonicalizesUnsortedInput) {
  BufWriter w;
  w.put_u32(3);
  for (Key k : {Key{9}, Key{2}, Key{5}}) {
    w.put_u64(k);
    w.put_u64(k + 1);         // counter
    w.put_i64(static_cast<int64_t>(k * 10));
    w.put_bool(false);
    w.put_u8(1);
  }
  const Buffer b = w.take();
  BufReader r(b);
  const DepMap m = DepMap::decode(r);
  EXPECT_EQ(m.size(), 3u);
  const Buffer canon = encoded(m);
  BufReader scan(canon);
  scan.get_u32();
  EXPECT_EQ(scan.get_u64(), 2u);  // re-encoded in key order
}

// ---------------------------------------------------------------------------
// Copy-on-write sharing: copies are snapshots, mutation never leaks
// through a shared node.
// ---------------------------------------------------------------------------

TEST(DepMapProperties, CowCopiesAreIndependentSnapshots) {
  Rng rng(555);
  DepMap a = build_map(random_ops(rng, 100));
  const Buffer before = encoded(a);
  DepMap b = a;  // shares the node
  b.mark_read(kKeySpace + 5, 9, 1);
  b.require(3, 1000, wa(3, 1000), 2);
  b.gc_before(2000);
  EXPECT_EQ(encoded(a), before) << "mutating a copy leaked into the source";
  DepMap c = a;
  c.merge(b);
  EXPECT_EQ(encoded(a), before) << "merge into a copy leaked into the source";
}

}  // namespace
}  // namespace faastcc::cache
