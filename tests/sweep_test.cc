// Sweep engine: plan expansion and the byte-identical merge guarantee.
#include <gtest/gtest.h>

#include "harness/sweep.h"

namespace faastcc::harness {
namespace {

// An 8-run plan small enough for a unit test: 2 configs x 2 zipf points x
// 2 seeds on a tiny oracle-checked cluster.
const char* kPlanText = R"({
  "schema": "faastcc.sweep_plan.v1",
  "base": {
    "system": "faastcc",
    "cluster": {"partitions": 3, "compute_nodes": 2, "clients": 3,
                "dags_per_client": 8},
    "workload": {"num_keys": 64},
    "run": {"check_consistency": true}
  },
  "axes": [
    {"name": "config", "configs": ["clean", "lossy"]},
    {"name": "zipf", "values": [
      {"label": "z0.8", "set": {"workload": {"zipf": 0.8}}},
      {"label": "z1.2", "set": {"workload": {"zipf": 1.2}}}
    ]},
    {"name": "seed", "seeds": {"base": 1, "count": 2}}
  ]
})";

TEST(SweepPlan, ExpandsTheCartesianProductInAxisOrder) {
  const SweepPlan plan = SweepPlan::from_text(kPlanText);
  ASSERT_EQ(plan.items.size(), 8u);
  EXPECT_EQ(plan.items[0].id, "clean/z0.8/s1");
  EXPECT_EQ(plan.items[1].id, "clean/z0.8/s2");
  EXPECT_EQ(plan.items[2].id, "clean/z1.2/s1");
  EXPECT_EQ(plan.items[7].id, "lossy/z1.2/s2");

  EXPECT_EQ(plan.items[0].spec.config, "clean");
  EXPECT_EQ(plan.items[7].spec.config, "lossy");
  EXPECT_DOUBLE_EQ(plan.items[0].spec.params.workload.zipf, 0.8);
  EXPECT_DOUBLE_EQ(plan.items[7].spec.params.workload.zipf, 1.2);
  EXPECT_EQ(plan.items[0].spec.params.seed, 1u);
  EXPECT_EQ(plan.items[7].spec.params.seed, 2u);
  // Base fields reach every item.
  for (const SweepItem& item : plan.items) {
    EXPECT_EQ(item.spec.params.partitions, 3u);
    EXPECT_TRUE(item.spec.params.check_consistency);
  }
}

TEST(SweepPlan, EmptyAxesGiveOneBaseRun) {
  const SweepPlan plan =
      SweepPlan::from_text(R"({"base": {"seed": 9}})");
  ASSERT_EQ(plan.items.size(), 1u);
  EXPECT_EQ(plan.items[0].spec.params.seed, 9u);
}

TEST(SweepPlan, RejectsMalformedPlans) {
  EXPECT_THROW(SweepPlan::from_text("not json"), SpecError);
  EXPECT_THROW(SweepPlan::from_text(R"({"schema": "bogus.v0"})"), SpecError);
  EXPECT_THROW(SweepPlan::from_text(R"({"extra": 1})"), SpecError);
  EXPECT_THROW(SweepPlan::from_text(R"({"axes": [{"name": "x"}]})"),
               SpecError);
  EXPECT_THROW(SweepPlan::from_text(
                   R"({"axes": [{"values": [{"set": {}}]}]})"),
               SpecError);
  EXPECT_THROW(SweepPlan::from_text(
                   R"({"axes": [{"seeds": {"base": 1}}]})"),
               SpecError);
  EXPECT_THROW(
      SweepPlan::from_text(
          R"({"base": {"cluster": {"no_such_field": 1}}})"),
      SpecError);
}

TEST(Sweep, MergedArtifactIsByteIdenticalAcrossJobs) {
  const SweepPlan plan = SweepPlan::from_text(kPlanText);

  SweepOptions serial;
  serial.jobs = 1;
  const std::string merged1 = merge_to_json(plan, run_sweep(plan, serial));

  for (int jobs : {2, 4, 8}) {
    SweepOptions opts;
    opts.jobs = jobs;
    const std::string merged = merge_to_json(plan, run_sweep(plan, opts));
    EXPECT_EQ(merged, merged1) << "jobs=" << jobs;
  }

  // Repeat runs are byte-identical too (no wall-clock in the artifact).
  const std::string merged_again =
      merge_to_json(plan, run_sweep(plan, serial));
  EXPECT_EQ(merged_again, merged1);
}

TEST(Sweep, MergedArtifactCarriesRunsCellsAndTotals) {
  const SweepPlan plan = SweepPlan::from_text(kPlanText);
  SweepOptions opts;
  opts.jobs = 2;
  const SweepResult result = run_sweep(plan, opts);
  EXPECT_EQ(result.runs, 8u);
  EXPECT_EQ(result.runs_with_violations, 0u);
  EXPECT_GT(result.total_committed, 0u);

  const json::Value doc = json::parse(merge_to_json(plan, result));
  EXPECT_EQ(doc.find("schema")->as_string(), "faastcc.sweep.v1");
  ASSERT_EQ(doc.find("runs")->items.size(), 8u);
  const json::Value& first = doc.find("runs")->items[0];
  EXPECT_EQ(first.find("id")->as_string(), "clean/z0.8/s1");
  EXPECT_TRUE(first.find("result")->find("oracle")->find("checked")
                  ->as_bool());
  // 2 configs x 2 zipf points = 4 cells, each aggregating 2 seeds.
  ASSERT_EQ(doc.find("cells")->items.size(), 4u);
  for (const json::Value& cell : doc.find("cells")->items) {
    EXPECT_EQ(cell.find("runs")->as_u64(), 2u);
    EXPECT_EQ(cell.find("violations")->as_u64(), 0u);
  }
  EXPECT_EQ(doc.find("totals")->find("runs")->as_u64(), 8u);
  EXPECT_EQ(doc.find("totals")->find("committed")->as_u64(),
            result.total_committed);
}

TEST(Sweep, ViolationsAreReportedInPlanOrder) {
  // chaos-lost-ack reproduces a historical bug deterministically, so the
  // sweep must attribute the violation to the right run under any jobs.
  const char* plan_text = R"({
    "base": {
      "system": "faastcc",
      "cluster": {"partitions": 3, "compute_nodes": 2, "clients": 3,
                  "dags_per_client": 8},
      "workload": {"num_keys": 64},
      "run": {"check_consistency": true}
    },
    "axes": [
      {"name": "config", "configs": ["clean", "chaos-lost-ack"]},
      {"name": "seed", "seeds": {"base": 1, "count": 2}}
    ]
  })";
  const SweepPlan plan = SweepPlan::from_text(plan_text);

  SweepOptions serial;
  serial.jobs = 1;
  const SweepResult r1 = run_sweep(plan, serial);
  SweepOptions parallel;
  parallel.jobs = 4;
  const SweepResult r4 = run_sweep(plan, parallel);

  ASSERT_NE(r1.first_violation, SIZE_MAX);
  EXPECT_EQ(r1.first_violation, r4.first_violation);
  const RunRecord& rec1 = r1.records[r1.first_violation];
  const RunRecord& rec4 = r4.records[r4.first_violation];
  EXPECT_EQ(rec1.id, rec4.id);
  EXPECT_EQ(rec1.violation_kind, rec4.violation_kind);
  EXPECT_EQ(rec1.json, rec4.json);
  EXPECT_EQ(merge_to_json(plan, r1), merge_to_json(plan, r4));
}

TEST(Sweep, SerialStopOnViolationStopsEarlyWithTheSameFirstVerdict) {
  const char* plan_text = R"({
    "base": {
      "system": "faastcc",
      "cluster": {"partitions": 3, "compute_nodes": 2, "clients": 3,
                  "dags_per_client": 8},
      "workload": {"num_keys": 64},
      "run": {"check_consistency": true}
    },
    "axes": [
      {"name": "config", "configs": ["chaos-lost-ack", "clean"]},
      {"name": "seed", "seeds": {"base": 1, "count": 2}}
    ]
  })";
  const SweepPlan plan = SweepPlan::from_text(plan_text);
  SweepOptions opts;
  opts.jobs = 1;
  opts.stop_on_violation = true;
  const SweepResult r = run_sweep(plan, opts);
  ASSERT_NE(r.first_violation, SIZE_MAX);
  EXPECT_EQ(r.records[r.first_violation].id, "chaos-lost-ack/s1");
  // The clean runs after the stop never executed.
  EXPECT_LT(r.runs, plan.items.size());
  EXPECT_FALSE(r.records.back().ran);
}

}  // namespace
}  // namespace faastcc::harness
