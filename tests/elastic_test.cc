// Integration tests for elastic partition scale-out: a mid-run epoch bump
// migrates the stolen slots' chains to freshly joined partitions while
// clients keep committing, and the consistency oracle — including its
// handoff-floor check — stays clean.
#include <gtest/gtest.h>

#include "harness/cluster.h"

namespace faastcc::harness {
namespace {

ClusterParams elastic_params(uint64_t seed) {
  ClusterParams p;
  p.system = SystemKind::kFaasTcc;
  p.seed = seed;
  p.partitions = 4;
  p.compute_nodes = 2;
  p.clients = 4;
  p.dags_per_client = 150;
  p.workload.num_keys = 500;
  p.workload.dag_size = 3;
  p.check_consistency = true;
  p.elastic.add_partitions = 2;
  p.elastic.at = milliseconds(300);
  return p;
}

void expect_scaled_out_clean(Cluster& cluster, const RunResult& r) {
  EXPECT_GT(r.committed, 0u);

  // The bump happened and every partition — incumbents and joiners — ended
  // on the new epoch, serving.
  EXPECT_EQ(cluster.metrics().counter("routing.epoch_bumps").value(), 1u);
  auto& parts = cluster.tcc_partitions();
  ASSERT_EQ(parts.size(), 6u);
  uint64_t migrated_in = 0;
  uint64_t migrated_out = 0;
  for (auto& p : parts) {
    EXPECT_TRUE(p->serving()) << "partition " << p->id();
    ASSERT_NE(p->routing_table(), nullptr) << "partition " << p->id();
    EXPECT_EQ(p->routing_table()->epoch, 2u) << "partition " << p->id();
    migrated_in += p->counters().keys_migrated_in.value();
    migrated_out += p->counters().keys_migrated_out.value();
  }
  EXPECT_GT(migrated_in, 0u);
  EXPECT_EQ(migrated_in, migrated_out);

  // Promise soundness, causal cuts, atomic visibility — and zero reads
  // served at a joiner from below its promised handoff floor.
  check::ConsistencyOracle* oracle = cluster.oracle();
  ASSERT_NE(oracle, nullptr);
  const auto vs = oracle->check();
  EXPECT_TRUE(vs.empty()) << oracle->report(vs);
}

TEST(Elastic, MidRunScaleOutKeepsOracleClean) {
  for (uint64_t seed : {7u, 21u, 42u}) {
    SCOPED_TRACE(seed);
    Cluster cluster(elastic_params(seed));
    const RunResult r = cluster.run();
    expect_scaled_out_clean(cluster, r);
  }
}

TEST(Elastic, ScaleOutUnderMessageLossAndDuplication) {
  ClusterParams p = elastic_params(13);
  p.faults.loss_prob = 0.01;
  p.faults.dup_prob = 0.005;
  Cluster cluster(p);
  const RunResult r = cluster.run();
  expect_scaled_out_clean(cluster, r);
}

TEST(Elastic, ScaleOutRunsAreDeterministicPerSeed) {
  auto run_digest = [](uint64_t seed) {
    Cluster cluster(elastic_params(seed));
    const RunResult r = cluster.run();
    uint64_t migrated = 0;
    for (auto& part : cluster.tcc_partitions()) {
      migrated += part->counters().keys_migrated_in.value();
    }
    return std::tuple<uint64_t, uint64_t, uint64_t>(r.committed, r.sim_events,
                                                    migrated);
  };
  EXPECT_EQ(run_digest(5), run_digest(5));
}

// A stale client that never heard about the bump is driven to the right
// owner by the wrong-epoch NACK -> refresh -> retry machinery rather than
// reading pre-handoff state: visible as retries in the metrics and a clean
// oracle above.  Here we only pin the counter wiring.
TEST(Elastic, WrongEpochRetriesAreCounted) {
  Cluster cluster(elastic_params(99));
  const RunResult r = cluster.run();
  expect_scaled_out_clean(cluster, r);
  // The counter exists (lazily created on first retry); zero is legal when
  // every component heard the broadcast before touching a moved key.
  SUCCEED();
}

}  // namespace
}  // namespace faastcc::harness
