// Wall-clock speed of the simulator itself.
//
// Unlike the bench_fig* binaries, which report *simulated* quantities, this
// one measures how fast the simulation core chews through its event and
// message hot paths on the host machine: wall milliseconds, simulated
// events per wall second and simulated messages per wall second, for the
// same fixed-seed workload on all three systems.  The numbers are the
// tracked artifact (BENCH_wallclock.json) that perf PRs must move; compare
// two runs with tools/bench_diff.py.
//
// The simulation is deterministic per seed, so per-system `sim_events`,
// `messages` and `committed` are build-invariant checksums: if they drift
// between two BENCH files, the runs are not comparable (the schedule
// changed) and bench_diff.py flags it.
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "harness/cluster.h"
#include "harness/flags.h"

namespace faastcc::bench {
namespace {

struct Options {
  size_t partitions = 8;
  size_t compute_nodes = 4;
  size_t clients = 8;
  int dags_per_client = 250;
  uint64_t num_keys = 20000;
  int dag_size = 4;
  uint64_t seed = 42;
  int repeats = 3;
  std::string out = "BENCH_wallclock.json";
};

struct SystemResult {
  const char* name = "";
  double wall_ms = 0;          // best (minimum) over repeats
  std::vector<double> wall_ms_all;
  uint64_t sim_events = 0;     // deterministic per seed
  uint64_t messages = 0;       // deterministic per seed
  uint64_t committed = 0;      // deterministic per seed
  double events_per_sec = 0;
  double messages_per_sec = 0;
  // Growth of the process peak RSS across this system's repeats.  Peak RSS
  // is monotone, so the delta attributes metadata-heavy allocations to the
  // system that caused them instead of blaming the process-global number
  // on all three; systems that fit in the high-water mark of an earlier
  // one legitimately report 0.
  long peak_rss_delta_kb = 0;
};

long peak_rss_kb() {
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return ru.ru_maxrss;  // KiB on Linux
}

harness::ClusterParams params_for(const Options& opt,
                                  harness::SystemKind system) {
  harness::ClusterParams p;
  p.system = system;
  p.seed = opt.seed;
  p.partitions = opt.partitions;
  p.compute_nodes = opt.compute_nodes;
  p.clients = opt.clients;
  p.dags_per_client = opt.dags_per_client;
  p.workload.num_keys = opt.num_keys;
  p.workload.dag_size = opt.dag_size;
  return p;
}

SystemResult run_system(const Options& opt, harness::SystemKind system) {
  SystemResult r;
  r.name = harness::system_name(system);
  const long rss_before_kb = peak_rss_kb();
  for (int i = 0; i < opt.repeats; ++i) {
    harness::Cluster cluster(params_for(opt, system));
    const auto t0 = std::chrono::steady_clock::now();
    const harness::RunResult run = cluster.run();
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    r.wall_ms_all.push_back(ms);
    // The run is deterministic; every repeat must agree on these.
    r.sim_events = run.sim_events;
    r.messages = cluster.network().messages_sent();
    r.committed = run.committed;
  }
  r.peak_rss_delta_kb = std::max(0L, peak_rss_kb() - rss_before_kb);
  r.wall_ms = *std::min_element(r.wall_ms_all.begin(), r.wall_ms_all.end());
  const double s = r.wall_ms / 1000.0;
  r.events_per_sec = static_cast<double>(r.sim_events) / s;
  r.messages_per_sec = static_cast<double>(r.messages) / s;
  return r;
}

void write_json(const Options& opt, const std::vector<SystemResult>& results,
                std::ostream& out) {
  auto num = [](double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", v);
    return std::string(buf);
  };
  out << "{\n";
  out << "  \"schema\": \"faastcc.bench_wallclock.v1\",\n";
  out << "  \"build_type\": \""
#ifdef NDEBUG
      << "release"
#else
      << "debug"
#endif
      << "\",\n";
  out << "  \"config\": {\n"
      << "    \"partitions\": " << opt.partitions << ",\n"
      << "    \"compute_nodes\": " << opt.compute_nodes << ",\n"
      << "    \"clients\": " << opt.clients << ",\n"
      << "    \"dags_per_client\": " << opt.dags_per_client << ",\n"
      << "    \"num_keys\": " << opt.num_keys << ",\n"
      << "    \"dag_size\": " << opt.dag_size << ",\n"
      << "    \"seed\": " << opt.seed << ",\n"
      << "    \"repeats\": " << opt.repeats << "\n"
      << "  },\n";
  out << "  \"peak_rss_kb\": " << peak_rss_kb() << ",\n";
  out << "  \"systems\": {\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const SystemResult& r = results[i];
    out << "    \"" << r.name << "\": {\n"
        << "      \"wall_ms\": " << num(r.wall_ms) << ",\n"
        << "      \"wall_ms_all\": [";
    for (size_t j = 0; j < r.wall_ms_all.size(); ++j) {
      out << (j ? ", " : "") << num(r.wall_ms_all[j]);
    }
    out << "],\n"
        << "      \"sim_events\": " << r.sim_events << ",\n"
        << "      \"messages\": " << r.messages << ",\n"
        << "      \"committed\": " << r.committed << ",\n"
        << "      \"events_per_sec\": " << num(r.events_per_sec) << ",\n"
        << "      \"messages_per_sec\": " << num(r.messages_per_sec) << ",\n"
        << "      \"peak_rss_delta_kb\": " << r.peak_rss_delta_kb << "\n"
        << "    }" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  },\n";
  double wall_ms = 0, events = 0, messages = 0;
  for (const SystemResult& r : results) {
    wall_ms += r.wall_ms;
    events += static_cast<double>(r.sim_events);
    messages += static_cast<double>(r.messages);
  }
  out << "  \"total\": {\n"
      << "    \"wall_ms\": " << num(wall_ms) << ",\n"
      << "    \"events_per_sec\": " << num(events / (wall_ms / 1000.0))
      << ",\n"
      << "    \"messages_per_sec\": " << num(messages / (wall_ms / 1000.0))
      << "\n  }\n";
  out << "}\n";
}

}  // namespace
}  // namespace faastcc::bench

int main(int argc, char** argv) {
  using namespace faastcc;
  bench::Options opt;
  harness::Flags flags("bench_wallclock",
                       "wall-clock speed of the simulation core");
  flags.size("partitions", "storage partitions", &opt.partitions);
  flags.size("nodes", "compute nodes", &opt.compute_nodes);
  flags.size("clients", "closed-loop clients", &opt.clients);
  flags.integer("dags", "DAGs per client", &opt.dags_per_client);
  flags.u64("keys", "dataset size", &opt.num_keys);
  flags.integer("dag-size", "functions per chain", &opt.dag_size);
  flags.u64("seed", "RNG seed", &opt.seed);
  flags.integer("repeats", "timed repeats per system (min is reported)",
                &opt.repeats);
  flags.str("out", "output artifact path", &opt.out);
  if (!flags.parse(argc, argv)) {
    std::fprintf(stderr, "bench_wallclock: %s\n%s", flags.error().c_str(),
                 flags.usage().c_str());
    return 2;
  }
  if (flags.help_requested()) {
    std::fputs(flags.usage().c_str(), stdout);
    return 0;
  }
  opt.repeats = std::max(1, opt.repeats);

  std::printf("bench_wallclock: %zu partitions, %zu nodes, %zu clients, "
              "%d dags/client, %llu keys, dag size %d, seed %llu, "
              "%d repeats\n",
              opt.partitions, opt.compute_nodes, opt.clients,
              opt.dags_per_client,
              static_cast<unsigned long long>(opt.num_keys), opt.dag_size,
              static_cast<unsigned long long>(opt.seed), opt.repeats);

  std::vector<bench::SystemResult> results;
  for (harness::SystemKind system :
       {harness::SystemKind::kFaasTcc, harness::SystemKind::kHydroCache,
        harness::SystemKind::kCloudburst}) {
    bench::SystemResult r = bench::run_system(opt, system);
    std::printf(
        "  %-12s %9.1f ms   %12.0f events/s   %12.0f msgs/s   +%ld KiB RSS\n",
        r.name, r.wall_ms, r.events_per_sec, r.messages_per_sec,
        r.peak_rss_delta_kb);
    results.push_back(std::move(r));
  }

  std::ofstream out(opt.out);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", opt.out.c_str());
    return 1;
  }
  faastcc::bench::write_json(opt, results, out);
  std::printf("wrote %s (peak RSS %ld KiB)\n", opt.out.c_str(),
              faastcc::bench::peak_rss_kb());
  return 0;
}
