// Figure 4b: average throughput (DAGs/s), same sweep as Fig. 4a.
#include "bench_util.h"

using namespace faastcc;
using namespace faastcc::bench;

int main() {
  print_preamble("Figure 4b", "average throughput (DAGs/s)");

  struct Row {
    const char* name;
    SystemKind system;
    bool static_txns;
    double paper[3];  // zipf 1.0 / 1.25 / 1.5
  };
  const Row rows[] = {
      {"HydroCache-Static", SystemKind::kHydroCache, true,
       {1649.5, 1403.5, 1194.0}},
      {"HydroCache-Dynamic", SystemKind::kHydroCache, false,
       {311.3, 625.0, 904.0}},
      {"FaaSTCC", SystemKind::kFaasTcc, false, {1568.6, 1333.3, 1290.3}},
  };
  const double zipfs[] = {1.0, 1.25, 1.5};

  Table table({"system", "zipf", "throughput", "paper throughput"});
  for (const Row& row : rows) {
    for (int z = 0; z < 3; ++z) {
      const SummaryStats s =
          run_or_load(base_config(row.system, zipfs[z], row.static_txns));
      table.add_row({row.name, fmt(zipfs[z], 2), fmt(s.throughput, 1),
                     fmt(row.paper[z], 1)});
    }
  }
  table.print();
  return 0;
}
