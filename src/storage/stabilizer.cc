#include "storage/stabilizer.h"

#include <algorithm>

namespace faastcc::storage {

void Stabilizer::on_gossip(PartitionId from, Timestamp safe_time) {
  // A joiner's gossip can reach a partition that has not yet adopted the
  // new routing table (missed broadcast, pull pending).  Ignore it: the
  // epoch gate will force a table refresh soon, and until then excluding
  // the joiner from the min is a freshness question, not a soundness one —
  // per-key promises anchor on the owner's own safe time.
  if (from >= last_heard_.size()) return;
  auto& slot = last_heard_[from];
  if (safe_time > slot) slot = safe_time;
}

Timestamp Stabilizer::stable_time() const {
  Timestamp min_ts = Timestamp::max();
  for (const Timestamp t : last_heard_) min_ts = std::min(min_ts, t);
  return min_ts;
}

void Stabilizer::extend_membership(size_t num_partitions) {
  if (num_partitions <= last_heard_.size()) return;
  last_heard_.resize(num_partitions, Timestamp::min());
}

}  // namespace faastcc::storage
