// Concurrency combinator: runs tasks in parallel, completes when all do.
#pragma once

#include <utility>
#include <vector>

#include "sim/future.h"
#include "sim/task.h"

namespace faastcc::sim {

namespace detail {

template <typename T>
Task<void> complete_into(Task<T> task, Promise<T> promise) {
  promise.set_value(co_await std::move(task));
}

inline Task<void> complete_into_void(Task<void> task, Promise<bool> promise) {
  co_await std::move(task);
  promise.set_value(true);
}

}  // namespace detail

// Starts every task concurrently and returns their results in input order.
template <typename T>
Task<std::vector<T>> when_all(EventLoop& loop, std::vector<Task<T>> tasks) {
  std::vector<Future<T>> futures;
  futures.reserve(tasks.size());
  for (auto& t : tasks) {
    Promise<T> p(loop);
    futures.push_back(p.get_future());
    spawn(detail::complete_into(std::move(t), p));
  }
  std::vector<T> out;
  out.reserve(futures.size());
  for (auto& f : futures) out.push_back(co_await std::move(f));
  co_return out;
}

inline Task<void> when_all_void(EventLoop& loop,
                                std::vector<Task<void>> tasks) {
  std::vector<Future<bool>> futures;
  futures.reserve(tasks.size());
  for (auto& t : tasks) {
    Promise<bool> p(loop);
    futures.push_back(p.get_future());
    spawn(detail::complete_into_void(std::move(t), p));
  }
  for (auto& f : futures) co_await std::move(f);
}

}  // namespace faastcc::sim
