# Empty dependencies file for bench_ablation_refresh.
# This may be replaced when dependencies are built.
