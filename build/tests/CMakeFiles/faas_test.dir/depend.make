# Empty dependencies file for faas_test.
# This may be replaced when dependencies are built.
