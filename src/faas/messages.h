// Wire messages of the FaaS runtime (scheduler, compute nodes, clients).
#pragma once

#include <cstdint>

#include "faas/dag.h"
#include "net/network.h"

namespace faastcc::faas {

enum FaasMethod : uint16_t {
  kStartDag = 60,     // one-way client -> scheduler
  kTrigger = 61,      // one-way scheduler -> node (root), node -> node
  kDagDone = 62,      // one-way sink node -> client
  kAbortNotice = 63,  // one-way aborting node -> downstream nodes
};

struct StartDagMsg {
  TxnId txn_id = 0;
  net::Address client = 0;
  Buffer session;  // system-specific blob from the client's previous commit
  DagSpec spec;

  template <typename W>
  void encode(W& w) const {
    w.put_u64(txn_id);
    w.put_u32(client);
    w.put_bytes(std::string_view(reinterpret_cast<const char*>(session.data()),
                                 session.size()));
    spec.encode(w);
  }
  static StartDagMsg decode(BufReader& r) {
    StartDagMsg m;
    m.txn_id = r.get_u64();
    m.client = r.get_u32();
    const std::string_view s = r.get_bytes_view();
    m.session.assign(s.begin(), s.end());
    m.spec = DagSpec::decode(r);
    return m;
  }
};

// Invocation trigger: carries everything a node needs to run one function
// of one DAG execution — the spec, the placement chosen by the scheduler,
// and the parent's context (or the client session for the root).
struct TriggerMsg {
  // from_fn value of a root trigger (sent by the scheduler, no parent).
  static constexpr uint32_t kNoParent = 0xffffffff;

  TxnId txn_id = 0;
  uint32_t fn_index = 0;
  // Parent function that sent this trigger; joins use it to deduplicate
  // the at-least-once fabric (a duplicated parent trigger must not be
  // mistaken for a missing sibling's context).
  uint32_t from_fn = kNoParent;
  net::Address client = 0;
  DagSpec spec;
  std::vector<net::Address> placement;  // node address per function
  // The two metadata-bearing blobs are Payloads: decoded from a shared
  // message buffer they alias the wire bytes in place instead of being
  // copied out (contexts run to tens of KB under HydroCache).
  Payload session;        // root only
  Payload context;        // non-root: parent context
  Buffer parent_result;   // output of the parent function

  template <typename W>
  void encode(W& w) const;
  static TriggerMsg decode(BufReader& r);
};

struct DagDoneMsg {
  TxnId txn_id = 0;
  bool committed = false;
  Buffer session;  // valid when committed
  Buffer result;   // sink function output

  template <typename W>
  void encode(W& w) const;
  static DagDoneMsg decode(BufReader& r);
};

struct AbortNoticeMsg {
  TxnId txn_id = 0;

  template <typename W>
  void encode(W& w) const { w.put_u64(txn_id); }
  static AbortNoticeMsg decode(BufReader& r) { return {r.get_u64()}; }
};

template <typename W>
inline void put_buffer(W& w, const Buffer& b) {
  w.put_bytes(
      std::string_view(reinterpret_cast<const char*>(b.data()), b.size()));
}

inline Buffer get_buffer(BufReader& r) {
  const std::string_view s = r.get_bytes_view();
  return Buffer(s.begin(), s.end());
}

template <typename W>
inline void put_payload(W& w, const Payload& p) {
  w.put_bytes(
      std::string_view(reinterpret_cast<const char*>(p.data()), p.size()));
}

// Reads a length-prefixed blob as a Payload.  With a shared-ownership
// reader the payload aliases the message buffer; otherwise it owns a copy.
inline Payload get_payload(BufReader& r) {
  const std::string_view s = r.get_bytes_view();
  const auto* p = reinterpret_cast<const uint8_t*>(s.data());
  if (const auto& owner = r.owner()) {
    return Payload(owner, p, s.size());
  }
  return Payload(Buffer(p, p + s.size()));
}

template <typename W>
inline void TriggerMsg::encode(W& w) const {
  w.put_u64(txn_id);
  w.put_u32(fn_index);
  w.put_u32(from_fn);
  w.put_u32(client);
  spec.encode(w);
  w.put_u32(static_cast<uint32_t>(placement.size()));
  for (net::Address a : placement) w.put_u32(a);
  put_payload(w, session);
  put_payload(w, context);
  put_buffer(w, parent_result);
}

inline TriggerMsg TriggerMsg::decode(BufReader& r) {
  TriggerMsg m;
  m.txn_id = r.get_u64();
  m.fn_index = r.get_u32();
  m.from_fn = r.get_u32();
  m.client = r.get_u32();
  m.spec = DagSpec::decode(r);
  const uint32_t n = r.get_u32();
  m.placement.reserve(n);
  for (uint32_t i = 0; i < n; ++i) m.placement.push_back(r.get_u32());
  m.session = get_payload(r);
  m.context = get_payload(r);
  m.parent_result = get_buffer(r);
  return m;
}

template <typename W>
inline void DagDoneMsg::encode(W& w) const {
  w.put_u64(txn_id);
  w.put_bool(committed);
  put_buffer(w, session);
  put_buffer(w, result);
}

inline DagDoneMsg DagDoneMsg::decode(BufReader& r) {
  DagDoneMsg m;
  m.txn_id = r.get_u64();
  m.committed = r.get_bool();
  m.session = get_buffer(r);
  m.result = get_buffer(r);
  return m;
}

}  // namespace faastcc::faas
