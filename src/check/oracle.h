// Consistency oracle for the FaaSTCC protocol stack.
//
// Records, through zero-perturbation hooks (the same out-of-band pattern as
// obs::Tracer: plain pointer, no events, no randomness, pure appends),
// every version install, every committed transaction, every function-level
// read and every client session step — then verifies, after the run, the
// paper's actual contract:
//
//   * atomic visibility     — an acked commit installed all of its writes,
//                             and no snapshot can observe a torn subset;
//   * causal order          — commit ts > dep ts and > every read ts;
//   * promise soundness     — no version was ever installed with a
//                             timestamp in (returned_ts, promise] of any
//                             read (§4.2: a promise is forever);
//   * snapshot validity     — one snapshot in [low, high] explains every
//                             read of a completed transaction (§4.8);
//   * repeatable reads      — a transaction never observes two versions of
//                             the same key;
//   * read-your-writes      — a function never cache-reads a key it wrote;
//   * session monotonicity  — a client's session timestamp never regresses
//                             across DAGs.
//
// The oracle deliberately knows nothing about the transport: it cross-checks
// what the storage layer *did* (installs) against what the client stack
// *claimed* (acks, reads, promises), which is exactly where retried/dropped
// messages can tear the two apart.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "client/snapshot_interval.h"
#include "common/hlc.h"
#include "common/types.h"

namespace faastcc::check {

// FNV-1a over the value bytes: installs and reads are cross-checked by
// hash so the oracle never retains value payloads.
uint64_t hash_value(const Value& v);

struct Violation {
  enum class Kind : uint8_t {
    kLostWrite,           // acked commit with a write never installed
    kDuplicateInstall,    // two installs of one (key, ts) / replayed commit
    kPhantomInstall,      // install by a txn that never entered commit
    kCausalOrder,         // commit ts <= dep ts or <= a read ts
    kUnsoundPromise,      // version installed inside (read ts, promise]
    kEmptySnapshotWindow, // no single snapshot explains a txn's reads
    kUnexplainedRead,     // read returned a version nobody installed
    kValueMismatch,       // read value != installed value at that ts
    kNonRepeatableRead,   // one txn observed two versions of a key
    kReadYourWrites,      // function cache-read a key it had written
    kSessionOrder,        // client session timestamp regressed
    kHandoffFloor,        // post-handoff install at or below the sealed floor
    kDurabilityLoss,      // commit-acked write missing after a leader failover
  };
  Kind kind;
  TxnId txn = 0;
  Key key = 0;
  std::string detail;
};

const char* violation_name(Violation::Kind kind);

class ConsistencyOracle {
 public:
  ConsistencyOracle() = default;

  // ---- recording hooks (never schedule events, never draw randomness) ----

  // A version physically installed at a partition's MvStore.
  void on_install(PartitionId partition, Key key, Timestamp ts, TxnId txn,
                  const Value& value);
  // Dataset preload before the run (recorded as txn 0).
  void on_preload(Key key, Timestamp ts, const Value& value);
  // The coordinator is about to send commit-phase RPCs: from here on,
  // installs by `txn` are legitimate even if the coordinator later reports
  // an abort (the documented torn-abort liveness tradeoff).
  void on_commit_phase(TxnId txn, std::vector<Key> write_keys);
  // The coordinator reported commit to the client library.
  void on_commit_ack(TxnId txn, Timestamp commit_ts, Timestamp dep_ts);
  // The client library completed the transaction successfully (including
  // read-only transactions, which never reach the storage commit path).
  void on_txn_complete(TxnId txn);
  // A function execution joined the transaction; returns a deterministic
  // function id for the read/write hooks (schedule order is deterministic,
  // so the ids are too).
  uint64_t register_function(TxnId txn);
  // A cache-served (non-local) read returned by the client library, with
  // the snapshot interval as of the return.
  void on_read(TxnId txn, uint64_t fn, Key key, Timestamp ts,
               Timestamp promise, const Value& value,
               client::SnapshotInterval interval);
  // A buffered write in a function body.
  void on_write(TxnId txn, uint64_t fn, Key key, const Value& value);
  // A client applied a committed DAG's session blob.
  void on_session_commit(uint64_t client_id, Timestamp session_ts);
  // Elastic scale-out: `partition` finished joining with handoff floor
  // `floor` (max over its sources' sealed safe times and every migrated
  // version's timestamp).  Promise soundness across the handoff requires
  // that the joiner never installs a version at or below the floor —
  // every promise its sources issued for the migrated keys is <= floor.
  void on_handoff(PartitionId partition, Timestamp floor);
  // Elastic scale-IN: like on_handoff, but the floor applies only to
  // `keys` — the chains the survivor inherited from a drained partition.
  // A survivor keeps serving its pre-owned keys through the transition, so
  // a prepare assigned before the drain may legitimately commit one of
  // them below the floor; only the migrated keys carry the guarantee.
  void on_handoff(PartitionId partition, Timestamp floor,
                  std::vector<Key> keys);
  // Replication failover: a follower of `partition` was promoted to leader
  // holding exactly `surviving` versions.  Every commit-acked write
  // previously installed at this partition (at its acked timestamp) must
  // appear in `surviving` — the ack asserted durability at f+1, so a
  // missing version means the quorum lied.  Installs recorded before the
  // failover also become re-materialization candidates: a coordinator
  // retry may legitimately re-install an identical version at the promoted
  // leader (exempt from duplicate-install and handoff-floor flags), and a
  // never-acked install that died with the old leader may re-execute at a
  // fresh timestamp (exempt from the replayed-commit flag).
  void on_failover(PartitionId partition,
                   std::vector<std::pair<Key, Timestamp>> surviving);

  // ---- post-run verification ----

  std::vector<Violation> check() const;
  // Human-readable counterexample listing (at most `max_violations`), with
  // the per-key install history around each violating read.
  std::string report(const std::vector<Violation>& violations,
                     size_t max_violations = 10) const;

  size_t installs_recorded() const { return installs_.size(); }
  size_t reads_recorded() const { return reads_.size(); }
  size_t commits_recorded() const;
  // Commit-phase txns that were never acked but did install somewhere:
  // the documented torn-abort outcome (allowed, but worth surfacing).
  size_t torn_aborts() const;

 private:
  struct InstallRec {
    Key key;
    Timestamp ts;
    TxnId txn;
    uint64_t value_hash;
    PartitionId partition;
  };
  struct ReadRec {
    TxnId txn;
    uint64_t fn;
    Key key;
    Timestamp ts;
    Timestamp promise;
    uint64_t value_hash;
    client::SnapshotInterval interval;
    uint64_t seq;  // global record order (orders reads vs. writes in a fn)
  };
  struct WriteRec {
    TxnId txn;
    uint64_t fn;
    Key key;
    uint64_t value_hash;
    uint64_t seq;
  };
  struct TxnRec {
    std::vector<Key> write_keys;
    bool phase_entered = false;
    bool acked = false;
    bool completed = false;
    Timestamp commit_ts = Timestamp::min();
    Timestamp dep_ts = Timestamp::min();
  };

  struct HandoffRec {
    PartitionId partition;
    Timestamp floor;
    size_t installs_before;  // installs_ size at handoff; earlier ones exempt
    // Sorted keys the floor is scoped to; empty = every key (joiner path,
    // whose store was empty before the handoff).
    std::vector<Key> keys;
  };

  struct FailoverRec {
    PartitionId partition;
    size_t installs_before;  // installs_ size at promotion
    // Sorted (key, ts) pairs present at the promoted leader.
    std::vector<std::pair<Key, Timestamp>> surviving;
  };

  std::vector<InstallRec> installs_;
  std::vector<HandoffRec> handoffs_;
  std::vector<FailoverRec> failovers_;
  std::vector<ReadRec> reads_;
  std::vector<WriteRec> writes_;
  std::unordered_map<TxnId, TxnRec> txns_;
  // Ordered for deterministic violation output.
  std::map<uint64_t, std::vector<Timestamp>> sessions_;
  uint64_t next_fn_ = 0;
  uint64_t next_seq_ = 0;
};

}  // namespace faastcc::check
