file(REMOVE_RECURSE
  "CMakeFiles/faastcc_workload.dir/workload/client_driver.cc.o"
  "CMakeFiles/faastcc_workload.dir/workload/client_driver.cc.o.d"
  "CMakeFiles/faastcc_workload.dir/workload/workload.cc.o"
  "CMakeFiles/faastcc_workload.dir/workload/workload.cc.o.d"
  "libfaastcc_workload.a"
  "libfaastcc_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faastcc_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
