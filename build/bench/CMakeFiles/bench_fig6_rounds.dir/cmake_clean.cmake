file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_rounds.dir/bench_fig6_rounds.cc.o"
  "CMakeFiles/bench_fig6_rounds.dir/bench_fig6_rounds.cc.o.d"
  "bench_fig6_rounds"
  "bench_fig6_rounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_rounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
