# Empty compiler generated dependencies file for example_social_network.
# This may be replaced when dependencies are built.
