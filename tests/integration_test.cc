// End-to-end tests: full clusters of all three systems running the
// paper's workload, plus TCC property checks on the FaaSTCC system.
#include <gtest/gtest.h>

#include "harness/cluster.h"
#include "harness/experiment.h"

namespace faastcc::harness {
namespace {

ClusterParams small_params(SystemKind system) {
  ClusterParams p;
  p.system = system;
  p.partitions = 4;
  p.compute_nodes = 4;
  p.clients = 4;
  p.dags_per_client = 25;
  p.workload.num_keys = 2000;
  p.workload.zipf = 1.0;
  p.workload.dag_size = 4;
  return p;
}

TEST(Integration, FaasTccRunsToCompletion) {
  Cluster cluster(small_params(SystemKind::kFaasTcc));
  const RunResult r = cluster.run();
  EXPECT_EQ(r.committed + 0, 4u * 25u) << "all DAGs should commit";
  EXPECT_GT(r.metrics.dag_latency_ms.count(), 0u);
  EXPECT_GT(r.throughput, 0.0);
}

TEST(Integration, HydroCacheRunsToCompletion) {
  Cluster cluster(small_params(SystemKind::kHydroCache));
  const RunResult r = cluster.run();
  // HydroCache may abort some attempts but retries should commit nearly
  // all transactions.
  EXPECT_GE(r.committed, 4u * 25u * 9 / 10);
  EXPECT_GT(r.metrics.dag_latency_ms.count(), 0u);
}

TEST(Integration, CloudburstRunsToCompletion) {
  Cluster cluster(small_params(SystemKind::kCloudburst));
  const RunResult r = cluster.run();
  EXPECT_EQ(r.committed, 4u * 25u);
}

TEST(Integration, FaasTccMetadataIsConstant16Bytes) {
  Cluster cluster(small_params(SystemKind::kFaasTcc));
  const RunResult r = cluster.run();
  ASSERT_GT(r.metrics.metadata_bytes.count(), 0u);
  EXPECT_DOUBLE_EQ(r.metrics.metadata_bytes.min(), 16.0);
  EXPECT_DOUBLE_EQ(r.metrics.metadata_bytes.max(), 16.0);
}

TEST(Integration, FaasTccSingleStorageRoundMedian) {
  Cluster cluster(small_params(SystemKind::kFaasTcc));
  const RunResult r = cluster.run();
  ASSERT_GT(r.metrics.storage_rounds.count(), 0u);
  EXPECT_DOUBLE_EQ(r.metrics.storage_rounds.median(), 1.0);
}

TEST(Integration, DeterministicAcrossRuns) {
  auto run_once = [] {
    Cluster cluster(small_params(SystemKind::kFaasTcc));
    return cluster.run();
  };
  const RunResult a = run_once();
  const RunResult b = run_once();
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.metrics.dag_latency_ms.raw(), b.metrics.dag_latency_ms.raw());
}

}  // namespace
}  // namespace faastcc::harness
