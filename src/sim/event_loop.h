// Deterministic discrete-event loop.
//
// The entire FaaSTCC cluster — storage partitions, compute nodes, caches,
// clients and the network between them — runs on one of these.  Events are
// totally ordered by (timestamp, insertion sequence), so a given seed always
// produces the same execution, which the property tests rely on.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.h"

namespace faastcc::sim {

class EventLoop {
 public:
  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  SimTime now() const { return now_; }

  // Schedules `fn` to run at absolute simulated time `t` (clamped to now).
  void schedule_at(SimTime t, std::function<void()> fn);

  // Schedules `fn` to run `d` microseconds from now.
  void schedule_after(Duration d, std::function<void()> fn) {
    schedule_at(now_ + (d > 0 ? d : 0), std::move(fn));
  }

  // Runs events until the queue drains or stop() is called.
  void run();

  // Runs events with time <= t (and leaves now() == t if the queue drained).
  void run_until(SimTime t);

  // Executes the single next event; returns false if the queue is empty.
  bool run_one();

  void stop() { stopped_ = true; }
  bool stopped() const { return stopped_; }

  size_t pending() const { return queue_.size(); }
  uint64_t events_processed() const { return processed_; }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t processed_ = 0;
  bool stopped_ = false;
};

}  // namespace faastcc::sim
