// Simulated cluster network.
//
// Models the paper's testbed fabric: ~0.15 ms intra-cluster RTT over shared
// 25 Gbps switches.  A message sent at time t is delivered at
//   t + base_latency + U(0, jitter) + size / bandwidth.
// Delivery order between distinct pairs is therefore not FIFO globally,
// which is exactly the asynchrony the protocols must tolerate.
//
// An optional fault-injection layer (set_faults) subjects fabric links to
// message loss, duplication, delay spikes and endpoint crash windows.  All
// fault randomness comes from a dedicated forked Rng, installed only when
// faults are enabled, so fault-free runs consume exactly the same random
// stream — and produce exactly the same schedule — as before the fault
// layer existed.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/serialize.h"
#include "common/stats.h"
#include "common/types.h"
#include "obs/trace.h"
#include "sim/event_loop.h"

namespace faastcc::net {

using Address = uint32_t;
using MethodId = uint16_t;

enum class MessageKind : uint8_t { kRequest = 0, kResponse = 1, kOneWay = 2 };

struct Message {
  Address from = 0;
  Address to = 0;
  MessageKind kind = MessageKind::kOneWay;
  MethodId method = 0;
  uint64_t request_id = 0;
  Buffer payload;
  // Trace context, riding inside the fixed frame header like a W3C
  // traceparent field.  Deliberately NOT part of wire_size(): delivery
  // delays must be identical whether tracing is on or off, or enabling
  // tracing would perturb the event schedule.
  obs::TraceContext trace;
  // Routing epoch the sender's table was at, stamped by RpcNode.  Budgeted
  // inside the fixed kHeaderBytes frame (it would fit several times over),
  // so like `trace` it is not part of wire_size() and a cluster that never
  // bumps epochs schedules bit-identically to one without the field.
  // 0 = the sender does not participate in epoch-versioned routing.
  uint32_t routing_epoch = 0;
  // Response-only flag: the request's epoch disagreed with the receiver's
  // for an epoch-gated method.  The payload is empty; routing_epoch above
  // carries the receiver's epoch so the caller knows who is behind.
  bool wrong_epoch = false;

  // Wire size: payload plus a fixed header, mirroring the framing overhead
  // of the ZeroMQ + protobuf stack in the authors' prototype.
  static constexpr size_t kHeaderBytes = 32;
  size_t wire_size() const { return payload.size() + kHeaderBytes; }
};

struct NetworkParams {
  Duration base_latency = microseconds(75);   // one-way; RTT ~= 0.15 ms
  Duration jitter = microseconds(20);         // uniform [0, jitter)
  double bandwidth_bytes_per_us = 3125.0;     // 25 Gbps
  Duration local_delivery = microseconds(5);  // same-node IPC latency
};

// An endpoint severed from the network during [from, until): inbound and
// outbound messages are dropped, process state is retained (a partition /
// pause, not amnesia — the process resumes where it left off).
struct CrashWindow {
  Address addr = 0;
  SimTime from = 0;
  SimTime until = 0;  // exclusive
};

struct FaultParams {
  double loss_prob = 0.0;         // per fabric message
  double dup_prob = 0.0;          // extra copy with its own delivery delay
  double delay_spike_prob = 0.0;  // adds `delay_spike` to the delivery
  Duration delay_spike = milliseconds(10);
  // RPC timeout applied by RpcNode to non-colocated calls once faults are
  // enabled (0 = never time out).  Colocated (IPC) calls never time out:
  // loss/dup/spikes only affect fabric links.
  Duration rpc_timeout = milliseconds(25);
  // Client-side watchdog for a whole DAG execution; the DAG flow is one-way
  // messages, so a lost trigger is only recoverable by retrying the DAG.
  Duration dag_timeout = seconds(1);
  std::vector<CrashWindow> crashes;

  bool enabled() const {
    return loss_prob > 0 || dup_prob > 0 || delay_spike_prob > 0 ||
           !crashes.empty();
  }
};

class Network {
 public:
  Network(sim::EventLoop& loop, NetworkParams params, Rng rng)
      : loop_(loop), params_(params), rng_(rng), fault_rng_(0) {}

  using Handler = std::function<void(Message)>;

  // Each simulated process registers exactly one inbound handler.
  void register_endpoint(Address addr, Handler handler);

  // Marks two addresses as colocated on the same physical node; messages
  // between them use IPC latency instead of the fabric (executor <-> cache).
  void colocate(Address a, Address b);

  bool is_local(Address a, Address b) const;

  // Queues `m` for delivery; the recipient's handler runs at delivery time.
  // Messages to unregistered addresses are counted and dropped.
  void send(Message m);

  // Enables fault injection.  `fault_rng` must be a dedicated fork so the
  // fault layer's draws never perturb the base jitter stream.
  void set_faults(FaultParams faults, Rng fault_rng);
  bool faults_enabled() const { return faults_enabled_; }

  // Per-link loss override (directional); takes effect only while faults
  // are enabled.  Probability -1 removes the override.
  void set_link_loss(Address from, Address to, double p);

  // Dynamically extend the crash schedule (tests, mid-run fault scripts).
  // Arms the fault layer so the window takes effect even when set_faults
  // was never called; deliberately leaves default_rpc_timeout_ alone — a
  // crash window severs an endpoint, it does not opt every RPC into
  // timeouts.  Determinism is preserved: with all fault probabilities at
  // zero the fault layer draws nothing from fault_rng_, so the schedule
  // outside the window is bit-identical to the unfaulted run.
  void add_crash_window(CrashWindow w) {
    faults_.crashes.push_back(w);
    faults_enabled_ = true;
  }

  // Default timeout RpcNode applies to non-colocated calls (0 = none).
  Duration default_rpc_timeout() const { return default_rpc_timeout_; }
  void set_default_rpc_timeout(Duration t) { default_rpc_timeout_ = t; }

  bool crashed_at(Address a, SimTime t) const;

  SimTime now() const { return loop_.now(); }
  sim::EventLoop& loop() { return loop_; }

  uint64_t messages_sent() const { return messages_sent_.value(); }
  uint64_t bytes_sent() const { return bytes_sent_.value(); }
  uint64_t messages_dropped() const { return messages_dropped_.value(); }

  // Fault counters (all zero when faults are disabled).
  uint64_t faults_lost() const { return faults_lost_.value(); }
  uint64_t faults_duplicated() const { return faults_duplicated_.value(); }
  uint64_t faults_delay_spikes() const { return faults_delay_spikes_.value(); }
  uint64_t faults_crash_dropped() const {
    return faults_crash_dropped_.value();
  }

  // RPC timeout/retry accounting lives here because every RpcNode already
  // holds a Network reference; Metrics copies these at the end of a run.
  void note_rpc_timeout() { rpc_timeouts_.inc(); }
  void note_rpc_retry() { rpc_retries_.inc(); }
  uint64_t rpc_timeouts() const { return rpc_timeouts_.value(); }
  uint64_t rpc_retries() const { return rpc_retries_.value(); }

 private:
  Duration delivery_delay(Address from, Address to, size_t bytes);
  double link_loss(Address from, Address to) const;
  void deliver(Message m, Duration delay);

  sim::EventLoop& loop_;
  NetworkParams params_;
  Rng rng_;
  std::unordered_map<Address, Handler> endpoints_;
  std::unordered_map<uint64_t, bool> colocated_;  // key = pair(a, b)
  Counter messages_sent_;
  Counter bytes_sent_;
  Counter messages_dropped_;

  bool faults_enabled_ = false;
  FaultParams faults_;
  Rng fault_rng_;
  Duration default_rpc_timeout_ = 0;
  std::unordered_map<uint64_t, double> link_loss_;  // directional (from, to)
  Counter faults_lost_;
  Counter faults_duplicated_;
  Counter faults_delay_spikes_;
  Counter faults_crash_dropped_;
  Counter rpc_timeouts_;
  Counter rpc_retries_;
};

}  // namespace faastcc::net
