#include "net/rpc.h"

#include <cassert>

#include "common/log.h"

namespace faastcc::net {

RpcNode::RpcNode(Network& network, Address address)
    : network_(network), address_(address) {
  network_.register_endpoint(address_,
                             [this](Message m) { on_message(std::move(m)); });
}

void RpcNode::handle(MethodId method, RequestHandler handler) {
  handlers_[method] = std::move(handler);
}

void RpcNode::handle_oneway(MethodId method, OneWayHandler handler) {
  oneway_handlers_[method] = std::move(handler);
}

void RpcNode::gate_on_epoch(MethodId method) {
  if (std::find(epoch_gated_.begin(), epoch_gated_.end(), method) ==
      epoch_gated_.end()) {
    epoch_gated_.push_back(method);
  }
}

sim::Task<RpcNode::SizedResponse> RpcNode::call_raw_sized(
    Address to, MethodId method, Buffer request, Duration timeout,
    obs::TraceContext trace) {
  if (timeout == kUseDefaultTimeout) {
    timeout =
        network_.is_local(address_, to) ? 0 : network_.default_rpc_timeout();
  }
  const uint64_t id = next_request_id_++;
  Message m;
  m.from = address_;
  m.to = to;
  m.kind = MessageKind::kRequest;
  m.method = method;
  m.request_id = id;
  m.payload = std::move(request);
  m.trace = trace;
  m.routing_epoch = routing_epoch_;
  const size_t req_bytes = m.wire_size();

  auto [it, inserted] = pending_.emplace(
      id, Pending{sim::Promise<SizedResponse>(loop()), req_bytes});
  assert(inserted);
  auto future = it->second.promise.get_future();
  network_.send(std::move(m));
  if (timeout > 0) {
    // The timer is scheduled only when a timeout applies, so fault-free
    // runs (default timeout 0) add no events to the schedule.
    loop().schedule_after(timeout, [this, id] { on_call_timeout(id); });
  }
  co_return co_await std::move(future);
}

void RpcNode::on_call_timeout(uint64_t id) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return;  // response already arrived
  Pending p = std::move(it->second);
  pending_.erase(it);
  network_.note_rpc_timeout();
  SizedResponse r;
  r.request_wire_bytes = p.request_wire_bytes;
  r.status = RpcStatus::kTimeout;
  p.promise.set_value(std::move(r));
}

sim::Task<RpcNode::SizedResponse> RpcNode::call_raw_sized_retry(
    Address to, MethodId method, Buffer request, RetryPolicy policy,
    obs::TraceContext trace) {
  Duration backoff = policy.initial_backoff;
  for (int attempt = 1;; ++attempt) {
    // Each attempt needs its own copy: the request may be re-sent.
    SizedResponse r =
        co_await call_raw_sized(to, method, request, policy.timeout, trace);
    r.attempts = static_cast<uint32_t>(attempt);
    // Only timeouts are worth re-sending verbatim; a wrong-epoch NACK will
    // keep NACKing until the caller refreshes its routing table.
    if (r.status != RpcStatus::kTimeout || attempt >= policy.max_attempts) {
      co_return r;
    }
    network_.note_rpc_retry();
    co_await sim::sleep_for(loop(), backoff);
    backoff = std::min<Duration>(backoff * 2, policy.max_backoff);
  }
}

sim::Task<std::optional<Buffer>> RpcNode::call_raw_retry(
    Address to, MethodId method, Buffer request, RetryPolicy policy,
    obs::TraceContext trace) {
  SizedResponse r = co_await call_raw_sized_retry(to, method,
                                                  std::move(request), policy,
                                                  trace);
  if (!r.ok()) co_return std::nullopt;
  co_return std::move(r.payload);
}

sim::Task<Buffer> RpcNode::call_raw(Address to, MethodId method,
                                    Buffer request, obs::TraceContext trace) {
  SizedResponse r = co_await call_raw_sized(to, method, std::move(request),
                                            kUseDefaultTimeout, trace);
  co_return std::move(r.payload);
}

void RpcNode::send_raw(Address to, MethodId method, Buffer payload,
                       obs::TraceContext trace) {
  Message m;
  m.from = address_;
  m.to = to;
  m.kind = MessageKind::kOneWay;
  m.method = method;
  m.payload = std::move(payload);
  m.trace = trace;
  m.routing_epoch = routing_epoch_;
  network_.send(std::move(m));
}

sim::Task<void> RpcNode::run_handler(RequestHandler& handler, Message m) {
  Buffer response = co_await handler(std::move(m.payload), m.from);
  Message r;
  r.from = address_;
  r.to = m.from;
  r.kind = MessageKind::kResponse;
  r.method = m.method;
  r.request_id = m.request_id;
  r.payload = std::move(response);
  r.trace = m.trace;  // echo, so responses correlate in packet-level views
  r.routing_epoch = routing_epoch_;
  network_.send(std::move(r));
}

void RpcNode::on_message(Message m) {
  switch (m.kind) {
    case MessageKind::kRequest: {
      if (m.routing_epoch != 0 && routing_epoch_ != 0 &&
          m.routing_epoch != routing_epoch_ &&
          std::find(epoch_gated_.begin(), epoch_gated_.end(), m.method) !=
              epoch_gated_.end()) {
        // The gate sits before dispatch: handlers interleave at co_await
        // points, so admitting a cross-epoch request and checking later
        // would let it observe mid-handoff state.  If the caller is AHEAD
        // of us we missed a bump (e.g. a lost broadcast) — pull a fresh
        // table, but still NACK: the gate never serves across epochs.
        if (m.routing_epoch > routing_epoch_ && stale_epoch_cb_) {
          stale_epoch_cb_();
        }
        recycle(std::move(m.payload));
        Message r;
        r.from = address_;
        r.to = m.from;
        r.kind = MessageKind::kResponse;
        r.method = m.method;
        r.request_id = m.request_id;
        r.trace = m.trace;
        r.routing_epoch = routing_epoch_;
        r.wrong_epoch = true;
        network_.send(std::move(r));
        return;
      }
      auto it = handlers_.find(m.method);
      if (it == handlers_.end()) {
        LOG_ERROR("no handler for method " << m.method << " at " << address_);
        recycle(std::move(m.payload));
        return;
      }
      // Handlers read this synchronously before their first suspension.
      inbound_trace_ = m.trace;
      sim::spawn(run_handler(it->second, std::move(m)));
      return;
    }
    case MessageKind::kResponse: {
      auto it = pending_.find(m.request_id);
      if (it == pending_.end()) {
        // Either a duplicate delivery or a response that lost the race
        // against its timeout.
        LOG_DEBUG("orphan response at " << address_);
        recycle(std::move(m.payload));
        return;
      }
      Pending p = std::move(it->second);
      const size_t resp_bytes = m.wire_size();
      pending_.erase(it);
      SizedResponse r;
      r.payload = std::move(m.payload);
      r.request_wire_bytes = p.request_wire_bytes;
      r.response_wire_bytes = resp_bytes;
      r.status = m.wrong_epoch ? RpcStatus::kWrongEpoch : RpcStatus::kOk;
      r.peer_epoch = m.routing_epoch;
      p.promise.set_value(std::move(r));
      return;
    }
    case MessageKind::kOneWay: {
      auto it = oneway_handlers_.find(m.method);
      if (it == oneway_handlers_.end()) {
        LOG_DEBUG("no one-way handler for method " << m.method);
        recycle(std::move(m.payload));
        return;
      }
      inbound_trace_ = m.trace;
      it->second(std::move(m.payload), m.from);
      return;
    }
  }
}

}  // namespace faastcc::net
