#include "harness/sweep.h"

#include <poll.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <stdexcept>

#include "harness/configs.h"

namespace faastcc::harness {

namespace {

std::string format_double_label(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

// ---- plan expansion ------------------------------------------------------

struct AxisValue {
  std::string label;
  json::Value patch;  // RunSpec patch (may be an empty object)
};

struct Axis {
  std::string name;
  std::vector<AxisValue> values;
};

json::Value make_patch_object(
    std::vector<std::pair<std::string, json::Value>> fields) {
  json::Value v;
  v.type = json::Value::Type::kObject;
  v.fields = std::move(fields);
  return v;
}

json::Value make_string_value(std::string s) {
  json::Value v;
  v.type = json::Value::Type::kString;
  v.text = std::move(s);
  return v;
}

json::Value make_number_value(uint64_t n) {
  json::Value v;
  v.type = json::Value::Type::kNumber;
  v.text = std::to_string(n);
  return v;
}

Axis parse_axis(const json::Value& doc) {
  if (!doc.is_object()) throw SpecError("plan.axes: expected objects");
  Axis axis;
  if (const json::Value* name = doc.find("name")) {
    axis.name = name->as_string();
  }
  if (const json::Value* seeds = doc.find("seeds")) {
    // Sugar: {"seeds": {"base": B, "count": N}} -> s<B>..s<B+N-1>.
    const json::Value* base = seeds->find("base");
    const json::Value* count = seeds->find("count");
    if (base == nullptr || count == nullptr) {
      throw SpecError("plan axis 'seeds' needs base and count");
    }
    const uint64_t b = base->as_u64();
    const uint64_t n = count->as_u64();
    for (uint64_t i = 0; i < n; ++i) {
      AxisValue v;
      v.label = "s" + std::to_string(b + i);
      v.patch = make_patch_object({{"seed", make_number_value(b + i)}});
      axis.values.push_back(std::move(v));
    }
    return axis;
  }
  if (const json::Value* configs = doc.find("configs")) {
    // Sugar: {"configs": ["clean", ...]} -> one value per named config.
    if (!configs->is_array()) {
      throw SpecError("plan axis 'configs' must be an array");
    }
    for (const json::Value& c : configs->items) {
      AxisValue v;
      v.label = c.as_string();
      v.patch = make_patch_object({{"config", make_string_value(v.label)}});
      axis.values.push_back(std::move(v));
    }
    return axis;
  }
  const json::Value* values = doc.find("values");
  if (values == nullptr || !values->is_array() || values->items.empty()) {
    throw SpecError("plan axis needs a non-empty 'values' array "
                    "(or 'seeds'/'configs' sugar)");
  }
  for (const json::Value& item : values->items) {
    if (!item.is_object()) {
      throw SpecError("plan axis values must be objects");
    }
    AxisValue v;
    if (const json::Value* label = item.find("label")) {
      v.label = label->as_string();
    } else {
      throw SpecError("plan axis value needs a 'label'");
    }
    if (const json::Value* set = item.find("set")) {
      v.patch = *set;
    } else {
      v.patch = make_patch_object({});
    }
    axis.values.push_back(std::move(v));
  }
  return axis;
}

// ---- fork-per-run execution ---------------------------------------------

struct Worker {
  pid_t pid = -1;
  int fd = -1;
  size_t index = 0;
  std::string buffer;
};

[[noreturn]] void child_main(const SweepItem& item, int out_fd) {
  std::string line;
  int exit_code = 0;
  try {
    const RunOutput out = run_one(item.spec);
    line = run_output_to_json(out);
  } catch (const std::exception& e) {
    line = std::string("ERROR ") + e.what();
    exit_code = 3;
  }
  line.push_back('\n');
  size_t written = 0;
  while (written < line.size()) {
    const ssize_t n =
        write(out_fd, line.data() + written, line.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      _exit(4);
    }
    written += static_cast<size_t>(n);
  }
  _exit(exit_code);
}

void parse_record_fields(RunRecord& rec) {
  const json::Value doc = json::parse(rec.json);
  rec.committed = doc.find("committed")->as_u64();
  rec.sim_events = doc.find("sim_events")->as_u64();
  rec.messages = doc.find("messages")->as_u64();
  const json::Value* oracle = doc.find("oracle");
  rec.checked = oracle->find("checked")->as_bool();
  rec.violations = static_cast<size_t>(oracle->find("violations")->as_u64());
  rec.violation_kind = oracle->find("violation_kind")->as_string();
  rec.oracle_report = oracle->find("report")->as_string();
}

void run_serial(const SweepPlan& plan, const SweepOptions& opts,
                SweepResult& result) {
  for (size_t i = 0; i < plan.items.size(); ++i) {
    const SweepItem& item = plan.items[i];
    const RunOutput out = run_one(item.spec);
    RunRecord& rec = result.records[i];
    rec.json = run_output_to_json(out);
    rec.ran = true;
    parse_record_fields(rec);
    if (opts.verbose) {
      std::fprintf(stderr, "[sweep] %-40s committed=%-6llu %s\n",
                   item.id.c_str(),
                   static_cast<unsigned long long>(rec.committed),
                   rec.violations == 0 ? "ok" : "VIOLATION");
    }
    if (opts.stop_on_violation && rec.violations > 0) return;
  }
}

void run_parallel(const SweepPlan& plan, const SweepOptions& opts,
                  SweepResult& result) {
  const size_t total = plan.items.size();
  size_t next = 0;
  size_t active = 0;
  std::vector<Worker> workers;

  auto spawn_next = [&]() {
    int fds[2];
    if (pipe(fds) != 0) {
      throw std::runtime_error(std::string("sweep: pipe failed: ") +
                               std::strerror(errno));
    }
    // Flush stdio so the child does not replay buffered parent output.
    std::fflush(nullptr);
    const pid_t pid = fork();
    if (pid < 0) {
      close(fds[0]);
      close(fds[1]);
      throw std::runtime_error(std::string("sweep: fork failed: ") +
                               std::strerror(errno));
    }
    if (pid == 0) {
      close(fds[0]);
      child_main(plan.items[next], fds[1]);
    }
    close(fds[1]);
    Worker w;
    w.pid = pid;
    w.fd = fds[0];
    w.index = next;
    workers.push_back(std::move(w));
    ++next;
    ++active;
  };

  auto finish_worker = [&](Worker& w) {
    close(w.fd);
    w.fd = -1;
    int status = 0;
    while (waitpid(w.pid, &status, 0) < 0) {
      if (errno != EINTR) {
        throw std::runtime_error("sweep: waitpid failed");
      }
    }
    --active;
    const SweepItem& item = plan.items[w.index];
    if (w.buffer.rfind("ERROR ", 0) == 0) {
      throw SpecError("sweep run '" + item.id +
                      "' failed: " + w.buffer.substr(6));
    }
    const bool exited_ok = WIFEXITED(status) && WEXITSTATUS(status) == 0;
    if (!exited_ok || w.buffer.empty() || w.buffer.back() != '\n') {
      throw std::runtime_error("sweep worker for '" + item.id +
                               "' died without delivering a record");
    }
    RunRecord& rec = result.records[w.index];
    rec.json = w.buffer.substr(0, w.buffer.size() - 1);
    rec.ran = true;
    parse_record_fields(rec);
    if (opts.verbose) {
      std::fprintf(stderr, "[sweep] %-40s committed=%-6llu %s\n",
                   item.id.c_str(),
                   static_cast<unsigned long long>(rec.committed),
                   rec.violations == 0 ? "ok" : "VIOLATION");
    }
  };

  while (next < total || active > 0) {
    while (next < total && active < static_cast<size_t>(opts.jobs)) {
      spawn_next();
    }
    std::vector<pollfd> fds;
    for (const Worker& w : workers) {
      if (w.fd >= 0) fds.push_back(pollfd{w.fd, POLLIN, 0});
    }
    if (fds.empty()) break;
    const int r = poll(fds.data(), fds.size(), -1);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("sweep: poll failed: ") +
                               std::strerror(errno));
    }
    for (const pollfd& p : fds) {
      if ((p.revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      Worker* w = nullptr;
      for (Worker& cand : workers) {
        if (cand.fd == p.fd) {
          w = &cand;
          break;
        }
      }
      if (w == nullptr) continue;
      char buf[65536];
      const ssize_t n = read(p.fd, buf, sizeof(buf));
      if (n > 0) {
        w->buffer.append(buf, static_cast<size_t>(n));
      } else if (n == 0) {
        finish_worker(*w);
      } else if (errno != EINTR && errno != EAGAIN) {
        throw std::runtime_error(std::string("sweep: read failed: ") +
                                 std::strerror(errno));
      }
    }
  }
}

}  // namespace

SweepPlan SweepPlan::from_json(const json::Value& doc) {
  if (!doc.is_object()) throw SpecError("plan: expected a JSON object");
  if (const json::Value* schema = doc.find("schema")) {
    if (schema->as_string() != "faastcc.sweep_plan.v1") {
      throw SpecError("plan: unknown schema '" + schema->as_string() + "'");
    }
  }
  RunSpec base;
  if (const json::Value* b = doc.find("base")) {
    apply_spec_patch(base, *b);
  }
  std::vector<Axis> axes;
  if (const json::Value* a = doc.find("axes")) {
    if (!a->is_array()) throw SpecError("plan.axes: expected an array");
    for (const json::Value& axis_doc : a->items) {
      axes.push_back(parse_axis(axis_doc));
    }
  }
  for (const auto& [key, value] : doc.fields) {
    (void)value;
    if (key != "schema" && key != "base" && key != "axes") {
      throw SpecError("plan: unknown key '" + key + "'");
    }
  }

  SweepPlan plan;
  if (axes.empty()) {
    plan.items.push_back(SweepItem{base, "run"});
    return plan;
  }
  // Cartesian product, first axis outermost.
  std::vector<size_t> cursor(axes.size(), 0);
  for (;;) {
    SweepItem item;
    item.spec = base;
    for (size_t a = 0; a < axes.size(); ++a) {
      const AxisValue& v = axes[a].values[cursor[a]];
      apply_spec_patch(item.spec, v.patch);
      if (!item.id.empty()) item.id.push_back('/');
      item.id += v.label;
    }
    plan.items.push_back(std::move(item));
    // Odometer increment (last axis fastest).
    size_t a = axes.size();
    for (;;) {
      if (a == 0) return plan;
      --a;
      if (++cursor[a] < axes[a].values.size()) break;
      cursor[a] = 0;
    }
  }
}

SweepPlan SweepPlan::from_text(std::string_view text) {
  json::Value doc;
  try {
    doc = json::parse(text);
  } catch (const json::ParseError& e) {
    throw SpecError(std::string("plan: ") + e.what());
  }
  return from_json(doc);
}

SweepResult run_sweep(const SweepPlan& plan, const SweepOptions& opts) {
  SweepResult result;
  result.records.resize(plan.items.size());
  for (size_t i = 0; i < plan.items.size(); ++i) {
    result.records[i].id = plan.items[i].id;
  }
  const auto t0 = std::chrono::steady_clock::now();
  if (opts.jobs <= 1) {
    run_serial(plan, opts, result);
  } else {
    run_parallel(plan, opts, result);
  }
  const auto t1 = std::chrono::steady_clock::now();
  result.wall_seconds = std::chrono::duration<double>(t1 - t0).count();

  for (size_t i = 0; i < result.records.size(); ++i) {
    const RunRecord& rec = result.records[i];
    if (!rec.ran) continue;
    ++result.runs;
    result.total_committed += rec.committed;
    result.total_sim_events += rec.sim_events;
    result.total_messages += rec.messages;
    if (rec.violations > 0) {
      ++result.runs_with_violations;
      if (result.first_violation == SIZE_MAX) result.first_violation = i;
    }
  }
  return result;
}

std::string merge_to_json(const SweepPlan& plan, const SweepResult& result) {
  // Per-cell aggregates, keyed by the scale-study axes.  std::map keys the
  // cells deterministically by value, independent of plan order.
  struct Cell {
    size_t runs = 0;
    uint64_t committed = 0;
    uint64_t sim_events = 0;
    uint64_t messages = 0;
    double throughput_sum = 0;
    double latency_med_sum = 0;
    double latency_p99_sum = 0;
    double abort_rate_sum = 0;
    double hit_rate_sum = 0;
    uint64_t stale_drops = 0;
    size_t violations = 0;
    // Routing-plane end state, max over the cell's runs (same-shape runs
    // agree; the max keeps a mixed cell conservative).
    uint64_t routing_active_partitions = 0;
    uint64_t routing_epoch = 0;
  };
  // system, config, stab, P, N, zipf.  The stab dimension (stabilization
  // topology [+fanout] @ gossip period) keeps cells distinct in topology ×
  // period sweeps, where nothing else differs between variants.
  using CellKey = std::tuple<std::string, std::string, std::string, size_t,
                             size_t, std::string>;
  std::map<CellKey, Cell> cells;
  const auto stab_label = [](const ClusterParams& p) {
    std::string s = storage::stab_topology_name(p.tcc.stab_topology);
    if (p.tcc.stab_topology == storage::StabTopology::kTree) {
      s += std::to_string(p.tcc.tree_fanout);
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "@%gms",
                  static_cast<double>(p.tcc.gossip_period) / 1000.0);
    return s + buf;
  };

  json::Writer w;
  w.begin_object();
  w.key("schema");
  w.string("faastcc.sweep.v1");
  w.key("runs");
  w.begin_array();
  for (size_t i = 0; i < plan.items.size(); ++i) {
    const SweepItem& item = plan.items[i];
    const RunRecord& rec = result.records[i];
    if (!rec.ran) continue;
    const ClusterParams p = item.spec.resolve();
    w.begin_object();
    w.key("id");
    w.string(rec.id);
    w.key("system");
    w.string(system_spec_name(p.system));
    w.key("config");
    w.string(item.spec.config.empty() ? "-" : item.spec.config);
    w.key("partitions");
    w.u64(p.partitions);
    w.key("compute_nodes");
    w.u64(p.compute_nodes);
    w.key("clients");
    w.u64(p.clients);
    w.key("dags_per_client");
    w.i64(p.dags_per_client);
    w.key("zipf");
    w.number(p.workload.zipf);
    w.key("seed");
    w.u64(p.seed);
    w.key("result");
    w.raw(rec.json);
    w.end_object();

    const json::Value doc = json::parse(rec.json);
    const json::Value* summary = doc.find("summary");
    Cell& cell = cells[CellKey{system_spec_name(p.system),
                               item.spec.config.empty() ? "-"
                                                        : item.spec.config,
                               stab_label(p), p.partitions, p.compute_nodes,
                               format_double_label(p.workload.zipf)}];
    ++cell.runs;
    cell.committed += rec.committed;
    cell.sim_events += rec.sim_events;
    cell.messages += rec.messages;
    cell.throughput_sum += doc.find("throughput")->as_double();
    cell.latency_med_sum += summary->find("latency_med_ms")->as_double();
    cell.latency_p99_sum += summary->find("latency_p99_ms")->as_double();
    cell.abort_rate_sum += summary->find("abort_rate")->as_double();
    cell.hit_rate_sum += summary->find("hit_rate")->as_double();
    cell.stale_drops += static_cast<uint64_t>(
        summary->find("stab_stale_drops")->as_double());
    cell.routing_active_partitions = std::max(
        cell.routing_active_partitions,
        static_cast<uint64_t>(
            summary->find("routing_active_partitions")->as_double()));
    cell.routing_epoch = std::max(
        cell.routing_epoch,
        static_cast<uint64_t>(summary->find("routing_epoch")->as_double()));
    cell.violations += rec.violations;
  }
  w.end_array();

  w.key("cells");
  w.begin_array();
  for (const auto& [key, cell] : cells) {
    const auto& [system, config, stab, partitions, nodes, zipf] = key;
    w.begin_object();
    w.key("system");
    w.string(system);
    w.key("config");
    w.string(config);
    w.key("stab");
    w.string(stab);
    w.key("partitions");
    w.u64(partitions);
    w.key("compute_nodes");
    w.u64(nodes);
    w.key("zipf");
    w.raw(zipf);
    w.key("runs");
    w.u64(cell.runs);
    w.key("committed");
    w.u64(cell.committed);
    w.key("sim_events");
    w.u64(cell.sim_events);
    w.key("messages");
    w.u64(cell.messages);
    w.key("throughput_mean");
    w.number(cell.throughput_sum / static_cast<double>(cell.runs));
    w.key("latency_med_ms_mean");
    w.number(cell.latency_med_sum / static_cast<double>(cell.runs));
    w.key("latency_p99_ms_mean");
    w.number(cell.latency_p99_sum / static_cast<double>(cell.runs));
    w.key("abort_rate_mean");
    w.number(cell.abort_rate_sum / static_cast<double>(cell.runs));
    w.key("hit_rate_mean");
    w.number(cell.hit_rate_sum / static_cast<double>(cell.runs));
    w.key("stale_drops");
    w.u64(cell.stale_drops);
    w.key("routing_active_partitions");
    w.u64(cell.routing_active_partitions);
    w.key("routing_epoch");
    w.u64(cell.routing_epoch);
    w.key("violations");
    w.u64(cell.violations);
    w.end_object();
  }
  w.end_array();

  w.key("totals");
  w.begin_object();
  w.key("runs");
  w.u64(result.runs);
  w.key("committed");
  w.u64(result.total_committed);
  w.key("sim_events");
  w.u64(result.total_sim_events);
  w.key("messages");
  w.u64(result.total_messages);
  w.key("runs_with_violations");
  w.u64(result.runs_with_violations);
  w.end_object();

  w.end_object();
  std::string out = w.take();
  out.push_back('\n');
  return out;
}

}  // namespace faastcc::harness
