// Single-producer, single-consumer future for cross-process signalling
// inside the simulation (RPC responses, DAG completion notifications,
// executor wake-ups).  Fulfilment resumes the waiter through the event
// loop, never inline, which keeps event ordering well-defined and stacks
// flat.
#pragma once

#include <cassert>
#include <coroutine>
#include <memory>
#include <optional>
#include <utility>

#include "sim/event_loop.h"

namespace faastcc::sim {

namespace detail {

template <typename T>
struct FutureState {
  explicit FutureState(EventLoop& l) : loop(&l) {}
  EventLoop* loop;
  std::optional<T> value;
  std::coroutine_handle<> waiter;

  void fulfil(T v) {
    assert(!value.has_value() && "future fulfilled twice");
    value.emplace(std::move(v));
    if (waiter) {
      loop->schedule_resume(std::exchange(waiter, nullptr));
    }
  }
};

}  // namespace detail

template <typename T>
class Future;

template <typename T>
class Promise {
 public:
  explicit Promise(EventLoop& loop)
      : state_(std::make_shared<detail::FutureState<T>>(loop)) {}

  void set_value(T v) const { state_->fulfil(std::move(v)); }
  bool fulfilled() const { return state_->value.has_value(); }

  Future<T> get_future() const;

 private:
  std::shared_ptr<detail::FutureState<T>> state_;
};

template <typename T>
class Future {
 public:
  explicit Future(std::shared_ptr<detail::FutureState<T>> s)
      : state_(std::move(s)) {}

  bool ready() const { return state_->value.has_value(); }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::shared_ptr<detail::FutureState<T>> state;
      bool await_ready() const noexcept { return state->value.has_value(); }
      void await_suspend(std::coroutine_handle<> h) noexcept {
        assert(!state->waiter && "future awaited twice");
        state->waiter = h;
      }
      T await_resume() { return std::move(*state->value); }
    };
    return Awaiter{state_};
  }

 private:
  std::shared_ptr<detail::FutureState<T>> state_;
};

template <typename T>
Future<T> Promise<T>::get_future() const {
  return Future<T>(state_);
}

// Suspends the current task for `d` simulated microseconds.
inline auto sleep_for(EventLoop& loop, Duration d) {
  struct Awaiter {
    EventLoop& loop;
    Duration d;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) const {
      loop.schedule_resume_after(d, h);
    }
    void await_resume() const noexcept {}
  };
  return Awaiter{loop, d};
}

// Yields to the event loop, resuming at the current simulated time after
// already-queued events.
inline auto yield(EventLoop& loop) { return sleep_for(loop, 0); }

}  // namespace faastcc::sim
