file(REMOVE_RECURSE
  "libfaastcc_client_base.a"
)
