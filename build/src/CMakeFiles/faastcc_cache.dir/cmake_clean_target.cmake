file(REMOVE_RECURSE
  "libfaastcc_cache.a"
)
