#include "net/network.h"

#include <cassert>
#include <utility>

#include "common/log.h"

namespace faastcc::net {
namespace {

uint64_t pair_key(Address a, Address b) {
  if (a > b) std::swap(a, b);
  return (static_cast<uint64_t>(a) << 32) | b;
}

}  // namespace

void Network::register_endpoint(Address addr, Handler handler) {
  assert(endpoints_.find(addr) == endpoints_.end() &&
         "endpoint registered twice");
  endpoints_.emplace(addr, std::move(handler));
}

void Network::colocate(Address a, Address b) {
  colocated_[pair_key(a, b)] = true;
}

Duration Network::delivery_delay(Address from, Address to, size_t bytes) {
  if (from == to || colocated_.count(pair_key(from, to)) != 0) {
    return params_.local_delivery;
  }
  const auto serialization = static_cast<Duration>(
      static_cast<double>(bytes) / params_.bandwidth_bytes_per_us);
  const Duration jitter =
      params_.jitter > 0
          ? static_cast<Duration>(rng_.next_below(
                static_cast<uint64_t>(params_.jitter)))
          : 0;
  return params_.base_latency + jitter + serialization;
}

void Network::send(Message m) {
  messages_sent_.inc();
  bytes_sent_.inc(m.wire_size());
  const Duration delay = delivery_delay(m.from, m.to, m.wire_size());
  loop_.schedule_after(delay, [this, m = std::move(m)]() mutable {
    auto it = endpoints_.find(m.to);
    if (it == endpoints_.end()) {
      messages_dropped_.inc();
      LOG_DEBUG("dropping message to unregistered address " << m.to);
      return;
    }
    it->second(std::move(m));
  });
}

}  // namespace faastcc::net
