file(REMOVE_RECURSE
  "CMakeFiles/faas_test.dir/faas_test.cc.o"
  "CMakeFiles/faas_test.dir/faas_test.cc.o.d"
  "faas_test"
  "faas_test.pdb"
  "faas_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faas_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
