#!/usr/bin/env python3
"""Compare (or schema-check) BENCH_wallclock.json / BENCH_scale.json files.

Usage:
    bench_diff.py OLD.json NEW.json     # print per-system before/after table
    bench_diff.py --check FILE.json     # validate schema, exit 1 on failure

Both forms dispatch on the file's `schema` field.  Wallclock artifacts
(faastcc.bench_wallclock.v1) get the per-system table below.  Merged sweep
artifacts (faastcc.sweep.v1, written by tools/tcc_sweep) get a structural
check instead: every run record and cell aggregate must carry the required
keys, the totals must equal the recomputed per-run sums, and any run with
oracle violations fails the check — so a committed BENCH_scale.json always
represents a clean, internally consistent sweep.

Either form accepts repeated perf-floor assertions:

    bench_diff.py --check FILE.json --min-events-per-sec HydroCache=300000

which fail (exit 1) if the named system's `events_per_sec` in the checked
file (the NEW file, for a diff) is below the floor.  CI uses this to keep
hard-won baseline speedups from silently rotting.

Sweep artifacts additionally accept per-cell maintenance-message ceilings:

    bench_diff.py --check SWEEP.json \
        --max-cell-messages -/tree4@20ms/p512/z1.40=800000

The label must equal a cell's full label
(`{config}[/{stab}]/p{partitions}/z{zipf:.2f}`) exactly, and that cell
must average at most CEILING network messages per run.  A label matching
no cell fails and lists the cells present in the file: substring matching
was dropped because an ambiguous label silently gated whichever cells
happened to contain it.  CI uses this to keep the aggregation-tree
topology's O(P)-per-round gossip from regressing back toward the mesh's
O(P²).

The wallclock bench runs a deterministic simulation, so `sim_events`,
`messages` and `committed` act as schedule checksums: if they differ
between the two files (same config + seed), the runs are not comparable
and the diff exits with an error.
"""

import json
import sys

SCHEMA = "faastcc.bench_wallclock.v1"

REQUIRED_SYSTEM_KEYS = {
    "wall_ms": (int, float),
    "sim_events": int,
    "messages": int,
    "committed": int,
    "events_per_sec": (int, float),
    "messages_per_sec": (int, float),
}

# Present in files written since the per-system RSS attribution landed;
# absent (and not required) in older files so --check keeps accepting them.
OPTIONAL_SYSTEM_KEYS = {
    "peak_rss_delta_kb": int,
}

REQUIRED_CONFIG_KEYS = {
    "partitions": int,
    "compute_nodes": int,
    "clients": int,
    "dags_per_client": int,
    "num_keys": int,
    "dag_size": int,
    "seed": int,
    "repeats": int,
}


SWEEP_SCHEMA = "faastcc.sweep.v1"

SWEEP_RUN_KEYS = {
    "id": str,
    "system": str,
    "config": str,
    "partitions": int,
    "compute_nodes": int,
    "clients": int,
    "dags_per_client": int,
    "zipf": (int, float),
    "seed": int,
    "result": dict,
}

# Optional: present in artifacts written since the stabilization-topology
# cell dimension landed (keeps topology × gossip-period sweep cells
# distinct) and, for stale_drops, since cells began carrying the
# membership-drop sum; absent in older files.
OPTIONAL_SWEEP_CELL_KEYS = {
    "stab": str,
    "stale_drops": int,
}

SWEEP_CELL_KEYS = {
    "system": str,
    "config": str,
    "partitions": int,
    "compute_nodes": int,
    "zipf": (int, float),
    "runs": int,
    "committed": int,
    "sim_events": int,
    "messages": int,
    "throughput_mean": (int, float),
    "latency_med_ms_mean": (int, float),
    "latency_p99_ms_mean": (int, float),
    "abort_rate_mean": (int, float),
    "hit_rate_mean": (int, float),
    "violations": int,
}


def fail(msg):
    print(f"bench_diff: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")


def check(doc, path):
    if doc.get("schema") != SCHEMA:
        fail(f"{path}: schema is {doc.get('schema')!r}, expected {SCHEMA!r}")
    config = doc.get("config")
    if not isinstance(config, dict):
        fail(f"{path}: missing config object")
    for key, ty in REQUIRED_CONFIG_KEYS.items():
        if not isinstance(config.get(key), ty):
            fail(f"{path}: config.{key} missing or not {ty}")
    if not isinstance(doc.get("peak_rss_kb"), int) or doc["peak_rss_kb"] <= 0:
        fail(f"{path}: peak_rss_kb missing or non-positive")
    systems = doc.get("systems")
    if not isinstance(systems, dict) or not systems:
        fail(f"{path}: missing systems object")
    for name, sysdoc in systems.items():
        if not isinstance(sysdoc, dict):
            fail(f"{path}: systems.{name} is not an object")
        for key, ty in REQUIRED_SYSTEM_KEYS.items():
            value = sysdoc.get(key)
            if not isinstance(value, ty) or isinstance(value, bool):
                fail(f"{path}: systems.{name}.{key} missing or not {ty}")
            if value <= 0:
                fail(f"{path}: systems.{name}.{key} is non-positive")
        for key, ty in OPTIONAL_SYSTEM_KEYS.items():
            value = sysdoc.get(key)
            if value is None:
                continue
            if not isinstance(value, ty) or isinstance(value, bool):
                fail(f"{path}: systems.{name}.{key} not {ty}")
            if value < 0:
                fail(f"{path}: systems.{name}.{key} is negative")
    total = doc.get("total")
    if not isinstance(total, dict) or not isinstance(
        total.get("wall_ms"), (int, float)
    ):
        fail(f"{path}: missing total.wall_ms")
    return doc


def check_sweep(doc, path):
    """Validate a merged sweep artifact (faastcc.sweep.v1)."""
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        fail(f"{path}: missing or empty runs array")
    seen_ids = set()
    committed = events = messages = violations = 0
    for i, run in enumerate(runs):
        if not isinstance(run, dict):
            fail(f"{path}: runs[{i}] is not an object")
        for key, ty in SWEEP_RUN_KEYS.items():
            value = run.get(key)
            if not isinstance(value, ty) or isinstance(value, bool):
                fail(f"{path}: runs[{i}].{key} missing or not {ty}")
        if run["id"] in seen_ids:
            fail(f"{path}: duplicate run id {run['id']!r}")
        seen_ids.add(run["id"])
        result = run["result"]
        oracle = result.get("oracle")
        if not isinstance(oracle, dict):
            fail(f"{path}: runs[{i}].result.oracle missing")
        committed += result.get("committed", 0)
        events += result.get("sim_events", 0)
        messages += result.get("messages", 0)
        violations += oracle.get("violations", 0)
        if oracle.get("violations", 0):
            fail(
                f"{path}: run {run['id']!r} has {oracle['violations']} "
                f"oracle violation(s) ({oracle.get('violation_kind')})"
            )

    cells = doc.get("cells")
    if not isinstance(cells, list) or not cells:
        fail(f"{path}: missing or empty cells array")
    cell_runs = 0
    for i, cell in enumerate(cells):
        for key, ty in SWEEP_CELL_KEYS.items():
            value = cell.get(key)
            if not isinstance(value, ty) or isinstance(value, bool):
                fail(f"{path}: cells[{i}].{key} missing or not {ty}")
        for key, ty in OPTIONAL_SWEEP_CELL_KEYS.items():
            value = cell.get(key)
            if value is not None and not isinstance(value, ty):
                fail(f"{path}: cells[{i}].{key} not {ty}")
        cell_runs += cell["runs"]
    if cell_runs != len(runs):
        fail(f"{path}: cells cover {cell_runs} runs, file has {len(runs)}")

    totals = doc.get("totals")
    if not isinstance(totals, dict):
        fail(f"{path}: missing totals object")
    recomputed = {
        "runs": len(runs),
        "committed": committed,
        "sim_events": events,
        "messages": messages,
        "runs_with_violations": 0 if violations == 0 else None,
    }
    for key, want in recomputed.items():
        if want is not None and totals.get(key) != want:
            fail(
                f"{path}: totals.{key} is {totals.get(key)}, "
                f"recomputed {want}"
            )
    print(
        f"{path}: ok ({len(runs)} runs, {committed} DAGs committed, "
        f"{events} sim events, 0 violations)"
    )
    return doc


def diff_sweep(old, new):
    """Per-cell before/after table for two merged sweep artifacts."""
    def key(cell):
        return (
            cell["system"], cell["config"], cell.get("stab", ""),
            cell["partitions"], cell["compute_nodes"], cell["zipf"],
        )

    old_cells = {key(c): c for c in old["cells"]}
    shared = [c for c in new["cells"] if key(c) in old_cells]
    if not shared:
        fail("no cell appears in both sweep files")

    header = (
        f"{'cell':<34} {'thru/s':>9} {'->':^4} {'thru/s':>9} "
        f"{'p99 ms':>8} {'->':^4} {'p99 ms':>8}"
    )
    print(header)
    print("-" * len(header))
    mismatched = []
    for cell in shared:
        o = old_cells[key(cell)]
        label = cell_label(cell)
        for checksum in ("committed", "sim_events", "messages"):
            if o[checksum] != cell[checksum]:
                mismatched.append(
                    f"{label}.{checksum}: {o[checksum]} -> {cell[checksum]}"
                )
        print(
            f"{label:<34} {o['throughput_mean']:>9.0f} {'->':^4} "
            f"{cell['throughput_mean']:>9.0f} "
            f"{o['latency_p99_ms_mean']:>8.3f} {'->':^4} "
            f"{cell['latency_p99_ms_mean']:>8.3f}"
        )
    if mismatched:
        fail(
            "determinism checksums differ (schedule changed, runs not "
            "comparable):\n  " + "\n  ".join(mismatched)
        )


def cell_label(cell):
    stab = cell.get("stab")
    mid = f"/{stab}" if stab else ""
    return (
        f"{cell['config']}{mid}/p{cell['partitions']}/z{cell['zipf']:.2f}"
    )


def enforce_cell_ceilings(doc, path, ceilings):
    """Fail if any named sweep cell averages more messages per run than its
    ceiling (or if a label names no cell).  Labels match exactly: substring
    matching silently gated whichever cells happened to contain the label."""
    cells = {cell_label(c): c for c in doc.get("cells", [])}
    failures = []
    for label, ceiling in ceilings.items():
        cell = cells.get(label)
        if cell is None:
            known = "\n    ".join(sorted(cells))
            failures.append(
                f"{label!r} matches no cell exactly; cells in this file:"
                f"\n    {known}"
            )
            continue
        per_run = cell["messages"] / max(cell["runs"], 1)
        if per_run > ceiling:
            failures.append(
                f"{label}: {per_run:.0f} messages/run "
                f"> ceiling {ceiling:.0f}"
            )
    if failures:
        fail(
            f"{path}: maintenance-message ceiling violated:\n  "
            + "\n  ".join(failures)
        )


def enforce_floors(doc, path, floors):
    """Fail if any named system's events_per_sec is below its floor."""
    failures = []
    for name, floor in floors.items():
        sysdoc = doc.get("systems", {}).get(name)
        if sysdoc is None:
            failures.append(f"{name}: not present in {path}")
            continue
        eps = sysdoc["events_per_sec"]
        if eps < floor:
            failures.append(
                f"{name}.events_per_sec {eps:.0f} < floor {floor:.0f}"
            )
    if failures:
        fail(f"{path}: perf floor violated:\n  " + "\n  ".join(failures))


def parse_floor(spec):
    name, sep, floor = spec.partition("=")
    if not sep or not name:
        fail(f"expected NAME=NUMBER, got {spec!r}")
    try:
        return name, float(floor)
    except ValueError:
        fail(f"not a number: {spec!r}")


def diff(old_path, new_path):
    old = check(load(old_path), old_path)
    new = check(load(new_path), new_path)
    if old["config"] != new["config"]:
        print("WARNING: configs differ; ratios are not apples-to-apples",
              file=sys.stderr)

    names = [n for n in old["systems"] if n in new["systems"]]
    if not names:
        fail("no system appears in both files")

    header = (
        f"{'system':<12} {'wall_ms':>10} {'->':^4} {'wall_ms':>10} "
        f"{'speedup':>8}  {'events/s':>12} {'->':^4} {'events/s':>12} "
        f"{'ratio':>7}"
    )
    print(header)
    print("-" * len(header))
    mismatched = []
    ratios = []
    for name in names:
        o, n = old["systems"][name], new["systems"][name]
        if old["config"] == new["config"]:
            for checksum in ("sim_events", "messages", "committed"):
                if o[checksum] != n[checksum]:
                    mismatched.append(
                        f"{name}.{checksum}: {o[checksum]} -> {n[checksum]}"
                    )
        speedup = o["wall_ms"] / n["wall_ms"]
        ratio = n["events_per_sec"] / o["events_per_sec"]
        ratios.append(ratio)
        rss = ""
        if "peak_rss_delta_kb" in o and "peak_rss_delta_kb" in n:
            rss = (
                f"  rss {o['peak_rss_delta_kb']}"
                f" -> {n['peak_rss_delta_kb']} KiB"
            )
        print(
            f"{name:<12} {o['wall_ms']:>10.1f} {'->':^4} {n['wall_ms']:>10.1f} "
            f"{speedup:>7.2f}x  {o['events_per_sec']:>12.0f} {'->':^4} "
            f"{n['events_per_sec']:>12.0f} {ratio:>6.2f}x{rss}"
        )
    ot, nt = old["total"], new["total"]
    print("-" * len(header))
    print(
        f"{'total':<12} {ot['wall_ms']:>10.1f} {'->':^4} {nt['wall_ms']:>10.1f} "
        f"{ot['wall_ms'] / nt['wall_ms']:>7.2f}x  "
        f"geomean events/s ratio: "
        f"{(__import__('math').prod(ratios)) ** (1 / len(ratios)):.2f}x"
    )
    if mismatched:
        fail(
            "determinism checksums differ (schedule changed, runs not "
            "comparable):\n  " + "\n  ".join(mismatched)
        )
    return new


def main(argv):
    args = []
    floors = {}
    ceilings = {}
    check_mode = False
    i = 1
    while i < len(argv):
        arg = argv[i]
        if arg == "--check":
            check_mode = True
        elif arg == "--min-events-per-sec":
            if i + 1 >= len(argv):
                fail("--min-events-per-sec needs a SYSTEM=FLOOR argument")
            name, floor = parse_floor(argv[i + 1])
            floors[name] = floor
            i += 1
        elif arg.startswith("--min-events-per-sec="):
            name, floor = parse_floor(arg.split("=", 1)[1])
            floors[name] = floor
        elif arg == "--max-cell-messages":
            if i + 1 >= len(argv):
                fail("--max-cell-messages needs a LABEL=CEILING argument")
            name, ceiling = parse_floor(argv[i + 1])
            ceilings[name] = ceiling
            i += 1
        elif arg.startswith("--max-cell-messages="):
            name, ceiling = parse_floor(arg.split("=", 1)[1])
            ceilings[name] = ceiling
        else:
            args.append(arg)
        i += 1

    if check_mode and len(args) == 1:
        doc = load(args[0])
        if doc.get("schema") == SWEEP_SCHEMA:
            check_sweep(doc, args[0])
            enforce_cell_ceilings(doc, args[0], ceilings)
            return
        doc = check(doc, args[0])
        enforce_floors(doc, args[0], floors)
        print(f"{args[0]}: ok")
        return
    if not check_mode and len(args) == 2:
        old_doc, new_doc = load(args[0]), load(args[1])
        if (
            old_doc.get("schema") == SWEEP_SCHEMA
            or new_doc.get("schema") == SWEEP_SCHEMA
        ):
            check_sweep(old_doc, args[0])
            check_sweep(new_doc, args[1])
            diff_sweep(old_doc, new_doc)
            enforce_cell_ceilings(new_doc, args[1], ceilings)
            return
        new = diff(args[0], args[1])
        enforce_floors(new, args[1], floors)
        return
    print(__doc__, file=sys.stderr)
    sys.exit(2)


if __name__ == "__main__":
    main(sys.argv)
