#!/usr/bin/env python3
"""Summarize a faastcc_sim Chrome trace.

Reads the JSON written by `faastcc_sim --trace-out=...` and prints span
counts per category plus the top-N slowest spans — a quick sanity check
without loading the file into chrome://tracing or Perfetto.

Usage: trace_summarize.py trace.json [--top=5]

Standard library only; exits non-zero on malformed input so it can double
as a CI smoke check of the exporter.
"""

import json
import sys
from collections import defaultdict


def main(argv):
    top_n = 5
    path = None
    for arg in argv[1:]:
        if arg.startswith("--top="):
            top_n = int(arg.split("=", 1)[1])
        elif path is None:
            path = arg
        else:
            print(f"unexpected argument '{arg}'", file=sys.stderr)
            return 2
    if path is None:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        print("no traceEvents array in trace", file=sys.stderr)
        return 1
    spans = [e for e in events if e.get("ph") == "X"]
    if not spans:
        print("trace contains no complete ('X') spans", file=sys.stderr)
        return 1

    by_cat = defaultdict(lambda: [0, 0])  # cat -> [count, total_dur_us]
    traces = set()
    for s in spans:
        agg = by_cat[s.get("cat", "?")]
        agg[0] += 1
        agg[1] += s.get("dur", 0)
        traces.add(s.get("args", {}).get("trace", s.get("tid")))

    print(f"{len(spans)} spans across {len(traces)} traces")
    print(f"{'category':<12} {'count':>8} {'total ms':>10} {'mean us':>9}")
    for cat in sorted(by_cat):
        count, dur = by_cat[cat]
        print(f"{cat:<12} {count:>8} {dur / 1000:>10.3f} "
              f"{dur / count:>9.1f}")

    print(f"\ntop {top_n} slowest spans:")
    slowest = sorted(spans, key=lambda s: s.get("dur", 0), reverse=True)
    for s in slowest[:top_n]:
        args = s.get("args", {})
        notes = " ".join(
            f"{k}={v}" for k, v in args.items()
            if k not in ("trace", "span", "parent"))
        print(f"  {s.get('dur', 0):>8} us  {s.get('name', '?'):<16} "
              f"node={s.get('pid', '?'):<5} trace={args.get('trace', '?')}"
              f"{('  ' + notes) if notes else ''}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
