file(REMOVE_RECURSE
  "CMakeFiles/faastcc_sim.dir/sim/event_loop.cc.o"
  "CMakeFiles/faastcc_sim.dir/sim/event_loop.cc.o.d"
  "libfaastcc_sim.a"
  "libfaastcc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faastcc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
