// Ablation: the stabilization gossip period of the TCC storage layer.
//
// The stable time lags real time by roughly one gossip period; reads are
// clamped to it, so the period bounds how fresh a snapshot can be and how
// long the bounded retry in the cache may have to wait when stable views
// straddle a fan-out.
#include "bench_util.h"

using namespace faastcc;
using namespace faastcc::bench;

int main() {
  print_preamble("Ablation",
                 "stabilization gossip period, FaaSTCC, zipf 1.0");

  const Duration periods[] = {milliseconds(1), milliseconds(5),
                              milliseconds(20), milliseconds(50)};

  Table table({"gossip period", "median (ms)", "p99 (ms)", "hit rate %",
               "rounds p99", "abort %"});
  for (Duration period : periods) {
    const std::string key =
        "ablation_gossip_" + std::to_string(period) + "us_n" +
        std::to_string(harness::bench_dags_per_client());
    SummaryStats s;
    if (auto cached = harness::load_cached(key)) {
      s = *cached;
    } else {
      harness::ExperimentConfig cfg =
          base_config(SystemKind::kFaasTcc, 1.0, false);
      harness::ClusterParams params = harness::make_params(cfg);
      params.tcc.gossip_period = period;
      harness::Cluster cluster(std::move(params));
      const auto result = cluster.run();
      s = harness::summarize(result);
      harness::store_cached(key, s);
    }
    table.add_row({fmt(to_millis(period), 1) + " ms", fmt(s.latency_med_ms, 2),
                   fmt(s.latency_p99_ms, 2), fmt(100 * s.hit_rate, 1),
                   fmt(s.rounds_p99, 1), fmt(100 * s.abort_rate, 2)});
  }
  table.print();
  std::printf(
      "observed shape: the stable-time lag is the real freshness bound — "
      "the cache hit rate falls\nsteeply as the gossip period grows "
      "(promises can only ever be extended to the lagging\nstable time), "
      "while the median latency degrades gently because a miss costs one "
      "cheap\nstorage round.\n");
  return 0;
}
