file(REMOVE_RECURSE
  "CMakeFiles/faastcc_harness.dir/harness/cluster.cc.o"
  "CMakeFiles/faastcc_harness.dir/harness/cluster.cc.o.d"
  "CMakeFiles/faastcc_harness.dir/harness/experiment.cc.o"
  "CMakeFiles/faastcc_harness.dir/harness/experiment.cc.o.d"
  "CMakeFiles/faastcc_harness.dir/harness/summary.cc.o"
  "CMakeFiles/faastcc_harness.dir/harness/summary.cc.o.d"
  "CMakeFiles/faastcc_harness.dir/harness/table.cc.o"
  "CMakeFiles/faastcc_harness.dir/harness/table.cc.o.d"
  "libfaastcc_harness.a"
  "libfaastcc_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faastcc_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
