// Tests for the Snapshot Isolation extension (paper §7 future work):
// first-committer-wins write-write conflict detection on top of the TCC
// storage layer.
#include <gtest/gtest.h>

#include "harness/cluster.h"
#include "sim/when_all.h"
#include "storage/storage_client.h"
#include "storage/tcc_partition.h"

namespace faastcc::storage {
namespace {

std::vector<KeyValue> one_write(Key k, Value v) {
  std::vector<KeyValue> w;
  w.push_back(KeyValue{k, std::move(v)});
  return w;
}

class SiClusterTest : public ::testing::Test {
 protected:
  static constexpr size_t kPartitions = 2;

  SiClusterTest()
      : net_(loop_, net::NetworkParams{}, Rng(7)), client_rpc_(net_, 50) {
    TccTopology topo;
    for (size_t p = 0; p < kPartitions; ++p) {
      topo.partitions.push_back(100 + static_cast<net::Address>(p));
    }
    for (size_t p = 0; p < kPartitions; ++p) {
      TccPartitionParams params;
      params.gossip_period = milliseconds(2);
      partitions_.push_back(std::make_unique<TccPartition>(
          net_, topo.partitions[p], static_cast<PartitionId>(p),
          topo.partitions, params));
    }
    client_ = std::make_unique<TccStorageClient>(client_rpc_, topo);
    for (auto& p : partitions_) p->start();
    loop_.run_until(milliseconds(20));
  }

  template <typename F>
  void run(F&& body) {
    bool done = false;
    sim::spawn([](F f, bool& flag) -> sim::Task<void> {
      co_await f();
      flag = true;
    }(std::forward<F>(body), done));
    const SimTime deadline = loop_.now() + seconds(60);
    while (!done && loop_.now() < deadline) {
      loop_.run_until(loop_.now() + milliseconds(5));
    }
    ASSERT_TRUE(done);
  }

  sim::EventLoop loop_;
  net::Network net_;
  net::RpcNode client_rpc_;
  std::vector<std::unique_ptr<TccPartition>> partitions_;
  std::unique_ptr<TccStorageClient> client_;
};

TEST_F(SiClusterTest, NonConflictingCommitSucceeds) {
  run([&]() -> sim::Task<void> {
    auto cts = co_await client_->commit_si(1, one_write(5, "v1"),
                                           Timestamp::min(), Timestamp::max());
    EXPECT_TRUE(cts.has_value());
  });
}

TEST_F(SiClusterTest, WriteAfterSnapshotConflicts) {
  run([&]() -> sim::Task<void> {
    // T1 commits a version of key 5.
    const Timestamp t1 =
        *co_await client_->commit(1, one_write(5, "v1"), Timestamp::min());
    // T2's snapshot predates t1, so its write to key 5 must abort.
    auto cts = co_await client_->commit_si(2, one_write(5, "v2"),
                                           Timestamp::min(), t1.prev());
    EXPECT_FALSE(cts.has_value());
    // The version in the store is still T1's.
    const auto r = partitions_[5 % kPartitions]->store().read_at(
        5, Timestamp::max());
    EXPECT_EQ(r.version->value, "v1");
  });
}

TEST_F(SiClusterTest, WriteBeforeSnapshotDoesNotConflict) {
  run([&]() -> sim::Task<void> {
    const Timestamp t1 =
        *co_await client_->commit(1, one_write(5, "v1"), Timestamp::min());
    auto cts =
        co_await client_->commit_si(2, one_write(5, "v2"), t1, t1);
    EXPECT_TRUE(cts.has_value());
  });
}

TEST_F(SiClusterTest, ConcurrentPreparersFirstCommitterWins) {
  run([&]() -> sim::Task<void> {
    // Two transactions with the same snapshot race to write key 5.  The
    // prepare lock makes exactly one win, even though neither version is
    // installed when the other prepares.
    const Timestamp snapshot = partitions_[0]->stable_time();
    auto t1 = client_->commit_si(10, one_write(5, "a"), Timestamp::min(),
                                 snapshot);
    auto t2 = client_->commit_si(11, one_write(5, "b"), Timestamp::min(),
                                 snapshot);
    std::vector<sim::Task<std::optional<Timestamp>>> both;
    both.push_back(std::move(t1));
    both.push_back(std::move(t2));
    auto results = co_await sim::when_all(loop_, std::move(both));
    const int committed = static_cast<int>(results[0].has_value()) +
                          static_cast<int>(results[1].has_value());
    EXPECT_EQ(committed, 1) << "exactly one of two conflicting writers";
  });
}

TEST_F(SiClusterTest, DisjointWriteSetsBothCommit) {
  run([&]() -> sim::Task<void> {
    const Timestamp snapshot = partitions_[0]->stable_time();
    auto t1 = client_->commit_si(10, one_write(4, "a"), Timestamp::min(),
                                 snapshot);
    auto t2 = client_->commit_si(11, one_write(5, "b"), Timestamp::min(),
                                 snapshot);
    std::vector<sim::Task<std::optional<Timestamp>>> both;
    both.push_back(std::move(t1));
    both.push_back(std::move(t2));
    auto results = co_await sim::when_all(loop_, std::move(both));
    EXPECT_TRUE(results[0].has_value());
    EXPECT_TRUE(results[1].has_value());
  });
}

TEST_F(SiClusterTest, AbortReleasesLocksForLaterTxn) {
  run([&]() -> sim::Task<void> {
    const Timestamp t1 =
        *co_await client_->commit(1, one_write(5, "v1"), Timestamp::min());
    // Conflicting attempt aborts...
    auto bad = co_await client_->commit_si(2, one_write(5, "v2"),
                                           Timestamp::min(), t1.prev());
    EXPECT_FALSE(bad.has_value());
    // ... and a later transaction with a fresh snapshot succeeds (the
    // conflicting prepare must not have leaked a lock or a pending slot).
    auto good =
        co_await client_->commit_si(3, one_write(5, "v3"), t1, t1);
    EXPECT_TRUE(good.has_value());
  });
}

TEST_F(SiClusterTest, AbortDoesNotWedgeStableTime) {
  run([&]() -> sim::Task<void> {
    const Timestamp t1 =
        *co_await client_->commit(1, one_write(5, "v1"), Timestamp::min());
    auto bad = co_await client_->commit_si(2, one_write(5, "v2"),
                                           Timestamp::min(), t1.prev());
    EXPECT_FALSE(bad.has_value());
    const Timestamp before = partitions_[0]->stable_time();
    co_await sim::sleep_for(loop_, milliseconds(50));
    EXPECT_GT(partitions_[0]->stable_time(), before)
        << "aborted prepare pinned the stable time";
  });
}

TEST_F(SiClusterTest, MultiPartitionConflictAbortsEverywhere) {
  run([&]() -> sim::Task<void> {
    // Keys 4 and 5 live on different partitions.  A conflict on key 5
    // must also roll back the prepare on key 4's partition.
    const Timestamp t1 =
        *co_await client_->commit(1, one_write(5, "v1"), Timestamp::min());
    std::vector<KeyValue> writes;
    writes.push_back(KeyValue{4, "a"});
    writes.push_back(KeyValue{5, "b"});
    auto cts = co_await client_->commit_si(2, std::move(writes),
                                           Timestamp::min(), t1.prev());
    EXPECT_FALSE(cts.has_value());
    EXPECT_EQ(partitions_[4 % kPartitions]
                  ->store()
                  .read_at(4, Timestamp::max())
                  .version,
              nullptr)
        << "half of an aborted SI transaction was installed";
    co_await sim::sleep_for(loop_, milliseconds(50));
    const Timestamp before = partitions_[0]->stable_time();
    co_await sim::sleep_for(loop_, milliseconds(50));
    EXPECT_GT(partitions_[0]->stable_time(), before);
  });
}

// ---------------------------------------------------------------------------
// End to end: SI mode on the full FaaS stack prevents lost updates.
// ---------------------------------------------------------------------------

TEST(SiEndToEnd, ConcurrentIncrementsNeverLoseUpdates) {
  harness::ClusterParams params;
  params.system = harness::SystemKind::kFaasTcc;
  params.faastcc.snapshot_isolation = true;
  params.partitions = 2;
  params.compute_nodes = 4;
  params.clients = 0;
  params.workload.num_keys = 16;
  params.prewarm_caches = false;  // counter reads must hit storage fresh
  harness::Cluster cluster(params);

  constexpr Key kCounter = 3;
  cluster.registry().register_function(
      "increment", [kCounter](faas::ExecEnv& env) -> sim::Task<Buffer> {
        auto vals = co_await env.txn.read(std::vector<Key>(1, kCounter));
        if (!vals.has_value()) {
          env.abort_requested = true;
          co_return Buffer{};
        }
        const Value& v = (*vals)[0];
        int count = 0;
        if (!v.empty() && v[0] >= '0' && v[0] <= '9') {
          count = std::stoi(std::string(v.view()));
        }
        env.txn.write(kCounter, std::to_string(count + 1));
        co_return Buffer{};
      });

  cluster.start();
  net::RpcNode driver(cluster.network(), 900);
  int committed = 0;
  int aborted = 0;
  driver.handle_oneway(faas::kDagDone, [&](Buffer b, net::Address) {
    auto done = decode_message<faas::DagDoneMsg>(b);
    if (done.committed) {
      ++committed;
    } else {
      ++aborted;
    }
  });
  auto submit = [&](TxnId id) {
    faas::StartDagMsg start;
    start.txn_id = id;
    start.client = 900;
    faas::FunctionSpec f;
    f.name = "increment";
    start.spec = faas::DagSpec::chain({f});
    driver.send(cluster.scheduler_address(), faas::kStartDag, start);
  };

  // Launch batches of racing increments; retry aborted ones until 30
  // increments have committed.
  TxnId next = 1;
  int in_flight = 0;
  const int target = 30;
  while (committed < target && cluster.loop().now() < seconds(120)) {
    while (in_flight + committed < target) {
      submit(next++);
      ++in_flight;
    }
    const int before = committed + aborted;
    cluster.loop().run_until(cluster.loop().now() + milliseconds(5));
    in_flight -= (committed + aborted) - before;
  }
  ASSERT_EQ(committed, target);
  EXPECT_GT(aborted, 0) << "racing increments should conflict sometimes";

  // The counter equals the number of committed increments: no lost
  // updates, which plain TCC cannot guarantee.
  cluster.loop().run_until(cluster.loop().now() + milliseconds(50));
  const auto& partition =
      cluster.tcc_partitions()[kCounter % params.partitions];
  const auto r = partition->store().read_at(kCounter, Timestamp::max());
  ASSERT_NE(r.version, nullptr);
  EXPECT_EQ(r.version->value, std::to_string(target));
}

}  // namespace
}  // namespace faastcc::storage
