// Unit tests for the simulated network and RPC layer.
#include <gtest/gtest.h>

#include "net/network.h"
#include "net/rpc.h"
#include "sim/future.h"
#include "sim/when_all.h"

namespace faastcc::net {
namespace {

struct Echo {
  uint64_t x = 0;
  void encode(BufWriter& w) const { w.put_u64(x); }
  static Echo decode(BufReader& r) { return {r.get_u64()}; }
};

NetworkParams no_jitter() {
  NetworkParams p;
  p.jitter = 0;
  return p;
}

// ---------------------------------------------------------------------------
// Network
// ---------------------------------------------------------------------------

TEST(Network, DeliversAtBaseLatencyPlusSerialization) {
  sim::EventLoop loop;
  Network net(loop, no_jitter(), Rng(1));
  SimTime delivered = -1;
  net.register_endpoint(2, [&](Message) { delivered = loop.now(); });
  Message m;
  m.from = 1;
  m.to = 2;
  net.send(std::move(m));
  loop.run();
  // 32-byte header over 3125 B/us adds nothing measurable; base 75us.
  EXPECT_EQ(delivered, 75);
}

TEST(Network, LargeMessagesTakeBandwidthTime) {
  sim::EventLoop loop;
  Network net(loop, no_jitter(), Rng(1));
  SimTime delivered = -1;
  net.register_endpoint(2, [&](Message) { delivered = loop.now(); });
  Message m;
  m.from = 1;
  m.to = 2;
  m.payload.assign(3125 * 100, 0);  // 100 us of serialization at 25 Gbps
  net.send(std::move(m));
  loop.run();
  EXPECT_EQ(delivered, 175);
}

TEST(Network, ColocatedEndpointsUseIpcLatency) {
  sim::EventLoop loop;
  Network net(loop, no_jitter(), Rng(1));
  SimTime delivered = -1;
  net.register_endpoint(2, [&](Message) { delivered = loop.now(); });
  net.colocate(1, 2);
  Message m;
  m.from = 1;
  m.to = 2;
  net.send(std::move(m));
  loop.run();
  EXPECT_EQ(delivered, 5);
}

TEST(Network, JitterStaysWithinBound) {
  sim::EventLoop loop;
  NetworkParams p;
  p.jitter = 20;
  Network net(loop, p, Rng(99));
  std::vector<SimTime> deliveries;
  net.register_endpoint(2, [&](Message) { deliveries.push_back(loop.now()); });
  SimTime sent_at = 0;
  for (int i = 0; i < 200; ++i) {
    loop.schedule_at(i * 1000, [&net] {
      Message m;
      m.from = 1;
      m.to = 2;
      net.send(std::move(m));
    });
    (void)sent_at;
  }
  loop.run();
  ASSERT_EQ(deliveries.size(), 200u);
  for (int i = 0; i < 200; ++i) {
    const SimTime delay = deliveries[i] - i * 1000;
    EXPECT_GE(delay, 75);
    EXPECT_LT(delay, 96);
  }
}

TEST(Network, DropsToUnregisteredAddressAndCounts) {
  sim::EventLoop loop;
  Network net(loop, no_jitter(), Rng(1));
  Message m;
  m.from = 1;
  m.to = 77;
  net.send(std::move(m));
  loop.run();
  EXPECT_EQ(net.messages_dropped(), 1u);
}

TEST(Network, AccountsMessagesAndBytes) {
  sim::EventLoop loop;
  Network net(loop, no_jitter(), Rng(1));
  net.register_endpoint(2, [](Message) {});
  Message m;
  m.from = 1;
  m.to = 2;
  m.payload.assign(100, 0);
  net.send(std::move(m));
  loop.run();
  EXPECT_EQ(net.messages_sent(), 1u);
  EXPECT_EQ(net.bytes_sent(), 132u);  // payload + header
}

// ---------------------------------------------------------------------------
// RPC
// ---------------------------------------------------------------------------

TEST(Rpc, RoundTripTypedCall) {
  sim::EventLoop loop;
  Network net(loop, no_jitter(), Rng(1));
  RpcNode server(net, 1), client(net, 2);
  server.handle(7, [](Buffer b, Address) -> sim::Task<Buffer> {
    auto e = decode_message<Echo>(b);
    e.x *= 2;
    co_return encode_message(e);
  });
  uint64_t got = 0;
  sim::spawn([](RpcNode& c, uint64_t& out) -> sim::Task<void> {
    Echo e = co_await c.call<Echo>(1, 7, Echo{21});
    out = e.x;
  }(client, got));
  loop.run();
  EXPECT_EQ(got, 42u);
}

TEST(Rpc, RequestOutlivesCallerScope) {
  // Regression test for the lazy-task lifetime bug: requests built in a
  // loop and awaited later via when_all must not dangle.
  sim::EventLoop loop;
  Network net(loop, no_jitter(), Rng(1));
  RpcNode server(net, 1), client(net, 2);
  server.handle(7, [](Buffer b, Address) -> sim::Task<Buffer> {
    co_return b;  // echo
  });
  std::vector<uint64_t> got;
  sim::spawn([](RpcNode& c, std::vector<uint64_t>& out) -> sim::Task<void> {
    std::vector<sim::Task<Echo>> calls;
    for (uint64_t i = 0; i < 10; ++i) {
      Echo e{i * 100};  // dies before the await below
      calls.push_back(c.call<Echo>(1, 7, e));
    }
    auto results = co_await sim::when_all(c.loop(), std::move(calls));
    for (const Echo& e : results) out.push_back(e.x);
  }(client, got));
  loop.run();
  ASSERT_EQ(got.size(), 10u);
  for (uint64_t i = 0; i < 10; ++i) EXPECT_EQ(got[i], i * 100);
}

TEST(Rpc, ConcurrentCallsMatchResponsesById) {
  sim::EventLoop loop;
  Network net(loop, no_jitter(), Rng(1));
  RpcNode server(net, 1), client(net, 2);
  // Handler delays inversely to the value: responses return out of order.
  server.handle(7, [&loop](Buffer b, Address) -> sim::Task<Buffer> {
    auto e = decode_message<Echo>(b);
    co_await sim::sleep_for(loop, 1000 - e.x);
    co_return encode_message(e);
  });
  std::vector<uint64_t> got;
  sim::spawn([](RpcNode& c, std::vector<uint64_t>& out) -> sim::Task<void> {
    std::vector<sim::Task<Echo>> calls;
    for (uint64_t i = 0; i < 5; ++i) calls.push_back(c.call<Echo>(1, 7, Echo{i}));
    auto results = co_await sim::when_all(c.loop(), std::move(calls));
    for (const Echo& e : results) out.push_back(e.x);
  }(client, got));
  loop.run();
  EXPECT_EQ(got, (std::vector<uint64_t>{0, 1, 2, 3, 4}));
}

TEST(Rpc, OneWayMessagesReachHandler) {
  sim::EventLoop loop;
  Network net(loop, no_jitter(), Rng(1));
  RpcNode server(net, 1), client(net, 2);
  uint64_t got = 0;
  server.handle_oneway(9, [&](Buffer b, Address from) {
    got = decode_message<Echo>(b).x;
    EXPECT_EQ(from, 2u);
  });
  client.send(1, 9, Echo{13});
  loop.run();
  EXPECT_EQ(got, 13u);
}

TEST(Rpc, SizedCallReportsWireBytes) {
  sim::EventLoop loop;
  Network net(loop, no_jitter(), Rng(1));
  RpcNode server(net, 1), client(net, 2);
  server.handle(7, [](Buffer, Address) -> sim::Task<Buffer> {
    Buffer b(100, 0);
    co_return b;
  });
  size_t req_bytes = 0, resp_bytes = 0;
  sim::spawn([](RpcNode& c, size_t& rq, size_t& rs) -> sim::Task<void> {
    auto r = co_await c.call_raw_sized(1, 7, Buffer(50, 0));
    rq = r.request_wire_bytes;
    rs = r.response_wire_bytes;
  }(client, req_bytes, resp_bytes));
  loop.run();
  EXPECT_EQ(req_bytes, 50u + Message::kHeaderBytes);
  EXPECT_EQ(resp_bytes, 100u + Message::kHeaderBytes);
}

TEST(Rpc, HandlerRunsPerRequestConcurrently) {
  sim::EventLoop loop;
  Network net(loop, no_jitter(), Rng(1));
  RpcNode server(net, 1), client(net, 2);
  server.handle(7, [&loop](Buffer b, Address) -> sim::Task<Buffer> {
    co_await sim::sleep_for(loop, 1000);
    co_return b;
  });
  SimTime done_at = -1;
  sim::spawn([](RpcNode& c, SimTime& out) -> sim::Task<void> {
    std::vector<sim::Task<Echo>> calls;
    for (uint64_t i = 0; i < 4; ++i) calls.push_back(c.call<Echo>(1, 7, Echo{i}));
    co_await sim::when_all(c.loop(), std::move(calls));
    out = c.now();
  }(client, done_at));
  loop.run();
  // All four handlers overlap: ~1 RTT + 1000us service, not 4x.
  EXPECT_LT(done_at, 1400);
}

}  // namespace
}  // namespace faastcc::net
