// Cluster topology service: the authoritative holder of the current
// RoutingTable.
//
// One instance per cluster (a real deployment would back this with a
// consensus service; the simulation models the service itself, not its
// replication).  It serves pull requests (kTopoGet) from components that
// discovered they are behind — the wrong-epoch NACK path — and broadcasts
// epoch bumps (kTopoUpdate one-ways) to registered listeners.  Broadcasts
// ride the lossy fabric, so a listener can miss one: correctness never
// depends on the push, only freshness does; the pull path recovers.
#pragma once

#include <memory>
#include <set>
#include <vector>

#include "common/metrics.h"
#include "net/rpc.h"
#include "routing/routing_table.h"

namespace faastcc::routing {

// Method ids (cluster-unique; storage uses 1..16, eventual store 20..26,
// caches 40..,  scheduler/compute 50..).
inline constexpr net::MethodId kTopoGet = 60;
inline constexpr net::MethodId kTopoUpdate = 61;
inline constexpr net::MethodId kTopoPromote = 62;

// Follower -> topology service: bid to take over a slot whose leader's
// lease expired.  Arbitration is first-valid-wins: the bid must name the
// epoch it was decided under and a candidate that is still in that
// partition's replica chain; anything else is a stale bid and is ignored
// (the reply carries the current table either way, so a losing bidder
// adopts whatever the cluster already agreed on).
struct TopoPromoteReq {
  PartitionId partition = 0;
  PartitionAddress candidate = 0;
  uint32_t epoch = 0;

  size_t size_hint() const { return 4 + 4 + 4; }

  template <typename W>
  void encode(W& w) const {
    w.put_u32(partition);
    w.put_u32(candidate);
    w.put_u32(epoch);
  }
  static TopoPromoteReq decode(BufReader& r) {
    TopoPromoteReq q;
    q.partition = r.get_u32();
    q.candidate = r.get_u32();
    q.epoch = r.get_u32();
    return q;
  }
};

class TopologyService {
 public:
  TopologyService(net::Network& network, net::Address address,
                  TablePtr initial);

  net::Address address() const { return rpc_.address(); }
  net::RpcNode& rpc() { return rpc_; }
  const TablePtr& table() const { return table_; }

  // Addresses that receive kTopoUpdate one-ways on publish().
  void add_listener(net::Address a) { listeners_.push_back(a); }
  // Optional metrics registry (routing.topo_update_skipped).  Lazy: runs
  // that never retire a listener create no new entries.
  void set_metrics(Metrics* m) { metrics_ = m; }

  // Installs `next` as the current table and broadcasts it.  Listeners
  // retired by a contraction (the dropped tail's leaders and followers)
  // stop receiving broadcasts until a later table names their address
  // again; each skipped send counts into routing.topo_update_skipped.
  void publish(TablePtr next);

 private:
  net::RpcNode rpc_;
  TablePtr table_;
  std::vector<net::Address> listeners_;
  std::set<net::Address> retired_;
  Metrics* metrics_ = nullptr;
};

}  // namespace faastcc::routing
