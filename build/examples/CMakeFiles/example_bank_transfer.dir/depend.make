# Empty dependencies file for example_bank_transfer.
# This may be replaced when dependencies are built.
