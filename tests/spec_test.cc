// RunSpec JSON round trip, strict decode errors and the Flags parser.
#include <gtest/gtest.h>

#include "harness/configs.h"
#include "harness/flags.h"
#include "harness/run_spec.h"

namespace faastcc::harness {
namespace {

// ---- JSON primitives -----------------------------------------------------

TEST(Json, ParsesScalarsExactly) {
  const json::Value doc = json::parse(
      R"({"b": true, "i": -9223372036854775808, "u": 18446744073709551615,)"
      R"( "d": 0.25, "s": "a\"b", "n": null})");
  EXPECT_TRUE(doc.find("b")->as_bool());
  EXPECT_EQ(doc.find("i")->as_i64(), INT64_MIN);
  EXPECT_EQ(doc.find("u")->as_u64(), UINT64_MAX);
  EXPECT_DOUBLE_EQ(doc.find("d")->as_double(), 0.25);
  EXPECT_EQ(doc.find("s")->as_string(), "a\"b");
  EXPECT_TRUE(doc.find("n")->is_null());
  EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(Json, RejectsMalformedDocuments) {
  EXPECT_THROW(json::parse("{"), json::ParseError);
  EXPECT_THROW(json::parse("{} trailing"), json::ParseError);
  EXPECT_THROW(json::parse(R"({"a": 1, "a": 2})"), json::ParseError);
  EXPECT_THROW(json::parse(R"({"a": 01})"), json::ParseError);
  EXPECT_THROW(json::parse(""), json::ParseError);
}

TEST(Json, TypedAccessorsRejectMismatches) {
  const json::Value doc = json::parse(R"({"s": "x", "neg": -1, "d": 1.5})");
  EXPECT_THROW(doc.find("s")->as_u64(), json::ParseError);
  EXPECT_THROW(doc.find("neg")->as_u64(), json::ParseError);
  EXPECT_THROW(doc.find("d")->as_i64(), json::ParseError);
}

TEST(Json, WriterOutputIsDeterministic) {
  auto build = [] {
    json::Writer w(/*compact=*/true);
    w.begin_object();
    w.key("x");
    w.number(0.1);
    w.key("y");
    w.u64(7);
    w.end_object();
    return w.take();
  };
  EXPECT_EQ(build(), build());
  // %.17g round-trips doubles exactly.
  const json::Value doc = json::parse(build());
  EXPECT_EQ(doc.find("x")->as_double(), 0.1);
}

// ---- RunSpec round trip --------------------------------------------------

TEST(RunSpec, DefaultSpecRoundTripsByteForByte) {
  RunSpec spec;
  const std::string text = to_json(spec);
  const RunSpec back = spec_from_text(text);
  EXPECT_EQ(to_json(back), text);
}

TEST(RunSpec, NonDefaultFieldsSurviveTheRoundTrip) {
  RunSpec spec;
  spec.config = "lossy";
  spec.params.system = SystemKind::kHydroCache;
  spec.params.seed = 12345;
  spec.params.partitions = 64;
  spec.params.cache_capacity = 4096;
  spec.params.workload.zipf = 1.37;
  spec.params.workload.static_txns = true;
  spec.params.tcc.gossip_period = milliseconds(131);
  spec.params.tcc.stab_topology = storage::StabTopology::kTree;
  spec.params.tcc.tree_fanout = 8;
  spec.params.tcc.push_coalescing = true;
  spec.params.faults.loss_prob = 0.015;
  spec.params.faults.crashes.push_back(
      net::CrashWindow{101, milliseconds(300), milliseconds(360)});
  spec.params.check_consistency = true;

  const RunSpec back = spec_from_text(to_json(spec));
  EXPECT_EQ(back.config, "lossy");
  EXPECT_EQ(back.params.system, SystemKind::kHydroCache);
  EXPECT_EQ(back.params.seed, 12345u);
  EXPECT_EQ(back.params.partitions, 64u);
  EXPECT_EQ(back.params.cache_capacity, 4096u);
  EXPECT_DOUBLE_EQ(back.params.workload.zipf, 1.37);
  EXPECT_TRUE(back.params.workload.static_txns);
  EXPECT_EQ(back.params.tcc.gossip_period, milliseconds(131));
  EXPECT_EQ(back.params.tcc.stab_topology, storage::StabTopology::kTree);
  EXPECT_EQ(back.params.tcc.tree_fanout, 8);
  EXPECT_TRUE(back.params.tcc.push_coalescing);
  EXPECT_DOUBLE_EQ(back.params.faults.loss_prob, 0.015);
  ASSERT_EQ(back.params.faults.crashes.size(), 1u);
  EXPECT_EQ(back.params.faults.crashes[0].addr, 101u);
  EXPECT_EQ(back.params.faults.crashes[0].from, milliseconds(300));
  EXPECT_TRUE(back.params.check_consistency);
  EXPECT_EQ(to_json(back), to_json(spec));
}

TEST(RunSpec, ReplicationGroupRoundTrips) {
  RunSpec spec;
  spec.params.replication.factor = 2;
  spec.params.replication.lease_timeout = milliseconds(45);
  const RunSpec back = spec_from_text(to_json(spec));
  EXPECT_EQ(back.params.replication.factor, 2u);
  EXPECT_EQ(back.params.replication.lease_timeout, milliseconds(45));
  EXPECT_EQ(to_json(back), to_json(spec));
  EXPECT_THROW(spec_from_text(R"({"replication": {"factro": 1}})"),
               SpecError);
}

TEST(RunSpec, InfCapacityRoundTrips) {
  RunSpec spec;
  spec.params.cache_capacity = SIZE_MAX;
  const RunSpec back = spec_from_text(to_json(spec));
  EXPECT_EQ(back.params.cache_capacity, SIZE_MAX);
}

TEST(RunSpec, StrictDecodeRejectsUnknownKeys) {
  EXPECT_THROW(spec_from_text(R"({"sedd": 1})"), SpecError);
  EXPECT_THROW(spec_from_text(R"({"cluster": {"partitoins": 4}})"),
               SpecError);
  EXPECT_THROW(spec_from_text(R"({"workload": 7})"), SpecError);
}

TEST(RunSpec, StrictDecodeRejectsIllTypedValues) {
  EXPECT_THROW(spec_from_text(R"({"seed": "abc"})"), SpecError);
  EXPECT_THROW(spec_from_text(R"({"seed": -1})"), SpecError);
  EXPECT_THROW(spec_from_text(R"({"system": "dynamo"})"), SpecError);
  EXPECT_THROW(spec_from_text(R"({"config": "no-such-config"})"), SpecError);
  EXPECT_THROW(
      spec_from_text(R"({"tcc": {"stabilization_topology": "ring"}})"),
      SpecError);
  EXPECT_THROW(spec_from_text(R"({"faults": {"crashes": 3}})"), SpecError);
  EXPECT_THROW(spec_from_text("[1, 2]"), SpecError);
  EXPECT_THROW(spec_from_text("{nope"), SpecError);
}

TEST(RunSpec, PatchOnlyTouchesPresentFields) {
  RunSpec spec;
  spec.params.partitions = 64;
  spec.params.workload.zipf = 1.2;
  apply_spec_patch(spec, json::parse(R"({"cluster": {"clients": 3}})"));
  EXPECT_EQ(spec.params.clients, 3u);
  EXPECT_EQ(spec.params.partitions, 64u);   // untouched
  EXPECT_DOUBLE_EQ(spec.params.workload.zipf, 1.2);  // untouched
}

TEST(RunSpec, ResolveAppliesTheNamedConfig) {
  RunSpec spec;
  spec.config = "tiny-cache";
  const ClusterParams p = spec.resolve();
  EXPECT_EQ(p.cache_capacity, 8u);
  EXPECT_DOUBLE_EQ(p.workload.zipf, 1.2);
  // resolve() never mutates the spec itself.
  EXPECT_EQ(spec.params.cache_capacity, ClusterParams{}.cache_capacity);

  spec.config = "no-such-config";
  EXPECT_THROW(spec.resolve(), SpecError);
}

TEST(RunSpec, RunOneRejectsOracleOnNonFaastccSystems) {
  RunSpec spec;
  spec.params.system = SystemKind::kCloudburst;
  spec.params.check_consistency = true;
  EXPECT_THROW(run_one(spec), SpecError);
}

TEST(Configs, RegistryFindsEveryListedName) {
  EXPECT_FALSE(all_configs().empty());
  for (const NamedConfig& c : all_configs()) {
    EXPECT_EQ(find_config(c.name), &c);
  }
  EXPECT_EQ(find_config("definitely-not-a-config"), nullptr);
}

// ---- Flags ---------------------------------------------------------------

struct FlagFixture {
  bool b = false;
  int i = 7;
  uint64_t u = 42;
  size_t cap = 16;
  double d = 1.5;
  std::string s = "x";
  Duration ms = milliseconds(10);

  Flags flags{"prog", "test program"};
  FlagFixture() {
    flags.boolean("bool", "a bool", &b);
    flags.integer("int", "an int", &i);
    flags.u64("u64", "a u64", &u);
    flags.size("cap", "a capacity", &cap);
    flags.real("real", "a double", &d);
    flags.str("str", "a string", &s);
    flags.duration_ms("dur-ms", "a duration", &ms);
  }

  bool parse(std::vector<const char*> args) {
    args.insert(args.begin(), "prog");
    return flags.parse(static_cast<int>(args.size()),
                       const_cast<char**>(args.data()));
  }
};

TEST(Flags, ParsesEveryRegisteredType) {
  FlagFixture f;
  ASSERT_TRUE(f.parse({"--bool", "--int=-3", "--u64=99", "--cap=inf",
                       "--real=0.25", "--str=hello", "--dur-ms=250"}))
      << f.flags.error();
  EXPECT_TRUE(f.b);
  EXPECT_EQ(f.i, -3);
  EXPECT_EQ(f.u, 99u);
  EXPECT_EQ(f.cap, SIZE_MAX);
  EXPECT_DOUBLE_EQ(f.d, 0.25);
  EXPECT_EQ(f.s, "hello");
  EXPECT_EQ(f.ms, milliseconds(250));
}

TEST(Flags, DefaultsSurviveWhenFlagsAreAbsent) {
  FlagFixture f;
  ASSERT_TRUE(f.parse({}));
  EXPECT_FALSE(f.b);
  EXPECT_EQ(f.i, 7);
  EXPECT_EQ(f.cap, 16u);
  EXPECT_EQ(f.s, "x");
}

TEST(Flags, RejectsUnknownFlags) {
  FlagFixture f;
  EXPECT_FALSE(f.parse({"--nope=1"}));
  EXPECT_NE(f.flags.error().find("nope"), std::string::npos);
}

TEST(Flags, RejectsMissingAndMalformedValues) {
  {
    FlagFixture f;
    EXPECT_FALSE(f.parse({"--int"}));
  }
  {
    FlagFixture f;
    EXPECT_FALSE(f.parse({"--int=abc"}));
  }
  {
    FlagFixture f;
    EXPECT_FALSE(f.parse({"--u64=-5"}));
  }
  {
    FlagFixture f;
    EXPECT_FALSE(f.parse({"--bool=maybe"}));
  }
}

TEST(Flags, ExplicitBooleanValuesWork) {
  FlagFixture f;
  ASSERT_TRUE(f.parse({"--bool=true"}));
  EXPECT_TRUE(f.b);
  FlagFixture g;
  ASSERT_TRUE(g.parse({"--bool=false"}));
  EXPECT_FALSE(g.b);
}

TEST(Flags, HelpIsRequestableAndUsageListsFlags) {
  FlagFixture f;
  ASSERT_TRUE(f.parse({"--help"}));
  EXPECT_TRUE(f.flags.help_requested());
  const std::string usage = f.flags.usage();
  EXPECT_NE(usage.find("--dur-ms"), std::string::npos);
  EXPECT_NE(usage.find("a capacity"), std::string::npos);
}

TEST(Flags, CustomFlagRejectionBecomesAParseError) {
  Flags flags("prog", "t");
  flags.custom("pair", "a:b", "a pair", [](const std::string& v) {
    return v.find(':') != std::string::npos;
  });
  const char* bad[] = {"prog", "--pair=nope"};
  EXPECT_FALSE(flags.parse(2, const_cast<char**>(bad)));
  const char* good[] = {"prog", "--pair=a:b"};
  Flags flags2("prog", "t");
  flags2.custom("pair", "a:b", "a pair", [](const std::string& v) {
    return v.find(':') != std::string::npos;
  });
  EXPECT_TRUE(flags2.parse(2, const_cast<char**>(good)));
}

TEST(Flags, SplitCsv) {
  EXPECT_TRUE(Flags::split_csv("").empty());
  const auto parts = Flags::split_csv("a,b,c");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

}  // namespace
}  // namespace faastcc::harness
