// Stabilization state, one instance per TCC partition.
//
// Partitions periodically broadcast a *safe time*: a timestamp below which
// they will never again commit.  The minimum over the most recent broadcast
// of every partition is the global stable time.  Reads are clamped to it,
// which is what lets the storage layer serve a consistent snapshot in one
// round and is the "stable time ... used as the promise" of §5.
#pragma once

#include <cstdint>
#include <vector>

#include "common/hlc.h"
#include "common/types.h"

namespace faastcc::storage {

class Stabilizer {
 public:
  Stabilizer(PartitionId self, size_t num_partitions)
      : self_(self), last_heard_(num_partitions, Timestamp::min()) {}

  // Records a broadcast from `from` (possibly self).  Stale gossip (older
  // than already recorded) is ignored; safe times are monotone per sender.
  void on_gossip(PartitionId from, Timestamp safe_time);

  // Global stable time: min over all partitions' last-heard safe times.
  Timestamp stable_time() const;

  Timestamp last_heard(PartitionId p) const { return last_heard_.at(p); }
  PartitionId self() const { return self_; }

 private:
  PartitionId self_;
  std::vector<Timestamp> last_heard_;
};

}  // namespace faastcc::storage
