// Zipf-distributed key sampler.
//
// The paper's workloads draw keys from Zipf distributions with exponents
// 1.0, 1.25 and 1.5 over a 100 000-key dataset.  We precompute the CDF once
// per (n, theta) pair and sample with a binary search, which is exact and
// fast enough for tens of millions of draws.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace faastcc {

class ZipfSampler {
 public:
  // theta == 0 degenerates to the uniform distribution.
  ZipfSampler(uint64_t num_keys, double theta);

  Key sample(Rng& rng) const;

  uint64_t num_keys() const { return num_keys_; }
  double theta() const { return theta_; }

  // Probability mass of rank `r` (0-based); exposed for tests.
  double pmf(uint64_t r) const;

 private:
  uint64_t num_keys_;
  double theta_;
  std::vector<double> cdf_;
};

}  // namespace faastcc
