// One partition (shard) of the FaaSTCC TCC storage layer.
//
// A Wren-style design on hybrid logical clocks:
//   * reads serve the newest version at or below min(requested snapshot,
//     global stable time), together with a *promise* — the horizon up to
//     which the returned version is guaranteed to stay the correct read;
//   * multi-partition writes run prepare/commit: a pending prepare pins the
//     participant's safe time, so the global stable time cannot pass a
//     transaction's commit timestamp until all of its writes are installed
//     (this is what makes updates atomically visible);
//   * partitions gossip safe times; stable time = min over partitions;
//   * a pub/sub service pushes fresh versions of subscribed keys to caches
//     every `push_period` (the paper's 50 ms cache refresh period).
#pragma once

#include <deque>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "check/oracle.h"
#include "common/hlc.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/stats.h"
#include "net/rpc.h"
#include "routing/routing_table.h"
#include "sim/future.h"
#include "storage/messages.h"
#include "storage/mv_store.h"
#include "storage/stabilizer.h"

namespace faastcc::storage {

struct TccPartitionParams {
  Duration gossip_period = milliseconds(5);
  Duration push_period = milliseconds(50);  // cache refresh period (§6.1)
  // Stabilization exchange topology: kMesh is the paper-faithful §5
  // all-to-all broadcast (O(P²) messages per gossip round, one hop of
  // staleness); kTree aggregates safe times over a deterministic k-ary
  // tree of partition ids (O(P) messages, up to 2·depth rounds of
  // staleness).  See docs/performance.md, "Stabilization topologies".
  StabTopology stab_topology = StabTopology::kMesh;
  int tree_fanout = 4;  // k of the aggregation tree (>= 1)
  // Coalesce pub/sub pushes into PushBatchMsg frames: the per-frame state
  // (partition, seq, stable time) is carried once in the header and the
  // receiver derives each update's promise from it, saving 8 bytes per
  // update.  Off by default so mesh-mode runs stay bit-identical.
  bool push_coalescing = false;
  Duration gc_window = seconds(30);   // history kept behind the stable time
  Duration gc_period = seconds(2);
  Duration request_cpu = microseconds(15);  // fixed per-request service time
  Duration per_key_cpu = microseconds(2);
  int64_t clock_offset_us = 0;  // simulated residual NTP skew
  // A prepare whose commit/abort never arrives (lost message, abandoned
  // coordinator) would pin the safe time — and therefore the global stable
  // time — forever.  After this TTL the partition unilaterally expires it.
  // Must comfortably exceed the coordinator's commit retry horizon; see
  // docs/simulation.md "Fault model".  0 disables expiry.
  Duration prepare_ttl = seconds(5);
  // Capacity of the resolved-transaction dedup table (FIFO eviction).
  // Entries only matter within the coordinator's retry horizon, so the
  // default is generous; tests shrink it to force eviction races.
  size_t resolved_cap = 1 << 16;
  // Replication (replication_factor > 0 only): a follower that has not
  // received a seal beat from its leader for this long presumes the leader
  // dead and bids for promotion.  Must comfortably exceed the gossip
  // period (seals piggyback the gossip beat) plus a loss burst.
  Duration repl_lease_timeout = milliseconds(60);
  // Chaos knobs (tests/fuzzer only): each re-enables one historical bug so
  // the consistency oracle can demonstrate it catches the violation.
  // Answer ok=true for a commit retry of an expired/aborted txn without
  // installing anything (the lost-write-ack bug).
  bool chaos_ack_expired_commit = false;
  // Acknowledge commits without installing the writes at all.
  bool chaos_drop_install = false;
  // Install every committed write twice, the second at ts.next().
  bool chaos_double_install = false;
  // Fast path ignores dep_ts and assigns a tiny commit timestamp, breaking
  // causal order (commit ts below read/dep timestamps).
  bool chaos_ignore_dep = false;
};

class TccPartition {
 public:
  TccPartition(net::Network& network, net::Address self, PartitionId id,
               std::vector<net::Address> all_partitions,
               TccPartitionParams params, obs::Tracer* tracer = nullptr,
               check::ConsistencyOracle* oracle = nullptr);

  // Spawns the gossip, push and GC background loops.  Idempotent: a
  // deferred joiner calls this again through activation.
  void start();

  // ---- Epoch-versioned routing / elastic scale-out ------------------------

  // Adopts `table` (no-op unless strictly newer than the current one).
  // The first adoption arms the RPC epoch gate on the client-facing
  // methods; kTccAbort stays ungated on purpose — post-bump cleanup must
  // still reach old owners holding pending prepares.
  void set_routing(routing::TablePtr table);
  // Topology-service endpoint for pull-based refresh: a gated request
  // stamped with a newer epoch than ours triggers a kTopoGet fetch, so a
  // partition that missed the broadcast still converges.
  void set_topo_service(net::Address topo);
  // Optional shared metrics registry (handoff-stall histogram, migration
  // counters).  Entries are created lazily, so non-elastic runs' metric
  // listings are unchanged.
  void set_metrics(Metrics* m) { metrics_ = m; }

  // Joiner lifecycle: construct -> defer_serving() -> begin_join(table, n)
  // -> (n migrate-in parcels applied) -> activate (internal).  While
  // deferred, client-facing handlers park on a barrier instead of serving
  // from an empty store.
  void defer_serving();
  void begin_join(routing::TablePtr table, size_t expected_sources);
  bool serving() const { return serving_; }
  routing::TablePtr routing_table() const { return table_; }

  // ---- Elastic scale-IN ----------------------------------------------------

  // Survivor side of a contraction: adopt `table` (which no longer lists
  // the retiring partitions) and pause client traffic until
  // `expected_sources` migrate-in parcels have landed.  Unlike begin_join
  // the store keeps every chain it already owns — only the inherited slots
  // are empty — so the handoff floor is scoped to the migrated keys (a
  // pending prepare for a pre-owned key may legitimately commit below it).
  void begin_acquire(routing::TablePtr table, size_t expected_sources);
  // Source side, after a successful drain: stop publishing into gossip,
  // push and lease channels.  The instance stays constructed (a later
  // scale-out may re-join it via begin_join).
  void retire();
  bool retired() const { return retired_; }

  // ---- Per-slot replication (leader + k followers) ------------------------

  // Leader side: the follower addresses of this slot.  All start caught-up
  // (the cluster preloads follower stores alongside the leader's).  A
  // follower whose replication stream the leader cannot keep flowing is
  // moved to the "behind" set — excluded from the seal quorum and
  // backfilled from the chain head on a later beat.
  void set_followers(std::vector<net::Address> followers);
  // Follower side: construct -> make_follower(leader) -> start_follower().
  // A follower parks client traffic (it is not in the routing table) and
  // runs only the lease loop until promoted.
  void make_follower(net::Address leader);
  void start_follower();
  bool is_follower() const { return repl_role_ == ReplRole::kFollower; }
  // Follower's replication progress (tests / cluster preload).
  Timestamp sealed_safe() const { return sealed_safe_; }
  uint64_t repl_applied_seq() const { return repl_applied_seq_; }

  net::Address address() const { return rpc_.address(); }
  PartitionId id() const { return id_; }
  Timestamp stable_time() const { return stabilizer_.stable_time(); }

  // Safe time: no transaction will ever commit here with ts <= safe_time().
  Timestamp safe_time();

  MvStore& store() { return store_; }
  const MvStore& store() const { return store_; }

  // Registers a subscriber directly (pre-warm setup path; the protocol
  // path is the kTccSubscribe RPC).
  void add_subscriber(Key k, net::Address cache) {
    if (subscribers_[k].insert(cache).second) {
      if (++subscriber_refs_[cache] == 1) {
        subscriber_addresses_.insert(cache);
      }
    }
  }

  struct Counters {
    Counter reads;
    Counter read_keys;
    Counter unchanged_responses;
    Counter misses;
    Counter commits;
    Counter pushes;
    Counter versions_gced;
    Counter si_conflicts;
    Counter aborts;
    // Fault-injection resilience: duplicated or retried protocol messages
    // answered idempotently, and prepares expired by the TTL.
    Counter duplicate_prepares;
    Counter duplicate_commits;
    Counter prepares_expired;
    // Elastic scale-out: reads refused because the key's chain was handed
    // away, requests parked at a not-yet-serving joiner, and keys moved.
    Counter wrong_owner_reads;
    Counter handoff_parked;
    Counter keys_migrated_in;
    Counter keys_migrated_out;
    // Replication: install frames applied / deduplicated at a follower,
    // seal beats sealed, backfills applied, and promotions won.
    Counter repl_installs;
    Counter repl_dup_frames;
    Counter repl_seals;
    Counter repl_backfills;
    Counter promotions;
  };
  const Counters& counters() const { return counters_; }

  // True when the current routing table assigns `k` here (or no table is
  // installed — the static pre-elastic world).  Handlers re-check after
  // every CPU sleep: a chain can be handed away while a handler sleeps.
  // The address check keeps a deposed leader — crashed, then revived after
  // a failover promoted its follower — from serving chains it no longer
  // owns: the slot still maps to its partition id, but to the promoted
  // follower's address.
  bool owns(Key k) const {
    return table_ == nullptr ||
           (table_->partition_of(k) == id_ &&
            table_->partitions[id_] == rpc_.address());
  }

 private:
  sim::Task<Buffer> on_read(Buffer req, net::Address from);
  sim::Task<Buffer> on_prepare(Buffer req, net::Address from);
  sim::Task<Buffer> on_commit(Buffer req, net::Address from);
  sim::Task<Buffer> on_abort(Buffer req, net::Address from);
  // SI first-committer-wins check; locks the keys on success.
  bool si_check_and_lock(TxnId txn, Timestamp snapshot_ts,
                         const std::vector<Key>& keys);
  void release_locks(TxnId txn);
  void resolve_pending(TxnId txn);
  sim::Task<Buffer> on_subscribe(Buffer req, net::Address from);
  sim::Task<Buffer> on_unsubscribe(Buffer req, net::Address from);
  void on_gossip(Buffer msg, net::Address from);
  // Tree-topology stabilization (stabilization_topology=tree).
  void on_safe_up(Buffer msg, net::Address from);
  void on_stable_down(Buffer msg, net::Address from);
  void tree_gossip_round();
  // Per-round stab.* metric accounting (pure state: no events, no
  // randomness — schedules are unchanged by recording).
  void note_gossip_round(uint64_t msgs_sent);
  void push_round_coalesced(Timestamp stable);
  sim::Task<Buffer> on_migrate_out(Buffer req, net::Address from);
  sim::Task<Buffer> on_migrate_in(Buffer req, net::Address from);

  // Replication handlers (follower side) and leader-side drivers.
  sim::Task<Buffer> on_repl_install(Buffer req, net::Address from);
  sim::Task<Buffer> on_repl_seal(Buffer req, net::Address from);
  sim::Task<Buffer> on_backfill(Buffer req, net::Address from);
  void apply_repl_frame(const TccReplInstallReq& q);
  sim::Task<bool> repl_send_one(net::Address follower, TccReplInstallReq frame);
  sim::Task<void> repl_send_quiet(net::Address follower,
                                  TccReplInstallReq frame);
  sim::Task<void> replicate_commit(TxnId txn, Timestamp commit_ts,
                                   std::vector<KeyValue> writes);
  sim::Task<void> seal_round(Timestamp safe, uint64_t seq_high);
  sim::Task<void> backfill_one(net::Address follower);
  sim::Task<void> lease_loop();
  void promote_self();
  // The safe time this partition publishes into the stabilizer.  Solo:
  // safe_time() verbatim.  Replicated leader: the newest safe sealed at
  // every caught-up follower — publishing a delayed safe is always sound
  // (safe times are monotone), and it is what keeps promises derived from
  // the stable time inside a promoted follower's handoff floor.
  Timestamp published_safe();

  // Whether this node is the address the table names for its own slot.  A
  // revived deposed leader fails this and must keep its gossip and push
  // streams quiet — the promoted follower owns those channels now.  A
  // partition the table no longer lists (retired by a contraction) fails it
  // too: its channels belong to nobody.
  bool is_current_leader() const {
    if (table_ == nullptr) return true;
    return id_ < table_->partitions.size() &&
           table_->partitions[id_] == rpc_.address();
  }
  sim::Task<void> parked();
  void release_parked();
  void activate();
  sim::Task<void> refresh_table();

  sim::Task<void> gossip_loop();
  sim::Task<void> push_loop();
  sim::Task<void> gc_loop();

  uint64_t physical_now_us() const;
  void install_writes(const TccCommitReq& req);
  TccReadResp::Entry read_one(Key key, Timestamp eff, Timestamp cached_ts);

  net::RpcNode rpc_;
  PartitionId id_;
  std::vector<net::Address> all_partitions_;
  TccPartitionParams params_;
  obs::Tracer* tracer_ = nullptr;
  HlcClock clock_;
  MvStore store_;
  Stabilizer stabilizer_;
  // Outstanding prepares: txn id -> prepare timestamp + registration time.
  // The min entry caps the safe time until the matching commit or abort
  // (aborts occur in Snapshot Isolation mode on write-write conflicts, and
  // when a coordinator gives up after retry exhaustion).
  struct PendingTxn {
    Timestamp ts;
    SimTime since = 0;
  };
  std::map<Timestamp, TxnId> pending_by_ts_;
  std::unordered_map<TxnId, PendingTxn> pending_by_txn_;
  // Recently committed/aborted transactions (aborts record Timestamp::min()).
  // Duplicated or retried prepares/commits of a resolved transaction are
  // answered from here instead of re-pinning the safe time or re-installing
  // versions.  Bounded to params_.resolved_cap by FIFO eviction of the
  // oldest entries — entries only matter within the coordinator's retry
  // horizon (well under a second), so oldest-first is the right order.
  std::unordered_map<TxnId, Timestamp> resolved_;
  std::deque<TxnId> resolved_order_;
  void remember_resolved(TxnId txn, Timestamp ts);
  void expire_stale_prepares();
  // Snapshot Isolation: written keys locked by prepared-but-unresolved
  // transactions (first-committer-wins).
  std::unordered_map<Key, TxnId> write_locks_;
  std::unordered_map<TxnId, std::vector<Key>> locked_keys_;
  void drop_subscriber(Key k, net::Address cache);

  // Pub/sub.
  std::unordered_map<Key, std::set<net::Address>> subscribers_;
  std::unordered_map<net::Address, size_t> subscriber_refs_;
  std::set<net::Address> subscriber_addresses_;
  std::unordered_set<Key> dirty_;
  // Per-subscriber push-channel sequence (first push carries seq 1) and the
  // newest control-channel (subscribe/unsubscribe) sequence processed per
  // subscriber; stale control retries are dropped.
  std::unordered_map<net::Address, uint64_t> push_seq_out_;
  std::unordered_map<net::Address, uint64_t> ctl_seq_seen_;
  bool ctl_stale(uint64_t seq, net::Address from);
  check::ConsistencyOracle* oracle_ = nullptr;
  uint64_t chaos_ticks_ = 0;  // counter for chaos_ignore_dep timestamps
  // Stabilization messages received since the last local gossip round
  // (mesh gossip, tree reports and broadcasts) — the stab.fan_in sample.
  uint64_t gossip_in_since_round_ = 0;

  // ---- Elastic state ------------------------------------------------------
  routing::TablePtr table_;
  net::Address topo_service_ = 0;
  Metrics* metrics_ = nullptr;
  bool serving_ = true;
  bool started_ = false;
  bool refresh_inflight_ = false;
  // One promise per parked request (sim::Future is single-waiter).
  std::vector<sim::Promise<bool>> parked_;
  // Join state (target side of a handoff).
  uint32_t join_epoch_ = 0;
  size_t join_expected_ = 0;
  std::set<PartitionId> join_applied_;
  Timestamp handoff_floor_ = Timestamp::min();
  // Scale-in: a survivor acquiring drained slots scopes the oracle's
  // handoff-floor check to the keys it inherited (acquired_keys_); a
  // retired source stops publishing into shared channels.
  bool acquiring_ = false;
  std::vector<Key> acquired_keys_;
  bool retired_ = false;
  // Bumped by retire() so background loops spawned before the retirement
  // exit on their next beat even if the instance re-joins (and respawns
  // fresh loops) before they wake — no loop ever runs twice over.
  uint64_t loop_gen_ = 0;
  // Replay cache for idempotent migrate-out: the chains leave the store on
  // the first attempt, so a retried request must get the original parcel.
  std::map<std::pair<uint32_t, PartitionId>, TccMigrateOutResp>
      migrate_out_cache_;

  // ---- Replication state --------------------------------------------------
  enum class ReplRole { kSolo, kLeader, kFollower };
  ReplRole repl_role_ = ReplRole::kSolo;
  // Leader: followers in the seal quorum, and followers that fell behind
  // (stream retry exhausted) awaiting a backfill.
  std::vector<net::Address> followers_;
  std::vector<net::Address> followers_behind_;
  std::set<net::Address> backfill_inflight_;
  uint64_t repl_seq_ = 0;                     // newest assigned stream seq
  Timestamp sealed_pub_ = Timestamp::min();   // newest safe sealed everywhere
  bool seal_inflight_ = false;
  // Follower: replication stream state and leader lease.
  net::Address leader_addr_ = 0;
  uint64_t repl_applied_seq_ = 0;             // contiguous stream high-water
  std::set<uint64_t> repl_sparse_;            // applied seqs above high-water
  uint64_t leader_seq_high_ = 0;              // leader's advertised seq high
  Timestamp sealed_safe_ = Timestamp::min();  // newest sealed safe
  Timestamp repl_floor_ = Timestamp::min();   // max replicated install ts
  SimTime last_lease_beat_ = 0;
  bool lag_grace_used_ = false;

  Counters counters_;
};

}  // namespace faastcc::storage
