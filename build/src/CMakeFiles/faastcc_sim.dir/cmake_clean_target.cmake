file(REMOVE_RECURSE
  "libfaastcc_sim.a"
)
