// A checkout pipeline as a FaaS composition: cart -> inventory check ->
// payment -> commit.  Demonstrates three things a downstream user cares
// about:
//
//   * read-your-writes across functions (payment sees the cart total the
//     first function computed and buffered),
//   * application-level aborts (insufficient stock rolls the whole DAG
//     back; nothing becomes visible),
//   * atomic visibility (order record and decremented stock appear
//     together, never torn).
#include <cstdio>
#include <string>

#include "harness/cluster.h"

using namespace faastcc;
using harness::Cluster;
using harness::ClusterParams;
using harness::SystemKind;

namespace {

constexpr Key kStock = 10;   // units in stock (decimal string)
constexpr Key kCart = 11;    // per-checkout cart total (written in-DAG)
constexpr Key kOrders = 12;  // order log
constexpr Key kRevenue = 13; // accumulated revenue

// Keys start out with placeholder dataset payloads; treat anything
// non-numeric as zero.
int to_int(const Value& v) {
  if (v.empty() || v[0] < '0' || v[0] > '9') return 0;
  return std::stoi(std::string(v.view()));
}

Buffer quantity_args(int qty) {
  BufWriter w;
  w.put_u32(static_cast<uint32_t>(qty));
  return w.take();
}

}  // namespace

int main() {
  ClusterParams params;
  params.system = SystemKind::kFaasTcc;
  params.partitions = 4;
  params.compute_nodes = 3;
  params.clients = 0;
  params.workload.num_keys = 50;
  Cluster cluster(params);

  // --- the application ------------------------------------------------
  cluster.registry().register_function(
      "build_cart", [](faas::ExecEnv& env) -> sim::Task<Buffer> {
        BufReader r(env.args);
        const int qty = static_cast<int>(r.get_u32());
        env.txn.write(kCart, std::to_string(qty * 7));  // unit price 7
        co_return quantity_args(qty);
      });
  cluster.registry().register_function(
      "check_inventory", [](faas::ExecEnv& env) -> sim::Task<Buffer> {
        BufReader r(env.parent_result);
        const int qty = static_cast<int>(r.get_u32());
        auto values = co_await env.txn.read(std::vector<Key>(1, kStock));
        if (!values.has_value()) {
          env.abort_requested = true;
          co_return Buffer{};
        }
        const int stock = to_int((*values)[0]);
        if (stock < qty) {
          std::printf("  [inventory] %d in stock < %d requested -> abort\n",
                      stock, qty);
          env.abort_requested = true;  // rolls back the whole checkout
          co_return Buffer{};
        }
        env.txn.write(kStock, std::to_string(stock - qty));
        co_return env.parent_result;
      });
  cluster.registry().register_function(
      "take_payment", [](faas::ExecEnv& env) -> sim::Task<Buffer> {
        // Read-your-writes: the cart total buffered upstream plus
        // committed state, all from one causal snapshot.
        std::vector<Key> keys{kCart, kOrders, kRevenue};
        auto values = co_await env.txn.read(std::move(keys));
        if (!values.has_value()) {
          env.abort_requested = true;
          co_return Buffer{};
        }
        const int total = to_int((*values)[0]);
        const int orders = to_int((*values)[1]);
        const int revenue = to_int((*values)[2]);
        env.txn.write(kOrders, std::to_string(orders + 1));
        env.txn.write(kRevenue, std::to_string(revenue + total));
        std::printf("  [payment]   charged %d (order #%d)\n", total,
                    orders + 1);
        co_return Buffer{};
      });

  cluster.start();

  // Seed the stock through a setup transaction.
  cluster.registry().register_function(
      "seed_stock", [](faas::ExecEnv& env) -> sim::Task<Buffer> {
        env.txn.write(kStock, "5");
        co_return Buffer{};
      });

  net::RpcNode client(cluster.network(), 900);
  int completed = 0;
  int committed = 0;
  client.handle_oneway(faas::kDagDone, [&](Buffer b, net::Address) {
    auto done = decode_message<faas::DagDoneMsg>(b);
    ++completed;
    if (done.committed) ++committed;
  });

  auto submit = [&](TxnId id, faas::DagSpec spec) {
    faas::StartDagMsg start;
    start.txn_id = id;
    start.client = 900;
    start.spec = std::move(spec);
    client.send(cluster.scheduler_address(), faas::kStartDag, start);
  };
  auto pump = [&](int until) {
    while (completed < until && cluster.loop().now() < seconds(60)) {
      cluster.loop().run_until(cluster.loop().now() + milliseconds(5));
    }
    // TCC permits stale-but-consistent snapshots; the cache refresh period
    // (50 ms) bounds staleness.  Sequential checkouts that must observe
    // each other's effects simply wait out one refresh.
    cluster.loop().run_until(cluster.loop().now() + milliseconds(120));
  };

  faas::FunctionSpec seed;
  seed.name = "seed_stock";
  submit(1, faas::DagSpec::chain({seed}));
  pump(1);
  std::printf("seeded stock = 5\n");

  // Three checkouts: 2 units, 2 units, then 3 units (must abort: 1 left).
  int id = 2;
  for (int qty : {2, 2, 3}) {
    std::printf("checkout of %d units:\n", qty);
    faas::FunctionSpec cart;
    cart.name = "build_cart";
    cart.args = quantity_args(qty);
    faas::FunctionSpec inv;
    inv.name = "check_inventory";
    faas::FunctionSpec pay;
    pay.name = "take_payment";
    submit(id, faas::DagSpec::chain({cart, inv, pay}));
    pump(id);
    ++id;
  }

  // Inspect final storage state.
  cluster.loop().run_until(cluster.loop().now() + milliseconds(100));
  auto read_key = [&](Key k) -> std::string {
    const auto& p = cluster.tcc_partitions()[k % params.partitions];
    const auto r = p->store().read_at(k, Timestamp::max());
    return r.version != nullptr ? std::string(r.version->value.view())
                                : std::string("(none)");
  };
  std::printf("\nfinal state: stock=%s orders=%s revenue=%s\n",
              read_key(kStock).c_str(), read_key(kOrders).c_str(),
              read_key(kRevenue).c_str());
  std::printf("%d of %d transactions committed (the oversell aborted)\n",
              committed, completed);

  const bool ok = read_key(kStock) == "1" && read_key(kOrders) == "2" &&
                  read_key(kRevenue) == "28" && committed == 3;
  if (!ok) {
    std::printf("ERROR: unexpected final state\n");
    return 1;
  }
  return 0;
}
