// Deterministic distributed tracing.
//
// One Tracer instance is shared by every component of a simulated cluster
// (like Metrics).  A trace follows one DAG attempt end to end: the client
// driver opens the root span, and the trace context — a (trace id, span id)
// pair — propagates through every layer the DAG touches: scheduler trigger,
// compute node, client-library read, node cache, storage RPC and commit.
//
// Determinism rules:
//   * Timestamps are sim-clock values passed in by the caller, so spans of
//     the same seed are bit-identical across runs.
//   * The context rides the fixed 32-byte frame header of net::Message
//     (W3C-traceparent style) and never counts toward wire_size().  The
//     tracer itself schedules no events and draws no randomness.  Enabling
//     tracing therefore cannot perturb the event schedule: RunResults with
//     tracing on and off are bit-identical for the same seed.
//
// Completed spans land in a bounded ring buffer; export_chrome_trace()
// writes them in Chrome's trace-event JSON (load via chrome://tracing or
// https://ui.perfetto.dev).  Per-trace bucket accumulators (queue, compute,
// storage) feed the latency-breakdown histograms; network time is the
// residual against the end-to-end latency.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <ostream>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace faastcc::obs {

// Propagated with every message of a traced DAG.  trace_id 0 means "not
// traced" (tracing disabled, or the trace was not sampled); every tracer
// operation on such a context is a no-op.
struct TraceContext {
  uint64_t trace_id = 0;  // the DAG attempt's transaction id
  uint64_t span_id = 0;   // the sender's span; 0 at the root

  bool traced() const { return trace_id != 0; }
};

// Typed key/value annotation (cache hit, interval width, bytes on wire...).
// Keys are string literals owned by the call sites.
struct Annotation {
  const char* key = "";
  uint64_t value = 0;
};

struct Span {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;  // 0 = trace root
  const char* name = "";
  const char* cat = "";
  uint32_t node = 0;  // net::Address of the component that ran the span
  SimTime start = 0;
  SimTime end = 0;
  std::vector<Annotation> annotations;
};

// Opaque handle to a span under construction.  Slot 0 is the inactive
// handle: returned when tracing is off or the trace is unsampled, and
// accepted (as a no-op) by every tracer method.
struct SpanHandle {
  uint32_t slot = 0;

  bool active() const { return slot != 0; }
};

// Latency-breakdown buckets.  Network time is not a bucket: it is the
// residual of the end-to-end latency after the instrumented buckets.
enum class Bucket : uint8_t { kQueue = 0, kCompute = 1, kStorage = 2 };

struct TraceParams {
  bool enabled = false;
  // Completed spans kept; the oldest are dropped beyond this.
  size_t ring_capacity = 1 << 16;
  // Record every Nth trace (1 = all).  Sampling is by start order, which
  // is event-schedule order and therefore deterministic per seed.
  uint64_t sample_every = 1;
};

// Per-DAG latency breakdown, all in simulated microseconds.
struct TraceBreakdown {
  Duration total = 0;
  Duration queue = 0;
  Duration compute = 0;
  Duration storage = 0;
  Duration network = 0;  // residual: total - (queue + compute + storage)
};

class Tracer {
 public:
  Tracer() = default;
  explicit Tracer(TraceParams params) : params_(params) {}

  bool enabled() const { return params_.enabled; }
  const TraceParams& params() const { return params_; }

  // Opens a trace for one DAG attempt.  Decides sampling; unsampled traces
  // never allocate spans or bucket time.
  void start_trace(uint64_t trace_id, SimTime now);

  // Opens a span under `parent`.  Inactive when tracing is off, the parent
  // context is untraced, or the trace is not open (unsampled / finished).
  SpanHandle begin(const TraceContext& parent, const char* name,
                   const char* cat, uint32_t node, SimTime now);

  void annotate(SpanHandle h, const char* key, uint64_t value);

  // Context downstream layers should propagate for work caused by `h`.
  TraceContext context_of(SpanHandle h) const;

  // Closes the span and moves it to the ring buffer.
  void end(SpanHandle h, SimTime now);

  // Charges `d` to a breakdown bucket of an open trace.
  void add_time(uint64_t trace_id, Bucket b, Duration d);

  // Closes the trace and returns its breakdown; nullopt when the trace was
  // never opened (tracing off or unsampled).  Spans still open when their
  // trace finishes flush to the ring when they end.
  std::optional<TraceBreakdown> finish_trace(uint64_t trace_id, SimTime now);

  // Completed spans, in completion order (event-schedule deterministic).
  const std::deque<Span>& spans() const { return spans_; }
  size_t spans_recorded() const { return spans_.size(); }
  uint64_t spans_dropped() const { return spans_dropped_; }
  uint64_t traces_started() const { return traces_started_; }

  // Chrome trace-event JSON ("X" complete events, integer microsecond
  // timestamps).  Byte-identical across runs of the same seed.
  void export_chrome_trace(std::ostream& out) const;

 private:
  struct OpenTrace {
    SimTime start = 0;
    Duration buckets[3] = {0, 0, 0};
  };

  TraceParams params_;
  uint64_t traces_started_ = 0;
  uint64_t next_span_id_ = 1;
  uint64_t spans_dropped_ = 0;
  std::unordered_map<uint64_t, OpenTrace> open_traces_;
  // Slab of spans under construction; handles are slot index + 1.
  std::vector<Span> slab_;
  std::vector<uint32_t> free_slots_;
  std::deque<Span> spans_;
};

}  // namespace faastcc::obs
