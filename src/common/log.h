// Tiny leveled logger.  Verbosity is controlled by the FAASTCC_LOG
// environment variable (error|warn|info|debug); the default is warn so
// tests and benchmarks stay quiet.
#pragma once

#include <sstream>
#include <string>

namespace faastcc {

enum class LogLevel { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

LogLevel log_level();
void set_log_level(LogLevel level);
bool log_enabled(LogLevel level);
void log_write(LogLevel level, const std::string& msg);

}  // namespace faastcc

#define FAASTCC_LOG(level, expr)                            \
  do {                                                      \
    if (::faastcc::log_enabled(level)) {                    \
      std::ostringstream faastcc_log_os;                    \
      faastcc_log_os << expr;                               \
      ::faastcc::log_write(level, faastcc_log_os.str());    \
    }                                                       \
  } while (0)

#define LOG_ERROR(expr) FAASTCC_LOG(::faastcc::LogLevel::kError, expr)
#define LOG_WARN(expr) FAASTCC_LOG(::faastcc::LogLevel::kWarn, expr)
#define LOG_INFO(expr) FAASTCC_LOG(::faastcc::LogLevel::kInfo, expr)
#define LOG_DEBUG(expr) FAASTCC_LOG(::faastcc::LogLevel::kDebug, expr)
