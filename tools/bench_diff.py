#!/usr/bin/env python3
"""Compare (or schema-check) BENCH_wallclock.json files.

Usage:
    bench_diff.py OLD.json NEW.json     # print per-system before/after table
    bench_diff.py --check FILE.json     # validate schema, exit 1 on failure

The wallclock bench runs a deterministic simulation, so `sim_events`,
`messages` and `committed` act as schedule checksums: if they differ
between the two files (same config + seed), the runs are not comparable
and the diff exits with an error.
"""

import json
import sys

SCHEMA = "faastcc.bench_wallclock.v1"

REQUIRED_SYSTEM_KEYS = {
    "wall_ms": (int, float),
    "sim_events": int,
    "messages": int,
    "committed": int,
    "events_per_sec": (int, float),
    "messages_per_sec": (int, float),
}

REQUIRED_CONFIG_KEYS = {
    "partitions": int,
    "compute_nodes": int,
    "clients": int,
    "dags_per_client": int,
    "num_keys": int,
    "dag_size": int,
    "seed": int,
    "repeats": int,
}


def fail(msg):
    print(f"bench_diff: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")


def check(doc, path):
    if doc.get("schema") != SCHEMA:
        fail(f"{path}: schema is {doc.get('schema')!r}, expected {SCHEMA!r}")
    config = doc.get("config")
    if not isinstance(config, dict):
        fail(f"{path}: missing config object")
    for key, ty in REQUIRED_CONFIG_KEYS.items():
        if not isinstance(config.get(key), ty):
            fail(f"{path}: config.{key} missing or not {ty}")
    if not isinstance(doc.get("peak_rss_kb"), int) or doc["peak_rss_kb"] <= 0:
        fail(f"{path}: peak_rss_kb missing or non-positive")
    systems = doc.get("systems")
    if not isinstance(systems, dict) or not systems:
        fail(f"{path}: missing systems object")
    for name, sysdoc in systems.items():
        if not isinstance(sysdoc, dict):
            fail(f"{path}: systems.{name} is not an object")
        for key, ty in REQUIRED_SYSTEM_KEYS.items():
            value = sysdoc.get(key)
            if not isinstance(value, ty) or isinstance(value, bool):
                fail(f"{path}: systems.{name}.{key} missing or not {ty}")
            if value <= 0:
                fail(f"{path}: systems.{name}.{key} is non-positive")
    total = doc.get("total")
    if not isinstance(total, dict) or not isinstance(
        total.get("wall_ms"), (int, float)
    ):
        fail(f"{path}: missing total.wall_ms")
    return doc


def diff(old_path, new_path):
    old = check(load(old_path), old_path)
    new = check(load(new_path), new_path)
    if old["config"] != new["config"]:
        print("WARNING: configs differ; ratios are not apples-to-apples",
              file=sys.stderr)

    names = [n for n in old["systems"] if n in new["systems"]]
    if not names:
        fail("no system appears in both files")

    header = (
        f"{'system':<12} {'wall_ms':>10} {'->':^4} {'wall_ms':>10} "
        f"{'speedup':>8}  {'events/s':>12} {'->':^4} {'events/s':>12} "
        f"{'ratio':>7}"
    )
    print(header)
    print("-" * len(header))
    mismatched = []
    ratios = []
    for name in names:
        o, n = old["systems"][name], new["systems"][name]
        if old["config"] == new["config"]:
            for checksum in ("sim_events", "messages", "committed"):
                if o[checksum] != n[checksum]:
                    mismatched.append(
                        f"{name}.{checksum}: {o[checksum]} -> {n[checksum]}"
                    )
        speedup = o["wall_ms"] / n["wall_ms"]
        ratio = n["events_per_sec"] / o["events_per_sec"]
        ratios.append(ratio)
        print(
            f"{name:<12} {o['wall_ms']:>10.1f} {'->':^4} {n['wall_ms']:>10.1f} "
            f"{speedup:>7.2f}x  {o['events_per_sec']:>12.0f} {'->':^4} "
            f"{n['events_per_sec']:>12.0f} {ratio:>6.2f}x"
        )
    ot, nt = old["total"], new["total"]
    print("-" * len(header))
    print(
        f"{'total':<12} {ot['wall_ms']:>10.1f} {'->':^4} {nt['wall_ms']:>10.1f} "
        f"{ot['wall_ms'] / nt['wall_ms']:>7.2f}x  "
        f"geomean events/s ratio: "
        f"{(__import__('math').prod(ratios)) ** (1 / len(ratios)):.2f}x"
    )
    if mismatched:
        fail(
            "determinism checksums differ (schedule changed, runs not "
            "comparable):\n  " + "\n  ".join(mismatched)
        )


def main(argv):
    if len(argv) == 3 and argv[1] == "--check":
        check(load(argv[2]), argv[2])
        print(f"{argv[2]}: ok")
        return
    if len(argv) == 3:
        diff(argv[1], argv[2])
        return
    print(__doc__, file=sys.stderr)
    sys.exit(2)


if __name__ == "__main__":
    main(sys.argv)
