// Metric-driven autoscaler: watches the committed-DAG latency stream and
// drives the reconfiguration engine to grow or shrink the partition count
// mid-run.
//
// Signal: the 99th percentile of dag.latency_ms over the samples that
// arrived since the previous check (a tumbling window — the registry keeps
// raw samples, so the window is an index range, not a copy of history).
// Hysteresis: an action needs `breach_checks` CONSECUTIVE breaching
// windows, and after any action the scaler holds off for `cooldown`
// (handoffs themselves perturb latency; reacting to that echo would
// oscillate).  A window with no committed DAGs carries no signal and
// neither builds nor resets a streak.
#pragma once

#include <functional>
#include <vector>

#include "common/metrics.h"
#include "routing/routing_table.h"
#include "sim/future.h"
#include "storage/reconfig.h"

namespace faastcc::harness {

struct AutoscaleParams {
  size_t max_partitions = 0;  // ceiling; 0 disables the autoscaler
  size_t min_partitions = 0;  // floor; 0 = the starting partition count
  Duration check_period = milliseconds(100);
  double high_p99_ms = 0.0;   // breach: windowed p99 above this (0 = never)
  double low_p99_ms = 0.0;    // relief: windowed p99 below this (0 = never)
  size_t breach_checks = 3;   // consecutive breaching windows before acting
  Duration cooldown = milliseconds(500);
  size_t step = 1;            // partitions added/removed per action
  bool enabled() const { return max_partitions > 0; }
};

class Autoscaler {
 public:
  // `addresses(first_id, count)` supplies the partition addresses for a
  // scale-out of `count` new partitions starting at id `first_id` — the
  // harness owns the address scheme, not the scaler.
  using AddressProvider =
      std::function<std::vector<routing::PartitionAddress>(size_t, size_t)>;

  Autoscaler(sim::EventLoop& loop, storage::ReconfigEngine& engine,
             Metrics& metrics, AutoscaleParams params,
             AddressProvider addresses)
      : loop_(loop),
        engine_(engine),
        metrics_(metrics),
        params_(params),
        addresses_(std::move(addresses)) {}

  // The control loop; spawn once after the cluster starts.
  sim::Task<void> run();

  uint64_t scale_outs() const { return scale_outs_; }
  uint64_t scale_ins() const { return scale_ins_; }

 private:
  // p99 over samples since the last call; negative when the window is
  // empty (no signal).
  double window_p99();

  sim::EventLoop& loop_;
  storage::ReconfigEngine& engine_;
  Metrics& metrics_;
  AutoscaleParams params_;
  AddressProvider addresses_;
  size_t window_start_ = 0;
  size_t high_streak_ = 0;
  size_t low_streak_ = 0;
  SimTime next_allowed_ = 0;
  uint64_t scale_outs_ = 0;
  uint64_t scale_ins_ = 0;
};

}  // namespace faastcc::harness
