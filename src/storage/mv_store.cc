#include "storage/mv_store.h"

#include <algorithm>
#include <cassert>

namespace faastcc::storage {

void MvStore::install(Key key, Value value, Timestamp ts) {
  auto& chain = chains_[key];
  if (chain.empty() || chain.back().ts < ts) {
    value_bytes_ += value.size();
    ++num_versions_;
    chain.push_back(Version{std::move(value), ts});
    return;
  }
  // Out-of-order install (commit-apply messages are not FIFO across
  // partitions); insert preserving order.
  auto it = std::lower_bound(
      chain.begin(), chain.end(), ts,
      [](const Version& v, Timestamp t) { return v.ts < t; });
  // Idempotent: a duplicated or retried commit re-installs the same
  // (key, ts) version; the chain must not grow a twin.
  if (it != chain.end() && it->ts == ts) return;
  value_bytes_ += value.size();
  ++num_versions_;
  chain.insert(it, Version{std::move(value), ts});
}

void MvStore::migrate_in(Key key, const std::vector<Version>& versions) {
  for (const Version& v : versions) {
    // install() is idempotent on (key, ts) and keeps the accounting, so a
    // migrated chain behaves exactly like one built from commits.
    install(key, v.value, v.ts);
  }
}

std::vector<std::pair<Key, std::vector<MvStore::Version>>>
MvStore::extract_chains(const std::function<bool(Key)>& pred) {
  std::vector<std::pair<Key, std::vector<Version>>> out;
  for (auto it = chains_.begin(); it != chains_.end();) {
    if (!pred(it->first)) {
      ++it;
      continue;
    }
    for (const Version& v : it->second) {
      value_bytes_ -= v.value.size();
      --num_versions_;
    }
    out.emplace_back(it->first, std::move(it->second));
    it = chains_.erase(it);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

std::vector<std::pair<Key, std::vector<MvStore::Version>>>
MvStore::snapshot_chains() const {
  std::vector<std::pair<Key, std::vector<Version>>> out;
  out.reserve(chains_.size());
  for (const auto& [key, chain] : chains_) out.emplace_back(key, chain);
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

MvStore::ReadResult MvStore::read_at(Key key, Timestamp snapshot) const {
  ReadResult out;
  auto it = chains_.find(key);
  if (it == chains_.end()) return out;
  const auto& chain = it->second;
  // First version with ts > snapshot.
  auto pos = std::upper_bound(
      chain.begin(), chain.end(), snapshot,
      [](Timestamp t, const Version& v) { return t < v.ts; });
  if (pos != chain.end()) out.next_ts = pos->ts;
  if (pos == chain.begin()) {
    // Nothing at or below the snapshot.  If the chain has been GC'd, a
    // suitable version may have existed once; flag so callers can
    // distinguish "never written" from "history trimmed".
    out.below_gc_horizon = !chain.empty();
    return out;
  }
  out.version = &*(pos - 1);
  return out;
}

size_t MvStore::gc_before(Timestamp horizon) {
  size_t dropped = 0;
  for (auto& [key, chain] : chains_) {
    auto pos = std::upper_bound(
        chain.begin(), chain.end(), horizon,
        [](Timestamp t, const Version& v) { return t < v.ts; });
    if (pos == chain.begin()) continue;
    // Keep the version just below the horizon; drop everything before it.
    auto keep_from = pos - 1;
    for (auto it = chain.begin(); it != keep_from; ++it) {
      value_bytes_ -= it->value.size();
      ++dropped;
    }
    num_versions_ -= static_cast<size_t>(keep_from - chain.begin());
    chain.erase(chain.begin(), keep_from);
  }
  return dropped;
}

std::optional<Timestamp> MvStore::oldest_ts(Key key) const {
  auto it = chains_.find(key);
  if (it == chains_.end() || it->second.empty()) return std::nullopt;
  return it->second.front().ts;
}

std::optional<Timestamp> MvStore::newest_ts(Key key) const {
  auto it = chains_.find(key);
  if (it == chains_.end() || it->second.empty()) return std::nullopt;
  return it->second.back().ts;
}

}  // namespace faastcc::storage
