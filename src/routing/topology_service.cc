#include "routing/topology_service.h"

#include <algorithm>
#include <cassert>

namespace faastcc::routing {

TopologyService::TopologyService(net::Network& network, net::Address address,
                                 TablePtr initial)
    : rpc_(network, address), table_(std::move(initial)) {
  assert(table_ != nullptr);
  rpc_.handle(kTopoGet,
              [this](Buffer req, net::Address) -> sim::Task<Buffer> {
                rpc_.recycle(std::move(req));
                co_return rpc_.encode(*table_);
              });
  rpc_.handle(kTopoPromote,
              [this](Buffer req, net::Address) -> sim::Task<Buffer> {
                const auto q = decode_message<TopoPromoteReq>(req);
                rpc_.recycle(std::move(req));
                // First valid bid per epoch wins; a bid against any other
                // epoch lost a race it can learn about from the reply.
                if (q.epoch == table_->epoch &&
                    q.partition < table_->num_partitions()) {
                  const auto& reps = table_->replicas_of(q.partition);
                  if (std::find(reps.begin(), reps.end(), q.candidate) !=
                      reps.end()) {
                    publish(make_table(
                        table_->with_leader_replaced(q.partition,
                                                     q.candidate)));
                  }
                }
                co_return rpc_.encode(*table_);
              });
}

void TopologyService::publish(TablePtr next) {
  assert(next != nullptr && next->epoch > table_->epoch);
  const TablePtr old = table_;
  table_ = std::move(next);
  if (table_->num_partitions() < old->num_partitions()) {
    // Contraction: the dropped tail's leaders and followers leave the
    // broadcast set.  Skipping is shrink-only on purpose — a leader
    // replaced by a failover keeps receiving updates (a revived deposed
    // leader must learn it was deposed from exactly this channel).
    for (size_t p = table_->num_partitions(); p < old->num_partitions();
         ++p) {
      retired_.insert(old->partitions[p]);
      if (p < old->replicas.size()) {
        for (PartitionAddress f : old->replicas[p]) retired_.insert(f);
      }
    }
  }
  if (!retired_.empty()) {
    // Any address the new table names again (a re-joined instance) is live.
    for (PartitionAddress a : table_->partitions) retired_.erase(a);
    for (const auto& reps : table_->replicas) {
      for (PartitionAddress f : reps) retired_.erase(f);
    }
  }
  for (net::Address a : listeners_) {
    if (retired_.count(a) != 0) {
      if (metrics_ != nullptr) {
        metrics_->counter("routing.topo_update_skipped").inc();
      }
      continue;
    }
    rpc_.send(a, kTopoUpdate, *table_);
  }
}

}  // namespace faastcc::routing
