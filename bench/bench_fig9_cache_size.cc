// Figure 9: latency with bounded cache sizes {0 %, 1 %, 10 %, 50 %} of the
// unbounded cache footprint, at Zipf 1.0.  FaaSTCC behaves identically for
// static and dynamic transactions; HydroCache does not.
#include "bench_util.h"

using namespace faastcc;
using namespace faastcc::bench;

int main() {
  print_preamble("Figure 9", "latency under bounded cache sizes (zipf 1.0)");

  // Full size: entries per node cache of the unbounded runs.
  const SummaryStats hc_full =
      run_or_load(base_config(SystemKind::kHydroCache, 1.0, false));
  const SummaryStats ft_full =
      run_or_load(base_config(SystemKind::kFaasTcc, 1.0, false));
  const double hc_entries_per_cache = hc_full.cache_entries / 10.0;
  const double ft_entries_per_cache = ft_full.cache_entries / 10.0;

  struct Row {
    const char* name;
    SystemKind system;
    bool static_txns;
    double full_entries;
    // paper med/p99 at {0%, 1%, 10%, 50%}; -1 = not reported numerically
    double paper[4][2];
  };
  const Row rows[] = {
      {"HydroCache-Static", SystemKind::kHydroCache, true,
       hc_entries_per_cache,
       {{36.5, 99.1}, {28.2, 61.6}, {16.5, 41.5}, {-1, -1}}},
      {"HydroCache-Dynamic", SystemKind::kHydroCache, false,
       hc_entries_per_cache,
       {{56.5, 118.1}, {53.3, 104.7}, {51.7, 99.8}, {-1, -1}}},
      {"FaaSTCC", SystemKind::kFaasTcc, false, ft_entries_per_cache,
       {{22.4, 25.6}, {16.2, 19.2}, {14.1, 19.0}, {10.2, 16.9}}},
  };
  const double fractions[] = {0.0, 0.01, 0.10, 0.50};
  const char* labels[] = {"0%", "1%", "10%", "50%"};

  Table table({"system", "cache size", "median", "p99", "paper median",
               "paper p99"});
  for (const Row& row : rows) {
    for (int i = 0; i < 4; ++i) {
      ExperimentConfig cfg = base_config(row.system, 1.0, row.static_txns);
      cfg.cache_capacity =
          static_cast<size_t>(fractions[i] * row.full_entries);
      const SummaryStats s = run_or_load(cfg);
      auto paper_cell = [&](int j) {
        return row.paper[i][j] < 0 ? std::string("-")
                                   : fmt(row.paper[i][j], 1);
      };
      table.add_row({row.name, labels[i], fmt(s.latency_med_ms, 1),
                     fmt(s.latency_p99_ms, 1), paper_cell(0), paper_cell(1)});
    }
  }
  table.print();
  std::printf(
      "paper: FaaSTCC with the cache disabled already approaches "
      "HydroCache with caching;\nthe full cache roughly halves FaaSTCC's "
      "latency.\n");
  return 0;
}
