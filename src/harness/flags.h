// One flag registry for every binary in the repo.
//
// faastcc_sim, tcc_fuzz, tcc_sweep and the bench binaries used to each
// hand-roll a strncmp loop, which meant three different spellings of the
// same option and no unknown-flag detection.  Flags gives them typed
// registration, generated usage text, and uniform errors:
//
//   harness::Flags flags("tcc_fuzz", "deterministic consistency fuzzer");
//   uint64_t seeds = 20;
//   flags.u64("seeds", "seeds per config", &seeds);
//   if (!flags.parse(argc, argv)) { ... flags.error() ... }
//
// Accepted syntax: --name=value for valued flags, --name for booleans
// (--name=true/false also works).  Unknown flags, missing values and
// unparsable values are errors, never silently ignored.  --help is
// registered automatically.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace faastcc::harness {

class Flags {
 public:
  Flags(std::string prog, std::string description);

  // Each registration binds a flag to an out pointer holding its default.
  // The help text shows the default value captured at registration time.
  void boolean(std::string_view name, std::string_view help, bool* out);
  void integer(std::string_view name, std::string_view help, int* out);
  void u64(std::string_view name, std::string_view help, uint64_t* out);
  // size_t flag accepting "inf" for SIZE_MAX (cache capacities).
  void size(std::string_view name, std::string_view help, size_t* out);
  void real(std::string_view name, std::string_view help, double* out);
  void str(std::string_view name, std::string_view help, std::string* out);
  // Duration flag whose CLI value is in milliseconds.
  void duration_ms(std::string_view name, std::string_view help,
                   Duration* out);
  // Escape hatch for structured values (--crash=addr:from:until, CSV
  // lists).  The callback returns false to reject the value; repeatable
  // flags simply accumulate in the callback.  `value_name` appears in the
  // usage text as --name=<value_name>.
  void custom(std::string_view name, std::string_view value_name,
              std::string_view help,
              std::function<bool(const std::string&)> parse);

  // Parses argv.  On failure returns false with error() set; at most one
  // error is reported per parse.  --help sets help_requested() and returns
  // true without touching any out pointers after it.
  bool parse(int argc, char** argv);

  const std::string& error() const { return error_; }
  bool help_requested() const { return help_requested_; }

  // Generated usage text: one line per flag, registration order.
  std::string usage() const;

  // Splits a comma-separated list; empty input gives an empty vector.
  static std::vector<std::string> split_csv(std::string_view csv);

 private:
  struct Flag {
    std::string name;
    std::string value_name;  // empty for plain booleans
    std::string help;
    std::string default_text;
    bool is_bool = false;
    std::function<bool(const std::string&)> apply;
  };

  void add(Flag flag);
  const Flag* find(std::string_view name) const;

  std::string prog_;
  std::string description_;
  std::vector<Flag> flags_;
  std::string error_;
  bool help_requested_ = false;
};

}  // namespace faastcc::harness
