file(REMOVE_RECURSE
  "libfaastcc_workload.a"
)
