# Empty compiler generated dependencies file for tcc_properties_test.
# This may be replaced when dependencies are built.
