// Deterministic consistency fuzzer for the FaaSTCC stack.
//
//   tcc_fuzz [--seeds=N] [--seed-base=N] [--configs=a,b,...]
//            [--dags=N] [--clients=N] [--list-configs] [--verbose]
//
// Sweeps seeds x fault matrices x workload shapes over small FaaSTCC
// clusters with the consistency oracle attached (zero perturbation: the
// oracle never changes the schedule, so every failure reproduces from its
// seed alone).  On the first violation the failing (seed, config, shape)
// is printed together with the oracle's report, the run is shrunk to a
// smaller counterexample (fewer clients/DAGs with the same violation),
// and the process exits 1.  A clean sweep exits 0.
//
// Every fault matrix stays inside the protocol's operating envelope
// (coordinators retry past loss; prepare TTLs comfortably exceed the
// retry horizon), so a violation is always a bug, never tuning noise.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "check/oracle.h"
#include "harness/cluster.h"

using namespace faastcc;
using namespace faastcc::harness;

namespace {

struct FuzzConfig {
  const char* name;
  const char* what;
  // Regression configs re-enable one historical bug via its chaos knob.
  // They are excluded from the default sweep (they are SUPPOSED to fail)
  // and run only when named explicitly in --configs.
  bool chaos;
  void (*apply)(ClusterParams&);
};

const FuzzConfig kConfigs[] = {
    {"clean", "no faults (oracle sanity baseline)", false,
     [](ClusterParams&) {}},
    {"lossy", "2% loss + 1% duplication", false,
     [](ClusterParams& p) {
       p.faults.loss_prob = 0.02;
       p.faults.dup_prob = 0.01;
     }},
    {"spikes-ttl", "delay spikes + short prepare TTL", false,
     [](ClusterParams& p) {
       p.faults.loss_prob = 0.01;
       p.faults.delay_spike_prob = 0.01;
       p.faults.delay_spike = milliseconds(20);
       p.tcc.prepare_ttl = milliseconds(250);
     }},
    {"tiny-cache", "8-entry caches, hot keys, loss", false,
     [](ClusterParams& p) {
       p.cache_capacity = 8;
       p.workload.zipf = 1.2;
       p.faults.loss_prob = 0.01;
     }},
    {"crashy", "partition + cache crash windows", false,
     [](ClusterParams& p) {
       // Partition 1 (addr 101) blacks out mid-run, then cache 0 (addr
       // 3000); both well inside the measured phase (warmup 250 ms).
       p.faults.crashes.push_back(net::CrashWindow{101, milliseconds(300),
                                                   milliseconds(360)});
       p.faults.crashes.push_back(net::CrashWindow{3000, milliseconds(420),
                                                   milliseconds(470)});
       p.faults.dag_timeout = milliseconds(500);
     }},
    {"elastic", "mid-run scale-out 3 -> 5 partitions, no faults", false,
     [](ClusterParams& p) {
       p.elastic.add_partitions = 2;
       p.elastic.at = milliseconds(300);
     }},
    {"elastic-lossy", "scale-out under 2% loss + 1% duplication", false,
     [](ClusterParams& p) {
       p.elastic.add_partitions = 2;
       p.elastic.at = milliseconds(300);
       p.faults.loss_prob = 0.02;
       p.faults.dup_prob = 0.01;
     }},
    {"elastic-dup", "scale-out under 3% duplication (handoff replay paths)",
     false,
     [](ClusterParams& p) {
       p.elastic.add_partitions = 2;
       p.elastic.at = milliseconds(300);
       p.faults.dup_prob = 0.03;
     }},
    {"chaos-lost-ack", "REGRESSION: commits acked without install", true,
     [](ClusterParams& p) { p.tcc.chaos_drop_install = true; }},
    {"chaos-prewarm", "REGRESSION: prewarm entries open unsubscribed", true,
     [](ClusterParams& p) {
       p.faastcc_cache.chaos_prewarm_open = true;
       p.cache_capacity = 32;
       p.workload.zipf = 1.2;
     }},
};

// Workload shapes rotate with the seed so a sweep covers all of them.
void apply_shape(ClusterParams& p, uint64_t seed) {
  switch (seed % 3) {
    case 0:  // short chains, uniform-ish keys
      p.workload.dag_size = 2;
      p.workload.zipf = 0.8;
      break;
    case 1:  // deep chains (long dependency tails)
      p.workload.dag_size = 6;
      break;
    default:  // static transactions on a hot key set
      p.workload.dag_size = 4;
      p.workload.zipf = std::max(p.workload.zipf, 1.1);
      p.workload.static_txns = true;
      break;
  }
}

struct RunOutcome {
  uint64_t committed = 0;
  std::vector<check::Violation> violations;
  std::string report;
  size_t installs = 0;
};

// Dedup-window overrides (SIZE_MAX = keep the default).  Setting one to 0
// disables that at-most-once window — the knob regression tests use to
// prove the oracle still catches the ghost-execution bugs they guard.
size_t g_executed_dedup_cap = SIZE_MAX;
size_t g_start_dedup_cap = SIZE_MAX;

RunOutcome run_one(const FuzzConfig& cfg, uint64_t seed, int clients,
                   int dags) {
  ClusterParams p;
  p.system = SystemKind::kFaasTcc;
  p.seed = seed;
  p.partitions = 3;
  p.compute_nodes = 2;
  p.clients = static_cast<size_t>(clients);
  p.dags_per_client = dags;
  p.workload.num_keys = 64;  // hot key space: maximal contention
  p.workload.zipf = 1.0;
  p.check_consistency = true;
  apply_shape(p, seed);
  cfg.apply(p);
  if (g_executed_dedup_cap != SIZE_MAX) {
    p.node.executed_dedup_cap = g_executed_dedup_cap;
  }
  if (g_start_dedup_cap != SIZE_MAX) {
    p.scheduler.start_dedup_cap = g_start_dedup_cap;
  }

  Cluster cluster(p);
  const RunResult r = cluster.run();
  RunOutcome out;
  out.committed = r.committed;
  check::ConsistencyOracle* oracle = cluster.oracle();
  out.violations = oracle->check();
  out.installs = oracle->installs_recorded();
  if (!out.violations.empty()) out.report = oracle->report(out.violations);
  return out;
}

// Greedy shrink: fewer clients, then fewer DAGs, keeping the failure (any
// violation of the same kind) alive.  Deterministic, bounded work.
void shrink(const FuzzConfig& cfg, uint64_t seed, int clients, int dags,
            check::Violation::Kind kind) {
  auto still_fails = [&](int c, int d) {
    const RunOutcome o = run_one(cfg, seed, c, d);
    for (const auto& v : o.violations) {
      if (v.kind == kind) return true;
    }
    return false;
  };
  int best_c = clients, best_d = dags;
  for (int c = best_c / 2; c >= 1; c /= 2) {
    if (still_fails(c, best_d)) best_c = c;
  }
  for (int d = best_d / 2; d >= 1; d /= 2) {
    if (still_fails(best_c, d)) best_d = d;
  }
  std::fprintf(stderr,
               "minimal counterexample: --configs=%s --seed-base=%llu "
               "--seeds=1 --clients=%d --dags=%d\n",
               cfg.name, static_cast<unsigned long long>(seed), best_c,
               best_d);
}

void usage() {
  std::fprintf(stderr,
               "usage: tcc_fuzz [options]\n"
               "  --seeds=<n>       seeds per config     (default 20)\n"
               "  --seed-base=<n>   first seed           (default 1)\n"
               "  --configs=<csv>   subset of fault configs (default all)\n"
               "  --clients=<n>     closed-loop clients  (default 4)\n"
               "  --dags=<n>        DAGs per client      (default 12)\n"
               "  --executed-dedup-cap=<n>  node (txn,fn) dedup window\n"
               "  --start-dedup-cap=<n>     scheduler txn dedup window\n"
               "  --no-shrink       skip counterexample shrinking\n"
               "  --list-configs    print configs and exit\n"
               "  --verbose         per-run progress\n");
}

bool parse_value(const char* arg, const char* name, std::string* out) {
  const size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *out = arg + n + 1;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t seeds = 20, seed_base = 1;
  int clients = 4, dags = 12;
  bool verbose = false, do_shrink = true;
  std::string configs_csv;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    std::string v;
    if (parse_value(arg, "--seeds", &v)) {
      seeds = static_cast<uint64_t>(std::atoll(v.c_str()));
    } else if (parse_value(arg, "--seed-base", &v)) {
      seed_base = static_cast<uint64_t>(std::atoll(v.c_str()));
    } else if (parse_value(arg, "--configs", &v)) {
      configs_csv = v;
    } else if (parse_value(arg, "--clients", &v)) {
      clients = std::atoi(v.c_str());
    } else if (parse_value(arg, "--dags", &v)) {
      dags = std::atoi(v.c_str());
    } else if (parse_value(arg, "--executed-dedup-cap", &v)) {
      g_executed_dedup_cap = static_cast<size_t>(std::atoll(v.c_str()));
    } else if (parse_value(arg, "--start-dedup-cap", &v)) {
      g_start_dedup_cap = static_cast<size_t>(std::atoll(v.c_str()));
    } else if (std::strcmp(arg, "--no-shrink") == 0) {
      do_shrink = false;
    } else if (std::strcmp(arg, "--list-configs") == 0) {
      for (const auto& c : kConfigs) {
        std::fprintf(stderr, "  %-16s %s\n", c.name, c.what);
      }
      return 0;
    } else if (std::strcmp(arg, "--verbose") == 0) {
      verbose = true;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg);
      usage();
      return 2;
    }
  }

  auto selected = [&](const FuzzConfig& cfg) {
    const char* name = cfg.name;
    if (configs_csv.empty()) return !cfg.chaos;
    // Exact match within the comma-separated list.
    size_t pos = 0;
    const std::string n = name;
    while (pos <= configs_csv.size()) {
      const size_t end = configs_csv.find(',', pos);
      const size_t len =
          (end == std::string::npos ? configs_csv.size() : end) - pos;
      if (configs_csv.compare(pos, len, n) == 0) return true;
      if (end == std::string::npos) break;
      pos = end + 1;
    }
    return false;
  };

  uint64_t runs = 0, total_committed = 0;
  size_t total_installs = 0;
  for (const auto& cfg : kConfigs) {
    if (!selected(cfg)) continue;
    for (uint64_t s = 0; s < seeds; ++s) {
      const uint64_t seed = seed_base + s;
      const RunOutcome o = run_one(cfg, seed, clients, dags);
      ++runs;
      total_committed += o.committed;
      total_installs += o.installs;
      if (verbose) {
        std::fprintf(stderr, "%-12s seed=%-6llu committed=%-5llu %s\n",
                     cfg.name, static_cast<unsigned long long>(seed),
                     static_cast<unsigned long long>(o.committed),
                     o.violations.empty() ? "ok" : "VIOLATION");
      }
      if (!o.violations.empty()) {
        std::fprintf(stderr,
                     "\nconsistency violation: config=%s seed=%llu "
                     "clients=%d dags=%d\n%s",
                     cfg.name, static_cast<unsigned long long>(seed), clients,
                     dags, o.report.c_str());
        if (do_shrink) {
          shrink(cfg, seed, clients, dags, o.violations.front().kind);
        }
        return 1;
      }
      if (o.committed == 0) {
        // Liveness collapse is not a consistency violation but a sweep
        // that commits nothing verifies nothing; flag it loudly.
        std::fprintf(stderr, "warning: config=%s seed=%llu committed 0 DAGs\n",
                     cfg.name, static_cast<unsigned long long>(seed));
      }
    }
  }
  std::fprintf(stderr,
               "fuzz sweep clean: %llu runs, %llu DAGs committed, "
               "%zu installs checked\n",
               static_cast<unsigned long long>(runs),
               static_cast<unsigned long long>(total_committed),
               total_installs);
  return 0;
}
