file(REMOVE_RECURSE
  "libfaastcc_storage.a"
)
