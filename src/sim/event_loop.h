// Deterministic discrete-event loop.
//
// The entire FaaSTCC cluster — storage partitions, compute nodes, caches,
// clients and the network between them — runs on one of these.  Events are
// totally ordered by (timestamp, insertion sequence), so a given seed always
// produces the same execution, which the property tests rely on.
//
// The queue is a 4-ary heap over compact 40-byte event records (time, seq,
// two function pointers, a context word).  Coroutine resumptions — the bulk
// of all events — are scheduled through schedule_resume*() as a raw handle
// with no allocation; std::function closures remain supported for setup and
// timer paths via a boxed record.  Sifting moves PODs, never std::function
// objects.  The ordering is the same total order as the previous binary
// priority_queue, so schedules are bit-identical across the swap.
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/serialize.h"
#include "common/types.h"

namespace faastcc::sim {

class EventLoop {
 public:
  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;
  ~EventLoop();

  SimTime now() const { return now_; }

  // Schedules `fn` to run at absolute simulated time `t` (clamped to now).
  void schedule_at(SimTime t, std::function<void()> fn);

  // Schedules `fn` to run `d` microseconds from now.
  void schedule_after(Duration d, std::function<void()> fn) {
    schedule_at(now_ + (d > 0 ? d : 0), std::move(fn));
  }

  // Fast path: schedules a coroutine resumption without boxing a closure.
  // The handle is owned by its coroutine frame; a loop torn down with
  // resumptions still queued simply drops them (matching the previous
  // behaviour of dropping unrun closures).
  void schedule_resume_at(SimTime t, std::coroutine_handle<> h) {
    push(t, &EventLoop::run_handle, nullptr, h.address());
  }
  void schedule_resume_after(Duration d, std::coroutine_handle<> h) {
    schedule_resume_at(now_ + (d > 0 ? d : 0), h);
  }
  void schedule_resume(std::coroutine_handle<> h) {
    schedule_resume_at(now_, h);
  }

  // Runs events until the queue drains or stop() is called.
  void run();

  // Runs events with time <= t (and leaves now() == t if the queue drained).
  void run_until(SimTime t);

  // Executes the single next event; returns false if the queue is empty.
  bool run_one();

  void stop() { stopped_ = true; }
  bool stopped() const { return stopped_; }

  size_t pending() const { return heap_.size(); }
  uint64_t events_processed() const { return processed_; }

  // Message-buffer free list shared by everything running on this loop
  // (network, RPC endpoints); see BufferPool in common/serialize.h.
  BufferPool& buffer_pool() { return pool_; }

 private:
  // Compact record: invoking is `run(ctx)`, discarding without running is
  // `drop(ctx)` (nullptr drop == no-op, used by coroutine handles whose
  // frames are owned elsewhere).
  struct Event {
    SimTime time;
    uint64_t seq;
    void (*run)(void*);
    void (*drop)(void*);
    void* ctx;
  };

  static void run_handle(void* ctx) {
    std::coroutine_handle<>::from_address(ctx).resume();
  }
  static void run_closure(void* ctx);
  static void drop_closure(void* ctx);

  void push(SimTime t, void (*run)(void*), void (*drop)(void*), void* ctx);
  Event pop_min();

  // (time, seq) lexicographic order — identical to the old comparator.
  static bool before(const Event& a, const Event& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  static constexpr size_t kArity = 4;

  std::vector<Event> heap_;
  BufferPool pool_;
  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t processed_ = 0;
  bool stopped_ = false;
};

}  // namespace faastcc::sim
