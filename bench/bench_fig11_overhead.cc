// Figure 11: latency overhead w.r.t. the eventually consistent Cloudburst
// baseline (median and P99 ratios).
#include "bench_util.h"

using namespace faastcc;
using namespace faastcc::bench;

int main() {
  print_preamble("Figure 11", "latency overhead vs eventual consistency");

  struct Row {
    const char* name;
    SystemKind system;
    bool static_txns;
    double paper[3][2];  // per zipf {med ratio, p99 ratio}
  };
  const Row rows[] = {
      {"HydroCache-Static", SystemKind::kHydroCache, true,
       {{1.2, 2.0}, {1.7, 3.2}, {2.1, 4.0}}},
      {"HydroCache-Dynamic", SystemKind::kHydroCache, false,
       {{6.3, 9.3}, {3.7, 6.7}, {2.7, 5.2}}},
      {"FaaSTCC", SystemKind::kFaasTcc, false,
       {{1.3, 1.6}, {1.7, 2.1}, {1.9, 2.3}}},
  };
  const double zipfs[] = {1.0, 1.25, 1.5};

  Table table({"system", "zipf", "median ratio", "p99 ratio",
               "paper median", "paper p99"});
  for (int z = 0; z < 3; ++z) {
    const SummaryStats base =
        run_or_load(base_config(SystemKind::kCloudburst, zipfs[z], false));
    for (const Row& row : rows) {
      const SummaryStats s =
          run_or_load(base_config(row.system, zipfs[z], row.static_txns));
      table.add_row({row.name, fmt(zipfs[z], 2),
                     fmt(s.latency_med_ms / base.latency_med_ms, 1),
                     fmt(s.latency_p99_ms / base.latency_p99_ms, 1),
                     fmt(row.paper[z][0], 1), fmt(row.paper[z][1], 1)});
    }
  }
  table.print();
  return 0;
}
