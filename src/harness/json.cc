#include "harness/json.h"

#include <cctype>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace faastcc::harness::json {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) { throw ParseError(what, pos_); }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char next() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (next() != c) {
      --pos_;
      fail("unexpected character");
    }
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"': {
        Value v;
        v.type = Value::Type::kString;
        v.text = parse_string();
        return v;
      }
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Value{};
      default:
        return parse_number();
    }
  }

  static Value make_bool(bool b) {
    Value v;
    v.type = Value::Type::kBool;
    v.boolean = b;
    return v;
  }

  Value parse_object() {
    Value v;
    v.type = Value::Type::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      Value member = parse_value();
      for (const auto& [k, ignored] : v.fields) {
        (void)ignored;
        if (k == key) fail("duplicate object key");
      }
      v.fields.emplace_back(std::move(key), std::move(member));
      skip_ws();
      const char c = next();
      if (c == '}') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
    return v;
  }

  Value parse_array() {
    Value v;
    v.type = Value::Type::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.items.push_back(parse_value());
      skip_ws();
      const char c = next();
      if (c == ']') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = next();
      if (c == '"') break;
      if (c == '\\') {
        const char e = next();
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = next();
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                --pos_;
                fail("bad \\u escape");
              }
            }
            // UTF-8 encode (no surrogate-pair handling; the harness only
            // writes ASCII).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            --pos_;
            fail("bad escape character");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        fail("raw control character in string");
      } else {
        out.push_back(c);
      }
    }
    return out;
  }

  Value parse_number() {
    const size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (pos_ >= text_.size() || !std::isdigit(text_[pos_])) {
      fail("bad number");
    }
    const size_t int_start = pos_;
    while (pos_ < text_.size() && std::isdigit(text_[pos_])) ++pos_;
    if (text_[int_start] == '0' && pos_ - int_start > 1) {
      fail("bad number: leading zero");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(text_[pos_])) {
        fail("bad number: no digits after '.'");
      }
      while (pos_ < text_.size() && std::isdigit(text_[pos_])) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || !std::isdigit(text_[pos_])) {
        fail("bad number: empty exponent");
      }
      while (pos_ < text_.size() && std::isdigit(text_[pos_])) ++pos_;
    }
    Value v;
    v.type = Value::Type::kNumber;
    v.text = std::string(text_.substr(start, pos_ - start));
    return v;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

[[noreturn]] void type_fail(const char* what) { throw ParseError(what, 0); }

}  // namespace

const Value* Value::find(std::string_view k) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [key, v] : fields) {
    if (key == k) return &v;
  }
  return nullptr;
}

bool Value::as_bool() const {
  if (type != Type::kBool) type_fail("expected a boolean");
  return boolean;
}

int64_t Value::as_i64() const {
  if (type != Type::kNumber) type_fail("expected a number");
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (errno == ERANGE || end != text.c_str() + text.size()) {
    type_fail("number is not a 64-bit integer");
  }
  return static_cast<int64_t>(v);
}

uint64_t Value::as_u64() const {
  if (type != Type::kNumber) type_fail("expected a number");
  if (!text.empty() && text[0] == '-') type_fail("expected a non-negative number");
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (errno == ERANGE || end != text.c_str() + text.size()) {
    type_fail("number is not an unsigned 64-bit integer");
  }
  return static_cast<uint64_t>(v);
}

double Value::as_double() const {
  if (type != Type::kNumber) type_fail("expected a number");
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) type_fail("bad numeric token");
  return v;
}

const std::string& Value::as_string() const {
  if (type != Type::kString) type_fail("expected a string");
  return text;
}

Value parse(std::string_view text) { return Parser(text).parse_document(); }

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void Writer::separate() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (counts_.back() > 0) out_.push_back(',');
  if (counts_.size() > 1) indent();
  ++counts_.back();
}

void Writer::indent() {
  if (compact_) return;
  out_.push_back('\n');
  out_.append(2 * (counts_.size() - 1), ' ');
}

void Writer::begin_object() {
  separate();
  out_.push_back('{');
  counts_.push_back(0);
}

void Writer::end_object() {
  const bool had_members = counts_.back() > 0;
  counts_.pop_back();
  if (had_members) indent();
  out_.push_back('}');
}

void Writer::begin_array() {
  separate();
  out_.push_back('[');
  counts_.push_back(0);
}

void Writer::end_array() {
  const bool had_members = counts_.back() > 0;
  counts_.pop_back();
  if (had_members) indent();
  out_.push_back(']');
}

void Writer::key(std::string_view k) {
  separate();
  out_.push_back('"');
  out_ += escape(k);
  out_ += compact_ ? "\":" : "\": ";
  pending_key_ = true;
}

void Writer::string(std::string_view s) {
  separate();
  out_.push_back('"');
  out_ += escape(s);
  out_.push_back('"');
}

void Writer::boolean(bool b) {
  separate();
  out_ += b ? "true" : "false";
}

void Writer::u64(uint64_t v) {
  separate();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out_ += buf;
}

void Writer::i64(int64_t v) {
  separate();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out_ += buf;
}

void Writer::number(double v) {
  separate();
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out_ += buf;
}

void Writer::raw(std::string_view token) {
  separate();
  out_ += token;
}

void Writer::null() {
  separate();
  out_ += "null";
}

namespace {

void write_value(Writer& w, const Value& v) {
  switch (v.type) {
    case Value::Type::kNull:
      w.null();
      break;
    case Value::Type::kBool:
      w.boolean(v.boolean);
      break;
    case Value::Type::kNumber:
      w.raw(v.text);
      break;
    case Value::Type::kString:
      w.string(v.text);
      break;
    case Value::Type::kArray:
      w.begin_array();
      for (const Value& item : v.items) write_value(w, item);
      w.end_array();
      break;
    case Value::Type::kObject:
      w.begin_object();
      for (const auto& [k, member] : v.fields) {
        w.key(k);
        write_value(w, member);
      }
      w.end_object();
      break;
  }
}

}  // namespace

std::string to_text(const Value& v, bool compact) {
  Writer w(compact);
  write_value(w, v);
  return w.take();
}

}  // namespace faastcc::harness::json
