# Empty dependencies file for si_test.
# This may be replaced when dependencies are built.
