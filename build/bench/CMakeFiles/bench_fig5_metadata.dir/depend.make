# Empty dependencies file for bench_fig5_metadata.
# This may be replaced when dependencies are built.
