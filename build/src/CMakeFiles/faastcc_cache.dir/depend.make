# Empty dependencies file for faastcc_cache.
# This may be replaced when dependencies are built.
