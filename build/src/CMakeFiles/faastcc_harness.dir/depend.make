# Empty dependencies file for faastcc_harness.
# This may be replaced when dependencies are built.
