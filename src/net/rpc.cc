#include "net/rpc.h"

#include <cassert>

#include "common/log.h"

namespace faastcc::net {

RpcNode::RpcNode(Network& network, Address address)
    : network_(network), address_(address) {
  network_.register_endpoint(address_,
                             [this](Message m) { on_message(std::move(m)); });
}

void RpcNode::handle(MethodId method, RequestHandler handler) {
  handlers_[method] = std::move(handler);
}

void RpcNode::handle_oneway(MethodId method, OneWayHandler handler) {
  oneway_handlers_[method] = std::move(handler);
}

sim::Task<RpcNode::SizedResponse> RpcNode::call_raw_sized(Address to,
                                                          MethodId method,
                                                          Buffer request) {
  const uint64_t id = next_request_id_++;
  Message m;
  m.from = address_;
  m.to = to;
  m.kind = MessageKind::kRequest;
  m.method = method;
  m.request_id = id;
  m.payload = std::move(request);
  const size_t req_bytes = m.wire_size();

  auto [it, inserted] = pending_.emplace(
      id, Pending{sim::Promise<SizedResponse>(loop()), req_bytes});
  assert(inserted);
  auto future = it->second.promise.get_future();
  network_.send(std::move(m));
  co_return co_await std::move(future);
}

sim::Task<Buffer> RpcNode::call_raw(Address to, MethodId method,
                                    Buffer request) {
  SizedResponse r = co_await call_raw_sized(to, method, std::move(request));
  co_return std::move(r.payload);
}

void RpcNode::send_raw(Address to, MethodId method, Buffer payload) {
  Message m;
  m.from = address_;
  m.to = to;
  m.kind = MessageKind::kOneWay;
  m.method = method;
  m.payload = std::move(payload);
  network_.send(std::move(m));
}

sim::Task<void> RpcNode::run_handler(RequestHandler& handler, Message m) {
  Buffer response = co_await handler(std::move(m.payload), m.from);
  Message r;
  r.from = address_;
  r.to = m.from;
  r.kind = MessageKind::kResponse;
  r.method = m.method;
  r.request_id = m.request_id;
  r.payload = std::move(response);
  network_.send(std::move(r));
}

void RpcNode::on_message(Message m) {
  switch (m.kind) {
    case MessageKind::kRequest: {
      auto it = handlers_.find(m.method);
      if (it == handlers_.end()) {
        LOG_ERROR("no handler for method " << m.method << " at " << address_);
        return;
      }
      sim::spawn(run_handler(it->second, std::move(m)));
      return;
    }
    case MessageKind::kResponse: {
      auto it = pending_.find(m.request_id);
      if (it == pending_.end()) {
        LOG_DEBUG("orphan response at " << address_);
        return;
      }
      Pending p = std::move(it->second);
      const size_t resp_bytes = m.wire_size();
      pending_.erase(it);
      p.promise.set_value(SizedResponse{std::move(m.payload),
                                        p.request_wire_bytes, resp_bytes});
      return;
    }
    case MessageKind::kOneWay: {
      auto it = oneway_handlers_.find(m.method);
      if (it == oneway_handlers_.end()) {
        LOG_DEBUG("no one-way handler for method " << m.method);
        return;
      }
      it->second(std::move(m.payload), m.from);
      return;
    }
  }
}

}  // namespace faastcc::net
