// Eventually consistent replicated key-value store (stand-in for Anna).
//
// Each partition is served by `replication_factor` replicas.  A client
// writes to any replica; replicas exchange anti-entropy batches every
// `gossip_period` and merge last-writer-wins by (counter, writer id).
// Reads hit one replica and may observe stale data — the property that
// forces HydroCache into multi-round reads (paper §4.1, Fig. 6).
//
// Replicas also gossip a *stable cut*: a wall-clock watermark below which
// every write is known to have reached every replica.  HydroCache uses the
// global minimum to garbage-collect dependency metadata.
#pragma once

#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "net/rpc.h"
#include "storage/messages.h"

namespace faastcc::storage {

struct EventualStoreParams {
  Duration gossip_period = milliseconds(25);  // anti-entropy between replicas
  Duration cut_period = milliseconds(200);   // stable-cut gossip
  Duration push_period = milliseconds(50);   // cache update notifications
  Duration request_cpu = microseconds(15);
  Duration per_key_cpu = microseconds(2);
};

class EvReplica {
 public:
  // `peers` are the other replicas of the same partition; `all_replicas`
  // every replica in the store (for stable-cut gossip).
  EvReplica(net::Network& network, net::Address self, uint64_t replica_id,
            std::vector<net::Address> peers,
            std::vector<net::Address> all_replicas,
            EventualStoreParams params);

  void start();

  net::Address address() const { return rpc_.address(); }

  // Watermark below which this replica believes all writes are everywhere.
  SimTime global_cut() const { return global_cut_; }

  size_t num_keys() const { return data_.size(); }
  size_t payload_bytes() const { return payload_bytes_; }

  struct Counters {
    Counter gets;
    Counter get_keys;
    Counter puts;
    Counter gossip_batches;
    Counter items_merged;
  };
  const Counters& counters() const { return counters_; }

  // Test access.
  const EvItem* peek(Key k) const;

  // Installs an item directly, bypassing the protocol (dataset preload).
  void preload(EvItem item) { merge(std::move(item)); }

  // Registers a cache for update notifications (setup path; the protocol
  // path is the kEvSubscribe RPC).  Caches subscribe at one replica of the
  // owning partition.
  void add_subscriber(Key k, net::Address cache) {
    subscribers_[k].insert(cache);
  }

 private:
  sim::Task<Buffer> on_get(Buffer req, net::Address from);
  sim::Task<Buffer> on_put(Buffer req, net::Address from);
  sim::Task<Buffer> on_subscribe(Buffer req, net::Address from);
  sim::Task<Buffer> on_unsubscribe(Buffer req, net::Address from);
  void on_gossip(Buffer msg, net::Address from);
  void on_stable_cut(Buffer msg, net::Address from);
  sim::Task<void> gossip_loop();
  sim::Task<void> cut_loop();
  sim::Task<void> push_loop();

  // Merges an item LWW; returns true if it replaced/inserted.
  bool merge(EvItem item);

  net::RpcNode rpc_;
  uint64_t replica_id_;
  std::vector<net::Address> peers_;
  std::vector<net::Address> all_replicas_;
  EventualStoreParams params_;
  std::unordered_map<Key, EvItem> data_;
  size_t payload_bytes_ = 0;
  // Items accepted locally but not yet gossiped to peers.
  std::vector<EvItem> outbox_;
  // Per-peer coverage: everything the peer accepted before this time has
  // been received here (advanced by gossip batch send timestamps).
  std::unordered_map<net::Address, SimTime> peer_covered_;
  // Per-replica advertised cuts (including our own).
  std::unordered_map<uint64_t, SimTime> advertised_cuts_;
  SimTime global_cut_ = 0;
  SimTime last_gossip_sent_ = 0;
  // Cache notification service.
  std::unordered_map<Key, std::set<net::Address>> subscribers_;
  std::unordered_set<Key> dirty_;
  Counters counters_;
};

}  // namespace faastcc::storage
