// Hybrid logical clocks (Kulkarni et al., OPODIS'14), used by the
// Wren-style TCC storage layer to timestamp transactions.
//
// A Timestamp packs (physical microseconds, logical counter, node id) into
// one totally-ordered 64-bit integer.  Total order gives us the scalar
// timestamps the paper's snapshot intervals are built from; the node id
// component breaks ties between concurrent transactions deterministically.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

#include "common/types.h"

namespace faastcc {

class Timestamp {
 public:
  // Bit layout, most significant first: 42 bits physical (microseconds),
  // 12 bits logical counter, 10 bits node id.
  static constexpr int kLogicalBits = 12;
  static constexpr int kNodeBits = 10;
  static constexpr uint64_t kMaxLogical = (1ull << kLogicalBits) - 1;
  static constexpr uint64_t kMaxNode = (1ull << kNodeBits) - 1;

  constexpr Timestamp() = default;
  constexpr explicit Timestamp(uint64_t raw) : raw_(raw) {}
  constexpr Timestamp(uint64_t physical_us, uint64_t logical, NodeId node)
      : raw_((physical_us << (kLogicalBits + kNodeBits)) |
             ((logical & kMaxLogical) << kNodeBits) | (node & kMaxNode)) {}

  static constexpr Timestamp min() { return Timestamp(0); }
  static constexpr Timestamp max() { return Timestamp(~0ull); }

  constexpr uint64_t raw() const { return raw_; }
  constexpr uint64_t physical_us() const {
    return raw_ >> (kLogicalBits + kNodeBits);
  }
  constexpr uint64_t logical() const {
    return (raw_ >> kNodeBits) & kMaxLogical;
  }
  constexpr NodeId node() const { return static_cast<NodeId>(raw_ & kMaxNode); }

  // The timestamp immediately before/after this one in the total order.
  // Used to turn "valid until the next version" into an inclusive promise.
  constexpr Timestamp prev() const { return Timestamp(raw_ - 1); }
  constexpr Timestamp next() const { return Timestamp(raw_ + 1); }

  friend constexpr auto operator<=>(Timestamp a, Timestamp b) = default;

  std::string to_string() const;

 private:
  uint64_t raw_ = 0;
};

// One hybrid logical clock per storage partition / compute node.  The
// physical component is supplied by the caller (simulated wall clock plus a
// configurable per-node offset, standing in for NTP skew).
class HlcClock {
 public:
  explicit HlcClock(NodeId node) : node_(node) {}

  // Local or send event: returns a timestamp strictly greater than every
  // timestamp previously returned or observed.
  Timestamp tick(uint64_t physical_now_us);

  // Receive event: merges a remote timestamp, keeping the clock ahead of it.
  Timestamp update(Timestamp remote, uint64_t physical_now_us);

  // The latest timestamp issued/observed, without advancing the clock.
  Timestamp current() const { return Timestamp(last_physical_, logical_, node_); }

  NodeId node() const { return node_; }

 private:
  NodeId node_;
  uint64_t last_physical_ = 0;
  uint64_t logical_ = 0;
};

}  // namespace faastcc
