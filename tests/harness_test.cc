// Tests for the experiment harness: cluster assembly, metric summaries,
// the bench results cache, and table formatting.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

#include "harness/summary.h"
#include "harness/table.h"

namespace faastcc::harness {
namespace {

TEST(Summary, SummarizeExtractsPercentilesAndRates) {
  RunResult r;
  for (int i = 1; i <= 100; ++i) {
    r.metrics.dag_latency_ms.add(i);
    r.metrics.metadata_bytes.add(16);
  }
  r.metrics.dag_attempts.inc(10);
  r.metrics.dag_aborts.inc(1);
  r.metrics.cache_lookups.inc(4);
  r.metrics.cache_hits.inc(3);
  r.throughput = 123;
  r.committed = 99;
  r.cache_bytes = 1024;
  const SummaryStats s = summarize(r);
  EXPECT_NEAR(s.latency_med_ms, 50.5, 1e-9);
  EXPECT_DOUBLE_EQ(s.metadata_med, 16);
  EXPECT_DOUBLE_EQ(s.throughput, 123);
  EXPECT_DOUBLE_EQ(s.committed, 99);
  EXPECT_NEAR(s.abort_rate, 0.1, 1e-9);
  EXPECT_NEAR(s.hit_rate, 0.75, 1e-9);
  EXPECT_DOUBLE_EQ(s.cache_bytes, 1024);
}

TEST(Summary, ConfigKeysDistinguishParameters) {
  ExperimentConfig a;
  ExperimentConfig b = a;
  EXPECT_EQ(config_key(a, 100), config_key(b, 100));
  b.zipf = 1.25;
  EXPECT_NE(config_key(a, 100), config_key(b, 100));
  b = a;
  b.system = SystemKind::kHydroCache;
  EXPECT_NE(config_key(a, 100), config_key(b, 100));
  b = a;
  b.static_txns = true;
  EXPECT_NE(config_key(a, 100), config_key(b, 100));
  b = a;
  b.cache_capacity = 100;
  EXPECT_NE(config_key(a, 100), config_key(b, 100));
  b = a;
  b.faastcc.use_promises = false;
  EXPECT_NE(config_key(a, 100), config_key(b, 100));
  EXPECT_NE(config_key(a, 100), config_key(a, 200));
}

TEST(Summary, CacheRoundTrips) {
  setenv("FAASTCC_CACHE_DIR", "/tmp/faastcc_test_cache", 1);
  std::filesystem::remove_all("/tmp/faastcc_test_cache");
  SummaryStats s;
  s.latency_med_ms = 12.5;
  s.latency_p99_ms = 99.75;
  s.throughput = 1500.25;
  s.metadata_med = 16;
  s.hit_rate = 0.6;
  s.committed = 16000;
  store_cached("roundtrip", s);
  const auto loaded = load_cached("roundtrip");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_DOUBLE_EQ(loaded->latency_med_ms, 12.5);
  EXPECT_DOUBLE_EQ(loaded->latency_p99_ms, 99.75);
  EXPECT_DOUBLE_EQ(loaded->throughput, 1500.25);
  EXPECT_DOUBLE_EQ(loaded->hit_rate, 0.6);
  EXPECT_DOUBLE_EQ(loaded->committed, 16000);
  EXPECT_FALSE(load_cached("missing").has_value());
  std::filesystem::remove_all("/tmp/faastcc_test_cache");
  unsetenv("FAASTCC_CACHE_DIR");
}

TEST(Harness, MakeParamsAppliesConfig) {
  ExperimentConfig cfg;
  cfg.system = SystemKind::kHydroCache;
  cfg.zipf = 1.5;
  cfg.static_txns = true;
  cfg.dag_size = 9;
  cfg.cache_capacity = 77;
  cfg.dags_per_client = 5;
  const ClusterParams p = make_params(cfg);
  EXPECT_EQ(p.system, SystemKind::kHydroCache);
  EXPECT_DOUBLE_EQ(p.workload.zipf, 1.5);
  EXPECT_TRUE(p.workload.static_txns);
  EXPECT_EQ(p.workload.dag_size, 9);
  EXPECT_EQ(p.cache_capacity, 77u);
  EXPECT_EQ(p.dags_per_client, 5);
}

TEST(Harness, PaperDefaultsMatchSection61) {
  const ClusterParams p = make_params(ExperimentConfig{});
  EXPECT_EQ(p.partitions, 16u);        // 16 Anna partitions
  EXPECT_EQ(p.compute_nodes, 10u);     // 10 machines of Cloudburst pods
  EXPECT_EQ(p.node.executors, 3);      // 3 executors per pod
  EXPECT_EQ(p.clients, 16u);           // 16 client threads
  EXPECT_EQ(p.workload.num_keys, 100000u);
  EXPECT_EQ(p.workload.value_size, 8u);
  EXPECT_EQ(p.workload.dag_size, 6);
  EXPECT_EQ(p.tcc.push_period, milliseconds(50));  // cache refresh period
}

TEST(Harness, SystemNames) {
  EXPECT_STREQ(system_name(SystemKind::kFaasTcc), "FaaSTCC");
  EXPECT_STREQ(system_name(SystemKind::kHydroCache), "HydroCache");
  EXPECT_STREQ(system_name(SystemKind::kCloudburst), "Cloudburst");
}

TEST(Table, FormatsNumbers) {
  EXPECT_EQ(fmt(1.25, 1), "1.2");
  EXPECT_EQ(fmt(1.25, 2), "1.25");
  EXPECT_EQ(fmt(1000.0, 0), "1000");
  EXPECT_EQ(fmt_bytes(100), "100 B");
  EXPECT_EQ(fmt_bytes(2048), "2.0 KiB");
  EXPECT_EQ(fmt_bytes(3.5 * 1024 * 1024), "3.5 MiB");
}

TEST(Cluster, TopologyRoutesKeysToPartitions) {
  ClusterParams p;
  p.partitions = 4;
  p.clients = 0;
  p.workload.num_keys = 10;
  Cluster cluster(p);
  const auto topo = cluster.tcc_topology();
  EXPECT_EQ(topo.num_partitions(), 4u);
  for (Key k = 0; k < 10; ++k) {
    EXPECT_EQ(topo.partition_of(k), k % 4);
    EXPECT_EQ(topo.address_of(k), topo.partitions[k % 4]);
  }
}

TEST(Cluster, PreloadPopulatesEveryPartition) {
  ClusterParams p;
  p.partitions = 4;
  p.clients = 0;
  p.workload.num_keys = 100;
  p.prewarm_caches = false;
  Cluster cluster(p);
  cluster.start();
  size_t total = 0;
  for (auto& part : cluster.tcc_partitions()) {
    EXPECT_EQ(part->store().num_keys(), 25u);
    total += part->store().num_keys();
  }
  EXPECT_EQ(total, 100u);
}

TEST(Cluster, PrewarmFillsCaches) {
  ClusterParams p;
  p.partitions = 2;
  p.compute_nodes = 3;
  p.clients = 0;
  p.workload.num_keys = 50;
  p.prewarm_caches = true;
  Cluster cluster(p);
  cluster.start();
  for (auto& cache : cluster.faastcc_caches()) {
    EXPECT_EQ(cache->entry_count(), 50u);
  }
}

TEST(Cluster, BoundedPrewarmRespectsCapacity) {
  ClusterParams p;
  p.partitions = 2;
  p.compute_nodes = 2;
  p.clients = 0;
  p.workload.num_keys = 50;
  p.cache_capacity = 10;
  p.prewarm_caches = true;
  Cluster cluster(p);
  cluster.start();
  for (auto& cache : cluster.faastcc_caches()) {
    EXPECT_EQ(cache->entry_count(), 10u);
    // Hottest keys first: key 0 is rank 0 of the Zipf distribution.
    EXPECT_TRUE(cache->has(0));
    EXPECT_FALSE(cache->has(49));
  }
}

}  // namespace
}  // namespace faastcc::harness
