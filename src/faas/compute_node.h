// A compute node: a pool of executor threads plus the node-local cache
// (owned externally and colocated on the network).  Receives triggers,
// merges parent contexts at joins, runs function bodies against the
// system's client library, and forwards context + results downstream.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "client/txn.h"
#include "common/metrics.h"
#include "faas/function_registry.h"
#include "faas/messages.h"
#include "net/rpc.h"
#include "obs/trace.h"
#include "sim/async_queue.h"

namespace faastcc::faas {

struct ComputeNodeParams {
  int executors = 3;  // paper: 3 executor threads per pod
  // Fixed compute time of a function body (stands in for the Python-level
  // work Cloudburst executors do per invocation).
  Duration function_service_time = microseconds(1000);
  // Context (de)serialization + merge cost per kilobyte.  This is the cost
  // that makes HydroCache's multi-kilobyte dependency maps expensive to
  // ship from function to function (§6.3/§6.8).
  double context_cpu_us_per_kb = 85.0;
  Duration dispatch_overhead = microseconds(50);
  // A join whose sibling trigger was lost on the fabric can never complete;
  // half-assembled join state older than this is swept (the client's DAG
  // watchdog retries the whole DAG, so nothing is waiting on it).
  Duration join_gc_age = seconds(2);
  // Capacity of the executed-(txn, fn) dedup window (FIFO eviction).  A
  // duplicated trigger only matters within the fabric's duplication
  // horizon, so the default is generous; tests shrink it to force races.
  size_t executed_dedup_cap = 1 << 16;
};

class ComputeNode {
 public:
  // The adapter is created by a factory because it needs the node's own
  // RPC endpoint (to reach the colocated cache and the storage layer).
  using AdapterFactory =
      std::function<std::unique_ptr<client::SystemAdapter>(net::RpcNode&)>;

  ComputeNode(net::Network& network, net::Address self,
              std::shared_ptr<FunctionRegistry> registry,
              const AdapterFactory& adapter_factory, ComputeNodeParams params,
              Metrics* metrics, obs::Tracer* tracer = nullptr);

  // Spawns the executor pool.
  void start();

  net::Address address() const { return rpc_.address(); }
  net::RpcNode& rpc() { return rpc_; }

  struct Counters {
    Counter triggers;
    Counter functions_executed;
    Counter joins_merged;
    Counter aborts_raised;
    Counter stale_triggers_dropped;
  };
  const Counters& counters() const { return counters_; }

 private:
  struct Work {
    TriggerMsg trigger;                   // representative trigger
    std::vector<Payload> parent_contexts;  // all parents' contexts
    obs::TraceContext trace;              // sender's span (joins: first seen)
    SimTime enqueued = 0;                 // queue-wait measurement start
  };

  void on_trigger(Buffer msg, net::Address from);
  void on_abort_notice(Buffer msg, net::Address from);
  sim::Task<void> executor_loop();
  sim::Task<void> execute(Work work);
  void send_abort(const TriggerMsg& t);
  Duration context_cost(size_t bytes) const;

  net::RpcNode rpc_;
  std::shared_ptr<FunctionRegistry> registry_;
  std::unique_ptr<client::SystemAdapter> adapter_;
  ComputeNodeParams params_;
  Metrics* metrics_;
  obs::Tracer* tracer_;
  sim::AsyncQueue<Work> ready_;

  // Join buffering: contexts received so far per (txn, function).
  struct JoinKey {
    TxnId txn;
    uint32_t fn;
    bool operator==(const JoinKey&) const = default;
  };
  struct JoinKeyHash {
    size_t operator()(const JoinKey& k) const {
      return std::hash<uint64_t>()(k.txn * 1000003 + k.fn);
    }
  };
  struct JoinState {
    TriggerMsg first;
    std::vector<Payload> contexts;
    std::unordered_set<uint32_t> parents_seen;
    SimTime created = 0;
    obs::TraceContext trace;  // first-arriving parent's span
  };
  std::unordered_map<JoinKey, JoinState, JoinKeyHash> joins_;
  void gc_stale_joins();
  // At-most-once execution per (txn, function): a duplicated trigger for a
  // chain function (or a full set of duplicated parents resurrecting an
  // already-fired join) must not run the body a second time — the ghost
  // execution re-reads at a different snapshot and races its divergent
  // writes against the real commit.  FIFO window, same idiom as the
  // partition's resolved-transaction dedup.
  void mark_executed(const JoinKey& key);
  std::unordered_set<JoinKey, JoinKeyHash> executed_;
  std::deque<JoinKey> executed_order_;
  // Transactions known to have aborted; late triggers are dropped.
  std::unordered_set<TxnId> aborted_;
  Counters counters_;
};

}  // namespace faastcc::faas
