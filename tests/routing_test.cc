// Unit tests for the epoch-versioned routing layer: the slot table's
// epoch-1 modulo equivalence, deterministic slot stealing on scale-out,
// and the wire codec.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>

#include "routing/routing_table.h"

namespace faastcc::routing {
namespace {

std::vector<PartitionAddress> addrs(size_t n, PartitionAddress base = 100) {
  std::vector<PartitionAddress> out;
  for (size_t i = 0; i < n; ++i) out.push_back(base + i);
  return out;
}

TEST(ModPartition, MatchesPlainModulo) {
  for (Key k = 0; k < 1000; ++k) {
    for (size_t n : {1u, 3u, 16u, 24u}) {
      EXPECT_EQ(mod_partition(k, n), k % n);
    }
  }
}

TEST(RoutingTable, EpochOneRoutesExactlyLikeModulo) {
  for (size_t n : {1u, 4u, 16u}) {
    const RoutingTable t = RoutingTable::initial(addrs(n));
    EXPECT_EQ(t.epoch, 1u);
    EXPECT_EQ(t.num_partitions(), n);
    EXPECT_EQ(t.num_slots() % n, 0u);
    for (Key k = 0; k < 5000; ++k) {
      EXPECT_EQ(t.partition_of(k), k % n);
      EXPECT_EQ(t.address_of(k), 100 + k % n);
    }
  }
}

TEST(RoutingTable, ScaleOutBumpsEpochAndRemapsOnlyStolenSlots) {
  const RoutingTable old_t = RoutingTable::initial(addrs(16));
  const RoutingTable new_t = old_t.with_partitions_added(addrs(8, 200));
  EXPECT_EQ(new_t.epoch, 2u);
  EXPECT_EQ(new_t.num_partitions(), 24u);
  EXPECT_EQ(new_t.num_slots(), old_t.num_slots());

  // Every slot either kept its owner or moved to a joiner — an incumbent
  // never takes a slot from another incumbent.
  size_t moved = 0;
  for (size_t s = 0; s < new_t.num_slots(); ++s) {
    if (new_t.slot_owner[s] == old_t.slot_owner[s]) continue;
    EXPECT_GE(new_t.slot_owner[s], 16u);
    ++moved;
  }
  // Joiners get floor(num_slots / new_count) slots each.
  const size_t per_joiner = new_t.num_slots() / 24;
  EXPECT_EQ(moved, 8 * per_joiner);
  std::map<uint32_t, size_t> owned;
  for (uint32_t o : new_t.slot_owner) ++owned[o];
  for (uint32_t j = 16; j < 24; ++j) EXPECT_EQ(owned[j], per_joiner);
  // Only ~ M/(N+M) of the key space remaps (the whole point of slots).
  size_t remapped_keys = 0;
  const Key probe = 10000;
  for (Key k = 0; k < probe; ++k) {
    if (new_t.partition_of(k) != old_t.partition_of(k)) ++remapped_keys;
  }
  EXPECT_NEAR(static_cast<double>(remapped_keys) / probe, 8.0 / 24.0, 0.05);
}

TEST(RoutingTable, ScaleOutIsDeterministic) {
  const RoutingTable old_t = RoutingTable::initial(addrs(5));
  const RoutingTable a = old_t.with_partitions_added(addrs(3, 300));
  const RoutingTable b = old_t.with_partitions_added(addrs(3, 300));
  EXPECT_EQ(a.slot_owner, b.slot_owner);
  EXPECT_EQ(a.partitions, b.partitions);
}

TEST(RoutingTable, SlotsOfPartitionInvertsSlotOwner) {
  const RoutingTable t =
      RoutingTable::initial(addrs(4)).with_partitions_added(addrs(2, 200));
  size_t total = 0;
  for (PartitionId p = 0; p < t.num_partitions(); ++p) {
    for (uint32_t s : t.slots_of_partition(p)) {
      EXPECT_EQ(t.slot_owner[s], p);
      ++total;
    }
  }
  EXPECT_EQ(total, t.num_slots());
}

TEST(RoutingTable, CodecRoundTripsAndSizeHintIsExact) {
  const RoutingTable t =
      RoutingTable::initial(addrs(6)).with_partitions_added(addrs(2, 200));
  BufWriter w;
  t.encode(w);
  const Buffer b = w.take();
  EXPECT_EQ(b.size(), t.size_hint());
  BufReader r(b);
  const RoutingTable d = RoutingTable::decode(r);
  EXPECT_EQ(d.epoch, t.epoch);
  EXPECT_EQ(d.partitions, t.partitions);
  EXPECT_EQ(d.slot_owner, t.slot_owner);
}

TEST(RoutingTable, ReplicaCodecIsTrailingOptionalAndRoundTrips) {
  RoutingTable plain = RoutingTable::initial(addrs(4));
  BufWriter w0;
  plain.encode(w0);
  const Buffer b0 = w0.take();
  EXPECT_EQ(b0.size(), plain.size_hint());

  RoutingTable t = plain;
  t.replicas = {{6000, 6001}, {6004}, {}, {6012}};
  BufWriter w;
  t.encode(w);
  const Buffer b = w.take();
  EXPECT_EQ(b.size(), t.size_hint());
  // The replicated encoding is a strict extension: the unreplicated prefix
  // is byte-identical, so pre-replication decoders and checksums are
  // unaffected by tables that never carry replicas.
  ASSERT_GT(b.size(), b0.size());
  EXPECT_EQ(std::memcmp(b.data(), b0.data(), b0.size()), 0);

  BufReader r(b);
  const RoutingTable d = RoutingTable::decode(r);
  EXPECT_TRUE(d.replicated());
  EXPECT_EQ(d.replicas, t.replicas);
  EXPECT_EQ(d.replicas_of(0),
            (std::vector<PartitionAddress>{6000, 6001}));
  EXPECT_TRUE(d.replicas_of(2).empty());
  EXPECT_TRUE(d.replicas_of(99).empty());  // out of range -> no chain

  BufReader r0(b0);
  EXPECT_FALSE(RoutingTable::decode(r0).replicated());
}

TEST(RoutingTable, ScaleInRetiresTrailingPartitionsOnly) {
  const RoutingTable old_t =
      RoutingTable::initial(addrs(6)).with_partitions_added(addrs(2, 200));
  const RoutingTable new_t = old_t.with_partitions_removed(2);
  EXPECT_EQ(new_t.epoch, old_t.epoch + 1);
  EXPECT_EQ(new_t.num_partitions(), 6u);
  EXPECT_EQ(new_t.num_slots(), old_t.num_slots());
  EXPECT_EQ(new_t.partitions,
            std::vector<PartitionAddress>(old_t.partitions.begin(),
                                          old_t.partitions.begin() + 6));
  // Survivor-owned slots never move; retirees' slots land on survivors.
  for (size_t s = 0; s < new_t.num_slots(); ++s) {
    if (old_t.slot_owner[s] < 6) {
      EXPECT_EQ(new_t.slot_owner[s], old_t.slot_owner[s]) << "slot " << s;
    } else {
      EXPECT_LT(new_t.slot_owner[s], 6u) << "slot " << s;
    }
  }
  // Deterministic: same input, same output.
  EXPECT_EQ(new_t.slot_owner, old_t.with_partitions_removed(2).slot_owner);
}

TEST(RoutingTable, AddThenRemoveRestoresOriginalOwnership) {
  // Draining the joiners exactly inverts the steal: the original (balanced,
  // epoch-1) assignment returns, two epochs later.
  for (size_t n : {3u, 4u, 16u}) {
    for (size_t m : {1u, 2u, 5u}) {
      const RoutingTable base = RoutingTable::initial(addrs(n));
      const RoutingTable out = base.with_partitions_added(addrs(m, 500));
      const RoutingTable back = out.with_partitions_removed(m);
      EXPECT_EQ(back.slot_owner, base.slot_owner) << n << "+" << m;
      EXPECT_EQ(back.partitions, base.partitions) << n << "+" << m;
      EXPECT_EQ(back.epoch, base.epoch + 2) << n << "+" << m;
    }
  }
}

TEST(RoutingTable, ScaleInCodecRoundTripsReplicatedAndNot) {
  RoutingTable t =
      RoutingTable::initial(addrs(5)).with_partitions_removed(2);
  BufWriter w;
  t.encode(w);
  const Buffer b = w.take();
  EXPECT_EQ(b.size(), t.size_hint());
  BufReader r(b);
  const RoutingTable d = RoutingTable::decode(r);
  EXPECT_EQ(d.epoch, t.epoch);
  EXPECT_EQ(d.partitions, t.partitions);
  EXPECT_EQ(d.slot_owner, t.slot_owner);
  EXPECT_FALSE(d.replicated());

  RoutingTable rt = RoutingTable::initial(addrs(4));
  rt.replicas = {{6000}, {6004}, {6008}, {6012}};
  const RoutingTable shrunk = rt.with_partitions_removed(1);
  ASSERT_TRUE(shrunk.replicated());
  EXPECT_EQ(shrunk.replicas.size(), 3u);  // retiree's chain dropped with it
  BufWriter w2;
  shrunk.encode(w2);
  const Buffer b2 = w2.take();
  EXPECT_EQ(b2.size(), shrunk.size_hint());
  BufReader r2(b2);
  const RoutingTable d2 = RoutingTable::decode(r2);
  EXPECT_EQ(d2.replicas, shrunk.replicas);
  EXPECT_EQ(d2.slot_owner, shrunk.slot_owner);
}

TEST(RoutingTable, StrictDecodeRejectsRetiredOwnersAndBadReplicaCount) {
  // A table whose slot ring still references a retired partition id is
  // corrupt: it can route a key to an owner with no address.
  RoutingTable bad = RoutingTable::initial(addrs(4));
  bad.slot_owner[3] = 7;  // beyond num_partitions
  BufWriter w;
  bad.encode(w);
  const Buffer b = w.take();
  BufReader r(b);
  EXPECT_THROW(RoutingTable::decode(r), CodecError);

  // Replica block with the wrong number of chains (e.g. pre-shrink chains
  // glued onto a post-shrink partition list).
  RoutingTable mismatched = RoutingTable::initial(addrs(3));
  mismatched.replicas = {{6000}, {6004}};  // 2 chains for 3 partitions
  BufWriter w2;
  mismatched.encode(w2);
  const Buffer b2 = w2.take();
  BufReader r2(b2);
  EXPECT_THROW(RoutingTable::decode(r2), CodecError);
}

TEST(RoutingTable, WithLeaderReplacedPromotesAndRetiresDeadLeader) {
  RoutingTable t = RoutingTable::initial(addrs(3));
  t.replicas = {{6000, 6001}, {6004, 6005}, {6008}};
  const PartitionAddress dead = t.partitions[1];
  const RoutingTable n = t.with_leader_replaced(1, 6004);
  EXPECT_EQ(n.epoch, t.epoch + 1);
  EXPECT_EQ(n.partitions[1], 6004u);
  // The candidate left the chain; the dead leader is NOT re-added — a
  // revived endpoint rejoins only via backfill plus a future table.
  EXPECT_EQ(n.replicas[1], (std::vector<PartitionAddress>{6005}));
  for (const auto& reps : n.replicas) {
    EXPECT_EQ(std::count(reps.begin(), reps.end(), dead), 0);
  }
  // A promotion changes the slot's address, never its owner id: every key
  // still maps to the same partition id.
  EXPECT_EQ(n.slot_owner, t.slot_owner);
  EXPECT_EQ(n.replicas[0], t.replicas[0]);
  EXPECT_EQ(n.replicas[2], t.replicas[2]);
}

}  // namespace
}  // namespace faastcc::routing
