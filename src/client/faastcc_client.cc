#include "client/faastcc_client.h"

#include <algorithm>
#include <cassert>

#include "common/log.h"

namespace faastcc::client {

namespace {
// Trace annotation: how tight the snapshot interval is at read time, in
// physical microseconds (0 for an already-empty interval).
uint64_t interval_width_us(const SnapshotInterval& si) {
  if (si.empty()) return 0;
  return static_cast<uint64_t>(si.high.physical_us() - si.low.physical_us());
}
}  // namespace

FaasTccContext FaasTccContext::decode(BufReader& r) {
  const uint8_t version = r.get_u8();
  if (version != kWireVersion && version != kWireVersionEpoch) {
    throw CodecError("FaasTccContext: unsupported wire version " +
                     std::to_string(version));
  }
  FaasTccContext c;
  if (version == kWireVersionEpoch) c.routing_epoch = r.get_u32();
  c.interval = SnapshotInterval::decode(r);
  c.dep_ts = Timestamp(r.get_u64());
  c.snapshot_fixed = r.get_bool();
  const uint32_t n = r.get_u32();
  for (uint32_t i = 0; i < n; ++i) {
    const Key k = r.get_u64();
    c.write_set[k] = r.get_bytes();
  }
  return c;
}

Buffer encode_faastcc_session(Timestamp commit_ts) {
  BufWriter w;
  w.put_u64(commit_ts.raw());
  return w.take();
}

Timestamp decode_faastcc_session(const Buffer& b) {
  if (b.empty()) return Timestamp::min();
  BufReader r(b);
  return Timestamp(r.get_u64());
}

Timestamp decode_faastcc_session(const Payload& p) {
  if (p.empty()) return Timestamp::min();
  BufReader r(p.data(), p.size());
  return Timestamp(r.get_u64());
}

FaasTccAdapter::FaasTccAdapter(net::RpcNode& rpc, net::Address cache_address,
                               storage::TccTopology topology,
                               FaasTccConfig config, Metrics* metrics,
                               obs::Tracer* tracer,
                               check::ConsistencyOracle* oracle)
    : rpc_(rpc),
      cache_address_(cache_address),
      storage_(rpc, std::move(topology), tracer, oracle),
      config_(config),
      metrics_(metrics),
      tracer_(tracer),
      oracle_(oracle) {
  if (config_.topo_service != 0) {
    storage_.enable_routing_refresh(config_.topo_service, metrics_);
  }
}

std::unique_ptr<FunctionTxn> FaasTccAdapter::open(
    const TxnInfo& info, std::vector<Payload> parent_contexts,
    Payload session) {
  FaasTccContext ctx;
  if (parent_contexts.empty()) {
    // Root function: SI_root = [-inf, +inf] (§4.8); the session blob only
    // contributes the causal lower bound for the eventual commit.
    ctx.dep_ts = decode_faastcc_session(session);
  } else {
    std::vector<FaasTccContext> parents;
    parents.reserve(parent_contexts.size());
    for (const Payload& b : parent_contexts) {
      parents.push_back(decode_message<FaasTccContext>(b));
    }
    std::vector<SnapshotInterval> intervals;
    intervals.reserve(parents.size());
    for (auto& p : parents) intervals.push_back(p.interval);
    ctx.interval = SnapshotInterval::merge(intervals);
    if (ctx.interval.empty()) {
      // Parents read from incompatible snapshots (Alg. 1 line 11).
      return nullptr;
    }
    for (auto& p : parents) {
      ctx.dep_ts = std::max(ctx.dep_ts, p.dep_ts);
      ctx.snapshot_fixed = ctx.snapshot_fixed || p.snapshot_fixed;
      ctx.routing_epoch = std::max(ctx.routing_epoch, p.routing_epoch);
      for (auto& [k, v] : p.write_set) ctx.write_set[k] = std::move(v);
    }
  }
  return std::make_unique<FaasTccTxn>(*this, info, std::move(ctx));
}

sim::Task<std::optional<std::vector<Value>>> FaasTccTxn::read(
    std::vector<Key> keys) {
  std::vector<Value> out(keys.size());
  std::vector<size_t> missing;
  const bool local = !adapter_.config_.chaos_skip_local_reads;
  for (size_t i = 0; i < keys.size(); ++i) {
    const Key k = keys[i];
    if (auto it = ctx_.write_set.find(k);
        local && it != ctx_.write_set.end()) {
      out[i] = it->second;  // read-your-writes (Alg. 1 line 25)
    } else if (auto it2 = read_set_.find(k);
               local && it2 != read_set_.end()) {
      out[i] = it2->second;  // repeatable read (Alg. 1 line 27)
    } else {
      missing.push_back(i);
    }
  }
  if (missing.empty()) co_return out;

  cache::CacheReadReq req;
  req.interval = ctx_.interval;
  req.use_promises = adapter_.config_.use_promises;
  req.keys.reserve(missing.size());
  for (size_t idx : missing) req.keys.push_back(keys[idx]);

  obs::Tracer* tracer = adapter_.tracer_;
  obs::SpanHandle span;
  obs::TraceContext span_ctx;
  const SimTime t0 = adapter_.rpc_.now();
  if (tracer != nullptr) {
    span = tracer->begin(info_.trace, "read", "client_lib",
                         adapter_.rpc_.address(), t0);
    tracer->annotate(span, "keys", static_cast<uint64_t>(missing.size()));
    tracer->annotate(span, "interval_width_us", interval_width_us(ctx_.interval));
    span_ctx = tracer->context_of(span);
  }
  // Raw call so the responder's stamped routing epoch can be harvested:
  // the cache rides every read reply with its current epoch for free (a
  // frame-header field, zero wire bytes), and the sink uses the DAG-wide
  // max to refresh its commit client's table before the first commit
  // attempt instead of eating a guaranteed wrong-epoch NACK.
  auto sized = co_await adapter_.rpc_.call_raw_sized(
      adapter_.cache_address_, cache::kCacheRead, adapter_.rpc_.encode(req),
      net::kUseDefaultTimeout, span_ctx);
  if (!sized.ok()) co_return std::nullopt;  // colocated cache: never expected
  auto resp = decode_message<cache::CacheReadResp>(sized.payload);
  adapter_.rpc_.recycle(std::move(sized.payload));
  if (sized.peer_epoch > ctx_.routing_epoch) {
    ctx_.routing_epoch = sized.peer_epoch;
  }
  if (tracer != nullptr) {
    tracer->annotate(span, "abort", resp.abort ? 1 : 0);
    // Reads block the function on the cache/storage path; the whole wall
    // time is attributed to the storage bucket of the breakdown.
    tracer->add_time(span_ctx.trace_id, obs::Bucket::kStorage,
                     adapter_.rpc_.now() - t0);
    tracer->end(span, adapter_.rpc_.now());
  }
  if (resp.abort) co_return std::nullopt;

  ctx_.interval = resp.interval;
  if (!adapter_.config_.use_interval && !ctx_.snapshot_fixed) {
    // Fixed-snapshot ablation (§6.2): commit the rest of the DAG to one
    // snapshot.  With promises the horizon of the first reads is usable
    // (interval.high); without them only the version timestamps are
    // (interval.low).
    const Timestamp fix = adapter_.config_.use_promises ? ctx_.interval.high
                                                        : ctx_.interval.low;
    ctx_.interval = SnapshotInterval::fixed(fix);
    ctx_.snapshot_fixed = true;
  }
  for (size_t j = 0; j < missing.size(); ++j) {
    const size_t idx = missing[j];
    out[idx] = resp.entries[j].value;
    read_set_.emplace(keys[idx], resp.entries[j].value);
    if (adapter_.oracle_ != nullptr) {
      adapter_.oracle_->on_read(info_.txn_id, fn_id_, keys[idx],
                                resp.entries[j].ts, resp.entries[j].promise,
                                resp.entries[j].value, resp.interval);
    }
  }
  co_return out;
}

void FaasTccTxn::write(Key k, Value v) {
  if (adapter_.oracle_ != nullptr) {
    adapter_.oracle_->on_write(info_.txn_id, fn_id_, k, v);
  }
  ctx_.write_set[k] = std::move(v);
}

Buffer FaasTccTxn::export_context() const { return encode_message(ctx_); }

size_t FaasTccTxn::metadata_bytes() const {
  // The coordination metadata is the snapshot interval alone: two
  // timestamps (§6.4) — plus, once an epoch bump has been observed, the
  // 4-byte routing epoch the v2 context carries.
  return 16 + (ctx_.routing_epoch > 1 ? 4 : 0);
}

sim::Task<std::optional<Buffer>> FaasTccTxn::commit() {
  if (ctx_.write_set.empty()) {
    if (adapter_.oracle_ != nullptr) {
      adapter_.oracle_->on_txn_complete(info_.txn_id);
    }
    co_return encode_faastcc_session(ctx_.dep_ts);
  }
  std::vector<storage::KeyValue> writes;
  writes.reserve(ctx_.write_set.size());
  for (const auto& [k, v] : ctx_.write_set) {
    writes.push_back(storage::KeyValue{k, v});
  }
  // The commit timestamp must causally follow everything the transaction
  // read (interval.low is the max accepted version timestamp) and the
  // client's previous commit.
  Timestamp dep = ctx_.dep_ts;
  if (ctx_.interval.low > dep && ctx_.interval.low > Timestamp::min()) {
    dep = ctx_.interval.low;
  }
  // A function upstream in the DAG saw a newer routing epoch than our
  // commit client's table: refresh first so the prepare fan-out goes to
  // the right owners.  (No-op without a configured topology service.)
  if (ctx_.routing_epoch > adapter_.storage_.epoch()) {
    co_await adapter_.storage_.refresh_topology();
  }
  obs::Tracer* tracer = adapter_.tracer_;
  obs::SpanHandle span;
  obs::TraceContext span_ctx;
  const SimTime t0 = adapter_.rpc_.now();
  if (tracer != nullptr) {
    span = tracer->begin(info_.trace, "commit", "client_lib",
                         adapter_.rpc_.address(), t0);
    tracer->annotate(span, "writes", static_cast<uint64_t>(writes.size()));
    span_ctx = tracer->context_of(span);
  }
  std::optional<Timestamp> commit_ts;
  if (adapter_.config_.snapshot_isolation) {
    commit_ts = co_await adapter_.storage_.commit_si(
        info_.txn_id, std::move(writes), dep, ctx_.interval.high, span_ctx);
  } else {
    // nullopt: a participant stayed unreachable; abort and let the client
    // retry the DAG with a fresh transaction.
    commit_ts = co_await adapter_.storage_.commit(info_.txn_id,
                                                  std::move(writes), dep,
                                                  span_ctx);
  }
  if (tracer != nullptr) {
    tracer->annotate(span, "committed", commit_ts.has_value() ? 1 : 0);
    tracer->add_time(span_ctx.trace_id, obs::Bucket::kStorage,
                     adapter_.rpc_.now() - t0);
    tracer->end(span, adapter_.rpc_.now());
  }
  if (!commit_ts.has_value()) co_return std::nullopt;
  if (adapter_.oracle_ != nullptr) {
    adapter_.oracle_->on_txn_complete(info_.txn_id);
  }
  co_return encode_faastcc_session(*commit_ts);
}

}  // namespace faastcc::client
