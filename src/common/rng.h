// Deterministic pseudo-random number generation.
//
// The whole simulation draws from explicitly seeded generators so that any
// experiment or failing test can be replayed bit-for-bit.  xoshiro256**
// (Blackman & Vigna) seeded via splitmix64.
#pragma once

#include <cstdint>

namespace faastcc {

class Rng {
 public:
  explicit Rng(uint64_t seed);

  uint64_t next_u64();

  // Uniform in [0, n).  n must be > 0.
  uint64_t next_below(uint64_t n);

  // Uniform double in [0, 1).
  double next_double();

  // Exponentially distributed with the given mean (> 0).
  double next_exponential(double mean);

  // Uniform integer in [lo, hi] inclusive.
  int64_t next_range(int64_t lo, int64_t hi);

  bool next_bool(double p_true);

  // Derives an independent child generator; used to give every simulated
  // component its own stream from one experiment seed.
  Rng fork();

 private:
  uint64_t s_[4];
};

}  // namespace faastcc
