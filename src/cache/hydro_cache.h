// HydroCache baseline (Wu et al., SIGMOD'20), as characterised in the
// FaaSTCC paper: a causal caching layer over an eventually consistent
// store.
//
// Reads must assemble a causally consistent cut.  A cached or fetched
// version is admissible iff (a) it is at least as new as the transaction's
// accumulated requirement for its key and (b) none of its dependencies
// demands a newer version of a key the transaction has already read.
// Because the store is a last-writer-wins register (no MVCC), a too-old
// candidate can only be remedied by re-fetching — possibly from another
// replica, possibly after replication catches up — which is the
// multi-round behaviour of §4.1/Fig. 6; and a too-new candidate cannot be
// remedied at all, which aborts the DAG.
//
// Fetched values' dependency lists are kept as metadata-only stubs, the
// "dependencies of the dependencies" whose footprint Fig. 8 measures.
#pragma once

#include <unordered_map>

#include "cache/cache_messages.h"
#include "cache/lru_index.h"
#include "common/metrics.h"
#include "net/rpc.h"
#include "storage/storage_client.h"

namespace faastcc::cache {

struct HydroCacheParams {
  size_t capacity = SIZE_MAX;       // full entries; SIZE_MAX = unbounded
  Duration lookup_cpu = microseconds(8);
  Duration retry_backoff = microseconds(1500);
  int max_rounds = 30;              // per key, before aborting
};

class HydroCache {
 public:
  HydroCache(net::Network& network, net::Address self,
             storage::EvTopology topology, Rng rng, HydroCacheParams params,
             Metrics* metrics, obs::Tracer* tracer = nullptr);

  net::Address address() const { return rpc_.address(); }

  size_t entry_count() const { return entries_.size(); }
  size_t stub_count() const { return stubs_.size(); }
  // Fig. 8 footprint: cached values, their dependency lists, and stubs.
  size_t bytes() const { return bytes_; }
  size_t total_keys() const { return entries_.size() + stubs_.size(); }

  struct Counters {
    Counter requests;
    Counter served_from_cache;
    Counter storage_fetch_rounds;
    Counter conflict_aborts;
    Counter round_exhaustion_aborts;
    Counter evictions;
    Counter pushes_applied;
  };
  const Counters& counters() const { return counters_; }

  bool has(Key k) const { return entries_.count(k) != 0; }

  // Direct insert for experiment pre-warming.
  void prewarm(Key k, Value value, uint64_t counter, SimTime written_at);

 private:
  struct Entry {
    Value value;
    uint64_t counter = 0;
    SimTime written_at = 0;
    DepList deps;  // shared with responses and the stored payload

    size_t footprint() const {
      return value.size() + 24 + deps.size() * 24;  // key+version+time
    }
  };
  struct Stub {
    uint64_t counter = 0;
    SimTime written_at = 0;
  };
  static constexpr size_t kStubBytes = 8 + 8 + 8;

  sim::Task<Buffer> on_read(Buffer req, net::Address from);
  void on_push(Buffer msg, net::Address from);

  enum class Fit { kOk, kTooOld, kConflict };
  // The transaction context as seen mid-request: the shipped map (`base`,
  // kept in raw wire form — the cache never pays to parse it) plus a small
  // overlay (`delta`) holding this request's own reads and their
  // dependencies.  A key present in the overlay is authoritative: it was
  // seeded with the base entry before its first update (see on_read).
  static bool ctx_lookup(const DepMap& base, const DepMap& delta, Key k,
                         Dep& out);
  static Fit check(const DepMap& base, const DepMap& delta, Key key,
                   uint64_t counter, const DepList& deps);

  void insert_entry(Key k, Entry e);
  void insert_stubs(const DepList& deps);
  void evict_to_capacity();

  net::RpcNode rpc_;
  storage::EvStorageClient storage_;
  HydroCacheParams params_;
  Metrics* metrics_;
  obs::Tracer* tracer_ = nullptr;
  std::unordered_map<Key, Entry> entries_;
  std::unordered_map<Key, Stub> stubs_;
  LruIndex lru_;
  LruIndex stub_lru_;
  size_t bytes_ = 0;
  Counters counters_;
};

}  // namespace faastcc::cache
