file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_stabilization.dir/bench_ablation_stabilization.cc.o"
  "CMakeFiles/bench_ablation_stabilization.dir/bench_ablation_stabilization.cc.o.d"
  "bench_ablation_stabilization"
  "bench_ablation_stabilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_stabilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
