file(REMOVE_RECURSE
  "libfaastcc_harness.a"
)
