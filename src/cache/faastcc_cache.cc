#include "cache/faastcc_cache.h"

#include <algorithm>
#include <cassert>

#include "common/log.h"
#include "routing/topology_service.h"
#include "sim/future.h"

namespace faastcc::cache {

using storage::TccReadResp;
using storage::VersionedValue;

FaasTccCache::FaasTccCache(net::Network& network, net::Address self,
                           storage::TccTopology topology, CacheParams params,
                           Metrics* metrics, obs::Tracer* tracer)
    : rpc_(network, self),
      storage_(rpc_, std::move(topology), tracer),
      params_(params),
      metrics_(metrics),
      tracer_(tracer),
      stable_est_(Timestamp::min()),
      partition_stable_(storage_.topology().num_partitions(),
                        Timestamp::min()),
      push_seq_(storage_.topology().num_partitions(), 0) {
  rpc_.handle(kCacheRead, [this](Buffer b, net::Address from) {
    return on_read(std::move(b), from);
  });
  rpc_.handle_oneway(storage::kTccPush, [this](Buffer b, net::Address from) {
    on_push(std::move(b), from);
  });
  rpc_.handle_oneway(storage::kTccPushBatch,
                     [this](Buffer b, net::Address from) {
                       on_push_batch(std::move(b), from);
                     });
  if (params_.topo_service != 0) {
    // Elastic routing: wrong-epoch NACKs on storage reads pull a fresh
    // table; epoch-bump broadcasts push one.  Either path lands in
    // adopt_table, whose change callback re-homes the cache.
    storage_.enable_routing_refresh(params_.topo_service, metrics_);
    storage_.on_table_change([this](const routing::RoutingTable& o,
                                    const routing::RoutingTable& n) {
      rehome(o, n);
    });
    rpc_.handle_oneway(routing::kTopoUpdate, [this](Buffer b, net::Address) {
      auto t = decode_message<routing::RoutingTable>(b);
      rpc_.recycle(std::move(b));
      storage_.adopt_table(routing::make_table(std::move(t)));
    });
  }
}

const FaasTccCache::Entry* FaasTccCache::peek(Key k) const {
  auto it = entries_.find(k);
  return it == entries_.end() ? nullptr : &it->second;
}

void FaasTccCache::prewarm(const VersionedValue& vv, bool subscribed) {
  if (params_.capacity == 0 || entries_.size() >= params_.capacity) return;
  if (entries_.count(vv.key) != 0) return;
  bytes_ += vv.value.size() + kEntryOverhead;
  // Open only when the caller registered a subscription: without pushes
  // the cache would extend this entry's promise past successors it never
  // hears about (chaos_prewarm_open re-enables exactly that bug).
  const bool open = subscribed || params_.chaos_prewarm_open;
  entries_.emplace(vv.key, Entry{vv.value, vv.ts, vv.promise, open});
  lru_.touch(vv.key);
  if (subscribed) {
    sub_desired_[vv.key] = true;
    sub_active_.insert(vv.key);
  }
  stable_est_ = std::max(stable_est_, vv.promise);
}

Timestamp FaasTccCache::effective_promise(Key k, const Entry& e) const {
  if (!e.open) return e.promise;
  return std::max(e.promise,
                  partition_stable_[storage_.topology().partition_of(k)]);
}

void FaasTccCache::insert_or_update(const TccReadResp::Entry& entry) {
  // Note: eviction is deferred to the caller (evict_to_capacity() after
  // the whole batch) — evicting here could invalidate an entry that a
  // later "unchanged" response in the same batch still refers to.
  // Entries start closed even when the store served them open: the
  // subscription is only being requested now, so no push would announce a
  // successor yet.  The partition re-announces the key on subscribe and
  // the next push (or an unchanged refresh) reopens the entry.
  if (params_.capacity == 0) return;
  auto it = entries_.find(entry.key);
  if (it == entries_.end()) {
    bytes_ += entry.value.size() + kEntryOverhead;
    entries_.emplace(entry.key,
                     Entry{entry.value, entry.ts, entry.promise, false});
    lru_.touch(entry.key);
    // Keep the entry fresh via the storage notification service.
    request_subscribe({entry.key});
    return;
  }
  auto& e = it->second;
  if (entry.ts > e.ts) {
    bytes_ += entry.value.size();
    bytes_ -= e.value.size();
    e = Entry{entry.value, entry.ts, entry.promise, false};
  } else if (entry.ts == e.ts) {
    e.promise = std::max(e.promise, entry.promise);
  }
  // An older version never replaces a newer cached one (§4.6: the reply is
  // returned without updating the cache).
  lru_.touch(entry.key);
}

void FaasTccCache::evict_to_capacity() {
  std::vector<Key> evicted;
  while (entries_.size() > params_.capacity) {
    auto victim = lru_.least_recent();
    assert(victim.has_value());
    auto it = entries_.find(*victim);
    bytes_ -= it->second.value.size() + kEntryOverhead;
    entries_.erase(it);
    lru_.erase(*victim);
    evicted.push_back(*victim);
    counters_.evictions.inc();
  }
  if (!evicted.empty()) request_unsubscribe(std::move(evicted));
}

void FaasTccCache::request_subscribe(std::vector<Key> keys) {
  for (Key k : keys) sub_desired_[k] = true;
  ctl_queue_.push_back(CtlOp{true, std::move(keys)});
  if (!ctl_busy_) sim::spawn(ctl_drain());
}

void FaasTccCache::request_unsubscribe(std::vector<Key> keys) {
  for (Key k : keys) {
    sub_desired_[k] = false;
    sub_active_.erase(k);
  }
  ctl_queue_.push_back(CtlOp{false, std::move(keys)});
  if (!ctl_busy_) sim::spawn(ctl_drain());
}

sim::Task<void> FaasTccCache::ctl_drain() {
  // One control op in flight at a time, in issue order with increasing
  // sequence numbers: partitions drop anything older than the newest seen,
  // so an (un)subscribe can never be overtaken by its own stale retry.
  if (ctl_busy_) co_return;
  ctl_busy_ = true;
  while (!ctl_queue_.empty()) {
    CtlOp op = std::move(ctl_queue_.front());
    ctl_queue_.pop_front();
    const uint64_t seq = ++ctl_seq_;
    if (op.subscribe) {
      const bool acked = co_await storage_.subscribe(op.keys, seq);
      if (acked) {
        for (Key k : op.keys) {
          // Still desired (no unsubscribe raced in behind us)?
          auto it = sub_desired_.find(k);
          if (it != sub_desired_.end() && it->second) sub_active_.insert(k);
        }
      }
    } else {
      co_await storage_.unsubscribe(op.keys, seq);
    }
  }
  ctl_busy_ = false;
}

void FaasTccCache::handle_push_gap(PartitionId p) {
  ++gap_epoch_;
  counters_.push_gaps.inc();
  // The lost push may have carried the only announcement of a successor:
  // no open entry of this partition may keep extending its promise.
  std::vector<Key> resub;
  for (auto& [k, e] : entries_) {
    if (storage_.topology().partition_of(k) != p) continue;
    e.open = false;
    auto it = sub_desired_.find(k);
    if (it != sub_desired_.end() && it->second) resub.push_back(k);
  }
  // Resubscribing makes the partition re-announce each key's latest
  // version on its next push, which reopens the entries that survived.
  if (!resub.empty()) {
    std::sort(resub.begin(), resub.end());
    request_subscribe(std::move(resub));
  }
}

void FaasTccCache::rehome(const routing::RoutingTable& old_table,
                          const routing::RoutingTable& new_table) {
  if (partition_stable_.size() < new_table.num_partitions()) {
    partition_stable_.resize(new_table.num_partitions(), Timestamp::min());
    push_seq_.resize(new_table.num_partitions(), 0);
  }
  // In-flight storage rounds that started under the old table must not
  // reopen entries from stale "open" flags.
  ++gap_epoch_;
  // A promotion keeps partition_of(k) but swaps the endpoint behind it;
  // the new leader has no subscriber state, so those keys re-home exactly
  // like migrated ones.  Resetting the push sequence lets the promoted
  // leader's fresh stream (seq 1) count as in-order instead of reading as
  // a permanent duplicate.
  for (PartitionId p = 0; p < old_table.num_partitions() &&
                          p < new_table.num_partitions();
       ++p) {
    if (old_table.partitions[p] != new_table.partitions[p] &&
        p < push_seq_.size()) {
      push_seq_[p] = 0;
    }
  }
  std::vector<Key> resub;
  size_t moved = 0;
  for (auto& [k, e] : entries_) {
    const PartitionId op = old_table.partition_of(k);
    const PartitionId np = new_table.partition_of(k);
    if (op == np && old_table.partitions[np] == new_table.partitions[np]) {
      continue;
    }
    // The old owner dropped our subscription together with the chain (or,
    // on a promotion, died with it).  The cached promise stays valid — it
    // was issued while the source still owned the chain, and the handoff
    // floor keeps the new owner above it — but without a live
    // subscription the entry must close.
    e.open = false;
    sub_active_.erase(k);
    ++moved;
    auto it = sub_desired_.find(k);
    if (it != sub_desired_.end() && it->second) resub.push_back(k);
  }
  counters_.rehomed_keys.inc(moved);
  if (metrics_ != nullptr && moved > 0) {
    metrics_->counter("cache.rehomed_keys").inc(moved);
  }
  // Re-subscribing at the new owners makes them re-announce each key's
  // latest version on their next push, which reopens surviving entries.
  if (!resub.empty()) {
    std::sort(resub.begin(), resub.end());
    request_subscribe(std::move(resub));
  }
}

sim::Task<Buffer> FaasTccCache::on_read(Buffer req, net::Address) {
  // Handler bodies run synchronously up to the first co_await, so the
  // delivery's trace context is still valid here.
  const obs::TraceContext inbound = rpc_.inbound_trace();
  obs::SpanHandle span;
  obs::TraceContext span_ctx;
  if (tracer_ != nullptr) {
    span = tracer_->begin(inbound, "cache.read", "cache", rpc_.address(),
                          rpc_.now());
    span_ctx = tracer_->context_of(span);
  }
  auto q = decode_message<CacheReadReq>(req);
  rpc_.recycle(std::move(req));
  counters_.requests.inc();
  if (metrics_ != nullptr) metrics_->cache_lookups.inc();
  co_await sim::sleep_for(rpc_.loop(), params_.lookup_cpu);

  CacheReadResp resp;
  resp.interval = q.interval;
  resp.entries.resize(q.keys.size());
  resp.from_cache.assign(q.keys.size(), false);

  // Pass 1: serve from the cache, narrowing the interval sequentially so
  // accepted versions stay mutually consistent.
  std::vector<size_t> to_fetch;
  for (size_t i = 0; i < q.keys.size(); ++i) {
    const Key k = q.keys[i];
    auto it = entries_.find(k);
    if (it != entries_.end()) {
      const auto& e = it->second;
      const Timestamp promise = effective_promise(k, e);
      // The no-promises ablation admits and narrows with the bare version
      // timestamp: narrowing with the full promise would leak promise
      // benefit (wider surviving intervals) into the baseline.
      const Timestamp admit_promise = q.use_promises ? promise : e.ts;
      if (params_.chaos_ignore_interval ||
          resp.interval.admits(e.ts, admit_promise)) {
        resp.entries[i] = VersionedValue{k, e.value, e.ts, promise};
        resp.from_cache[i] = true;
        if (!params_.chaos_ignore_interval) {
          resp.interval.narrow(e.ts, admit_promise);
        }
        lru_.touch(k);
        continue;
      }
    }
    to_fetch.push_back(i);
  }

  if (to_fetch.empty()) {
    counters_.served_from_cache.inc();
    if (metrics_ != nullptr) metrics_->cache_hits.inc();
    if (tracer_ != nullptr) {
      tracer_->annotate(span, "keys", static_cast<uint64_t>(q.keys.size()));
      tracer_->annotate(span, "hit", 1);
      tracer_->end(span, rpc_.now());
    }
    co_return rpc_.encode(resp);
  }

  // Pass 2: a batched storage round at the (narrowed) upper bound.  The
  // snapshot is clamped to the cache's stable-time estimate: each
  // partition's stable view is monotone, so any global stable value
  // observed in the past is safe at every partition now, up to the gossip
  // window.  Inside that window a fan-out across partitions can still
  // straddle two stable views and produce an empty interval; a short
  // bounded retry (the stable views catch up within one gossip period)
  // closes it.  In the steady state every episode takes exactly one round
  // (§6.5).
  counters_.storage_fetches.inc();
  if (metrics_ != nullptr) metrics_->storage_episodes.inc();

  size_t episode_bytes = 0;
  double rounds = 0;
  bool ok = false;
  for (int attempt = 0; attempt < kMaxFetchAttempts && !resp.abort; ++attempt) {
    Timestamp snapshot = resp.interval.high;
    if (stable_est_ > Timestamp::min() && stable_est_ < snapshot) {
      snapshot = std::max(stable_est_, resp.interval.low);
    }
    std::vector<Key> keys;
    std::vector<Timestamp> cached_ts;
    keys.reserve(to_fetch.size());
    cached_ts.reserve(to_fetch.size());
    for (size_t idx : to_fetch) {
      const Key k = q.keys[idx];
      auto it = entries_.find(k);
      keys.push_back(k);
      cached_ts.push_back(it == entries_.end() ? Timestamp::min()
                                               : it->second.ts);
    }
    storage::TccStorageClient::ReadAccounting acct;
    // Open flags in a response generated before a push gap are stale (the
    // gap may hide a successor the store knew about when it answered).
    const uint64_t epoch_before = gap_epoch_;
    auto maybe_resp =
        co_await storage_.read(keys, cached_ts, snapshot, &acct, span_ctx);
    // Fig. 7 counts the bytes served by the storage layer per consistent
    // read; most FaaSTCC responses are bare promise refreshes.
    episode_bytes += acct.response_bytes;
    rounds += 1;
    if (!maybe_resp.has_value()) {
      // A partition stayed unreachable through the retry budget: abort the
      // transaction rather than stall the executor.
      resp.abort = true;
      break;
    }
    TccReadResp storage_resp = std::move(*maybe_resp);
    stable_est_ = std::max(stable_est_, storage_resp.stable_time);

    // Trial-merge: accept the batch only if it keeps the interval
    // non-empty and no version is missing.
    client::SnapshotInterval trial = resp.interval;
    bool missing = false;
    bool value_lost = false;
    for (size_t j = 0; j < to_fetch.size(); ++j) {
      const auto& entry = storage_resp.entries[j];
      if (entry.status == TccReadResp::Status::kMiss) {
        missing = true;
        break;
      }
      if (entry.status == TccReadResp::Status::kUnchanged) {
        auto it = entries_.find(entry.key);
        if (it == entries_.end() || it->second.ts != entry.ts) {
          // Evicted or replaced while the request was in flight: the
          // "unchanged" answer no longer has a local value to attach.
          // Retry without advertising a cached version.
          value_lost = true;
          break;
        }
      }
      trial.narrow(entry.ts, entry.promise);
    }
    if (missing) {
      // The needed version has been garbage-collected (§4.2): abort.
      resp.abort = true;
      break;
    }
    if (value_lost) continue;
    if (trial.empty()) {
      co_await sim::sleep_for(rpc_.loop(), params_.retry_backoff);
      continue;
    }

    // Commit the batch.  Eviction runs only after every entry has been
    // applied: an insert must not evict a key that a later "unchanged"
    // response in this same batch refers to.
    resp.interval = trial;
    for (size_t j = 0; j < to_fetch.size(); ++j) {
      const size_t idx = to_fetch[j];
      auto& entry = storage_resp.entries[j];
      if (entry.status == TccReadResp::Status::kUnchanged) {
        auto it = entries_.find(entry.key);
        assert(it != entries_.end());  // guaranteed by the trial merge
        it->second.promise = std::max(it->second.promise, entry.promise);
        // Reopen only when the subscription is confirmed live and no push
        // gap interleaved with this storage round: otherwise the "open"
        // flag may predate a successor whose announcement was lost.
        it->second.open =
            it->second.open ||
            (entry.open && gap_epoch_ == epoch_before &&
             sub_active_.count(entry.key) != 0);
        resp.entries[idx] = VersionedValue{entry.key, it->second.value,
                                           it->second.ts, it->second.promise};
        lru_.touch(entry.key);
      } else {
        resp.entries[idx] =
            VersionedValue{entry.key, entry.value, entry.ts, entry.promise};
        insert_or_update(entry);
      }
    }
    evict_to_capacity();
    ok = true;
    break;
  }
  if (!ok) resp.abort = true;
  if (metrics_ != nullptr) {
    metrics_->storage_rounds.add(rounds);
    metrics_->storage_read_bytes.add(static_cast<double>(episode_bytes));
  }
  if (tracer_ != nullptr) {
    tracer_->annotate(span, "keys", static_cast<uint64_t>(q.keys.size()));
    tracer_->annotate(span, "hit", 0);
    tracer_->annotate(span, "rounds", static_cast<uint64_t>(rounds));
    tracer_->annotate(span, "storage_bytes",
                      static_cast<uint64_t>(episode_bytes));
    if (resp.abort) tracer_->annotate(span, "abort", 1);
    tracer_->end(span, rpc_.now());
  }
  co_return rpc_.encode(resp);
}

void FaasTccCache::on_push(Buffer msg, net::Address) {
  auto push = decode_message<storage::PushMsg>(msg);
  rpc_.recycle(std::move(msg));
  apply_push(push.partition, push.seq, push.stable_time, push.updates);
}

void FaasTccCache::on_push_batch(Buffer msg, net::Address) {
  auto push = decode_message<storage::PushBatchMsg>(msg);
  rpc_.recycle(std::move(msg));
  // Re-derive each update's promise from the frame header: the pusher
  // always sets promise = max(ts, stable), so nothing is lost by not
  // carrying it per update.
  std::vector<storage::VersionedValue> updates;
  updates.reserve(push.updates.size());
  for (auto& u : push.updates) {
    storage::VersionedValue vv;
    vv.key = u.key;
    vv.value = std::move(u.value);
    vv.ts = u.ts;
    vv.promise = std::max(u.ts, push.stable_time);
    updates.push_back(std::move(vv));
  }
  apply_push(push.partition, push.seq, push.stable_time, updates);
}

void FaasTccCache::apply_push(PartitionId partition, uint64_t seq,
                              Timestamp stable,
                              const std::vector<storage::VersionedValue>&
                                  updates) {
  stable_est_ = std::max(stable_est_, stable);
  if (partition >= partition_stable_.size()) return;
  // Channel ordering: only an unbroken push sequence proves the dirty-set
  // signal is complete (no successor announcement was lost).  A duplicated
  // or reordered old push must not reopen anything; a gap closes the
  // partition's open entries until the re-announce arrives.
  bool in_order = true;
  if (seq != 0) {
    auto& last = push_seq_[partition];
    if (seq == last + 1) {
      last = seq;
    } else if (seq > last) {
      handle_push_gap(partition);
      last = seq;
    } else {
      in_order = false;  // duplicate or reordered: values usable, flags not
    }
  }
  if (in_order) {
    auto& slot = partition_stable_[partition];
    slot = std::max(slot, stable);
  }
  for (const auto& vv : updates) {
    auto it = entries_.find(vv.key);
    if (it == entries_.end()) {
      // Evicted since we subscribed; the unsubscribe is in flight.
      counters_.pushes_stale.inc();
      continue;
    }
    const bool may_open = in_order && sub_active_.count(vv.key) != 0;
    auto& e = it->second;
    if (vv.ts > e.ts) {
      bytes_ += vv.value.size();
      bytes_ -= e.value.size();
      e = Entry{vv.value, vv.ts, vv.promise, may_open};
      counters_.pushes_applied.inc();
    } else if (vv.ts == e.ts) {
      e.promise = std::max(e.promise, vv.promise);
      if (may_open) e.open = true;
      counters_.pushes_applied.inc();
    } else {
      counters_.pushes_stale.inc();
    }
  }
}

}  // namespace faastcc::cache
