#include "obs/trace.h"

#include <cinttypes>
#include <cstdio>

namespace faastcc::obs {

void Tracer::start_trace(uint64_t trace_id, SimTime now) {
  if (!params_.enabled || trace_id == 0) return;
  const uint64_t n = traces_started_++;
  if (params_.sample_every > 1 && n % params_.sample_every != 0) return;
  open_traces_.emplace(trace_id, OpenTrace{now, {0, 0, 0}});
}

SpanHandle Tracer::begin(const TraceContext& parent, const char* name,
                         const char* cat, uint32_t node, SimTime now) {
  if (!params_.enabled || !parent.traced()) return {};
  if (open_traces_.count(parent.trace_id) == 0) return {};
  uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<uint32_t>(slab_.size());
    slab_.emplace_back();
  }
  Span& s = slab_[slot];
  s = Span{};
  s.trace_id = parent.trace_id;
  s.span_id = next_span_id_++;
  s.parent_span_id = parent.span_id;
  s.name = name;
  s.cat = cat;
  s.node = node;
  s.start = now;
  return SpanHandle{slot + 1};
}

void Tracer::annotate(SpanHandle h, const char* key, uint64_t value) {
  if (!h.active()) return;
  slab_[h.slot - 1].annotations.push_back(Annotation{key, value});
}

TraceContext Tracer::context_of(SpanHandle h) const {
  if (!h.active()) return {};
  const Span& s = slab_[h.slot - 1];
  return TraceContext{s.trace_id, s.span_id};
}

void Tracer::end(SpanHandle h, SimTime now) {
  if (!h.active()) return;
  Span& s = slab_[h.slot - 1];
  s.end = now;
  spans_.push_back(std::move(s));
  s = Span{};
  free_slots_.push_back(h.slot - 1);
  while (spans_.size() > params_.ring_capacity) {
    spans_.pop_front();
    ++spans_dropped_;
  }
}

void Tracer::add_time(uint64_t trace_id, Bucket b, Duration d) {
  if (!params_.enabled || trace_id == 0 || d <= 0) return;
  auto it = open_traces_.find(trace_id);
  if (it == open_traces_.end()) return;
  it->second.buckets[static_cast<size_t>(b)] += d;
}

std::optional<TraceBreakdown> Tracer::finish_trace(uint64_t trace_id,
                                                   SimTime now) {
  auto it = open_traces_.find(trace_id);
  if (it == open_traces_.end()) return std::nullopt;
  TraceBreakdown out;
  out.total = now - it->second.start;
  out.queue = it->second.buckets[static_cast<size_t>(Bucket::kQueue)];
  out.compute = it->second.buckets[static_cast<size_t>(Bucket::kCompute)];
  out.storage = it->second.buckets[static_cast<size_t>(Bucket::kStorage)];
  const Duration accounted = out.queue + out.compute + out.storage;
  // Executors overlap (joins, parallel branches), so the instrumented
  // buckets can legitimately exceed the end-to-end latency; the network
  // residual is clamped rather than reported negative.
  out.network = out.total > accounted ? out.total - accounted : 0;
  open_traces_.erase(it);
  return out;
}

void Tracer::export_chrome_trace(std::ostream& out) const {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buf[256];
  bool first = true;
  for (const Span& s : spans_) {
    if (!first) out << ",";
    first = false;
    // "X" complete events: ts/dur in integer microseconds, pid = node
    // address (one track per component), tid = trace id.
    std::snprintf(buf, sizeof(buf),
                  "\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
                  "\"pid\":%" PRIu32 ",\"tid\":%" PRIu64 ",\"ts\":%" PRId64
                  ",\"dur\":%" PRId64,
                  s.name, s.cat, s.node, s.trace_id,
                  static_cast<int64_t>(s.start),
                  static_cast<int64_t>(s.end - s.start));
    out << buf;
    std::snprintf(buf, sizeof(buf),
                  ",\"args\":{\"trace\":%" PRIu64 ",\"span\":%" PRIu64
                  ",\"parent\":%" PRIu64,
                  s.trace_id, s.span_id, s.parent_span_id);
    out << buf;
    for (const Annotation& a : s.annotations) {
      std::snprintf(buf, sizeof(buf), ",\"%s\":%" PRIu64, a.key, a.value);
      out << buf;
    }
    out << "}}";
  }
  out << "\n]}\n";
}

}  // namespace faastcc::obs
