file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_dag_size.dir/bench_fig10_dag_size.cc.o"
  "CMakeFiles/bench_fig10_dag_size.dir/bench_fig10_dag_size.cc.o.d"
  "bench_fig10_dag_size"
  "bench_fig10_dag_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_dag_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
