#include "faas/dag.h"

#include <cassert>

namespace faastcc::faas {

FunctionSpec FunctionSpec::decode(BufReader& r) {
  FunctionSpec f;
  f.name = r.get_bytes();
  const std::string_view a = r.get_bytes_view();
  f.args.assign(a.begin(), a.end());
  const uint32_t n = r.get_u32();
  f.children.reserve(n);
  for (uint32_t i = 0; i < n; ++i) f.children.push_back(r.get_u32());
  return f;
}

DagSpec DagSpec::decode(BufReader& r) {
  DagSpec d;
  const uint32_t n = r.get_u32();
  d.functions.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    d.functions.push_back(FunctionSpec::decode(r));
  }
  d.is_static = r.get_bool();
  const uint32_t nr = r.get_u32();
  d.declared_read_set.reserve(nr);
  for (uint32_t i = 0; i < nr; ++i) d.declared_read_set.push_back(r.get_u64());
  const uint32_t nw = r.get_u32();
  d.declared_write_set.reserve(nw);
  for (uint32_t i = 0; i < nw; ++i) d.declared_write_set.push_back(r.get_u64());
  return d;
}

std::vector<uint32_t> DagSpec::in_degrees() const {
  std::vector<uint32_t> deg(functions.size(), 0);
  for (const auto& f : functions) {
    for (uint32_t c : f.children) {
      if (c < deg.size()) ++deg[c];
    }
  }
  return deg;
}

uint32_t DagSpec::root() const {
  const auto deg = in_degrees();
  for (uint32_t i = 0; i < deg.size(); ++i) {
    if (deg[i] == 0) return i;
  }
  assert(false && "DAG has no root");
  return 0;
}

bool DagSpec::valid() const {
  if (functions.empty()) return false;
  size_t roots = 0;
  size_t sinks = 0;
  for (const auto& f : functions) {
    if (f.children.empty()) ++sinks;
    for (uint32_t c : f.children) {
      if (c >= functions.size()) return false;
    }
  }
  const auto deg = in_degrees();
  for (uint32_t d : deg) {
    if (d == 0) ++roots;
  }
  if (roots != 1 || sinks != 1) return false;
  // Acyclicity via Kahn's algorithm.
  std::vector<uint32_t> remaining = deg;
  std::vector<uint32_t> queue;
  for (uint32_t i = 0; i < remaining.size(); ++i) {
    if (remaining[i] == 0) queue.push_back(i);
  }
  size_t seen = 0;
  while (!queue.empty()) {
    const uint32_t u = queue.back();
    queue.pop_back();
    ++seen;
    for (uint32_t c : functions[u].children) {
      if (--remaining[c] == 0) queue.push_back(c);
    }
  }
  return seen == functions.size();
}

bool DagSpec::normalize_sinks() {
  std::vector<uint32_t> sinks;
  for (uint32_t i = 0; i < functions.size(); ++i) {
    if (functions[i].children.empty()) sinks.push_back(i);
  }
  if (sinks.size() <= 1) return false;
  FunctionSpec sync;
  sync.name = "__sync";
  const auto sync_index = static_cast<uint32_t>(functions.size());
  for (uint32_t s : sinks) functions[s].children.push_back(sync_index);
  functions.push_back(std::move(sync));
  return true;
}

DagSpec DagSpec::chain(std::vector<FunctionSpec> fns) {
  DagSpec d;
  d.functions = std::move(fns);
  for (uint32_t i = 0; i + 1 < d.functions.size(); ++i) {
    d.functions[i].children = {i + 1};
  }
  if (!d.functions.empty()) d.functions.back().children.clear();
  return d;
}

}  // namespace faastcc::faas
