// Minimal binary codec used for every simulated network message.
//
// Fixed-width little-endian encoding keeps message sizes exact and easy to
// reason about: the metadata-size experiments (Fig. 5 and Fig. 7 of the
// paper) report the byte counts produced by this codec.  It plays the role
// protocol buffers play in the authors' prototype.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace faastcc {

using Buffer = std::vector<uint8_t>;

class BufWriter {
 public:
  BufWriter() = default;

  void put_u8(uint8_t v) { buf_.push_back(v); }
  void put_u16(uint16_t v) { put_raw(&v, sizeof(v)); }
  void put_u32(uint32_t v) { put_raw(&v, sizeof(v)); }
  void put_u64(uint64_t v) { put_raw(&v, sizeof(v)); }
  void put_i64(int64_t v) { put_raw(&v, sizeof(v)); }
  void put_f64(double v) { put_raw(&v, sizeof(v)); }
  void put_bool(bool v) { put_u8(v ? 1 : 0); }

  void put_bytes(std::string_view s) {
    put_u32(static_cast<uint32_t>(s.size()));
    put_raw(s.data(), s.size());
  }

  size_t size() const { return buf_.size(); }
  Buffer take() { return std::move(buf_); }
  const Buffer& data() const { return buf_; }

 private:
  void put_raw(const void* p, size_t n) {
    const auto* b = static_cast<const uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  Buffer buf_;
};

class CodecError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class BufReader {
 public:
  explicit BufReader(const Buffer& b) : data_(b.data()), size_(b.size()) {}
  BufReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  uint8_t get_u8() { return get<uint8_t>(); }
  uint16_t get_u16() { return get<uint16_t>(); }
  uint32_t get_u32() { return get<uint32_t>(); }
  uint64_t get_u64() { return get<uint64_t>(); }
  int64_t get_i64() { return get<int64_t>(); }
  double get_f64() { return get<double>(); }
  bool get_bool() { return get_u8() != 0; }

  std::string get_bytes() {
    const uint32_t n = get_u32();
    require(n);
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  size_t remaining() const { return size_ - pos_; }
  bool done() const { return pos_ == size_; }

 private:
  template <typename T>
  T get() {
    require(sizeof(T));
    T v;
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }
  void require(size_t n) const {
    if (size_ - pos_ < n) throw CodecError("buffer underflow");
  }
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

// Encodes a message struct that provides `void encode(BufWriter&) const`.
template <typename M>
Buffer encode_message(const M& m) {
  BufWriter w;
  m.encode(w);
  return w.take();
}

// Decodes a message struct that provides `static M decode(BufReader&)`.
template <typename M>
M decode_message(const Buffer& b) {
  BufReader r(b);
  return M::decode(r);
}

// Size in bytes a message would occupy on the wire.
template <typename M>
size_t encoded_size(const M& m) {
  BufWriter w;
  m.encode(w);
  return w.size();
}

}  // namespace faastcc
