file(REMOVE_RECURSE
  "CMakeFiles/comparative_test.dir/comparative_test.cc.o"
  "CMakeFiles/comparative_test.dir/comparative_test.cc.o.d"
  "comparative_test"
  "comparative_test.pdb"
  "comparative_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comparative_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
