file(REMOVE_RECURSE
  "libfaastcc_net.a"
)
