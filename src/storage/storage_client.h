// Typed client-side access to both storage services.
//
// TccStorageClient groups keys by partition, fans RPCs out in parallel and
// runs the prepare/commit protocol for multi-partition writes (with a
// single-RPC fast path when one partition owns every written key).
// EvStorageClient does the same for the eventually consistent store,
// picking a random replica per request — the source of staleness the
// HydroCache baseline must cope with.
#pragma once

#include <optional>
#include <vector>

#include "check/oracle.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "net/rpc.h"
#include "obs/trace.h"
#include "routing/routing_table.h"
#include "storage/messages.h"

namespace faastcc::storage {

// Key -> partition view held by a storage client.
//
// Two modes share the struct.  The plain-vector mode (fill `partitions`,
// leave `table` null) is the historical static construction used by unit
// tests and non-elastic assemblies: routing is `key mod N` and the epoch
// is 0, which opts the client out of epoch gating entirely.  The
// table-backed mode routes through an epoch-stamped routing::RoutingTable
// and is what the harness wires up, making the client a participant in
// elastic scale-out.
struct TccTopology {
  std::vector<net::Address> partitions;  // epoch-1 construction interface
  routing::TablePtr table;               // authoritative when set

  TccTopology() = default;
  TccTopology(std::initializer_list<net::Address> p) : partitions(p) {}
  explicit TccTopology(routing::TablePtr t)
      : partitions(t->partitions), table(std::move(t)) {}

  size_t num_partitions() const {
    return table != nullptr ? table->num_partitions() : partitions.size();
  }
  uint32_t epoch() const { return table != nullptr ? table->epoch : 0; }
  PartitionId partition_of(Key k) const {
    return table != nullptr
               ? table->partition_of(k)
               : routing::mod_partition(k, partitions.size());
  }
  net::Address address_of(Key k) const {
    return table != nullptr ? table->address_of(k)
                            : partitions[partition_of(k)];
  }
};

class TccStorageClient {
 public:
  TccStorageClient(net::RpcNode& rpc, TccTopology topology,
                   obs::Tracer* tracer = nullptr,
                   check::ConsistencyOracle* oracle = nullptr)
      : rpc_(rpc), topology_(std::move(topology)), tracer_(tracer),
        oracle_(oracle) {
    // Table-backed clients participate in epoch gating from the start;
    // plain-vector clients stay at epoch 0 and are never NACKed.
    if (topology_.table != nullptr) {
      rpc_.set_routing_epoch(topology_.table->epoch);
    }
  }

  struct ReadAccounting {
    size_t rpcs = 0;            // individual partition requests
    size_t request_bytes = 0;   // request payload bytes (excl. framing)
    size_t response_bytes = 0;  // response payload bytes (excl. framing)
  };

  // Reads `keys` at `snapshot`; `cached_ts[i]` is the version the caller
  // already holds (Timestamp::min() for none), enabling "unchanged"
  // promise-refresh responses.  Entries come back in input key order.
  // nullopt when a partition stayed unreachable through the retry budget.
  sim::Task<std::optional<TccReadResp>> read(
      std::vector<Key> keys, std::vector<Timestamp> cached_ts,
      Timestamp snapshot, ReadAccounting* accounting = nullptr,
      obs::TraceContext trace = {});

  // Commits `writes` atomically with a timestamp above `dep_ts`; returns
  // the commit timestamp, or nullopt when a participant stayed unreachable
  // through the (generous) commit retry budget.
  sim::Task<std::optional<Timestamp>> commit(TxnId txn,
                                             std::vector<KeyValue> writes,
                                             Timestamp dep_ts,
                                             obs::TraceContext trace = {});

  // Snapshot Isolation commit (§7 extension): first-committer-wins
  // write-write conflict detection against `snapshot_ts`.  Returns the
  // commit timestamp, or std::nullopt when the transaction must abort
  // (conflict, or a participant unreachable through the retry budget).
  // Always runs the full prepare/commit protocol so conflicting prepares
  // serialize even on a single partition.
  sim::Task<std::optional<Timestamp>> commit_si(TxnId txn,
                                                std::vector<KeyValue> writes,
                                                Timestamp dep_ts,
                                                Timestamp snapshot_ts,
                                                obs::TraceContext trace = {});

  // (Un)subscribes at the owning partitions.  `seq` orders the caller's
  // control stream per partition (see SubscribeReq::seq); 0 = unsequenced.
  // subscribe() returns true only when every partition acknowledged — a
  // subscription is not live (and promises must not rely on it) otherwise.
  sim::Task<bool> subscribe(std::vector<Key> keys, uint64_t seq = 0);
  sim::Task<void> unsubscribe(std::vector<Key> keys, uint64_t seq = 0);

  const TccTopology& topology() const { return topology_; }
  uint32_t epoch() const { return topology_.epoch(); }

  // ---- Elastic routing ----------------------------------------------------
  // Where to pull a fresh RoutingTable after a wrong-epoch NACK (0 = no
  // topology service: the client keeps its static table forever).  The
  // metrics registry, when given, accounts wrong-epoch retries.
  void enable_routing_refresh(net::Address topo_service,
                              Metrics* metrics = nullptr) {
    topo_service_ = topo_service;
    metrics_ = metrics;
  }
  // Fires after a newer table is adopted, with the table it replaced —
  // the cache uses this to re-home subscriptions and stable tracking.
  using TableChangeCallback = std::function<void(
      const routing::RoutingTable& old_table,
      const routing::RoutingTable& new_table)>;
  void on_table_change(TableChangeCallback cb) {
    table_change_cb_ = std::move(cb);
  }
  // Adopts `t` if it is newer than the current table; stamps the owning
  // RpcNode's epoch and fires the change callback.  Returns true on adopt.
  bool adopt_table(routing::TablePtr t);
  // Pulls the newest table from the topology service (one retry profile's
  // worth of attempts); false when unreachable or no service configured.
  sim::Task<bool> refresh_topology();

 private:
  sim::Task<bool> subscribe_impl(std::vector<Key> keys, TccMethod method,
                                 uint64_t seq);
  struct ReadOutcome {
    std::optional<TccReadResp> resp;
    bool stale_routing = false;  // wrong-epoch NACK or wrong-owner entry
  };
  sim::Task<ReadOutcome> read_once(const std::vector<Key>& keys,
                                   const std::vector<Timestamp>& cached_ts,
                                   Timestamp snapshot,
                                   ReadAccounting* accounting,
                                   obs::TraceContext trace);
  void note_wrong_epoch_retry();

  net::RpcNode& rpc_;
  TccTopology topology_;
  obs::Tracer* tracer_ = nullptr;
  check::ConsistencyOracle* oracle_ = nullptr;
  net::Address topo_service_ = 0;
  Metrics* metrics_ = nullptr;
  TableChangeCallback table_change_cb_;
  bool refresh_inflight_ = false;
};

struct EvTopology {
  // replicas[partition] lists the replica addresses of that partition.
  std::vector<std::vector<net::Address>> replicas;

  size_t num_partitions() const { return replicas.size(); }
  PartitionId partition_of(Key k) const {
    return routing::mod_partition(k, replicas.size());
  }
};

class EvStorageClient {
 public:
  EvStorageClient(net::RpcNode& rpc, EvTopology topology, Rng rng,
                  obs::Tracer* tracer = nullptr)
      : rpc_(rpc), topology_(std::move(topology)), rng_(rng),
        tracer_(tracer) {}

  struct GetResult {
    std::vector<std::optional<EvItem>> items;  // parallel to requested keys
    size_t request_bytes = 0;
    size_t response_bytes = 0;
    // True when a replica stayed unreachable through the retry budget; the
    // affected keys are indistinguishable from absent, so callers must not
    // cache the result as authoritative.
    bool failed = false;
  };

  // Reads each key from one (randomly chosen) replica of its partition.
  sim::Task<GetResult> get(std::vector<Key> keys,
                           obs::TraceContext trace = {});

  // Writes each item to one replica of its partition; returns assigned
  // versions in input order, or nullopt when a replica stayed unreachable
  // through the retry budget.
  sim::Task<std::optional<std::vector<EvVersion>>> put(
      std::vector<EvItem> items, obs::TraceContext trace = {});

  // Subscribes/unsubscribes for update notifications at the notifier
  // replica (replica 0) of each key's partition.
  sim::Task<void> subscribe(std::vector<Key> keys);
  sim::Task<void> unsubscribe(std::vector<Key> keys);

  // Most recent dependency-GC watermark piggybacked on any response.
  SimTime global_cut() const { return global_cut_; }

  const EvTopology& topology() const { return topology_; }

 private:
  net::Address pick_replica(PartitionId p);
  net::Address pick_write_replica(PartitionId p);

  net::RpcNode& rpc_;
  EvTopology topology_;
  Rng rng_;
  obs::Tracer* tracer_ = nullptr;
  SimTime global_cut_ = 0;
};

}  // namespace faastcc::storage
