# Empty dependencies file for bench_fig3_mechanisms.
# This may be replaced when dependencies are built.
