// Epoch-versioned key -> partition routing.
//
// A RoutingTable is an immutable snapshot of the cluster's data placement,
// stamped with a monotonically increasing epoch.  Keys hash onto a fixed
// ring of slots (slot = key mod num_slots) and each slot is owned by one
// partition, so adding M partitions to an N-partition cluster remaps only
// the slots handed to the joiners (~ M/(N+M) of the key space) instead of
// reshuffling every key the way plain `key mod N` would.
//
// Epoch 1 is constructed so that slot ownership degenerates to exactly
// `key mod N` (slot s is owned by partition s mod N and num_slots is a
// multiple of N): a cluster that never scales out routes bit-identically
// to the historical modulo scheme.
//
// Tables are shared immutably (TablePtr): every layer holds a snapshot and
// swaps the pointer on an epoch bump, so a request batch is always grouped
// under one consistent epoch.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/serialize.h"
#include "common/types.h"

namespace faastcc::routing {

// Address of a partition endpoint (mirrors net::Address without pulling the
// network layer into this header).
using PartitionAddress = uint32_t;

// The shared modulo helper: the single definition of "key k maps to index
// i of n" used by both the slot ring and the eventually consistent store's
// replica groups.
inline uint32_t mod_partition(Key k, size_t n) {
  return static_cast<uint32_t>(k % static_cast<uint64_t>(n));
}

struct RoutingTable {
  // Slots per partition at epoch 1.  Eight gives a joiner reasonably even
  // steals from the incumbents while keeping the table tiny on the wire.
  static constexpr size_t kDefaultSlotsPerPartition = 8;

  uint32_t epoch = 1;
  // slot_owner[s] = index into `partitions` of the slot's owner.
  std::vector<uint32_t> slot_owner;
  std::vector<PartitionAddress> partitions;
  // Per-slot replica chain: replicas[p] lists the follower endpoints
  // backing leader partitions[p], in promotion-preference order.  Empty
  // outer vector = replication disabled; when non-empty it has exactly
  // one (possibly empty) entry per partition.
  std::vector<std::vector<PartitionAddress>> replicas;

  size_t num_slots() const { return slot_owner.size(); }
  size_t num_partitions() const { return partitions.size(); }

  bool replicated() const { return !replicas.empty(); }
  const std::vector<PartitionAddress>& replicas_of(PartitionId p) const {
    static const std::vector<PartitionAddress> kNone;
    return p < replicas.size() ? replicas[p] : kNone;
  }

  uint32_t slot_of(Key k) const { return mod_partition(k, num_slots()); }
  PartitionId partition_of(Key k) const { return slot_owner[slot_of(k)]; }
  PartitionAddress address_of(Key k) const {
    return partitions[partition_of(k)];
  }

  // Slots currently owned by `p`, in ring order.
  std::vector<uint32_t> slots_of_partition(PartitionId p) const;

  // Epoch-1 table whose routing is exactly `key mod partitions.size()`.
  static RoutingTable initial(std::vector<PartitionAddress> partitions,
                              size_t slots_per_partition =
                                  kDefaultSlotsPerPartition);

  // Next-epoch table with `added` appended as new partitions.  Slots are
  // stolen deterministically from the most-loaded incumbents (ties broken
  // towards the lowest partition id, highest-numbered slot moves first)
  // until every joiner owns floor(num_slots / new_count) slots.  Existing
  // slot assignments are otherwise untouched, so only the stolen slots'
  // keys change owner.
  RoutingTable with_partitions_added(
      const std::vector<PartitionAddress>& added) const;

  // Next-epoch table with the trailing `count` partitions retired (scale
  // IN).  Survivor ids are untouched — only the tail leaves, so no chain
  // that stays put changes owner.  The retirees' slots are returned
  // deterministically: ascending slot order, each slot to the currently
  // least-loaded survivor (ties towards the lowest partition id), which
  // exactly inverts `with_partitions_added` for balanced bases — adding M
  // partitions to an epoch-1 table and then removing them yields the
  // original assignment modulo epoch.  Retired replica chains are dropped
  // with their leader.
  RoutingTable with_partitions_removed(size_t count) const;

  // Next-epoch table promoting `candidate` (a member of replicas[p]) to
  // leader of partition p: partitions[p] becomes the candidate's address
  // and the candidate leaves the replica chain.  The dead leader is not
  // re-added — a revived endpoint rejoins only via backfill + a future
  // table, never implicitly.
  RoutingTable with_leader_replaced(PartitionId p,
                                    PartitionAddress candidate) const;

  // Wire codec (the topology service serves and broadcasts tables).  The
  // replica section is a trailing optional block so an unreplicated table
  // stays byte-identical to the pre-replication encoding; decode detects
  // it by the reader having bytes left, which is why every message that
  // embeds a table places it last.
  size_t size_hint() const {
    size_t n = 4 + 4 + 4 * partitions.size() + 4 + 4 * slot_owner.size();
    if (!replicas.empty()) {
      n += 4;
      for (const auto& reps : replicas) n += 4 + 4 * reps.size();
    }
    return n;
  }
  template <typename W>
  void encode(W& w) const {
    w.put_u32(epoch);
    w.put_u32(static_cast<uint32_t>(partitions.size()));
    for (PartitionAddress a : partitions) w.put_u32(a);
    w.put_u32(static_cast<uint32_t>(slot_owner.size()));
    for (uint32_t o : slot_owner) w.put_u32(o);
    if (!replicas.empty()) {
      w.put_u32(static_cast<uint32_t>(replicas.size()));
      for (const auto& reps : replicas) {
        w.put_u32(static_cast<uint32_t>(reps.size()));
        for (PartitionAddress a : reps) w.put_u32(a);
      }
    }
  }
  static RoutingTable decode(BufReader& r);
};

using TablePtr = std::shared_ptr<const RoutingTable>;

inline TablePtr make_table(RoutingTable t) {
  return std::make_shared<const RoutingTable>(std::move(t));
}

}  // namespace faastcc::routing
