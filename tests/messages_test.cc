// Round-trip property tests for every wire message: decode(encode(x)) == x
// under randomized contents, plus exact wire-size checks for the messages
// whose sizes feed the paper's byte metrics.
#include <gtest/gtest.h>

#include "cache/cache_messages.h"
#include "client/eventual_client.h"
#include "client/faastcc_client.h"
#include "client/hydro_client.h"
#include "common/rng.h"
#include "faas/messages.h"
#include "storage/messages.h"
#include "workload/workload.h"

namespace faastcc {
namespace {

// The allocation-free CountingWriter pass (encoded_size) must agree
// byte-for-byte with a real encode, and every hand-written size_hint()
// must be exact: pooled buffers are sized from these, so a short count
// would mean a mid-encode reallocation on the hot path.
template <typename M>
void check_wire_size(const M& m) {
  const size_t counted = encoded_size(m);
  EXPECT_EQ(counted, encode_message(m).size());
  EXPECT_EQ(wire_size_hint(m), counted);
  if constexpr (requires(const M& x) { x.size_hint(); }) {
    EXPECT_EQ(m.size_hint(), counted);
  }
}

Value random_value(Rng& rng, size_t max_len = 32) {
  std::string v;
  const size_t n = rng.next_below(max_len + 1);
  for (size_t i = 0; i < n; ++i) {
    v.push_back(static_cast<char>(rng.next_below(256)));
  }
  return Value(std::move(v));
}

Timestamp random_ts(Rng& rng) { return Timestamp(rng.next_u64()); }

// ---------------------------------------------------------------------------
// Storage messages.
// ---------------------------------------------------------------------------

TEST(MessageRoundTrip, VersionedValue) {
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    storage::VersionedValue v;
    v.key = rng.next_u64();
    v.value = random_value(rng);
    v.ts = random_ts(rng);
    v.promise = random_ts(rng);
    check_wire_size(v);
    const auto d = decode_message<storage::VersionedValue>(encode_message(v));
    EXPECT_EQ(d.key, v.key);
    EXPECT_EQ(d.value, v.value);
    EXPECT_EQ(d.ts, v.ts);
    EXPECT_EQ(d.promise, v.promise);
  }
}

TEST(MessageRoundTrip, TccReadReqAndResp) {
  Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    storage::TccReadReq q;
    q.snapshot = random_ts(rng);
    const size_t n = rng.next_below(8);
    for (size_t j = 0; j < n; ++j) {
      q.keys.push_back(rng.next_u64());
      q.cached_ts.push_back(random_ts(rng));
    }
    check_wire_size(q);
    const auto dq = decode_message<storage::TccReadReq>(encode_message(q));
    EXPECT_EQ(dq.snapshot, q.snapshot);
    EXPECT_EQ(dq.keys, q.keys);
    EXPECT_EQ(dq.cached_ts, q.cached_ts);

    storage::TccReadResp resp;
    resp.stable_time = random_ts(rng);
    for (size_t j = 0; j < n; ++j) {
      storage::TccReadResp::Entry e;
      e.key = rng.next_u64();
      e.status = static_cast<storage::TccReadResp::Status>(rng.next_below(3));
      if (e.status != storage::TccReadResp::Status::kMiss) {
        e.ts = random_ts(rng);
        e.promise = random_ts(rng);
        e.open = rng.next_bool(0.5);
      }
      if (e.status == storage::TccReadResp::Status::kValue) {
        e.value = random_value(rng);
      }
      resp.entries.push_back(std::move(e));
    }
    check_wire_size(resp);
    const auto dr = decode_message<storage::TccReadResp>(encode_message(resp));
    EXPECT_EQ(dr.stable_time, resp.stable_time);
    ASSERT_EQ(dr.entries.size(), resp.entries.size());
    for (size_t j = 0; j < resp.entries.size(); ++j) {
      EXPECT_EQ(dr.entries[j].key, resp.entries[j].key);
      EXPECT_EQ(dr.entries[j].status, resp.entries[j].status);
      EXPECT_EQ(dr.entries[j].value, resp.entries[j].value);
      if (resp.entries[j].status != storage::TccReadResp::Status::kMiss) {
        EXPECT_EQ(dr.entries[j].ts, resp.entries[j].ts);
        EXPECT_EQ(dr.entries[j].promise, resp.entries[j].promise);
        EXPECT_EQ(dr.entries[j].open, resp.entries[j].open);
      }
    }
  }
}

TEST(MessageRoundTrip, PrepareCommitAbort) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    storage::TccPrepareReq p;
    p.txn = rng.next_u64();
    p.dep_ts = random_ts(rng);
    p.si_mode = rng.next_bool(0.5);
    p.snapshot_ts = random_ts(rng);
    for (size_t j = 0; j < rng.next_below(5); ++j) {
      p.write_keys.push_back(rng.next_u64());
    }
    check_wire_size(p);
    const auto dp = decode_message<storage::TccPrepareReq>(encode_message(p));
    EXPECT_EQ(dp.txn, p.txn);
    EXPECT_EQ(dp.dep_ts, p.dep_ts);
    EXPECT_EQ(dp.si_mode, p.si_mode);
    EXPECT_EQ(dp.snapshot_ts, p.snapshot_ts);
    EXPECT_EQ(dp.write_keys, p.write_keys);

    storage::TccPrepareResp pr{random_ts(rng), rng.next_bool(0.5)};
    check_wire_size(pr);
    const auto dpr =
        decode_message<storage::TccPrepareResp>(encode_message(pr));
    EXPECT_EQ(dpr.prepare_ts, pr.prepare_ts);
    EXPECT_EQ(dpr.ok, pr.ok);

    storage::TccCommitReq c;
    c.txn = rng.next_u64();
    c.commit_ts = random_ts(rng);
    c.dep_ts = random_ts(rng);
    for (size_t j = 0; j < rng.next_below(4); ++j) {
      c.writes.push_back(storage::KeyValue{rng.next_u64(), random_value(rng)});
    }
    check_wire_size(c);
    const auto dc = decode_message<storage::TccCommitReq>(encode_message(c));
    EXPECT_EQ(dc.txn, c.txn);
    EXPECT_EQ(dc.commit_ts, c.commit_ts);
    ASSERT_EQ(dc.writes.size(), c.writes.size());
    for (size_t j = 0; j < c.writes.size(); ++j) {
      EXPECT_EQ(dc.writes[j].key, c.writes[j].key);
      EXPECT_EQ(dc.writes[j].value, c.writes[j].value);
    }

    storage::TccAbortReq a{rng.next_u64()};
    check_wire_size(a);
    EXPECT_EQ(decode_message<storage::TccAbortReq>(encode_message(a)).txn,
              a.txn);
  }
}

TEST(MessageRoundTrip, GossipAndPush) {
  Rng rng(4);
  storage::GossipMsg g{7, random_ts(rng)};
  check_wire_size(g);
  const auto dg = decode_message<storage::GossipMsg>(encode_message(g));
  EXPECT_EQ(dg.partition, g.partition);
  EXPECT_EQ(dg.safe_time, g.safe_time);

  storage::PushMsg p;
  p.partition = 3;
  p.seq = 41;
  p.stable_time = random_ts(rng);
  storage::VersionedValue v;
  v.key = 9;
  v.value = "abc";
  p.updates.push_back(v);
  check_wire_size(p);
  const auto dp = decode_message<storage::PushMsg>(encode_message(p));
  EXPECT_EQ(dp.partition, 3u);
  EXPECT_EQ(dp.seq, 41u);
  EXPECT_EQ(dp.stable_time, p.stable_time);
  ASSERT_EQ(dp.updates.size(), 1u);
  EXPECT_EQ(dp.updates[0].value, "abc");
}

TEST(MessageRoundTrip, StabilizationTreeMessages) {
  Rng rng(6);
  storage::SafeUpMsg up{5, 12, random_ts(rng)};
  check_wire_size(up);
  const auto du = decode_message<storage::SafeUpMsg>(encode_message(up));
  EXPECT_EQ(du.partition, 5u);
  EXPECT_EQ(du.membership, 12u);
  EXPECT_EQ(du.subtree_min, up.subtree_min);

  storage::StableDownMsg down{12, random_ts(rng)};
  check_wire_size(down);
  const auto dd =
      decode_message<storage::StableDownMsg>(encode_message(down));
  EXPECT_EQ(dd.membership, 12u);
  EXPECT_EQ(dd.stable, down.stable);
}

TEST(MessageRoundTrip, ReplicationFrames) {
  Rng rng(11);
  for (int i = 0; i < 30; ++i) {
    storage::TccReplInstallReq inst;
    inst.txn = rng.next_u64();
    inst.commit_ts = random_ts(rng);
    inst.seq = rng.next_u64();
    for (size_t j = 0; j < rng.next_below(4); ++j) {
      inst.writes.push_back(
          storage::KeyValue{rng.next_u64(), random_value(rng)});
    }
    check_wire_size(inst);
    const auto di =
        decode_message<storage::TccReplInstallReq>(encode_message(inst));
    EXPECT_EQ(di.txn, inst.txn);
    EXPECT_EQ(di.commit_ts, inst.commit_ts);
    EXPECT_EQ(di.seq, inst.seq);
    ASSERT_EQ(di.writes.size(), inst.writes.size());
    for (size_t j = 0; j < inst.writes.size(); ++j) {
      EXPECT_EQ(di.writes[j].key, inst.writes[j].key);
      EXPECT_EQ(di.writes[j].value, inst.writes[j].value);
    }

    storage::TccReplSealReq seal{random_ts(rng), rng.next_u64()};
    check_wire_size(seal);
    const auto ds =
        decode_message<storage::TccReplSealReq>(encode_message(seal));
    EXPECT_EQ(ds.safe, seal.safe);
    EXPECT_EQ(ds.seq_high, seal.seq_high);

    storage::TccReplSealResp sealr{rng.next_bool(0.5), rng.next_u64()};
    check_wire_size(sealr);
    const auto dsr =
        decode_message<storage::TccReplSealResp>(encode_message(sealr));
    EXPECT_EQ(dsr.ok, sealr.ok);
    EXPECT_EQ(dsr.applied_seq, sealr.applied_seq);
  }
  check_wire_size(storage::TccReplInstallResp{false});
  check_wire_size(storage::TccBackfillResp{true});
}

TEST(MessageRoundTrip, BackfillCarriesChainsAndResolvedWindow) {
  Rng rng(12);
  storage::TccBackfillReq q;
  q.safe = random_ts(rng);
  q.seq_high = rng.next_u64();
  for (int i = 0; i < 5; ++i) {
    q.resolved.push_back(storage::ResolvedTxn{rng.next_u64(), random_ts(rng)});
    check_wire_size(q.resolved.back());
  }
  for (int i = 0; i < 3; ++i) {
    storage::MigratedChain c;
    c.key = rng.next_u64();
    for (size_t j = 0; j < rng.next_below(4); ++j) {
      c.versions.push_back(
          storage::MigratedVersion{random_value(rng), random_ts(rng)});
    }
    q.chains.push_back(std::move(c));
  }
  check_wire_size(q);
  const auto d = decode_message<storage::TccBackfillReq>(encode_message(q));
  EXPECT_EQ(d.safe, q.safe);
  EXPECT_EQ(d.seq_high, q.seq_high);
  ASSERT_EQ(d.resolved.size(), q.resolved.size());
  for (size_t i = 0; i < q.resolved.size(); ++i) {
    EXPECT_EQ(d.resolved[i].txn, q.resolved[i].txn);
    EXPECT_EQ(d.resolved[i].ts, q.resolved[i].ts);
  }
  ASSERT_EQ(d.chains.size(), q.chains.size());
  for (size_t i = 0; i < q.chains.size(); ++i) {
    EXPECT_EQ(d.chains[i].key, q.chains[i].key);
    ASSERT_EQ(d.chains[i].versions.size(), q.chains[i].versions.size());
    for (size_t j = 0; j < q.chains[i].versions.size(); ++j) {
      EXPECT_EQ(d.chains[i].versions[j].value, q.chains[i].versions[j].value);
      EXPECT_EQ(d.chains[i].versions[j].ts, q.chains[i].versions[j].ts);
    }
  }
  // The epoch fence defaults to 0 and is NOT encoded then: a pre-elastic
  // parcel's bytes are unchanged and decode back to epoch 0.
  EXPECT_EQ(d.epoch, 0u);

  q.epoch = 7;
  check_wire_size(q);
  const auto de = decode_message<storage::TccBackfillReq>(encode_message(q));
  EXPECT_EQ(de.epoch, 7u);
  EXPECT_EQ(de.safe, q.safe);
  EXPECT_EQ(de.chains.size(), q.chains.size());

  // An empty backfill (fresh follower of an empty slot) still frames.
  check_wire_size(storage::TccBackfillReq{});
}

TEST(MessageRoundTrip, CoalescedPushBatch) {
  Rng rng(7);
  storage::PushBatchMsg b;
  b.partition = 2;
  b.seq = 99;
  b.stable_time = random_ts(rng);
  for (int i = 0; i < 3; ++i) {
    storage::PushUpdate u;
    u.key = rng.next_u64();
    u.value = random_value(rng);
    u.ts = random_ts(rng);
    b.updates.push_back(u);
  }
  check_wire_size(b);
  const auto db = decode_message<storage::PushBatchMsg>(encode_message(b));
  EXPECT_EQ(db.partition, 2u);
  EXPECT_EQ(db.seq, 99u);
  EXPECT_EQ(db.stable_time, b.stable_time);
  ASSERT_EQ(db.updates.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(db.updates[i].key, b.updates[i].key);
    EXPECT_EQ(db.updates[i].value, b.updates[i].value);
    EXPECT_EQ(db.updates[i].ts, b.updates[i].ts);
  }
  // The batched frame drops the 8-byte per-update promise: for the same
  // payload it is strictly smaller than the PushMsg framing.
  storage::PushMsg plain;
  plain.partition = b.partition;
  plain.seq = b.seq;
  plain.stable_time = b.stable_time;
  for (const auto& u : b.updates) {
    storage::VersionedValue v;
    v.key = u.key;
    v.value = u.value;
    v.ts = u.ts;
    v.promise = u.ts;
    plain.updates.push_back(v);
  }
  EXPECT_EQ(b.size_hint() + 8 * b.updates.size(), plain.size_hint());
}

TEST(MessageRoundTrip, EventualStoreMessages) {
  Rng rng(5);
  for (int i = 0; i < 30; ++i) {
    storage::EvItem item;
    item.key = rng.next_u64();
    item.version = storage::EvVersion{rng.next_u64(), rng.next_u64()};
    item.written_at = static_cast<SimTime>(rng.next_below(1u << 30));
    item.payload = random_value(rng);
    check_wire_size(item);
    const auto d = decode_message<storage::EvItem>(encode_message(item));
    EXPECT_EQ(d.key, item.key);
    EXPECT_EQ(d.version, item.version);
    EXPECT_EQ(d.written_at, item.written_at);
    EXPECT_EQ(d.payload, item.payload);
  }

  storage::EvGetReq q;
  q.keys = {1, 2, 3};
  check_wire_size(q);
  EXPECT_EQ(decode_message<storage::EvGetReq>(encode_message(q)).keys, q.keys);

  storage::EvGossipMsg g;
  g.sent_at = 777;
  check_wire_size(g);
  const auto dg = decode_message<storage::EvGossipMsg>(encode_message(g));
  EXPECT_EQ(dg.sent_at, 777);

  storage::EvStableCutMsg cut{4, 999};
  check_wire_size(cut);
  const auto dc = decode_message<storage::EvStableCutMsg>(encode_message(cut));
  EXPECT_EQ(dc.replica, 4u);
  EXPECT_EQ(dc.cut, 999);
}

// ---------------------------------------------------------------------------
// Cache messages.
// ---------------------------------------------------------------------------

TEST(MessageRoundTrip, CacheReadReqResp) {
  Rng rng(6);
  cache::CacheReadReq q;
  q.interval = client::SnapshotInterval{random_ts(rng), random_ts(rng)};
  q.use_promises = false;
  q.keys = {5, 6};
  check_wire_size(q);
  const auto dq = decode_message<cache::CacheReadReq>(encode_message(q));
  EXPECT_EQ(dq.interval, q.interval);
  EXPECT_FALSE(dq.use_promises);
  EXPECT_EQ(dq.keys, q.keys);

  cache::CacheReadResp resp;
  resp.abort = true;
  resp.interval = q.interval;
  resp.from_cache = {true, false};
  storage::VersionedValue v;
  v.key = 5;
  resp.entries.push_back(v);
  resp.entries.push_back(v);
  check_wire_size(resp);
  const auto dr = decode_message<cache::CacheReadResp>(encode_message(resp));
  EXPECT_TRUE(dr.abort);
  EXPECT_EQ(dr.from_cache, resp.from_cache);
  EXPECT_EQ(dr.entries.size(), 2u);
}

TEST(MessageRoundTrip, HydroReadReqResp) {
  Rng rng(7);
  cache::HydroReadReq q;
  q.keys = {1};
  q.context.mark_read(2, 9, 100);
  check_wire_size(q);
  const auto dq = decode_message<cache::HydroReadReq>(encode_message(q));
  EXPECT_EQ(dq.keys, q.keys);
  EXPECT_NE(dq.context.find(2), nullptr);

  cache::HydroReadResp resp;
  resp.global_cut = 55;
  cache::HydroReadEntry e;
  e.key = 1;
  e.value = "v";
  e.counter = 3;
  e.written_at = 44;
  e.deps = cache::DepList({cache::StoredDep{9, 2, 10, 1}});
  resp.entries.push_back(std::move(e));
  resp.from_cache.push_back(true);
  check_wire_size(resp);
  const auto dr = decode_message<cache::HydroReadResp>(encode_message(resp));
  EXPECT_EQ(dr.global_cut, 55);
  ASSERT_EQ(dr.entries.size(), 1u);
  EXPECT_EQ(dr.entries[0].counter, 3u);
  ASSERT_EQ(dr.entries[0].deps.size(), 1u);
  EXPECT_EQ(dr.entries[0].deps[0].level, 1);
}

// ---------------------------------------------------------------------------
// FaaS messages.
// ---------------------------------------------------------------------------

TEST(MessageRoundTrip, TriggerMsg) {
  faas::TriggerMsg t;
  t.txn_id = 77;
  t.fn_index = 2;
  t.client = 900;
  faas::FunctionSpec f;
  f.name = "fn";
  f.args = {1, 2};
  f.children = {1};
  t.spec.functions.push_back(f);
  t.spec.functions.push_back(faas::FunctionSpec{"sink", {}, {}});
  t.placement = {10, 11};
  t.session = Buffer{9};
  t.context = Buffer{8, 8};
  t.parent_result = {7};
  check_wire_size(t);
  const auto d = decode_message<faas::TriggerMsg>(encode_message(t));
  EXPECT_EQ(d.txn_id, 77u);
  EXPECT_EQ(d.fn_index, 2u);
  EXPECT_EQ(d.client, 900u);
  EXPECT_EQ(d.spec.functions.size(), 2u);
  EXPECT_EQ(d.placement, t.placement);
  EXPECT_EQ(d.session.bytes(), Buffer({9}));
  EXPECT_EQ(d.context.bytes(), Buffer({8, 8}));
  EXPECT_EQ(d.parent_result, t.parent_result);
}

// Decoding a trigger from a shared message buffer must not copy the
// session/context blobs: the payloads alias the wire bytes in place and
// keep the buffer alive through the shared count.
TEST(MessageRoundTrip, TriggerMsgSharedDecodeAliasesPayloads) {
  faas::TriggerMsg t;
  t.txn_id = 1;
  t.spec.functions.push_back(faas::FunctionSpec{"f", {}, {}});
  t.session = Buffer{1, 2, 3};
  t.context = Buffer{4, 5, 6, 7};
  auto wire = std::make_shared<const Buffer>(encode_message(t));
  const uint8_t* lo = wire->data();
  const uint8_t* hi = lo + wire->size();
  auto d = decode_message<faas::TriggerMsg>(wire);
  ASSERT_EQ(d.session.size(), 3u);
  ASSERT_EQ(d.context.size(), 4u);
  EXPECT_TRUE(d.session.data() >= lo && d.session.data() < hi);
  EXPECT_TRUE(d.context.data() >= lo && d.context.data() < hi);
  EXPECT_EQ(d.session.owner().get(), wire.get());
  EXPECT_EQ(d.context.owner().get(), wire.get());
  // The views stay valid after the last outside reference drops.
  const Buffer ctx_bytes = d.context.bytes();
  wire.reset();
  EXPECT_EQ(d.context.bytes(), ctx_bytes);
  EXPECT_EQ(d.session.bytes(), Buffer({1, 2, 3}));
}

TEST(MessageRoundTrip, StartAndDone) {
  faas::StartDagMsg s;
  s.txn_id = 5;
  s.client = 6;
  s.session = {1, 2, 3};
  s.spec.functions.push_back(faas::FunctionSpec{"f", {}, {}});
  check_wire_size(s);
  const auto ds = decode_message<faas::StartDagMsg>(encode_message(s));
  EXPECT_EQ(ds.txn_id, 5u);
  EXPECT_EQ(ds.session, s.session);

  faas::DagDoneMsg done;
  done.txn_id = 5;
  done.committed = true;
  done.session = {4};
  done.result = {5, 5};
  check_wire_size(done);
  const auto dd = decode_message<faas::DagDoneMsg>(encode_message(done));
  EXPECT_TRUE(dd.committed);
  EXPECT_EQ(dd.session, done.session);
  EXPECT_EQ(dd.result, done.result);
}

// Counted-size checks for the message types the round-trip tests above do
// not construct, so every wire type in the codebase is covered.
TEST(CountedSize, RemainingMessageTypes) {
  Rng rng(8);

  check_wire_size(storage::TccCommitResp{true});
  check_wire_size(storage::EvVersion{3, 4});

  storage::SubscribeReq sub;
  sub.keys = {1, 2, 3, 4};
  sub.seq = 17;
  check_wire_size(sub);
  EXPECT_EQ(decode_message<storage::SubscribeReq>(encode_message(sub)).seq,
            17u);

  storage::EvItem item;
  item.key = 5;
  item.version = storage::EvVersion{6, 7};
  item.written_at = 99;
  item.payload = random_value(rng);

  storage::EvGetResp get_resp;
  get_resp.global_cut = 12;
  get_resp.found = {item, item};
  check_wire_size(get_resp);

  storage::EvPutReq put_req;
  put_req.items = {item};
  check_wire_size(put_req);

  storage::EvPutResp put_resp;
  put_resp.global_cut = 13;
  put_resp.versions = {storage::EvVersion{1, 2}, storage::EvVersion{3, 4}};
  check_wire_size(put_resp);

  cache::PlainReadReq plain_req;
  plain_req.keys = {10, 11};
  check_wire_size(plain_req);

  cache::PlainReadResp plain_resp;
  plain_resp.entries.push_back(storage::KeyValue{10, random_value(rng)});
  check_wire_size(plain_resp);
  check_wire_size(plain_resp.entries[0]);

  cache::StoredDep dep{21, 9, 100, 1};
  check_wire_size(dep);

  cache::HydroStored stored;
  stored.value = random_value(rng);
  stored.deps = cache::DepList({dep, dep});
  check_wire_size(stored);

  cache::HydroReadEntry entry;
  entry.key = 21;
  entry.value = random_value(rng);
  entry.counter = 3;
  entry.deps = cache::DepList({dep});
  check_wire_size(entry);

  cache::DepMap deps;
  deps.mark_read(1, 5, 50);
  deps.require(2, 6, 60, 1);
  check_wire_size(deps);

  check_wire_size(client::SnapshotInterval{Timestamp(3), Timestamp(9)});

  client::FaasTccContext tcc_ctx;
  tcc_ctx.interval = client::SnapshotInterval{Timestamp(1), Timestamp(2)};
  tcc_ctx.dep_ts = Timestamp(7);
  tcc_ctx.write_set[4] = random_value(rng);
  check_wire_size(tcc_ctx);

  client::HydroContext hydro_ctx;
  hydro_ctx.deps = deps;
  hydro_ctx.lamport = 8;
  hydro_ctx.global_cut = 70;
  hydro_ctx.write_set[5] = random_value(rng);
  check_wire_size(hydro_ctx);

  client::HydroSession session;
  session.lamport = 9;
  session.global_cut = 80;
  session.deps = deps;
  check_wire_size(session);

  client::EventualContext ev_ctx;
  ev_ctx.write_set[6] = random_value(rng);
  check_wire_size(ev_ctx);

  check_wire_size(faas::AbortNoticeMsg{77});

  faas::FunctionSpec fn;
  fn.name = "step";
  fn.args = {1, 2, 3};
  fn.children = {1};
  check_wire_size(fn);

  faas::DagSpec dag;
  dag.functions = {fn, faas::FunctionSpec{"sink", {}, {}}};
  dag.is_static = true;
  dag.declared_read_set = {1, 2};
  dag.declared_write_set = {3};
  check_wire_size(dag);

  workload::StepArgs step;
  step.keys = {4, 5, 6};
  check_wire_size(step);

  workload::SinkArgs sink;
  sink.keys = {7, 8};
  sink.write_key = 9;
  sink.value = random_value(rng);
  check_wire_size(sink);
}

// ---------------------------------------------------------------------------
// Wire sizes that feed the paper's byte metrics.
// ---------------------------------------------------------------------------

TEST(WireSize, SnapshotIntervalIs16Bytes) {
  EXPECT_EQ(encoded_size(client::SnapshotInterval{}), 16u);
}

TEST(WireSize, DepEntryIs26Bytes) {
  cache::DepMap m;
  m.require(1, 1, 1, 1);
  EXPECT_EQ(m.wire_bytes(), 4u + cache::kDepWireBytes);
  EXPECT_EQ(cache::kDepWireBytes, 26u);
}

TEST(WireSize, UnchangedReadEntrySmallerThanValueEntry) {
  storage::TccReadResp with_value;
  storage::TccReadResp::Entry e;
  e.key = 1;
  e.status = storage::TccReadResp::Status::kValue;
  e.value = Value(8, 'x');
  with_value.entries.push_back(e);

  storage::TccReadResp unchanged;
  e.status = storage::TccReadResp::Status::kUnchanged;
  e.value = Value();
  unchanged.entries.push_back(e);

  EXPECT_LT(encoded_size(unchanged), encoded_size(with_value));
}

}  // namespace
}  // namespace faastcc
