// Figure 7: bytes served by the storage layer per consistent read (median
// and P99).  HydroCache values carry dependency lists; most FaaSTCC
// responses are bare promise refreshes.
#include "bench_util.h"

using namespace faastcc;
using namespace faastcc::bench;

int main() {
  print_preamble("Figure 7", "bytes per consistent storage read");

  struct Row {
    const char* name;
    SystemKind system;
    double paper[3][2];
  };
  const Row rows[] = {
      {"HydroCache-Dynamic", SystemKind::kHydroCache,
       {{3436.0, 15048.0}, {3853.4, 16368.0}, {4016.4, 17756.6}}},
      {"FaaSTCC", SystemKind::kFaasTcc,
       {{18.3, 32.0}, {20.7, 32.0}, {22.1, 32.0}}},
  };
  const double zipfs[] = {1.0, 1.25, 1.5};

  Table table({"system", "zipf", "median B", "p99 B", "paper median B",
               "paper p99 B"});
  for (const Row& row : rows) {
    for (int z = 0; z < 3; ++z) {
      const SummaryStats s =
          run_or_load(base_config(row.system, zipfs[z], false));
      table.add_row({row.name, fmt(zipfs[z], 2), fmt(s.read_bytes_med, 0),
                     fmt(s.read_bytes_p99, 0), fmt(row.paper[z][0], 0),
                     fmt(row.paper[z][1], 0)});
    }
  }
  table.print();
  return 0;
}
