// Comparative integration tests: the paper's qualitative orderings,
// checked on small (fast) clusters.  These are the "shape" claims of §6
// at test scale — the bench binaries check them at paper scale.
#include <gtest/gtest.h>

#include "harness/cluster.h"

namespace faastcc::harness {
namespace {

ClusterParams small(SystemKind system, double zipf, bool static_txns,
                    uint64_t seed = 11) {
  ClusterParams p;
  p.system = system;
  p.seed = seed;
  p.partitions = 4;
  p.compute_nodes = 4;
  p.clients = 8;
  p.dags_per_client = 60;
  p.workload.num_keys = 4000;
  p.workload.zipf = zipf;
  p.workload.static_txns = static_txns;
  return p;
}

RunResult run(ClusterParams p) {
  Cluster cluster(std::move(p));
  return cluster.run();
}

TEST(Comparative, FaasTccMetadataConstantHydroMetadataLarge) {
  const RunResult ft = run(small(SystemKind::kFaasTcc, 1.0, false));
  const RunResult hc = run(small(SystemKind::kHydroCache, 1.0, false));
  EXPECT_DOUBLE_EQ(ft.metrics.metadata_bytes.median(), 16.0);
  EXPECT_DOUBLE_EQ(ft.metrics.metadata_bytes.p99(), 16.0);
  EXPECT_GT(hc.metrics.metadata_bytes.median(), 200.0)
      << "HydroCache should carry dependency maps";
}

TEST(Comparative, StaticPruningShrinksHydroMetadata) {
  const RunResult dyn = run(small(SystemKind::kHydroCache, 1.0, false));
  const RunResult sta = run(small(SystemKind::kHydroCache, 1.0, true));
  EXPECT_LT(sta.metrics.metadata_bytes.median(),
            dyn.metrics.metadata_bytes.median() / 2)
      << "declared read sets should prune most metadata (§6.3)";
}

TEST(Comparative, HydroMetadataShrinksWithSkew) {
  const RunResult low = run(small(SystemKind::kHydroCache, 1.0, false));
  const RunResult high = run(small(SystemKind::kHydroCache, 1.5, false));
  EXPECT_GT(low.metrics.metadata_bytes.median(),
            high.metrics.metadata_bytes.median())
      << "lower skew -> more distinct dependencies (Fig. 5)";
}

TEST(Comparative, FaasTccSingleRoundHydroMultiRound) {
  const RunResult ft = run(small(SystemKind::kFaasTcc, 1.25, false));
  const RunResult hc = run(small(SystemKind::kHydroCache, 1.25, false));
  EXPECT_DOUBLE_EQ(ft.metrics.storage_rounds.median(), 1.0);
  EXPECT_DOUBLE_EQ(ft.metrics.storage_rounds.p99(), 1.0);
  EXPECT_GT(hc.metrics.storage_rounds.max(), 1.0)
      << "HydroCache should need retries against stale replicas (Fig. 6)";
}

TEST(Comparative, HydroReadsCarryMoreBytes) {
  const RunResult ft = run(small(SystemKind::kFaasTcc, 1.0, false));
  const RunResult hc = run(small(SystemKind::kHydroCache, 1.0, false));
  ASSERT_GT(ft.metrics.storage_read_bytes.count(), 0u);
  ASSERT_GT(hc.metrics.storage_read_bytes.count(), 0u);
  EXPECT_GT(hc.metrics.storage_read_bytes.p99(),
            ft.metrics.storage_read_bytes.p99())
      << "values with dependency lists dwarf promise refreshes (Fig. 7)";
}

TEST(Comparative, HydroCacheFootprintLarger) {
  const RunResult ft = run(small(SystemKind::kFaasTcc, 1.0, false));
  const RunResult hc = run(small(SystemKind::kHydroCache, 1.0, false));
  EXPECT_GT(hc.cache_bytes, ft.cache_bytes)
      << "dependency metadata and stubs inflate HydroCache (Fig. 8)";
}

TEST(Comparative, FaasTccStaticEqualsDynamic) {
  // §6.3/§6.7: FaaSTCC runs exactly the same algorithm either way; with
  // the same seed the executions are identical.
  const RunResult dyn = run(small(SystemKind::kFaasTcc, 1.0, false));
  const RunResult sta = run(small(SystemKind::kFaasTcc, 1.0, true));
  EXPECT_EQ(dyn.metrics.dag_latency_ms.raw(), sta.metrics.dag_latency_ms.raw());
}

TEST(Comparative, DisabledCacheCostsLatency) {
  ClusterParams with_cache = small(SystemKind::kFaasTcc, 1.0, false);
  ClusterParams no_cache = small(SystemKind::kFaasTcc, 1.0, false);
  no_cache.cache_capacity = 0;
  const RunResult a = run(std::move(with_cache));
  const RunResult b = run(std::move(no_cache));
  EXPECT_LT(a.metrics.dag_latency_ms.median(),
            b.metrics.dag_latency_ms.median())
      << "the caching layer is key to performance (§6.7)";
  EXPECT_EQ(b.cache_entries, 0u);
}

TEST(Comparative, BoundedCacheDegradesGracefully) {
  ClusterParams tiny = small(SystemKind::kFaasTcc, 1.0, false);
  tiny.cache_capacity = 40;  // 1% of keyspace
  ClusterParams half = small(SystemKind::kFaasTcc, 1.0, false);
  half.cache_capacity = 2000;
  const RunResult t = run(std::move(tiny));
  const RunResult h = run(std::move(half));
  // More cache, fewer storage episodes.
  EXPECT_LT(h.metrics.storage_episodes.value(),
            t.metrics.storage_episodes.value());
  // Capacity respected.
  EXPECT_LE(t.cache_entries, 40u * 4u);
}

TEST(Comparative, CloudburstIsTheLatencyFloor) {
  const RunResult cb = run(small(SystemKind::kCloudburst, 1.0, false));
  const RunResult ft = run(small(SystemKind::kFaasTcc, 1.0, false));
  const RunResult hc = run(small(SystemKind::kHydroCache, 1.0, false));
  EXPECT_LE(cb.metrics.dag_latency_ms.median(),
            ft.metrics.dag_latency_ms.median());
  EXPECT_LE(cb.metrics.dag_latency_ms.median(),
            hc.metrics.dag_latency_ms.median());
}

TEST(Comparative, LongerDagsRaiseHydroPerFunctionTime) {
  ClusterParams short_dag = small(SystemKind::kHydroCache, 1.0, false);
  short_dag.workload.dag_size = 3;
  ClusterParams long_dag = small(SystemKind::kHydroCache, 1.0, false);
  long_dag.workload.dag_size = 12;
  const RunResult s = run(std::move(short_dag));
  const RunResult l = run(std::move(long_dag));
  const double per_fn_short = s.metrics.dag_latency_ms.median() / 3.0;
  const double per_fn_long = l.metrics.dag_latency_ms.median() / 12.0;
  EXPECT_GT(per_fn_long, per_fn_short)
      << "metadata accumulates along the chain (Fig. 10b)";
}

TEST(Comparative, SnapshotIsolationAddsConflictAborts) {
  ClusterParams tcc = small(SystemKind::kFaasTcc, 1.5, false, 3);
  tcc.workload.num_keys = 200;  // hot: many write-write races
  ClusterParams si = tcc;
  si.faastcc.snapshot_isolation = true;
  const RunResult a = run(std::move(tcc));
  const RunResult b = run(std::move(si));
  // Plain TCC may abort rarely (GC / retry exhaustion under extreme
  // contention); SI adds write-write conflict aborts on top.
  EXPECT_GT(b.metrics.dag_aborts.value(),
            a.metrics.dag_aborts.value() + 10)
      << "SI must abort conflicting writers under contention";
  // TCC commits everything; SI may drop a few first-committer losers that
  // exhaust their retry budget on the hottest key, but the vast majority
  // commit.
  EXPECT_EQ(a.committed, 8u * 60u);
  EXPECT_GE(b.committed, 8u * 60u * 85 / 100);
}

}  // namespace
}  // namespace faastcc::harness
