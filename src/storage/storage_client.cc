#include "storage/storage_client.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "routing/topology_service.h"
#include "sim/when_all.h"

namespace faastcc::storage {
namespace {

struct PartitionBatch {
  net::Address address;
  std::vector<size_t> input_index;  // positions in the caller's key vector
};

template <typename KeyOf>
std::vector<PartitionBatch> group_by_partition(size_t n, KeyOf&& key_of) {
  std::unordered_map<net::Address, size_t> slot;
  std::vector<PartitionBatch> batches;
  for (size_t i = 0; i < n; ++i) {
    const net::Address a = key_of(i);
    auto [it, inserted] = slot.emplace(a, batches.size());
    if (inserted) batches.push_back(PartitionBatch{a, {}});
    batches[it->second].input_index.push_back(i);
  }
  return batches;
}

// Commit-phase retry budget: net::commit_retry_policy().  Once every
// participant has prepared the transaction is decided, so the coordinator
// tries much harder than for reads before giving up; the budget must stay
// well inside the partitions' prepare_ttl so a commit retry never races
// its own lease expiry.

// Epoch-aware typed call: decodes on success and reports a wrong-epoch
// NACK distinctly from a timeout, so commit paths know whether to refresh
// the routing table before giving up.
template <typename Resp>
struct CallOutcome {
  std::optional<Resp> resp;
  bool wrong_epoch = false;
};

template <typename Resp, typename Req>
sim::Task<CallOutcome<Resp>> call_epoch(net::RpcNode& rpc, net::Address to,
                                        net::MethodId method, Req req,
                                        net::RetryPolicy policy,
                                        obs::TraceContext ctx) {
  auto r = co_await rpc.call_raw_sized_retry(to, method, rpc.encode(req),
                                             policy, ctx);
  CallOutcome<Resp> out;
  out.wrong_epoch = r.status == net::RpcStatus::kWrongEpoch;
  if (!r.ok()) co_return out;
  out.resp = decode_message<Resp>(r.payload);
  rpc.recycle(std::move(r.payload));
  co_return out;
}

// Re-aims `pending` commit batches at the current table after a topology
// refresh.  Returns true only when every key kept its slot and every batch
// still shares a single address that actually changed — i.e. a leader
// promotion landed.  The promoted follower inherits the dead leader's
// resolved-txn table (replication frames and backfills both carry it), so
// a re-sent commit dedups exactly as a retry at the old leader would.  A
// migration moves keys to a *different* slot whose owner has no such
// record; that case keeps the historical abort semantics.
bool reroute_batches(const TccTopology& topo,
                     const std::vector<KeyValue>& writes,
                     const std::vector<PartitionId>& slot_of,
                     std::vector<PartitionBatch>& pending) {
  for (auto& batch : pending) {
    net::Address next = 0;
    for (size_t idx : batch.input_index) {
      if (topo.partition_of(writes[idx].key) != slot_of[idx]) return false;
      const net::Address a = topo.address_of(writes[idx].key);
      if (next == 0) {
        next = a;
      } else if (a != next) {
        return false;
      }
    }
    if (next == batch.address) return false;  // no promotion landed yet
    batch.address = next;
  }
  return true;
}

sim::Task<void> abort_everywhere(net::RpcNode& rpc, TxnId txn,
                                 const std::vector<PartitionBatch>& batches) {
  // Best effort: a lost abort only delays the partition until its
  // prepare_ttl sweep reclaims the pending entry.
  std::vector<sim::Task<std::optional<Buffer>>> aborts;
  aborts.reserve(batches.size());
  for (const auto& batch : batches) {
    aborts.push_back(rpc.call_raw_retry(batch.address, kTccAbort,
                                        rpc.encode(TccAbortReq{txn})));
  }
  co_await sim::when_all(rpc.loop(), std::move(aborts));
}

}  // namespace

bool TccStorageClient::adopt_table(routing::TablePtr t) {
  if (t == nullptr ||
      (topology_.table != nullptr && t->epoch <= topology_.table->epoch)) {
    return false;
  }
  routing::TablePtr old = topology_.table;
  topology_ = TccTopology(std::move(t));
  rpc_.set_routing_epoch(topology_.table->epoch);
  if (table_change_cb_ && old != nullptr) {
    table_change_cb_(*old, *topology_.table);
  }
  return true;
}

sim::Task<bool> TccStorageClient::refresh_topology() {
  if (topo_service_ == 0) co_return false;
  // Collapse concurrent refreshes: whoever loses the race still sees the
  // adopted table through topology_ afterwards.
  if (refresh_inflight_) {
    co_await sim::sleep_for(rpc_.loop(), net::routing_refresh_policy()
                                             .initial_backoff);
    co_return topology_.table != nullptr;
  }
  refresh_inflight_ = true;
  auto raw = co_await rpc_.call_raw_retry(topo_service_, routing::kTopoGet,
                                          Buffer{},
                                          net::routing_refresh_policy());
  refresh_inflight_ = false;
  if (!raw.has_value()) co_return false;
  auto table = routing::make_table(
      decode_message<routing::RoutingTable>(*raw));
  rpc_.recycle(std::move(*raw));
  adopt_table(std::move(table));
  co_return true;
}

void TccStorageClient::note_wrong_epoch_retry() {
  if (metrics_ != nullptr) metrics_->counter("routing.wrong_epoch_retries").inc();
}

sim::Task<std::optional<TccReadResp>> TccStorageClient::read(
    std::vector<Key> keys, std::vector<Timestamp> cached_ts,
    Timestamp snapshot, ReadAccounting* accounting, obs::TraceContext trace) {
  assert(keys.size() == cached_ts.size());
  const net::RetryPolicy refresh = net::routing_refresh_policy();
  for (int attempt = 1;; ++attempt) {
    ReadOutcome o =
        co_await read_once(keys, cached_ts, snapshot, accounting, trace);
    if (!o.stale_routing) co_return std::move(o.resp);
    // Routed with a stale table (wrong-epoch NACK, or a partition that no
    // longer owns one of the keys): pull the current table and re-batch.
    // Never return wrong-owner entries to the caller.
    if (topo_service_ == 0 || attempt >= refresh.max_attempts) {
      co_return std::nullopt;
    }
    note_wrong_epoch_retry();
    co_await refresh_topology();
  }
}

sim::Task<TccStorageClient::ReadOutcome> TccStorageClient::read_once(
    const std::vector<Key>& keys, const std::vector<Timestamp>& cached_ts,
    Timestamp snapshot, ReadAccounting* accounting, obs::TraceContext trace) {
  auto batches = group_by_partition(
      keys.size(), [&](size_t i) { return topology_.address_of(keys[i]); });

  obs::SpanHandle span;
  obs::TraceContext ctx;
  if (tracer_ != nullptr) {
    span = tracer_->begin(trace, "storage.read", "storage", rpc_.address(),
                          rpc_.now());
    tracer_->annotate(span, "keys", static_cast<uint64_t>(keys.size()));
    tracer_->annotate(span, "partitions",
                      static_cast<uint64_t>(batches.size()));
    ctx = tracer_->context_of(span);
  }

  std::vector<sim::Task<net::RpcNode::SizedResponse>> calls;
  calls.reserve(batches.size());
  for (const auto& batch : batches) {
    TccReadReq req;
    req.snapshot = snapshot;
    for (size_t idx : batch.input_index) {
      req.keys.push_back(keys[idx]);
      req.cached_ts.push_back(cached_ts[idx]);
    }
    calls.push_back(rpc_.call_raw_sized_retry(batch.address, kTccRead,
                                              rpc_.encode(req), {}, ctx));
  }
  auto responses = co_await sim::when_all(rpc_.loop(), std::move(calls));

  uint64_t wire_bytes = 0;
  uint64_t retries = 0;
  for (const auto& r : responses) {
    wire_bytes += r.request_wire_bytes + r.response_wire_bytes;
    retries += r.attempts - 1;
  }
  const auto end_span = [&](bool failed) {
    if (tracer_ == nullptr) return;
    tracer_->annotate(span, "bytes_on_wire", wire_bytes);
    tracer_->annotate(span, "retries", retries);
    if (failed) tracer_->annotate(span, "failed", 1);
    tracer_->end(span, rpc_.now());
  };

  ReadOutcome out;
  TccReadResp merged;
  merged.entries.resize(keys.size());
  bool failed = false;
  for (size_t b = 0; b < batches.size(); ++b) {
    if (accounting != nullptr) {
      ++accounting->rpcs;
      accounting->request_bytes +=
          responses[b].request_wire_bytes - net::Message::kHeaderBytes;
      accounting->response_bytes += responses[b].payload.size();
    }
    if (!responses[b].ok()) {
      if (responses[b].status == net::RpcStatus::kWrongEpoch) {
        out.stale_routing = true;
      } else if (topology_.table != nullptr && topology_.table->replicated()) {
        // With replicated slots a timeout may mean the leader is dead — a
        // dead leader can never NACK, so the wrong-epoch signal the
        // elastic path relies on never comes.  Treat the timeout as a
        // routing signal: refresh and re-route at the promoted follower.
        // Unreplicated tables keep timeout-as-loss semantics (and their
        // exact schedules).
        out.stale_routing = true;
      }
      failed = true;
      continue;
    }
    auto resp = decode_message<TccReadResp>(responses[b].payload);
    rpc_.recycle(std::move(responses[b].payload));
    merged.stable_time = std::max(merged.stable_time, resp.stable_time);
    assert(resp.entries.size() == batches[b].input_index.size());
    for (size_t i = 0; i < resp.entries.size(); ++i) {
      // A wrong-owner entry means the partition served our epoch but had
      // already handed this key's chain away (a read that slept across the
      // handoff): the batch must be re-routed through a fresh table.
      if (resp.entries[i].status == TccReadResp::Status::kWrongOwner) {
        out.stale_routing = true;
        failed = true;
      }
      merged.entries[batches[b].input_index[i]] = std::move(resp.entries[i]);
    }
  }
  end_span(failed);
  if (!failed) out.resp = std::move(merged);
  co_return out;
}

sim::Task<std::optional<Timestamp>> TccStorageClient::commit(
    TxnId txn, std::vector<KeyValue> writes, Timestamp dep_ts,
    obs::TraceContext trace) {
  assert(!writes.empty());
  auto batches = group_by_partition(writes.size(), [&](size_t i) {
    return topology_.address_of(writes[i].key);
  });

  obs::SpanHandle span;
  obs::TraceContext ctx;
  if (tracer_ != nullptr) {
    span = tracer_->begin(trace, "storage.commit", "storage", rpc_.address(),
                          rpc_.now());
    tracer_->annotate(span, "writes", static_cast<uint64_t>(writes.size()));
    tracer_->annotate(span, "partitions",
                      static_cast<uint64_t>(batches.size()));
    ctx = tracer_->context_of(span);
  }
  const auto end_span = [&](bool committed) {
    if (tracer_ == nullptr) return;
    tracer_->annotate(span, "committed", committed ? 1 : 0);
    tracer_->end(span, rpc_.now());
  };

  auto writes_for = [&](const PartitionBatch& batch) {
    std::vector<KeyValue> out;
    out.reserve(batch.input_index.size());
    for (size_t idx : batch.input_index) out.push_back(writes[idx]);
    return out;
  };

  const auto record_commit_phase = [&] {
    if (oracle_ == nullptr) return;
    std::vector<Key> write_keys;
    write_keys.reserve(writes.size());
    for (const auto& kv : writes) write_keys.push_back(kv.key);
    oracle_->on_commit_phase(txn, std::move(write_keys));
  };

  // Original slot of every write.  A promotion keeps a key's slot (only
  // the leader address changes); a migration does not — the distinction
  // decides whether a timed-out commit may be re-sent (see
  // reroute_batches).  Re-route rounds only exist for replicated tables:
  // a dead leader cannot NACK, so a timeout is the only failover signal.
  std::vector<PartitionId> slot_of(writes.size());
  for (size_t i = 0; i < writes.size(); ++i) {
    slot_of[i] = topology_.partition_of(writes[i].key);
  }
  const int reroutes =
      (topology_.table != nullptr && topology_.table->replicated())
          ? net::routing_refresh_policy().max_attempts
          : 0;

  if (batches.size() == 1) {
    // Fast path: the owning partition assigns the timestamp itself.
    TccCommitReq req;
    req.txn = txn;
    req.commit_ts = Timestamp::min();
    req.dep_ts = dep_ts;
    req.writes = writes_for(batches[0]);
    record_commit_phase();
    for (int round = 0;; ++round) {
      auto sized = co_await rpc_.call_raw_sized_retry(
          batches[0].address, kTccCommit, rpc_.encode(req),
          net::commit_retry_policy(), ctx);
      if (!sized.ok()) {
        if (sized.status == net::RpcStatus::kWrongEpoch) {
          // The key's owner changed under us.  A commit is never re-routed
          // at the new epoch: an earlier (timed-out) attempt may already
          // have installed at the old owner and migrated with the chain,
          // and the new owner has no resolved-txn record to dedup a re-send
          // against.  Refresh so the NEXT transaction routes correctly and
          // report abort; the client retries the DAG with a fresh txn id.
          note_wrong_epoch_retry();
          co_await refresh_topology();
        } else if (round < reroutes) {
          // Timeout against a replicated slot: the leader may be dead.
          // Pull the current table and re-send at the promoted follower —
          // same slot only (reroute_batches).
          co_await refresh_topology();
          if (reroute_batches(topology_, writes, slot_of, batches)) continue;
        }
        end_span(false);
        co_return std::nullopt;
      }
      BufReader r(sized.payload);
      const TccCommitResp resp = TccCommitResp::decode(r);
      if (!resp.ok) {
        // The partition refused the (retried) commit — the txn was aborted
        // or its prepare expired there and the writes were never installed.
        rpc_.recycle(std::move(sized.payload));
        end_span(false);
        co_return std::nullopt;
      }
      const Timestamp commit_ts = get_ts(r);
      rpc_.recycle(std::move(sized.payload));
      if (oracle_ != nullptr) oracle_->on_commit_ack(txn, commit_ts, dep_ts);
      end_span(true);
      co_return commit_ts;
    }
  }

  // General path: prepare everywhere, then commit at max(prepare ts).
  std::vector<sim::Task<CallOutcome<TccPrepareResp>>> prepares;
  prepares.reserve(batches.size());
  for (const auto& batch : batches) {
    TccPrepareReq req;
    req.txn = txn;
    req.dep_ts = dep_ts;
    prepares.push_back(call_epoch<TccPrepareResp>(rpc_, batch.address,
                                                  kTccPrepare, req, {}, ctx));
  }
  auto prepare_resps = co_await sim::when_all(rpc_.loop(), std::move(prepares));
  bool failed = false;
  bool stale = false;
  Timestamp commit_ts = dep_ts.next();
  for (const auto& pr : prepare_resps) {
    // A prepare can be refused (ok=false) when the partition already
    // expired this transaction's earlier prepare and tombstoned it.
    if (!pr.resp.has_value() || !pr.resp->ok) failed = true;
    if (pr.wrong_epoch) stale = true;
    if (pr.resp.has_value()) {
      commit_ts = std::max(commit_ts, pr.resp->prepare_ts);
    }
  }
  if (failed) {
    // Like the fast path, a wrong-epoch prepare is an abort, not a
    // re-route (the refresh only serves the next transaction).  Aborts go
    // to the OLD owners — kTccAbort is deliberately not epoch-gated so the
    // cleanup reaches whoever holds the pending prepares.
    if (stale) {
      note_wrong_epoch_retry();
      co_await refresh_topology();
    }
    co_await abort_everywhere(rpc_, txn, batches);
    end_span(false);
    co_return std::nullopt;
  }

  record_commit_phase();
  std::vector<PartitionBatch> pending = batches;
  bool committed = true;
  for (int round = 0;; ++round) {
    std::vector<sim::Task<CallOutcome<TccCommitResp>>> commits;
    commits.reserve(pending.size());
    for (const auto& batch : pending) {
      TccCommitReq req;
      req.txn = txn;
      req.commit_ts = commit_ts;
      req.dep_ts = dep_ts;
      req.writes = writes_for(batch);
      commits.push_back(call_epoch<TccCommitResp>(rpc_, batch.address,
                                                  kTccCommit, req,
                                                  net::commit_retry_policy(),
                                                  ctx));
    }
    auto commit_resps =
        co_await sim::when_all(rpc_.loop(), std::move(commits));
    stale = false;
    bool refused = false;
    std::vector<PartitionBatch> timed_out;
    for (size_t b = 0; b < commit_resps.size(); ++b) {
      const auto& cr = commit_resps[b];
      if (cr.wrong_epoch) {
        stale = true;
      } else if (!cr.resp.has_value()) {
        timed_out.push_back(pending[b]);
      } else if (!cr.resp->ok) {
        // The participant refused a retried commit because it had already
        // expired/aborted the txn without installing anything.
        refused = true;
      }
    }
    if (stale) {
      note_wrong_epoch_retry();
      co_await refresh_topology();
    }
    if (stale || refused) {
      committed = false;
      break;
    }
    if (timed_out.empty()) break;
    // Exhausted even the commit budget at some participant (its prepare
    // lease will expire and abort its half).  With a replicated table a
    // timeout likely means a dead leader — refresh and re-send the
    // unacked batches at the promoted followers, same slots only.
    // Otherwise report abort; see docs/simulation.md "Fault model" for the
    // (vanishingly rare) torn outcome this trades for liveness.
    if (round >= reroutes) {
      committed = false;
      break;
    }
    co_await refresh_topology();
    if (!reroute_batches(topology_, writes, slot_of, timed_out)) {
      committed = false;
      break;
    }
    pending = std::move(timed_out);
  }
  if (!committed) {
    end_span(false);
    co_return std::nullopt;
  }
  if (oracle_ != nullptr) oracle_->on_commit_ack(txn, commit_ts, dep_ts);
  end_span(true);
  co_return commit_ts;
}

sim::Task<std::optional<Timestamp>> TccStorageClient::commit_si(
    TxnId txn, std::vector<KeyValue> writes, Timestamp dep_ts,
    Timestamp snapshot_ts, obs::TraceContext trace) {
  assert(!writes.empty());
  auto batches = group_by_partition(writes.size(), [&](size_t i) {
    return topology_.address_of(writes[i].key);
  });

  obs::SpanHandle span;
  obs::TraceContext ctx;
  if (tracer_ != nullptr) {
    span = tracer_->begin(trace, "storage.commit", "storage", rpc_.address(),
                          rpc_.now());
    tracer_->annotate(span, "writes", static_cast<uint64_t>(writes.size()));
    tracer_->annotate(span, "partitions",
                      static_cast<uint64_t>(batches.size()));
    tracer_->annotate(span, "si", 1);
    ctx = tracer_->context_of(span);
  }
  const auto end_span = [&](bool committed) {
    if (tracer_ == nullptr) return;
    tracer_->annotate(span, "committed", committed ? 1 : 0);
    tracer_->end(span, rpc_.now());
  };

  std::vector<sim::Task<CallOutcome<TccPrepareResp>>> prepares;
  prepares.reserve(batches.size());
  for (const auto& batch : batches) {
    TccPrepareReq req;
    req.txn = txn;
    req.dep_ts = dep_ts;
    req.si_mode = true;
    req.snapshot_ts = snapshot_ts;
    for (size_t idx : batch.input_index) {
      req.write_keys.push_back(writes[idx].key);
    }
    prepares.push_back(call_epoch<TccPrepareResp>(rpc_, batch.address,
                                                  kTccPrepare, req, {}, ctx));
  }
  auto prepare_resps = co_await sim::when_all(rpc_.loop(), std::move(prepares));

  bool conflict = false;
  bool stale = false;
  Timestamp commit_ts = dep_ts.next();
  for (const auto& pr : prepare_resps) {
    // An unreachable participant is treated like a conflict: abort and let
    // the caller retry with a fresh transaction.
    if (!pr.resp.has_value() || !pr.resp->ok) conflict = true;
    if (pr.wrong_epoch) stale = true;
    if (pr.resp.has_value()) {
      commit_ts = std::max(commit_ts, pr.resp->prepare_ts);
    }
  }
  if (conflict) {
    if (stale) {
      note_wrong_epoch_retry();
      co_await refresh_topology();
    }
    // Release every participant (the conflicting ones are no-ops).
    co_await abort_everywhere(rpc_, txn, batches);
    end_span(false);
    co_return std::nullopt;
  }

  if (oracle_ != nullptr) {
    std::vector<Key> write_keys;
    write_keys.reserve(writes.size());
    for (const auto& kv : writes) write_keys.push_back(kv.key);
    oracle_->on_commit_phase(txn, std::move(write_keys));
  }
  // Same timed-out-batch re-route as the general commit path: a dead
  // leader under a replicated table can only signal by timeout.
  std::vector<PartitionId> slot_of(writes.size());
  for (size_t i = 0; i < writes.size(); ++i) {
    slot_of[i] = topology_.partition_of(writes[i].key);
  }
  const int reroutes =
      (topology_.table != nullptr && topology_.table->replicated())
          ? net::routing_refresh_policy().max_attempts
          : 0;
  std::vector<PartitionBatch> pending = batches;
  bool committed = true;
  for (int round = 0;; ++round) {
    std::vector<sim::Task<CallOutcome<TccCommitResp>>> commits;
    commits.reserve(pending.size());
    for (const auto& batch : pending) {
      TccCommitReq req;
      req.txn = txn;
      req.commit_ts = commit_ts;
      req.dep_ts = dep_ts;
      for (size_t idx : batch.input_index) req.writes.push_back(writes[idx]);
      commits.push_back(call_epoch<TccCommitResp>(rpc_, batch.address,
                                                  kTccCommit, req,
                                                  net::commit_retry_policy(),
                                                  ctx));
    }
    auto commit_resps =
        co_await sim::when_all(rpc_.loop(), std::move(commits));
    stale = false;
    bool refused = false;
    std::vector<PartitionBatch> timed_out;
    for (size_t b = 0; b < commit_resps.size(); ++b) {
      const auto& cr = commit_resps[b];
      if (cr.wrong_epoch) {
        stale = true;
      } else if (!cr.resp.has_value()) {
        timed_out.push_back(pending[b]);
      } else if (!cr.resp->ok) {
        refused = true;
      }
    }
    if (stale) {
      note_wrong_epoch_retry();
      co_await refresh_topology();
    }
    if (stale || refused) {
      committed = false;
      break;
    }
    if (timed_out.empty()) break;
    if (round >= reroutes) {
      committed = false;
      break;
    }
    co_await refresh_topology();
    if (!reroute_batches(topology_, writes, slot_of, timed_out)) {
      committed = false;
      break;
    }
    pending = std::move(timed_out);
  }
  if (!committed) {
    end_span(false);
    co_return std::nullopt;
  }
  if (oracle_ != nullptr) oracle_->on_commit_ack(txn, commit_ts, dep_ts);
  end_span(true);
  co_return commit_ts;
}

sim::Task<bool> TccStorageClient::subscribe_impl(std::vector<Key> keys,
                                                 TccMethod method,
                                                 uint64_t seq) {
  auto batches = group_by_partition(
      keys.size(), [&](size_t i) { return topology_.address_of(keys[i]); });
  std::vector<sim::Task<net::RpcNode::SizedResponse>> calls;
  calls.reserve(batches.size());
  for (const auto& batch : batches) {
    SubscribeReq req;
    for (size_t idx : batch.input_index) req.keys.push_back(keys[idx]);
    req.seq = seq;
    calls.push_back(
        rpc_.call_raw_sized_retry(batch.address, method, rpc_.encode(req)));
  }
  // Best effort for liveness: a missed (un)subscribe only costs push
  // efficiency.  But the caller must know — an unconfirmed subscription
  // delivers no pushes, so open-entry promises must not lean on it.
  auto responses = co_await sim::when_all(rpc_.loop(), std::move(calls));
  bool all_acked = true;
  bool stale = false;
  for (auto& r : responses) {
    if (!r.ok()) {
      all_acked = false;
      if (r.status == net::RpcStatus::kWrongEpoch) stale = true;
    } else {
      rpc_.recycle(std::move(r.payload));
    }
  }
  if (stale) {
    // An unacked subscription stays closed (sound); refreshing here lets
    // the cache's re-home pass route the follow-up subscribe correctly.
    note_wrong_epoch_retry();
    co_await refresh_topology();
  }
  co_return all_acked;
}

sim::Task<bool> TccStorageClient::subscribe(std::vector<Key> keys,
                                            uint64_t seq) {
  co_return co_await subscribe_impl(std::move(keys), kTccSubscribe, seq);
}

sim::Task<void> TccStorageClient::unsubscribe(std::vector<Key> keys,
                                              uint64_t seq) {
  co_await subscribe_impl(std::move(keys), kTccUnsubscribe, seq);
}

namespace {

sim::Task<void> ev_subscribe_impl(net::RpcNode& rpc, const EvTopology& topo,
                                  std::vector<Key> keys, EvMethod method) {
  std::unordered_map<net::Address, SubscribeReq> reqs;
  for (Key k : keys) {
    reqs[topo.replicas[topo.partition_of(k)][0]].keys.push_back(k);
  }
  std::vector<sim::Task<std::optional<Buffer>>> calls;
  calls.reserve(reqs.size());
  for (auto& [addr, req] : reqs) {
    calls.push_back(rpc.call_raw_retry(addr, method, rpc.encode(req)));
  }
  // Best effort, like the TCC side.
  co_await sim::when_all(rpc.loop(), std::move(calls));
}

}  // namespace

sim::Task<void> EvStorageClient::subscribe(std::vector<Key> keys) {
  co_await ev_subscribe_impl(rpc_, topology_, std::move(keys), kEvSubscribe);
}

sim::Task<void> EvStorageClient::unsubscribe(std::vector<Key> keys) {
  co_await ev_subscribe_impl(rpc_, topology_, std::move(keys), kEvUnsubscribe);
}

net::Address EvStorageClient::pick_replica(PartitionId p) {
  // Reads stick to one replica per (client, partition), as Anna clients
  // cache replica addresses.  A read that needs a version accepted at the
  // other replica therefore has to wait out the anti-entropy lag — the
  // multi-round pattern of §4.1.  Writes spread across replicas.
  const auto& reps = topology_.replicas[p];
  return reps[(static_cast<size_t>(rpc_.address()) + p) % reps.size()];
}

net::Address EvStorageClient::pick_write_replica(PartitionId p) {
  const auto& reps = topology_.replicas[p];
  return reps[rng_.next_below(reps.size())];
}

sim::Task<EvStorageClient::GetResult> EvStorageClient::get(
    std::vector<Key> keys, obs::TraceContext trace) {
  // Group by partition; replica choice is per request, so repeated calls
  // for the same key may hit different replicas (and different staleness).
  std::vector<net::Address> chosen(topology_.num_partitions(), 0);
  std::vector<bool> chosen_set(topology_.num_partitions(), false);
  auto address_for = [&](Key k) {
    const PartitionId p = topology_.partition_of(k);
    if (!chosen_set[p]) {
      chosen[p] = pick_replica(p);
      chosen_set[p] = true;
    }
    return chosen[p];
  };
  auto batches = group_by_partition(
      keys.size(), [&](size_t i) { return address_for(keys[i]); });

  obs::SpanHandle span;
  obs::TraceContext ctx;
  if (tracer_ != nullptr) {
    span = tracer_->begin(trace, "storage.get", "storage", rpc_.address(),
                          rpc_.now());
    tracer_->annotate(span, "keys", static_cast<uint64_t>(keys.size()));
    ctx = tracer_->context_of(span);
  }

  std::vector<sim::Task<net::RpcNode::SizedResponse>> calls;
  calls.reserve(batches.size());
  for (const auto& batch : batches) {
    EvGetReq req;
    for (size_t idx : batch.input_index) req.keys.push_back(keys[idx]);
    calls.push_back(rpc_.call_raw_sized_retry(batch.address, kEvGet,
                                              rpc_.encode(req), {}, ctx));
  }
  auto responses = co_await sim::when_all(rpc_.loop(), std::move(calls));

  GetResult out;
  out.items.resize(keys.size());
  for (size_t b = 0; b < batches.size(); ++b) {
    if (!responses[b].ok()) {
      out.failed = true;
      continue;
    }
    out.request_bytes +=
        responses[b].request_wire_bytes - net::Message::kHeaderBytes;
    out.response_bytes += responses[b].payload.size();
    auto resp = decode_message<EvGetResp>(responses[b].payload);
    rpc_.recycle(std::move(responses[b].payload));
    global_cut_ = std::max(global_cut_, resp.global_cut);
    // Found items arrive in request order but absent keys are omitted;
    // match them back by key.
    size_t f = 0;
    for (size_t i = 0; i < batches[b].input_index.size() && f < resp.found.size();
         ++i) {
      const size_t idx = batches[b].input_index[i];
      if (resp.found[f].key == keys[idx]) {
        out.items[idx] = std::move(resp.found[f]);
        ++f;
      }
    }
  }
  if (tracer_ != nullptr) {
    uint64_t wire_bytes = 0;
    uint64_t retries = 0;
    for (const auto& r : responses) {
      wire_bytes += r.request_wire_bytes + r.response_wire_bytes;
      retries += r.attempts - 1;
    }
    tracer_->annotate(span, "bytes_on_wire", wire_bytes);
    tracer_->annotate(span, "retries", retries);
    if (out.failed) tracer_->annotate(span, "failed", 1);
    tracer_->end(span, rpc_.now());
  }
  co_return out;
}

sim::Task<std::optional<std::vector<EvVersion>>> EvStorageClient::put(
    std::vector<EvItem> items, obs::TraceContext trace) {
  auto batches = group_by_partition(items.size(), [&](size_t i) {
    return pick_write_replica(topology_.partition_of(items[i].key));
  });
  obs::SpanHandle span;
  obs::TraceContext ctx;
  if (tracer_ != nullptr) {
    span = tracer_->begin(trace, "storage.put", "storage", rpc_.address(),
                          rpc_.now());
    tracer_->annotate(span, "items", static_cast<uint64_t>(items.size()));
    ctx = tracer_->context_of(span);
  }
  const auto end_span = [&](bool ok) {
    if (tracer_ == nullptr) return;
    if (!ok) tracer_->annotate(span, "failed", 1);
    tracer_->end(span, rpc_.now());
  };
  std::vector<sim::Task<std::optional<EvPutResp>>> calls;
  calls.reserve(batches.size());
  for (const auto& batch : batches) {
    EvPutReq req;
    for (size_t idx : batch.input_index) req.items.push_back(items[idx]);
    calls.push_back(rpc_.call_with_retry<EvPutResp>(batch.address, kEvPut, req,
                                                    net::commit_retry_policy(),
                                                    ctx));
  }
  auto responses = co_await sim::when_all(rpc_.loop(), std::move(calls));

  std::vector<EvVersion> versions(items.size());
  for (size_t b = 0; b < batches.size(); ++b) {
    if (!responses[b].has_value()) {
      end_span(false);
      co_return std::nullopt;
    }
    global_cut_ = std::max(global_cut_, responses[b]->global_cut);
    for (size_t i = 0; i < batches[b].input_index.size(); ++i) {
      versions[batches[b].input_index[i]] = responses[b]->versions[i];
    }
  }
  end_span(true);
  co_return versions;
}

}  // namespace faastcc::storage
