// Figure 3: contribution of FaaSTCC's mechanisms.  Three configurations at
// Zipf 1.0: fixed snapshot without promises, fixed snapshot with promises,
// and the full system (promises + snapshot intervals).  Latency normalized
// to the first configuration.  Paper: 1.00 / 0.71 / 0.48.
#include "bench_util.h"

using namespace faastcc;
using namespace faastcc::bench;

int main() {
  print_preamble("Figure 3", "impact of promises and snapshot intervals");

  struct Config {
    const char* name;
    bool use_promises;
    bool use_interval;
    double paper_normalized;
  };
  const Config configs[] = {
      {"No-promise / Fixed-snapshot", false, false, 1.00},
      {"Promise / Fixed-snapshot", true, false, 0.71},
      {"Promise / Snapshot-interval", true, true, 0.48},
  };

  double base = 0;
  Table table({"configuration", "median latency (ms)", "normalized",
               "paper normalized"});
  for (const Config& c : configs) {
    ExperimentConfig cfg = base_config(SystemKind::kFaasTcc, 1.0, false);
    cfg.faastcc.use_promises = c.use_promises;
    cfg.faastcc.use_interval = c.use_interval;
    const SummaryStats s = run_or_load(cfg);
    if (base == 0) base = s.latency_med_ms;
    table.add_row({c.name, fmt(s.latency_med_ms, 2),
                   fmt(s.latency_med_ms / base, 2),
                   fmt(c.paper_normalized, 2)});
  }
  table.print();
  return 0;
}
