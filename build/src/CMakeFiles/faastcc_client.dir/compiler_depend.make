# Empty compiler generated dependencies file for faastcc_client.
# This may be replaced when dependencies are built.
