# Empty compiler generated dependencies file for faastcc_faas.
# This may be replaced when dependencies are built.
