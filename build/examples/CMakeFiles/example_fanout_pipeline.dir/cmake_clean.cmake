file(REMOVE_RECURSE
  "CMakeFiles/example_fanout_pipeline.dir/fanout_pipeline.cpp.o"
  "CMakeFiles/example_fanout_pipeline.dir/fanout_pipeline.cpp.o.d"
  "example_fanout_pipeline"
  "example_fanout_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_fanout_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
