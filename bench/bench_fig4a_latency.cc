// Figure 4a: end-to-end DAG latency (median and P99) of
// HydroCache-Static, HydroCache-Dynamic and FaaSTCC across workload skews.
#include "bench_util.h"

using namespace faastcc;
using namespace faastcc::bench;

int main() {
  print_preamble("Figure 4a", "latency: median and P99 (ms)");

  struct Row {
    const char* name;
    SystemKind system;
    bool static_txns;
    // paper values per zipf {1.0, 1.25, 1.5}: {med, p99}
    double paper[3][2];
  };
  const Row rows[] = {
      {"HydroCache-Static", SystemKind::kHydroCache, true,
       {{9.7, 18.7}, {11.4, 24.5}, {13.4, 28.8}}},
      {"HydroCache-Dynamic", SystemKind::kHydroCache, false,
       {{51.4, 86.1}, {25.6, 51.7}, {17.7, 37.6}}},
      {"FaaSTCC", SystemKind::kFaasTcc, false,
       {{10.2, 14.8}, {12.0, 16.4}, {12.4, 16.8}}},
  };
  const double zipfs[] = {1.0, 1.25, 1.5};

  Table table({"system", "zipf", "median", "p99", "paper median",
               "paper p99", "abort %"});
  for (const Row& row : rows) {
    for (int z = 0; z < 3; ++z) {
      const SummaryStats s =
          run_or_load(base_config(row.system, zipfs[z], row.static_txns));
      table.add_row({row.name, fmt(zipfs[z], 2), fmt(s.latency_med_ms, 1),
                     fmt(s.latency_p99_ms, 1), fmt(row.paper[z][0], 1),
                     fmt(row.paper[z][1], 1), fmt(100 * s.abort_rate, 1)});
    }
  }
  table.print();
  return 0;
}
