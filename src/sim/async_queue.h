// Unbounded single-process async queue: producers push synchronously,
// consumers pop as coroutines.  Backs the executor pools of compute nodes.
#pragma once

#include <deque>

#include "sim/future.h"
#include "sim/task.h"

namespace faastcc::sim {

template <typename T>
class AsyncQueue {
 public:
  explicit AsyncQueue(EventLoop& loop) : loop_(loop) {}

  void push(T item) {
    if (!waiters_.empty()) {
      Promise<T> p = std::move(waiters_.front());
      waiters_.pop_front();
      p.set_value(std::move(item));
      return;
    }
    items_.push_back(std::move(item));
  }

  Task<T> pop() {
    if (!items_.empty()) {
      T item = std::move(items_.front());
      items_.pop_front();
      co_return item;
    }
    Promise<T> p(loop_);
    auto future = p.get_future();
    waiters_.push_back(std::move(p));
    co_return co_await std::move(future);
  }

  size_t size() const { return items_.size(); }
  size_t waiting_consumers() const { return waiters_.size(); }

 private:
  EventLoop& loop_;
  std::deque<T> items_;
  std::deque<Promise<T>> waiters_;
};

}  // namespace faastcc::sim
