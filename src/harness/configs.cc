#include "harness/configs.h"

#include <algorithm>

namespace faastcc::harness {

namespace {

// Every fault matrix stays inside the protocol's operating envelope
// (coordinators retry past loss; prepare TTLs comfortably exceed the
// retry horizon), so under any non-chaos config a consistency violation
// is always a bug, never tuning noise.
const std::vector<NamedConfig> kConfigs = {
    {"clean", "no faults (oracle sanity baseline)", false,
     [](ClusterParams&) {}},
    {"lossy", "2% loss + 1% duplication", false,
     [](ClusterParams& p) {
       p.faults.loss_prob = 0.02;
       p.faults.dup_prob = 0.01;
     }},
    {"spikes-ttl", "delay spikes + short prepare TTL", false,
     [](ClusterParams& p) {
       p.faults.loss_prob = 0.01;
       p.faults.delay_spike_prob = 0.01;
       p.faults.delay_spike = milliseconds(20);
       p.tcc.prepare_ttl = milliseconds(250);
     }},
    {"tiny-cache", "8-entry caches, hot keys, loss", false,
     [](ClusterParams& p) {
       p.cache_capacity = 8;
       p.workload.zipf = 1.2;
       p.faults.loss_prob = 0.01;
     }},
    {"crashy", "partition + cache crash windows", false,
     [](ClusterParams& p) {
       // Partition 1 (addr 101) blacks out mid-run, then cache 0 (addr
       // 3000); both well inside the measured phase (warmup 250 ms).
       p.faults.crashes.push_back(net::CrashWindow{101, milliseconds(300),
                                                   milliseconds(360)});
       p.faults.crashes.push_back(net::CrashWindow{3000, milliseconds(420),
                                                   milliseconds(470)});
       p.faults.dag_timeout = milliseconds(500);
     }},
    {"kill-leader", "replicated slots; leader killed for good mid-run", false,
     [](ClusterParams& p) {
       // Leader of partition 1 (addr 101) goes dark at 300 ms and never
       // returns: its follower (addr 6004) must win promotion, seal the
       // handoff floor and take over the slot.  Commit-acked writes from
       // before the kill must survive — the oracle's durability check.
       p.replication.factor = 1;
       p.faults.crashes.push_back(
           net::CrashWindow{101, milliseconds(300), seconds(3600)});
       p.faults.dag_timeout = milliseconds(500);
     }},
    {"kill-leader-lossy",
     "leader kill + 2% loss + 1% duplication (replication stream replay)",
     false,
     [](ClusterParams& p) {
       // Two followers per slot: loss exercises demote-and-backfill,
       // duplication exercises the at-most-once frame dedup, and the kill
       // exercises promotion arbitration between the two candidates.
       p.replication.factor = 2;
       p.faults.crashes.push_back(
           net::CrashWindow{101, milliseconds(300), seconds(3600)});
       p.faults.loss_prob = 0.02;
       p.faults.dup_prob = 0.01;
       p.faults.dag_timeout = milliseconds(500);
     }},
    {"elastic", "mid-run scale-out +2 partitions, no faults", false,
     [](ClusterParams& p) {
       p.elastic.add_partitions = 2;
       p.elastic.at = milliseconds(300);
     }},
    {"elastic-lossy", "scale-out under 2% loss + 1% duplication", false,
     [](ClusterParams& p) {
       p.elastic.add_partitions = 2;
       p.elastic.at = milliseconds(300);
       p.faults.loss_prob = 0.02;
       p.faults.dup_prob = 0.01;
     }},
    {"elastic-dup", "scale-out under 3% duplication (handoff replay paths)",
     false,
     [](ClusterParams& p) {
       p.elastic.add_partitions = 2;
       p.elastic.at = milliseconds(300);
       p.faults.dup_prob = 0.03;
     }},
    {"tree-lossy",
     "tree stabilization + coalesced pushes under 2% loss + 1% duplication",
     false,
     [](ClusterParams& p) {
       // Fanout 2 over the fuzzer's small cells gives the tree real depth
       // (interior nodes relaying folds), exercising up/down staleness.
       p.tcc.stab_topology = storage::StabTopology::kTree;
       p.tcc.tree_fanout = 2;
       p.tcc.push_coalescing = true;
       p.faults.loss_prob = 0.02;
       p.faults.dup_prob = 0.01;
     }},
    {"tree-elastic",
     "tree stabilization, scale-out +2 partitions under 1% loss", false,
     [](ClusterParams& p) {
       // Joiners land below node 1 (fanout 2), turning a leaf interior
       // mid-run: membership-tagged folds must re-arm the barrier.
       p.tcc.stab_topology = storage::StabTopology::kTree;
       p.tcc.tree_fanout = 2;
       p.tcc.push_coalescing = true;
       p.elastic.add_partitions = 2;
       p.elastic.at = milliseconds(300);
       p.faults.loss_prob = 0.01;
     }},
    {"elastic-in", "mid-run scale-in -2 partitions, no faults", false,
     [](ClusterParams& p) {
       p.elastic.remove_partitions = 2;
       p.elastic.remove_at = milliseconds(300);
     }},
    {"elastic-in-lossy", "scale-in under 2% loss + 1% duplication", false,
     [](ClusterParams& p) {
       p.elastic.remove_partitions = 2;
       p.elastic.remove_at = milliseconds(300);
       p.faults.loss_prob = 0.02;
       p.faults.dup_prob = 0.01;
     }},
    {"autoscale-spike",
     "bursty load; autoscaler rides the spike out and back in", false,
     [](ClusterParams& p) {
       p.workload.pattern = workload::LoadPattern::kBursty;
       p.workload.pattern_period = milliseconds(600);
       // A deep trough (think >> DAG latency) is what lets the window p99
       // fall back under the low-water mark so the scale-in leg fires.
       p.workload.think_time = milliseconds(20);
       p.autoscale.max_partitions = p.partitions + 2;
       p.autoscale.min_partitions = p.partitions > 2 ? p.partitions - 2 : 1;
       p.autoscale.check_period = milliseconds(50);
       p.autoscale.high_p99_ms = 8.0;
       p.autoscale.low_p99_ms = 6.0;
       p.autoscale.breach_checks = 2;
       p.autoscale.cooldown = milliseconds(300);
     }},
    {"chaos-lost-ack", "REGRESSION: commits acked without install", true,
     [](ClusterParams& p) { p.tcc.chaos_drop_install = true; }},
    {"chaos-prewarm", "REGRESSION: prewarm entries open unsubscribed", true,
     [](ClusterParams& p) {
       p.faastcc_cache.chaos_prewarm_open = true;
       p.cache_capacity = 32;
       p.workload.zipf = 1.2;
     }},
};

}  // namespace

const std::vector<NamedConfig>& all_configs() { return kConfigs; }

const NamedConfig* find_config(std::string_view name) {
  for (const NamedConfig& c : kConfigs) {
    if (name == c.name) return &c;
  }
  return nullptr;
}

void list_configs(std::FILE* out) {
  for (const NamedConfig& c : kConfigs) {
    std::fprintf(out, "  %-16s %s\n", c.name, c.what);
  }
}

void apply_fuzz_shape(ClusterParams& p, uint64_t seed) {
  switch (seed % 3) {
    case 0:  // short chains, uniform-ish keys
      p.workload.dag_size = 2;
      p.workload.zipf = 0.8;
      break;
    case 1:  // deep chains (long dependency tails)
      p.workload.dag_size = 6;
      break;
    default:  // static transactions on a hot key set
      p.workload.dag_size = 4;
      p.workload.zipf = std::max(p.workload.zipf, 1.1);
      p.workload.static_txns = true;
      break;
  }
}

}  // namespace faastcc::harness
