// RunSpec: "a run" as data.
//
// Every driver in the repo (faastcc_sim, tcc_fuzz, tcc_sweep, the bench
// binaries) used to construct ClusterParams by hand, which meant there was
// no programmatic way to describe a run, ship it to a worker process, or
// store it in a sweep plan.  RunSpec fixes that: it wraps ClusterParams
// (seed and the oracle/trace toggles live inside) plus an optional named
// config from harness::configs, with an exact JSON round trip:
//
//   spec == from_json(parse(to_json(spec)))         (field for field)
//   text == to_json(from_json(parse(text)))          (for canonical text)
//
// Encoding rules: every tunable field is written, grouped by subsystem;
// decode accepts any subset (absent fields keep their defaults) but
// rejects unknown keys and ill-typed values with SpecError, so a typo in a
// plan file fails loudly instead of silently running the default.
// Durations are serialized in microseconds (the native unit); SIZE_MAX
// capacities as the string "inf".
//
// run_one(spec) is the single library entry point every driver funnels
// through: build the cluster, run it, summarize, check the oracle, export
// the trace — and return all of it as plain data.
#pragma once

#include <stdexcept>
#include <string>

#include "harness/json.h"
#include "harness/summary.h"

namespace faastcc::harness {

class SpecError : public std::runtime_error {
 public:
  explicit SpecError(const std::string& what) : std::runtime_error(what) {}
};

struct RunSpec {
  ClusterParams params;
  // Named config from harness::configs applied on top of `params` by
  // resolve() (empty = none).  Stored by name so a spec file stays
  // readable and the config table stays the single source of truth.
  std::string config;

  // Applies the named config (throws SpecError on an unknown name) and
  // returns the final ClusterParams.
  ClusterParams resolve() const;
};

// Canonical JSON encoding (two-space indent, fixed field order).
std::string to_json(const RunSpec& spec);

// Strict decode; throws SpecError with a "<group>.<field>: why" message.
RunSpec spec_from_json(const json::Value& doc);
RunSpec spec_from_text(std::string_view text);

// Overlay decode: applies only the fields present in `doc` onto `spec`.
// This is what sweep-plan axis patches use; full decode is overlay onto a
// default spec.
void apply_spec_patch(RunSpec& spec, const json::Value& doc);

// Everything a driver can want back from one run.  All fields except
// `trace_json` are deterministic per spec.
struct RunOutput {
  RunResult result;
  SummaryStats summary;

  // Consistency oracle (populated when params.check_consistency and the
  // system supports the oracle).
  bool checked = false;
  size_t violations = 0;
  std::string violation_kind;  // first violation's kind name ("" if clean)
  std::string oracle_report;   // human-readable counterexample ("" if clean)
  size_t oracle_installs = 0;
  size_t oracle_reads = 0;
  size_t oracle_commits = 0;

  // Chrome-trace JSON export (empty unless params.trace.enabled).
  std::string trace_json;
  uint64_t trace_spans_recorded = 0;
  uint64_t trace_spans_dropped = 0;

  uint64_t messages_sent = 0;  // network totals (schedule checksum)
};

// Builds the cluster described by spec.resolve(), runs it to completion
// and collects every output.  Throws SpecError if the spec is unsatisfiable
// (e.g. check_consistency on a system without an oracle).
RunOutput run_one(const RunSpec& spec);

// The per-run record the sweep runner merges: a canonical, deterministic
// JSON object of the run's metrics, summary and verdicts.  Field order and
// number formatting are fixed so any process (serial driver, forked
// worker) serializing the same run produces identical bytes.
std::string run_output_to_json(const RunOutput& out);

// Parses SystemKind names ("faastcc", "hydrocache", "cloudburst").
bool parse_system(std::string_view name, SystemKind* out);
const char* system_spec_name(SystemKind s);

}  // namespace faastcc::harness
