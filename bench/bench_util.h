// Shared helpers for the per-figure benchmark binaries.
#pragma once

#include <cstdio>
#include <string>

#include "harness/summary.h"
#include "harness/table.h"

namespace faastcc::bench {

using harness::ExperimentConfig;
using harness::fmt;
using harness::run_or_load;
using harness::SummaryStats;
using harness::SystemKind;
using harness::Table;

inline ExperimentConfig base_config(SystemKind system, double zipf,
                                    bool static_txns) {
  ExperimentConfig cfg;
  cfg.system = system;
  cfg.zipf = zipf;
  cfg.static_txns = static_txns;
  return cfg;
}

inline void print_preamble(const char* figure, const char* what) {
  std::printf("%s — %s\n", figure, what);
  std::printf(
      "(simulation reproduction; absolute values are calibrated to the "
      "paper's testbed scale,\n the comparison shape is the result — see "
      "EXPERIMENTS.md)\n");
}

}  // namespace faastcc::bench
