#include "sim/event_loop.h"

#include <algorithm>
#include <utility>

namespace faastcc::sim {

EventLoop::~EventLoop() {
  for (Event& e : heap_) {
    if (e.drop != nullptr) e.drop(e.ctx);
  }
}

void EventLoop::run_closure(void* ctx) {
  auto* fn = static_cast<std::function<void()>*>(ctx);
  (*fn)();
  delete fn;
}

void EventLoop::drop_closure(void* ctx) {
  delete static_cast<std::function<void()>*>(ctx);
}

void EventLoop::schedule_at(SimTime t, std::function<void()> fn) {
  push(t, &EventLoop::run_closure, &EventLoop::drop_closure,
       new std::function<void()>(std::move(fn)));
}

void EventLoop::push(SimTime t, void (*run)(void*), void (*drop)(void*),
                     void* ctx) {
  if (t < now_) t = now_;
  Event e{t, next_seq_++, run, drop, ctx};
  // Sift up in the 4-ary heap.
  size_t i = heap_.size();
  heap_.push_back(e);
  while (i > 0) {
    const size_t parent = (i - 1) / kArity;
    if (!before(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

EventLoop::Event EventLoop::pop_min() {
  Event top = heap_.front();
  Event last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    // Sift the former last element down from the root.
    size_t i = 0;
    const size_t n = heap_.size();
    for (;;) {
      const size_t first_child = i * kArity + 1;
      if (first_child >= n) break;
      size_t best = first_child;
      const size_t end = std::min(first_child + kArity, n);
      for (size_t c = first_child + 1; c < end; ++c) {
        if (before(heap_[c], heap_[best])) best = c;
      }
      if (!before(heap_[best], last)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = last;
  }
  return top;
}

bool EventLoop::run_one() {
  if (heap_.empty()) return false;
  Event e = pop_min();
  now_ = e.time;
  ++processed_;
  e.run(e.ctx);
  return true;
}

void EventLoop::run() {
  stopped_ = false;
  while (!stopped_ && run_one()) {
  }
}

void EventLoop::run_until(SimTime t) {
  stopped_ = false;
  while (!stopped_ && !heap_.empty() && heap_.front().time <= t) {
    run_one();
  }
  if (now_ < t) now_ = t;
}

}  // namespace faastcc::sim
