// System-independent transaction interface used by function bodies.
//
// Each of the three systems (FaaSTCC, HydroCache, eventually consistent
// Cloudburst) implements a FunctionTxn — the per-function view of the
// enclosing DAG transaction — and a SystemAdapter that creates them on a
// compute node from the contexts handed down by upstream functions.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "common/serialize.h"
#include "common/types.h"
#include "obs/trace.h"
#include "sim/task.h"

namespace faastcc::client {

// Thrown by function bodies to abort the enclosing DAG transaction from
// application logic; the runtime converts it into the abort path.
struct TxnAbort {};

// Static description of the enclosing DAG transaction, as known to the
// platform when a function is invoked.
struct TxnInfo {
  TxnId txn_id = 0;
  // Static transactions declare their full read/write set up front; the
  // HydroCache baseline exploits this to prune metadata (§6.3).  FaaSTCC
  // ignores it: its algorithm is identical for both (§6.3, §6.7).
  bool is_static = false;
  std::vector<Key> declared_read_set;
  std::vector<Key> declared_write_set;
  // Trace context of the enclosing function execution; read/commit spans
  // opened by the client library parent here.
  obs::TraceContext trace;
};

class FunctionTxn {
 public:
  virtual ~FunctionTxn() = default;

  // Reads `keys` within the transaction.  Returns std::nullopt when the
  // transaction must abort (no consistent version obtainable).  Values
  // come back in key order; a key never written reads as an empty Value.
  virtual sim::Task<std::optional<std::vector<Value>>> read(
      std::vector<Key> keys) = 0;

  // Buffers a write; durable only if the sink commits.
  virtual void write(Key k, Value v) = 0;

  // Serialized context handed to downstream functions (snapshot interval +
  // write set, dependency map + write set, ...).
  virtual Buffer export_context() const = 0;

  // Size of the pure coordination metadata inside the context — the
  // quantity Fig. 5 reports (16 bytes for FaaSTCC; the dependency map for
  // HydroCache).  Excludes the write set, which both systems carry alike.
  virtual size_t metadata_bytes() const = 0;

  // Sink only: makes the write set durable and atomically visible.
  // Returns the session blob to thread into the client's next DAG, or
  // std::nullopt on abort.
  virtual sim::Task<std::optional<Buffer>> commit() = 0;
};

class SystemAdapter {
 public:
  virtual ~SystemAdapter() = default;

  // Creates the transaction state for one function execution.
  //   * root functions: `parent_contexts` empty, `session` from the
  //     client's previous commit (empty on the first request);
  //   * interior functions: one context per parent (merged per Eq. 3 /
  //     dependency union).
  // Returns nullptr when the parent contexts are mutually inconsistent
  // and the DAG must abort.
  // Both blobs are taken by value: adapters that can represent the decoded
  // context as a view of the wire bytes (see HydroAdapter) assume
  // ownership of the buffers instead of copying out of them.
  virtual std::unique_ptr<FunctionTxn> open(const TxnInfo& info,
                                            std::vector<Payload> parent_contexts,
                                            Payload session) = 0;
};

}  // namespace faastcc::client
