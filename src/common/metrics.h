// Per-experiment metric collection.
//
// One Metrics instance is shared by every component of a simulated cluster
// (the simulation is single-threaded, so plain members suffice).  The
// fields map one-to-one onto the paper's reported quantities.
//
// Two access styles share the same storage:
//   * typed members (`metrics.dag_commits.inc()`) — the original flat
//     struct, kept so existing call sites and RunResult comparisons work;
//   * the registry (`metrics.counter("dag.commits")`,
//     `metrics.histogram("dag.latency_ms")`) — name-addressed handles.
//     Well-known names resolve to the typed members; unknown names create
//     dynamic entries on first use (deque-backed, so handles stay stable).
// Iteration (each_counter / each_histogram) visits the well-known metrics
// in declaration order, then dynamic ones in registration order — a
// deterministic order for bit-identical JSON output.
#pragma once

#include <deque>
#include <functional>
#include <string>
#include <string_view>
#include <utility>

#include "common/stats.h"

namespace faastcc {

struct Metrics {
  // End-to-end DAG latency of committed transactions (Fig. 4a, 9, 10, 11).
  Samples dag_latency_ms;
  // Latency of aborted attempts, kept separately for analysis.
  Samples aborted_latency_ms;
  // Bytes of coordination metadata passed function-to-function (Fig. 5):
  // snapshot interval + write set for FaaSTCC, dependency map + write set
  // for HydroCache.  One sample per DAG edge traversal.
  Samples metadata_bytes;
  // Communication rounds per storage-read episode (Fig. 6).  A FaaSTCC
  // cache satisfies any read episode in exactly one round; HydroCache may
  // retry until it assembles a causally consistent result.
  Samples storage_rounds;
  // Request+response payload bytes per storage-read episode (Fig. 7).
  Samples storage_read_bytes;

  Counter dag_attempts;
  Counter dag_commits;
  Counter dag_aborts;
  // DAG attempts abandoned by the client-side watchdog (fault injection:
  // a lost one-way trigger/completion is only recoverable by retrying).
  Counter dag_timeouts;
  // Cache effectiveness (§6.3: 60 % / 70 % cache-served functions).
  Counter cache_lookups;
  Counter cache_hits;
  // Read episodes that had to touch the storage layer at all.
  Counter storage_episodes;

  // Gauges sampled at the end of a run.
  size_t cache_bytes_total = 0;
  size_t cache_keys_total = 0;

  // Fault-injection gauges, copied from net::Network at the end of a run.
  // All zero when the fault layer is disabled.
  uint64_t net_messages_lost = 0;
  uint64_t net_messages_duplicated = 0;
  uint64_t net_delay_spikes = 0;
  uint64_t net_crash_dropped = 0;
  uint64_t net_rpc_timeouts = 0;
  uint64_t net_rpc_retries = 0;

  // ---- Registry API -----------------------------------------------------
  // Handles are references into this instance: valid for its lifetime, and
  // copied by value when the instance is copied (RunResult snapshots).

  Counter& counter(std::string_view name);
  Samples& histogram(std::string_view name);

  // nullptr when `name` is neither well-known nor registered.  Never
  // creates an entry (safe on const RunResult snapshots).
  const Counter* find_counter(std::string_view name) const;
  const Samples* find_histogram(std::string_view name) const;

  // Deterministic iteration: well-known metrics in declaration order, then
  // dynamic metrics in registration order.
  void each_counter(
      const std::function<void(const char*, const Counter&)>& fn) const;
  void each_histogram(
      const std::function<void(const char*, const Samples&)>& fn) const;

  double cache_hit_rate() const {
    const auto l = cache_lookups.value();
    return l == 0 ? 0.0
                  : static_cast<double>(cache_hits.value()) /
                        static_cast<double>(l);
  }
  double abort_rate() const {
    const auto a = dag_attempts.value();
    return a == 0 ? 0.0
                  : static_cast<double>(dag_aborts.value()) /
                        static_cast<double>(a);
  }

  // Dynamic registry storage (deque: growth never invalidates handles).
  // Public so Metrics stays copyable as a plain value; use the registry
  // accessors instead of touching these directly.
  std::deque<std::pair<std::string, Counter>> dynamic_counters_;
  std::deque<std::pair<std::string, Samples>> dynamic_histograms_;
};

}  // namespace faastcc
