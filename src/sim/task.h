// Lazy coroutine task for simulated processes.
//
// Every logical thread in the cluster — an executor running a function, a
// storage partition serving a request, a closed-loop client — is a Task.
// Tasks are lazy (they start when awaited) and resume their awaiter through
// symmetric transfer, so arbitrarily long await chains use constant stack.
#pragma once

#include <cassert>
#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

namespace faastcc::sim {

template <typename T>
class Task;

namespace detail {

template <typename T>
struct TaskPromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr exception;

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename P>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<P> h) noexcept {
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }

  void unhandled_exception() noexcept { exception = std::current_exception(); }
};

template <typename T>
struct TaskPromise : TaskPromiseBase<T> {
  std::optional<T> value;

  Task<T> get_return_object();
  template <typename U>
  void return_value(U&& v) {
    value.emplace(std::forward<U>(v));
  }
  T take() {
    if (this->exception) std::rethrow_exception(this->exception);
    return std::move(*value);
  }
};

template <>
struct TaskPromise<void> : TaskPromiseBase<void> {
  Task<void> get_return_object();
  void return_void() noexcept {}
  void take() {
    if (exception) std::rethrow_exception(exception);
  }
};

}  // namespace detail

template <typename T = void>
class [[nodiscard]] Task {
 public:
  using promise_type = detail::TaskPromise<T>;
  using Handle = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(Handle h) : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return static_cast<bool>(handle_); }

  // Awaiting a task starts it and suspends the awaiter until it completes.
  auto operator co_await() && noexcept {
    struct Awaiter {
      Handle handle;
      bool await_ready() const noexcept { return handle.done(); }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> awaiting) noexcept {
        handle.promise().continuation = awaiting;
        return handle;  // symmetric transfer into the task body
      }
      T await_resume() { return handle.promise().take(); }
    };
    assert(handle_);
    return Awaiter{handle_};
  }

  // Releases ownership; used by detach() below.
  Handle release() { return std::exchange(handle_, {}); }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  Handle handle_;
};

namespace detail {

template <typename T>
Task<T> TaskPromise<T>::get_return_object() {
  return Task<T>(std::coroutine_handle<TaskPromise<T>>::from_promise(*this));
}

inline Task<void> TaskPromise<void>::get_return_object() {
  return Task<void>(
      std::coroutine_handle<TaskPromise<void>>::from_promise(*this));
}

// Fire-and-forget wrapper used by spawn(); destroys itself on completion.
struct Detached {
  struct promise_type {
    Detached get_return_object() noexcept { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    [[noreturn]] void unhandled_exception() noexcept { std::terminate(); }
  };
};

inline Detached spawn_impl(Task<void> task) { co_await std::move(task); }

}  // namespace detail

// Starts `task` running as an independent simulated process.  Exceptions
// escaping a spawned task terminate the program: simulated components
// signal failure through return values, never through stray exceptions.
inline void spawn(Task<void> task) { detail::spawn_impl(std::move(task)); }

}  // namespace faastcc::sim
