// Sample collection and percentile reporting.
//
// Every experiment in the paper reports medians and 99th percentiles.
// Sample counts per run are small enough (tens of thousands) that storing
// raw samples and selecting exactly is both simplest and most faithful.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace faastcc {

class Samples {
 public:
  void add(double v) { values_.push_back(v); }

  size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  double mean() const;
  double min() const;
  double max() const;
  double sum() const;

  // Exact percentile by selection; p in [0, 100].  Returns 0 when empty.
  double percentile(double p) const;
  double median() const { return percentile(50.0); }
  double p99() const { return percentile(99.0); }

  void merge(const Samples& other);
  void clear() { values_.clear(); }

  const std::vector<double>& raw() const { return values_; }

 private:
  std::vector<double> values_;
};

// A monotonically increasing named counter.
class Counter {
 public:
  void inc(uint64_t by = 1) { value_ += by; }
  uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  uint64_t value_ = 0;
};

}  // namespace faastcc
