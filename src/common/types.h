// Basic identifier and time types shared by every FaaSTCC module.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>

namespace faastcc {

// Simulated time, in microseconds since simulation start.
using SimTime = int64_t;
using Duration = int64_t;

constexpr Duration microseconds(int64_t us) { return us; }
constexpr Duration milliseconds(int64_t ms) { return ms * 1000; }
constexpr Duration seconds(int64_t s) { return s * 1000 * 1000; }

constexpr double to_millis(Duration d) { return static_cast<double>(d) / 1000.0; }
constexpr double to_seconds(Duration d) { return static_cast<double>(d) / 1e6; }

// Identifies a process in the simulated cluster (storage partition,
// compute node, scheduler, client, ...).  Dense, assigned by the cluster
// builder.
using NodeId = uint32_t;

// Identifies a storage partition (shard) within the storage layer.
using PartitionId = uint32_t;

// Keys are dense integers; the workload generator draws them from a Zipf
// distribution over [0, num_keys).  A dense key space keeps serialized
// metadata sizes exact (8 bytes/key), mirroring the paper's accounting.
using Key = uint64_t;

// Values are opaque immutable byte strings (the paper uses 8-byte
// payloads), shared by reference count: assigning or copying a Value bumps
// a refcount instead of deep-copying the bytes, so a payload travelling
// mv_store -> partition -> cache -> client is allocated once.  The
// string-like read surface (size/empty/view/iteration/comparison) is what
// the codec and the byte-accounting paths consume — `size()` is the same
// number as before, so Fig. 5/7/8 wire and cache byte counts are
// unaffected.  An empty value holds no allocation at all.
class Value {
 public:
  Value() = default;
  Value(std::string s)  // NOLINT(google-explicit-constructor)
      : data_(s.empty() ? nullptr
                        : std::make_shared<const std::string>(std::move(s))) {}
  Value(std::string_view s)  // NOLINT(google-explicit-constructor)
      : Value(std::string(s)) {}
  Value(const char* s)  // NOLINT(google-explicit-constructor)
      : Value(std::string(s)) {}
  Value(size_t count, char fill) : Value(std::string(count, fill)) {}

  size_t size() const { return data_ ? data_->size() : 0; }
  bool empty() const { return data_ == nullptr || data_->empty(); }

  std::string_view view() const {
    return data_ ? std::string_view(*data_) : std::string_view();
  }
  operator std::string_view() const { return view(); }  // NOLINT
  const char* data() const { return view().data(); }

  auto begin() const { return view().begin(); }
  auto end() const { return view().end(); }
  char operator[](size_t i) const { return view()[i]; }

  friend bool operator==(const Value& a, const Value& b) {
    return a.data_ == b.data_ || a.view() == b.view();
  }
  friend bool operator==(const Value& a, std::string_view b) {
    return a.view() == b;
  }
  // Exact-match overload so `v == "literal"` needs no user-defined
  // conversion on either side (which would be ambiguous with the implicit
  // string_view conversion above).
  friend bool operator==(const Value& a, const char* b) {
    return a.view() == std::string_view(b);
  }
  friend bool operator==(const Value& a, const std::string& b) {
    return a.view() == std::string_view(b);
  }
  friend std::ostream& operator<<(std::ostream& os, const Value& v) {
    return os << v.view();
  }

 private:
  std::shared_ptr<const std::string> data_;
};

// Unique id of one DAG execution (== one transaction attempt).
using TxnId = uint64_t;

constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

}  // namespace faastcc
