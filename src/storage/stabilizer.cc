#include "storage/stabilizer.h"

#include <algorithm>

namespace faastcc::storage {

void Stabilizer::on_gossip(PartitionId from, Timestamp safe_time) {
  auto& slot = last_heard_.at(from);
  if (safe_time > slot) slot = safe_time;
}

Timestamp Stabilizer::stable_time() const {
  Timestamp min_ts = Timestamp::max();
  for (const Timestamp t : last_heard_) min_ts = std::min(min_ts, t);
  return min_ts;
}

}  // namespace faastcc::storage
