# Empty dependencies file for example_shopping_cart.
# This may be replaced when dependencies are built.
