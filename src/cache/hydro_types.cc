#include "cache/hydro_types.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace faastcc::cache {
namespace {

// Minimum overlay size at which pending point-inserts are folded into the
// main node.  The effective threshold scales with the node (see
// insert_new): a fixed small threshold on a 10^3-entry context would turn
// an insert burst into O(n^2 / threshold) node rebuilds.
constexpr size_t kPendingFlushThreshold = 48;

// Merge semantics for a key present on both sides, as a mark_read/require
// replay would apply `theirs` onto `mine`: max counter (written_at rides
// with it), sticky read, min level.  Read entries stay pinned at level 0
// (the canonical-form invariant; see require()), which is what makes the
// per-entry combine commutative.
inline void combine(Dep& mine, const Dep& theirs) {
  if (theirs.counter > mine.counter) {
    mine.counter = theirs.counter;
    mine.written_at = theirs.written_at;
    mine.level = theirs.level;
  } else if (theirs.counter == mine.counter) {
    mine.level = std::min(mine.level, theirs.level);
  }
  mine.read = mine.read || theirs.read;
  if (mine.read) mine.level = 0;
}

// An entry arriving on a merge for a key absent on this side: a read
// entry enters as mark_read would record it (level 0).
inline Dep normalized(const Dep& d) {
  Dep out = d;
  if (out.read) out.level = 0;
  return out;
}

}  // namespace

const DepMap::Entries& DepMap::empty_entries() {
  static const Entries kEmpty;
  return kEmpty;
}

DepMap::Entries& DepMap::scratch() {
  thread_local Entries s;
  return s;
}

DepMap::Loc DepMap::locate(Key k) const {
  const KeyInterner& interner = KeyInterner::instance();
  auto search = [&](const Entries& es, Key key) -> const Dep* {
    auto it = std::lower_bound(
        es.begin(), es.end(), key,
        [&](const Dep& d, Key kk) { return interner.key_of(d.key_id) < kk; });
    if (it != es.end() && interner.key_of(it->key_id) == key) return &*it;
    return nullptr;
  };
  // The overlay first: on a raw-backed map it shadows same-key records.
  if (!pending_.empty()) {
    if (const Dep* d = search(pending_, k)) {
      return Loc{Loc::kPending, static_cast<size_t>(d - pending_.data())};
    }
  }
  if (raw_) {
    // Branchless lower-bound with both possible next probes prefetched —
    // same scheme as lookup(); see the comment there.
    const size_t n = raw_count();
    if (n == 0) return Loc{};
    const uint8_t* base = raw_records();
    const uint8_t* lo = base;
    size_t len = n;
    while (len > 1) {
      const size_t half = len / 2;
      const size_t rest = len - half;
      if (const size_t nh = rest / 2; nh > 0) {
        __builtin_prefetch(lo + (nh - 1) * kDepWireBytes);
        __builtin_prefetch(lo + (half + nh - 1) * kDepWireBytes);
      }
      if (raw_u64(lo + (half - 1) * kDepWireBytes + kRawKeyOff) < k) {
        lo += half * kDepWireBytes;
      }
      len = rest;
    }
    if (raw_u64(lo + kRawKeyOff) == k) {
      return Loc{Loc::kRaw,
                 static_cast<size_t>(lo - base) / kDepWireBytes};
    }
    return Loc{};
  }
  if (rep_ != nullptr) {
    if (const Dep* d = search(*rep_, k)) {
      return Loc{Loc::kRep, static_cast<size_t>(d - rep_->data())};
    }
  }
  return Loc{};
}

Dep& DepMap::mutable_at(Loc loc) {
  if (loc.where == Loc::kPending) return pending_[loc.idx];
  assert(loc.where == Loc::kRep && rep_ != nullptr);
  if (rep_.use_count() > 1) {
    // Shared node: clone before the write (copy-on-write).
    rep_ = std::make_shared<Entries>(*rep_);
  }
  return (*rep_)[loc.idx];
}

void DepMap::insert_new(Dep d, Key k) {
  if (!raw_) {
    // Bulk-build fast path: appending keys in ascending order (decode,
    // session rebuilds) grows the node directly, no overlay involved.
    if (pending_.empty() && rep_ != nullptr && rep_.use_count() == 1 &&
        (rep_->empty() || key_of(rep_->back()) < k)) {
      rep_->push_back(d);
      return;
    }
    if (rep_ == nullptr && pending_.empty()) {
      rep_ = std::make_shared<Entries>();
      rep_->push_back(d);
      return;
    }
  }
  const KeyInterner& interner = KeyInterner::instance();
  auto it = std::lower_bound(
      pending_.begin(), pending_.end(), k,
      [&](const Dep& e, Key kk) { return interner.key_of(e.key_id) < kk; });
  pending_.insert(it, d);
  // Scale the fold threshold with the node: folding is O(node), so a
  // fixed threshold makes an m-insert burst into an n-entry context cost
  // O(m * n / threshold).  Proportional pending keeps it O(m + n) while
  // locate()'s overlay binary search stays a few probes.
  const size_t threshold = std::max(kPendingFlushThreshold, size() / 4);
  if (pending_.size() >= threshold) flush();
}

void DepMap::promote(Dep d, Key k) {
  const KeyInterner& interner = KeyInterner::instance();
  auto it = std::lower_bound(
      pending_.begin(), pending_.end(), k,
      [&](const Dep& e, Key kk) { return interner.key_of(e.key_id) < kk; });
  pending_.insert(it, d);
  ++overlap_;
  const size_t threshold = std::max(kPendingFlushThreshold, size() / 4);
  if (pending_.size() >= threshold) flush();
}

void DepMap::flush_slow() const {
  if (pending_.empty()) return;
  if (raw_) {
    // Raw-level fold: merge the sorted overlay into the wire image with
    // bulk copies of the untouched runs.  The map stays raw-backed —
    // nothing is parsed and nothing is interned, so a long-lived context
    // absorbs its per-hop updates at memcpy speed.
    const KeyInterner& interner = KeyInterner::instance();
    const uint8_t* recs = raw_records();
    const size_t n = raw_count();
    const uint32_t cnt =
        static_cast<uint32_t>(n + pending_.size() - overlap_);
    Buffer buf;
    buf.reserve(4 + static_cast<size_t>(cnt) * kDepWireBytes);
    buf.insert(buf.end(), reinterpret_cast<const uint8_t*>(&cnt),
               reinterpret_cast<const uint8_t*>(&cnt) + 4);
    size_t i = 0;
    for (const Dep& d : pending_) {
      const Key kp = interner.key_of(d.key_id);
      const size_t run = i;
      while (i < n && raw_u64(recs + i * kDepWireBytes + kRawKeyOff) < kp) {
        ++i;
      }
      if (i > run) {
        buf.insert(buf.end(), recs + run * kDepWireBytes,
                   recs + i * kDepWireBytes);
      }
      if (i < n && raw_u64(recs + i * kDepWireBytes + kRawKeyOff) == kp) {
        ++i;  // shadowed: the overlay entry replaces this record
      }
      uint8_t rec[kDepWireBytes];
      std::memcpy(rec, &kp, 8);
      std::memcpy(rec + 8, &d.counter, 8);
      std::memcpy(rec + 16, &d.written_at, 8);
      rec[24] = d.read ? 1 : 0;
      rec[25] = d.read ? 0 : d.level;
      buf.insert(buf.end(), rec, rec + kDepWireBytes);
    }
    if (i < n) {
      buf.insert(buf.end(), recs + i * kDepWireBytes,
                 recs + n * kDepWireBytes);
    }
    pending_.clear();
    overlap_ = 0;
    raw_ = RawImage::own(std::move(buf));
    return;
  }
  if (rep_ == nullptr || rep_->empty()) {
    if (rep_ != nullptr && rep_.use_count() == 1) {
      rep_->swap(pending_);
    } else {
      rep_ = std::make_shared<Entries>(std::move(pending_));
    }
    pending_.clear();
    return;
  }
  if (rep_.use_count() == 1) {
    // Unique node: merge the overlay in from the back, in place — no
    // allocation beyond vector growth.  Keys are disjoint by the overlay
    // invariant, so the merge is a pure interleave.
    const KeyInterner& interner = KeyInterner::instance();
    auto key = [&](const Dep& d) { return interner.key_of(d.key_id); };
    Entries& a = *rep_;
    const size_t na = a.size();
    size_t j = pending_.size();
    a.resize(na + j);
    size_t i = na;
    size_t out = a.size();
    while (j > 0) {
      if (i > 0 && key(a[i - 1]) > key(pending_[j - 1])) {
        a[--out] = a[--i];
      } else {
        a[--out] = pending_[--j];
      }
    }
    pending_.clear();
    return;
  }
  // Shared node: linear merge of the two sorted runs into the scratch
  // arena, then one exact-sized allocation for the new node.
  const KeyInterner& interner = KeyInterner::instance();
  const Entries& a = *rep_;
  const Entries& b = pending_;
  Entries& s = scratch();
  s.clear();
  s.reserve(a.size() + b.size());
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (interner.key_of(a[i].key_id) < interner.key_of(b[j].key_id)) {
      s.push_back(a[i++]);
    } else {
      s.push_back(b[j++]);
    }
  }
  s.insert(s.end(), a.begin() + i, a.end());
  s.insert(s.end(), b.begin() + j, b.end());
  rep_ = std::make_shared<Entries>(s);
  pending_.clear();
}

void DepMap::materialize_slow() const {
  flush();  // fold any overlay into the wire image first
  if (!raw_) return;
  const uint8_t* p = raw_records();
  const size_t n = raw_count();
  KeyInterner& interner = KeyInterner::instance();
  auto rep = std::make_shared<Entries>();
  rep->reserve(n);
  for (size_t i = 0; i < n; ++i, p += kDepWireBytes) {
    Dep d = parse_raw(p);
    d.key_id = interner.intern(raw_u64(p + kRawKeyOff));
    rep->push_back(d);
  }
  rep_ = std::move(rep);
  raw_ = RawImage{};
}

void DepMap::reserve(size_t n) {
  materialize();
  if (rep_ == nullptr) {
    rep_ = std::make_shared<Entries>();
    rep_->reserve(n);
  } else if (rep_.use_count() == 1) {
    rep_->reserve(n);
  }
}

void DepMap::require(Key k, uint64_t counter, SimTime written_at,
                     uint8_t level) {
  const Loc loc = locate(k);
  if (loc.where == Loc::kNone) {
    insert_new(Dep{counter, written_at, KeyInterner::instance().intern(k),
                   false, level},
               k);
    return;
  }
  if (loc.where == Loc::kRaw) {
    // Raw-backed: a strengthening update shadows the record via the
    // overlay; a no-op (the common case — most requirements re-assert
    // what the context already carries) leaves the record in place.
    Dep cur = parse_raw(raw_records() + loc.idx * kDepWireBytes);
    if (counter > cur.counter) {
      cur.counter = counter;
      cur.written_at = written_at;
      cur.level = cur.read ? 0 : level;
    } else if (counter == cur.counter && !cur.read && level < cur.level) {
      cur.level = level;
    } else {
      return;
    }
    cur.key_id = KeyInterner::instance().intern(k);
    promote(cur, k);
    return;
  }
  const Dep& cur = loc.where == Loc::kRep ? (*rep_)[loc.idx] : pending_[loc.idx];
  if (counter > cur.counter) {
    Dep& d = mutable_at(loc);
    d.counter = counter;
    d.written_at = written_at;
    // Canonical form: a read entry's level is pinned at 0 (no consumer
    // distinguishes it, and pinning makes merge order-insensitive).
    d.level = d.read ? 0 : level;
  } else if (counter == cur.counter && !cur.read && level < cur.level) {
    mutable_at(loc).level = level;
  }
  // The read flag reflects whether *some* version was read; it is sticky.
}

void DepMap::mark_read(Key k, uint64_t counter, SimTime written_at) {
  const Loc loc = locate(k);
  if (loc.where == Loc::kNone) {
    insert_new(Dep{counter, written_at, KeyInterner::instance().intern(k),
                   true, 0},
               k);
    return;
  }
  if (loc.where == Loc::kRaw) {
    Dep cur = parse_raw(raw_records() + loc.idx * kDepWireBytes);
    if (counter <= cur.counter && cur.read && cur.level == 0) return;
    if (counter > cur.counter) {
      cur.counter = counter;
      cur.written_at = written_at;
    }
    cur.read = true;
    cur.level = 0;
    cur.key_id = KeyInterner::instance().intern(k);
    promote(cur, k);
    return;
  }
  const Dep& cur = loc.where == Loc::kRep ? (*rep_)[loc.idx] : pending_[loc.idx];
  if (counter <= cur.counter && cur.read && cur.level == 0) return;  // no-op
  Dep& d = mutable_at(loc);
  if (counter > d.counter) {
    d.counter = counter;
    d.written_at = written_at;
  }
  d.read = true;
  d.level = 0;
}

const Dep* DepMap::find(Key k) const {
  Loc loc = locate(k);
  if (loc.where == Loc::kRaw) {
    // A stable entry pointer needs the entry node; cold path — hot-path
    // probes of raw-backed maps go through lookup().
    materialize();
    loc = locate(k);
  }
  switch (loc.where) {
    case Loc::kRep:
      return &(*rep_)[loc.idx];
    case Loc::kPending:
      return &pending_[loc.idx];
    case Loc::kRaw:  // unreachable: materialized above
    case Loc::kNone:
      return nullptr;
  }
  return nullptr;
}

bool DepMap::lookup(Key k, Dep& out) const {
  // The overlay shadows raw records, so it is probed first.
  if (!pending_.empty()) {
    const KeyInterner& interner = KeyInterner::instance();
    auto it = std::lower_bound(
        pending_.begin(), pending_.end(), k,
        [&](const Dep& e, Key kk) { return interner.key_of(e.key_id) < kk; });
    if (it != pending_.end() && interner.key_of(it->key_id) == k) {
      out = *it;
      return true;
    }
  }
  if (raw_) {
    // Branchless lower-bound directly over the fixed-width sorted wire
    // records — no materialization, no interning.  The window-halving form
    // lets both possible next probes be prefetched, overlapping the
    // dependent cache misses that dominate a pointer-chasing search.
    const size_t n = raw_count();
    if (n == 0) return false;
    const uint8_t* lo = raw_records();
    size_t len = n;
    while (len > 1) {
      const size_t half = len / 2;
      const size_t rest = len - half;
      if (const size_t nh = rest / 2; nh > 0) {
        __builtin_prefetch(lo + (nh - 1) * kDepWireBytes);
        __builtin_prefetch(lo + (half + nh - 1) * kDepWireBytes);
      }
      if (raw_u64(lo + (half - 1) * kDepWireBytes + kRawKeyOff) < k) {
        lo += half * kDepWireBytes;
      }
      len = rest;
    }
    if (raw_u64(lo + kRawKeyOff) != k) return false;
    out = parse_raw(lo);
    out.key_id = 0;  // not populated on the raw path; caller has the key
    return true;
  }
  const Dep* d = find(k);
  if (d == nullptr) return false;
  out = *d;
  return true;
}

void DepMap::merge(const DepMap& other) {
  if (&other == this) return;
  if (other.empty()) return;
  if (empty()) {
    // Structural sharing: adopting the other side's node (entry vector or
    // raw wire image alike) is a refcount bump.  This is the whole-
    // context ship between functions.
    other.flush();
    if (other.raw_) {
      raw_ = other.raw_;
      rep_.reset();
    } else {
      rep_ = other.rep_;
      raw_ = RawImage{};
    }
    pending_.clear();
    overlap_ = 0;
    return;
  }
  flush();
  other.flush();
  if (raw_ && other.raw_ && raw_.data == other.raw_.data) return;
  if (rep_ != nullptr && rep_ == other.rep_) return;
  if (raw_ || other.raw_) {
    // Record-level merge straight into a fresh wire image: neither side
    // is parsed into entries or interned, and the result stays raw-backed
    // (exactly the shape the next hop ships).
    const KeyInterner& interner = KeyInterner::instance();
    struct Cur {
      const uint8_t* p = nullptr;  // raw cursor …
      const uint8_t* pe = nullptr;
      const Dep* d = nullptr;  // … or entry cursor
      const Dep* de = nullptr;
      bool done() const { return p != nullptr ? p == pe : d == de; }
    };
    auto open_cur = [](const DepMap& m) {
      Cur c;
      if (m.raw_) {
        c.p = m.raw_records();
        c.pe = c.p + m.raw_count() * kDepWireBytes;
      } else if (m.rep_ != nullptr) {
        c.d = m.rep_->data();
        c.de = c.d + m.rep_->size();
      }
      return c;
    };
    auto cur_key = [&](const Cur& c) {
      return c.p != nullptr ? raw_u64(c.p + kRawKeyOff)
                            : interner.key_of(c.d->key_id);
    };
    auto cur_dep = [](const Cur& c) {
      return c.p != nullptr ? parse_raw(c.p) : *c.d;
    };
    auto advance = [](Cur& c) {
      if (c.p != nullptr) {
        c.p += kDepWireBytes;
      } else {
        ++c.d;
      }
    };
    Buffer buf;
    buf.reserve(4 + (size() + other.size()) * kDepWireBytes);
    buf.resize(4);  // count patched below
    uint32_t cnt = 0;
    auto append = [&](Key k, const Dep& d) {
      uint8_t rec[kDepWireBytes];
      std::memcpy(rec, &k, 8);
      std::memcpy(rec + 8, &d.counter, 8);
      std::memcpy(rec + 16, &d.written_at, 8);
      rec[24] = d.read ? 1 : 0;
      rec[25] = d.read ? 0 : d.level;
      buf.insert(buf.end(), rec, rec + kDepWireBytes);
      ++cnt;
    };
    Cur a = open_cur(*this);
    Cur b = open_cur(other);
    while (!a.done() && !b.done()) {
      const Key ka = cur_key(a);
      const Key kb = cur_key(b);
      if (ka < kb) {
        append(ka, cur_dep(a));
        advance(a);
      } else if (kb < ka) {
        append(kb, cur_dep(b));
        advance(b);
      } else {
        Dep d = cur_dep(a);
        combine(d, cur_dep(b));
        append(ka, d);
        advance(a);
        advance(b);
      }
    }
    for (; !a.done(); advance(a)) append(cur_key(a), cur_dep(a));
    for (; !b.done(); advance(b)) append(cur_key(b), cur_dep(b));
    std::memcpy(buf.data(), &cnt, 4);
    raw_ = RawImage::own(std::move(buf));
    rep_.reset();
    return;
  }
  const KeyInterner& interner = KeyInterner::instance();
  const Entries& a = *rep_;
  const Entries& b = *other.rep_;
  Entries& s = scratch();
  s.clear();
  s.reserve(a.size() + b.size());
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const Key ka = interner.key_of(a[i].key_id);
    const Key kb = interner.key_of(b[j].key_id);
    if (ka < kb) {
      s.push_back(a[i++]);
    } else if (kb < ka) {
      s.push_back(normalized(b[j++]));
    } else {
      Dep d = a[i++];
      combine(d, b[j++]);
      s.push_back(d);
    }
  }
  s.insert(s.end(), a.begin() + i, a.end());
  for (; j < b.size(); ++j) s.push_back(normalized(b[j]));
  if (rep_.use_count() == 1) {
    *rep_ = s;  // reuse the unique node's capacity
  } else {
    rep_ = std::make_shared<Entries>(s);
  }
}

void DepMap::gc_before(SimTime horizon) {
  filter([horizon](Key, const Dep& d) {
    return d.read || d.written_at >= horizon;
  });
}

DepMap DepMap::decode(BufReader& r) {
  DepMap m;
  const uint32_t n = r.get_u32();
  if (n == 0) return m;
  const uint8_t* base = r.get_span(static_cast<size_t>(n) * kDepWireBytes);
  // Canonical streams (ours always are) become raw-backed: the map keeps
  // the wire image and defers parsing until something mutates or iterates
  // it.  Sortedness is one sequential key scan.
  bool sorted = true;
  Key prev = raw_u64(base + kRawKeyOff);
  for (uint32_t i = 1; i < n; ++i) {
    const Key k = raw_u64(base + i * kDepWireBytes + kRawKeyOff);
    if (k <= prev) {
      sorted = false;
      break;
    }
    prev = k;
  }
  if (sorted) {
    // The u32 count sits immediately before the records in the source
    // stream, so the whole canonical image is one contiguous range.
    const size_t image_bytes = 4 + static_cast<size_t>(n) * kDepWireBytes;
    if (const auto& owner = r.owner()) {
      // Shared-ownership reader: alias the records inside the message
      // buffer itself — zero-copy decode, the dominant context-transfer
      // cost gone entirely.
      m.raw_ = RawImage{owner, base - 4, image_bytes};
    } else {
      m.raw_ = RawImage::own(Buffer(base - 4, base + image_bytes - 4));
    }
    return m;
  }
  // Defensive: accept any well-formed stream, canonicalizing it.
  KeyInterner& interner = KeyInterner::instance();
  auto rep = std::make_shared<Entries>();
  rep->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    const uint8_t* p = base + i * kDepWireBytes;
    Dep d = parse_raw(p);
    d.key_id = interner.intern(raw_u64(p + kRawKeyOff));
    rep->push_back(d);
  }
  std::sort(rep->begin(), rep->end(), [&](const Dep& x, const Dep& y) {
    return interner.key_of(x.key_id) < interner.key_of(y.key_id);
  });
  m.rep_ = std::move(rep);
  return m;
}

}  // namespace faastcc::cache
