// Closed-loop benchmark client (§6.1: each client sequentially issues DAG
// execution requests, starting the next as soon as the previous finishes).
#pragma once

#include <optional>
#include <unordered_map>

#include "check/oracle.h"
#include "common/metrics.h"
#include "faas/messages.h"
#include "net/rpc.h"
#include "obs/trace.h"
#include "workload/workload.h"

namespace faastcc::workload {

struct ClientParams {
  uint64_t client_id = 0;
  int num_dags = 1000;
  // An aborted DAG is retried (fresh attempt, fresh snapshot) up to this
  // many times before being dropped.
  int max_retries = 50;
  // Watchdog for the one-way DAG flow: a trigger or completion lost on the
  // fabric leaves no pending RPC to time out, so after this long the client
  // gives up on the attempt and retries with a fresh transaction.  0 = off
  // (the default for fault-free runs).
  Duration dag_timeout = 0;
};

class ClientDriver {
 public:
  // `oracle` (FaaSTCC runs only) records the per-client session timestamp
  // after every committed DAG for the session-monotonicity check.
  ClientDriver(net::Network& network, net::Address self,
               net::Address scheduler, WorkloadGen workload,
               ClientParams params, Metrics* metrics,
               obs::Tracer* tracer = nullptr,
               check::ConsistencyOracle* oracle = nullptr);

  // The closed loop; spawn once.  Sets done() when finished.
  sim::Task<void> run();

  bool done() const { return done_; }
  SimTime started_at() const { return started_at_; }
  SimTime finished_at() const { return finished_at_; }
  uint64_t committed() const { return committed_.value(); }
  uint64_t aborted_attempts() const { return aborted_attempts_.value(); }

 private:
  sim::Task<faas::DagDoneMsg> execute_once(const faas::DagSpec& spec,
                                           int attempt);
  void on_done(Buffer msg, net::Address from);
  void record_breakdown(const obs::TraceBreakdown& b);

  net::RpcNode rpc_;
  net::Address scheduler_;
  WorkloadGen workload_;
  ClientParams params_;
  Metrics* metrics_;
  obs::Tracer* tracer_;
  check::ConsistencyOracle* oracle_ = nullptr;
  Buffer session_;
  TxnId next_txn_;
  std::unordered_map<TxnId, sim::Promise<faas::DagDoneMsg>> pending_;
  bool done_ = false;
  SimTime started_at_ = 0;
  SimTime finished_at_ = 0;
  Counter committed_;
  Counter aborted_attempts_;
};

}  // namespace faastcc::workload
