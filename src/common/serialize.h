// Minimal binary codec used for every simulated network message.
//
// Fixed-width little-endian encoding keeps message sizes exact and easy to
// reason about: the metadata-size experiments (Fig. 5 and Fig. 7 of the
// paper) report the byte counts produced by this codec.  It plays the role
// protocol buffers play in the authors' prototype.
//
// Message structs provide `template <typename W> void encode(W&) const`,
// generic over the writer, so the same encode body drives both the real
// BufWriter and the allocation-free CountingWriter (exact wire sizes
// without encoding, and exact reserve() hints before encoding).
#pragma once

#include <concepts>
#include <cstdint>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace faastcc {

using Buffer = std::vector<uint8_t>;

class BufferPool;

class BufWriter {
 public:
  BufWriter() = default;
  // Writes into a recycled buffer (cleared, capacity retained) so repeated
  // encodes through a BufferPool stop hitting the allocator.
  explicit BufWriter(Buffer recycled) : buf_(std::move(recycled)) {
    buf_.clear();
  }

  void reserve(size_t n) { buf_.reserve(n); }

  void put_u8(uint8_t v) { buf_.push_back(v); }
  void put_u16(uint16_t v) { put_raw(&v, sizeof(v)); }
  void put_u32(uint32_t v) { put_raw(&v, sizeof(v)); }
  void put_u64(uint64_t v) { put_raw(&v, sizeof(v)); }
  void put_i64(int64_t v) { put_raw(&v, sizeof(v)); }
  void put_f64(double v) { put_raw(&v, sizeof(v)); }
  void put_bool(bool v) { put_u8(v ? 1 : 0); }

  void put_bytes(std::string_view s) {
    put_u32(static_cast<uint32_t>(s.size()));
    put_raw(s.data(), s.size());
  }

  // Bulk append of pre-encoded bytes (no length prefix).  Lets a message
  // splice in an already-canonical sub-encoding with one memcpy.
  void put_span(const uint8_t* p, size_t n) { put_raw(p, n); }

  // Appends `n` uninitialized-ish bytes and returns a pointer to them, so
  // a fixed-width record loop can store fields directly instead of going
  // through one bounds-checked put_* call per field.  The pointer is valid
  // until the next mutating call.
  uint8_t* extend(size_t n) {
    const size_t off = buf_.size();
    buf_.resize(off + n);
    return buf_.data() + off;
  }

  size_t size() const { return buf_.size(); }
  Buffer take() { return std::move(buf_); }
  const Buffer& data() const { return buf_; }

 private:
  void put_raw(const void* p, size_t n) {
    const auto* b = static_cast<const uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  Buffer buf_;
};

// Writer that only tallies bytes — no buffer, no heap allocation.  Feeding
// a message's encode() through one yields the exact wire size; the codec
// fields are fixed-width, so counting is pure arithmetic.
class CountingWriter {
 public:
  void reserve(size_t) {}

  void put_u8(uint8_t) { size_ += 1; }
  void put_u16(uint16_t) { size_ += 2; }
  void put_u32(uint32_t) { size_ += 4; }
  void put_u64(uint64_t) { size_ += 8; }
  void put_i64(int64_t) { size_ += 8; }
  void put_f64(double) { size_ += 8; }
  void put_bool(bool) { size_ += 1; }
  void put_bytes(std::string_view s) { size_ += 4 + s.size(); }
  void put_span(const uint8_t*, size_t n) { size_ += n; }

  size_t size() const { return size_; }

 private:
  size_t size_ = 0;
};

class CodecError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class BufReader {
 public:
  explicit BufReader(const Buffer& b) : data_(b.data()), size_(b.size()) {}
  BufReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  // Shared-ownership reader: decode paths that can represent their result
  // as a view of the wire bytes (see DepMap) alias the buffer through
  // `owner()` instead of copying, keeping it alive past the decode.
  explicit BufReader(std::shared_ptr<const Buffer> owner)
      : data_(owner->data()), size_(owner->size()), owner_(std::move(owner)) {}
  // Shared-ownership reader over a slice of `owner` (a nested payload).
  BufReader(const uint8_t* data, size_t size,
            std::shared_ptr<const Buffer> owner)
      : data_(data), size_(size), owner_(std::move(owner)) {}

  const std::shared_ptr<const Buffer>& owner() const { return owner_; }

  uint8_t get_u8() { return get<uint8_t>(); }
  uint16_t get_u16() { return get<uint16_t>(); }
  uint32_t get_u32() { return get<uint32_t>(); }
  uint64_t get_u64() { return get<uint64_t>(); }
  int64_t get_i64() { return get<int64_t>(); }
  double get_f64() { return get<double>(); }
  bool get_bool() { return get_u8() != 0; }

  std::string get_bytes() { return std::string(get_bytes_view()); }

  // Zero-copy view into the underlying buffer; valid only while the buffer
  // lives.  Decode paths that copy the bytes into longer-lived storage
  // anyway use this to skip the intermediate std::string.
  std::string_view get_bytes_view() {
    const uint32_t n = get_u32();
    require(n);
    std::string_view s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  // Bounds-checked view of the next `n` raw bytes; advances past them.
  // Valid only while the underlying buffer lives.
  const uint8_t* get_span(size_t n) {
    require(n);
    const uint8_t* p = data_ + pos_;
    pos_ += n;
    return p;
  }

  size_t remaining() const { return size_ - pos_; }
  bool done() const { return pos_ == size_; }

 private:
  template <typename T>
  T get() {
    require(sizeof(T));
    T v;
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }
  void require(size_t n) const {
    if (size_ - pos_ < n) throw CodecError("buffer underflow");
  }
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  std::shared_ptr<const Buffer> owner_;
};

// A nested byte blob inside a wire message (a context or session handed
// from function to function).  Either owns its bytes, or aliases a slice
// of a shared message buffer — so decoding a trigger does not copy the
// (potentially large) context out of the message, and decoding the context
// in turn can alias its records straight out of the same allocation.
class Payload {
 public:
  Payload() = default;
  // Owning payload around freshly encoded bytes (implicit: every Buffer
  // producer keeps working unchanged).  Empty buffers stay allocation-free.
  Payload(Buffer b) {
    if (b.empty()) return;
    auto sp = std::make_shared<const Buffer>(std::move(b));
    data_ = sp->data();
    size_ = sp->size();
    owner_ = std::move(sp);
  }
  // Aliasing payload: a slice of `owner`, kept alive by the shared count.
  Payload(std::shared_ptr<const Buffer> owner, const uint8_t* data,
          size_t size)
      : owner_(std::move(owner)), data_(data), size_(size) {}

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const std::shared_ptr<const Buffer>& owner() const { return owner_; }

  // Detached copy of the bytes (tests, diagnostics).
  Buffer bytes() const { return Buffer(data_, data_ + size_); }

 private:
  std::shared_ptr<const Buffer> owner_;
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

// Size in bytes a message would occupy on the wire.  Runs the message's
// encode body against a CountingWriter: exact, and allocation-free.
template <typename M>
size_t encoded_size(const M& m) {
  CountingWriter w;
  m.encode(w);
  return w.size();
}

// True when M supplies a hand-written O(1)-ish wire-size hint.
template <typename M>
concept HasSizeHint = requires(const M& m) {
  { m.size_hint() } -> std::convertible_to<size_t>;
};

// Reserve hint for encoding `m`: the message's own size_hint() when it has
// one (cheap arithmetic on the hot types), otherwise an exact counting
// pass (still allocation-free).
template <typename M>
size_t wire_size_hint(const M& m) {
  if constexpr (HasSizeHint<M>) {
    return m.size_hint();
  } else {
    return encoded_size(m);
  }
}

// Encodes a message struct into a fresh buffer.
template <typename M>
Buffer encode_message(const M& m) {
  BufWriter w;
  w.reserve(wire_size_hint(m));
  m.encode(w);
  return w.take();
}

// Decodes a message struct that provides `static M decode(BufReader&)`.
template <typename M>
M decode_message(const Buffer& b) {
  BufReader r(b);
  return M::decode(r);
}

// Shared-ownership variant: view-capable fields of the decoded message
// alias `b` instead of copying out of it (the buffer stays alive as long
// as any such view does).
template <typename M>
M decode_message(std::shared_ptr<const Buffer> b) {
  BufReader r(std::move(b));
  return M::decode(r);
}

// Decodes a nested payload.  When the payload aliases a shared message
// buffer, view-capable fields of the result alias it too.
template <typename M>
M decode_message(const Payload& p) {
  BufReader r(p.data(), p.size(), p.owner());
  return M::decode(r);
}

// Free list of message buffers.  Encoding acquires a buffer whose capacity
// survived its previous trip through the network, so steady-state message
// traffic allocates nothing; consumers hand exhausted payloads back via
// release().  Purely a memory-reuse layer: acquire/release order has no
// observable effect on the simulation schedule.
class BufferPool {
 public:
  explicit BufferPool(size_t max_free = 4096) : max_free_(max_free) {}

  Buffer acquire() {
    if (free_.empty()) {
      ++misses_;
      return Buffer();
    }
    ++hits_;
    Buffer b = std::move(free_.back());
    free_.pop_back();
    b.clear();
    return b;
  }

  void release(Buffer&& b) {
    if (b.capacity() == 0 || free_.size() >= max_free_) return;
    free_.push_back(std::move(b));
  }

  size_t free_count() const { return free_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  std::vector<Buffer> free_;
  size_t max_free_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

// Pooled encode: recycled buffer + exact reserve.
template <typename M>
Buffer encode_message(const M& m, BufferPool& pool) {
  BufWriter w(pool.acquire());
  w.reserve(wire_size_hint(m));
  m.encode(w);
  return w.take();
}

}  // namespace faastcc
