file(REMOVE_RECURSE
  "CMakeFiles/faastcc_faas.dir/faas/compute_node.cc.o"
  "CMakeFiles/faastcc_faas.dir/faas/compute_node.cc.o.d"
  "CMakeFiles/faastcc_faas.dir/faas/dag.cc.o"
  "CMakeFiles/faastcc_faas.dir/faas/dag.cc.o.d"
  "CMakeFiles/faastcc_faas.dir/faas/function_registry.cc.o"
  "CMakeFiles/faastcc_faas.dir/faas/function_registry.cc.o.d"
  "CMakeFiles/faastcc_faas.dir/faas/scheduler.cc.o"
  "CMakeFiles/faastcc_faas.dir/faas/scheduler.cc.o.d"
  "libfaastcc_faas.a"
  "libfaastcc_faas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faastcc_faas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
