// Robustness / fault-injection tests: the protocols must stay correct (if
// slower) under clock skew, straggling partitions and aggressive version
// GC.  Correctness is checked with the paired-write invariant: keys 2i and
// 2i+1 are always written together; reading them in different functions
// must never observe a torn pair.
#include <gtest/gtest.h>

#include "harness/cluster.h"

namespace faastcc::harness {
namespace {

struct PairOutcome {
  int checks = 0;
  int torn = 0;
  int committed = 0;
  int completed = 0;
};

// Runs interleaved pair-writers and two-hop pair-checkers on the given
// cluster parameters.
PairOutcome run_pair_workload(ClusterParams params, int rounds = 80) {
  params.clients = 0;
  params.workload.num_keys = 32;
  Cluster cluster(std::move(params));
  PairOutcome out;

  cluster.registry().register_function(
      "pw", [](faas::ExecEnv& env) -> sim::Task<Buffer> {
        BufReader r(env.args);
        const Key pair = r.get_u64();
        const uint64_t tag = r.get_u64();
        env.txn.write(pair * 2, std::to_string(tag));
        env.txn.write(pair * 2 + 1, std::to_string(tag));
        co_return Buffer{};
      });
  cluster.registry().register_function(
      "pr_even", [](faas::ExecEnv& env) -> sim::Task<Buffer> {
        BufReader r(env.args);
        const Key pair = r.get_u64();
        auto vals = co_await env.txn.read(std::vector<Key>(1, pair * 2));
        if (!vals.has_value()) {
          env.abort_requested = true;
          co_return Buffer{};
        }
        BufWriter w;
        w.put_bytes((*vals)[0]);
        co_return w.take();
      });
  cluster.registry().register_function(
      "pr_odd", [&out](faas::ExecEnv& env) -> sim::Task<Buffer> {
        BufReader ar(env.args);
        const Key pair = ar.get_u64();
        auto vals = co_await env.txn.read(std::vector<Key>(1, pair * 2 + 1));
        if (!vals.has_value()) {
          env.abort_requested = true;
          co_return Buffer{};
        }
        BufReader pr(env.parent_result);
        ++out.checks;
        if (pr.get_bytes() != (*vals)[0]) ++out.torn;
        co_return Buffer{};
      });

  cluster.start();
  net::RpcNode driver(cluster.network(), 900);
  driver.handle_oneway(faas::kDagDone, [&](Buffer b, net::Address) {
    ++out.completed;
    if (decode_message<faas::DagDoneMsg>(b).committed) ++out.committed;
  });
  Rng rng(5);
  for (int i = 0; i < rounds; ++i) {
    cluster.loop().schedule_after(i * milliseconds(2), [&, i] {
      faas::StartDagMsg start;
      start.txn_id = static_cast<TxnId>(i + 1);
      start.client = 900;
      BufWriter args;
      args.put_u64(rng.next_below(8));
      args.put_u64(static_cast<uint64_t>(i + 1));
      faas::FunctionSpec f1;
      faas::FunctionSpec f2;
      if (i % 2 == 0) {
        f1.name = "pw";
        f1.args = args.take();
        start.spec = faas::DagSpec::chain({f1});
      } else {
        f1.name = "pr_even";
        f1.args = args.take();
        f2.name = "pr_odd";
        f2.args = f1.args;
        start.spec = faas::DagSpec::chain({f1, f2});
      }
      driver.send(cluster.scheduler_address(), faas::kStartDag, start);
    });
  }
  while (out.completed < rounds && cluster.loop().now() < seconds(120)) {
    cluster.loop().run_until(cluster.loop().now() + milliseconds(10));
  }
  EXPECT_EQ(out.completed, rounds);
  return out;
}

ClusterParams base() {
  ClusterParams p;
  p.system = SystemKind::kFaasTcc;
  p.partitions = 4;
  p.compute_nodes = 4;
  return p;
}

// ---------------------------------------------------------------------------
// Clock skew: hybrid logical clocks absorb bounded physical skew.
// ---------------------------------------------------------------------------

class ClockSkewSweep : public ::testing::TestWithParam<int64_t> {};

TEST_P(ClockSkewSweep, PairInvariantHoldsUnderSkew) {
  ClusterParams p = base();
  p.clock_skew_us = GetParam();
  const PairOutcome out = run_pair_workload(std::move(p));
  EXPECT_GT(out.checks, 0);
  EXPECT_EQ(out.torn, 0) << "skew " << GetParam() << "us broke consistency";
  EXPECT_GT(out.committed, 0);
}

INSTANTIATE_TEST_SUITE_P(Skews, ClockSkewSweep,
                         ::testing::Values(0, 1000, 10000, 50000));

// ---------------------------------------------------------------------------
// Straggler partition: one partition gossips 10x slower; the stable time
// lags but nothing breaks.
// ---------------------------------------------------------------------------

TEST(Straggler, SlowGossiperDelaysButDoesNotBreak) {
  ClusterParams p = base();
  p.straggler_gossip_factor = 10;
  const PairOutcome out = run_pair_workload(std::move(p));
  EXPECT_EQ(out.torn, 0);
  EXPECT_EQ(out.completed, 80);
}

TEST(Straggler, LatencyDegradesGracefully) {
  // A straggling stabilizer stalls freshness, not throughput: both runs
  // complete the same workload.
  ClusterParams fast = base();
  ClusterParams slow = base();
  slow.straggler_gossip_factor = 20;
  fast.clients = 4;
  slow.clients = 4;
  fast.dags_per_client = 30;
  slow.dags_per_client = 30;
  fast.workload.num_keys = 1000;
  slow.workload.num_keys = 1000;
  Cluster a(std::move(fast));
  Cluster b(std::move(slow));
  const RunResult ra = a.run();
  const RunResult rb = b.run();
  EXPECT_EQ(ra.committed, 120u);
  EXPECT_EQ(rb.committed, 120u);
}

// ---------------------------------------------------------------------------
// Aggressive GC: premature version collection may abort long transactions
// (paper §4.2) but never corrupts committed state.
// ---------------------------------------------------------------------------

TEST(AggressiveGc, AbortsPossibleConsistencyKept) {
  ClusterParams p = base();
  p.tcc.gc_window = milliseconds(5);
  p.tcc.gc_period = milliseconds(10);
  const PairOutcome out = run_pair_workload(std::move(p));
  EXPECT_EQ(out.torn, 0) << "GC must never expose torn state";
  // Checks succeed or abort; never lie.
  EXPECT_LE(out.committed, out.completed);
}

// ---------------------------------------------------------------------------
// Determinism holds for every system.
// ---------------------------------------------------------------------------

class DeterminismSweep : public ::testing::TestWithParam<SystemKind> {};

TEST_P(DeterminismSweep, IdenticalSeedsIdenticalRuns) {
  auto once = [&] {
    ClusterParams p = base();
    p.system = GetParam();
    p.clients = 4;
    p.dags_per_client = 20;
    p.workload.num_keys = 500;
    Cluster cluster(std::move(p));
    return cluster.run();
  };
  const RunResult a = once();
  const RunResult b = once();
  // The whole RunResult must be bit-identical, not merely "close": any
  // divergence means some component drew from an unforked random stream.
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.aborted_attempts, b.aborted_attempts);
  EXPECT_EQ(a.duration_s, b.duration_s);
  EXPECT_EQ(a.throughput, b.throughput);
  EXPECT_EQ(a.cache_entries, b.cache_entries);
  EXPECT_EQ(a.cache_bytes, b.cache_bytes);
  EXPECT_EQ(a.metrics.dag_latency_ms.raw(), b.metrics.dag_latency_ms.raw());
  EXPECT_EQ(a.metrics.metadata_bytes.raw(), b.metrics.metadata_bytes.raw());
}

INSTANTIATE_TEST_SUITE_P(Systems, DeterminismSweep,
                         ::testing::Values(SystemKind::kFaasTcc,
                                           SystemKind::kHydroCache,
                                           SystemKind::kCloudburst));

// ---------------------------------------------------------------------------
// Network faults: with 1% message loss (plus duplication and delay spikes)
// every client must still terminate — RPC timeouts and the DAG watchdog
// turn lost messages into retriable aborts, never into hung coroutines.
// ---------------------------------------------------------------------------

ClusterParams faulty(SystemKind system) {
  ClusterParams p = base();
  p.system = system;
  p.clients = 4;
  p.dags_per_client = 15;
  p.workload.num_keys = 500;
  p.faults.loss_prob = 0.01;
  p.faults.dup_prob = 0.005;
  p.faults.delay_spike_prob = 0.005;
  // A hung client would otherwise spin the loop for an hour of sim time.
  p.max_sim_time = seconds(60);
  return p;
}

class FaultSweep : public ::testing::TestWithParam<SystemKind> {};

TEST_P(FaultSweep, MessageLossNeverHangsClients) {
  Cluster cluster(faulty(GetParam()));
  const RunResult r = cluster.run();
  for (const auto& c : cluster.clients()) {
    EXPECT_TRUE(c->done()) << "client hung under message loss";
  }
  // Terminating via the max_sim_time escape hatch is a hang, not a pass.
  EXPECT_LT(r.duration_s, 30.0);
  EXPECT_GT(r.committed, 0u);
  // Losses actually happened (the fault layer is live, not a no-op) ...
  EXPECT_GT(r.metrics.net_messages_lost, 0u);
  // ... and aborts stayed bounded: retries absorb faults, they don't spiral.
  const double attempts =
      static_cast<double>(r.committed + r.aborted_attempts);
  EXPECT_LT(static_cast<double>(r.aborted_attempts) / attempts, 0.5);
}

TEST_P(FaultSweep, FaultRunsAreDeterministicPerSeed) {
  auto once = [&] {
    Cluster cluster(faulty(GetParam()));
    return cluster.run();
  };
  const RunResult a = once();
  const RunResult b = once();
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.aborted_attempts, b.aborted_attempts);
  EXPECT_EQ(a.metrics.net_messages_lost, b.metrics.net_messages_lost);
  EXPECT_EQ(a.metrics.net_messages_duplicated,
            b.metrics.net_messages_duplicated);
  EXPECT_EQ(a.metrics.net_rpc_timeouts, b.metrics.net_rpc_timeouts);
  EXPECT_EQ(a.metrics.net_rpc_retries, b.metrics.net_rpc_retries);
  EXPECT_EQ(a.metrics.dag_latency_ms.raw(), b.metrics.dag_latency_ms.raw());
}

INSTANTIATE_TEST_SUITE_P(Systems, FaultSweep,
                         ::testing::Values(SystemKind::kFaasTcc,
                                           SystemKind::kHydroCache,
                                           SystemKind::kCloudburst));

}  // namespace
}  // namespace faastcc::harness
