// Property tests for Transactional Causal Consistency on the full FaaSTCC
// stack (paper §3.4 and §4.10).
//
// Strategy: run randomized multi-client workloads on a live cluster with
// instrumented function bodies that record every (key, version) each DAG
// observes, then check the invariants offline:
//
//   * Repeatable reads — a key read by several functions of one DAG always
//     yields the same version.
//   * Atomic visibility — keys written in pairs by one transaction are
//     never observed torn.
//   * Observation 3 — every DAG's reads equal a direct storage read at a
//     single effective snapshot (replayed against the MV stores).
//   * Causal/session order — a client's commit timestamps are increasing.
#include <gtest/gtest.h>

#include <map>
#include <optional>

#include "client/faastcc_client.h"
#include "harness/cluster.h"

namespace faastcc::harness {
namespace {

using client::SnapshotInterval;

struct ReadRecord {
  Key key = 0;
  Timestamp ts;
};

struct DagRecord {
  std::vector<ReadRecord> reads;
  SnapshotInterval final_interval;
  std::map<Key, std::string> pair_tags;  // pair-consistency observations
};

struct Recorder {
  std::map<TxnId, DagRecord> dags;
};

// Reads `keys` through the transaction and records the versions observed
// (extracted from the exported context's narrowed interval and the cache
// response; we re-derive the version timestamp by peeking at the client
// library's interval before/after, so instead we record via value tags).
//
// To keep instrumentation honest we encode the version timestamp into the
// stored values themselves: every writer stores value = txn tag, and the
// reader records the tag.

ClusterParams property_params(uint64_t seed, double zipf) {
  ClusterParams p;
  p.system = SystemKind::kFaasTcc;
  p.seed = seed;
  p.partitions = 4;
  p.compute_nodes = 4;
  p.clients = 6;
  p.dags_per_client = 40;
  p.workload.num_keys = 64;  // tiny, hot key space: maximal contention
  p.workload.zipf = zipf;
  p.workload.dag_size = 4;
  p.prewarm_caches = true;
  return p;
}

// ---------------------------------------------------------------------------
// Atomic visibility + repeatable reads, via instrumented bodies.
// ---------------------------------------------------------------------------

struct PairWorkload {
  // Even key 2i and odd key 2i+1 are always written together with the same
  // tag.  Readers read the two keys in two *different* functions.
  static constexpr Key kPairs = 8;

  static Buffer pair_args(Key pair, uint64_t tag) {
    BufWriter w;
    w.put_u64(pair);
    w.put_u64(tag);
    return w.take();
  }
};

class PairPropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(PairPropertyTest, AtomicVisibilityAndRepeatableReads) {
  ClusterParams params = property_params(7, GetParam());
  params.dags_per_client = 0;  // custom driver below
  Cluster cluster(params);

  struct Violations {
    int torn = 0;
    int unrepeatable = 0;
    int commits = 0;
    int checked = 0;
  } v;

  // writer: sink writes both keys of a pair with an identical tag.
  cluster.registry().register_function(
      "pair_write", [](faas::ExecEnv& env) -> sim::Task<Buffer> {
        BufReader r(env.args);
        const Key pair = r.get_u64();
        const uint64_t tag = r.get_u64();
        const std::string value = std::to_string(tag);
        env.txn.write(pair * 2, value);
        env.txn.write(pair * 2 + 1, value);
        co_return Buffer{};
      });
  // reader first hop: read even key, pass the observed tag downstream.
  cluster.registry().register_function(
      "pair_read_even", [](faas::ExecEnv& env) -> sim::Task<Buffer> {
        BufReader r(env.args);
        const Key pair = r.get_u64();
        auto vals = co_await env.txn.read(std::vector<Key>(1, pair * 2));
        if (!vals.has_value()) {
          env.abort_requested = true;
          co_return Buffer{};
        }
        BufWriter w;
        w.put_bytes((*vals)[0]);
        co_return w.take();
      });
  // reader second hop (different worker): read odd key, compare tags, and
  // also re-read the even key to check repeatability.
  cluster.registry().register_function(
      "pair_read_odd", [&v](faas::ExecEnv& env) -> sim::Task<Buffer> {
        BufReader ar(env.args);
        const Key pair = ar.get_u64();
        std::vector<Key> keys;
        keys.push_back(pair * 2 + 1);
        keys.push_back(pair * 2);
        auto vals = co_await env.txn.read(keys);
        if (!vals.has_value()) {
          env.abort_requested = true;
          co_return Buffer{};
        }
        BufReader pr(env.parent_result);
        const std::string even_tag = pr.get_bytes();
        const std::string odd_tag((*vals)[0].view());
        const std::string even_again((*vals)[1].view());
        ++v.checked;
        if (odd_tag != even_tag) ++v.torn;
        if (even_again != even_tag) ++v.unrepeatable;
        co_return Buffer{};
      });

  cluster.start();

  // Drive writers and readers concurrently from raw clients.
  net::RpcNode driver(cluster.network(), 900);
  int completed = 0;
  driver.handle_oneway(faas::kDagDone, [&](Buffer b, net::Address) {
    auto done = decode_message<faas::DagDoneMsg>(b);
    ++completed;
    if (done.committed) ++v.commits;
  });
  int launched = 0;
  Rng rng(11);
  for (int round = 0; round < 60; ++round) {
    cluster.loop().schedule_after(round * milliseconds(2), [&, round] {
      const Key pair = rng.next_below(PairWorkload::kPairs);
      faas::StartDagMsg start;
      start.client = 900;
      if (round % 2 == 0) {
        start.txn_id = 1000 + round;
        faas::FunctionSpec w;
        w.name = "pair_write";
        w.args = PairWorkload::pair_args(pair, 1000 + round);
        start.spec = faas::DagSpec::chain({w});
      } else {
        start.txn_id = 2000 + round;
        faas::FunctionSpec f1;
        f1.name = "pair_read_even";
        f1.args = PairWorkload::pair_args(pair, 0);
        faas::FunctionSpec f2;
        f2.name = "pair_read_odd";
        f2.args = PairWorkload::pair_args(pair, 0);
        start.spec = faas::DagSpec::chain({f1, f2});
      }
      driver.send(cluster.scheduler_address(), faas::kStartDag, start);
      ++launched;
    });
  }
  const SimTime deadline = cluster.loop().now() + seconds(60);
  while (completed < 60 && cluster.loop().now() < deadline) {
    cluster.loop().run_until(cluster.loop().now() + milliseconds(5));
  }
  ASSERT_EQ(completed, 60);
  EXPECT_GT(v.checked, 0);
  EXPECT_EQ(v.torn, 0) << "atomic visibility violated";
  EXPECT_EQ(v.unrepeatable, 0) << "repeatable reads violated";
  EXPECT_GT(v.commits, 40);
}

INSTANTIATE_TEST_SUITE_P(Zipfs, PairPropertyTest,
                         ::testing::Values(0.0, 1.0, 1.5));

// ---------------------------------------------------------------------------
// Observation 3: the whole workload replayed against single snapshots.
// ---------------------------------------------------------------------------

// Every committed value in the standard workload encodes nothing useful,
// so for the replay check we instead verify the *interval* invariant on
// live runs: for every cache response the final interval admits every
// returned version.  That check lives in cache_test.  Here we verify the
// global outcome on the standard workload across seeds and skews: no DAG
// ever aborts due to inconsistent parents and every commit succeeds, under
// heavy contention, which (with the assertions baked into the cache)
// demonstrates the end-to-end snapshot discipline.
class StandardWorkloadSweep
    : public ::testing::TestWithParam<std::tuple<uint64_t, double>> {};

TEST_P(StandardWorkloadSweep, AllDagsCommitWithoutAborts) {
  const auto [seed, zipf] = GetParam();
  ClusterParams p = property_params(seed, zipf);
  Cluster cluster(p);
  const RunResult r = cluster.run();
  EXPECT_EQ(r.committed, p.clients * static_cast<uint64_t>(p.dags_per_client));
  EXPECT_EQ(r.aborted_attempts, 0u)
      << "FaaSTCC reads from stable snapshots; no aborts expected";
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, StandardWorkloadSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 3u),
                       ::testing::Values(0.5, 1.0, 1.5)));

// ---------------------------------------------------------------------------
// Session ordering: commit timestamps of one client are increasing.
// ---------------------------------------------------------------------------

TEST(SessionOrder, CommitTimestampsIncreasePerClient) {
  ClusterParams p = property_params(5, 1.0);
  p.dags_per_client = 0;
  Cluster cluster(p);
  cluster.start();

  net::RpcNode driver(cluster.network(), 900);
  std::vector<Timestamp> commits;
  std::optional<faas::DagDoneMsg> last;
  driver.handle_oneway(faas::kDagDone, [&](Buffer b, net::Address) {
    last = decode_message<faas::DagDoneMsg>(b);
  });

  cluster.registry().register_function(
      "session_write", [](faas::ExecEnv& env) -> sim::Task<Buffer> {
        BufReader r(env.args);
        env.txn.write(r.get_u64(), "v");
        co_return Buffer{};
      });

  Buffer session;
  for (int i = 0; i < 10; ++i) {
    last.reset();
    faas::StartDagMsg start;
    start.txn_id = 100 + i;
    start.client = 900;
    start.session = session;
    faas::FunctionSpec w;
    w.name = "session_write";
    BufWriter args;
    args.put_u64(static_cast<uint64_t>(i % 3));  // few hot keys
    w.args = args.take();
    start.spec = faas::DagSpec::chain({w});
    driver.send(cluster.scheduler_address(), faas::kStartDag, start);
    const SimTime deadline = cluster.loop().now() + seconds(10);
    while (!last.has_value() && cluster.loop().now() < deadline) {
      cluster.loop().run_until(cluster.loop().now() + milliseconds(2));
    }
    ASSERT_TRUE(last.has_value());
    ASSERT_TRUE(last->committed);
    session = last->session;
    commits.push_back(client::decode_faastcc_session(session));
  }
  for (size_t i = 1; i < commits.size(); ++i) {
    EXPECT_GT(commits[i], commits[i - 1])
        << "session write order violated at " << i;
  }
}

// ---------------------------------------------------------------------------
// Causal consistency of versions installed in storage: a transaction's
// commit timestamp strictly exceeds the timestamps of everything it read.
// ---------------------------------------------------------------------------

TEST(CausalOrder, CommitExceedsReadSnapshot) {
  ClusterParams p = property_params(9, 1.0);
  p.dags_per_client = 0;
  Cluster cluster(p);
  cluster.start();

  net::RpcNode driver(cluster.network(), 900);
  std::optional<faas::DagDoneMsg> last;
  driver.handle_oneway(faas::kDagDone, [&](Buffer b, net::Address) {
    last = decode_message<faas::DagDoneMsg>(b);
  });

  // Record the interval low bound (max version read) at the sink.
  Timestamp observed_low = Timestamp::min();
  cluster.registry().register_function(
      "read_then_write", [&observed_low](faas::ExecEnv& env) -> sim::Task<Buffer> {
        std::vector<Key> keys;
        keys.push_back(1);
        keys.push_back(2);
        auto vals = co_await env.txn.read(keys);
        if (!vals.has_value()) {
          env.abort_requested = true;
          co_return Buffer{};
        }
        const Buffer ctx = env.txn.export_context();
        observed_low =
            decode_message<client::FaasTccContext>(ctx).interval.low;
        env.txn.write(3, "w");
        co_return Buffer{};
      });

  // Write keys 1 and 2 first so there is something to read.
  for (int i = 0; i < 3; ++i) {
    last.reset();
    faas::StartDagMsg start;
    start.txn_id = 100 + i;
    start.client = 900;
    faas::FunctionSpec w;
    w.name = "read_then_write";
    start.spec = faas::DagSpec::chain({w});
    driver.send(cluster.scheduler_address(), faas::kStartDag, start);
    const SimTime deadline = cluster.loop().now() + seconds(10);
    while (!last.has_value() && cluster.loop().now() < deadline) {
      cluster.loop().run_until(cluster.loop().now() + milliseconds(2));
    }
    ASSERT_TRUE(last.has_value());
    ASSERT_TRUE(last->committed);
    const Timestamp commit_ts = client::decode_faastcc_session(last->session);
    EXPECT_GT(commit_ts, observed_low);
  }
}

// ---------------------------------------------------------------------------
// Consistency oracle on live clusters: a clean run is violation-free, and
// every chaos knob that reintroduces a historical bug is caught as the
// matching invariant violation.
// ---------------------------------------------------------------------------

using check::Violation;

bool has_violation(const std::vector<Violation>& vs, Violation::Kind kind) {
  for (const auto& v : vs) {
    if (v.kind == kind) return true;
  }
  return false;
}

ClusterParams oracle_params(uint64_t seed) {
  ClusterParams p = property_params(seed, 1.0);
  p.check_consistency = true;
  return p;
}

TEST(ChaosOracle, CleanRunHasNoViolations) {
  Cluster cluster(oracle_params(21));
  cluster.run();
  check::ConsistencyOracle* oracle = cluster.oracle();
  ASSERT_NE(oracle, nullptr);
  const auto vs = oracle->check();
  EXPECT_TRUE(vs.empty()) << oracle->report(vs);
  EXPECT_GT(oracle->installs_recorded(), 0u);
  EXPECT_GT(oracle->reads_recorded(), 0u);
  EXPECT_GT(oracle->commits_recorded(), 0u);
}

TEST(ChaosOracle, DroppedInstallIsCaughtAsLostWrite) {
  ClusterParams p = oracle_params(22);
  p.tcc.chaos_drop_install = true;
  Cluster cluster(p);
  cluster.run();
  EXPECT_TRUE(has_violation(cluster.oracle()->check(),
                            Violation::Kind::kLostWrite));
}

TEST(ChaosOracle, DoubleInstallIsCaughtAsDuplicate) {
  ClusterParams p = oracle_params(23);
  p.tcc.chaos_double_install = true;
  Cluster cluster(p);
  cluster.run();
  EXPECT_TRUE(has_violation(cluster.oracle()->check(),
                            Violation::Kind::kDuplicateInstall));
}

TEST(ChaosOracle, IgnoredDependencyIsCaughtAsCausalOrder) {
  ClusterParams p = oracle_params(24);
  p.tcc.chaos_ignore_dep = true;
  Cluster cluster(p);
  cluster.run();
  EXPECT_TRUE(has_violation(cluster.oracle()->check(),
                            Violation::Kind::kCausalOrder));
}

TEST(ChaosOracle, SkippedLocalReadsAreCaughtAsReadYourWrites) {
  ClusterParams p = oracle_params(25);
  p.dags_per_client = 0;
  p.faastcc.chaos_skip_local_reads = true;
  Cluster cluster(p);
  cluster.registry().register_function(
      "wr", [](faas::ExecEnv& env) -> sim::Task<Buffer> {
        env.txn.write(5, "mine");
        // With local reads skipped this goes to the cache and observes the
        // pre-write version: a read-your-writes violation.
        co_await env.txn.read(std::vector<Key>(1, Key{5}));
        co_return Buffer{};
      });
  cluster.start();
  net::RpcNode driver(cluster.network(), 900);
  bool done = false;
  driver.handle_oneway(faas::kDagDone,
                       [&](Buffer, net::Address) { done = true; });
  faas::StartDagMsg start;
  start.txn_id = 42;
  start.client = 900;
  faas::FunctionSpec f;
  f.name = "wr";
  start.spec = faas::DagSpec::chain({f});
  driver.send(cluster.scheduler_address(), faas::kStartDag, start);
  const SimTime deadline = cluster.loop().now() + seconds(10);
  while (!done && cluster.loop().now() < deadline) {
    cluster.loop().run_until(cluster.loop().now() + milliseconds(2));
  }
  ASSERT_TRUE(done);
  EXPECT_TRUE(has_violation(cluster.oracle()->check(),
                            Violation::Kind::kReadYourWrites));
}

TEST(ChaosOracle, OpenPrewarmWithoutSubscriptionIsCaughtAsUnsoundPromise) {
  // The historical prewarm bug: entries inserted open without a backing
  // subscription.  A bounded cache forces organic subscriptions to other
  // keys on the same partitions, whose pushes advance the cache's stable
  // estimate — extending the unsubscribed entries' promises over versions
  // the cache never heard about.
  ClusterParams p = oracle_params(26);
  p.faastcc_cache.chaos_prewarm_open = true;
  p.cache_capacity = 32;
  p.workload.num_keys = 64;
  p.workload.zipf = 1.2;
  Cluster cluster(p);
  cluster.run();
  EXPECT_TRUE(has_violation(cluster.oracle()->check(),
                            Violation::Kind::kUnsoundPromise));
}

// Regression for a real bug the fuzzer caught (tools/tcc_fuzz, config
// "lossy", seed 5): a duplicated trigger for a single-parent function was
// not deduplicated, so the body re-ran at a different snapshot — the
// ghost execution read torn state and raced its writes against the real
// commit.  The compute node now keeps an executed-(txn, fn) window;
// shrinking it to zero re-enables the bug.
ClusterParams duplicated_trigger_params() {
  ClusterParams p;
  p.system = SystemKind::kFaasTcc;
  p.seed = 5;
  p.partitions = 3;
  p.compute_nodes = 2;
  p.clients = 6;
  p.dags_per_client = 25;
  p.workload.num_keys = 64;
  p.workload.zipf = 1.1;
  p.workload.dag_size = 4;
  p.workload.static_txns = true;
  p.faults.loss_prob = 0.02;
  p.faults.dup_prob = 0.01;
  p.check_consistency = true;
  return p;
}

TEST(ChaosOracle, DuplicatedTriggersDoNotReexecuteFunctions) {
  Cluster cluster(duplicated_trigger_params());
  const RunResult r = cluster.run();
  ASSERT_GT(r.metrics.net_messages_duplicated, 0u);
  const auto vs = cluster.oracle()->check();
  EXPECT_TRUE(vs.empty()) << cluster.oracle()->report(vs);
}

// With both at-most-once windows disabled (the pre-fix world), a
// duplicated start ghost-executes the DAG and the oracle sees the txn read
// the same key at incompatible snapshots.  The node-level window matters
// here: at this seed both root copies land on the same node, so it alone
// would have absorbed the ghost.
TEST(ChaosOracle, ZeroDedupWindowReintroducesGhostExecutions) {
  ClusterParams p = duplicated_trigger_params();
  p.node.executed_dedup_cap = 0;       // pre-fix behavior
  p.scheduler.start_dedup_cap = 0;     // pre-fix behavior
  Cluster cluster(p);
  cluster.run();
  EXPECT_TRUE(has_violation(cluster.oracle()->check(),
                            Violation::Kind::kNonRepeatableRead));
}

// A fabric-duplicated kStartDag must not be dispatched twice: the second
// dispatch draws fresh placements, so the ghost root reopens at SI_root on
// a different node (invisible to the per-node trigger dedup) and re-reads
// at whatever snapshot its local cache holds.
TEST(ChaosOracle, DuplicatedStartDagsAreDispatchedOnce) {
  ClusterParams p = duplicated_trigger_params();
  p.seed = 11;  // found by tcc_fuzz (lossy config)
  Cluster cluster(p);
  const RunResult r = cluster.run();
  ASSERT_GT(r.metrics.net_messages_duplicated, 0u);
  EXPECT_GT(cluster.scheduler().dup_starts_dropped(), 0u);
  const auto vs = cluster.oracle()->check();
  EXPECT_TRUE(vs.empty()) << cluster.oracle()->report(vs);
}

TEST(ChaosOracle, ZeroStartDedupWindowReintroducesGhostDags) {
  ClusterParams p = duplicated_trigger_params();
  p.seed = 11;
  p.scheduler.start_dedup_cap = 0;  // pre-fix behavior
  Cluster cluster(p);
  cluster.run();
  EXPECT_TRUE(has_violation(cluster.oracle()->check(),
                            Violation::Kind::kNonRepeatableRead));
}

}  // namespace
}  // namespace faastcc::harness
