#include "harness/cluster.h"

#include <cassert>

#include "common/log.h"

namespace faastcc::harness {
namespace {

constexpr net::Address kSchedulerAddr = 1;
constexpr net::Address kTopoAddr = 2;
constexpr net::Address kCtlAddr = 3;
constexpr net::Address kPartitionBase = 100;
constexpr net::Address kReplicaBase = 1000;
constexpr net::Address kCacheBase = 3000;
constexpr net::Address kNodeBase = 4000;
constexpr net::Address kClientBase = 5000;
constexpr net::Address kFollowerBase = 6000;
// Address stride per partition in the follower range; bounds
// ReplicationParams::factor.
constexpr size_t kMaxFollowers = 4;

net::Address follower_address(size_t partition, size_t replica) {
  return kFollowerBase +
         static_cast<net::Address>(partition * kMaxFollowers + replica);
}

}  // namespace

const char* system_name(SystemKind s) {
  switch (s) {
    case SystemKind::kFaasTcc: return "FaaSTCC";
    case SystemKind::kHydroCache: return "HydroCache";
    case SystemKind::kCloudburst: return "Cloudburst";
  }
  return "?";
}

std::unique_ptr<client::SystemAdapter> MakeAdapter(
    SystemKind kind, const AdapterConfig& config) {
  assert(config.rpc != nullptr);
  switch (kind) {
    case SystemKind::kFaasTcc:
      return std::make_unique<client::FaasTccAdapter>(
          *config.rpc, config.cache_address, config.tcc_topology,
          config.faastcc, config.metrics, config.tracer, config.oracle);
    case SystemKind::kHydroCache:
      return std::make_unique<client::HydroAdapter>(
          *config.rpc, config.cache_address, config.ev_topology, config.rng,
          config.hydro, config.metrics, config.tracer);
    case SystemKind::kCloudburst:
      return std::make_unique<client::EventualAdapter>(
          *config.rpc, config.cache_address, config.ev_topology, config.rng,
          config.metrics, config.tracer);
  }
  return nullptr;
}

Cluster::Cluster(ClusterParams params)
    : params_(std::move(params)),
      rng_(params_.seed),
      network_(loop_, params_.net, rng_.fork()),
      tracer_(params_.trace),
      registry_(std::make_shared<faas::FunctionRegistry>()) {
  workload::WorkloadGen::register_functions(*registry_);
  // Install the fault layer before anything draws from rng_: the extra
  // fork is only taken when faults are on, so fault-free runs keep the
  // exact random streams of a build without fault injection.
  if (params_.faults.enabled()) {
    network_.set_faults(params_.faults, rng_.fork());
  }
  // The oracle is pure out-of-band recording (no events, no randomness),
  // so creating it cannot perturb the run.
  if (params_.check_consistency && params_.system == SystemKind::kFaasTcc) {
    oracle_ = std::make_unique<check::ConsistencyOracle>();
  }
  // Topology service (FaaSTCC only).  Constructing it is pure endpoint
  // registration — zero events, zero randomness — so non-elastic runs are
  // unperturbed.
  if (params_.system == SystemKind::kFaasTcc) {
    std::vector<routing::PartitionAddress> addrs;
    for (size_t p = 0; p < params_.partitions; ++p) {
      addrs.push_back(kPartitionBase + static_cast<net::Address>(p));
    }
    auto initial = routing::RoutingTable::initial(
        std::move(addrs), params_.elastic.slots_per_partition);
    if (params_.replication.enabled()) {
      assert(params_.replication.factor <= kMaxFollowers);
      initial.replicas.resize(params_.partitions);
      for (size_t p = 0; p < params_.partitions; ++p) {
        for (size_t r = 0; r < params_.replication.factor; ++r) {
          initial.replicas[p].push_back(follower_address(p, r));
        }
      }
    }
    topo_ = std::make_unique<routing::TopologyService>(
        network_, kTopoAddr, routing::make_table(std::move(initial)));
    topo_->set_metrics(&metrics_);
  }
  build_storage();
  build_compute();
  build_clients();
  // The reconfiguration engine (and, on top of it, the autoscaler) exists
  // only when some transition can actually happen.  Construction is pure
  // state — one endpoint registration, no events, no randomness.
  if (params_.system == SystemKind::kFaasTcc &&
      (params_.elastic.enabled() || params_.autoscale.enabled())) {
    reconfig_ = std::make_unique<storage::ReconfigEngine>(
        network_, kCtlAddr, *topo_, &metrics_);
    for (auto& p : tcc_partitions_) reconfig_->register_instance(p.get());
    for (auto& f : tcc_followers_) reconfig_->register_follower(f.get());
    if (params_.autoscale.enabled()) {
      autoscaler_ = std::make_unique<Autoscaler>(
          loop_, *reconfig_, metrics_, params_.autoscale,
          [](size_t first_id, size_t count) {
            std::vector<routing::PartitionAddress> out;
            for (size_t i = 0; i < count; ++i) {
              out.push_back(kPartitionBase +
                            static_cast<net::Address>(first_id + i));
            }
            return out;
          });
    }
  }
}

Cluster::~Cluster() = default;

net::Address Cluster::scheduler_address() const { return kSchedulerAddr; }

storage::TccTopology Cluster::tcc_topology() const {
  // Table-backed when the topology service exists (epoch-1 routing is
  // bit-identical to the legacy modulo scheme); plain vector otherwise.
  if (topo_ != nullptr) return storage::TccTopology(topo_->table());
  storage::TccTopology topo;
  for (size_t p = 0; p < params_.partitions; ++p) {
    topo.partitions.push_back(kPartitionBase + static_cast<net::Address>(p));
  }
  return topo;
}

storage::EvTopology Cluster::ev_topology() const {
  storage::EvTopology topo;
  topo.replicas.resize(params_.partitions);
  for (size_t p = 0; p < params_.partitions; ++p) {
    for (size_t r = 0; r < params_.ev_replicas; ++r) {
      topo.replicas[p].push_back(
          kReplicaBase +
          static_cast<net::Address>(p * params_.ev_replicas + r));
    }
  }
  return topo;
}

void Cluster::build_storage() {
  if (params_.system == SystemKind::kFaasTcc) {
    const auto topo = tcc_topology();
    for (size_t p = 0; p < params_.partitions; ++p) {
      auto tcc_params = params_.tcc;
      // Residual NTP skew: each partition's physical clock is offset by a
      // bounded random amount.
      if (params_.clock_skew_us > 0) {
        tcc_params.clock_offset_us =
            static_cast<int64_t>(rng_.next_below(
                2 * static_cast<uint64_t>(params_.clock_skew_us))) -
            params_.clock_skew_us;
      }
      if (p == 0 && params_.straggler_gossip_factor > 1) {
        tcc_params.gossip_period *= params_.straggler_gossip_factor;
      }
      tcc_partitions_.push_back(std::make_unique<storage::TccPartition>(
          network_, topo.partitions[p], static_cast<PartitionId>(p),
          topo.partitions, tcc_params, &tracer_, oracle_.get()));
      auto& part = *tcc_partitions_.back();
      part.set_routing(topo_->table());
      part.set_topo_service(kTopoAddr);
      part.set_metrics(&metrics_);
      topo_->add_listener(part.address());
    }
    // Deferred joiners: constructed only when something can scale OUT —
    // a scheduled scale-out, or an autoscaler whose ceiling exceeds the
    // starting count — so the rng stream (clock-skew draws) of runs that
    // can only shrink is untouched.  Autoscale headroom is pre-built to
    // the ceiling: ids the scaler never reaches stay inert (deferred
    // serving, no events).
    const size_t scheduled_add = params_.elastic.scale_out_scheduled()
                                     ? params_.elastic.add_partitions
                                     : 0;
    const size_t autoscale_add =
        params_.autoscale.enabled() &&
                params_.autoscale.max_partitions > params_.partitions
            ? params_.autoscale.max_partitions - params_.partitions
            : 0;
    const size_t extra_partitions = std::max(scheduled_add, autoscale_add);
    if (extra_partitions > 0) {
      const size_t old_n = params_.partitions;
      std::vector<net::Address> all = topo.partitions;
      for (size_t i = 0; i < extra_partitions; ++i) {
        all.push_back(kPartitionBase + static_cast<net::Address>(old_n + i));
      }
      for (size_t i = 0; i < extra_partitions; ++i) {
        auto tcc_params = params_.tcc;
        if (params_.clock_skew_us > 0) {
          tcc_params.clock_offset_us =
              static_cast<int64_t>(rng_.next_below(
                  2 * static_cast<uint64_t>(params_.clock_skew_us))) -
              params_.clock_skew_us;
        }
        tcc_partitions_.push_back(std::make_unique<storage::TccPartition>(
            network_, all[old_n + i], static_cast<PartitionId>(old_n + i),
            all, tcc_params, &tracer_, oracle_.get()));
        auto& joiner = *tcc_partitions_.back();
        joiner.defer_serving();
        joiner.set_topo_service(kTopoAddr);
        joiner.set_metrics(&metrics_);
        topo_->add_listener(joiner.address());
      }
    }
    // Followers: constructed only when replication is enabled, so the rng
    // stream (clock-skew draws) of unreplicated runs is untouched — same
    // gating discipline as the deferred joiners above.
    if (params_.replication.enabled()) {
      for (size_t p = 0; p < params_.partitions; ++p) {
        std::vector<net::Address> followers;
        for (size_t r = 0; r < params_.replication.factor; ++r) {
          auto tcc_params = params_.tcc;
          tcc_params.repl_lease_timeout = params_.replication.lease_timeout;
          if (params_.clock_skew_us > 0) {
            tcc_params.clock_offset_us =
                static_cast<int64_t>(rng_.next_below(
                    2 * static_cast<uint64_t>(params_.clock_skew_us))) -
                params_.clock_skew_us;
          }
          const net::Address addr = follower_address(p, r);
          tcc_followers_.push_back(std::make_unique<storage::TccPartition>(
              network_, addr, static_cast<PartitionId>(p), topo.partitions,
              tcc_params, &tracer_, oracle_.get()));
          auto& follower = *tcc_followers_.back();
          // make_follower before set_routing: a follower adopting a table
          // that names it as leader promotes itself, and the role decides
          // that check.
          follower.make_follower(topo.partitions[p]);
          follower.set_routing(topo_->table());
          follower.set_topo_service(kTopoAddr);
          follower.set_metrics(&metrics_);
          topo_->add_listener(addr);
          followers.push_back(addr);
        }
        tcc_partitions_[p]->set_followers(std::move(followers));
      }
    }
    return;
  }
  const auto topo = ev_topology();
  std::vector<net::Address> all;
  for (const auto& reps : topo.replicas) {
    all.insert(all.end(), reps.begin(), reps.end());
  }
  for (size_t p = 0; p < params_.partitions; ++p) {
    for (size_t r = 0; r < params_.ev_replicas; ++r) {
      std::vector<net::Address> peers;
      for (size_t r2 = 0; r2 < params_.ev_replicas; ++r2) {
        if (r2 != r) peers.push_back(topo.replicas[p][r2]);
      }
      ev_replicas_.push_back(std::make_unique<storage::EvReplica>(
          network_, topo.replicas[p][r], p * params_.ev_replicas + r, peers,
          all, params_.ev));
    }
  }
}

void Cluster::build_compute() {
  for (size_t n = 0; n < params_.compute_nodes; ++n) {
    const net::Address cache_addr = kCacheBase + static_cast<net::Address>(n);
    const net::Address node_addr = kNodeBase + static_cast<net::Address>(n);
    network_.colocate(cache_addr, node_addr);

    // One AdapterConfig per node; the rng fork order below (cache first,
    // then adapter, eventual systems only) reproduces the pre-factory
    // construction sequence exactly.
    AdapterConfig acfg;
    acfg.cache_address = cache_addr;
    acfg.metrics = &metrics_;
    acfg.tracer = &tracer_;
    switch (params_.system) {
      case SystemKind::kFaasTcc: {
        auto cache_params = params_.faastcc_cache;
        cache_params.capacity = params_.cache_capacity;
        cache_params.topo_service = kTopoAddr;
        faastcc_caches_.push_back(std::make_unique<cache::FaasTccCache>(
            network_, cache_addr, tcc_topology(), cache_params, &metrics_,
            &tracer_));
        topo_->add_listener(cache_addr);
        acfg.tcc_topology = tcc_topology();
        acfg.faastcc = params_.faastcc;
        acfg.faastcc.topo_service = kTopoAddr;
        acfg.oracle = oracle_.get();
        break;
      }
      case SystemKind::kHydroCache: {
        auto cache_params = params_.hydro_cache;
        cache_params.capacity = params_.cache_capacity;
        hydro_caches_.push_back(std::make_unique<cache::HydroCache>(
            network_, cache_addr, ev_topology(), rng_.fork(), cache_params,
            &metrics_, &tracer_));
        acfg.ev_topology = ev_topology();
        acfg.hydro = params_.hydro;
        acfg.rng = rng_.fork();
        break;
      }
      case SystemKind::kCloudburst: {
        auto cache_params = params_.plain_cache;
        cache_params.capacity = params_.cache_capacity;
        plain_caches_.push_back(std::make_unique<cache::PlainCache>(
            network_, cache_addr, ev_topology(), rng_.fork(), cache_params,
            &metrics_, &tracer_));
        acfg.ev_topology = ev_topology();
        acfg.rng = rng_.fork();
        break;
      }
    }
    faas::ComputeNode::AdapterFactory factory =
        [kind = params_.system, acfg](net::RpcNode& rpc) {
          AdapterConfig c = acfg;
          c.rpc = &rpc;
          return MakeAdapter(kind, c);
        };
    nodes_.push_back(std::make_unique<faas::ComputeNode>(
        network_, node_addr, registry_, factory, params_.node, &metrics_,
        &tracer_));
  }

  std::vector<net::Address> node_addrs;
  node_addrs.reserve(nodes_.size());
  for (const auto& n : nodes_) node_addrs.push_back(n->address());
  scheduler_ = std::make_unique<faas::Scheduler>(
      network_, kSchedulerAddr, node_addrs, params_.scheduler, rng_.fork(),
      &tracer_);
}

void Cluster::build_clients() {
  for (size_t c = 0; c < params_.clients; ++c) {
    workload::ClientParams cp;
    cp.client_id = c;
    cp.num_dags = params_.dags_per_client;
    cp.max_retries = params_.client_max_retries;
    cp.dag_timeout =
        params_.faults.enabled() ? params_.faults.dag_timeout : Duration{0};
    clients_.push_back(std::make_unique<workload::ClientDriver>(
        network_, kClientBase + static_cast<net::Address>(c), kSchedulerAddr,
        workload::WorkloadGen(params_.workload, rng_.fork()), cp, &metrics_,
        &tracer_, oracle_.get()));
  }
}

void Cluster::preload() {
  const Value value(params_.workload.value_size, 'x');
  const Timestamp init_ts(1, 0, 0);
  if (params_.system == SystemKind::kFaasTcc) {
    for (Key k = 0; k < params_.workload.num_keys; ++k) {
      const size_t p = k % params_.partitions;
      tcc_partitions_[p]->store().install(k, value, init_ts);
      // Followers start from the same preloaded image as their leader, so
      // the replication stream only ever carries post-start commits.  Not
      // re-recorded at the oracle: the preload is one logical install.
      if (params_.replication.enabled()) {
        for (size_t r = 0; r < params_.replication.factor; ++r) {
          tcc_followers_[p * params_.replication.factor + r]->store().install(
              k, value, init_ts);
        }
      }
      if (oracle_ != nullptr) oracle_->on_preload(k, init_ts, value);
    }
    return;
  }
  // Eventual store: the payload layout depends on the client library.
  Value payload;
  if (params_.system == SystemKind::kHydroCache) {
    cache::HydroStored stored;
    stored.value = value;
    BufWriter w;
    stored.encode(w);
    const Buffer b = w.take();
    payload = Value(std::string_view(reinterpret_cast<const char*>(b.data()),
                                     b.size()));
  } else {
    payload = value;
  }
  for (Key k = 0; k < params_.workload.num_keys; ++k) {
    storage::EvItem item;
    item.key = k;
    item.version = storage::EvVersion{1, 0};
    item.written_at = 0;
    item.payload = payload;
    const size_t p = k % params_.partitions;
    for (size_t r = 0; r < params_.ev_replicas; ++r) {
      ev_replicas_[p * params_.ev_replicas + r]->preload(item);
    }
  }
}

void Cluster::start() {
  assert(!started_);
  started_ = true;
  preload();
  // Deferred joiners are not started here: activation (all expected
  // migrate-in parcels applied) starts their background loops.
  for (auto& p : tcc_partitions_) {
    if (p->serving()) p->start();
  }
  // Followers never serve clients; they only run the lease loop (their
  // replication handlers are live from construction).
  for (auto& f : tcc_followers_) f->start_follower();
  if (reconfig_ != nullptr) {
    if (params_.elastic.scale_out_scheduled()) {
      sim::spawn(run_scheduled_scale_out());
    }
    if (params_.elastic.scale_in_scheduled()) {
      sim::spawn(run_scheduled_scale_in());
    }
    if (autoscaler_ != nullptr) sim::spawn(autoscaler_->run());
  }
  for (auto& r : ev_replicas_) r->start();
  for (auto& n : nodes_) n->start();
  loop_.run_until(params_.warmup);
  if (params_.prewarm_caches) prewarm();
}

void Cluster::prewarm() {
  // Zipf ranks map to key ids directly, so warming keys [0, n) warms the
  // hottest n keys.  Bounded caches are warmed to capacity.
  const Value value(params_.workload.value_size, 'x');
  const Timestamp init_ts(1, 0, 0);
  const uint64_t n = params_.workload.num_keys;
  for (auto& cache : faastcc_caches_) {
    const uint64_t limit =
        std::min<uint64_t>(n, params_.cache_capacity == SIZE_MAX
                                  ? n
                                  : params_.cache_capacity);
    // Subscribe before installing the warm entry so its promise may stay
    // open soundly.  The chaos knob reproduces the historical API misuse:
    // open prewarm entries without a subscription backing them.
    const bool chaos = params_.faastcc_cache.chaos_prewarm_open;
    for (Key k = 0; k < limit; ++k) {
      const size_t p = k % params_.partitions;
      const Timestamp promise = tcc_partitions_[p]->stable_time();
      if (!chaos) tcc_partitions_[p]->add_subscriber(k, cache->address());
      cache->prewarm(storage::VersionedValue{k, value, init_ts, promise},
                     /*subscribed=*/!chaos);
    }
  }
  for (auto& cache : hydro_caches_) {
    const uint64_t limit =
        std::min<uint64_t>(n, params_.cache_capacity == SIZE_MAX
                                  ? n
                                  : params_.cache_capacity);
    for (Key k = 0; k < limit; ++k) {
      cache->prewarm(k, value, 1, 0);
      // Subscribe at the notifier replica (replica 0 of the partition).
      const size_t p = k % params_.partitions;
      ev_replicas_[p * params_.ev_replicas]->add_subscriber(
          k, cache->address());
    }
  }
  for (auto& cache : plain_caches_) {
    const uint64_t limit =
        std::min<uint64_t>(n, params_.cache_capacity == SIZE_MAX
                                  ? n
                                  : params_.cache_capacity);
    for (Key k = 0; k < limit; ++k) {
      cache->prewarm(k, value);
      const size_t p = k % params_.partitions;
      ev_replicas_[p * params_.ev_replicas]->add_subscriber(
          k, cache->address());
    }
  }
}

RunResult Cluster::run_clients() {
  assert(started_);
  const SimTime t_start = loop_.now();
  for (auto& c : clients_) sim::spawn(c->run());

  const SimTime deadline = t_start + params_.max_sim_time;
  auto all_done = [&] {
    for (const auto& c : clients_) {
      if (!c->done()) return false;
    }
    return true;
  };
  while (!all_done() && loop_.now() < deadline) {
    loop_.run_until(loop_.now() + milliseconds(100));
  }
  if (!all_done()) {
    LOG_WARN("cluster run hit max_sim_time before clients finished");
  }

  RunResult out;
  out.metrics = metrics_;
  SimTime t_end = t_start;
  for (const auto& c : clients_) {
    out.committed += c->committed();
    out.aborted_attempts += c->aborted_attempts();
    t_end = std::max(t_end, c->finished_at());
  }
  out.duration_s = to_seconds(t_end - t_start);
  out.throughput =
      out.duration_s > 0 ? static_cast<double>(out.committed) / out.duration_s
                         : 0.0;
  collect_cache_gauges(out);
  out.metrics.cache_bytes_total = out.cache_bytes;
  out.metrics.cache_keys_total = out.cache_entries;
  out.metrics.net_messages_lost = network_.faults_lost();
  out.metrics.net_messages_duplicated = network_.faults_duplicated();
  out.metrics.net_delay_spikes = network_.faults_delay_spikes();
  out.metrics.net_crash_dropped = network_.faults_crash_dropped();
  out.metrics.net_rpc_timeouts = network_.rpc_timeouts();
  out.metrics.net_rpc_retries = network_.rpc_retries();
  out.sim_events = loop_.events_processed();
  return out;
}

RunResult Cluster::run() {
  start();
  return run_clients();
}

sim::Task<void> Cluster::run_scheduled_scale_out() {
  co_await sim::sleep_for(loop_, params_.elastic.at);
  std::vector<routing::PartitionAddress> added;
  const size_t old_n = reconfig_->active_partitions();
  for (size_t i = 0; i < params_.elastic.add_partitions; ++i) {
    added.push_back(kPartitionBase + static_cast<net::Address>(old_n + i));
  }
  co_await reconfig_->scale_out(std::move(added));
}

sim::Task<void> Cluster::run_scheduled_scale_in() {
  co_await sim::sleep_for(loop_, params_.elastic.remove_at);
  co_await reconfig_->scale_in(params_.elastic.remove_partitions);
}

void Cluster::collect_cache_gauges(RunResult& out) const {
  for (const auto& c : faastcc_caches_) {
    out.cache_entries += c->entry_count();
    out.cache_bytes += c->bytes();
  }
  for (const auto& c : hydro_caches_) {
    out.cache_entries += c->total_keys();
    out.cache_bytes += c->bytes();
  }
  for (const auto& c : plain_caches_) {
    out.cache_entries += c->entry_count();
    out.cache_bytes += c->bytes();
  }
}

}  // namespace faastcc::harness
