// Least-recently-used bookkeeping shared by all three cache designs.
// The paper uses LRU replacement for the bounded-cache experiment (§6.7);
// the cache algorithms themselves are replacement-policy agnostic (§4.3).
#pragma once

#include <list>
#include <optional>
#include <unordered_map>

#include "common/types.h"

namespace faastcc::cache {

class LruIndex {
 public:
  // Inserts `k` as most-recently-used, or moves it there if present.
  void touch(Key k);

  void erase(Key k);

  // The least-recently-used key, if any.
  std::optional<Key> least_recent() const;

  bool contains(Key k) const { return index_.count(k) != 0; }
  size_t size() const { return index_.size(); }

 private:
  std::list<Key> order_;  // front = most recent
  std::unordered_map<Key, std::list<Key>::iterator> index_;
};

}  // namespace faastcc::cache
