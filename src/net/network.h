// Simulated cluster network.
//
// Models the paper's testbed fabric: ~0.15 ms intra-cluster RTT over shared
// 25 Gbps switches.  A message sent at time t is delivered at
//   t + base_latency + U(0, jitter) + size / bandwidth.
// Delivery order between distinct pairs is therefore not FIFO globally,
// which is exactly the asynchrony the protocols must tolerate.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "common/rng.h"
#include "common/serialize.h"
#include "common/stats.h"
#include "common/types.h"
#include "sim/event_loop.h"

namespace faastcc::net {

using Address = uint32_t;
using MethodId = uint16_t;

enum class MessageKind : uint8_t { kRequest = 0, kResponse = 1, kOneWay = 2 };

struct Message {
  Address from = 0;
  Address to = 0;
  MessageKind kind = MessageKind::kOneWay;
  MethodId method = 0;
  uint64_t request_id = 0;
  Buffer payload;

  // Wire size: payload plus a fixed header, mirroring the framing overhead
  // of the ZeroMQ + protobuf stack in the authors' prototype.
  static constexpr size_t kHeaderBytes = 32;
  size_t wire_size() const { return payload.size() + kHeaderBytes; }
};

struct NetworkParams {
  Duration base_latency = microseconds(75);   // one-way; RTT ~= 0.15 ms
  Duration jitter = microseconds(20);         // uniform [0, jitter)
  double bandwidth_bytes_per_us = 3125.0;     // 25 Gbps
  Duration local_delivery = microseconds(5);  // same-node IPC latency
};

class Network {
 public:
  Network(sim::EventLoop& loop, NetworkParams params, Rng rng)
      : loop_(loop), params_(params), rng_(rng) {}

  using Handler = std::function<void(Message)>;

  // Each simulated process registers exactly one inbound handler.
  void register_endpoint(Address addr, Handler handler);

  // Marks two addresses as colocated on the same physical node; messages
  // between them use IPC latency instead of the fabric (executor <-> cache).
  void colocate(Address a, Address b);

  // Queues `m` for delivery; the recipient's handler runs at delivery time.
  // Messages to unregistered addresses are counted and dropped.
  void send(Message m);

  SimTime now() const { return loop_.now(); }
  sim::EventLoop& loop() { return loop_; }

  uint64_t messages_sent() const { return messages_sent_.value(); }
  uint64_t bytes_sent() const { return bytes_sent_.value(); }
  uint64_t messages_dropped() const { return messages_dropped_.value(); }

 private:
  Duration delivery_delay(Address from, Address to, size_t bytes);

  sim::EventLoop& loop_;
  NetworkParams params_;
  Rng rng_;
  std::unordered_map<Address, Handler> endpoints_;
  std::unordered_map<uint64_t, bool> colocated_;  // key = pair(a, b)
  Counter messages_sent_;
  Counter bytes_sent_;
  Counter messages_dropped_;
};

}  // namespace faastcc::net
