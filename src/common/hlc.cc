#include "common/hlc.h"

#include <algorithm>
#include <cstdio>

namespace faastcc {

std::string Timestamp::to_string() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%llu.%llu@%u",
                static_cast<unsigned long long>(physical_us()),
                static_cast<unsigned long long>(logical()),
                static_cast<unsigned>(node()));
  return buf;
}

Timestamp HlcClock::tick(uint64_t physical_now_us) {
  if (physical_now_us > last_physical_) {
    last_physical_ = physical_now_us;
    logical_ = 0;
  } else {
    ++logical_;
    if (logical_ > Timestamp::kMaxLogical) {
      // Logical counter overflow: borrow one microsecond of physical time.
      ++last_physical_;
      logical_ = 0;
    }
  }
  return Timestamp(last_physical_, logical_, node_);
}

Timestamp HlcClock::update(Timestamp remote, uint64_t physical_now_us) {
  const uint64_t rp = remote.physical_us();
  const uint64_t rl = remote.logical();
  const uint64_t max_phys = std::max({physical_now_us, last_physical_, rp});
  if (max_phys == last_physical_ && max_phys == rp) {
    logical_ = std::max(logical_, rl) + 1;
  } else if (max_phys == last_physical_) {
    ++logical_;
  } else if (max_phys == rp) {
    logical_ = rl + 1;
  } else {
    logical_ = 0;
  }
  last_physical_ = max_phys;
  if (logical_ > Timestamp::kMaxLogical) {
    ++last_physical_;
    logical_ = 0;
  }
  return Timestamp(last_physical_, logical_, node_);
}

}  // namespace faastcc
