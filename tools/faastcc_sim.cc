// Command-line experiment driver: a thin shell over harness::run_one.
//
//   faastcc_sim [--spec=run.json] [--system=...] [--config=<name>] ...
//
// Every option edits one RunSpec; the run itself (cluster build, oracle,
// trace export) lives in the harness library so faastcc_sim, tcc_fuzz and
// tcc_sweep all execute a run identically.  Flags apply in argv order, so
// `--spec=base.json --zipf=1.2` overrides the file and `--dump-spec`
// prints the resulting canonical spec without running it.
//
// Prints the summary as a human table or a single JSON object (--json).
// With --trace-out the run records deterministic distributed traces in
// Chrome trace-event format (open in chrome://tracing or Perfetto).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "harness/configs.h"
#include "harness/flags.h"
#include "harness/run_spec.h"
#include "harness/summary.h"
#include "harness/table.h"

using namespace faastcc;
using namespace faastcc::harness;

namespace {

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  RunSpec spec;
  ClusterParams& p = spec.params;

  bool json_out = false;
  bool dump_spec = false;
  bool list_configs_flag = false;
  bool static_txns = false;
  bool si = false;
  bool no_prewarm = false;
  bool check = false;
  std::string trace_out;
  std::string spec_error;

  Flags flags("faastcc_sim", "single-run experiment driver");
  flags.custom("spec", "file.json", "load a RunSpec; later flags override",
               [&](const std::string& v) {
                 std::string text;
                 if (!read_file(v, &text)) {
                   spec_error = "cannot read spec file '" + v + "'";
                   return false;
                 }
                 try {
                   spec = spec_from_text(text);
                 } catch (const SpecError& e) {
                   spec_error = e.what();
                   return false;
                 }
                 return true;
               });
  flags.custom("system", "faastcc|hydrocache|cloudburst", "system under test",
               [&](const std::string& v) {
                 return parse_system(v, &p.system);
               });
  flags.custom("config", "name", "apply a named config (see --list-configs)",
               [&](const std::string& v) {
                 if (find_config(v) == nullptr) return false;
                 spec.config = v;
                 return true;
               });
  flags.real("zipf", "workload key-popularity skew", &p.workload.zipf);
  flags.boolean("static", "static transactions", &static_txns);
  flags.boolean("si", "snapshot-isolation mode", &si);
  flags.integer("dags", "DAGs per client", &p.dags_per_client);
  flags.size("clients", "closed-loop clients", &p.clients);
  flags.integer("dag-size", "functions per chain", &p.workload.dag_size);
  flags.u64("keys", "dataset size", &p.workload.num_keys);
  flags.size("partitions", "storage partitions", &p.partitions);
  flags.size("nodes", "compute nodes", &p.compute_nodes);
  flags.size("cache-capacity", "entries per node cache", &p.cache_capacity);
  flags.u64("seed", "RNG seed", &p.seed);
  flags.boolean("no-prewarm", "skip cache pre-warming", &no_prewarm);
  flags.boolean("check",
                "attach the consistency oracle (FaaSTCC only; zero "
                "perturbation, exit 1 on violations)",
                &check);
  flags.boolean("json", "machine-readable output", &json_out);
  flags.real("loss", "fabric message loss probability", &p.faults.loss_prob);
  flags.real("dup", "fabric message duplication probability",
             &p.faults.dup_prob);
  flags.real("delay-spike-prob", "probability of a delivery delay spike",
             &p.faults.delay_spike_prob);
  flags.duration_ms("delay-spike-ms", "spike magnitude",
                    &p.faults.delay_spike);
  flags.duration_ms("rpc-timeout-ms", "fabric RPC timeout",
                    &p.faults.rpc_timeout);
  flags.duration_ms("dag-timeout-ms", "client DAG watchdog",
                    &p.faults.dag_timeout);
  flags.custom("crash", "addr:from_ms:until_ms",
               "sever an endpoint during [from, until); repeatable",
               [&](const std::string& v) {
                 unsigned long long addr = 0, from_ms = 0, until_ms = 0;
                 if (std::sscanf(v.c_str(), "%llu:%llu:%llu", &addr, &from_ms,
                                 &until_ms) != 3) {
                   return false;
                 }
                 net::CrashWindow w;
                 w.addr = static_cast<net::Address>(addr);
                 w.from = milliseconds(static_cast<int64_t>(from_ms));
                 w.until = milliseconds(static_cast<int64_t>(until_ms));
                 p.faults.crashes.push_back(w);
                 return true;
               });
  flags.str("trace-out", "enable tracing, write Chrome trace JSON here",
            &trace_out);
  flags.u64("trace-sample", "record every n-th DAG trace",
            &p.trace.sample_every);
  flags.size("trace-buffer", "span ring-buffer capacity",
             &p.trace.ring_capacity);
  flags.size("elastic-add", "joiner partitions added mid-run",
             &p.elastic.add_partitions);
  flags.duration_ms("elastic-at-ms", "sim-time of the epoch bump",
                    &p.elastic.at);
  flags.size("elastic-remove", "trailing partitions drained mid-run",
             &p.elastic.remove_partitions);
  flags.duration_ms("elastic-remove-at-ms", "sim-time of the scale-in",
                    &p.elastic.remove_at);
  flags.size("elastic-slots", "routing slots per partition",
             &p.elastic.slots_per_partition);
  flags.size("autoscale-max", "autoscaler partition ceiling (0 disables)",
             &p.autoscale.max_partitions);
  flags.size("autoscale-min", "autoscaler floor (0 = starting count)",
             &p.autoscale.min_partitions);
  flags.duration_ms("autoscale-period-ms", "autoscaler check period",
                    &p.autoscale.check_period);
  flags.real("autoscale-high-ms", "scale-out when windowed p99 above this",
             &p.autoscale.high_p99_ms);
  flags.real("autoscale-low-ms", "scale-in when windowed p99 below this",
             &p.autoscale.low_p99_ms);
  flags.size("autoscale-breach", "consecutive breaching windows to act",
             &p.autoscale.breach_checks);
  flags.duration_ms("autoscale-cooldown-ms", "hold-off after an action",
                    &p.autoscale.cooldown);
  flags.size("autoscale-step", "partitions added/removed per action",
             &p.autoscale.step);
  flags.custom("workload-pattern", "none|bursty|diurnal|hotspot-shift",
               "load-shaping pattern",
               [&](const std::string& v) {
                 return workload::parse_load_pattern(v, &p.workload.pattern);
               });
  flags.duration_ms("pattern-period-ms", "load-pattern cycle length",
                    &p.workload.pattern_period);
  flags.duration_ms("think-time-ms", "max off-peak inter-DAG pause",
                    &p.workload.think_time);
  flags.size("replication-factor", "synchronous followers per partition",
             &p.replication.factor);
  flags.duration_ms("repl-lease-ms", "follower promotion lease timeout",
                    &p.replication.lease_timeout);
  flags.boolean("dump-spec", "print the canonical RunSpec JSON and exit",
                &dump_spec);
  flags.boolean("list-configs", "list named configs and exit",
                &list_configs_flag);

  if (!flags.parse(argc, argv)) {
    std::fprintf(stderr, "faastcc_sim: %s\n%s",
                 spec_error.empty() ? flags.error().c_str()
                                    : spec_error.c_str(),
                 flags.usage().c_str());
    return 2;
  }
  if (flags.help_requested()) {
    std::fputs(flags.usage().c_str(), stdout);
    return 0;
  }
  if (list_configs_flag) {
    std::printf("named configs:\n");
    list_configs(stdout);
    return 0;
  }

  if (static_txns) p.workload.static_txns = true;
  if (si) p.faastcc.snapshot_isolation = true;
  if (no_prewarm) p.prewarm_caches = false;
  if (check) p.check_consistency = true;
  if (!trace_out.empty()) p.trace.enabled = true;
  if (p.trace.sample_every == 0) p.trace.sample_every = 1;

  if (dump_spec) {
    std::fputs(to_json(spec).c_str(), stdout);
    return 0;
  }

  std::fprintf(stderr,
               "running %s  zipf=%.2f  %s%s clients=%zu x %d DAGs ...\n",
               system_name(p.system), p.workload.zipf,
               p.workload.static_txns ? "static " : "dynamic ",
               p.faastcc.snapshot_isolation ? "(SI) " : "", p.clients,
               p.dags_per_client);

  RunOutput out;
  try {
    out = run_one(spec);
  } catch (const SpecError& e) {
    std::fprintf(stderr, "faastcc_sim: %s\n", e.what());
    return 2;
  }
  const SummaryStats& s = out.summary;
  const RunResult& result = out.result;
  const ClusterParams resolved = spec.resolve();

  int exit_code = 0;
  if (out.checked) {
    if (out.violations == 0) {
      std::fprintf(stderr,
                   "consistency check: clean (%zu installs, %zu reads, "
                   "%zu commits)\n",
                   out.oracle_installs, out.oracle_reads, out.oracle_commits);
    } else {
      std::fprintf(stderr, "%s", out.oracle_report.c_str());
      exit_code = 1;
    }
  }

  if (!trace_out.empty()) {
    std::ofstream trace_file(trace_out);
    if (!trace_file) {
      std::fprintf(stderr, "cannot open trace output '%s'\n",
                   trace_out.c_str());
      return 1;
    }
    trace_file << out.trace_json;
    std::fprintf(stderr, "trace: %llu spans (%llu dropped) -> %s\n",
                 static_cast<unsigned long long>(out.trace_spans_recorded),
                 static_cast<unsigned long long>(out.trace_spans_dropped),
                 trace_out.c_str());
  }

  if (json_out) {
    std::printf(
        "{\"system\":\"%s\",\"zipf\":%.3f,\"static\":%s,"
        "\"latency_med_ms\":%.4f,\"latency_p99_ms\":%.4f,"
        "\"throughput\":%.2f,\"metadata_med\":%.1f,\"metadata_p99\":%.1f,"
        "\"rounds_med\":%.2f,\"rounds_p99\":%.2f,"
        "\"read_bytes_med\":%.1f,\"read_bytes_p99\":%.1f,"
        "\"cache_bytes\":%.0f,\"cache_entries\":%.0f,"
        "\"abort_rate\":%.5f,\"hit_rate\":%.5f,"
        "\"committed\":%.0f,\"duration_s\":%.3f,\"sim_events\":%llu,"
        "\"net_lost\":%llu,\"net_duplicated\":%llu,\"net_delay_spikes\":%llu,"
        "\"net_crash_dropped\":%llu,\"rpc_timeouts\":%llu,"
        "\"rpc_retries\":%llu,\"dag_timeouts\":%llu",
        system_name(resolved.system), resolved.workload.zipf,
        resolved.workload.static_txns ? "true" : "false", s.latency_med_ms,
        s.latency_p99_ms, s.throughput, s.metadata_med, s.metadata_p99,
        s.rounds_med, s.rounds_p99, s.read_bytes_med, s.read_bytes_p99,
        s.cache_bytes, s.cache_entries, s.abort_rate, s.hit_rate, s.committed,
        s.duration_s, static_cast<unsigned long long>(result.sim_events),
        static_cast<unsigned long long>(result.metrics.net_messages_lost),
        static_cast<unsigned long long>(result.metrics.net_messages_duplicated),
        static_cast<unsigned long long>(result.metrics.net_delay_spikes),
        static_cast<unsigned long long>(result.metrics.net_crash_dropped),
        static_cast<unsigned long long>(result.metrics.net_rpc_timeouts),
        static_cast<unsigned long long>(result.metrics.net_rpc_retries),
        static_cast<unsigned long long>(result.metrics.dag_timeouts.value()));
    if (const Counter* rounds =
            result.metrics.find_counter("stab.gossip_rounds");
        rounds != nullptr) {
      // Stabilization keys appear only when a stabilizer ran (faastcc),
      // keeping the default JSON shape for other systems unchanged.
      const Counter* msgs = result.metrics.find_counter("stab.gossip_msgs");
      std::printf(
          ",\"stab_gossip_rounds\":%llu,\"stab_gossip_msgs\":%llu,"
          "\"stab_stale_drops\":%.0f,\"stab_lag_med_us\":%.1f,"
          "\"stab_lag_p99_us\":%.1f",
          static_cast<unsigned long long>(rounds->value()),
          static_cast<unsigned long long>(msgs != nullptr ? msgs->value()
                                                          : 0),
          s.stab_stale_drops, s.stab_lag_med_us, s.stab_lag_p99_us);
      if (s.stab_stale_drops > 0) {
        // Per-reason split, emitted only when something was dropped.
        std::printf(
            ",\"stab_drops_unknown_member\":%.0f"
            ",\"stab_drops_stale_report\":%.0f"
            ",\"stab_drops_foreign_child\":%.0f"
            ",\"stab_drops_stale_broadcast\":%.0f",
            s.stab_drops_unknown_member, s.stab_drops_stale_report,
            s.stab_drops_foreign_child, s.stab_drops_stale_broadcast);
      }
    }
    if (const Counter* promos = result.metrics.find_counter("repl.promotions");
        promos != nullptr) {
      // Appears only when a follower was actually promoted.
      std::printf(",\"repl_promotions\":%llu",
                  static_cast<unsigned long long>(promos->value()));
    }
    if (const Counter* bumps =
            result.metrics.find_counter("routing.epoch_bumps");
        bumps != nullptr) {
      // Appears only when the reconfiguration engine moved the table.
      std::printf(
          ",\"routing_epoch_bumps\":%llu,\"routing_epoch\":%.0f"
          ",\"routing_active_partitions\":%.0f",
          static_cast<unsigned long long>(bumps->value()), s.routing_epoch,
          s.routing_active_partitions);
    }
    if (resolved.trace.enabled) {
      // Trace-derived keys only appear when tracing is on, so existing
      // consumers of the default JSON shape are unaffected.
      std::printf(
          ",\"breakdown_queue_ms\":%.4f,\"breakdown_compute_ms\":%.4f,"
          "\"breakdown_storage_ms\":%.4f,\"breakdown_network_ms\":%.4f,"
          "\"trace_spans\":%llu",
          s.breakdown_queue_ms, s.breakdown_compute_ms, s.breakdown_storage_ms,
          s.breakdown_network_ms,
          static_cast<unsigned long long>(out.trace_spans_recorded));
    }
    std::printf("}\n");
    return exit_code;
  }

  Table table({"metric", "value"});
  table.add_row({"latency median", fmt(s.latency_med_ms, 2) + " ms"});
  table.add_row({"latency p99", fmt(s.latency_p99_ms, 2) + " ms"});
  table.add_row({"throughput", fmt(s.throughput, 1) + " DAGs/s"});
  table.add_row({"metadata median / p99",
                 fmt(s.metadata_med, 0) + " / " + fmt(s.metadata_p99, 0) +
                     " B"});
  table.add_row({"storage rounds median / p99",
                 fmt(s.rounds_med, 1) + " / " + fmt(s.rounds_p99, 1)});
  table.add_row({"storage read bytes median / p99",
                 fmt(s.read_bytes_med, 0) + " / " +
                     fmt(s.read_bytes_p99, 0) + " B"});
  table.add_row({"cache footprint", fmt_bytes(s.cache_bytes)});
  table.add_row({"cache hit rate", fmt(100 * s.hit_rate, 1) + " %"});
  table.add_row({"abort rate", fmt(100 * s.abort_rate, 2) + " %"});
  table.add_row({"committed DAGs", fmt(s.committed, 0)});
  table.add_row({"simulated duration", fmt(s.duration_s, 2) + " s"});
  if (const Counter* rounds =
          result.metrics.find_counter("stab.gossip_rounds");
      rounds != nullptr) {
    const Counter* msgs = result.metrics.find_counter("stab.gossip_msgs");
    table.add_row(
        {"stab rounds / msgs",
         fmt(static_cast<double>(rounds->value()), 0) + " / " +
             fmt(static_cast<double>(msgs != nullptr ? msgs->value() : 0),
                 0)});
    table.add_row({"stab lag median / p99",
                   fmt(s.stab_lag_med_us / 1000.0, 2) + " / " +
                       fmt(s.stab_lag_p99_us / 1000.0, 2) + " ms"});
    if (s.stab_stale_drops > 0) {
      table.add_row(
          {"stab stale drops (member/report/child/bcast)",
           fmt(s.stab_stale_drops, 0) + " (" +
               fmt(s.stab_drops_unknown_member, 0) + "/" +
               fmt(s.stab_drops_stale_report, 0) + "/" +
               fmt(s.stab_drops_foreign_child, 0) + "/" +
               fmt(s.stab_drops_stale_broadcast, 0) + ")"});
    }
  }
  if (const Counter* promos = result.metrics.find_counter("repl.promotions");
      promos != nullptr) {
    table.add_row({"leader promotions",
                   fmt(static_cast<double>(promos->value()), 0)});
  }
  if (result.metrics.find_counter("routing.epoch_bumps") != nullptr) {
    table.add_row({"routing partitions @ epoch",
                   fmt(s.routing_active_partitions, 0) + " @ " +
                       fmt(s.routing_epoch, 0)});
  }
  if (resolved.trace.enabled) {
    table.add_row({"breakdown queue median", fmt(s.breakdown_queue_ms, 3) +
                   " ms"});
    table.add_row({"breakdown compute median", fmt(s.breakdown_compute_ms, 3) +
                   " ms"});
    table.add_row({"breakdown storage median", fmt(s.breakdown_storage_ms, 3) +
                   " ms"});
    table.add_row({"breakdown network median", fmt(s.breakdown_network_ms, 3) +
                   " ms"});
  }
  if (resolved.faults.enabled()) {
    const auto& m = result.metrics;
    table.add_row({"net lost / duplicated",
                   fmt(static_cast<double>(m.net_messages_lost), 0) + " / " +
                       fmt(static_cast<double>(m.net_messages_duplicated), 0)});
    table.add_row(
        {"delay spikes / crash drops",
         fmt(static_cast<double>(m.net_delay_spikes), 0) + " / " +
             fmt(static_cast<double>(m.net_crash_dropped), 0)});
    table.add_row({"rpc timeouts / retries",
                   fmt(static_cast<double>(m.net_rpc_timeouts), 0) + " / " +
                       fmt(static_cast<double>(m.net_rpc_retries), 0)});
    table.add_row({"DAG watchdog timeouts",
                   fmt(static_cast<double>(m.dag_timeouts.value()), 0)});
  }
  table.print();
  return exit_code;
}
