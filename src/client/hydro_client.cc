#include "client/hydro_client.h"

#include <algorithm>
#include <cassert>

namespace faastcc::client {

HydroContext HydroContext::decode(BufReader& r) {
  const uint8_t version = r.get_u8();
  if (version != kWireVersion) {
    throw CodecError("HydroContext: unsupported wire version " +
                     std::to_string(version));
  }
  HydroContext c;
  c.deps = cache::DepMap::decode(r);
  c.lamport = r.get_u64();
  c.global_cut = r.get_i64();
  const uint32_t n = r.get_u32();
  for (uint32_t i = 0; i < n; ++i) {
    const Key k = r.get_u64();
    c.write_set[k] = r.get_bytes();
  }
  return c;
}

HydroSession HydroSession::decode(BufReader& r) {
  HydroSession s;
  s.lamport = r.get_u64();
  s.global_cut = r.get_i64();
  s.deps = cache::DepMap::decode(r);
  return s;
}

HydroAdapter::HydroAdapter(net::RpcNode& rpc, net::Address cache_address,
                           storage::EvTopology topology, Rng rng,
                           HydroConfig config, Metrics* metrics,
                           obs::Tracer* tracer)
    : rpc_(rpc),
      cache_address_(cache_address),
      storage_(rpc, std::move(topology), rng, tracer),
      config_(config),
      metrics_(metrics),
      tracer_(tracer) {}

std::unique_ptr<FunctionTxn> HydroAdapter::open(
    const TxnInfo& info, std::vector<Payload> parent_contexts,
    Payload session) {
  HydroContext ctx;
  if (parent_contexts.empty()) {
    if (!session.empty()) {
      // Shared-ownership decode: the dependency map aliases the records
      // inside the session blob instead of copying them out.
      HydroSession s = decode_message<HydroSession>(session);
      ctx.lamport = s.lamport;
      ctx.global_cut = s.global_cut;
      ctx.deps = std::move(s.deps);
    }
  } else {
    for (const Payload& b : parent_contexts) {
      HydroContext p = decode_message<HydroContext>(b);
      // Parallel branches that read *different* versions of the same key
      // cannot be reconciled: the values were already consumed.  Against an
      // empty accumulator the check is vacuous — skipping it keeps the first
      // parent's decoded map in raw wire form for the merge below.
      if (!ctx.deps.empty()) {
        bool conflict = false;
        p.deps.for_each([&](Key k, const cache::Dep& d) {
          if (conflict || !d.read) return;
          cache::Dep mine;
          if (ctx.deps.lookup(k, mine) && mine.read &&
              mine.counter != d.counter) {
            conflict = true;
          }
        });
        if (conflict) return nullptr;
      }
      ctx.deps.merge(p.deps);
      ctx.lamport = std::max(ctx.lamport, p.lamport);
      ctx.global_cut = std::max(ctx.global_cut, p.global_cut);
      for (auto& [k, v] : p.write_set) ctx.write_set[k] = std::move(v);
    }
  }
  return std::make_unique<HydroTxn>(*this, info, std::move(ctx));
}

sim::Task<std::optional<std::vector<Value>>> HydroTxn::read(
    std::vector<Key> keys) {
  std::vector<Value> out(keys.size());
  std::vector<size_t> missing;
  for (size_t i = 0; i < keys.size(); ++i) {
    const Key k = keys[i];
    if (auto it = ctx_.write_set.find(k); it != ctx_.write_set.end()) {
      out[i] = it->second;
    } else if (auto it2 = read_set_.find(k); it2 != read_set_.end()) {
      out[i] = it2->second;
    } else {
      missing.push_back(i);
    }
  }
  if (missing.empty()) co_return out;

  cache::HydroReadReq req;
  req.keys.reserve(missing.size());
  for (size_t idx : missing) req.keys.push_back(keys[idx]);
  ctx_.deps.compact();  // so the attached copy shares the node wholesale
  req.context = ctx_.deps;

  obs::Tracer* tracer = adapter_.tracer_;
  obs::SpanHandle span;
  obs::TraceContext span_ctx;
  const SimTime t0 = adapter_.rpc_.now();
  if (tracer != nullptr) {
    span = tracer->begin(info_.trace, "read", "client_lib",
                         adapter_.rpc_.address(), t0);
    tracer->annotate(span, "keys", static_cast<uint64_t>(missing.size()));
    span_ctx = tracer->context_of(span);
  }
  auto resp = co_await adapter_.rpc_.call<cache::HydroReadResp>(
      adapter_.cache_address_, cache::kHydroRead, std::move(req), span_ctx);
  if (tracer != nullptr) {
    tracer->annotate(span, "abort", resp.abort ? 1 : 0);
    tracer->add_time(span_ctx.trace_id, obs::Bucket::kStorage,
                     adapter_.rpc_.now() - t0);
    tracer->end(span, adapter_.rpc_.now());
  }
  if (resp.abort) co_return std::nullopt;

  ctx_.global_cut = std::max(ctx_.global_cut, resp.global_cut);
  for (size_t j = 0; j < missing.size(); ++j) {
    const size_t idx = missing[j];
    const auto& e = resp.entries[j];
    out[idx] = e.value;
    read_set_.emplace(keys[idx], e.value);
    ctx_.deps.mark_read(e.key, e.counter, e.written_at);
    ctx_.lamport = std::max(ctx_.lamport, e.counter);
    for (const auto& d : e.deps) {
      ctx_.deps.require(d.key, d.counter, d.written_at,
                        static_cast<uint8_t>(std::min<int>(d.level + 1, 2)));
      ctx_.lamport = std::max(ctx_.lamport, d.counter);
    }
  }
  co_return out;
}

void HydroTxn::write(Key k, Value v) { ctx_.write_set[k] = std::move(v); }

cache::DepMap HydroTxn::shipped_deps() const {
  ctx_.deps.compact();  // fold pending once, in place, before the copy
  cache::DepMap shipped = ctx_.deps;
  const SimTime horizon =
      std::min(ctx_.global_cut,
               adapter_.rpc_.now() - adapter_.config_.dep_gc_window);
  if (info_.is_static && adapter_.config_.static_metadata_optimization) {
    // One pass for GC + declared-set pruning; read markers are exempt from
    // both (they drive conflict aborts while the transaction runs).
    std::unordered_set<Key> relevant(info_.declared_read_set.begin(),
                                     info_.declared_read_set.end());
    relevant.insert(info_.declared_write_set.begin(),
                    info_.declared_write_set.end());
    shipped.retain([&](Key k, const cache::Dep& d) {
      return d.read || (d.written_at >= horizon && relevant.count(k) != 0);
    });
  } else {
    shipped.gc_before(horizon);
  }
  return shipped;
}

Buffer HydroTxn::export_context() const {
  HydroContext out;
  out.deps = shipped_deps();
  out.lamport = ctx_.lamport;
  out.global_cut = ctx_.global_cut;
  out.write_set = ctx_.write_set;
  return encode_message(out);
}

size_t HydroTxn::metadata_bytes() const {
  // Same number as shipped_deps().wire_bytes(), but computed by counting
  // the surviving entries instead of materializing the pruned copy — this
  // runs per function execution (twice when tracing), and the copy was a
  // measurable share of HydroCache wall time.
  const SimTime horizon =
      std::min(ctx_.global_cut,
               adapter_.rpc_.now() - adapter_.config_.dep_gc_window);
  const bool restricted =
      info_.is_static && adapter_.config_.static_metadata_optimization;
  std::unordered_set<Key> relevant;
  if (restricted) {
    relevant.insert(info_.declared_read_set.begin(),
                    info_.declared_read_set.end());
    relevant.insert(info_.declared_write_set.begin(),
                    info_.declared_write_set.end());
  }
  size_t n = 0;
  ctx_.deps.for_each([&](Key k, const cache::Dep& d) {
    if (!d.read && d.written_at < horizon) return;
    // Read markers survive restrict_to (they drive conflict aborts), so
    // only non-read entries are subject to the declared-set pruning.
    if (restricted && !d.read && relevant.count(k) == 0) return;
    ++n;
  });
  return 4 + n * cache::kDepWireBytes;
}

// The context as carried into the client's next transaction: everything
// becomes validation-only history (level 2, no read markers), pruned
// against the stable cut.
cache::DepMap HydroTxn::session_past(SimTime horizon) const {
  // Entries stream out of the sorted context in ascending key order, so
  // the session map is assembled directly in canonical wire form — the
  // per-entry search/insert machinery would be pure overhead here.
  cache::DepMap::RawBuilder past(ctx_.deps.size());
  ctx_.deps.for_each([&](Key k, const cache::Dep& d) {
    if (d.written_at < horizon) return;
    past.append(k, d.counter, d.written_at, false, 2);
  });
  return std::move(past).finish();
}

sim::Task<std::optional<Buffer>> HydroTxn::commit() {
  const SimTime gc_horizon =
      std::min(ctx_.global_cut,
               adapter_.rpc_.now() - adapter_.config_.dep_gc_window);
  if (ctx_.write_set.empty()) {
    HydroSession s;
    s.lamport = ctx_.lamport;
    s.global_cut = ctx_.global_cut;
    s.deps = session_past(gc_horizon);
    co_return encode_message(s);
  }

  // Build the stored dependency list: versions this transaction read
  // (level 0) and their direct dependencies (level 1).  Level-2 entries
  // exist in the context for validation but are not re-stored — this is
  // what keeps stored metadata bounded.
  std::vector<cache::StoredDep> deps;
  ctx_.deps.for_each([&](Key k, const cache::Dep& d) {
    if (ctx_.write_set.count(k) != 0) return;  // superseded by our write
    if (d.read) {
      deps.push_back(cache::StoredDep{k, d.counter, d.written_at, 0});
    } else if (d.level <= 1) {
      deps.push_back(cache::StoredDep{k, d.counter, d.written_at, 1});
    }
  });
  if (deps.size() > adapter_.config_.stored_dep_cap) {
    // Keep the most constraining entries: level 0 first, then recency,
    // with the key as a total-order tiebreak so the kept subset is
    // canonical (independent of the context's iteration order).
    std::sort(deps.begin(), deps.end(),
              [](const cache::StoredDep& a, const cache::StoredDep& b) {
                if (a.level != b.level) return a.level < b.level;
                if (a.written_at != b.written_at) {
                  return a.written_at > b.written_at;
                }
                return a.key < b.key;
              });
    deps.resize(adapter_.config_.stored_dep_cap);
  }

  const uint64_t counter = ctx_.lamport + 1;
  const SimTime now = adapter_.rpc_.now();

  // Co-written siblings: every key written by this transaction depends on
  // the others, which is how readers detect torn visibility.
  std::vector<cache::StoredDep> siblings;
  siblings.reserve(ctx_.write_set.size());
  for (const auto& [k, v] : ctx_.write_set) {
    siblings.push_back(cache::StoredDep{k, counter, now, 0});
  }

  std::vector<storage::EvItem> items;
  items.reserve(ctx_.write_set.size());
  for (const auto& [k, v] : ctx_.write_set) {
    cache::HydroStored stored;
    stored.value = v;
    std::vector<cache::StoredDep> list = deps;
    for (const auto& s : siblings) {
      if (s.key != k) list.push_back(s);
    }
    stored.deps = cache::DepList(std::move(list));
    storage::EvItem item;
    item.key = k;
    item.version = storage::EvVersion{counter, info_.txn_id};
    BufWriter w;
    stored.encode(w);
    const Buffer payload = w.take();
    item.payload = Value(std::string_view(
        reinterpret_cast<const char*>(payload.data()), payload.size()));
    items.push_back(std::move(item));
  }
  obs::Tracer* tracer = adapter_.tracer_;
  obs::SpanHandle span;
  obs::TraceContext span_ctx;
  const SimTime t0 = adapter_.rpc_.now();
  if (tracer != nullptr) {
    span = tracer->begin(info_.trace, "commit", "client_lib",
                         adapter_.rpc_.address(), t0);
    tracer->annotate(span, "writes",
                     static_cast<uint64_t>(ctx_.write_set.size()));
    span_ctx = tracer->context_of(span);
  }
  auto versions = co_await adapter_.storage_.put(std::move(items), span_ctx);
  if (tracer != nullptr) {
    tracer->annotate(span, "committed", versions.has_value() ? 1 : 0);
    tracer->add_time(span_ctx.trace_id, obs::Bucket::kStorage,
                     adapter_.rpc_.now() - t0);
    tracer->end(span, adapter_.rpc_.now());
  }
  // Unreachable replica through the retry budget: abort the DAG.
  if (!versions.has_value()) co_return std::nullopt;

  HydroSession session;
  session.lamport = counter;
  session.global_cut = ctx_.global_cut;
  session.deps = session_past(gc_horizon);
  size_t i = 0;
  for (const auto& [k, v] : ctx_.write_set) {
    session.lamport = std::max(session.lamport, (*versions)[i].counter);
    // The client's own writes stay at level 1: they are the nearest
    // dependencies of whatever it does next.
    session.deps.require(k, (*versions)[i].counter, now, 1);
    ++i;
  }
  co_return encode_message(session);
}

}  // namespace faastcc::client
