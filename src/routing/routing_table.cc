#include "routing/routing_table.h"

#include <algorithm>
#include <cassert>

namespace faastcc::routing {

std::vector<uint32_t> RoutingTable::slots_of_partition(PartitionId p) const {
  std::vector<uint32_t> out;
  for (uint32_t s = 0; s < slot_owner.size(); ++s) {
    if (slot_owner[s] == p) out.push_back(s);
  }
  return out;
}

RoutingTable RoutingTable::initial(std::vector<PartitionAddress> partitions,
                                   size_t slots_per_partition) {
  assert(!partitions.empty());
  RoutingTable t;
  t.epoch = 1;
  t.partitions = std::move(partitions);
  const size_t n = t.partitions.size();
  // num_slots is a multiple of n and slot s belongs to s mod n, so
  // partition_of(k) = (k mod num_slots) mod n = k mod n: identical to the
  // historical static routing.
  t.slot_owner.resize(n * std::max<size_t>(1, slots_per_partition));
  for (uint32_t s = 0; s < t.slot_owner.size(); ++s) {
    t.slot_owner[s] = mod_partition(s, n);
  }
  return t;
}

RoutingTable RoutingTable::with_partitions_added(
    const std::vector<PartitionAddress>& added) const {
  RoutingTable next = *this;
  next.epoch = epoch + 1;
  const uint32_t old_count = static_cast<uint32_t>(partitions.size());
  for (PartitionAddress a : added) next.partitions.push_back(a);
  // Joiners start unreplicated; a replicated table keeps one replica list
  // per partition so indexes stay aligned.
  if (!next.replicas.empty()) next.replicas.resize(next.partitions.size());
  if (added.empty()) return next;

  const size_t target = next.num_slots() / next.num_partitions();
  std::vector<size_t> load(next.num_partitions(), 0);
  for (uint32_t o : next.slot_owner) ++load[o];

  for (uint32_t joiner = old_count;
       joiner < static_cast<uint32_t>(next.num_partitions()); ++joiner) {
    while (load[joiner] < target) {
      // Steal from the most-loaded incumbent; ties resolve to the lowest
      // partition id so the plan is a pure function of the old table.
      uint32_t victim = 0;
      for (uint32_t p = 1; p < old_count; ++p) {
        if (load[p] > load[victim]) victim = p;
      }
      if (load[victim] <= target) break;  // nothing left worth moving
      // Highest-numbered slot of the victim moves first (deterministic and
      // cheap to find scanning from the top of the ring).
      for (uint32_t s = static_cast<uint32_t>(next.num_slots()); s-- > 0;) {
        if (next.slot_owner[s] == victim) {
          next.slot_owner[s] = joiner;
          --load[victim];
          ++load[joiner];
          break;
        }
      }
    }
  }
  return next;
}

RoutingTable RoutingTable::with_partitions_removed(size_t count) const {
  assert(count < partitions.size());
  RoutingTable next = *this;
  next.epoch = epoch + 1;
  if (count == 0) return next;
  const uint32_t survivors =
      static_cast<uint32_t>(partitions.size() - count);
  next.partitions.resize(survivors);
  if (!next.replicas.empty()) next.replicas.resize(survivors);

  std::vector<size_t> load(survivors, 0);
  for (uint32_t o : next.slot_owner) {
    if (o < survivors) ++load[o];
  }
  // Return each orphaned slot (ascending ring order) to the least-loaded
  // survivor, ties towards the lowest id.  For a table that was grown from
  // a balanced base this hands every slot straight back to the incumbent
  // it was stolen from, so add-then-remove round-trips the assignment.
  for (uint32_t s = 0; s < next.num_slots(); ++s) {
    if (next.slot_owner[s] < survivors) continue;
    uint32_t heir = 0;
    for (uint32_t p = 1; p < survivors; ++p) {
      if (load[p] < load[heir]) heir = p;
    }
    next.slot_owner[s] = heir;
    ++load[heir];
  }
  return next;
}

RoutingTable RoutingTable::with_leader_replaced(
    PartitionId p, PartitionAddress candidate) const {
  assert(p < partitions.size());
  RoutingTable next = *this;
  next.epoch = epoch + 1;
  next.partitions[p] = candidate;
  if (p < next.replicas.size()) {
    auto& reps = next.replicas[p];
    reps.erase(std::remove(reps.begin(), reps.end(), candidate), reps.end());
  }
  return next;
}

RoutingTable RoutingTable::decode(BufReader& r) {
  RoutingTable t;
  t.epoch = r.get_u32();
  const uint32_t np = r.get_u32();
  t.partitions.reserve(np);
  for (uint32_t i = 0; i < np; ++i) t.partitions.push_back(r.get_u32());
  const uint32_t ns = r.get_u32();
  t.slot_owner.reserve(ns);
  for (uint32_t i = 0; i < ns; ++i) {
    const uint32_t o = r.get_u32();
    // Strict decode: a slot owned by a partition the table does not list
    // is a corrupted or mis-truncated table (e.g. one that survived a
    // shrink with a dangling owner); serving it would route keys to a
    // retired endpoint.
    if (o >= np) throw CodecError("routing table: slot owned by retired partition");
    t.slot_owner.push_back(o);
  }
  if (r.remaining() > 0) {
    const uint32_t nr = r.get_u32();
    if (nr != np) throw CodecError("routing table: replica list count mismatch");
    t.replicas.resize(nr);
    for (uint32_t i = 0; i < nr; ++i) {
      const uint32_t len = r.get_u32();
      t.replicas[i].reserve(len);
      for (uint32_t j = 0; j < len; ++j) t.replicas[i].push_back(r.get_u32());
    }
  }
  return t;
}

}  // namespace faastcc::routing
