// Command-line experiment driver.
//
//   faastcc_sim [--system=faastcc|hydrocache|cloudburst] [--zipf=1.0]
//               [--static] [--si] [--dags=1000] [--clients=16]
//               [--dag-size=6] [--keys=100000] [--partitions=16]
//               [--nodes=10] [--cache-capacity=inf|0|N] [--seed=42]
//               [--no-prewarm] [--check] [--json]
//               [--loss=0.01] [--dup=0.005] [--delay-spike-prob=0.005]
//               [--delay-spike-ms=10] [--rpc-timeout-ms=25]
//               [--dag-timeout-ms=1000] [--crash=<addr>:<from_ms>:<until_ms>]
//               [--trace-out=trace.json] [--trace-sample=1]
//               [--trace-buffer=65536]
//               [--elastic-add=8] [--elastic-at-ms=500] [--elastic-slots=8]
//
// Runs one cluster experiment and prints the summary (human table or a
// single JSON object for scripting).  With --trace-out the run also
// records deterministic distributed traces and writes them in Chrome
// trace-event format (open in chrome://tracing or Perfetto).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "harness/summary.h"
#include "harness/table.h"

using namespace faastcc;
using namespace faastcc::harness;

namespace {

struct CliOptions {
  ClusterParams params;
  bool json = false;
  bool ok = true;
  std::string trace_out;
};

void usage() {
  std::fprintf(
      stderr,
      "usage: faastcc_sim [options]\n"
      "  --system=faastcc|hydrocache|cloudburst   (default faastcc)\n"
      "  --zipf=<theta>                           (default 1.0)\n"
      "  --static                                 static transactions\n"
      "  --si                                     snapshot-isolation mode\n"
      "  --dags=<n>          DAGs per client      (default 1000)\n"
      "  --clients=<n>                            (default 16)\n"
      "  --dag-size=<n>      functions per chain  (default 6)\n"
      "  --keys=<n>          dataset size         (default 100000)\n"
      "  --partitions=<n>                         (default 16)\n"
      "  --nodes=<n>         compute nodes        (default 10)\n"
      "  --cache-capacity=inf|0|<n> entries/node  (default inf)\n"
      "  --seed=<n>                               (default 42)\n"
      "  --no-prewarm        skip cache pre-warming\n"
      "  --check             attach the consistency oracle (FaaSTCC only;\n"
      "                      zero perturbation, exit 1 on violations)\n"
      "  --json              machine-readable output\n"
      "fault injection (all off by default; see docs/simulation.md):\n"
      "  --loss=<p>          fabric message loss probability\n"
      "  --dup=<p>           fabric message duplication probability\n"
      "  --delay-spike-prob=<p>  probability of a delivery delay spike\n"
      "  --delay-spike-ms=<n>    spike magnitude      (default 10)\n"
      "  --rpc-timeout-ms=<n>    fabric RPC timeout   (default 25)\n"
      "  --dag-timeout-ms=<n>    client DAG watchdog  (default 1000)\n"
      "  --crash=<addr>:<from_ms>:<until_ms>  sever an endpoint during\n"
      "                      [from, until); repeatable\n"
      "tracing (see docs/simulation.md):\n"
      "  --trace-out=<path>  enable tracing, write Chrome trace JSON\n"
      "  --trace-sample=<n>  record every n-th DAG trace (default 1)\n"
      "  --trace-buffer=<n>  span ring-buffer capacity (default 65536)\n"
      "elastic scale-out (FaaSTCC only; see docs/topology-and-elasticity.md):\n"
      "  --elastic-add=<n>      joiner partitions added mid-run (default 0)\n"
      "  --elastic-at-ms=<n>    sim-time of the epoch bump (required with\n"
      "                         --elastic-add; 0 disables the bump)\n"
      "  --elastic-slots=<n>    routing slots per partition (default 8)\n");
}

bool parse_value(const char* arg, const char* name, std::string* out) {
  const size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *out = arg + n + 1;
  return true;
}

CliOptions parse(int argc, char** argv) {
  CliOptions opt;
  ClusterParams& p = opt.params;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    std::string v;
    if (parse_value(arg, "--system", &v)) {
      if (v == "faastcc") {
        p.system = SystemKind::kFaasTcc;
      } else if (v == "hydrocache") {
        p.system = SystemKind::kHydroCache;
      } else if (v == "cloudburst") {
        p.system = SystemKind::kCloudburst;
      } else {
        std::fprintf(stderr, "unknown system '%s'\n", v.c_str());
        opt.ok = false;
      }
    } else if (parse_value(arg, "--zipf", &v)) {
      p.workload.zipf = std::atof(v.c_str());
    } else if (std::strcmp(arg, "--static") == 0) {
      p.workload.static_txns = true;
    } else if (std::strcmp(arg, "--si") == 0) {
      p.faastcc.snapshot_isolation = true;
    } else if (parse_value(arg, "--dags", &v)) {
      p.dags_per_client = std::atoi(v.c_str());
    } else if (parse_value(arg, "--clients", &v)) {
      p.clients = static_cast<size_t>(std::atoi(v.c_str()));
    } else if (parse_value(arg, "--dag-size", &v)) {
      p.workload.dag_size = std::atoi(v.c_str());
    } else if (parse_value(arg, "--keys", &v)) {
      p.workload.num_keys = static_cast<uint64_t>(std::atoll(v.c_str()));
    } else if (parse_value(arg, "--partitions", &v)) {
      p.partitions = static_cast<size_t>(std::atoi(v.c_str()));
    } else if (parse_value(arg, "--nodes", &v)) {
      p.compute_nodes = static_cast<size_t>(std::atoi(v.c_str()));
    } else if (parse_value(arg, "--cache-capacity", &v)) {
      if (v == "inf") {
        p.cache_capacity = SIZE_MAX;
      } else {
        p.cache_capacity = static_cast<size_t>(std::atoll(v.c_str()));
      }
    } else if (parse_value(arg, "--seed", &v)) {
      p.seed = static_cast<uint64_t>(std::atoll(v.c_str()));
    } else if (parse_value(arg, "--loss", &v)) {
      p.faults.loss_prob = std::atof(v.c_str());
    } else if (parse_value(arg, "--dup", &v)) {
      p.faults.dup_prob = std::atof(v.c_str());
    } else if (parse_value(arg, "--delay-spike-prob", &v)) {
      p.faults.delay_spike_prob = std::atof(v.c_str());
    } else if (parse_value(arg, "--delay-spike-ms", &v)) {
      p.faults.delay_spike = milliseconds(std::atoll(v.c_str()));
    } else if (parse_value(arg, "--rpc-timeout-ms", &v)) {
      p.faults.rpc_timeout = milliseconds(std::atoll(v.c_str()));
    } else if (parse_value(arg, "--dag-timeout-ms", &v)) {
      p.faults.dag_timeout = milliseconds(std::atoll(v.c_str()));
    } else if (parse_value(arg, "--crash", &v)) {
      net::CrashWindow w;
      unsigned long long addr = 0, from_ms = 0, until_ms = 0;
      if (std::sscanf(v.c_str(), "%llu:%llu:%llu", &addr, &from_ms,
                      &until_ms) != 3) {
        std::fprintf(stderr, "bad --crash spec '%s'\n", v.c_str());
        opt.ok = false;
      } else {
        w.addr = static_cast<net::Address>(addr);
        w.from = milliseconds(static_cast<int64_t>(from_ms));
        w.until = milliseconds(static_cast<int64_t>(until_ms));
        p.faults.crashes.push_back(w);
      }
    } else if (parse_value(arg, "--trace-out", &v)) {
      opt.trace_out = v;
      p.trace.enabled = true;
    } else if (parse_value(arg, "--trace-sample", &v)) {
      p.trace.sample_every = static_cast<uint32_t>(std::atoi(v.c_str()));
      if (p.trace.sample_every == 0) p.trace.sample_every = 1;
    } else if (parse_value(arg, "--trace-buffer", &v)) {
      p.trace.ring_capacity = static_cast<size_t>(std::atoll(v.c_str()));
    } else if (parse_value(arg, "--elastic-add", &v)) {
      p.elastic.add_partitions = static_cast<size_t>(std::atoi(v.c_str()));
    } else if (parse_value(arg, "--elastic-at-ms", &v)) {
      p.elastic.at = milliseconds(std::atoll(v.c_str()));
    } else if (parse_value(arg, "--elastic-slots", &v)) {
      p.elastic.slots_per_partition =
          static_cast<size_t>(std::atoll(v.c_str()));
    } else if (std::strcmp(arg, "--no-prewarm") == 0) {
      p.prewarm_caches = false;
    } else if (std::strcmp(arg, "--check") == 0) {
      p.check_consistency = true;
    } else if (std::strcmp(arg, "--json") == 0) {
      opt.json = true;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg);
      opt.ok = false;
    }
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opt = parse(argc, argv);
  if (!opt.ok) {
    usage();
    return 2;
  }
  std::fprintf(stderr,
               "running %s  zipf=%.2f  %s%s clients=%zu x %d DAGs ...\n",
               system_name(opt.params.system), opt.params.workload.zipf,
               opt.params.workload.static_txns ? "static " : "dynamic ",
               opt.params.faastcc.snapshot_isolation ? "(SI) " : "",
               opt.params.clients, opt.params.dags_per_client);

  Cluster cluster(opt.params);
  const RunResult result = cluster.run();
  const SummaryStats s = summarize(result);

  int exit_code = 0;
  if (opt.params.check_consistency) {
    check::ConsistencyOracle* oracle = cluster.oracle();
    if (oracle == nullptr) {
      std::fprintf(stderr, "--check is only supported for --system=faastcc\n");
      return 2;
    }
    const auto violations = oracle->check();
    if (violations.empty()) {
      std::fprintf(stderr,
                   "consistency check: clean (%zu installs, %zu reads, "
                   "%zu commits)\n",
                   oracle->installs_recorded(), oracle->reads_recorded(),
                   oracle->commits_recorded());
    } else {
      std::fprintf(stderr, "%s", oracle->report(violations).c_str());
      exit_code = 1;
    }
  }

  if (!opt.trace_out.empty()) {
    std::ofstream out(opt.trace_out);
    if (!out) {
      std::fprintf(stderr, "cannot open trace output '%s'\n",
                   opt.trace_out.c_str());
      return 1;
    }
    cluster.tracer().export_chrome_trace(out);
    std::fprintf(stderr, "trace: %llu spans (%llu dropped) -> %s\n",
                 static_cast<unsigned long long>(
                     cluster.tracer().spans_recorded()),
                 static_cast<unsigned long long>(
                     cluster.tracer().spans_dropped()),
                 opt.trace_out.c_str());
  }

  if (opt.json) {
    std::printf(
        "{\"system\":\"%s\",\"zipf\":%.3f,\"static\":%s,"
        "\"latency_med_ms\":%.4f,\"latency_p99_ms\":%.4f,"
        "\"throughput\":%.2f,\"metadata_med\":%.1f,\"metadata_p99\":%.1f,"
        "\"rounds_med\":%.2f,\"rounds_p99\":%.2f,"
        "\"read_bytes_med\":%.1f,\"read_bytes_p99\":%.1f,"
        "\"cache_bytes\":%.0f,\"cache_entries\":%.0f,"
        "\"abort_rate\":%.5f,\"hit_rate\":%.5f,"
        "\"committed\":%.0f,\"duration_s\":%.3f,\"sim_events\":%llu,"
        "\"net_lost\":%llu,\"net_duplicated\":%llu,\"net_delay_spikes\":%llu,"
        "\"net_crash_dropped\":%llu,\"rpc_timeouts\":%llu,"
        "\"rpc_retries\":%llu,\"dag_timeouts\":%llu",
        system_name(opt.params.system), opt.params.workload.zipf,
        opt.params.workload.static_txns ? "true" : "false", s.latency_med_ms,
        s.latency_p99_ms, s.throughput, s.metadata_med, s.metadata_p99,
        s.rounds_med, s.rounds_p99, s.read_bytes_med, s.read_bytes_p99,
        s.cache_bytes, s.cache_entries, s.abort_rate, s.hit_rate, s.committed,
        s.duration_s, static_cast<unsigned long long>(result.sim_events),
        static_cast<unsigned long long>(result.metrics.net_messages_lost),
        static_cast<unsigned long long>(result.metrics.net_messages_duplicated),
        static_cast<unsigned long long>(result.metrics.net_delay_spikes),
        static_cast<unsigned long long>(result.metrics.net_crash_dropped),
        static_cast<unsigned long long>(result.metrics.net_rpc_timeouts),
        static_cast<unsigned long long>(result.metrics.net_rpc_retries),
        static_cast<unsigned long long>(result.metrics.dag_timeouts.value()));
    if (opt.params.trace.enabled) {
      // Trace-derived keys only appear when tracing is on, so existing
      // consumers of the default JSON shape are unaffected.
      std::printf(
          ",\"breakdown_queue_ms\":%.4f,\"breakdown_compute_ms\":%.4f,"
          "\"breakdown_storage_ms\":%.4f,\"breakdown_network_ms\":%.4f,"
          "\"trace_spans\":%llu",
          s.breakdown_queue_ms, s.breakdown_compute_ms, s.breakdown_storage_ms,
          s.breakdown_network_ms,
          static_cast<unsigned long long>(cluster.tracer().spans_recorded()));
    }
    std::printf("}\n");
    return exit_code;
  }

  Table table({"metric", "value"});
  table.add_row({"latency median", fmt(s.latency_med_ms, 2) + " ms"});
  table.add_row({"latency p99", fmt(s.latency_p99_ms, 2) + " ms"});
  table.add_row({"throughput", fmt(s.throughput, 1) + " DAGs/s"});
  table.add_row({"metadata median / p99",
                 fmt(s.metadata_med, 0) + " / " + fmt(s.metadata_p99, 0) +
                     " B"});
  table.add_row({"storage rounds median / p99",
                 fmt(s.rounds_med, 1) + " / " + fmt(s.rounds_p99, 1)});
  table.add_row({"storage read bytes median / p99",
                 fmt(s.read_bytes_med, 0) + " / " +
                     fmt(s.read_bytes_p99, 0) + " B"});
  table.add_row({"cache footprint", fmt_bytes(s.cache_bytes)});
  table.add_row({"cache hit rate", fmt(100 * s.hit_rate, 1) + " %"});
  table.add_row({"abort rate", fmt(100 * s.abort_rate, 2) + " %"});
  table.add_row({"committed DAGs", fmt(s.committed, 0)});
  table.add_row({"simulated duration", fmt(s.duration_s, 2) + " s"});
  if (opt.params.trace.enabled) {
    table.add_row({"breakdown queue median", fmt(s.breakdown_queue_ms, 3) +
                   " ms"});
    table.add_row({"breakdown compute median", fmt(s.breakdown_compute_ms, 3) +
                   " ms"});
    table.add_row({"breakdown storage median", fmt(s.breakdown_storage_ms, 3) +
                   " ms"});
    table.add_row({"breakdown network median", fmt(s.breakdown_network_ms, 3) +
                   " ms"});
  }
  if (opt.params.faults.enabled()) {
    const auto& m = result.metrics;
    table.add_row({"net lost / duplicated",
                   fmt(static_cast<double>(m.net_messages_lost), 0) + " / " +
                       fmt(static_cast<double>(m.net_messages_duplicated), 0)});
    table.add_row(
        {"delay spikes / crash drops",
         fmt(static_cast<double>(m.net_delay_spikes), 0) + " / " +
             fmt(static_cast<double>(m.net_crash_dropped), 0)});
    table.add_row({"rpc timeouts / retries",
                   fmt(static_cast<double>(m.net_rpc_timeouts), 0) + " / " +
                       fmt(static_cast<double>(m.net_rpc_retries), 0)});
    table.add_row({"DAG watchdog timeouts",
                   fmt(static_cast<double>(m.dag_timeouts.value()), 0)});
  }
  table.print();
  return exit_code;
}
