file(REMOVE_RECURSE
  "CMakeFiles/example_social_network.dir/social_network.cpp.o"
  "CMakeFiles/example_social_network.dir/social_network.cpp.o.d"
  "example_social_network"
  "example_social_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_social_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
