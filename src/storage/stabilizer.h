// Stabilization state, one instance per TCC partition.
//
// Partitions periodically broadcast a *safe time*: a timestamp below which
// they will never again commit.  The minimum over the most recent broadcast
// of every partition is the global stable time.  Reads are clamped to it,
// which is what lets the storage layer serve a consistent snapshot in one
// round and is the "stable time ... used as the promise" of §5.
#pragma once

#include <cstdint>
#include <vector>

#include "common/hlc.h"
#include "common/types.h"

namespace faastcc::storage {

class Stabilizer {
 public:
  Stabilizer(PartitionId self, size_t num_partitions)
      : self_(self), last_heard_(num_partitions, Timestamp::min()) {}

  // Records a broadcast from `from` (possibly self).  Stale gossip (older
  // than already recorded) is ignored; safe times are monotone per sender.
  void on_gossip(PartitionId from, Timestamp safe_time);

  // Global stable time: min over all partitions' last-heard safe times.
  // Members that have never gossiped sit at Timestamp::min() and pin the
  // result to the floor until they are heard from.
  Timestamp stable_time() const;

  // ---- Elastic membership -------------------------------------------------
  // New members enter the min as a strict barrier, exactly like the
  // startup cohort: seeded Timestamp::min(), pinning the stable view to
  // the floor until the joiner has genuinely gossiped a safe time.  A
  // lenient "excluded until heard" (Timestamp::max()) sentinel is NOT
  // sound here: the caching layer extends promises of a partition's keys
  // by that partition's pushed stable time, and a cache that missed the
  // epoch bump still attributes a migrated key to its old owner — whose
  // stable, were the joiner excluded, could overrun the joiner's safe
  // time and promise straight past a commit the joiner installs below it.
  // The barrier window is one activation plus a gossip period; during it
  // the adopter's stable (and therefore promise extension and GC) simply
  // pauses, which costs freshness, never correctness.

  // Grows membership to `num_partitions`, seeding new members min() (not
  // yet gossiped).  No-op when membership is already at least that large.
  void extend_membership(size_t num_partitions);

  Timestamp last_heard(PartitionId p) const { return last_heard_.at(p); }
  const std::vector<Timestamp>& last_heard_all() const { return last_heard_; }
  size_t num_partitions() const { return last_heard_.size(); }
  PartitionId self() const { return self_; }

 private:
  PartitionId self_;
  std::vector<Timestamp> last_heard_;
};

}  // namespace faastcc::storage
