// Ablation: the cache refresh period (paper §6.1 fixes it at 50 ms).
//
// Pushes both deliver fresh versions and extend promises of unchanged
// keys, so the refresh period controls how stale a cache entry's promise
// can be — and with it the hit rate and the storage-refresh traffic.
#include "bench_util.h"

using namespace faastcc;
using namespace faastcc::bench;

int main() {
  print_preamble("Ablation", "cache refresh (push) period, FaaSTCC, zipf 1.0");

  const Duration periods[] = {milliseconds(10), milliseconds(25),
                              milliseconds(50), milliseconds(100),
                              milliseconds(200)};

  Table table({"refresh period", "median (ms)", "p99 (ms)", "hit rate %",
               "rounds med"});
  for (Duration period : periods) {
    const std::string key =
        "ablation_refresh_" + std::to_string(period / 1000) + "ms_n" +
        std::to_string(harness::bench_dags_per_client());
    SummaryStats s;
    if (auto cached = harness::load_cached(key)) {
      s = *cached;
    } else {
      harness::ExperimentConfig cfg =
          base_config(SystemKind::kFaasTcc, 1.0, false);
      harness::ClusterParams params = harness::make_params(cfg);
      params.tcc.push_period = period;
      harness::Cluster cluster(std::move(params));
      const auto result = cluster.run();
      s = harness::summarize(result);
      harness::store_cached(key, s);
    }
    table.add_row({std::to_string(period / 1000) + " ms",
                   fmt(s.latency_med_ms, 2), fmt(s.latency_p99_ms, 2),
                   fmt(100 * s.hit_rate, 1),
                   fmt(s.committed > 0 ? s.rounds_med : 0, 1)});
  }
  table.print();
  std::printf(
      "observed shape: nearly flat — promise freshness is bounded by the "
      "*stable time* carried\nin each push, which lags by the "
      "stabilization gossip period regardless of how often pushes\nare "
      "sent (see bench_ablation_stabilization for the knob that actually "
      "moves the hit rate).\nThe paper's 50 ms refresh sits comfortably "
      "on this plateau.\n");
  return 0;
}
