// Unit tests for the simulated network and RPC layer.
#include <gtest/gtest.h>

#include "net/network.h"
#include "net/rpc.h"
#include "sim/future.h"
#include "sim/when_all.h"

namespace faastcc::net {
namespace {

struct Echo {
  uint64_t x = 0;
  template <typename W>
  void encode(W& w) const { w.put_u64(x); }
  static Echo decode(BufReader& r) { return {r.get_u64()}; }
};

NetworkParams no_jitter() {
  NetworkParams p;
  p.jitter = 0;
  return p;
}

// ---------------------------------------------------------------------------
// Network
// ---------------------------------------------------------------------------

TEST(Network, DeliversAtBaseLatencyPlusSerialization) {
  sim::EventLoop loop;
  Network net(loop, no_jitter(), Rng(1));
  SimTime delivered = -1;
  net.register_endpoint(2, [&](Message) { delivered = loop.now(); });
  Message m;
  m.from = 1;
  m.to = 2;
  net.send(std::move(m));
  loop.run();
  // 32-byte header over 3125 B/us adds nothing measurable; base 75us.
  EXPECT_EQ(delivered, 75);
}

TEST(Network, LargeMessagesTakeBandwidthTime) {
  sim::EventLoop loop;
  Network net(loop, no_jitter(), Rng(1));
  SimTime delivered = -1;
  net.register_endpoint(2, [&](Message) { delivered = loop.now(); });
  Message m;
  m.from = 1;
  m.to = 2;
  m.payload.assign(3125 * 100, 0);  // 100 us of serialization at 25 Gbps
  net.send(std::move(m));
  loop.run();
  EXPECT_EQ(delivered, 175);
}

TEST(Network, ColocatedEndpointsUseIpcLatency) {
  sim::EventLoop loop;
  Network net(loop, no_jitter(), Rng(1));
  SimTime delivered = -1;
  net.register_endpoint(2, [&](Message) { delivered = loop.now(); });
  net.colocate(1, 2);
  Message m;
  m.from = 1;
  m.to = 2;
  net.send(std::move(m));
  loop.run();
  EXPECT_EQ(delivered, 5);
}

TEST(Network, JitterStaysWithinBound) {
  sim::EventLoop loop;
  NetworkParams p;
  p.jitter = 20;
  Network net(loop, p, Rng(99));
  std::vector<SimTime> deliveries;
  net.register_endpoint(2, [&](Message) { deliveries.push_back(loop.now()); });
  SimTime sent_at = 0;
  for (int i = 0; i < 200; ++i) {
    loop.schedule_at(i * 1000, [&net] {
      Message m;
      m.from = 1;
      m.to = 2;
      net.send(std::move(m));
    });
    (void)sent_at;
  }
  loop.run();
  ASSERT_EQ(deliveries.size(), 200u);
  for (int i = 0; i < 200; ++i) {
    const SimTime delay = deliveries[i] - i * 1000;
    EXPECT_GE(delay, 75);
    EXPECT_LT(delay, 96);
  }
}

TEST(Network, DropsToUnregisteredAddressAndCounts) {
  sim::EventLoop loop;
  Network net(loop, no_jitter(), Rng(1));
  Message m;
  m.from = 1;
  m.to = 77;
  net.send(std::move(m));
  loop.run();
  EXPECT_EQ(net.messages_dropped(), 1u);
}

TEST(Network, AccountsMessagesAndBytes) {
  sim::EventLoop loop;
  Network net(loop, no_jitter(), Rng(1));
  net.register_endpoint(2, [](Message) {});
  Message m;
  m.from = 1;
  m.to = 2;
  m.payload.assign(100, 0);
  net.send(std::move(m));
  loop.run();
  EXPECT_EQ(net.messages_sent(), 1u);
  EXPECT_EQ(net.bytes_sent(), 132u);  // payload + header
}

// ---------------------------------------------------------------------------
// RPC
// ---------------------------------------------------------------------------

TEST(Rpc, RoundTripTypedCall) {
  sim::EventLoop loop;
  Network net(loop, no_jitter(), Rng(1));
  RpcNode server(net, 1), client(net, 2);
  server.handle(7, [](Buffer b, Address) -> sim::Task<Buffer> {
    auto e = decode_message<Echo>(b);
    e.x *= 2;
    co_return encode_message(e);
  });
  uint64_t got = 0;
  sim::spawn([](RpcNode& c, uint64_t& out) -> sim::Task<void> {
    Echo e = co_await c.call<Echo>(1, 7, Echo{21});
    out = e.x;
  }(client, got));
  loop.run();
  EXPECT_EQ(got, 42u);
}

TEST(Rpc, RequestOutlivesCallerScope) {
  // Regression test for the lazy-task lifetime bug: requests built in a
  // loop and awaited later via when_all must not dangle.
  sim::EventLoop loop;
  Network net(loop, no_jitter(), Rng(1));
  RpcNode server(net, 1), client(net, 2);
  server.handle(7, [](Buffer b, Address) -> sim::Task<Buffer> {
    co_return b;  // echo
  });
  std::vector<uint64_t> got;
  sim::spawn([](RpcNode& c, std::vector<uint64_t>& out) -> sim::Task<void> {
    std::vector<sim::Task<Echo>> calls;
    for (uint64_t i = 0; i < 10; ++i) {
      Echo e{i * 100};  // dies before the await below
      calls.push_back(c.call<Echo>(1, 7, e));
    }
    auto results = co_await sim::when_all(c.loop(), std::move(calls));
    for (const Echo& e : results) out.push_back(e.x);
  }(client, got));
  loop.run();
  ASSERT_EQ(got.size(), 10u);
  for (uint64_t i = 0; i < 10; ++i) EXPECT_EQ(got[i], i * 100);
}

TEST(Rpc, ConcurrentCallsMatchResponsesById) {
  sim::EventLoop loop;
  Network net(loop, no_jitter(), Rng(1));
  RpcNode server(net, 1), client(net, 2);
  // Handler delays inversely to the value: responses return out of order.
  server.handle(7, [&loop](Buffer b, Address) -> sim::Task<Buffer> {
    auto e = decode_message<Echo>(b);
    co_await sim::sleep_for(loop, 1000 - e.x);
    co_return encode_message(e);
  });
  std::vector<uint64_t> got;
  sim::spawn([](RpcNode& c, std::vector<uint64_t>& out) -> sim::Task<void> {
    std::vector<sim::Task<Echo>> calls;
    for (uint64_t i = 0; i < 5; ++i) calls.push_back(c.call<Echo>(1, 7, Echo{i}));
    auto results = co_await sim::when_all(c.loop(), std::move(calls));
    for (const Echo& e : results) out.push_back(e.x);
  }(client, got));
  loop.run();
  EXPECT_EQ(got, (std::vector<uint64_t>{0, 1, 2, 3, 4}));
}

TEST(Rpc, OneWayMessagesReachHandler) {
  sim::EventLoop loop;
  Network net(loop, no_jitter(), Rng(1));
  RpcNode server(net, 1), client(net, 2);
  uint64_t got = 0;
  server.handle_oneway(9, [&](Buffer b, Address from) {
    got = decode_message<Echo>(b).x;
    EXPECT_EQ(from, 2u);
  });
  client.send(1, 9, Echo{13});
  loop.run();
  EXPECT_EQ(got, 13u);
}

TEST(Rpc, SizedCallReportsWireBytes) {
  sim::EventLoop loop;
  Network net(loop, no_jitter(), Rng(1));
  RpcNode server(net, 1), client(net, 2);
  server.handle(7, [](Buffer, Address) -> sim::Task<Buffer> {
    Buffer b(100, 0);
    co_return b;
  });
  size_t req_bytes = 0, resp_bytes = 0;
  sim::spawn([](RpcNode& c, size_t& rq, size_t& rs) -> sim::Task<void> {
    auto r = co_await c.call_raw_sized(1, 7, Buffer(50, 0));
    rq = r.request_wire_bytes;
    rs = r.response_wire_bytes;
  }(client, req_bytes, resp_bytes));
  loop.run();
  EXPECT_EQ(req_bytes, 50u + Message::kHeaderBytes);
  EXPECT_EQ(resp_bytes, 100u + Message::kHeaderBytes);
}

TEST(Rpc, HandlerRunsPerRequestConcurrently) {
  sim::EventLoop loop;
  Network net(loop, no_jitter(), Rng(1));
  RpcNode server(net, 1), client(net, 2);
  server.handle(7, [&loop](Buffer b, Address) -> sim::Task<Buffer> {
    co_await sim::sleep_for(loop, 1000);
    co_return b;
  });
  SimTime done_at = -1;
  sim::spawn([](RpcNode& c, SimTime& out) -> sim::Task<void> {
    std::vector<sim::Task<Echo>> calls;
    for (uint64_t i = 0; i < 4; ++i) calls.push_back(c.call<Echo>(1, 7, Echo{i}));
    co_await sim::when_all(c.loop(), std::move(calls));
    out = c.now();
  }(client, done_at));
  loop.run();
  // All four handlers overlap: ~1 RTT + 1000us service, not 4x.
  EXPECT_LT(done_at, 1400);
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

TEST(FaultInjection, LossDropsFabricMessages) {
  sim::EventLoop loop;
  Network net(loop, no_jitter(), Rng(1));
  FaultParams fp;
  fp.loss_prob = 1.0;
  net.set_faults(fp, Rng(7));
  int delivered = 0;
  net.register_endpoint(2, [&](Message) { ++delivered; });
  for (int i = 0; i < 10; ++i) {
    Message m;
    m.from = 1;
    m.to = 2;
    net.send(std::move(m));
  }
  loop.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(net.faults_lost(), 10u);
}

TEST(FaultInjection, DuplicationDeliversTwice) {
  sim::EventLoop loop;
  Network net(loop, no_jitter(), Rng(1));
  FaultParams fp;
  fp.dup_prob = 1.0;
  net.set_faults(fp, Rng(7));
  int delivered = 0;
  net.register_endpoint(2, [&](Message) { ++delivered; });
  Message m;
  m.from = 1;
  m.to = 2;
  net.send(std::move(m));
  loop.run();
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(net.faults_duplicated(), 1u);
}

TEST(FaultInjection, DelaySpikeAddsLatency) {
  sim::EventLoop loop;
  Network net(loop, no_jitter(), Rng(1));
  FaultParams fp;
  fp.delay_spike_prob = 1.0;
  fp.delay_spike = milliseconds(10);
  net.set_faults(fp, Rng(7));
  SimTime delivered = -1;
  net.register_endpoint(2, [&](Message) { delivered = loop.now(); });
  Message m;
  m.from = 1;
  m.to = 2;
  net.send(std::move(m));
  loop.run();
  EXPECT_EQ(delivered, 75 + milliseconds(10));
  EXPECT_EQ(net.faults_delay_spikes(), 1u);
}

TEST(FaultInjection, CrashWindowSeversEndpointBothWays) {
  sim::EventLoop loop;
  Network net(loop, no_jitter(), Rng(1));
  FaultParams fp;
  fp.crashes.push_back(CrashWindow{2, 0, milliseconds(1)});
  net.set_faults(fp, Rng(7));
  int at_2 = 0, at_3 = 0;
  net.register_endpoint(2, [&](Message) { ++at_2; });
  net.register_endpoint(3, [&](Message) { ++at_3; });
  // Inbound to the crashed endpoint during the window: dropped at delivery.
  loop.schedule_at(0, [&] {
    Message m;
    m.from = 3;
    m.to = 2;
    net.send(std::move(m));
  });
  // Outbound from the crashed endpoint during the window: dropped at send.
  loop.schedule_at(100, [&] {
    Message m;
    m.from = 2;
    m.to = 3;
    net.send(std::move(m));
  });
  // After the window the endpoint resumes.
  loop.schedule_at(milliseconds(2), [&] {
    Message m;
    m.from = 3;
    m.to = 2;
    net.send(std::move(m));
  });
  loop.run();
  EXPECT_EQ(at_2, 1);
  EXPECT_EQ(at_3, 0);
  EXPECT_EQ(net.faults_crash_dropped(), 2u);
}

TEST(FaultInjection, MidRunCrashWindowTakesEffectWithoutSetFaults) {
  // Regression: add_crash_window on a network whose fault layer was never
  // armed used to append a dead window — faults_enabled_ stayed false, so
  // send/deliver never consulted the crash schedule and the "crashed"
  // endpoint kept receiving.  The fix arms the layer, but must not touch
  // the default RPC timeout: a crash severs one endpoint, it does not opt
  // every call into timeouts.
  sim::EventLoop loop;
  Network net(loop, no_jitter(), Rng(1));
  int at_2 = 0;
  net.register_endpoint(2, [&](Message) { ++at_2; });
  // Window added mid-run, deterministically at 1 ms.
  loop.schedule_at(milliseconds(1), [&] {
    net.add_crash_window(CrashWindow{2, milliseconds(1), milliseconds(2)});
  });
  const auto send_to_2 = [&] {
    Message m;
    m.from = 3;
    m.to = 2;
    net.send(std::move(m));
  };
  loop.schedule_at(0, send_to_2);                    // before: delivered
  loop.schedule_at(milliseconds(1) + 100, send_to_2);  // inside: dropped
  loop.schedule_at(milliseconds(3), send_to_2);      // after: delivered
  loop.run();
  EXPECT_TRUE(net.faults_enabled());
  EXPECT_EQ(net.default_rpc_timeout(), 0);
  EXPECT_EQ(at_2, 2);
  EXPECT_EQ(net.faults_crash_dropped(), 1u);
}

TEST(FaultInjection, PerLinkLossOverrideIsDirectional) {
  sim::EventLoop loop;
  Network net(loop, no_jitter(), Rng(1));
  FaultParams fp;
  fp.loss_prob = 1.0;  // default: everything lost
  net.set_faults(fp, Rng(7));
  net.set_link_loss(1, 2, 0.0);  // except the 1 -> 2 direction
  int at_1 = 0, at_2 = 0;
  net.register_endpoint(1, [&](Message) { ++at_1; });
  net.register_endpoint(2, [&](Message) { ++at_2; });
  Message a;
  a.from = 1;
  a.to = 2;
  net.send(std::move(a));
  Message b;
  b.from = 2;
  b.to = 1;
  net.send(std::move(b));
  loop.run();
  EXPECT_EQ(at_2, 1);  // override cleared the loss
  EXPECT_EQ(at_1, 0);  // reverse direction still uses the default
}

TEST(FaultInjection, ColocatedLinksAreReliable) {
  sim::EventLoop loop;
  Network net(loop, no_jitter(), Rng(1));
  FaultParams fp;
  fp.loss_prob = 1.0;
  fp.dup_prob = 1.0;
  net.set_faults(fp, Rng(7));
  net.colocate(1, 2);
  int delivered = 0;
  net.register_endpoint(2, [&](Message) { ++delivered; });
  Message m;
  m.from = 1;
  m.to = 2;
  net.send(std::move(m));
  loop.run();
  // IPC is a same-node memory queue: exactly-once despite loss/dup knobs.
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(net.faults_lost(), 0u);
  EXPECT_EQ(net.faults_duplicated(), 0u);
}

// ---------------------------------------------------------------------------
// RPC timeouts and retries
// ---------------------------------------------------------------------------

TEST(Rpc, CallToUnregisteredAddressTimesOutInsteadOfHanging) {
  // Regression: a call to an address nobody registered used to leave the
  // caller suspended forever (the network counts the drop but nothing
  // resolves the pending promise).
  sim::EventLoop loop;
  Network net(loop, no_jitter(), Rng(1));
  RpcNode client(net, 2);
  bool completed = false;
  RpcStatus status = RpcStatus::kOk;
  sim::spawn([](RpcNode& c, bool& done, RpcStatus& st) -> sim::Task<void> {
    auto r = co_await c.call_raw_sized(77, 7, Buffer{}, milliseconds(25));
    st = r.status;
    done = true;
  }(client, completed, status));
  loop.run();
  EXPECT_TRUE(completed);
  EXPECT_EQ(status, RpcStatus::kTimeout);
  EXPECT_EQ(client.pending_calls(), 0u);
  EXPECT_EQ(net.rpc_timeouts(), 1u);
}

TEST(Rpc, DefaultTimeoutFromNetworkAppliesToFabricCalls) {
  sim::EventLoop loop;
  Network net(loop, no_jitter(), Rng(1));
  net.set_default_rpc_timeout(milliseconds(10));
  RpcNode client(net, 2);
  bool completed = false;
  SimTime done_at = -1;
  sim::spawn([](RpcNode& c, bool& done, SimTime& at) -> sim::Task<void> {
    auto r = co_await c.call_raw_sized(77, 7, Buffer{});
    EXPECT_FALSE(r.ok());
    done = true;
    at = c.now();
  }(client, completed, done_at));
  loop.run();
  EXPECT_TRUE(completed);
  EXPECT_EQ(done_at, milliseconds(10));
}

TEST(Rpc, ColocatedCallsNeverTimeOut) {
  sim::EventLoop loop;
  Network net(loop, no_jitter(), Rng(1));
  net.set_default_rpc_timeout(milliseconds(1));
  RpcNode server(net, 1), client(net, 2);
  net.colocate(1, 2);
  // The handler takes far longer than the default timeout.
  server.handle(7, [&loop](Buffer b, Address) -> sim::Task<Buffer> {
    co_await sim::sleep_for(loop, milliseconds(50));
    co_return b;
  });
  bool ok = false;
  sim::spawn([](RpcNode& c, bool& out) -> sim::Task<void> {
    auto r = co_await c.call_raw_sized(1, 7, Buffer{});
    out = r.ok();
  }(client, ok));
  loop.run();
  EXPECT_TRUE(ok);
}

TEST(Rpc, RetrySucceedsOnceLinkHeals) {
  sim::EventLoop loop;
  Network net(loop, no_jitter(), Rng(1));
  FaultParams fp;
  fp.loss_prob = 1.0;
  fp.rpc_timeout = milliseconds(5);
  net.set_faults(fp, Rng(7));
  RpcNode server(net, 1), client(net, 2);
  server.handle(7, [](Buffer b, Address) -> sim::Task<Buffer> {
    co_return b;  // echo
  });
  // The "outage" ends at t = 12 ms: both directions become reliable.
  loop.schedule_at(milliseconds(12), [&] {
    net.set_link_loss(1, 2, 0.0);
    net.set_link_loss(2, 1, 0.0);
  });
  bool ok = false;
  sim::spawn([](RpcNode& c, bool& out) -> sim::Task<void> {
    RetryPolicy policy;
    policy.max_attempts = 10;
    auto r = co_await c.call_raw_sized_retry(1, 7, Buffer{}, policy);
    out = r.ok();
  }(client, ok));
  loop.run();
  EXPECT_TRUE(ok);
  EXPECT_GT(net.rpc_timeouts(), 0u);
  EXPECT_GT(net.rpc_retries(), 0u);
  EXPECT_EQ(client.pending_calls(), 0u);
}

TEST(Rpc, RetryExhaustionReturnsTimeout) {
  sim::EventLoop loop;
  Network net(loop, no_jitter(), Rng(1));
  FaultParams fp;
  fp.loss_prob = 1.0;
  fp.rpc_timeout = milliseconds(2);
  net.set_faults(fp, Rng(7));
  RpcNode server(net, 1), client(net, 2);
  server.handle(7, [](Buffer b, Address) -> sim::Task<Buffer> {
    co_return b;
  });
  bool completed = false;
  bool ok = true;
  sim::spawn([](RpcNode& c, bool& done, bool& res) -> sim::Task<void> {
    RetryPolicy policy;
    policy.max_attempts = 3;
    auto r = co_await c.call_raw_retry(1, 7, Buffer{}, policy);
    res = r.has_value();
    done = true;
  }(client, completed, ok));
  loop.run();
  EXPECT_TRUE(completed);
  EXPECT_FALSE(ok);
  EXPECT_EQ(net.rpc_timeouts(), 3u);
  EXPECT_EQ(net.rpc_retries(), 2u);
}

}  // namespace
}  // namespace faastcc::net
