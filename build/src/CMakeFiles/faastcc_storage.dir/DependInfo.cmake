
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/eventual_store.cc" "src/CMakeFiles/faastcc_storage.dir/storage/eventual_store.cc.o" "gcc" "src/CMakeFiles/faastcc_storage.dir/storage/eventual_store.cc.o.d"
  "/root/repo/src/storage/mv_store.cc" "src/CMakeFiles/faastcc_storage.dir/storage/mv_store.cc.o" "gcc" "src/CMakeFiles/faastcc_storage.dir/storage/mv_store.cc.o.d"
  "/root/repo/src/storage/stabilizer.cc" "src/CMakeFiles/faastcc_storage.dir/storage/stabilizer.cc.o" "gcc" "src/CMakeFiles/faastcc_storage.dir/storage/stabilizer.cc.o.d"
  "/root/repo/src/storage/storage_client.cc" "src/CMakeFiles/faastcc_storage.dir/storage/storage_client.cc.o" "gcc" "src/CMakeFiles/faastcc_storage.dir/storage/storage_client.cc.o.d"
  "/root/repo/src/storage/tcc_partition.cc" "src/CMakeFiles/faastcc_storage.dir/storage/tcc_partition.cc.o" "gcc" "src/CMakeFiles/faastcc_storage.dir/storage/tcc_partition.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/faastcc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/faastcc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/faastcc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
