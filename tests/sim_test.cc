// Unit tests for the simulation core: event loop, tasks, futures, sleep,
// queues, when_all.
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "sim/async_queue.h"
#include "sim/event_loop.h"
#include "sim/future.h"
#include "sim/task.h"
#include "sim/when_all.h"

namespace faastcc::sim {
namespace {

// ---------------------------------------------------------------------------
// EventLoop
// ---------------------------------------------------------------------------

TEST(EventLoop, RunsEventsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(30, [&] { order.push_back(3); });
  loop.schedule_at(10, [&] { order.push_back(1); });
  loop.schedule_at(20, [&] { order.push_back(2); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), 30);
}

TEST(EventLoop, SameTimeRunsInInsertionOrder) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    loop.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  loop.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

// Property test for the 4-ary heap: among events with equal timestamps,
// firing order is exactly insertion order — including events scheduled
// from inside other events at the currently running time.
TEST(EventLoop, EqualTimestampsFireInInsertionOrderUnderRandomLoad) {
  Rng rng(99);
  for (int round = 0; round < 10; ++round) {
    EventLoop loop;
    struct Fired {
      SimTime time;
      uint64_t id;
    };
    std::vector<Fired> fired;
    uint64_t next_id = 0;
    // Timestamps drawn from a tiny range so collisions are the common
    // case; each event may spawn children at or shortly after its own
    // time, exercising insertion under a partially drained heap level.
    std::function<void(SimTime, int)> spawn = [&](SimTime t, int depth) {
      const uint64_t id = next_id++;
      loop.schedule_at(t, [&, id, depth] {
        fired.push_back(Fired{loop.now(), id});
        if (depth > 0) {
          const size_t children = rng.next_below(3);
          for (size_t c = 0; c < children; ++c) {
            spawn(loop.now() + static_cast<SimTime>(rng.next_below(3)),
                  depth - 1);
          }
        }
      });
    };
    for (int i = 0; i < 64; ++i) {
      spawn(static_cast<SimTime>(rng.next_below(8)), 2);
    }
    loop.run();
    ASSERT_EQ(fired.size(), next_id);
    for (size_t i = 1; i < fired.size(); ++i) {
      ASSERT_LE(fired[i - 1].time, fired[i].time) << "round " << round;
      if (fired[i - 1].time == fired[i].time) {
        ASSERT_LT(fired[i - 1].id, fired[i].id)
            << "round " << round << ": equal-time events fired out of "
            << "insertion order";
      }
    }
  }
}

TEST(EventLoop, ScheduleAfterIsRelative) {
  EventLoop loop;
  loop.schedule_at(100, [] {});
  loop.run();
  SimTime fired_at = -1;
  loop.schedule_after(50, [&] { fired_at = loop.now(); });
  loop.run();
  EXPECT_EQ(fired_at, 150);
}

TEST(EventLoop, PastTimesClampToNow) {
  EventLoop loop;
  loop.schedule_at(100, [] {});
  loop.run();
  SimTime fired_at = -1;
  loop.schedule_at(10, [&] { fired_at = loop.now(); });
  loop.run();
  EXPECT_EQ(fired_at, 100);
}

TEST(EventLoop, NestedSchedulingWorks) {
  EventLoop loop;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) loop.schedule_after(1, recurse);
  };
  loop.schedule_at(0, recurse);
  loop.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(loop.now(), 99);
}

TEST(EventLoop, RunUntilStopsAtBoundary) {
  EventLoop loop;
  int fired = 0;
  loop.schedule_at(10, [&] { ++fired; });
  loop.schedule_at(20, [&] { ++fired; });
  loop.run_until(15);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.now(), 15);
  EXPECT_EQ(loop.pending(), 1u);
}

TEST(EventLoop, StopHaltsProcessing) {
  EventLoop loop;
  int fired = 0;
  loop.schedule_at(1, [&] {
    ++fired;
    loop.stop();
  });
  loop.schedule_at(2, [&] { ++fired; });
  loop.run();
  EXPECT_EQ(fired, 1);
}

TEST(EventLoop, CountsProcessedEvents) {
  EventLoop loop;
  for (int i = 0; i < 5; ++i) loop.schedule_at(i, [] {});
  loop.run();
  EXPECT_EQ(loop.events_processed(), 5u);
}

// ---------------------------------------------------------------------------
// Task
// ---------------------------------------------------------------------------

Task<int> make_value(int v) { co_return v; }

Task<int> add_tasks() {
  const int a = co_await make_value(20);
  const int b = co_await make_value(22);
  co_return a + b;
}

TEST(Task, ReturnsValueThroughAwaitChain) {
  int result = 0;
  spawn([](int& out) -> Task<void> { out = co_await add_tasks(); }(result));
  EXPECT_EQ(result, 42);  // no suspension points: completes synchronously
}

TEST(Task, DeepAwaitChainUsesConstantStack) {
  // 100k chained awaits would overflow the stack without symmetric
  // transfer.
  struct Chain {
    static Task<int> down(int n) {
      if (n == 0) co_return 0;
      co_return 1 + co_await down(n - 1);
    }
  };
  int result = 0;
  spawn([](int& out) -> Task<void> {
    out = co_await Chain::down(100000);
  }(result));
  EXPECT_EQ(result, 100000);
}

TEST(Task, ExceptionsPropagateToAwaiter) {
  struct Thrower {
    static Task<int> boom() {
      throw std::runtime_error("boom");
      co_return 0;
    }
  };
  bool caught = false;
  spawn([](bool& c) -> Task<void> {
    try {
      co_await Thrower::boom();
    } catch (const std::runtime_error&) {
      c = true;
    }
  }(caught));
  EXPECT_TRUE(caught);
}

TEST(Task, MoveOnlyResultsWork) {
  struct Maker {
    static Task<std::unique_ptr<int>> make() {
      co_return std::make_unique<int>(9);
    }
  };
  int result = 0;
  spawn([](int& out) -> Task<void> {
    auto p = co_await Maker::make();
    out = *p;
  }(result));
  EXPECT_EQ(result, 9);
}

// ---------------------------------------------------------------------------
// Future / sleep
// ---------------------------------------------------------------------------

TEST(Future, AwaiterResumesOnFulfil) {
  EventLoop loop;
  Promise<int> p(loop);
  int got = 0;
  spawn([](Future<int> f, int& out) -> Task<void> {
    out = co_await std::move(f);
  }(p.get_future(), got));
  EXPECT_EQ(got, 0);
  p.set_value(5);
  loop.run();
  EXPECT_EQ(got, 5);
}

TEST(Future, FulfilBeforeAwaitIsImmediate) {
  EventLoop loop;
  Promise<int> p(loop);
  p.set_value(7);
  int got = 0;
  spawn([](Future<int> f, int& out) -> Task<void> {
    out = co_await std::move(f);
  }(p.get_future(), got));
  EXPECT_EQ(got, 7);
}

TEST(Sleep, ResumesAtRequestedTime) {
  EventLoop loop;
  SimTime woke = -1;
  spawn([](EventLoop& l, SimTime& out) -> Task<void> {
    co_await sleep_for(l, 250);
    out = l.now();
  }(loop, woke));
  loop.run();
  EXPECT_EQ(woke, 250);
}

TEST(Sleep, SequentialSleepsAccumulate) {
  EventLoop loop;
  SimTime woke = -1;
  spawn([](EventLoop& l, SimTime& out) -> Task<void> {
    co_await sleep_for(l, 100);
    co_await sleep_for(l, 100);
    co_await sleep_for(l, 100);
    out = l.now();
  }(loop, woke));
  loop.run();
  EXPECT_EQ(woke, 300);
}

TEST(Sleep, ConcurrentSleepersInterleave) {
  EventLoop loop;
  std::vector<int> order;
  auto sleeper = [](EventLoop& l, std::vector<int>& o, Duration d,
                    int id) -> Task<void> {
    co_await sleep_for(l, d);
    o.push_back(id);
  };
  spawn(sleeper(loop, order, 30, 3));
  spawn(sleeper(loop, order, 10, 1));
  spawn(sleeper(loop, order, 20, 2));
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

// ---------------------------------------------------------------------------
// when_all
// ---------------------------------------------------------------------------

TEST(WhenAll, GathersResultsInInputOrder) {
  EventLoop loop;
  auto delayed = [](EventLoop& l, Duration d, int v) -> Task<int> {
    co_await sleep_for(l, d);
    co_return v;
  };
  std::vector<int> results;
  spawn([](EventLoop& l, std::vector<int>& out,
           decltype(delayed)& mk) -> Task<void> {
    std::vector<Task<int>> tasks;
    tasks.push_back(mk(l, 30, 1));  // finishes last
    tasks.push_back(mk(l, 10, 2));
    tasks.push_back(mk(l, 20, 3));
    out = co_await when_all(l, std::move(tasks));
  }(loop, results, delayed));
  loop.run();
  EXPECT_EQ(results, (std::vector<int>{1, 2, 3}));
}

TEST(WhenAll, RunsConcurrentlyNotSequentially) {
  EventLoop loop;
  SimTime finished = -1;
  auto delayed = [](EventLoop& l, Duration d) -> Task<int> {
    co_await sleep_for(l, d);
    co_return 0;
  };
  spawn([](EventLoop& l, SimTime& out, decltype(delayed)& mk) -> Task<void> {
    std::vector<Task<int>> tasks;
    for (int i = 0; i < 10; ++i) tasks.push_back(mk(l, 100));
    co_await when_all(l, std::move(tasks));
    out = l.now();
  }(loop, finished, delayed));
  loop.run();
  EXPECT_EQ(finished, 100);  // parallel, not 1000
}

TEST(WhenAll, EmptyVectorCompletesImmediately) {
  EventLoop loop;
  bool done = false;
  spawn([](EventLoop& l, bool& out) -> Task<void> {
    auto r = co_await when_all(l, std::vector<Task<int>>{});
    out = r.empty();
  }(loop, done));
  loop.run();
  EXPECT_TRUE(done);
}

// ---------------------------------------------------------------------------
// AsyncQueue
// ---------------------------------------------------------------------------

TEST(AsyncQueue, PopWaitsForPush) {
  EventLoop loop;
  AsyncQueue<int> q(loop);
  int got = 0;
  spawn([](AsyncQueue<int>& queue, int& out) -> Task<void> {
    out = co_await queue.pop();
  }(q, got));
  EXPECT_EQ(got, 0);
  q.push(11);
  loop.run();
  EXPECT_EQ(got, 11);
}

TEST(AsyncQueue, BuffersWhenNoConsumer) {
  EventLoop loop;
  AsyncQueue<int> q(loop);
  q.push(1);
  q.push(2);
  std::vector<int> got;
  spawn([](AsyncQueue<int>& queue, std::vector<int>& out) -> Task<void> {
    out.push_back(co_await queue.pop());
    out.push_back(co_await queue.pop());
  }(q, got));
  loop.run();
  EXPECT_EQ(got, (std::vector<int>{1, 2}));
}

TEST(AsyncQueue, MultipleConsumersServedFifo) {
  EventLoop loop;
  AsyncQueue<int> q(loop);
  std::vector<int> got;
  auto consumer = [](AsyncQueue<int>& queue,
                     std::vector<int>& out) -> Task<void> {
    out.push_back(co_await queue.pop());
  };
  spawn(consumer(q, got));
  spawn(consumer(q, got));
  q.push(1);
  q.push(2);
  loop.run();
  EXPECT_EQ(got.size(), 2u);
}

}  // namespace
}  // namespace faastcc::sim
