#include "storage/reconfig.h"

#include <map>
#include <optional>
#include <set>
#include <utility>

#include "common/log.h"

namespace faastcc::storage {

TccPartition* ReconfigEngine::instance(PartitionId p) const {
  for (TccPartition* inst : instances_) {
    if (inst->id() == p) return inst;
  }
  return nullptr;
}

sim::Task<void> ReconfigEngine::scale_out(
    std::vector<routing::PartitionAddress> added) {
  const routing::TablePtr old_table = topo_.table();
  co_await transition_to(
      routing::make_table(old_table->with_partitions_added(added)));
}

sim::Task<void> ReconfigEngine::scale_in(size_t count) {
  const routing::TablePtr old_table = topo_.table();
  if (count == 0 || count >= old_table->num_partitions()) co_return;
  co_await transition_to(
      routing::make_table(old_table->with_partitions_removed(count)));
}

sim::Task<void> ReconfigEngine::replace_leader(
    PartitionId p, routing::PartitionAddress candidate) {
  const routing::TablePtr old_table = topo_.table();
  if (p >= old_table->num_partitions()) co_return;
  co_await transition_to(
      routing::make_table(old_table->with_leader_replaced(p, candidate)));
}

sim::Task<void> ReconfigEngine::transition_to(routing::TablePtr next) {
  const routing::TablePtr prev = topo_.table();
  if (next == nullptr || next->epoch <= prev->epoch) co_return;
  in_flight_ = true;
  const size_t old_n = prev->num_partitions();
  const size_t new_n = next->num_partitions();

  // Which partitions each target takes slots from, and how many slots move
  // per (source, target) pair.  std::map keys give a deterministic handoff
  // order.
  std::map<PartitionId, std::set<PartitionId>> sources_of;
  std::map<std::pair<PartitionId, PartitionId>, size_t> moved;
  for (size_t s = 0; s < next->num_slots(); ++s) {
    const PartitionId to = next->slot_owner[s];
    const PartitionId from = prev->slot_owner[s];
    if (to == from) continue;
    sources_of[to].insert(from);
    ++moved[{from, to}];
  }

  // Arm the targets before the broadcast: join_epoch_ must be in place by
  // the time the first migrate-in parcel (or a stray kTopoUpdate) lands.
  // New ids join; surviving ids that inherit drained slots acquire (their
  // handoff floor is scoped to exactly the keys that migrate in).
  for (size_t t = old_n; t < new_n; ++t) {
    const auto id = static_cast<PartitionId>(t);
    if (TccPartition* inst = instance(id)) {
      inst->begin_join(next, sources_of[id].size());
    } else {
      LOG_WARN("reconfig: no instance for joining partition " << t);
    }
  }
  if (new_n < old_n) {
    for (size_t t = 0; t < new_n; ++t) {
      const auto id = static_cast<PartitionId>(t);
      const auto it = sources_of.find(id);
      if (it == sources_of.end()) continue;
      if (TccPartition* inst = instance(id)) {
        inst->begin_acquire(next, it->second.size());
      }
    }
  }
  topo_.publish(next);
  if (metrics_ != nullptr) {
    metrics_->counter("routing.epoch_bumps").inc();
    auto& ep = metrics_->counter("routing.epoch");
    ep.reset();
    ep.inc(next->epoch);
    auto& ap = metrics_->counter("routing.active_partitions");
    ap.reset();
    ap.inc(new_n);
  }

  // Shepherd each (source, target) handoff: seal + extract the chains at
  // the source, then deliver the parcel to the target.  Both legs retry
  // through the shared commit policy; the source side is idempotent via
  // its replay cache, the target side via per-source dedup.
  for (const auto& [pair, nslots] : moved) {
    (void)nslots;
    const PartitionId src = pair.first;
    const PartitionId tgt = pair.second;
    TccMigrateOutReq oreq;
    oreq.target = tgt;
    std::optional<TccMigrateOutResp> parcel;
    for (int round = 0; round < 8 && !parcel.has_value(); ++round) {
      // Re-resolve the table every attempt: a failover can promote a
      // follower of the source slot (bumping the epoch) while this handoff
      // is in flight, and both the source address and the carried table
      // must follow it — the promoted leader refuses requests stamped with
      // the epoch that still names its dead predecessor.  A source the new
      // table no longer lists (a retiring partition mid-drain) keeps its
      // pre-transition address: the topology service refuses promotion
      // bids for ids beyond the table, so that address can never change.
      const routing::TablePtr cur = topo_.table();
      oreq.table = *cur;
      const net::Address src_addr = src < cur->num_partitions()
                                        ? cur->partitions[src]
                                        : prev->partitions[src];
      auto r = co_await ctl_.call_raw_sized_retry(
          src_addr, kTccMigrateOut, ctl_.encode(oreq),
          net::commit_retry_policy());
      if (!r.ok()) continue;
      auto resp = decode_message<TccMigrateOutResp>(r.payload);
      ctl_.recycle(std::move(r.payload));
      if (resp.ok) parcel = std::move(resp);
    }
    if (!parcel.has_value()) {
      LOG_WARN("reconfig: migrate-out " << src << " -> " << tgt
                                        << " gave up");
      continue;
    }
    TccMigrateInReq ireq;
    ireq.epoch = next->epoch;
    ireq.source = src;
    ireq.expected_sources = static_cast<uint32_t>(sources_of[tgt].size());
    ireq.source_safe = parcel->safe_time;
    ireq.last_heard = std::move(parcel->last_heard);
    ireq.chains = std::move(parcel->chains);
    bool applied = false;
    for (int round = 0; round < 8 && !applied; ++round) {
      auto r = co_await ctl_.call_raw_sized_retry(
          next->partitions[tgt], kTccMigrateIn, ctl_.encode(ireq),
          net::commit_retry_policy());
      if (!r.ok()) continue;
      auto resp = decode_message<TccMigrateInResp>(r.payload);
      ctl_.recycle(std::move(r.payload));
      applied = resp.ok;
    }
    if (!applied) {
      LOG_WARN("reconfig: migrate-in at " << tgt << " from " << src
                                          << " gave up");
    }
  }

  // Retire drained sources the new table no longer lists, and their
  // followers with them (a retired follower must stop bidding for a slot
  // that no longer exists).
  for (size_t p = new_n; p < old_n; ++p) {
    const auto id = static_cast<PartitionId>(p);
    if (TccPartition* inst = instance(id)) inst->retire();
    for (TccPartition* f : followers_) {
      if (f->id() == id) f->retire();
    }
  }
  in_flight_ = false;
}

}  // namespace faastcc::storage
