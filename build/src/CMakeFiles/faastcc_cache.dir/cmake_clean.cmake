file(REMOVE_RECURSE
  "CMakeFiles/faastcc_cache.dir/cache/faastcc_cache.cc.o"
  "CMakeFiles/faastcc_cache.dir/cache/faastcc_cache.cc.o.d"
  "CMakeFiles/faastcc_cache.dir/cache/hydro_cache.cc.o"
  "CMakeFiles/faastcc_cache.dir/cache/hydro_cache.cc.o.d"
  "CMakeFiles/faastcc_cache.dir/cache/hydro_types.cc.o"
  "CMakeFiles/faastcc_cache.dir/cache/hydro_types.cc.o.d"
  "CMakeFiles/faastcc_cache.dir/cache/lru_index.cc.o"
  "CMakeFiles/faastcc_cache.dir/cache/lru_index.cc.o.d"
  "CMakeFiles/faastcc_cache.dir/cache/plain_cache.cc.o"
  "CMakeFiles/faastcc_cache.dir/cache/plain_cache.cc.o.d"
  "libfaastcc_cache.a"
  "libfaastcc_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faastcc_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
