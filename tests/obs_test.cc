// Tests for the observability layer: span-tree shape, byte-stable trace
// export, and the core determinism contract — enabling tracing must not
// perturb the simulation.
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "harness/cluster.h"
#include "harness/summary.h"

namespace faastcc::harness {
namespace {

ClusterParams small_params(SystemKind system, bool tracing) {
  ClusterParams p;
  p.system = system;
  p.seed = 7;
  p.partitions = 4;
  p.compute_nodes = 2;
  p.clients = 2;
  p.dags_per_client = 20;
  p.workload.num_keys = 500;
  p.workload.dag_size = 3;
  p.trace.enabled = tracing;
  p.trace.ring_capacity = 1 << 20;
  return p;
}

bool is_breakdown(std::string_view name) {
  return name.substr(0, std::string_view("breakdown.").size()) ==
         "breakdown.";
}

// Flattened metric state for exact run-to-run comparison.  The breakdown
// histograms are trace-derived and only exist when tracing is on, so
// cross-mode comparisons skip them.
std::map<std::string, std::vector<double>> histogram_map(
    const RunResult& r, bool skip_breakdown) {
  std::map<std::string, std::vector<double>> out;
  r.metrics.each_histogram([&](const char* name, const Samples& s) {
    if (skip_breakdown && is_breakdown(name)) return;
    out[name] = s.raw();
  });
  return out;
}

std::map<std::string, uint64_t> counter_map(const RunResult& r) {
  std::map<std::string, uint64_t> out;
  r.metrics.each_counter(
      [&](const char* name, const Counter& c) { out[name] = c.value(); });
  return out;
}

void expect_same_run(const RunResult& a, const RunResult& b,
                     bool skip_breakdown) {
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.aborted_attempts, b.aborted_attempts);
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(a.cache_entries, b.cache_entries);
  EXPECT_EQ(a.cache_bytes, b.cache_bytes);
  EXPECT_DOUBLE_EQ(a.duration_s, b.duration_s);
  EXPECT_DOUBLE_EQ(a.throughput, b.throughput);
  EXPECT_EQ(counter_map(a), counter_map(b));
  EXPECT_EQ(histogram_map(a, skip_breakdown),
            histogram_map(b, skip_breakdown));
}

TEST(Trace, SpanTreesAreWellFormed) {
  Cluster cluster(small_params(SystemKind::kFaasTcc, true));
  const RunResult result = cluster.run();
  ASSERT_GT(result.committed, 0u);

  const obs::Tracer& tracer = cluster.tracer();
  EXPECT_EQ(tracer.spans_dropped(), 0u);
  ASSERT_GT(tracer.spans_recorded(), 0u);
  EXPECT_GT(tracer.traces_started(), 0u);

  // Index spans by (trace, span) id; ids must be unique.
  std::map<std::pair<uint64_t, uint64_t>, const obs::Span*> by_id;
  for (const obs::Span& s : tracer.spans()) {
    EXPECT_NE(s.trace_id, 0u);
    EXPECT_NE(s.span_id, 0u);
    EXPECT_GE(s.end, s.start);
    const bool inserted =
        by_id.emplace(std::make_pair(s.trace_id, s.span_id), &s).second;
    EXPECT_TRUE(inserted);
  }

  std::map<std::string, int> names;
  std::map<uint64_t, int> roots_per_trace;
  for (const obs::Span& s : tracer.spans()) {
    ++names[s.name];
    if (s.parent_span_id == 0) {
      EXPECT_STREQ(s.name, "dag");
      ++roots_per_trace[s.trace_id];
    } else {
      // Every non-root span hangs off a recorded span of the same trace
      // that started no later than it did.
      auto it = by_id.find({s.trace_id, s.parent_span_id});
      ASSERT_NE(it, by_id.end())
          << "span " << s.name << " has unrecorded parent";
      EXPECT_LE(it->second->start, s.start);
    }
  }
  for (const auto& [trace_id, count] : roots_per_trace) {
    EXPECT_EQ(count, 1) << "trace " << trace_id << " has " << count
                        << " roots";
  }

  // The layers a FaaSTCC DAG touches all show up.
  for (const char* expected :
       {"dag", "schedule", "fn", "read", "commit", "cache.read",
        "storage.read", "partition.read", "storage.commit"}) {
    EXPECT_GT(names[expected], 0) << "no '" << expected << "' spans";
  }

  // Cache spans carry the typed annotations the exporter relies on.
  bool found_hit_annotation = false;
  for (const obs::Span& s : tracer.spans()) {
    if (std::string_view(s.name) != "cache.read") continue;
    for (const obs::Annotation& a : s.annotations) {
      if (std::string_view(a.key) == "hit") found_hit_annotation = true;
    }
  }
  EXPECT_TRUE(found_hit_annotation);
}

TEST(Trace, ExportIsByteIdenticalAcrossSameSeedRuns) {
  std::string exports[2];
  for (std::string& e : exports) {
    Cluster cluster(small_params(SystemKind::kFaasTcc, true));
    cluster.run();
    std::ostringstream os;
    cluster.tracer().export_chrome_trace(os);
    e = os.str();
  }
  ASSERT_FALSE(exports[0].empty());
  EXPECT_EQ(exports[0].front(), '{');
  EXPECT_EQ(exports[0], exports[1]);
}

TEST(Trace, BreakdownHistogramsPopulateSummary) {
  Cluster cluster(small_params(SystemKind::kFaasTcc, true));
  const RunResult result = cluster.run();
  ASSERT_GT(result.committed, 0u);

  for (const char* name :
       {"breakdown.queue_ms", "breakdown.compute_ms", "breakdown.storage_ms",
        "breakdown.network_ms"}) {
    const Samples* h = result.metrics.find_histogram(name);
    ASSERT_NE(h, nullptr) << name;
    EXPECT_EQ(h->count(), result.committed) << name;
  }
  const SummaryStats s = summarize(result);
  // Every committed DAG does real compute and storage work.
  EXPECT_GT(s.breakdown_compute_ms, 0.0);
  EXPECT_GT(s.breakdown_storage_ms, 0.0);
  EXPECT_GE(s.breakdown_queue_ms, 0.0);
  EXPECT_GE(s.breakdown_network_ms, 0.0);
}

TEST(Trace, SamplingRecordsFewerSpans) {
  ClusterParams sampled = small_params(SystemKind::kFaasTcc, true);
  sampled.trace.sample_every = 5;
  Cluster full_cluster(small_params(SystemKind::kFaasTcc, true));
  Cluster sampled_cluster(sampled);
  const RunResult full = full_cluster.run();
  const RunResult some = sampled_cluster.run();
  EXPECT_GT(sampled_cluster.tracer().spans_recorded(), 0u);
  EXPECT_LT(sampled_cluster.tracer().spans_recorded(),
            full_cluster.tracer().spans_recorded());
  // Sampling changes only what is recorded, never the simulation.
  expect_same_run(full, some, /*skip_breakdown=*/true);
}

TEST(Trace, DisabledRunsAreBitIdentical) {
  Cluster a(small_params(SystemKind::kFaasTcc, false));
  Cluster b(small_params(SystemKind::kFaasTcc, false));
  const RunResult ra = a.run();
  const RunResult rb = b.run();
  EXPECT_EQ(a.tracer().spans_recorded(), 0u);
  expect_same_run(ra, rb, /*skip_breakdown=*/false);
}

// The headline determinism contract: the trace context rides outside the
// simulated wire format and the tracer schedules nothing, so turning
// tracing on cannot change the run for any of the three systems.
TEST(Trace, EnablingTracingDoesNotPerturbAnySystem) {
  for (SystemKind system : {SystemKind::kFaasTcc, SystemKind::kHydroCache,
                            SystemKind::kCloudburst}) {
    SCOPED_TRACE(system_name(system));
    Cluster off(small_params(system, false));
    Cluster on(small_params(system, true));
    const RunResult r_off = off.run();
    const RunResult r_on = on.run();
    EXPECT_GT(on.tracer().spans_recorded(), 0u);
    expect_same_run(r_off, r_on, /*skip_breakdown=*/true);
  }
}

}  // namespace
}  // namespace faastcc::harness
