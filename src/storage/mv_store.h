// Multi-version in-memory store backing one TCC partition.
//
// Every key holds a version chain ordered by commit timestamp.  Reads
// select the newest version at or below a snapshot and also report the
// successor's timestamp, from which the partition derives the promise
// (§4.2: "either the timestamp of the next version, or the timestamp of
// the last committed transaction").
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/hlc.h"
#include "common/types.h"

namespace faastcc::storage {

class MvStore {
 public:
  struct Version {
    Value value;
    Timestamp ts;
  };

  struct ReadResult {
    const Version* version = nullptr;        // null => no version <= snapshot
    std::optional<Timestamp> next_ts;        // successor's timestamp, if any
    bool below_gc_horizon = false;           // snapshot predates GC'd history
  };

  // Installs a version.  Timestamps are unique system-wide (HLC + node id),
  // so installing the same timestamp twice is a protocol error.
  void install(Key key, Value value, Timestamp ts);

  // Installs a whole chain received through an elastic handoff.  Versions
  // may arrive in any order and may duplicate ones already present (a
  // retried migration re-delivers the parcel): duplicates by (key, ts) are
  // ignored, so the operation is idempotent.
  void migrate_in(Key key, const std::vector<Version>& versions);

  // Removes and returns every chain whose key satisfies `pred` (the slots
  // leaving this partition).  Results are sorted by key: chains_ iterates
  // in hash order, and the extracted set goes on the wire where byte
  // layout must be deterministic.
  std::vector<std::pair<Key, std::vector<Version>>> extract_chains(
      const std::function<bool(Key)>& pred);

  // Non-destructive copy of every chain, sorted by key — the replication
  // backfill payload (a follower re-syncs from the leader's chain head
  // without disturbing the leader's serving state).
  std::vector<std::pair<Key, std::vector<Version>>> snapshot_chains() const;

  // Newest version with ts <= snapshot.
  ReadResult read_at(Key key, Timestamp snapshot) const;

  // Drops versions strictly older than the newest version at or below
  // `horizon` (that one must survive: it is still the correct read for any
  // snapshot in [its ts, horizon]).  Returns number of versions dropped.
  size_t gc_before(Timestamp horizon);

  size_t num_keys() const { return chains_.size(); }
  size_t num_versions() const { return num_versions_; }
  size_t value_bytes() const { return value_bytes_; }

  // Oldest retained timestamp for `key`; reads below it are unreliable.
  std::optional<Timestamp> oldest_ts(Key key) const;
  std::optional<Timestamp> newest_ts(Key key) const;

 private:
  // Chains are small (GC keeps them short), so a sorted vector wins over
  // any tree on both memory and scan speed.
  std::unordered_map<Key, std::vector<Version>> chains_;
  size_t num_versions_ = 0;
  size_t value_bytes_ = 0;
};

}  // namespace faastcc::storage
