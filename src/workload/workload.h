// Workload generator reproducing the paper's benchmark (§6.1):
// sequential chains of functions, each reading two Zipf-distributed keys;
// the sink additionally writes one Zipf-distributed key.  Static
// transactions declare all keys up front; dynamic transactions reveal them
// only at execution time.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "common/zipf.h"
#include "faas/dag.h"
#include "faas/function_registry.h"

namespace faastcc::workload {

struct WorkloadParams {
  uint64_t num_keys = 100000;
  double zipf = 1.0;
  int dag_size = 6;            // functions per chain
  int reads_per_function = 2;
  size_t value_size = 8;       // bytes
  bool static_txns = false;
};

// Argument layouts for the registered functions.
struct StepArgs {
  std::vector<Key> keys;

  template <typename W>
  void encode(W& w) const {
    w.put_u32(static_cast<uint32_t>(keys.size()));
    for (Key k : keys) w.put_u64(k);
  }
  static StepArgs decode(BufReader& r);
};

struct SinkArgs {
  std::vector<Key> keys;
  Key write_key = 0;
  Value value;

  template <typename W>
  void encode(W& w) const {
    w.put_u32(static_cast<uint32_t>(keys.size()));
    for (Key k : keys) w.put_u64(k);
    w.put_u64(write_key);
    w.put_bytes(value);
  }
  static SinkArgs decode(BufReader& r);
};

class WorkloadGen {
 public:
  WorkloadGen(WorkloadParams params, Rng rng);

  // Builds one chain DAG with freshly sampled keys.
  faas::DagSpec next_dag();

  const WorkloadParams& params() const { return params_; }

  // Registers "wl_step" and "wl_sink" bodies.
  static void register_functions(faas::FunctionRegistry& registry);

 private:
  Key sample_key();

  WorkloadParams params_;
  Rng rng_;
  ZipfSampler zipf_;
  uint64_t seq_ = 0;
};

}  // namespace faastcc::workload
