#include "harness/experiment.h"

#include <cstdlib>

namespace faastcc::harness {

int bench_dags_per_client(int fallback) {
  if (const char* env = std::getenv("FAASTCC_DAGS"); env != nullptr) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return fallback;
}

ClusterParams make_params(const ExperimentConfig& cfg) {
  ClusterParams p;
  p.system = cfg.system;
  p.seed = cfg.seed;
  p.workload.zipf = cfg.zipf;
  p.workload.static_txns = cfg.static_txns;
  p.workload.dag_size = cfg.dag_size;
  p.cache_capacity = cfg.cache_capacity;
  p.faastcc = cfg.faastcc;
  p.dags_per_client =
      cfg.dags_per_client > 0 ? cfg.dags_per_client : bench_dags_per_client();
  return p;
}

RunResult run_experiment(const ExperimentConfig& cfg) {
  Cluster cluster(make_params(cfg));
  return cluster.run();
}

}  // namespace faastcc::harness
